(** Reproduce the paper's Figure 1 — the motivating example where six
    methods find six different sets of constant formals.

    Run with: [dune exec examples/figure1.exe] *)

open Fsicp_workloads

let () =
  Fmt.pr "The paper's Figure 1 example program:@.%s@." Figure1.source;
  let table = Fsicp_harness.Harness.figure1_table () in
  Fsicp_report.Report.print table;
  Fmt.pr
    "@.Why the flow-sensitive method alone finds f2:@.\
     \  f1 = 0 interprocedurally, so the 'f1 != 0' path in sub1 is dead@.\
     \  and y is 0 on every executable path to the call of sub2.@.\
     \  Jump functions evaluate sub1 without knowing f1 and cannot prune.@."
