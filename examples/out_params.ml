(** The return-constants extension (paper §3.2) end to end.

    Fortran code configures through out parameters: a setup routine stores
    constants through references, and everything downstream depends on
    them.  The base flow-sensitive method loses those constants at the call
    (a call conservatively clobbers its by-reference actuals); the
    extension's extra reverse traversal computes per-procedure exit
    summaries and feeds them back as call effects.

    Run with: [dune exec examples/out_params.exe] *)

open Fsicp_lang
open Fsicp_core

let source =
  {|
  global tolerance;

  proc main() {
    gridsize = 0;
    call configure(gridsize);        // stores 128 through the reference
    call mesh(gridsize);             // ... which only the extension sees
  }

  proc configure(out) {
    out = 128;
    tolerance = 4;
  }

  proc mesh(n) {
    cells = n * n;
    print cells;
    print tolerance;
  }
  |}

let show label sol =
  Fmt.pr "%s:@." label;
  Fmt.pr "  mesh's n     : %a@." Fsicp_scc.Lattice.pp
    (Solution.formal_value sol "mesh" 0);
  Fmt.pr "  tolerance@mesh: %a@." Fsicp_scc.Lattice.pp
    (Solution.global_value sol "mesh" "tolerance")

let () =
  let prog = Parser.program_of_string source in
  Sema.check_exn prog;
  let ctx = Context.create prog in

  (* Phase 1: the paper's forward flow-sensitive traversal. *)
  let fs = Fs_icp.solve ctx in
  show "base flow-sensitive method (returns off, as in the paper's tables)"
    fs;

  (* Phase 2: one reverse traversal computing exit summaries. *)
  let rc = Return_consts.compute ctx ~fs in
  (match Return_consts.summary_of rc "configure" with
  | Some s ->
      Fmt.pr "@.configure's exit summary:@.";
      Fmt.pr "  out parameter : %a@." Fsicp_scc.Lattice.pp
        s.Return_consts.rs_formals.(0);
      Fmt.pr "  tolerance     : %a@." Fsicp_scc.Lattice.pp
        (List.assoc
           (Fsicp_prog.Prog.Var.intern "tolerance")
           s.Return_consts.rs_globals)
  | None -> assert false);

  (* Phase 3: a refined forward pass with the summaries as call effects. *)
  let fs' =
    Fs_icp.solve
      ~call_def_value:(Return_consts.as_oracle rc ~censor:(Context.censor_w ctx))
      ctx
  in
  Fmt.pr "@.";
  show "with the return-constants extension" fs';

  (* And the folded program is fully specialised. *)
  let folded = Fold.fold_program ctx fs' in
  Fmt.pr "@.folded with the extension's facts:@.%a@." Pretty.pp_program folded;
  let out p = (Fsicp_interp.Interp.run p).Fsicp_interp.Interp.prints in
  assert (List.equal Value.equal (out prog) (out folded));
  Fmt.pr "outputs verified identical: %a@."
    Fmt.(list ~sep:(any ", ") Value.pp)
    (out folded)
