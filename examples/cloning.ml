(** Goal-directed procedure cloning (Metzger–Stroud, cited in the paper's
    backward-walk phase): when different call sites pass different
    constants, the meet destroys them; cloning per constant signature
    recovers them for a second ICP round.

    Run with: [dune exec examples/cloning.exe] *)

open Fsicp_lang
open Fsicp_core

let source =
  {|
  // A BLAS-ish kernel called with two fixed tile sizes.
  proc main() {
    call tile(8);
    call tile(16);
  }
  proc tile(size) {
    area = size * size;
    print area;
  }
  |}

let count sol = List.length (Solution.constant_formals sol)

let () =
  let prog = Parser.program_of_string source in
  Sema.check_exn prog;
  Fmt.pr "original program:@.%a@." Pretty.pp_program prog;
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  Fmt.pr "before cloning: %d constant formal(s) — 8 meets 16 to ⊥@."
    (count fs);

  let cloned, n = Clone.clone_by_constants ctx ~fs () in
  Fmt.pr "@.cloned %d procedure(s):@.%a@." n Pretty.pp_program cloned;

  let ctx' = Context.create cloned in
  let fs' = Fs_icp.solve ctx' in
  Fmt.pr "after cloning: %d constant formal(s):@.%a@." (count fs')
    Solution.pp fs';

  (* Folding the cloned program specialises each clone completely. *)
  let folded = Fold.fold_program ctx' fs' in
  Fmt.pr "@.specialised result:@.%a@." Pretty.pp_program folded;
  let out p = (Fsicp_interp.Interp.run p).Fsicp_interp.Interp.prints in
  assert (List.equal Value.equal (out prog) (out folded));
  Fmt.pr "outputs verified identical: %a@."
    Fmt.(list ~sep:(any ", ") Value.pp)
    (out folded)
