(** Analyse one benchmark of the SPEC-like suite end to end and print its
    Table 1 / Table 2 rows next to the paper's published numbers.

    Run with: [dune exec examples/spec_report.exe -- [BENCH]]
    (default 093.NASA7; try 013.SPICE2G6 for the big one) *)

open Fsicp_core
open Fsicp_workloads

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "093.NASA7" in
  let bench =
    match
      List.find_opt (fun b -> b.Spec.b_name = name) (Spec.suite @ Spec.first_release)
    with
    | Some b -> b
    | None ->
        Fmt.epr "unknown benchmark %s; available:@." name;
        List.iter (fun b -> Fmt.epr "  %s@." b.Spec.b_name) Spec.suite;
        exit 2
  in
  let prog = Spec.program bench in
  Fmt.pr "generated %s: %d procedures, %d globals@." name
    (List.length prog.Fsicp_lang.Ast.procs)
    (List.length prog.Fsicp_lang.Ast.globals);

  let d = Driver.run prog in
  Fmt.pr "%a@." Driver.pp d;

  let c =
    Metrics.candidates d.Driver.ctx ~fi:d.Driver.fi ~fs:d.Driver.fs ~name
  in
  let p =
    Metrics.propagated d.Driver.ctx ~fi:d.Driver.fi ~fs:d.Driver.fs ~name
  in
  let paper = bench.Spec.b_paper in
  Fmt.pr "Table 1 row (measured vs paper):@.";
  Fmt.pr "  ARG %d (%d)  IMM %d (%d)  FI %d (%d)  FS %d (%d)@."
    c.Metrics.cd_args paper.Spec.p_arg c.Metrics.cd_imm paper.Spec.p_imm
    c.Metrics.cd_fi paper.Spec.p_fi_args c.Metrics.cd_fs paper.Spec.p_fs_args;
  Fmt.pr "  globals: candidates %d (%d)  FS sites %d (%d)  visible %d (%d)@."
    c.Metrics.cd_gl_fi paper.Spec.p_gl_cand c.Metrics.cd_gl_fs
    paper.Spec.p_gl_fs_sites c.Metrics.cd_gl_vis paper.Spec.p_gl_vis;
  Fmt.pr "Table 2 row (measured vs paper):@.";
  Fmt.pr "  FP %d (%d)  FI %d (%d)  FS %d (%d)  procs %d (%d)  G.FI %d (%d)  G.FS %d (%d)@."
    p.Metrics.pr_fp paper.Spec.p_fp p.Metrics.pr_fi paper.Spec.p_fi_formals
    p.Metrics.pr_fs paper.Spec.p_fs_formals p.Metrics.pr_procs
    paper.Spec.p_procs p.Metrics.pr_gl_fi paper.Spec.p_gl_fi
    p.Metrics.pr_gl_fs paper.Spec.p_gl_fs;

  (* Substitutions for this program under all three Table-5 methods. *)
  let row =
    Metrics.substitutions d.Driver.ctx ~fi:d.Driver.fi ~fs:d.Driver.fs ~name ()
  in
  Fmt.pr "intraprocedural substitutions: POLY %d, FI %d, FS %d@."
    row.Metrics.sb_poly row.Metrics.sb_fi row.Metrics.sb_fs
