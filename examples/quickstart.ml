(** Quickstart: parse a MiniFort program, run the full interprocedural
    pipeline, inspect the constants each method finds, and emit the folded
    program.

    Run with: [dune exec examples/quickstart.exe] *)

open Fsicp_lang
open Fsicp_core

let source =
  {|
  // A little "simulation driver": the grid size and time step are set
  // once in main and flow through the call chain.
  global steps;

  proc main() {
    n = 64;               // grid size: a local constant
    steps = 100;          // a global constant (flow-sensitively)
    call simulate(n, 0);  // 0 selects the "fast" code path
  }

  proc simulate(size, debug) {
    if (debug != 0) {
      dt = 1;             // debug path: coarse time step
    } else {
      dt = 4;             // fast path
    }
    call stencil(size, dt);
  }

  proc stencil(width, step) {
    cells = width * width;
    work = cells / step;
    print work;
    print steps;
  }
  |}

let () =
  let prog = Parser.program_of_string source in
  Sema.check_exn prog;

  (* The whole Figure-2 pipeline in one call. *)
  let d = Driver.run prog in
  Fmt.pr "%a@." Driver.pp d;

  (* What does each method prove constant at procedure entries? *)
  Fmt.pr "--- flow-insensitive (paper Figure 3) ---@.%a@." Solution.pp
    d.Driver.fi;
  Fmt.pr "--- flow-sensitive (paper Figure 4) ---@.%a@." Solution.pp
    d.Driver.fs;

  (* The flow-sensitive method proves [debug = 0], prunes the debug branch
     inside [simulate], and so also proves [step = 4] — exactly the paper's
     Figure 1 phenomenon. *)
  let v = Solution.formal_value d.Driver.fs "stencil" 1 in
  Fmt.pr "stencil's step parameter: %a@." Fsicp_scc.Lattice.pp v;

  (* Materialise the constants and fold: the optimized program. *)
  let folded = Fold.fold_program d.Driver.ctx d.Driver.fs in
  Fmt.pr "@.--- folded program ---@.%a@." Pretty.pp_program folded;

  (* Check with the interpreter that nothing changed. *)
  let before = Fsicp_interp.Interp.run prog in
  let after = Fsicp_interp.Interp.run folded in
  Fmt.pr "output before folding: %a@."
    Fmt.(list ~sep:(any ", ") Value.pp)
    before.Fsicp_interp.Interp.prints;
  Fmt.pr "output after  folding: %a@."
    Fmt.(list ~sep:(any ", ") Value.pp)
    after.Fsicp_interp.Interp.prints
