(** Recursion and the back-edge fallback (paper §3.2).

    The flow-sensitive method performs only one SCC analysis per procedure;
    on PCG back edges it substitutes the flow-insensitive solution.  This
    example shows the three regimes:

    - literal recursion: the FI fallback keeps the constant;
    - locally-computed recursion: the FI fallback loses it, while the
      (expensive) iterative reference solver keeps it;
    - the back-edge ratio as the knob interpolating the two solutions.

    Run with: [dune exec examples/recursion.exe] *)

open Fsicp_lang
open Fsicp_core

let analyse title src =
  Fmt.pr "=== %s ===@.%s@." title src;
  let prog = Parser.program_of_string src in
  Sema.check_exn prog;
  let ctx = Context.create prog in
  let pcg = ctx.Context.pcg in
  Fmt.pr "%a" Fsicp_callgraph.Callgraph.pp pcg;
  Fmt.pr "back-edge ratio: %.2f@."
    (Fsicp_callgraph.Callgraph.back_edge_ratio pcg);
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ~fi ctx in
  let it = Reference.solve ctx in
  let show name sol =
    Fmt.pr "  %-22s %d SCC runs, constants: %a@." name
      sol.Solution.scc_runs
      Fmt.(
        list ~sep:(any ", ") (fun ppf (p, i, v) ->
            pf ppf "%s#%d=%a" p i Value.pp v))
      (Solution.constant_formals sol)
  in
  show "flow-insensitive" fi;
  show "flow-sensitive" fs;
  show "iterative reference" it;
  Fmt.pr "@."

let () =
  analyse "literal recursion: FI fallback suffices"
    {|proc main() { call fib(10); }
      proc fib(n) { if (n > 1) { call fib(10); } call log(1); }
      proc log(level) { print level; }|};

  analyse "computed recursion: one-pass FS pays the back-edge toll"
    {|proc main() { call f(3); }
      proc f(a) { if (u) { x = 3; call f(x); } print a; }|};

  (* A sweep over generated programs: precision vs back-edge density. *)
  Fmt.pr "=== back-edge ratio sweep (generated programs) ===@.";
  Fsicp_report.Report.print (Fsicp_harness.Harness.backedge_sweep ());
  Fmt.pr
    "@.Reading: at ratio 0 the FS column equals the iterative one (the@.\
     paper's exactness claim); as the ratio grows it sinks toward FI.@."
