(** Tests for the interprocedural analyses of Figure 2, steps 1, 3 and 4:
    summaries, reference-parameter aliasing, MOD/REF, and the
    flow-sensitive USE computation. *)

open Fsicp_lang
open Fsicp_ipa
open Fsicp_callgraph

let setup src =
  let p = Test_util.parse src in
  let pcg = Callgraph.build p in
  let summaries = Summary.collect p in
  let aliases = Alias.compute summaries pcg in
  let modref = Modref.compute summaries aliases pcg in
  (p, pcg, summaries, aliases, modref)

(* -- summaries -------------------------------------------------------- *)

let test_summary_imod_iref () =
  let _, _, summaries, _, _ =
    setup
      {|global g, h;
        proc main() { call f(1); }
        proc f(a) { a = g + 1; h = 2; l = 3; print l; }|}
  in
  let s = Summary.find summaries "f" in
  Alcotest.(check bool) "formal a in IMOD" true
    (Summary.VrefSet.mem (Summary.Vformal 0) s.Summary.ps_imod);
  Alcotest.(check bool) "global h in IMOD" true
    (Summary.VrefSet.mem (Summary.Vglobal "h") s.Summary.ps_imod);
  Alcotest.(check bool) "global g in IREF" true
    (Summary.VrefSet.mem (Summary.Vglobal "g") s.Summary.ps_iref);
  Alcotest.(check bool) "local not in IMOD" false
    (Summary.VrefSet.mem (Summary.Vglobal "l") s.Summary.ps_imod)

let test_summary_arg_shapes () =
  let _, _, summaries, _, _ =
    setup
      {|global g;
        proc main() { l = 1; call f(3, l, g, l + 1); call f(2.5, l, l, l); }
        proc f(a, b, c, d) { }|}
  in
  let s = Summary.find summaries "main" in
  let c0 = List.nth s.Summary.ps_calls 0 in
  (match c0.Summary.cs_args with
  | [| Summary.Alit (Value.Int 3); Summary.Alocal "l"; Summary.Aglobal "g";
       Summary.Aexpr |] -> ()
  | _ -> Alcotest.fail "first call arg shapes");
  let c1 = List.nth s.Summary.ps_calls 1 in
  match c1.Summary.cs_args.(0) with
  | Summary.Alit (Value.Real 2.5) -> ()
  | _ -> Alcotest.fail "real literal arg"

let test_summary_formal_args () =
  let _, _, summaries, _, _ =
    setup
      {|proc main() { call f(1, 2); }
        proc f(a, b) { call h(b, a); }
        proc h(x, y) { }|}
  in
  let s = Summary.find summaries "f" in
  match (List.hd s.Summary.ps_calls).Summary.cs_args with
  | [| Summary.Aformal 1; Summary.Aformal 0 |] -> ()
  | _ -> Alcotest.fail "formal argument indices"

(* -- aliasing ---------------------------------------------------------- *)

let test_alias_same_var_twice () =
  let _, _, _, aliases, _ =
    setup
      {|proc main() { x = 1; call f(x, x, 2); }
        proc f(a, b, c) { }|}
  in
  Alcotest.(check bool) "a and b alias" true
    (Alias.formals_may_alias aliases "f" 0 1);
  Alcotest.(check bool) "a and c do not" false
    (Alias.formals_may_alias aliases "f" 0 2)

let test_alias_global_arg () =
  let _, _, _, aliases, _ =
    setup
      {|global g;
        proc main() { call f(g); }
        proc f(a) { }|}
  in
  Alcotest.(check bool) "a aliases g" true
    (Alias.formal_global_may_alias aliases "f" 0 "g")

let test_alias_transitive () =
  let _, _, _, aliases, _ =
    setup
      {|global g;
        proc main() { x = 1; call f(x, x); call h2(g); }
        proc f(a, b) { call h(a, b); }
        proc h(p, q) { }
        proc h2(r) { call h3(r); }
        proc h3(s) { }|}
  in
  Alcotest.(check bool) "aliases propagate down call chains" true
    (Alias.formals_may_alias aliases "h" 0 1);
  Alcotest.(check bool) "formal-global aliases propagate" true
    (Alias.formal_global_may_alias aliases "h3" 0 "g")

let test_alias_none_for_literals () =
  let _, _, _, aliases, _ =
    setup {|proc main() { call f(1, 2); } proc f(a, b) { }|}
  in
  Alcotest.(check bool) "no alias" false (Alias.formals_may_alias aliases "f" 0 1)

(* -- MOD/REF ----------------------------------------------------------- *)

let test_mod_direct () =
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { x = 1; call f(x); }
        proc f(a) { a = 2; g = 3; }|}
  in
  Alcotest.(check bool) "f modifies its formal" true
    (Modref.formal_modified modref "f" 0);
  Alcotest.(check bool) "f modifies g" true
    (Modref.global_modified_in modref "f" "g");
  Alcotest.(check bool) "main modifies g transitively" true
    (Modref.global_modified_in modref "main" "g")

let test_mod_binding_through_args () =
  let _, _, _, _, modref =
    setup
      {|proc main() { call outer(1); }
        proc outer(x) { call inner(x); }
        proc inner(y) { y = 5; }|}
  in
  Alcotest.(check bool) "inner mods y" true (Modref.formal_modified modref "inner" 0);
  Alcotest.(check bool) "outer mods x via inner" true
    (Modref.formal_modified modref "outer" 0)

let test_mod_local_actual_invisible () =
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { l = 1; call f(l); }
        proc f(a) { a = 2; }|}
  in
  (* f writes main's local; that is not a MOD of any global *)
  Alcotest.(check (list string)) "no global modified" []
    (Modref.globals_modified_anywhere modref ~main:"main")

let test_mod_alias_closure () =
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { call f(g); }
        proc f(a) { a = 2; }|}
  in
  (* writing a, which aliases g, modifies g *)
  Alcotest.(check (list string)) "g modified through alias" [ "g" ]
    (Modref.globals_modified_anywhere modref ~main:"main")

let test_ref_closure () =
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { call a(); }
        proc a() { call b(); }
        proc b() { print g; }|}
  in
  Alcotest.(check bool) "b refs g" true (Modref.global_referenced_in modref "b" "g");
  Alcotest.(check bool) "a refs g transitively" true
    (Modref.global_referenced_in modref "a" "g");
  Alcotest.(check bool) "main refs g transitively" true
    (Modref.global_referenced_in modref "main" "g")

let test_call_defs_oracle () =
  let _, _, _, _, modref =
    setup
      {|global g, h;
        proc main() { x = 1; call f(x); }
        proc f(a) { a = 1; g = 2; print h; }|}
  in
  let x = Fsicp_cfg.Ir.local "x" in
  let defs =
    Modref.call_defs modref ~callee:"f" ~byref_args:[| Some x |]
  in
  let names = List.map (fun (v : Fsicp_cfg.Ir.var) -> (Fsicp_cfg.Ir.Var.name v)) defs in
  Alcotest.(check (list string)) "defines x and g" [ "g"; "x" ]
    (List.sort String.compare names);
  let refs = Modref.call_global_refs modref ~callee:"f" in
  Alcotest.(check (list string)) "references h"
    [ "h" ]
    (List.map (fun (v : Fsicp_cfg.Ir.var) -> (Fsicp_cfg.Ir.Var.name v)) refs
    |> List.sort String.compare)

let test_recursive_mod () =
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { call f(); }
        proc f() { if (c) { call f(); } g = 1; }|}
  in
  Alcotest.(check bool) "recursive MOD converges" true
    (Modref.global_modified_in modref "f" "g")

(* -- USE ---------------------------------------------------------------- *)

let test_use_flow_sensitive () =
  let p, pcg, _, _, modref =
    setup
      {|global g;
        proc main() { g = 1; call f(); }
        proc f() { print g; }|}
  in
  let lowered =
    Fsicp_prog.Prog.tbl_init pcg.Callgraph.db (fun pid ->
        Fsicp_cfg.Lower.lower_proc p (Callgraph.proc_ast pcg pid))
  in
  let use = Use.compute lowered modref pcg in
  Alcotest.(check bool) "f uses g" true (Use.global_used use "f" "g");
  (* main defines g before the call: not upward-exposed in main *)
  Alcotest.(check bool) "main kills g before use" false
    (Use.global_used use "main" "g")

let test_use_vs_ref () =
  (* REF is flow-insensitive: it keeps g for main; USE drops it. *)
  let _, _, _, _, modref =
    setup
      {|global g;
        proc main() { g = 1; call f(); }
        proc f() { print g; }|}
  in
  Alcotest.(check bool) "REF keeps g for main" true
    (Modref.global_referenced_in modref "main" "g")

let suite =
  [
    Alcotest.test_case "summary IMOD/IREF" `Quick test_summary_imod_iref;
    Alcotest.test_case "summary argument shapes" `Quick test_summary_arg_shapes;
    Alcotest.test_case "summary formal args" `Quick test_summary_formal_args;
    Alcotest.test_case "alias: same var twice" `Quick test_alias_same_var_twice;
    Alcotest.test_case "alias: global actual" `Quick test_alias_global_arg;
    Alcotest.test_case "alias: transitive" `Quick test_alias_transitive;
    Alcotest.test_case "alias: none for literals" `Quick
      test_alias_none_for_literals;
    Alcotest.test_case "MOD: direct" `Quick test_mod_direct;
    Alcotest.test_case "MOD: binding through args" `Quick
      test_mod_binding_through_args;
    Alcotest.test_case "MOD: locals invisible" `Quick
      test_mod_local_actual_invisible;
    Alcotest.test_case "MOD: alias closure" `Quick test_mod_alias_closure;
    Alcotest.test_case "REF: transitive closure" `Quick test_ref_closure;
    Alcotest.test_case "call-defs oracle" `Quick test_call_defs_oracle;
    Alcotest.test_case "MOD: recursion converges" `Quick test_recursive_mod;
    Alcotest.test_case "USE: flow-sensitive" `Quick test_use_flow_sensitive;
    Alcotest.test_case "USE vs REF" `Quick test_use_vs_ref;
  ]
