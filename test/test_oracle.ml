(** The differential oracle itself: it must accept every healthy method
    solution, reject deliberately corrupted ones (entry constants, exit
    summaries, hierarchy order — formals {e and} globals), and its shrinker
    must reduce failing programs to small Sema-clean reproducers.  The
    [testdata/regressions/] corpus of past fuzz counterexamples is replayed
    here on every run. *)

open Fsicp_lang
open Fsicp_core
module O = Fsicp_oracle.Oracle
module Shrink = Fsicp_oracle.Shrink
module L = Fsicp_scc.Lattice
module Prog = Fsicp_prog.Prog

let parse = Test_util.parse

(* Rebuild a solution with every entry rewritten by [f]. *)
let map_entries f (sol : Solution.t) =
  Solution.make ~method_name:sol.Solution.method_name ~db:sol.Solution.db
    ~entries:(Prog.Proc.Tbl.map f sol.Solution.entries)
    ~call_records:sol.Solution.call_records ~scc_runs:sol.Solution.scc_runs
    ~scc_results:sol.Solution.scc_results

(* ------------------------------------------------------------------ *)
(* solution_le must see globals                                        *)
(* ------------------------------------------------------------------ *)

let test_solution_le_globals () =
  let prog =
    parse
      {|
        global g;
        proc main() { g = 5; call f(); }
        proc f() { print g; }
      |}
  in
  let ctx = Context.create prog in
  let procs = O.reachable_procs ctx in
  let fs = Fs_icp.solve ctx in
  Alcotest.(check bool)
    "FS finds g = 5 at f's entry" true
    (L.equal (Solution.global_value fs "f" "g") (L.Const (Value.Int 5)));
  (* Demote every global to ⊥: the demoted solution is ⊑ FS but not the
     other way round.  A formals-only order would call them equal — f has
     no formals at all. *)
  let demoted =
    map_entries
      (fun e -> { e with Solution.pe_globals = [] })
      fs
  in
  Alcotest.(check bool)
    "demoted ⊑ fs" true
    (O.solution_le demoted fs ~procs);
  Alcotest.(check bool)
    "fs ⋢ demoted" false
    (O.solution_le fs demoted ~procs);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  match O.solution_le_witness fs demoted ~procs with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
      Alcotest.(check bool) "witness names the global" true (contains w "global g")

(* ------------------------------------------------------------------ *)
(* Corrupted entry constants are caught                                *)
(* ------------------------------------------------------------------ *)

let test_catches_corrupt_entry () =
  let prog =
    parse
      {|
        proc main() { x = 1; call f(x); }
        proc f(u) { print u; }
      |}
  in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  Alcotest.(check bool)
    "healthy solution passes" true
    (Result.is_ok (O.check_solution_sound prog fs));
  let corrupted =
    map_entries
      (fun e ->
        {
          e with
          Solution.pe_formals =
            Array.map
              (function
                | L.Const (Value.Int 1) -> L.Const (Value.Int 2) | v -> v)
              e.Solution.pe_formals;
        })
      fs
  in
  match O.check_solution_sound prog corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted entry constant not detected"

let test_catches_corrupt_global_entry () =
  let prog =
    parse
      {|
        global g;
        proc main() { g = 5; call f(); }
        proc f() { print g; }
      |}
  in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let corrupted =
    map_entries
      (fun e ->
        {
          e with
          Solution.pe_globals =
            List.map
              (fun (g, v) ->
                match v with
                | L.Const (Value.Int 5) -> (g, L.Const (Value.Int 6))
                | _ -> (g, v))
              e.Solution.pe_globals;
        })
      fs
  in
  match O.check_solution_sound prog corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted global entry constant not detected"

(* ------------------------------------------------------------------ *)
(* Corrupted exit summaries are caught                                 *)
(* ------------------------------------------------------------------ *)

let test_catches_corrupt_return_summary () =
  let prog =
    parse
      {|
        proc main() { u = 0; call f(u); print u; }
        proc f(v) { v = 7; }
      |}
  in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let rc = Return_consts.compute ctx ~fs in
  Alcotest.(check bool)
    "healthy summaries pass" true
    (Result.is_ok (O.check_returns_sound prog rc));
  (match Return_consts.summary_of rc "f" with
  | None -> Alcotest.fail "no exit summary for f"
  | Some s ->
      Alcotest.(check bool)
        "summary claims v = 7 at exit" true
        (L.equal s.Return_consts.rs_formals.(0) (L.Const (Value.Int 7)));
      Hashtbl.replace rc.Return_consts.summaries "f"
        {
          s with
          Return_consts.rs_formals = [| L.Const (Value.Int 8) |];
        });
  match O.check_returns_sound prog rc with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted exit summary not detected"

(* ------------------------------------------------------------------ *)
(* The whole-program oracle                                            *)
(* ------------------------------------------------------------------ *)

let test_check_program_ok_on_corpus_program () =
  let prog =
    parse
      {|
        global g;
        blockdata { g = 3; }
        proc main() { x = 2; call f(x); call f(2); print g; }
        proc f(u) { if (u > 0) { g = g + 0; } print u; }
      |}
  in
  match O.check_program ~jobs:2 prog with
  | Ok () -> ()
  | Error f -> Alcotest.failf "oracle rejected a healthy program: %a" O.pp_failure f

let test_cycle_free_gating () =
  (* Per-SCC hierarchy gating: only procedures in or downstream of a PCG
     cycle are exempt from the poly⊑fs / fi⊑fs comparisons.  Here [r] is
     self-recursive and calls [b], so {r, b} are exempt, while [main]
     (upstream of the cycle) and [a] (disjoint from it) must still be
     checked — and the whole cyclic program must pass the full oracle. *)
  let prog =
    parse
      {|
        proc main() { call a(); call r(2); }
        proc a() { x = 1; print x; }
        proc r(n) { if (n > 0) { call r(n - 1); } call b(n); }
        proc b(m) { print m; }
      |}
  in
  let ctx = Context.create prog in
  let sorted = List.sort String.compare in
  Alcotest.(check (list string))
    "cycle-free region of a cyclic program"
    [ "a"; "main" ]
    (sorted (O.cycle_free_procs ctx));
  let acyclic =
    parse {| proc main() { x = 3; call f(x); } proc f(u) { print u; } |}
  in
  let actx = Context.create acyclic in
  Alcotest.(check (list string))
    "acyclic program: every procedure is cycle-free"
    (sorted (O.reachable_procs actx))
    (sorted (O.cycle_free_procs actx));
  match O.check_program ~jobs:2 prog with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "oracle rejected a healthy cyclic program: %a"
        O.pp_failure f

let test_check_seed_qcheck =
  Test_util.qcheck ~count:12 ~name:"oracle accepts generated programs"
    Test_util.seed_gen (fun seed ->
      match O.check_seed ~jobs:2 seed with
      | Ok () -> true
      | Error f -> QCheck2.Test.fail_reportf "seed %d: %a" seed O.pp_failure f)

(* The beyond-the-paper methods, exercised directly (the whole-program
   oracle also covers them, but through its own jobs handling): at both
   jobs=1 and jobs=4 the cc and vc solutions must be interpreter-sound,
   sit above FS in the extended hierarchy, and be identical across the
   two job counts. *)
let test_cc_vc_qcheck =
  Test_util.qcheck ~count:12 ~name:"cc/vc sound and above fs at jobs {1,4}"
    Test_util.seed_gen (fun seed ->
      let prog = O.program_of_seed seed in
      let solve jobs =
        let ctx = Context.create ~jobs prog in
        let fs = Fs_icp.solve ~jobs ctx in
        let cc = Cc_icp.solve ~jobs ctx in
        let vc = Vc_icp.solve ~jobs ctx in
        (ctx, fs, cc, vc)
      in
      let check jobs (ctx, fs, cc, vc) =
        let procs = O.reachable_procs ctx in
        List.iter
          (fun (name, sol) ->
            (match O.check_solution_sound prog sol with
            | Ok () -> ()
            | Error d ->
                QCheck2.Test.fail_reportf "seed %d jobs %d: %s unsound: %s"
                  seed jobs name d);
            match O.solution_le_witness fs sol ~procs with
            | None -> ()
            | Some w ->
                QCheck2.Test.fail_reportf "seed %d jobs %d: fs ⋢ %s: %s" seed
                  jobs name w)
          [ ("cc", cc); ("vc", vc) ]
      in
      let ((_, _, cc1, vc1) as r1) = solve 1 in
      let ((_, _, cc4, vc4) as r4) = solve 4 in
      check 1 r1;
      check 4 r4;
      String.equal (Solution.digest cc1) (Solution.digest cc4)
      && String.equal (Solution.digest vc1) (Solution.digest vc4))

(* The DISPATCH addendum workload (EXPERIMENTS.md gains table): the full
   oracle must accept it, and the value-context method must find strictly
   more entry constants than FS on it — the precision separation the
   calibrated suite cannot exhibit.  CC may only tie or gain, never lose. *)
let test_dispatch_addendum () =
  let prog =
    Fsicp_workloads.Spec.program (List.hd Fsicp_workloads.Spec.addendum)
  in
  (match O.check_program ~jobs:2 prog with
  | Ok () -> ()
  | Error f -> Alcotest.failf "dispatch: %a" O.pp_failure f);
  let ctx = Context.create ~jobs:1 prog in
  let fs = Fs_icp.solve ~jobs:1 ctx in
  let cc = Cc_icp.solve ctx in
  let vc = Vc_icp.solve ctx in
  let count sol =
    List.length (Solution.constant_formals sol)
    + List.length (Solution.constant_globals sol)
  in
  Alcotest.(check bool)
    "vc finds strictly more constants than fs" true
    (count vc > count fs);
  Alcotest.(check bool) "cc finds no fewer constants than fs" true
    (count cc >= count fs)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_minimises () =
  (* A synthetic "bug": the program prints the value 42 somewhere.  The
     shrinker must peel away everything else while keeping Sema-cleanness
     and the property. *)
  let prog = O.program_of_seed 11 in
  let prog =
    {
      prog with
      Ast.procs =
        List.map
          (fun (p : Ast.proc) ->
            if String.equal p.Ast.pname prog.Ast.main then
              {
                p with
                Ast.body =
                  p.Ast.body
                  @ [
                      {
                        Ast.sdesc = Ast.Print (Ast.Const (Value.Int 42));
                        spos = Ast.no_pos;
                      };
                    ];
              }
            else p)
          prog.Ast.procs;
    }
  in
  let prints_42 p =
    match Fsicp_interp.Interp.run_opt ~fuel:500_000 p with
    | None -> false
    | Some r -> List.exists (Value.equal (Value.Int 42)) r.Fsicp_interp.Interp.prints
  in
  Alcotest.(check bool) "seed program has the property" true (prints_42 prog);
  let small = Shrink.shrink ~still_fails:prints_42 prog in
  Sema.check_exn small;
  Alcotest.(check bool) "shrunk program keeps the property" true (prints_42 small);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to few statements (got %d)" (Shrink.stmt_count small))
    true
    (Shrink.stmt_count small <= 3);
  Alcotest.(check bool)
    "only main survives" true
    (List.length small.Ast.procs = 1)

let test_shrink_respects_budget () =
  let prog = O.program_of_seed 12 in
  let calls = ref 0 in
  let still_fails _ =
    incr calls;
    true
  in
  ignore (Shrink.shrink ~max_checks:25 ~still_fails prog);
  Alcotest.(check bool)
    (Printf.sprintf "bounded candidate evaluations (got %d)" !calls)
    true (!calls <= 25)

(* ------------------------------------------------------------------ *)
(* Reproducer corpus replay                                            *)
(* ------------------------------------------------------------------ *)

let regressions_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "testdata") then
      Filename.concat (Filename.concat dir "testdata") "regressions"
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "testdata directory not found"
      else find parent
  in
  find (Sys.getcwd ())

let regression_files () =
  if Sys.file_exists regressions_dir && Sys.is_directory regressions_dir then
    Sys.readdir regressions_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mf")
    |> List.sort String.compare
  else []

let test_regression_replay name () =
  let path = Filename.concat regressions_dir name in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let prog = Parser.program_of_string src in
  Sema.check_exn prog;
  (match O.check_program ~jobs:2 prog with
  | Ok () -> ()
  | Error f -> Alcotest.failf "%s: %a" name O.pp_failure f);
  (* Replayed reproducers must also clear translation validation — this is
     how [fsicp fuzz --vc] counterexamples stay fixed. *)
  match O.check_transform_vc prog with
  | Ok () -> ()
  | Error f -> Alcotest.failf "%s: %a" name O.pp_failure f

let test_write_reproducer_roundtrip () =
  let prog =
    parse {| proc main() { x = 3; call f(x); } proc f(u) { print u; } |}
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fsicp-oracle-test" in
  let failure = { O.f_check = "sound:fs"; f_detail = "demo" } in
  let path = O.write_reproducer ~dir ~name:"roundtrip" ~failure ~seed:1 prog in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let reparsed = Parser.program_of_string src in
  Alcotest.(check bool)
    "reproducer reparses to the same program" true
    (Ast.equal_program prog reparsed);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "solution_le sees globals" `Quick test_solution_le_globals;
    Alcotest.test_case "catches corrupt formal entry" `Quick
      test_catches_corrupt_entry;
    Alcotest.test_case "catches corrupt global entry" `Quick
      test_catches_corrupt_global_entry;
    Alcotest.test_case "catches corrupt exit summary" `Quick
      test_catches_corrupt_return_summary;
    Alcotest.test_case "whole-program oracle accepts healthy program" `Quick
      test_check_program_ok_on_corpus_program;
    Alcotest.test_case "per-SCC hierarchy gating" `Quick
      test_cycle_free_gating;
    test_check_seed_qcheck;
    test_cc_vc_qcheck;
    Alcotest.test_case "dispatch addendum: vc strictly beats fs" `Quick
      test_dispatch_addendum;
    Alcotest.test_case "shrinker minimises" `Quick test_shrink_minimises;
    Alcotest.test_case "shrinker respects budget" `Quick
      test_shrink_respects_budget;
    Alcotest.test_case "reproducer round-trips" `Quick
      test_write_reproducer_roundtrip;
  ]
  @ List.map
      (fun f ->
        Alcotest.test_case ("regression " ^ f) `Quick (test_regression_replay f))
      (regression_files ())
