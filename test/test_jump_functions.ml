(** Tests for the jump-function baselines and the polynomial algebra. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_scc
module L = Lattice
module JF = Jump_functions

let lat = Test_util.lattice_testable

let solve variant src =
  let ctx = Context.create (Test_util.parse src) in
  JF.solve ctx variant

(* -- Poly algebra ------------------------------------------------------- *)

let test_poly_basics () =
  let f0 = Poly.formal 0 and f1 = Poly.formal 1 in
  let two = Poly.const (Value.Int 2) in
  (* 2*f0 + f1 *)
  let p =
    match Poly.mul two f0 with
    | Some tf0 -> (
        match Poly.add tf0 f1 with Some p -> p | None -> Alcotest.fail "add")
    | None -> Alcotest.fail "mul"
  in
  Alcotest.(check (option Test_util.value_testable))
    "eval 2*3+4" (Some (Value.Int 10))
    (Poly.eval p (fun i -> Some (Value.Int (i + 3))));
  Alcotest.(check (list int)) "formals used" [ 0; 1 ] (Poly.formals_used p)

let test_poly_cancellation () =
  let f0 = Poly.formal 0 in
  match Poly.sub f0 f0 with
  | Some p ->
      Alcotest.(check (option Test_util.value_testable))
        "f0 - f0 = 0" (Some (Value.Int 0)) (Poly.is_const p)
  | None -> Alcotest.fail "sub"

let test_poly_product_of_sums () =
  (* (f0 + 1) * (f0 - 1) = f0^2 - 1 *)
  let f0 = Poly.formal 0 in
  let one = Poly.const (Value.Int 1) in
  let a = Option.get (Poly.add f0 one) in
  let b = Option.get (Poly.sub f0 one) in
  let p = Option.get (Poly.mul a b) in
  Alcotest.(check (option Test_util.value_testable))
    "eval at f0=5: 24" (Some (Value.Int 24))
    (Poly.eval p (fun _ -> Some (Value.Int 5)))

let test_poly_degree_cap () =
  (* repeated squaring exceeds the degree cap and gives up *)
  let rec pow p n = if n = 0 then Some p else
    match Poly.mul p p with Some q -> pow q (n - 1) | None -> None
  in
  Alcotest.(check bool) "degree cap triggers" true
    (pow (Poly.formal 0) 5 = None)

let test_poly_equal_normalised () =
  let f0 = Poly.formal 0 and f1 = Poly.formal 1 in
  let a = Option.get (Poly.add f0 f1) in
  let b = Option.get (Poly.add f1 f0) in
  Alcotest.(check bool) "f0+f1 = f1+f0" true (Poly.equal a b)

(* -- variants ------------------------------------------------------------ *)

let src_chain =
  {|proc main() { call f(3, x); }
    proc f(a, b) { call g(a, a + 1, a * a + 2); }
    proc g(p, q, r) { print p + q + r; }|}

let test_literal_variant () =
  let sol = solve JF.Literal src_chain in
  Alcotest.check lat "literal: direct literal" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0);
  Alcotest.check lat "literal: formal arg opaque" L.Bot
    (Solution.formal_value sol "g" 0);
  Alcotest.check lat "literal: expression opaque" L.Bot
    (Solution.formal_value sol "g" 1)

let test_pass_through_variant () =
  let sol = solve JF.Pass_through src_chain in
  Alcotest.check lat "pass-through: forwarded formal" (L.Const (Value.Int 3))
    (Solution.formal_value sol "g" 0);
  Alcotest.check lat "pass-through: a+1 opaque" L.Bot
    (Solution.formal_value sol "g" 1)

let test_polynomial_variant () =
  let sol = solve JF.Polynomial src_chain in
  Alcotest.check lat "poly: a+1 = 4" (L.Const (Value.Int 4))
    (Solution.formal_value sol "g" 1);
  Alcotest.check lat "poly: a*a+2 = 11" (L.Const (Value.Int 11))
    (Solution.formal_value sol "g" 2)

let test_intra_variant () =
  let sol =
    solve JF.Intra
      {|proc main() { x = 5; call f(x, y); }
        proc f(a, b) { print a; }|}
  in
  Alcotest.check lat "intra: locally constant arg" (L.Const (Value.Int 5))
    (Solution.formal_value sol "f" 0);
  Alcotest.check lat "intra: unknown local" L.Bot
    (Solution.formal_value sol "f" 1)

let test_pass_through_requires_unmodified () =
  let sol =
    solve JF.Pass_through
      {|proc main() { call f(3); }
        proc f(a) { a = a + 1; call g(a); }
        proc g(b) { print b; }|}
  in
  Alcotest.check lat "modified formal is not pass-through" L.Bot
    (Solution.formal_value sol "g" 0)

let test_pass_through_flow_sensitive_detection () =
  (* a is modified only AFTER the call: the SSA-version-0 test accepts it,
     which is more precise than a whole-procedure MOD check. *)
  let sol =
    solve JF.Pass_through
      {|proc main() { call f(3); }
        proc f(a) { call g(a); a = 9; }
        proc g(b) { print b; }|}
  in
  Alcotest.check lat "pass-through before later modification"
    (L.Const (Value.Int 3))
    (Solution.formal_value sol "g" 0)

let test_poly_does_not_prune_formal_branches () =
  (* The defining weakness vs the FS method (paper Figure 1's f2). *)
  let src =
    {|proc main() { call f(0); }
      proc f(a) {
        if (a != 0) { y = 1; } else { y = 0; }
        call g(y);
      }
      proc g(b) { print b; }|}
  in
  let poly = solve JF.Polynomial src in
  Alcotest.check lat "polynomial cannot see pruned branch" L.Bot
    (Solution.formal_value poly "g" 0);
  let ctx = Context.create (Test_util.parse src) in
  let fs = Fs_icp.solve ctx in
  Alcotest.check lat "flow-sensitive can" (L.Const (Value.Int 0))
    (Solution.formal_value fs "g" 0)

let test_globals_not_propagated () =
  let sol =
    solve JF.Polynomial
      {|blockdata { g = 4; }
        proc main() { call f(); }
        proc f() { print g; }|}
  in
  Alcotest.check lat "jump functions ignore globals" L.Bot
    (Solution.global_value sol "f" "g")

let test_cycles_converge () =
  let sol =
    solve JF.Polynomial
      {|proc main() { call f(3); }
        proc f(a) { if (u) { call f(a); } print a; }|}
  in
  Alcotest.check lat "identity recursion keeps constant"
    (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0);
  let sol2 =
    solve JF.Polynomial
      {|proc main() { call f(3); }
        proc f(a) { if (u) { call f(a + 1); } print a; }|}
  in
  Alcotest.check lat "increasing recursion lowers to bot" L.Bot
    (Solution.formal_value sol2 "f" 0)

(* -- hierarchy property --------------------------------------------------- *)

let prop_hierarchy =
  Test_util.qcheck ~count:40
    ~name:"literal ⊑ intra ⊑ pass-through ⊑ polynomial ⊑ FS (acyclic)"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_back_edge_prob = 0.0;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let ctx = Context.create prog in
      let procs = Test_util.reachable_procs ctx in
      let lit = JF.solve ctx JF.Literal in
      let intra = JF.solve ctx JF.Intra in
      let pass = JF.solve ctx JF.Pass_through in
      let poly = JF.solve ctx JF.Polynomial in
      let fs = Fs_icp.solve ctx in
      Test_util.solution_le lit intra ~procs
      && Test_util.solution_le intra pass ~procs
      && Test_util.solution_le pass poly ~procs
      && Test_util.solution_le poly fs ~procs)

let prop_sound =
  Test_util.qcheck ~count:40 ~name:"all jump-function variants sound"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      List.for_all
        (fun variant ->
          match
            Test_util.check_solution_sound prog (JF.solve ctx variant)
          with
          | Ok () -> true
          | Error msg ->
              QCheck2.Test.fail_reportf "%s: %s" (JF.variant_name variant) msg)
        JF.all_variants)

let suite =
  [
    Alcotest.test_case "poly basics" `Quick test_poly_basics;
    Alcotest.test_case "poly cancellation" `Quick test_poly_cancellation;
    Alcotest.test_case "poly product of sums" `Quick test_poly_product_of_sums;
    Alcotest.test_case "poly degree cap" `Quick test_poly_degree_cap;
    Alcotest.test_case "poly normalisation" `Quick test_poly_equal_normalised;
    Alcotest.test_case "literal variant" `Quick test_literal_variant;
    Alcotest.test_case "pass-through variant" `Quick test_pass_through_variant;
    Alcotest.test_case "polynomial variant" `Quick test_polynomial_variant;
    Alcotest.test_case "intra variant" `Quick test_intra_variant;
    Alcotest.test_case "pass-through needs unmodified" `Quick
      test_pass_through_requires_unmodified;
    Alcotest.test_case "pass-through is flow-sensitive" `Quick
      test_pass_through_flow_sensitive_detection;
    Alcotest.test_case "polynomial misses pruned branches" `Quick
      test_poly_does_not_prune_formal_branches;
    Alcotest.test_case "globals not propagated" `Quick
      test_globals_not_propagated;
    Alcotest.test_case "cycles converge" `Quick test_cycles_converge;
    prop_hierarchy;
    prop_sound;
  ]
