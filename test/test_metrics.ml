(** Tests for the paper's metrics (§4): the counting rules behind Tables
    1–5, exercised on crafted programs where every count is known by hand. *)

open Fsicp_core

let setup ?(floats = true) src =
  let prog = Test_util.parse src in
  let ctx = Context.create ~floats prog in
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ~fi ctx in
  (ctx, fi, fs)

let candidates ?floats src =
  let ctx, fi, fs = setup ?floats src in
  Metrics.candidates ctx ~fi ~fs ~name:"t"

let propagated ?floats src =
  let ctx, fi, fs = setup ?floats src in
  Metrics.propagated ctx ~fi ~fs ~name:"t"

let test_arg_and_imm_counts () =
  let c =
    candidates
      {|proc main() { x = 1; call f(1, x, x + 1); call f(2, 3, 4); }
        proc f(a, b, c) { print a; }|}
  in
  Alcotest.(check int) "six arguments" 6 c.Metrics.cd_args;
  Alcotest.(check int) "four literals" 4 c.Metrics.cd_imm

let test_fi_vs_fs_args () =
  let c =
    candidates
      {|proc main() { x = 5; call f(1, x); }
        proc f(a, b) { print a + b; }|}
  in
  (* FI sees the literal only; FS also sees the local constant *)
  Alcotest.(check int) "FI args" 1 c.Metrics.cd_fi;
  Alcotest.(check int) "FS args" 2 c.Metrics.cd_fs

let test_dead_site_not_counted () =
  let c =
    candidates
      {|proc main() { if (0) { call f(1); } call f(2); }
        proc f(a) { print a; }|}
  in
  (* IMM counts both textually; FS counts only the live site *)
  Alcotest.(check int) "IMM textual" 2 c.Metrics.cd_imm;
  Alcotest.(check int) "FS live only" 1 c.Metrics.cd_fs

let test_global_candidates_and_sites () =
  let c =
    candidates
      {|blockdata { g = 1; h = 2; }
        proc main() { h = 9; call f(); call f(); call other(); }
        proc f() { print g; print h; }
        proc other() { }|}
  in
  (* candidates: both blockdata globals *)
  Alcotest.(check int) "two candidates" 2 c.Metrics.cd_gl_fi;
  (* FS sites: g is constant and referenced by f at two sites; h is
     constant at the sites too (assigned 9 before both calls)! So g and h
     count at both calls to f; nothing at the call to other (no refs). *)
  Alcotest.(check int) "four (site,global) pairs" 4 c.Metrics.cd_gl_fs;
  (* main mentions h (writes it) and not g... visibility counts reads or
     writes in the caller: h visible, g invisible *)
  Alcotest.(check int) "two visible" 2 c.Metrics.cd_gl_vis

let test_invisible_global () =
  let c =
    candidates
      {|global g;
        proc main() { g = 5; call mid(); }
        proc mid() { call leaf(); }
        proc leaf() { print g; }|}
  in
  (* g reaches both call sites and leaf references it (directly; mid
     transitively): 2 counting sites.  Visible: main mentions g (1); mid
     does not (0). *)
  Alcotest.(check int) "two counting sites" 2 c.Metrics.cd_gl_fs;
  Alcotest.(check int) "one visible" 1 c.Metrics.cd_gl_vis

let test_propagated_formals () =
  let p =
    propagated
      {|proc main() { x = 7; call f(1, x); call f(1, x); call g(2); call g(3); }
        proc f(a, b) { print a + b; }
        proc g(c) { print c; }|}
  in
  Alcotest.(check int) "three formals" 3 p.Metrics.pr_fp;
  (* FI: f.a = 1; FS adds f.b = 7; g.c collides *)
  Alcotest.(check int) "FI formals" 1 p.Metrics.pr_fi;
  Alcotest.(check int) "FS formals" 2 p.Metrics.pr_fs;
  Alcotest.(check int) "three procs" 3 p.Metrics.pr_procs

let test_propagated_globals_direct_ref_only () =
  let p =
    propagated
      {|blockdata { g = 1; }
        proc main() { call direct(); call indirect(); }
        proc direct() { print g; }
        proc indirect() { call direct(); }|}
  in
  (* g counts for main? main doesn't read g directly. direct reads it;
     indirect only transitively -> counted once for direct only *)
  Alcotest.(check int) "FI globals: direct refs only" 1 p.Metrics.pr_gl_fi;
  Alcotest.(check int) "FS agrees here" 1 p.Metrics.pr_gl_fs

let test_float_ablation () =
  let with_f =
    propagated
      {|proc main() { call f(2.5, 3); } proc f(a, b) { print a + b; }|}
  in
  let without_f =
    propagated ~floats:false
      {|proc main() { call f(2.5, 3); } proc f(a, b) { print a + b; }|}
  in
  Alcotest.(check int) "floats on: both formals" 2 with_f.Metrics.pr_fs;
  Alcotest.(check int) "floats off: int only" 1 without_f.Metrics.pr_fs

let test_counted_once_per_proc () =
  (* The paper's headline rule: a constant propagated to a procedure is
     counted once regardless of how many uses it has. *)
  let p =
    propagated
      {|proc main() { call f(4); }
        proc f(a) { print a; print a; print a + a; }|}
  in
  Alcotest.(check int) "one formal, counted once" 1 p.Metrics.pr_fs

let test_substitutions_row () =
  let ctx, fi, fs =
    setup
      {|proc main() { x = 2; call f(x); }
        proc f(a) { print a; print a; }|}
  in
  let row = Metrics.substitutions ctx ~fi ~fs ~name:"t" () in
  (* FS: x used at the call site (1) + a used twice in f = 3.
     FI: knows nothing interprocedural; x is still an intraprocedural
     constant in main (1 use at the call). *)
  Alcotest.(check int) "FS substitutions" 3 row.Metrics.sb_fs;
  Alcotest.(check int) "FI substitutions" 1 row.Metrics.sb_fi;
  Alcotest.(check bool) "poly between" true
    (row.Metrics.sb_poly >= row.Metrics.sb_fi
    && row.Metrics.sb_poly <= row.Metrics.sb_fs)

let test_pct_edge_cases () =
  Alcotest.(check (float 0.0)) "zero denominator" 0.0 (Metrics.pct 5 0);
  Alcotest.(check (float 0.0)) "zero of zero" 0.0 (Metrics.pct 0 0);
  Alcotest.(check (float 0.0)) "zero numerator" 0.0 (Metrics.pct 0 7);
  Alcotest.(check (float 1e-9)) "half" 50.0 (Metrics.pct 1 2);
  Alcotest.(check (float 1e-9)) "all" 100.0 (Metrics.pct 3 3);
  Alcotest.(check (float 1e-9)) "over 100 allowed" 200.0 (Metrics.pct 4 2)

(* The warm-path metric reads the scc.block_visits trace counter; the two
   views must agree, and a flow-sensitive solve on a fresh context must
   advance it (monotonically between resets). *)
let test_scc_block_visits_counter () =
  let before = Metrics.scc_block_visits () in
  let _, _, _ = setup {|proc main() { x = 1; print x; }|} in
  let after = Metrics.scc_block_visits () in
  Alcotest.(check bool)
    (Printf.sprintf "solve advances scc.block_visits (%d -> %d)" before after)
    true (after > before);
  Alcotest.(check int) "agrees with the trace counter"
    (Fsicp_trace.Trace.counter_total "scc.block_visits")
    (Metrics.scc_block_visits ())

let prop_fs_args_at_least_fi =
  Test_util.qcheck ~count:40 ~name:"FS candidate args >= FI's (acyclic)"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_back_edge_prob = 0.0;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let ctx = Context.create prog in
      let fi = Fi_icp.solve ctx in
      let fs = Fs_icp.solve ~fi ctx in
      let c = Metrics.candidates ctx ~fi ~fs ~name:"p" in
      c.Metrics.cd_fs >= c.Metrics.cd_fi && c.Metrics.cd_fi >= 0)

let prop_imm_le_args =
  Test_util.qcheck ~count:40 ~name:"IMM <= ARG always"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fi = Fi_icp.solve ctx in
      let fs = Fs_icp.solve ~fi ctx in
      let c = Metrics.candidates ctx ~fi ~fs ~name:"p" in
      c.Metrics.cd_imm <= c.Metrics.cd_args
      && c.Metrics.cd_gl_vis <= c.Metrics.cd_gl_fs)

let suite =
  [
    Alcotest.test_case "ARG and IMM counts" `Quick test_arg_and_imm_counts;
    Alcotest.test_case "FI vs FS argument counts" `Quick test_fi_vs_fs_args;
    Alcotest.test_case "dead sites not counted" `Quick test_dead_site_not_counted;
    Alcotest.test_case "global candidates and sites" `Quick
      test_global_candidates_and_sites;
    Alcotest.test_case "invisible globals" `Quick test_invisible_global;
    Alcotest.test_case "propagated formals" `Quick test_propagated_formals;
    Alcotest.test_case "globals need direct refs" `Quick
      test_propagated_globals_direct_ref_only;
    Alcotest.test_case "float ablation" `Quick test_float_ablation;
    Alcotest.test_case "counted once per procedure" `Quick
      test_counted_once_per_proc;
    Alcotest.test_case "substitutions row" `Quick test_substitutions_row;
    Alcotest.test_case "pct edge cases" `Quick test_pct_edge_cases;
    Alcotest.test_case "scc.block_visits counter" `Quick
      test_scc_block_visits_counter;
    prop_fs_args_at_least_fi;
    prop_imm_le_args;
  ]
