(** Tests for the dominator computation: unit cases on crafted CFGs plus a
    property comparing against a naive O(n²) dataflow reference on the CFGs
    of generated programs. *)

open Fsicp_cfg

let lower_all seed =
  let p = Test_util.program_of_seed seed in
  Lower.lower_program p

(* Naive dominators: iterate Dom(b) = {b} ∪ ⋂ Dom(preds) to fixpoint. *)
let naive_dominators (cfg : Ir.cfg) : bool array array =
  let n = Array.length cfg.Ir.blocks in
  let preds = Ir.predecessors cfg in
  let full = Array.init n (fun _ -> Array.make n true) in
  let dom = full in
  dom.(cfg.Ir.entry) <- Array.init n (fun i -> i = cfg.Ir.entry);
  for i = 0 to n - 1 do
    if i <> cfg.Ir.entry then dom.(i) <- Array.make n true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if b <> cfg.Ir.entry then begin
        let inter = Array.make n true in
        (match preds.(b) with
        | [] -> Array.fill inter 0 n false (* unreachable: keep all or none *)
        | ps ->
            List.iter
              (fun p -> Array.iteri (fun i v -> inter.(i) <- inter.(i) && v) dom.(p))
              ps);
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  dom

let check_proc_dominators (p : Ir.proc) =
  let cfg = p.Ir.cfg in
  let t = Dominance.compute cfg in
  let naive = naive_dominators cfg in
  let n = Array.length cfg.Ir.blocks in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let fast = Dominance.dominates t a b in
      let slow = naive.(b).(a) in
      if fast <> slow then
        Alcotest.failf "%s: dominates %d %d: fast=%b naive=%b" p.Ir.name a b
          fast slow
    done
  done

let test_diamond () =
  let p =
    Test_util.parse
      "proc main() { if (c) { x = 1; } else { x = 2; } print x; }"
  in
  let pr = Lower.lower_proc p (Fsicp_lang.Ast.find_proc_exn p "main") in
  let t = Dominance.compute pr.Ir.cfg in
  (* entry dominates everything; neither arm dominates the join *)
  Alcotest.(check int) "entry idom itself" 0 t.Dominance.idom.(0);
  let join =
    match pr.Ir.cfg.Ir.blocks.(0).Ir.term with
    | Ir.Cond (_, a, b) ->
        (* the join is the common successor of both arms *)
        let sa = Ir.successors pr.Ir.cfg.Ir.blocks.(a) in
        let sb = Ir.successors pr.Ir.cfg.Ir.blocks.(b) in
        List.find (fun x -> List.mem x sb) sa
    | _ -> Alcotest.fail "diamond"
  in
  Alcotest.(check int) "join's idom is the branch block" 0
    t.Dominance.idom.(join)

let test_loop_dominators () =
  let p =
    Test_util.parse "proc main() { while (c) { x = x + 1; } print x; }"
  in
  let pr = Lower.lower_proc p (Fsicp_lang.Ast.find_proc_exn p "main") in
  check_proc_dominators pr

let test_frontier_diamond () =
  let p =
    Test_util.parse
      "proc main() { if (c) { x = 1; } else { x = 2; } print x; }"
  in
  let pr = Lower.lower_proc p (Fsicp_lang.Ast.find_proc_exn p "main") in
  let t = Dominance.compute pr.Ir.cfg in
  let df = Dominance.frontiers pr.Ir.cfg t in
  (* both arms have the join in their dominance frontier *)
  match pr.Ir.cfg.Ir.blocks.(0).Ir.term with
  | Ir.Cond (_, a, b) ->
      let join = List.hd (Ir.successors pr.Ir.cfg.Ir.blocks.(a)) in
      Alcotest.(check bool) "then-arm DF has join" true (List.mem join df.(a));
      Alcotest.(check bool) "else-arm DF has join" true (List.mem join df.(b));
      Alcotest.(check (list int)) "join's own DF empty" [] df.(join)
  | _ -> Alcotest.fail "diamond"

(* DF definition check: y in DF(x) iff x dominates a pred of y but does not
   strictly dominate y. *)
let check_frontier_def (p : Ir.proc) =
  let cfg = p.Ir.cfg in
  let t = Dominance.compute cfg in
  let df = Dominance.frontiers cfg t in
  let preds = Ir.predecessors cfg in
  let n = Array.length cfg.Ir.blocks in
  for x = 0 to n - 1 do
    if t.Dominance.idom.(x) <> -1 then
      for y = 0 to n - 1 do
        if t.Dominance.idom.(y) <> -1 then begin
          let dominates_pred =
            List.exists
              (fun pr ->
                t.Dominance.idom.(pr) <> -1 && Dominance.dominates t x pr)
              preds.(y)
          in
          let strictly = x <> y && Dominance.dominates t x y in
          let expected = dominates_pred && not strictly in
          let got = List.mem y df.(x) in
          if expected <> got then
            Alcotest.failf "%s: DF(%d) ∋ %d: expected %b got %b" p.Ir.name x y
              expected got
        end
      done
  done

let prop_dominators_match_naive =
  Test_util.qcheck ~count:30 ~name:"CHK dominators = naive dataflow"
    Test_util.seed_gen
    (fun seed ->
      List.iter check_proc_dominators (lower_all seed);
      true)

let prop_frontier_definition =
  Test_util.qcheck ~count:30 ~name:"dominance frontier matches definition"
    Test_util.seed_gen
    (fun seed ->
      List.iter check_frontier_def (lower_all seed);
      true)

let suite =
  [
    Alcotest.test_case "diamond dominators" `Quick test_diamond;
    Alcotest.test_case "loop dominators vs naive" `Quick test_loop_dominators;
    Alcotest.test_case "diamond frontier" `Quick test_frontier_diamond;
    prop_dominators_match_naive;
    prop_frontier_definition;
  ]
