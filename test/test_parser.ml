(** Tests for the MiniFort parser, including the pretty-printer round-trip
    property (parse ∘ print = id up to positions). *)

open Fsicp_lang

let expr s = Parser.expr_of_string s

let expr_testable =
  Alcotest.testable
    (fun ppf e -> Fmt.string ppf (Pretty.expr_to_string e))
    Ast.equal_expr

let check_expr name expected src =
  Alcotest.check expr_testable name expected (expr src)

let test_precedence () =
  check_expr "mul binds tighter than add"
    Ast.(binary Ops.Add (var "a") (binary Ops.Mul (var "b") (var "c")))
    "a + b * c";
  check_expr "left associativity of -"
    Ast.(binary Ops.Sub (binary Ops.Sub (var "a") (var "b")) (var "c"))
    "a - b - c";
  check_expr "comparison below arithmetic"
    Ast.(binary Ops.Lt (binary Ops.Add (var "a") (var "b")) (var "c"))
    "a + b < c";
  check_expr "and below comparison"
    Ast.(
      binary Ops.And
        (binary Ops.Lt (var "a") (var "b"))
        (binary Ops.Gt (var "c") (var "d")))
    "a < b && c > d";
  check_expr "or below and"
    Ast.(
      binary Ops.Or
        (binary Ops.And (var "a") (var "b"))
        (var "c"))
    "a && b || c";
  check_expr "parens override"
    Ast.(binary Ops.Mul (binary Ops.Add (var "a") (var "b")) (var "c"))
    "(a + b) * c"

let test_unary () =
  check_expr "negated literal folds" (Ast.int (-3)) "-3";
  check_expr "negated real folds" (Ast.real (-0.5)) "-0.5";
  check_expr "negated variable" Ast.(unary Ops.Neg (var "x")) "-x";
  check_expr "double negation folds" (Ast.int 3) "--3";
  check_expr "not" Ast.(unary Ops.Not (var "x")) "!x";
  check_expr "neg binds tighter than *"
    Ast.(binary Ops.Mul (unary Ops.Neg (var "x")) (var "y"))
    "-x * y"

let test_program_structure () =
  let p =
    Test_util.parse
      {|
      global gx, gy;
      blockdata { gz = 3; gw = 2.5; }
      proc main() { call s(1); }
      proc s(a) { print a; }
      |}
  in
  Alcotest.(check (list string)) "globals in order"
    [ "gx"; "gy"; "gz"; "gw" ] p.Ast.globals;
  Alcotest.(check int) "two procs" 2 (List.length p.Ast.procs);
  Alcotest.(check (list (pair string Test_util.value_testable)))
    "blockdata"
    [ ("gz", Value.Int 3); ("gw", Value.Real 2.5) ]
    p.Ast.blockdata

let test_blockdata_implicit_global () =
  let p = Test_util.parse "blockdata { g = 1; } proc main() { print g; }" in
  Alcotest.(check (list string)) "blockdata implies global" [ "g" ]
    p.Ast.globals

let test_statements () =
  let p =
    Test_util.parse
      {|
      proc main() {
        x = 1;
        if (x > 0) { y = 2; } else { y = 3; }
        if (y > 0) { z = 1; }
        while (z < 10) { z = z + 1; }
        call s(x, z + 1, 4);
        print z;
        return;
      }
      proc s(a, b, c) { }
      |}
  in
  let main = Ast.find_proc_exn p "main" in
  Alcotest.(check int) "seven statements" 7 (List.length main.Ast.body);
  match (List.nth main.Ast.body 2).Ast.sdesc with
  | Ast.If (_, _, []) -> ()
  | _ -> Alcotest.fail "if without else should have empty else block"

let test_call_args () =
  let p = Test_util.parse "proc main() { call s(1, x, x + 1); } proc s(a,b,c) {}" in
  let main = Ast.find_proc_exn p "main" in
  match (List.hd main.Ast.body).Ast.sdesc with
  | Ast.Call ("s", [ Ast.Const _; Ast.Var "x"; Ast.Binary _ ]) -> ()
  | _ -> Alcotest.fail "call argument shapes"

let test_parse_errors () =
  let raises src =
    match Parser.program_of_string src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  raises "proc main() { x = ; }";
  raises "proc main() { if x { } }";
  raises "proc main() { call s(1,) ; }";
  raises "proc main( { }";
  raises "proc main() { x = 1 }";
  raises "junk";
  raises "proc main() { while () { } }"

let test_sema_errors () =
  let errs src =
    match Sema.check (Parser.program_of_string src) with
    | Ok () -> Alcotest.failf "expected semantic error for %S" src
    | Error es -> es
  in
  ignore (errs "proc notmain() { }");
  ignore (errs "proc main(x) { }");
  ignore (errs "proc main() { call missing(); }");
  ignore (errs "proc main() { call s(1); } proc s(a, b) { }");
  ignore (errs "proc main() { } proc main() { }");
  ignore (errs "proc main() { } proc s(a, a) { }");
  (* "global g; global g;" is deduplicated by the parser, not an error *)
  ignore (errs "blockdata { g = 1; g = 2; } proc main() { }")

let test_sema_ok () =
  (* Shadowing: a formal may share a global's name. *)
  match
    Sema.check
      (Parser.program_of_string
         "global g; proc main() { call s(1); } proc s(g) { print g; }")
  with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (Sema.errors_to_string es)

(* Round-trip: pretty-printing a generated program and reparsing yields the
   same AST (globals may reorder between declaration and blockdata, so the
   comparison normalises their order). *)
let normalize (p : Ast.program) =
  { p with Ast.globals = List.sort String.compare p.Ast.globals }

let prop_roundtrip =
  Test_util.qcheck ~count:60 ~name:"parse (print p) = p"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      let printed = Pretty.program_to_string p in
      match Parser.program_of_string printed with
      | p' -> Ast.equal_program (normalize p) (normalize p')
      | exception e ->
          QCheck2.Test.fail_reportf "reparse failed: %s@.%s"
            (Printexc.to_string e) printed)

let prop_generated_sema_clean =
  Test_util.qcheck ~count:60 ~name:"generated programs pass Sema.check"
    Test_util.seed_gen
    (fun seed ->
      match Sema.check (Test_util.program_of_seed seed) with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "unary operators" `Quick test_unary;
    Alcotest.test_case "program structure" `Quick test_program_structure;
    Alcotest.test_case "blockdata implies global" `Quick
      test_blockdata_implicit_global;
    Alcotest.test_case "statement forms" `Quick test_statements;
    Alcotest.test_case "call arguments" `Quick test_call_args;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "semantic errors" `Quick test_sema_errors;
    Alcotest.test_case "formal shadows global" `Quick test_sema_ok;
    prop_roundtrip;
    prop_generated_sema_clean;
  ]
