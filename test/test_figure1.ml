(** End-to-end reproduction of the paper's Figure 1: six methods, six
    precision levels, on the reconstructed example program. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_workloads

let sorted l = List.sort compare l

let constants_found (sol : Solution.t) : (string * int) list =
  Solution.constant_formals sol |> List.map (fun (p, i, _) -> (p, i)) |> sorted

let check_method name expected actual () =
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "%s finds exactly the Figure 1 constants" name)
    (sorted expected) actual

let ctx () = Context.create Figure1.program

let test_flow_sensitive () =
  let c = ctx () in
  let fs = Fs_icp.solve c in
  check_method "flow-sensitive"
    (List.assoc "flow-sensitive" Figure1.expected)
    (constants_found fs) ();
  (* values: f1=0 f2=0 f3=4 f4=0 f5=1 *)
  Alcotest.(check (list (pair string int)))
    "value check support" [] [];
  let v p i = Solution.formal_value fs p i in
  Alcotest.(check bool) "f1 = 0" true
    (v "sub1" 0 = Fsicp_scc.Lattice.Const (Value.Int 0));
  Alcotest.(check bool) "f2 = 0" true
    (v "sub2" 0 = Fsicp_scc.Lattice.Const (Value.Int 0));
  Alcotest.(check bool) "f3 = 4" true
    (v "sub2" 1 = Fsicp_scc.Lattice.Const (Value.Int 4));
  Alcotest.(check bool) "f4 = 0" true
    (v "sub2" 2 = Fsicp_scc.Lattice.Const (Value.Int 0));
  Alcotest.(check bool) "f5 = 1" true
    (v "sub2" 3 = Fsicp_scc.Lattice.Const (Value.Int 1))

let test_flow_insensitive () =
  let c = ctx () in
  check_method "flow-insensitive"
    (List.assoc "flow-insensitive" Figure1.expected)
    (constants_found (Fi_icp.solve c)) ()

let test_variant variant () =
  let c = ctx () in
  let name = Jump_functions.variant_name variant in
  check_method name
    (List.assoc name Figure1.expected)
    (constants_found (Jump_functions.solve c variant)) ()

let test_figure1_helper () =
  (* The Metrics.figure1 convenience must agree with the direct runs. *)
  let rows = Metrics.figure1 (ctx ()) in
  List.iter
    (fun (r : Metrics.figure1_row) ->
      let expected = List.assoc r.Metrics.f1_method Figure1.expected in
      Alcotest.(check (list (pair string int)))
        (r.Metrics.f1_method ^ " via Metrics.figure1")
        (sorted expected)
        (sorted r.Metrics.f1_constants))
    rows

let test_one_scc_per_proc () =
  let c = ctx () in
  let fs = Fs_icp.solve c in
  Alcotest.(check int)
    "FS performs exactly one SCC run per reachable procedure" 3
    fs.Solution.scc_runs

let test_program_runs () =
  (* The example program prints f2+f3+f4+f5 = 0+4+0+1 = 5. *)
  let r = Fsicp_interp.Interp.run Figure1.program in
  Alcotest.(check (list string))
    "prints 5"
    [ "5" ]
    (List.map Value.to_string r.Fsicp_interp.Interp.prints)

let suite =
  [
    Alcotest.test_case "flow-sensitive finds f1..f5" `Quick test_flow_sensitive;
    Alcotest.test_case "flow-insensitive finds f1,f3,f4" `Quick
      test_flow_insensitive;
    Alcotest.test_case "literal finds f1,f3" `Quick
      (test_variant Jump_functions.Literal);
    Alcotest.test_case "intra finds f1,f3,f5" `Quick
      (test_variant Jump_functions.Intra);
    Alcotest.test_case "pass-through finds f1,f3,f4,f5" `Quick
      (test_variant Jump_functions.Pass_through);
    Alcotest.test_case "polynomial finds f1,f3,f4,f5" `Quick
      (test_variant Jump_functions.Polynomial);
    Alcotest.test_case "Metrics.figure1 agrees" `Quick test_figure1_helper;
    Alcotest.test_case "one SCC per procedure" `Quick test_one_scc_per_proc;
    Alcotest.test_case "program prints 5" `Quick test_program_runs;
  ]
