(** Tests for the flow-insensitive ICP of paper Figure 3. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_scc
module L = Lattice

let solve src =
  let ctx = Context.create (Test_util.parse src) in
  (ctx, Fi_icp.solve ctx)

let lat = Test_util.lattice_testable

let test_literal_args () =
  let _, sol =
    solve {|proc main() { call f(3, 4); call f(3, 5); } proc f(a, b) { print a; }|}
  in
  Alcotest.check lat "same literal everywhere" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0);
  Alcotest.check lat "different literals meet to bot" L.Bot
    (Solution.formal_value sol "f" 1)

let test_pass_through () =
  let _, sol =
    solve
      {|proc main() { call f(7); }
        proc f(a) { call g(a); }
        proc g(b) { print b; }|}
  in
  Alcotest.check lat "pass-through chain" (L.Const (Value.Int 7))
    (Solution.formal_value sol "g" 0)

let test_no_pass_through_when_modified () =
  let _, sol =
    solve
      {|proc main() { call f(7); }
        proc f(a) { a = a + 1; call g(a); }
        proc g(b) { print b; }|}
  in
  Alcotest.check lat "modified formal not passed" L.Bot
    (Solution.formal_value sol "g" 0)

let test_no_pass_through_when_indirectly_modified () =
  let _, sol =
    solve
      {|proc main() { call f(7); }
        proc f(a) { call bump(a); call g(a); }
        proc bump(x) { x = x + 1; }
        proc g(b) { print b; }|}
  in
  (* a is modified indirectly (by reference through bump) *)
  Alcotest.check lat "indirect modification blocks pass-through" L.Bot
    (Solution.formal_value sol "g" 0)

let test_local_const_invisible () =
  (* The FI method sees argument shapes only — a locally computed constant
     is opaque to it (the key difference from the FS method). *)
  let _, sol =
    solve
      {|proc main() { x = 3; call f(x); }
        proc f(a) { print a; }|}
  in
  Alcotest.check lat "local constant invisible to FI" L.Bot
    (Solution.formal_value sol "f" 0)

let test_worklist_lowering_on_cycle () =
  (* Recursive pass-through: f(7) from main, but f calls itself with a+0
     shape-changing argument, lowering the recursive contribution.  The
     fp_bind worklist must lower g's formal too. *)
  let _, sol =
    solve
      {|proc main() { call f(7); }
        proc f(a) { call g(a); if (u) { call f(a + 1); } }
        proc g(b) { print b; }|}
  in
  (* f is called with 7 and with a+1 (expr) -> a is bot; the pass-through
     binding f.a -> g.b must be lowered by the worklist *)
  Alcotest.check lat "f's formal lowered" L.Bot (Solution.formal_value sol "f" 0);
  Alcotest.check lat "binding lowered transitively" L.Bot
    (Solution.formal_value sol "g" 0)

let test_cycle_stable_constant () =
  (* Recursion that passes the same literal: stays constant. *)
  let _, sol =
    solve
      {|proc main() { call f(7); }
        proc f(a) { if (u) { call f(7); } print a; }|}
  in
  Alcotest.check lat "recursive constant" (L.Const (Value.Int 7))
    (Solution.formal_value sol "f" 0)

let test_global_constants () =
  let _, sol =
    solve
      {|blockdata { g = 4; h = 5; }
        proc main() { h = 9; call f(); }
        proc f() { print g; print h; }|}
  in
  Alcotest.check lat "unmodified blockdata global" (L.Const (Value.Int 4))
    (Solution.global_value sol "f" "g");
  Alcotest.check lat "modified blockdata global dropped" L.Bot
    (Solution.global_value sol "f" "h")

let test_global_modified_through_alias () =
  let _, sol =
    solve
      {|blockdata { g = 4; }
        proc main() { call f(g); call r(); }
        proc f(a) { a = 5; }
        proc r() { print g; }|}
  in
  Alcotest.check lat "global modified via reference parameter" L.Bot
    (Solution.global_value sol "r" "g")

let test_global_constant_as_arg () =
  let _, sol =
    solve
      {|blockdata { g = 4; }
        proc main() { call f(g); }
        proc f(a) { print a; }|}
  in
  (* g is a program-wide constant, so passing it makes the formal constant
     (Figure 3: "if arg is an immediate constant or a global constant") *)
  Alcotest.check lat "global constant argument" (L.Const (Value.Int 4))
    (Solution.formal_value sol "f" 0)

let test_no_scc_runs () =
  let _, sol = solve {|proc main() { call f(1); } proc f(a) { }|} in
  Alcotest.(check int) "FI performs no flow-sensitive analyses" 0
    sol.Solution.scc_runs

let test_censor_floats () =
  let prog =
    Test_util.parse
      {|proc main() { call f(2.5, 3); } proc f(a, b) { print a + b; }|}
  in
  let ctx = Context.create ~floats:false prog in
  let sol = Fi_icp.solve ctx in
  Alcotest.check lat "float literal censored" L.Bot
    (Solution.formal_value sol "f" 0);
  Alcotest.check lat "int literal kept" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 1)

let prop_sound =
  Test_util.qcheck ~count:60 ~name:"FI solution sound w.r.t. interpreter"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let sol = Fi_icp.solve ctx in
      match Test_util.check_solution_sound prog sol with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let suite =
  [
    Alcotest.test_case "literal arguments" `Quick test_literal_args;
    Alcotest.test_case "pass-through" `Quick test_pass_through;
    Alcotest.test_case "modified formal blocks pass-through" `Quick
      test_no_pass_through_when_modified;
    Alcotest.test_case "indirect modification blocks pass-through" `Quick
      test_no_pass_through_when_indirectly_modified;
    Alcotest.test_case "local constants invisible" `Quick
      test_local_const_invisible;
    Alcotest.test_case "worklist lowering on cycles" `Quick
      test_worklist_lowering_on_cycle;
    Alcotest.test_case "stable recursive constant" `Quick
      test_cycle_stable_constant;
    Alcotest.test_case "block-data globals" `Quick test_global_constants;
    Alcotest.test_case "alias-modified global dropped" `Quick
      test_global_modified_through_alias;
    Alcotest.test_case "global constant as argument" `Quick
      test_global_constant_as_arg;
    Alcotest.test_case "zero SCC runs" `Quick test_no_scc_runs;
    Alcotest.test_case "float censoring" `Quick test_censor_floats;
    prop_sound;
  ]
