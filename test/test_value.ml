(** Unit and property tests for the value domain ({!Fsicp_lang.Value}). *)

open Fsicp_lang

let v = Test_util.value_testable
let i n = Value.Int n
let r x = Value.Real x

let binop op a b = Value.eval_binop op a b
let check_some name expected got =
  Alcotest.(check (option v)) name (Some expected) got

let test_int_arith () =
  check_some "2+3" (i 5) (binop Ops.Add (i 2) (i 3));
  check_some "2-3" (i (-1)) (binop Ops.Sub (i 2) (i 3));
  check_some "2*3" (i 6) (binop Ops.Mul (i 2) (i 3));
  check_some "7/2" (i 3) (binop Ops.Div (i 7) (i 2));
  check_some "7%2" (i 1) (binop Ops.Mod (i 7) (i 2));
  check_some "-7/2" (i (-3)) (binop Ops.Div (i (-7)) (i 2))

let test_real_arith () =
  check_some "1.5+2.5" (r 4.0) (binop Ops.Add (r 1.5) (r 2.5));
  check_some "1.5*2.0" (r 3.0) (binop Ops.Mul (r 1.5) (r 2.0));
  check_some "3.0/2.0" (r 1.5) (binop Ops.Div (r 3.0) (r 2.0))

let test_mixed_promotes () =
  check_some "1+2.5" (r 3.5) (binop Ops.Add (i 1) (r 2.5));
  check_some "2.5*2" (r 5.0) (binop Ops.Mul (r 2.5) (i 2));
  check_some "5/2.0" (r 2.5) (binop Ops.Div (i 5) (r 2.0))

let test_division_by_zero () =
  Alcotest.(check (option v)) "1/0" None (binop Ops.Div (i 1) (i 0));
  Alcotest.(check (option v)) "1%0" None (binop Ops.Mod (i 1) (i 0));
  Alcotest.(check (option v)) "1.0/0.0" None (binop Ops.Div (r 1.0) (r 0.0));
  Alcotest.(check (option v)) "1/0.0" None (binop Ops.Div (i 1) (r 0.0))

let test_comparisons () =
  check_some "2<3" (i 1) (binop Ops.Lt (i 2) (i 3));
  check_some "3<2" (i 0) (binop Ops.Lt (i 3) (i 2));
  check_some "2<=2" (i 1) (binop Ops.Le (i 2) (i 2));
  check_some "2>1" (i 1) (binop Ops.Gt (i 2) (i 1));
  check_some "2>=3" (i 0) (binop Ops.Ge (i 2) (i 3));
  check_some "2==2" (i 1) (binop Ops.Eq (i 2) (i 2));
  check_some "2!=2" (i 0) (binop Ops.Ne (i 2) (i 2));
  (* Numeric comparison across kinds: 2 == 2.0 *)
  check_some "2==2.0" (i 1) (binop Ops.Eq (i 2) (r 2.0));
  check_some "2<2.5" (i 1) (binop Ops.Lt (i 2) (r 2.5))

let test_logical () =
  check_some "1&&2" (i 1) (binop Ops.And (i 1) (i 2));
  check_some "1&&0" (i 0) (binop Ops.And (i 1) (i 0));
  check_some "0||0" (i 0) (binop Ops.Or (i 0) (i 0));
  check_some "0||7" (i 1) (binop Ops.Or (i 0) (i 7));
  check_some "0.0||0" (i 0) (binop Ops.Or (r 0.0) (i 0));
  check_some "0.5&&1" (i 1) (binop Ops.And (r 0.5) (i 1))

let test_unops () =
  Alcotest.(check (option v)) "-(3)" (Some (i (-3)))
    (Value.eval_unop Ops.Neg (i 3));
  Alcotest.(check (option v)) "-(2.5)" (Some (r (-2.5)))
    (Value.eval_unop Ops.Neg (r 2.5));
  Alcotest.(check (option v)) "!0" (Some (i 1)) (Value.eval_unop Ops.Not (i 0));
  Alcotest.(check (option v)) "!3" (Some (i 0)) (Value.eval_unop Ops.Not (i 3));
  Alcotest.(check (option v)) "!0.0" (Some (i 1))
    (Value.eval_unop Ops.Not (r 0.0))

let test_truthiness () =
  Alcotest.(check bool) "0 falsy" false (Value.truthy (i 0));
  Alcotest.(check bool) "1 truthy" true (Value.truthy (i 1));
  Alcotest.(check bool) "-1 truthy" true (Value.truthy (i (-1)));
  Alcotest.(check bool) "0.0 falsy" false (Value.truthy (r 0.0));
  Alcotest.(check bool) "0.1 truthy" true (Value.truthy (r 0.1))

let test_structural_equality () =
  (* The lattice distinguishes Int 1 from Real 1.0 (structural), while the
     language's == does not (numeric). *)
  Alcotest.(check bool) "Int 1 <> Real 1.0 structurally" false
    (Value.equal (i 1) (r 1.0));
  Alcotest.(check bool) "equal ints" true (Value.equal (i 4) (i 4));
  Alcotest.(check bool) "equal reals" true (Value.equal (r 0.5) (r 0.5))

let test_printing_roundtrip () =
  List.iter
    (fun value ->
      let s = Value.to_string value in
      let e = Parser.expr_of_string s in
      match e with
      | Ast.Const parsed ->
          Alcotest.check v (Printf.sprintf "roundtrip %s" s) value parsed
      | _ -> Alcotest.failf "literal %s did not parse to a constant" s)
    [ i 0; i 42; i 1000000; r 0.5; r 3.0; r 123.25; r 1e10 ]

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-1000) 1000);
        map (fun n -> Value.Real (float_of_int n /. 4.0)) (int_range (-1000) 1000);
      ])

let gen_binop = QCheck2.Gen.oneofl Ops.all_binops

let prop_eval_total_or_divzero =
  Test_util.qcheck ~count:500 ~name:"eval_binop is total except /0 and %0"
    QCheck2.Gen.(triple gen_binop gen_value gen_value)
    (fun (op, a, b) ->
      match Value.eval_binop op a b with
      | Some _ -> true
      | None -> (
          match op with
          | Ops.Div | Ops.Mod -> not (Value.truthy b)
          | _ -> false))

let prop_comparison_bool =
  Test_util.qcheck ~count:500 ~name:"comparisons yield 0 or 1"
    QCheck2.Gen.(triple (oneofl Ops.[ Eq; Ne; Lt; Le; Gt; Ge; And; Or ]) gen_value gen_value)
    (fun (op, a, b) ->
      match Value.eval_binop op a b with
      | Some (Value.Int (0 | 1)) -> true
      | _ -> false)

(* Real printing must be round-trippable through the lexer bit-for-bit:
   shortest decimal representation plus explicit nan/inf spellings. *)
let real_roundtrips r =
  match Parser.expr_of_string (Value.to_string (Value.Real r)) with
  | Ast.Const (Value.Real r') ->
      if Float.is_nan r then Float.is_nan r'
      else Int64.equal (Int64.bits_of_float r) (Int64.bits_of_float r')
  | _ -> false

let test_real_roundtrip_corners () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Value.real_to_string r))
        true (real_roundtrips r))
    [
      0.0; -0.0; 0.1; 1.0 /. 3.0; 0.5; 1e300; 1e-300; Float.min_float;
      Float.max_float; Float.epsilon; 4e-324 (* smallest subnormal *);
      Float.nan; Float.infinity; Float.neg_infinity; 1.000000000000001;
      9007199254740993.0;
    ]

let prop_real_roundtrip =
  Test_util.qcheck ~count:1000 ~name:"real print/lex roundtrip is bit-exact"
    QCheck2.Gen.(
      oneof
        [
          float;
          (* arbitrary bit patterns reach subnormals and huge exponents *)
          map Int64.float_of_bits int64;
        ])
    real_roundtrips

let prop_add_commutes =
  Test_util.qcheck ~count:500 ~name:"+ and * commute"
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      Value.eval_binop Ops.Add a b = Value.eval_binop Ops.Add b a
      && Value.eval_binop Ops.Mul a b = Value.eval_binop Ops.Mul b a)

let suite =
  [
    Alcotest.test_case "integer arithmetic" `Quick test_int_arith;
    Alcotest.test_case "real arithmetic" `Quick test_real_arith;
    Alcotest.test_case "mixed-mode promotion" `Quick test_mixed_promotes;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "logical operators" `Quick test_logical;
    Alcotest.test_case "unary operators" `Quick test_unops;
    Alcotest.test_case "truthiness" `Quick test_truthiness;
    Alcotest.test_case "structural vs numeric equality" `Quick
      test_structural_equality;
    Alcotest.test_case "literal print/parse roundtrip" `Quick
      test_printing_roundtrip;
    Alcotest.test_case "real roundtrip corner cases" `Quick
      test_real_roundtrip_corners;
    prop_real_roundtrip;
    prop_eval_total_or_divzero;
    prop_comparison_bool;
    prop_add_commutes;
  ]
