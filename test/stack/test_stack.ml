(** Regression: deep guarded recursion must surface as [None] from
    {!Fsicp_interp.Interp.run_opt} — a [Stack_overflow] escaping it would
    crash the fuzz harness and every analysis client.

    The dune rule runs this binary under [OCAMLRUNPARAM=l=65536] so the
    fiber stack hits its limit in milliseconds; with the default (gigantic)
    OCaml 5 limit the same overflow would cost seconds and gigabytes. *)

let () =
  let prog =
    Fsicp_lang.Parser.program_of_string
      {|proc main() { call r(0); }
        proc r(d) { d = d + 1; if (d < 100000000) { call r(d); } }|}
  in
  match Fsicp_interp.Interp.run_opt ~fuel:max_int prog with
  | None -> print_endline "stack overflow mapped to None: OK"
  | Some _ ->
      prerr_endline "expected None (stack overflow), got a completed run";
      exit 1
