(** Tests for SSA construction: structural invariants, phi placement, alias
    kills, exit names, and the [Ssa.validate] checker on generated
    programs. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ssa

let ssa_of ?effects src name =
  let p = Test_util.parse src in
  Ssa.of_proc ?effects p (Lower.lower_proc p (Ast.find_proc_exn p name))

let test_straight_line_versions () =
  let s = ssa_of "proc main() { x = 1; x = 2; print x; }" "main" in
  (* x has versions 0 (entry), 1, 2; the print uses version 2 *)
  let print_use = ref None in
  Array.iter
    (fun (b : Ssa.block) ->
      Array.iter
        (function
          | Ssa.Print (Ssa.Oname n) -> print_use := Some n
          | _ -> ())
        b.Ssa.instrs)
    s.Ssa.blocks;
  match !print_use with
  | Some n ->
      Alcotest.(check string) "prints x" "x" (Ir.Var.name n.Ssa.base);
      Alcotest.(check int) "uses latest version" 2 n.Ssa.ver
  | None -> Alcotest.fail "no print found"

let test_phi_at_join () =
  let s =
    ssa_of "proc main() { if (c) { x = 1; } else { x = 2; } print x; }" "main"
  in
  let phis = ref [] in
  Array.iteri
    (fun b (blk : Ssa.block) ->
      Array.iter
        (fun (ph : Ssa.phi) -> phis := (b, ph) :: !phis)
        blk.Ssa.phis)
    s.Ssa.blocks;
  let x_phis =
    List.filter (fun (_, ph) -> (Ir.Var.name ph.Ssa.p_name.Ssa.base) = "x") !phis
  in
  Alcotest.(check int) "exactly one phi for x" 1 (List.length x_phis);
  let _, ph = List.hd x_phis in
  Alcotest.(check int) "phi has two operands" 2 (Array.length ph.Ssa.p_args)

let test_no_phi_when_single_def () =
  let s = ssa_of "proc main() { x = 1; if (c) { y = 2; } print x; }" "main" in
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter
        (fun (ph : Ssa.phi) ->
          if (Ir.Var.name ph.Ssa.p_name.Ssa.base) = "x" then
            Alcotest.fail "x has a single def; no phi expected")
        blk.Ssa.phis)
    s.Ssa.blocks

let test_loop_phi () =
  let s =
    ssa_of "proc main() { i = 0; while (i < 3) { i = i + 1; } print i; }"
      "main"
  in
  let i_phis = ref 0 in
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter
        (fun (ph : Ssa.phi) ->
          if (Ir.Var.name ph.Ssa.p_name.Ssa.base) = "i" then incr i_phis)
        blk.Ssa.phis)
    s.Ssa.blocks;
  Alcotest.(check bool) "loop variable needs a phi" true (!i_phis >= 1)

let test_call_defines_byref () =
  let s =
    ssa_of
      {|proc main() { x = 1; call f(x); print x; }
        proc f(a) { a = 2; }|}
      "main"
  in
  (* The conservative oracle makes the call define x; the print must use the
     post-call version, not version 1. *)
  let call_def_ver = ref (-1) and print_ver = ref (-1) in
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter
        (function
          | Ssa.Call c ->
              Array.iter
                (fun ((v : Ir.var), (n : Ssa.name)) ->
                  if (Ir.Var.name v) = "x" then call_def_ver := n.Ssa.ver)
                c.Ssa.c_defs
          | Ssa.Print (Ssa.Oname n) ->
              if (Ir.Var.name n.Ssa.base) = "x" then print_ver := n.Ssa.ver
          | _ -> ())
        blk.Ssa.instrs)
    s.Ssa.blocks;
  Alcotest.(check bool) "call defines x" true (!call_def_ver > 0);
  Alcotest.(check int) "print uses post-call version" !call_def_ver !print_ver

let test_alias_kill_emitted () =
  let p =
    Test_util.parse
      {|proc main() { x = 1; call f(x, x); }
        proc f(a, b) { a = 9; print b; }|}
  in
  let ctx = Fsicp_core.Context.create p in
  let s = Fsicp_core.Context.ssa ctx "f" in
  (* assigning a must kill b (they may alias) *)
  let kills = ref [] in
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter
        (function
          | Ssa.Kill ks ->
              Array.iter (fun ((v : Ir.var), _) -> kills := (Ir.Var.name v) :: !kills) ks
          | _ -> ())
        blk.Ssa.instrs)
    s.Ssa.blocks;
  Alcotest.(check bool) "b killed by store to a" true (List.mem "b" !kills)

let test_global_uses_recorded () =
  let p =
    Test_util.parse
      {|global g;
        proc main() { g = 5; call f(); }
        proc f() { print g; }|}
  in
  let ctx = Fsicp_core.Context.create p in
  let s = Fsicp_core.Context.ssa ctx "main" in
  let recorded = ref [] in
  List.iter
    (fun (_, _, (c : Ssa.call)) ->
      Array.iter
        (fun ((v : Ir.var), _) -> recorded := (Ir.Var.name v) :: !recorded)
        c.Ssa.c_global_uses)
    (Ssa.call_sites s);
  Alcotest.(check bool) "g recorded at call to f" true (List.mem "g" !recorded)

let test_exit_names_present () =
  let s =
    ssa_of
      {|global g;
        proc main() { call f(1); }
        proc f(a) { a = 3; g = 4; }|}
      "f"
  in
  Alcotest.(check bool) "at least one return record" true
    (s.Ssa.exit_names <> []);
  let _, names = List.hd s.Ssa.exit_names in
  let find name =
    Array.to_list names
    |> List.find_opt (fun ((v : Ir.var), _) -> (Ir.Var.name v) = name)
  in
  (match find "a" with
  | Some (_, n) -> Alcotest.(check bool) "a's exit version > 0" true (n.Ssa.ver > 0)
  | None -> Alcotest.fail "formal missing from exit names");
  match find "g" with
  | Some (_, n) -> Alcotest.(check bool) "g's exit version > 0" true (n.Ssa.ver > 0)
  | None -> Alcotest.fail "global missing from exit names"

let test_def_use_chains () =
  let s = ssa_of "proc main() { x = 1; y = x + x; print y; }" "main" in
  (* version 1 of x is used twice, both in the same instr *)
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter
        (function
          | Ssa.Assign (n, _) when (Ir.Var.name n.Ssa.base) = "x" ->
              Alcotest.(check int) "x.1 has two uses (one site each)" 2
                (List.length (Ssa.uses_of s n.Ssa.id))
          | _ -> ())
        blk.Ssa.instrs)
    s.Ssa.blocks

let validate_program seed =
  let p = Test_util.program_of_seed seed in
  let ctx = Fsicp_core.Context.create p in
  let pcg = ctx.Fsicp_core.Context.pcg in
  Array.iter
    (fun pid ->
      let s = Fsicp_core.Context.ssa_at ctx pid in
      match Ssa.validate s with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s: %s"
            (Fsicp_callgraph.Callgraph.proc_name pcg pid)
            msg)
    pcg.Fsicp_callgraph.Callgraph.nodes

let prop_validate =
  Test_util.qcheck ~count:50 ~name:"SSA invariants on generated programs"
    Test_util.seed_gen
    (fun seed ->
      validate_program seed;
      true)

(* Every use's defining name id is within range and its def site is set. *)
let prop_defs_total =
  Test_util.qcheck ~count:30 ~name:"every name has a def site"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      let ctx = Fsicp_core.Context.create p in
      Array.for_all
        (fun pid ->
          let s = Fsicp_core.Context.ssa_at ctx pid in
          (* entry names are Dentry; everything else Dinstr/Dphi; just check
             array sizes line up *)
          Array.length s.Ssa.defs = s.Ssa.n_names
          && Array.length s.Ssa.use_offsets = s.Ssa.n_names + 1
          && Array.length s.Ssa.use_sites >= s.Ssa.use_offsets.(s.Ssa.n_names))
        ctx.Fsicp_core.Context.pcg.Fsicp_callgraph.Callgraph.nodes)

let suite =
  [
    Alcotest.test_case "straight-line versions" `Quick
      test_straight_line_versions;
    Alcotest.test_case "phi at join" `Quick test_phi_at_join;
    Alcotest.test_case "no phi for single def" `Quick test_no_phi_when_single_def;
    Alcotest.test_case "loop phi" `Quick test_loop_phi;
    Alcotest.test_case "call defines by-ref actuals" `Quick
      test_call_defines_byref;
    Alcotest.test_case "alias kill emitted" `Quick test_alias_kill_emitted;
    Alcotest.test_case "global uses recorded at calls" `Quick
      test_global_uses_recorded;
    Alcotest.test_case "exit names at returns" `Quick test_exit_names_present;
    Alcotest.test_case "def-use chains" `Quick test_def_use_chains;
    prop_validate;
    prop_defs_total;
  ]
