(** Integration tests over the textual corpus in [testdata/]: every program
    must parse, check, run, analyse soundly under every method, and survive
    the whole transformation pipeline with its behaviour intact. *)

open Fsicp_lang
open Fsicp_core
module I = Fsicp_interp.Interp
module L = Fsicp_scc.Lattice

(* dune runs the tests from the build directory mirror; walk up to the
   source tree root, which contains dune-project. *)
let corpus_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "testdata") then
      Filename.concat dir "testdata"
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "testdata directory not found"
      else find parent
  in
  find (Sys.getcwd ())

let load name =
  let path = Filename.concat corpus_dir name in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let prog = Parser.program_of_string src in
  Sema.check_exn prog;
  prog

let corpus =
  [ "newton.mf"; "bank.mf"; "modes.mf"; "recursive.mf"; "aliasing.mf" ]

let all_methods ctx =
  [
    ("fi", Fi_icp.solve ctx);
    ("fs", Fs_icp.solve ctx);
    ("reference", Reference.solve ctx);
    ("literal", Jump_functions.solve ctx Jump_functions.Literal);
    ("intra", Jump_functions.solve ctx Jump_functions.Intra);
    ("pass", Jump_functions.solve ctx Jump_functions.Pass_through);
    ("poly", Jump_functions.solve ctx Jump_functions.Polynomial);
  ]

let test_runs name () =
  let prog = load name in
  match I.run_opt ~fuel:2_000_000 prog with
  | Some r ->
      Alcotest.(check bool) "produces output" true (r.I.prints <> [])
  | None -> Alcotest.failf "%s failed to run" name

let test_sound name () =
  let prog = load name in
  let ctx = Context.create prog in
  List.iter
    (fun (mname, sol) ->
      match Test_util.check_solution_sound prog sol with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s/%s: %s" name mname msg)
    (all_methods ctx)

let test_pipeline_preserves name () =
  let prog = load name in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let out p = Option.map (fun r -> r.I.prints) (I.run_opt ~fuel:2_000_000 p) in
  let reference = out prog in
  let check what p =
    Sema.check_exn p;
    if out p <> reference then Alcotest.failf "%s: %s changed behaviour" name what
  in
  check "entry-constant insertion" (Transform.insert_entry_constants ctx fs);
  check "folding" (Fold.fold_program ctx fs);
  check "cloning" (fst (Clone.clone_by_constants ctx ~fs ()));
  check "inlining" (fst (Inline.inline_program ctx ()))

(* Corpus-specific expectations. *)

let test_modes_specifics () =
  let prog = load "modes.mf" in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let v p i = Solution.formal_value fs p i in
  Alcotest.check Test_util.lattice_testable "mode = 0" (L.Const (Value.Int 0))
    (v "run" 0);
  Alcotest.check Test_util.lattice_testable "chunk = 8 (pruned)"
    (L.Const (Value.Int 8)) (v "work" 1);
  Alcotest.check Test_util.lattice_testable "depth = 3 (pruned)"
    (L.Const (Value.Int 3)) (v "work" 2);
  (* the polynomial baseline cannot see through the mode branch *)
  let poly = Jump_functions.solve ctx Jump_functions.Polynomial in
  Alcotest.check Test_util.lattice_testable "poly misses chunk" L.Bot
    (Solution.formal_value poly "work" 1)

let test_bank_specifics () =
  let prog = load "bank.mf" in
  let ctx = Context.create prog in
  let fi = Fi_icp.solve ctx in
  (* block-data constants are already FI-visible *)
  Alcotest.check Test_util.lattice_testable "rate constant for FI"
    (L.Const (Value.Real 0.5))
    (Solution.global_value fi "apply_interest" "rate");
  Alcotest.check Test_util.lattice_testable "fee constant for FI"
    (L.Const (Value.Int 2))
    (Solution.global_value fi "deposit" "fee");
  (* but balance is modified through references: never constant *)
  Alcotest.check Test_util.lattice_testable "balance not constant" L.Bot
    (Solution.global_value fi "deposit" "balance");
  (* floats off: rate disappears, fee stays *)
  let ctx' = Context.create ~floats:false prog in
  let fi' = Fi_icp.solve ctx' in
  Alcotest.check Test_util.lattice_testable "rate censored" L.Bot
    (Solution.global_value fi' "apply_interest" "rate")

let test_recursive_specifics () =
  let prog = load "recursive.mf" in
  let ctx = Context.create prog in
  Alcotest.(check bool) "PCG has a cycle" true
    (Fsicp_callgraph.Callgraph.has_cycles ctx.Context.pcg);
  let fs = Fs_icp.solve ctx in
  Alcotest.(check int) "one SCC per proc under recursion" 3
    fs.Solution.scc_runs;
  (* the unit parameter is literal 1 on every edge: even FI keeps it *)
  let fi = Fi_icp.solve ctx in
  Alcotest.check Test_util.lattice_testable "unit constant in even"
    (L.Const (Value.Int 1))
    (Solution.formal_value fi "even" 1);
  Alcotest.check Test_util.lattice_testable "unit constant in odd"
    (L.Const (Value.Int 1))
    (Solution.formal_value fi "odd" 1)

let test_aliasing_specifics () =
  let prog = load "aliasing.mf" in
  let r = I.run prog in
  Alcotest.(check (list string)) "interpreter ground truth"
    [ "11"; "11"; "10"; "10" ]
    (List.map Value.to_string r.I.prints);
  (* the analysis must see the alias pair *)
  let ctx = Context.create prog in
  Alcotest.(check bool) "twice's formals alias" true
    (Fsicp_ipa.Alias.formals_may_alias ctx.Context.aliases "twice" 0 1);
  Alcotest.(check bool) "through's formal aliases the global" true
    (Fsicp_ipa.Alias.formal_global_may_alias ctx.Context.aliases "through" 0
       "shared")

let suite =
  List.concat_map
    (fun name ->
      [
        Alcotest.test_case (name ^ " runs") `Quick (test_runs name);
        Alcotest.test_case (name ^ " all methods sound") `Quick
          (test_sound name);
        Alcotest.test_case (name ^ " transformations preserve") `Quick
          (test_pipeline_preserves name);
      ])
    corpus
  @ [
      Alcotest.test_case "modes: figure-1 pattern at scale" `Quick
        test_modes_specifics;
      Alcotest.test_case "bank: block-data constants" `Quick
        test_bank_specifics;
      Alcotest.test_case "recursive: back-edge handling" `Quick
        test_recursive_specifics;
      Alcotest.test_case "aliasing: ground truth + alias pairs" `Quick
        test_aliasing_specifics;
    ]
