(** Tests for the generic dataflow framework: liveness / upward-exposed
    uses, validated against a brute-force path-enumeration reference on
    small crafted CFGs. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_dataflow

let lower src name =
  let p = Test_util.parse src in
  Lower.lower_proc p (Ast.find_proc_exn p name)

let names (s : Ir.VarSet.t) =
  Ir.VarSet.elements s |> List.map (fun (v : Ir.var) -> (Ir.Var.name v))
  |> List.sort String.compare

let test_straight_line_ue () =
  let p = lower "proc main() { x = 1; y = x + z; print y; }" "main" in
  let ue = Dataflow.upward_exposed p.Ir.cfg in
  (* z read before any write; x and y written first *)
  Alcotest.(check (list string)) "only z upward-exposed" [ "z" ] (names ue)

let test_branch_ue () =
  let p =
    lower "proc main() { if (c) { x = 1; } print x; }" "main"
  in
  let ue = Dataflow.upward_exposed p.Ir.cfg in
  (* x may be read before written (else path); c read as condition *)
  Alcotest.(check (list string)) "c and x exposed" [ "c"; "x" ] (names ue)

let test_both_arms_define () =
  let p =
    lower "proc main() { if (c) { x = 1; } else { x = 2; } print x; }" "main"
  in
  let ue = Dataflow.upward_exposed p.Ir.cfg in
  Alcotest.(check (list string)) "x defined on all paths" [ "c" ] (names ue)

let test_loop_ue () =
  let p =
    lower "proc main() { while (i < n) { i = i + 1; } }" "main"
  in
  let ue = Dataflow.upward_exposed p.Ir.cfg in
  (* i is read by the condition before the body's write on iteration 1 *)
  Alcotest.(check (list string)) "i and n exposed" [ "i"; "n" ] (names ue)

let test_call_uses_oracle () =
  let p =
    lower
      {|global g; proc main() { call f(); } proc f() { print g; }|}
      "main"
  in
  let without = Dataflow.upward_exposed p.Ir.cfg in
  Alcotest.(check (list string)) "no direct use" [] (names without);
  let with_oracle =
    Dataflow.upward_exposed
      ~call_uses:(fun callee -> if callee = "f" then [ Ir.global "g" ] else [])
      p.Ir.cfg
  in
  Alcotest.(check (list string)) "callee's use surfaces" [ "g" ]
    (names with_oracle)

let test_formal_exposed () =
  let p =
    lower
      {|proc main() { call f(1); } proc f(a) { b = a; a = 2; print b; }|}
      "f"
  in
  let ue = Dataflow.upward_exposed p.Ir.cfg in
  Alcotest.(check (list string)) "formal read before write" [ "a" ] (names ue)

(* brute force: enumerate acyclic paths up to a bound, union uses-before-defs *)
let brute_force_ue (cfg : Ir.cfg) : Ir.VarSet.t =
  let acc = ref Ir.VarSet.empty in
  let rec walk b defined depth =
    if depth < 40 then begin
      let blk = cfg.Ir.blocks.(b) in
      let defined = ref defined in
      Array.iter
        (fun ins ->
          List.iter
            (fun u ->
              if not (Ir.VarSet.mem u !defined) then acc := Ir.VarSet.add u !acc)
            (Dataflow.instr_uses ins);
          List.iter
            (fun d -> defined := Ir.VarSet.add d !defined)
            (Dataflow.instr_defs ins))
        blk.Ir.instrs;
      (match blk.Ir.term with
      | Ir.Cond (Ir.Var v, _, _) ->
          if not (Ir.VarSet.mem v !defined) then acc := Ir.VarSet.add v !acc
      | _ -> ());
      List.iter (fun s -> walk s !defined (depth + 1)) (Ir.successors blk)
    end
  in
  walk cfg.Ir.entry Ir.VarSet.empty 0;
  !acc

let prop_matches_bruteforce =
  Test_util.qcheck ~count:25 ~name:"upward-exposed ⊇ brute-force paths"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      List.for_all
        (fun (p : Ir.proc) ->
          let fast = Dataflow.upward_exposed p.Ir.cfg in
          let slow = brute_force_ue p.Ir.cfg in
          (* The fixpoint must cover every path-wise exposed use (it may
             be larger: the brute force bounds path length). *)
          Ir.VarSet.subset slow fast)
        (Lower.lower_program prog))

let suite =
  [
    Alcotest.test_case "straight-line exposure" `Quick test_straight_line_ue;
    Alcotest.test_case "one-armed branch" `Quick test_branch_ue;
    Alcotest.test_case "both arms define" `Quick test_both_arms_define;
    Alcotest.test_case "loop exposure" `Quick test_loop_ue;
    Alcotest.test_case "call-uses oracle" `Quick test_call_uses_oracle;
    Alcotest.test_case "formal exposure" `Quick test_formal_exposed;
    prop_matches_bruteforce;
  ]
