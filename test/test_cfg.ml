(** Tests for lowering and the CFG representation. *)

open Fsicp_lang
open Fsicp_cfg

let lower_main src =
  let p = Test_util.parse src in
  Lower.lower_proc p (Ast.find_proc_exn p p.Ast.main)

let lower_named src name =
  let p = Test_util.parse src in
  Lower.lower_proc p (Ast.find_proc_exn p name)

let n_blocks (p : Ir.proc) = Array.length p.Ir.cfg.Ir.blocks

let test_straight_line () =
  let p = lower_main "proc main() { x = 1; y = x + 2; print y; }" in
  Alcotest.(check int) "single block" 1 (n_blocks p);
  let b = p.Ir.cfg.Ir.blocks.(0) in
  (match b.Ir.term with
  | Ir.Ret -> ()
  | _ -> Alcotest.fail "straight-line code ends in ret");
  (* x = 1; t = x + 2; y = t; print y => 4 instructions *)
  Alcotest.(check int) "instruction count" 4 (Array.length b.Ir.instrs)

let test_if_shape () =
  let p =
    lower_main "proc main() { if (x > 0) { y = 1; } else { y = 2; } print y; }"
  in
  (* cond, then, else, join *)
  Alcotest.(check int) "four blocks" 4 (n_blocks p);
  match p.Ir.cfg.Ir.blocks.(0).Ir.term with
  | Ir.Cond (_, t, f) ->
      Alcotest.(check bool) "distinct branch targets" true (t <> f)
  | _ -> Alcotest.fail "entry ends in conditional branch"

let test_while_shape () =
  let p = lower_main "proc main() { while (x < 3) { x = x + 1; } print x; }" in
  (* pre, header, body, exit *)
  Alcotest.(check int) "four blocks" 4 (n_blocks p);
  (* the back edge exists: some block jumps to a lower-numbered one *)
  let has_back = ref false in
  Array.iteri
    (fun i b ->
      List.iter (fun s -> if s <= i then has_back := true) (Ir.successors b))
    p.Ir.cfg.Ir.blocks;
  Alcotest.(check bool) "loop back edge" true !has_back

let test_return_prunes () =
  let p = lower_main "proc main() { print 1; return; print 2; }" in
  (* the unreachable tail is pruned *)
  Ir.iter_instrs
    (fun ~block:_ ~index:_ ins ->
      match ins with
      | Ir.Print (Ir.Const (Value.Int 2)) ->
          Alcotest.fail "unreachable print survived pruning"
      | _ -> ())
    p.Ir.cfg

let test_return_in_branch () =
  let p =
    lower_main
      "proc main() { if (x) { return; } else { print 1; } print 2; }"
  in
  (* print 2 is reachable via the else branch *)
  let found = ref false in
  Ir.iter_instrs
    (fun ~block:_ ~index:_ ins ->
      match ins with
      | Ir.Print (Ir.Const (Value.Int 2)) -> found := true
      | _ -> ())
    p.Ir.cfg;
  Alcotest.(check bool) "join reachable" true !found

let test_call_lowering () =
  let p =
    lower_named
      "proc main() { call s(x, 3, x + 1); } proc s(a, b, c) { }" "main"
  in
  let call = ref None in
  Ir.iter_instrs
    (fun ~block:_ ~index:_ ins ->
      match ins with Ir.Call _ -> call := Some ins | _ -> ())
    p.Ir.cfg;
  match !call with
  | Some (Ir.Call { args; _ }) ->
      Alcotest.(check int) "three args" 3 (Array.length args);
      (match args.(0) with
      | { Ir.a_byref = Some v; a_operand = Ir.Var v' } ->
          Alcotest.(check bool) "byref var arg" true (Ir.Var.equal v v')
      | _ -> Alcotest.fail "first arg by reference");
      (match args.(1) with
      | { Ir.a_byref = None; a_operand = Ir.Const (Value.Int 3) } -> ()
      | _ -> Alcotest.fail "literal arg stays Const");
      (match args.(2) with
      | { Ir.a_byref = None; a_operand = Ir.Var { Ir.vkind = Ir.Temp; _ } } ->
          ()
      | _ -> Alcotest.fail "expression arg lowered to temp")
  | _ -> Alcotest.fail "no call instruction found"

let test_kind_resolution () =
  let p =
    lower_named
      "global g; proc main() { call s(1); } proc s(a) { l = a + g; }" "s"
  in
  let kinds = ref [] in
  Ir.iter_instrs
    (fun ~block:_ ~index:_ ins ->
      match ins with
      | Ir.Assign (v, _) -> kinds := ((Ir.Var.name v), v.Ir.vkind) :: !kinds
      | _ -> ())
    p.Ir.cfg;
  let uses = Ir.occurring_vars p in
  Alcotest.(check bool) "formal resolved" true
    (Ir.VarSet.mem (Ir.formal "a" 0) uses);
  Alcotest.(check bool) "global resolved" true
    (Ir.VarSet.mem (Ir.global "g") uses);
  Alcotest.(check bool) "local assigned" true
    (List.mem_assoc "l" !kinds)

let test_rpo_starts_at_entry () =
  let p = lower_main "proc main() { if (x) { y = 1; } print y; }" in
  let rpo = Ir.reverse_postorder p.Ir.cfg in
  Alcotest.(check int) "rpo starts at entry" p.Ir.cfg.Ir.entry rpo.(0);
  Alcotest.(check int) "rpo covers all blocks" (n_blocks p) (Array.length rpo)

let test_call_site_numbering () =
  let p =
    lower_named
      {|proc main() {
          call s(1);
          if (x) { call s(2); } else { call s(3); }
          call s(4);
        }
        proc s(a) { }|}
      "main"
  in
  Alcotest.(check int) "four call sites" 4 p.Ir.n_call_sites;
  (* ids are unique and dense *)
  let seen = Hashtbl.create 4 in
  Ir.iter_instrs
    (fun ~block:_ ~index:_ ins ->
      match ins with
      | Ir.Call { cs_id; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "cs_id %d unique" cs_id)
            false (Hashtbl.mem seen cs_id);
          Hashtbl.replace seen cs_id ()
      | _ -> ())
    p.Ir.cfg;
  Alcotest.(check int) "all ids seen" 4 (Hashtbl.length seen)

let test_preds_consistent () =
  let p =
    lower_main
      "proc main() { while (a) { if (b) { x = 1; } else { x = 2; } } print x; }"
  in
  let preds = Ir.predecessors p.Ir.cfg in
  Array.iteri
    (fun i b ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "edge %d->%d reflected in preds" i s)
            true (List.mem i preds.(s)))
        (Ir.successors b))
    p.Ir.cfg.Ir.blocks

let prop_lowering_total =
  Test_util.qcheck ~count:60 ~name:"lowering succeeds on generated programs"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      let procs = Fsicp_cfg.Lower.lower_program p in
      List.for_all
        (fun (pr : Ir.proc) ->
          Array.length pr.Ir.cfg.Ir.blocks > 0
          && Array.length (Ir.reverse_postorder pr.Ir.cfg)
             = Array.length pr.Ir.cfg.Ir.blocks)
        procs)

let suite =
  [
    Alcotest.test_case "straight-line lowering" `Quick test_straight_line;
    Alcotest.test_case "if shape" `Quick test_if_shape;
    Alcotest.test_case "while shape" `Quick test_while_shape;
    Alcotest.test_case "return prunes tail" `Quick test_return_prunes;
    Alcotest.test_case "return in one branch" `Quick test_return_in_branch;
    Alcotest.test_case "call lowering" `Quick test_call_lowering;
    Alcotest.test_case "name-kind resolution" `Quick test_kind_resolution;
    Alcotest.test_case "reverse postorder" `Quick test_rpo_starts_at_entry;
    Alcotest.test_case "call-site numbering" `Quick test_call_site_numbering;
    Alcotest.test_case "preds/succs consistent" `Quick test_preds_consistent;
    prop_lowering_total;
  ]
