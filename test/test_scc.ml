(** Tests for the Sparse Conditional Constant propagation engine — the
    paper's intraprocedural workhorse.  Includes the lattice laws, branch
    pruning behaviour, the interprocedural entry-environment hook, and the
    interpreter-backed soundness property. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_scc
module L = Lattice

let lat = Test_util.lattice_testable

(* -- lattice laws ---------------------------------------------------- *)

let gen_lattice =
  QCheck2.Gen.(
    oneof
      [
        return L.Top;
        return L.Bot;
        map (fun n -> L.Const (Value.Int n)) (int_range (-5) 5);
        map (fun n -> L.Const (Value.Real (float_of_int n /. 2.))) (int_range (-4) 4);
      ])

let prop_meet_comm =
  Test_util.qcheck ~count:300 ~name:"meet commutative"
    QCheck2.Gen.(pair gen_lattice gen_lattice)
    (fun (a, b) -> L.equal (L.meet a b) (L.meet b a))

let prop_meet_assoc =
  Test_util.qcheck ~count:300 ~name:"meet associative"
    QCheck2.Gen.(triple gen_lattice gen_lattice gen_lattice)
    (fun (a, b, c) -> L.equal (L.meet a (L.meet b c)) (L.meet (L.meet a b) c))

let prop_meet_idem =
  Test_util.qcheck ~count:300 ~name:"meet idempotent; Top unit; Bot zero"
    gen_lattice
    (fun a ->
      L.equal (L.meet a a) a
      && L.equal (L.meet L.Top a) a
      && L.equal (L.meet L.Bot a) L.Bot)

let prop_le_is_meet_order =
  Test_util.qcheck ~count:300 ~name:"le a b <=> meet a b = a"
    QCheck2.Gen.(pair gen_lattice gen_lattice)
    (fun (a, b) -> L.le a b = L.equal (L.meet a b) a)

let prop_eval_monotone =
  Test_util.qcheck ~count:300 ~name:"abstract eval monotone in each argument"
    QCheck2.Gen.(triple (oneofl Ops.all_binops) (pair gen_lattice gen_lattice) gen_lattice)
    (fun (op, (a, a'), b) ->
      (* if a' ⊑ a then eval(a',b) ⊑ eval(a,b) *)
      let lo = L.meet a a' in
      L.le (L.eval_binop op lo b) (L.eval_binop op a b))

(* -- engine behaviour ------------------------------------------------- *)

let run_main ?config src =
  let p = Test_util.parse src in
  let pr = Fsicp_cfg.Lower.lower_proc p (Ast.find_proc_exn p p.Ast.main) in
  let ssa = Fsicp_ssa.Ssa.of_proc p pr in
  (Scc.run ?config ssa, ssa)

(* value of variable at its print, via the print operand *)
let printed_values (res : Scc.result) : L.t list =
  let acc = ref [] in
  Array.iteri
    (fun b (blk : Fsicp_ssa.Ssa.block) ->
      if res.Scc.block_executable.(b) then
        Array.iter
          (function
            | Fsicp_ssa.Ssa.Print o -> acc := Scc.operand_value res o :: !acc
            | _ -> ())
          blk.Fsicp_ssa.Ssa.instrs)
    (Scc.proc_exn res).Fsicp_ssa.Ssa.blocks;
  List.rev !acc

let test_straight_line_folding () =
  let res, _ = run_main "proc main() { x = 2; y = x * 3; z = y + 1; print z; }" in
  Alcotest.(check (list lat)) "z = 7" [ L.Const (Value.Int 7) ]
    (printed_values res)

let test_branch_both_arms_same () =
  let res, _ =
    run_main
      "proc main() { if (u) { x = 5; } else { x = 5; } print x; }"
  in
  Alcotest.(check (list lat)) "x = 5 through phi" [ L.Const (Value.Int 5) ]
    (printed_values res)

let test_branch_different_arms () =
  let res, _ =
    run_main
      "proc main() { if (u) { x = 5; } else { x = 6; } print x; }"
  in
  Alcotest.(check (list lat)) "x = bot" [ L.Bot ] (printed_values res)

let test_constant_branch_pruned () =
  let res, _ =
    run_main
      "proc main() { c = 1; if (c) { x = 5; } else { x = 6; } print x; }"
  in
  Alcotest.(check (list lat)) "dead arm discarded" [ L.Const (Value.Int 5) ]
    (printed_values res)

let test_unreachable_code_not_executable () =
  let res, _ =
    run_main "proc main() { if (0) { x = 1; print x; } print 2; }"
  in
  (* only the reachable print contributes *)
  Alcotest.(check (list lat)) "one executable print"
    [ L.Const (Value.Int 2) ]
    (printed_values res)

let test_nested_pruning () =
  (* Pruning one branch makes an inner variable constant. *)
  let res, _ =
    run_main
      {|proc main() {
          f = 0;
          if (f != 0) { y = 1; } else { y = 0; }
          if (y) { z = 10; } else { z = 20; }
          print z;
        }|}
  in
  Alcotest.(check (list lat)) "cascaded pruning" [ L.Const (Value.Int 20) ]
    (printed_values res)

let test_loop_invariant_constant () =
  let res, _ =
    run_main
      "proc main() { x = 4; i = 0; while (i < u) { i = i + 1; } print x; }"
  in
  Alcotest.(check (list lat)) "x survives the loop" [ L.Const (Value.Int 4) ]
    (printed_values res)

let test_loop_variant_bottom () =
  let res, _ =
    run_main
      "proc main() { i = 0; while (i < u) { i = i + 1; } print i; }"
  in
  Alcotest.(check (list lat)) "loop counter is bot" [ L.Bot ]
    (printed_values res)

let test_division_by_zero_is_bot () =
  let res, _ = run_main "proc main() { x = 1 / 0; print x; }" in
  Alcotest.(check (list lat)) "1/0 = bot" [ L.Bot ] (printed_values res)

let test_entry_env_formals () =
  let p =
    Test_util.parse
      {|proc main() { call f(3); }
        proc f(a) { x = a + 1; print x; }|}
  in
  let pr = Fsicp_cfg.Lower.lower_proc p (Ast.find_proc_exn p "f") in
  let ssa = Fsicp_ssa.Ssa.of_proc p pr in
  (* Without an entry env: unknown. *)
  let res0 = Scc.run ssa in
  Alcotest.(check (list lat)) "a unknown" [ L.Bot ] (printed_values res0);
  (* With a = 3 from the interprocedural phase: folds. *)
  let config =
    {
      Scc.default_config with
      entry_env = Scc.env_of_list [ (Ir.formal "a" 0, Value.Int 3) ];
    }
  in
  let res1 = Scc.run ~config ssa in
  Alcotest.(check (list lat)) "a = 3 folds" [ L.Const (Value.Int 4) ]
    (printed_values res1)

let test_entry_env_globals () =
  let p =
    Test_util.parse
      {|global g;
        proc main() { call f(); }
        proc f() { print g + 1; }|}
  in
  let pr = Fsicp_cfg.Lower.lower_proc p (Ast.find_proc_exn p "f") in
  let ssa = Fsicp_ssa.Ssa.of_proc p pr in
  let config =
    {
      Scc.default_config with
      entry_env = Scc.env_of_list [ (Ir.global "g", Value.Int 9) ];
    }
  in
  let res = Scc.run ~config ssa in
  Alcotest.(check (list lat)) "g = 9 folds" [ L.Const (Value.Int 10) ]
    (printed_values res)

let test_call_kills_global () =
  let p =
    Test_util.parse
      {|global g;
        proc main() { g = 1; call f(); print g; }
        proc f() { g = 2; }|}
  in
  let ctx = Fsicp_core.Context.create p in
  let ssa = Fsicp_core.Context.ssa ctx "main" in
  let res = Scc.run ssa in
  Alcotest.(check (list lat)) "g unknown after call" [ L.Bot ]
    (printed_values res)

let test_call_preserves_unmodified_global () =
  let p =
    Test_util.parse
      {|global g;
        proc main() { g = 1; call f(); print g; }
        proc f() { print g; }|}
  in
  let ctx = Fsicp_core.Context.create p in
  let ssa = Fsicp_core.Context.ssa ctx "main" in
  let res = Scc.run ssa in
  Alcotest.(check (list lat)) "g survives non-modifying call"
    [ L.Const (Value.Int 1) ]
    (printed_values res)

let test_substitution_count () =
  let res, _ =
    run_main
      {|proc main() {
          x = 2;          // def
          y = x + x;      // two constant uses of x
          print y;        // one constant use of y
          print u;        // unknown: not counted
        }|}
  in
  Alcotest.(check int) "three substitutions" 3 (Scc.substitution_count res)

let test_substitution_skips_dead_code () =
  let res, _ =
    run_main
      {|proc main() {
          x = 2;
          if (0) { print x; print x; }
          print x;
        }|}
  in
  (* the two dead uses don't count; the live one + the branch cond is a
     literal (not a variable use) *)
  Alcotest.(check int) "dead uses not counted" 1 (Scc.substitution_count res)

let test_exit_value () =
  let p =
    Test_util.parse
      {|global g;
        proc main() { call f(1); }
        proc f(a) { if (u) { g = 3; } else { g = 3; } a = 7; }|}
  in
  let ctx = Fsicp_core.Context.create p in
  let ssa = Fsicp_core.Context.ssa ctx "f" in
  let res = Scc.run ssa in
  Alcotest.check lat "g = 3 at exit" (L.Const (Value.Int 3))
    (Scc.exit_value res (Ir.global "g"));
  Alcotest.check lat "a = 7 at exit" (L.Const (Value.Int 7))
    (Scc.exit_value res (Ir.formal "a" 0))

(* -- soundness: SCC constants at prints match interpreted output ------- *)

let prop_scc_sound_on_prints =
  Test_util.qcheck ~count:60
    ~name:"SCC constants at prints match the interpreter"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      match Fsicp_interp.Interp.run_opt ~fuel:500_000 p with
      | None -> true
      | Some r ->
          (* analyse main only: its entry env (globals from blockdata) is
             known exactly *)
          let ctx = Fsicp_core.Context.create p in
          let ssa = Fsicp_core.Context.ssa ctx p.Ast.main in
          let entry_env (v : Ir.var) =
            L.P.of_t
              (match v.Ir.vkind with
              | Ir.Global -> (
                  match List.assoc_opt (Ir.Var.name v) p.Ast.blockdata with
                  | Some value -> L.Const value
                  | None -> L.Const (Value.Int 0))
              | _ -> L.Bot)
          in
          let res = Scc.run ~config:{ Scc.default_config with entry_env } ssa in
          (* prints executed in main, in order, must match any constant
             claims; we compare the multiset of constant claims against the
             interpreter's prints from main (approximated: all claims must
             appear among printed values is too weak; instead re-run and
             compare one by one is complex — so check a weaker but real
             property: every print the SCC claims constant AND whose block
             executed... we simply require no contradiction in count) *)
          let claims =
            printed_values res
            |> List.filter_map (function L.Const v -> Some v | _ -> None)
          in
          (* every claimed constant must occur in the actual output *)
          List.for_all
            (fun c ->
              List.exists (fun pv -> Value.equal pv c) r.Fsicp_interp.Interp.prints
              (* dead-in-SCC prints don't execute, but claims only come from
                 executable blocks; a claimed value not printed at all is a
                 soundness bug unless main diverged into callee prints — the
                 generator's main always runs to completion here *))
            claims)

(* -- packed word encoding --------------------------------------------- *)

(* Values across the whole [Value.t] range, biased toward the packed
   representation's edges: ints straddling the 60-bit inline boundary, and
   reals from raw int64 bit patterns (covering nan payloads, ±0.0,
   infinities, subnormals). *)
let value_gen =
  let open QCheck2.Gen in
  oneof
    [
      map
        (fun n -> Value.Int n)
        (oneofl
           [
             min_int; max_int; 0; 1; -1;
             (1 lsl 59) - 1; 1 lsl 59; -(1 lsl 59); -(1 lsl 59) - 1;
             (1 lsl 58) + 17; -((1 lsl 58) + 17);
           ]);
      map (fun n -> Value.Int n) int;
      map (fun b -> Value.Real (Int64.float_of_bits b)) int64;
      oneofl
        [
          Value.Real Float.nan; Value.Real Float.infinity;
          Value.Real Float.neg_infinity; Value.Real 0.0; Value.Real (-0.0);
          Value.Real Float.min_float; Value.Real Float.max_float;
          Value.Real Float.epsilon;
        ];
      map (fun f -> Value.Real f) float;
    ]

(* [P.to_t (P.of_t t)] must be [Lattice.equal] to [t] for every element —
   including nan (every nan payload collapses to one interned slot) and
   -0.0/0.0 (one slot; [Value.equal] identifies the pair). *)
let prop_packed_roundtrip =
  Test_util.qcheck ~count:300
    ~name:"packed encode/decode round-trips the full Value.t range"
    value_gen
    (fun v ->
      let roundtrips t = L.equal (L.P.to_t (L.P.of_t t)) t in
      roundtrips (L.Const v)
      && roundtrips L.Top && roundtrips L.Bot
      && L.P.is_const (L.P.of_t (L.Const v))
      && (not (L.P.is_const L.P.top))
      && not (L.P.is_const L.P.bot))

(* The kernel compares and memo-keys packed words with plain [=]; that is
   sound only if the encoding is canonical ([of_t] is injective up to
   [Lattice.equal]) and [P.meet] mirrors the boxed meet. *)
let prop_packed_canonical_and_meet =
  Test_util.qcheck ~count:300
    ~name:"packed = iff Lattice.equal; packed meet = boxed meet"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (x, y) ->
      let elems v = [ L.Top; L.Bot; L.Const v ] in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let wa = L.P.of_t a and wb = L.P.of_t b in
              (wa = wb) = L.equal a b
              && L.equal (L.P.to_t (L.P.meet wa wb)) (L.meet a b))
            (elems y))
        (elems x))

(* Copy words (tag 4): the copy-constant method's extra lattice level.
   They must be invisible to [is_const], meet like an opaque unknown
   (equal copies stay, anything else collapses), turn to ⊥ under any
   arithmetic, and refuse to box. *)
let test_packed_copy_words () =
  let module P = L.P in
  let c0 = P.copy 0 and c1 = P.copy 1 and k = P.of_int 7 in
  Alcotest.(check bool) "is_copy" true (P.is_copy c0);
  Alcotest.(check bool) "const is not copy" false (P.is_copy k);
  Alcotest.(check bool) "top is not copy" false (P.is_copy P.top);
  Alcotest.(check bool) "bot is not copy" false (P.is_copy P.bot);
  Alcotest.(check bool) "copy is not const" false (P.is_const c0);
  Alcotest.(check int) "copy_slot" 1 (P.copy_slot c1);
  Alcotest.(check bool) "distinct slots, distinct words" false (c0 = c1);
  Alcotest.(check int) "meet copy copy (same)" c0 (P.meet c0 c0);
  Alcotest.(check int) "meet copy copy (diff)" P.bot (P.meet c0 c1);
  Alcotest.(check int) "meet copy const" P.bot (P.meet c0 k);
  Alcotest.(check int) "meet top copy" c0 (P.meet P.top c0);
  Alcotest.(check int) "meet copy bot" P.bot (P.meet c0 P.bot);
  Alcotest.(check bool) "bot ⊑ copy ⊑ top" true
    (P.le P.bot c0 && P.le c0 P.top && P.le c0 c0);
  Alcotest.(check bool) "copy ⋢ const, const ⋢ copy" false
    (P.le c0 k || P.le k c0);
  Alcotest.(check int) "unop over copy is bot" P.bot
    (P.eval_unop Ops.Neg c0);
  List.iter
    (fun (name, a, b) ->
      Alcotest.(check int) name P.bot (P.eval_binop Ops.Add a b))
    [
      ("binop copy/const", c0, k);
      ("binop const/copy", k, c0);
      ("binop copy/top", c0, P.top);
      ("binop copy/bot", c0, P.bot);
      ("binop copy/copy", c0, c1);
    ];
  (match P.to_t c0 with
  | _ -> Alcotest.fail "copy word boxed"
  | exception Invalid_argument _ -> ());
  match P.copy_slot k with
  | _ -> Alcotest.fail "copy_slot answered on a constant"
  | exception Invalid_argument _ -> ()

(* -- flat kernel vs reference implementation -------------------------- *)

(* The kernelized [Scc.run] (packed words, CSR walks, arena worklists,
   edge bitset, entry-vector memo) must agree with the retained
   list/Hashtbl/Queue formulation value-for-value and edge-for-edge; the
   unique fixpoint makes any discrepancy a bug, not a tie-break.  Run at
   jobs ∈ {1,4}: the parallel SSA pre-build must feed the kernel bitwise
   identical procedures. *)
let kernel_matches_reference ~jobs seed =
  let prog = Test_util.program_of_seed seed in
  let ctx = Fsicp_core.Context.create ~jobs prog in
  Fsicp_core.Context.build_ssa ~jobs ctx;
  let pcg = ctx.Fsicp_core.Context.pcg in
  Array.for_all
    (fun pid ->
      let ssa = Fsicp_core.Context.ssa_at ctx pid in
      (* A non-trivial entry environment, so constant branches prune
         and the edge bitsets actually diverge from all-ones. *)
      let entry_env (v : Ir.var) =
        L.P.of_t
          (match v.Ir.vkind with
          | Ir.Formal i -> L.Const (Value.Int (i + 1))
          | Ir.Global | Ir.Local | Ir.Temp -> L.Bot)
      in
      let config = { Scc.default_config with Scc.entry_env } in
      let a = Scc.run ~config ssa in
      let b = Scc.run_reference ~config ssa in
      (* Packed words are canonical: int equality is lattice equality. *)
      a.Scc.values = b.Scc.values
      && a.Scc.block_executable = b.Scc.block_executable
      &&
      let ok = ref true in
      for e = 0 to ssa.Fsicp_ssa.Ssa.n_edges - 1 do
        if Scc.edge_bit a e <> Scc.edge_bit b e then ok := false
      done;
      !ok)
    pcg.Fsicp_callgraph.Callgraph.nodes

let prop_kernel_matches_reference =
  Test_util.qcheck ~count:40
    ~name:"flat kernel = reference SCC (values, blocks, edges; jobs=1)"
    Test_util.seed_gen
    (kernel_matches_reference ~jobs:1)

let prop_kernel_matches_reference_par =
  Test_util.qcheck ~count:20
    ~name:"flat kernel = reference SCC (values, blocks, edges; jobs=4)"
    Test_util.seed_gen
    (kernel_matches_reference ~jobs:4)

let suite =
  [
    prop_meet_comm;
    prop_meet_assoc;
    prop_meet_idem;
    prop_le_is_meet_order;
    prop_eval_monotone;
    Alcotest.test_case "straight-line folding" `Quick test_straight_line_folding;
    Alcotest.test_case "equal arms fold through phi" `Quick
      test_branch_both_arms_same;
    Alcotest.test_case "unequal arms meet to bot" `Quick
      test_branch_different_arms;
    Alcotest.test_case "constant branch pruned" `Quick
      test_constant_branch_pruned;
    Alcotest.test_case "unreachable code discarded" `Quick
      test_unreachable_code_not_executable;
    Alcotest.test_case "cascaded pruning" `Quick test_nested_pruning;
    Alcotest.test_case "loop-invariant constant" `Quick
      test_loop_invariant_constant;
    Alcotest.test_case "loop counter is bot" `Quick test_loop_variant_bottom;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_is_bot;
    Alcotest.test_case "entry env: formals" `Quick test_entry_env_formals;
    Alcotest.test_case "entry env: globals" `Quick test_entry_env_globals;
    Alcotest.test_case "call kills modified global" `Quick
      test_call_kills_global;
    Alcotest.test_case "call preserves unmodified global" `Quick
      test_call_preserves_unmodified_global;
    Alcotest.test_case "substitution counting" `Quick test_substitution_count;
    Alcotest.test_case "substitutions skip dead code" `Quick
      test_substitution_skips_dead_code;
    Alcotest.test_case "exit values" `Quick test_exit_value;
    prop_scc_sound_on_prints;
    prop_packed_roundtrip;
    prop_packed_canonical_and_meet;
    Alcotest.test_case "packed copy words" `Quick test_packed_copy_words;
    prop_kernel_matches_reference;
    prop_kernel_matches_reference_par;
  ]
