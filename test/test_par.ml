(** Tests for the {!Fsicp_par.Par} primitives and for the determinism
    contract of the parallel pipeline: solving with any number of worker
    domains must produce exactly the same {!Solution.t} as the sequential
    path ([jobs = 1]), on every suite program and on generated programs
    including cyclic PCGs. *)

open Fsicp_core
open Fsicp_workloads
open Fsicp_par
module L = Fsicp_scc.Lattice

(* -- job-count parsing ---------------------------------------------------- *)

(* One case per class of bad input: parse_jobs must reject each with a
   message naming the offending value, never fall back silently. *)
let test_parse_jobs_accepts () =
  List.iter
    (fun (s, j) ->
      match Par.parse_jobs s with
      | Ok got -> Alcotest.(check int) (Printf.sprintf "parse %S" s) j got
      | Error m -> Alcotest.failf "parse_jobs %S rejected: %s" s m)
    [ ("1", 1); ("4", 4); ("  8  ", 8); ("128", 128) ]

let check_rejected s =
  match Par.parse_jobs s with
  | Ok j -> Alcotest.failf "parse_jobs %S wrongly accepted as %d" s j
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error for %S names the value (got %S)" s m)
        true
        (let mentions needle =
           let ln = String.length needle and lm = String.length m in
           let rec at i = i + ln <= lm && (String.sub m i ln = needle || at (i + 1)) in
           ln > 0 && at 0
         in
         mentions (String.trim s) || (String.trim s = "" && mentions "\"\""))

let test_parse_jobs_rejects_zero () = check_rejected "0"
let test_parse_jobs_rejects_negative () = check_rejected "-3"
let test_parse_jobs_rejects_garbage () = check_rejected "fuor"
let test_parse_jobs_rejects_empty () = check_rejected ""
let test_parse_jobs_rejects_float () = check_rejected "2.5"
let test_parse_jobs_rejects_trailing () = check_rejected "4x"

let with_env var value f =
  let old = Sys.getenv_opt var in
  (* putenv cannot unset: when the variable was absent, restore a value
     behaviourally identical to unset rather than the poisonous "". *)
  let restore =
    match old with
    | Some v -> v
    | None -> string_of_int (Domain.recommended_domain_count ())
  in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var restore) f

(* default_jobs must honour a good FSICP_JOBS and raise on a bad one —
   a typo'd env var must never quietly measure all-cores behaviour. *)
let test_default_jobs_env () =
  with_env "FSICP_JOBS" "3" (fun () ->
      Alcotest.(check int) "FSICP_JOBS=3 honoured" 3 (Par.default_jobs ()));
  List.iter
    (fun bad ->
      with_env "FSICP_JOBS" bad (fun () ->
          match Par.default_jobs () with
          | j -> Alcotest.failf "FSICP_JOBS=%S wrongly accepted as %d" bad j
          | exception Invalid_argument _ -> ()))
    [ "0"; "-1"; "fuor"; "2.5" ]

(* -- primitives ----------------------------------------------------------- *)

let test_parallel_init () =
  let f i = (i * 37) mod 101 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "Array.init equivalent (jobs=%d)" jobs)
        (Array.init 200 f)
        (Par.parallel_init ~jobs 200 f))
    [ 1; 2; 4 ]

let test_map_list () =
  let l = List.init 123 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "List.map equivalent (jobs=%d)" jobs)
        (List.map (fun x -> x * x) l)
        (Par.map_list ~jobs (fun x -> x * x) l))
    [ 1; 2; 4 ]

let test_both () =
  List.iter
    (fun jobs ->
      let a, b = Par.both ~jobs (fun () -> 41) (fun () -> "x") in
      Alcotest.(check int) "first thunk" 41 a;
      Alcotest.(check string) "second thunk" "x" b)
    [ 1; 2 ]

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Par.parallel_init ~jobs 50 (fun i ->
            if i = 17 then failwith "boom" else i)
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "exception re-raised (jobs=%d)" jobs)
            "boom" m)
    [ 1; 4 ]

(* A diamond with a tail: 0 → {1,2} → 3 → 4, plus the skew edge 0 → 4. *)
let diamond_deps = [| []; [ 0 ]; [ 0 ]; [ 1; 2 ]; [ 3; 0 ] |]
let diamond_dependents = [| [ 1; 2; 4 ]; [ 3 ]; [ 3 ]; [ 4 ]; [] |]
let diamond_order = [| 0; 1; 2; 3; 4 |]

let test_wavefront_sequential_order () =
  (* jobs=1 must visit nodes in exactly the given topological order. *)
  let visited = ref [] in
  Par.wavefront ~jobs:1 ~order:diamond_order ~deps:diamond_deps
    ~dependents:diamond_dependents (fun i -> visited := i :: !visited);
  Alcotest.(check (list int))
    "sequential wavefront = order array" [ 0; 1; 2; 3; 4 ]
    (List.rev !visited)

let test_wavefront_respects_deps () =
  List.iter
    (fun jobs ->
      let m = Mutex.create () in
      let finished = Array.make 5 false in
      let violation = ref false in
      Par.wavefront ~jobs ~order:diamond_order ~deps:diamond_deps
        ~dependents:diamond_dependents (fun i ->
          Mutex.lock m;
          List.iter
            (fun d -> if not finished.(d) then violation := true)
            diamond_deps.(i);
          Mutex.unlock m;
          Mutex.lock m;
          finished.(i) <- true;
          Mutex.unlock m);
      Alcotest.(check bool)
        (Printf.sprintf "dependencies complete before dispatch (jobs=%d)" jobs)
        false !violation;
      Alcotest.(check bool)
        "every node processed" true
        (Array.for_all Fun.id finished))
    [ 1; 2; 4 ]

(* -- solution equality ---------------------------------------------------- *)

let globals_equal a b =
  List.equal
    (fun (n1, v1) (n2, v2) -> Fsicp_prog.Prog.Var.equal n1 n2 && L.equal v1 v2)
    a b

(* The two solutions come from distinct [Context.t]s, hence distinct
   program databases; compare procedures by name, never by raw id. *)
let record_equal (sa : Solution.t) (sb : Solution.t)
    (a : Solution.callsite_record) (b : Solution.callsite_record) =
  String.equal
    (Solution.proc_name sa a.Solution.cr_caller)
    (Solution.proc_name sb b.Solution.cr_caller)
  && a.Solution.cr_cs_index = b.Solution.cr_cs_index
  && String.equal
       (Solution.proc_name sa a.Solution.cr_callee)
       (Solution.proc_name sb b.Solution.cr_callee)
  && a.Solution.cr_executable = b.Solution.cr_executable
  && Array.length a.Solution.cr_args = Array.length b.Solution.cr_args
  && Array.for_all2 L.equal a.Solution.cr_args b.Solution.cr_args
  && globals_equal a.Solution.cr_globals b.Solution.cr_globals

let entry_equal (a : Solution.proc_entry) (b : Solution.proc_entry) =
  Array.length a.Solution.pe_formals = Array.length b.Solution.pe_formals
  && Array.for_all2 L.equal a.Solution.pe_formals b.Solution.pe_formals
  && globals_equal a.Solution.pe_globals b.Solution.pe_globals

let sorted_names (t : Solution.t) =
  Fsicp_prog.Prog.Proc.Tbl.fold
    (fun pid _ acc -> Solution.proc_name t pid :: acc)
    t.Solution.entries []
  |> List.sort compare

(** Structural identity including call-record order — the determinism
    contract is stronger than lattice equality. *)
let solutions_identical (a : Solution.t) (b : Solution.t) =
  a.Solution.scc_runs = b.Solution.scc_runs
  && List.equal String.equal (sorted_names a) (sorted_names b)
  && Fsicp_prog.Prog.Proc.Tbl.fold
       (fun pid ea acc ->
         acc
         &&
         match Solution.entry_opt b (Solution.proc_name a pid) with
         | Some eb -> entry_equal ea eb
         | None -> false)
       a.Solution.entries true
  && List.equal (record_equal a b) a.Solution.call_records
       b.Solution.call_records
  (* and the dense call-site index resolves every record of [a] in [b]:
     the [(caller, cs_index)] coordinates must agree across job counts *)
  && List.for_all
       (fun (cr : Solution.callsite_record) ->
         match
           Fsicp_prog.Prog.proc_id b.Solution.db
             (Solution.proc_name a cr.Solution.cr_caller)
         with
         | None -> false
         | Some caller -> (
             match
               Solution.find_call_record b ~caller
                 ~cs_index:cr.Solution.cr_cs_index
             with
             | Some cr' -> record_equal a b cr cr'
             | None -> false))
       a.Solution.call_records

let solve_jobs prog jobs =
  let ctx = Context.create ~jobs prog in
  Fs_icp.solve ~jobs ctx

let check_jobs_equivalent ~what prog =
  let base = solve_jobs prog 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d identical to jobs=1" what jobs)
        true
        (solutions_identical base (solve_jobs prog jobs)))
    [ 2; 4 ]

let test_suite_jobs_equivalent () =
  List.iter
    (fun (b : Spec.benchmark) ->
      check_jobs_equivalent ~what:b.Spec.b_name (Spec.program b))
    Spec.suite

let prop_generated_jobs_equivalent =
  Test_util.qcheck ~count:30 ~name:"generated programs: jobs ∈ {1,2,4} identical"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let base = solve_jobs prog 1 in
      List.for_all
        (fun jobs -> solutions_identical base (solve_jobs prog jobs))
        [ 2; 4 ])

let prop_cyclic_jobs_equivalent =
  Test_util.qcheck ~count:30
    ~name:"cyclic PCGs (back-edge prob 0.9): jobs ∈ {1,2,4} identical"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Generator.small_profile seed) with
          Generator.g_back_edge_prob = 0.9;
        }
      in
      let prog = Generator.generate profile in
      let base = solve_jobs prog 1 in
      List.for_all
        (fun jobs -> solutions_identical base (solve_jobs prog jobs))
        [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "parse_jobs accepts positive ints" `Quick
      test_parse_jobs_accepts;
    Alcotest.test_case "parse_jobs rejects zero" `Quick
      test_parse_jobs_rejects_zero;
    Alcotest.test_case "parse_jobs rejects negative" `Quick
      test_parse_jobs_rejects_negative;
    Alcotest.test_case "parse_jobs rejects garbage" `Quick
      test_parse_jobs_rejects_garbage;
    Alcotest.test_case "parse_jobs rejects empty" `Quick
      test_parse_jobs_rejects_empty;
    Alcotest.test_case "parse_jobs rejects float" `Quick
      test_parse_jobs_rejects_float;
    Alcotest.test_case "parse_jobs rejects trailing junk" `Quick
      test_parse_jobs_rejects_trailing;
    Alcotest.test_case "default_jobs: FSICP_JOBS strict" `Quick
      test_default_jobs_env;
    Alcotest.test_case "parallel_init = Array.init" `Quick test_parallel_init;
    Alcotest.test_case "map_list = List.map" `Quick test_map_list;
    Alcotest.test_case "both returns both results" `Quick test_both;
    Alcotest.test_case "worker exception re-raised" `Quick
      test_exception_propagates;
    Alcotest.test_case "wavefront jobs=1 follows order" `Quick
      test_wavefront_sequential_order;
    Alcotest.test_case "wavefront dependency discipline" `Quick
      test_wavefront_respects_deps;
    Alcotest.test_case "suite programs: jobs equivalence" `Slow
      test_suite_jobs_equivalent;
    prop_generated_jobs_equivalent;
    prop_cyclic_jobs_equivalent;
  ]
