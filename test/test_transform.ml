(** Tests for the transformation phase: entry-constant materialisation,
    substitution counting, AST-level folding, return constants and procedure
    cloning — everything downstream of the ICP solutions. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_scc
module I = Fsicp_interp.Interp
module L = Lattice

let lat = Test_util.lattice_testable

let setup src =
  let prog = Test_util.parse src in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  (prog, ctx, fs)

(* -- insert_entry_constants ------------------------------------------- *)

let test_entry_assignments_created () =
  let _, ctx, fs =
    setup {|proc main() { x = 3; call f(x); } proc f(a) { print a; }|}
  in
  let prog' = Transform.insert_entry_constants ctx fs in
  let f = Ast.find_proc_exn prog' "f" in
  match (List.hd f.Ast.body).Ast.sdesc with
  | Ast.Assign ("a", Ast.Const (Value.Int 3)) -> ()
  | _ -> Alcotest.fail "expected 'a = 3;' at entry of f"

let test_entry_assignment_only_if_referenced () =
  (* b is constant but never read in f: no assignment is created (the
     paper: "only for those variables that are referenced"). *)
  let _, ctx, fs =
    setup {|proc main() { call f(1, 2); } proc f(a, b) { print a; }|}
  in
  let prog' = Transform.insert_entry_constants ctx fs in
  let f = Ast.find_proc_exn prog' "f" in
  let assigns_to_b =
    List.filter
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with Ast.Assign ("b", _) -> true | _ -> false)
      f.Ast.body
  in
  Alcotest.(check int) "no assignment for unreferenced b" 0
    (List.length assigns_to_b)

let test_global_entry_assignment () =
  let _, ctx, fs =
    setup
      {|global g;
        proc main() { g = 7; call f(); }
        proc f() { print g; }|}
  in
  let prog' = Transform.insert_entry_constants ctx fs in
  let f = Ast.find_proc_exn prog' "f" in
  match (List.hd f.Ast.body).Ast.sdesc with
  | Ast.Assign ("g", Ast.Const (Value.Int 7)) -> ()
  | _ -> Alcotest.fail "expected 'g = 7;' at entry of f"

let prop_insertion_preserves_semantics =
  Test_util.qcheck ~count:50
    ~name:"entry-constant insertion preserves behaviour"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let prog' = Transform.insert_entry_constants ctx fs in
      Sema.check_exn prog';
      match (I.run_opt prog, I.run_opt prog') with
      | Some a, Some b -> List.equal Value.equal a.I.prints b.I.prints
      | None, None -> true
      | _ -> false)

(* -- substitutions ------------------------------------------------------ *)

let test_substitution_totals () =
  let _, ctx, fs =
    setup
      {|proc main() { call f(2); }
        proc f(a) { x = a + a; print x; }|}
  in
  let per_proc, total = Transform.substitutions ctx fs in
  (* in f: two uses of a (constant) and one of x (constant) = 3 *)
  Alcotest.(check int) "f substitutions" 3 (List.assoc "f" per_proc);
  Alcotest.(check int) "total" 3 total

let test_substitutions_method_dependent () =
  let _, ctx, fs =
    setup
      {|proc main() { x = 2; call f(x); }
        proc f(a) { print a; }|}
  in
  let fi = Fi_icp.solve ctx in
  let _, n_fi = Transform.substitutions ctx fi in
  let _, n_fs = Transform.substitutions ctx fs in
  (* FS knows a = 2 (1 use in f) plus x's uses in main (x at the call). *)
  Alcotest.(check bool) "FS >= FI" true (n_fs >= n_fi);
  Alcotest.(check bool) "FS strictly better here" true (n_fs > n_fi)

(* -- Fold ---------------------------------------------------------------- *)

let test_fold_replaces_uses () =
  let _, ctx, fs =
    setup {|proc main() { x = 3; y = x + 4; print y; }|}
  in
  let prog' = Fold.fold_program ctx fs in
  let main = Ast.find_proc_exn prog' "main" in
  match (List.nth main.Ast.body 2).Ast.sdesc with
  | Ast.Print (Ast.Const (Value.Int 7)) -> ()
  | s ->
      Alcotest.failf "expected print 7, got %s"
        (Pretty.stmt_to_string { Ast.sdesc = s; spos = Ast.no_pos })

let test_fold_prunes_dead_branch () =
  let _, ctx, fs =
    setup
      {|proc main() { c = 1; if (c) { print 10; } else { print 20; } }|}
  in
  let prog' = Fold.fold_program ctx fs in
  let main = Ast.find_proc_exn prog' "main" in
  let has_if =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with Ast.If _ -> true | _ -> false)
      main.Ast.body
  in
  Alcotest.(check bool) "branch resolved away" false has_if

let test_fold_drops_dead_loop () =
  let _, ctx, fs = setup {|proc main() { while (0) { print 1; } print 2; }|} in
  let prog' = Fold.fold_program ctx fs in
  let main = Ast.find_proc_exn prog' "main" in
  let has_while =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with Ast.While _ -> true | _ -> false)
      main.Ast.body
  in
  Alcotest.(check bool) "dead loop removed" false has_while

let test_fold_keeps_byref_args () =
  (* x is constant at the call, but f modifies it through the reference:
     the argument must stay a variable. *)
  let _, ctx, fs =
    setup
      {|proc main() { x = 1; call f(x); print x; }
        proc f(a) { a = 2; }|}
  in
  let prog' = Fold.fold_program ctx fs in
  let main = Ast.find_proc_exn prog' "main" in
  let ok =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Call ("f", [ Ast.Var "x" ]) -> true
        | _ -> false)
      main.Ast.body
  in
  Alcotest.(check bool) "by-ref arg not literalised" true ok

let prop_fold_preserves_semantics =
  Test_util.qcheck ~count:60 ~name:"folding preserves behaviour"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let prog' = Fold.fold_program ctx fs in
      Sema.check_exn prog';
      match (I.run_opt prog, I.run_opt prog') with
      | Some a, Some b -> List.equal Value.equal a.I.prints b.I.prints
      | None, _ -> true (* original diverges: folded may of course differ *)
      | Some _, None -> false)

(* -- Return constants ----------------------------------------------------- *)

let test_return_constants_found () =
  let _, ctx, fs =
    setup
      {|global g;
        proc main() { x = 0; call init(x); print x; }
        proc init(p) { p = 42; g = 7; }|}
  in
  let rc = Return_consts.compute ctx ~fs in
  match Return_consts.summary_of rc "init" with
  | Some s ->
      Alcotest.check lat "p returns 42" (L.Const (Value.Int 42))
        s.Return_consts.rs_formals.(0);
      Alcotest.check lat "g returns 7" (L.Const (Value.Int 7))
        (Option.value
           (List.assoc_opt
              (Fsicp_prog.Prog.Var.intern "g")
              s.Return_consts.rs_globals)
           ~default:L.Top)
  | None -> Alcotest.fail "no summary for init"

let test_return_constants_improve_caller () =
  let _, ctx, fs =
    setup
      {|proc main() { x = 0; call init(x); call use(x); }
        proc init(p) { p = 42; }
        proc use(a) { print a; }|}
  in
  (* Base FS: x unknown after the call. *)
  Alcotest.check lat "without returns" L.Bot (Solution.formal_value fs "use" 0);
  let rc = Return_consts.compute ctx ~fs in
  let fs2 =
    Fs_icp.solve
      ~call_def_value:(Return_consts.as_oracle rc ~censor:(Context.censor_w ctx))
      ctx
  in
  Alcotest.check lat "with returns" (L.Const (Value.Int 42))
    (Solution.formal_value fs2 "use" 0)

let test_return_constants_conditional_bot () =
  let _, ctx, fs =
    setup
      {|proc main() { x = 0; call f(x); call use(x); }
        proc f(p) { if (u) { p = 1; } else { p = 2; } }
        proc use(a) { print a; }|}
  in
  let rc = Return_consts.compute ctx ~fs in
  match Return_consts.summary_of rc "f" with
  | Some s ->
      Alcotest.check lat "different exits meet to bot" L.Bot
        s.Return_consts.rs_formals.(0)
  | None -> Alcotest.fail "no summary"

let prop_returns_sound =
  Test_util.qcheck ~count:40 ~name:"FS + return constants sound"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let rc = Return_consts.compute ctx ~fs in
      let fs2 =
        Fs_icp.solve
          ~call_def_value:
            (Return_consts.as_oracle rc ~censor:(Context.censor_w ctx))
          ctx
      in
      match Test_util.check_solution_sound prog fs2 with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

(* -- Cloning -------------------------------------------------------------- *)

let test_cloning_splits_collisions () =
  let prog, ctx, fs =
    setup
      {|proc main() { call f(1); call f(2); }
        proc f(a) { print a; }|}
  in
  (* the meet over both sites kills a *)
  Alcotest.check lat "collision before cloning" L.Bot
    (Solution.formal_value fs "f" 0);
  let prog', n = Clone.clone_by_constants ctx ~fs () in
  Alcotest.(check int) "one clone created" 1 n;
  Sema.check_exn prog';
  (* behaviour preserved *)
  let a = I.run prog and b = I.run prog' in
  Alcotest.(check (list Test_util.value_testable))
    "same output" a.I.prints b.I.prints;
  (* and the re-analysis finds both constants *)
  let ctx' = Context.create prog' in
  let fs' = Fs_icp.solve ctx' in
  let consts = Solution.constant_formals fs' in
  Alcotest.(check int) "two constant formals after cloning" 2
    (List.length consts)

let prop_cloning_preserves_semantics =
  Test_util.qcheck ~count:40 ~name:"cloning preserves behaviour"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let prog', _ = Clone.clone_by_constants ctx ~fs () in
      Sema.check_exn prog';
      match (I.run_opt prog, I.run_opt prog') with
      | Some a, Some b -> List.equal Value.equal a.I.prints b.I.prints
      | None, None -> true
      | _ -> false)

let prop_cloning_never_hurts =
  Test_util.qcheck ~count:30
    ~name:"cloning never decreases constant formals (acyclic)"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_back_edge_prob = 0.0;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let prog', _ = Clone.clone_by_constants ctx ~fs () in
      let fs' = Fs_icp.solve (Context.create prog') in
      List.length (Solution.constant_formals fs')
      >= List.length (Solution.constant_formals fs))

let suite =
  [
    Alcotest.test_case "entry assignments created" `Quick
      test_entry_assignments_created;
    Alcotest.test_case "only referenced variables" `Quick
      test_entry_assignment_only_if_referenced;
    Alcotest.test_case "global entry assignment" `Quick
      test_global_entry_assignment;
    prop_insertion_preserves_semantics;
    Alcotest.test_case "substitution totals" `Quick test_substitution_totals;
    Alcotest.test_case "substitutions method-dependent" `Quick
      test_substitutions_method_dependent;
    Alcotest.test_case "fold replaces uses" `Quick test_fold_replaces_uses;
    Alcotest.test_case "fold prunes dead branch" `Quick
      test_fold_prunes_dead_branch;
    Alcotest.test_case "fold drops dead loop" `Quick test_fold_drops_dead_loop;
    Alcotest.test_case "fold keeps by-ref args" `Quick test_fold_keeps_byref_args;
    prop_fold_preserves_semantics;
    Alcotest.test_case "return constants found" `Quick
      test_return_constants_found;
    Alcotest.test_case "return constants improve caller" `Quick
      test_return_constants_improve_caller;
    Alcotest.test_case "conditional returns meet to bot" `Quick
      test_return_constants_conditional_bot;
    prop_returns_sound;
    Alcotest.test_case "cloning splits collisions" `Quick
      test_cloning_splits_collisions;
    prop_cloning_preserves_semantics;
    prop_cloning_never_hurts;
  ]
