(** Tests for the pipeline driver (Figure 2) and the experiment harness. *)

open Fsicp_core
open Fsicp_workloads

let test_driver_phases () =
  let prog = Test_util.program_of_seed 17 in
  let d = Driver.run prog in
  let phases = List.map (fun t -> t.Driver.t_phase) d.Driver.timings in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %s present" expected)
        true (List.mem expected phases))
    [
      "1:ipa-collect"; "2:call-graph"; "3:aliasing"; "4:mod-ref"; "lowering";
      "5a:fi-icp"; "5b:fs-icp"; "6:use";
    ];
  Alcotest.(check int) "one SCC per proc"
    (Array.length d.Driver.ctx.Context.pcg.Fsicp_callgraph.Callgraph.nodes)
    d.Driver.fs.Solution.scc_runs

let test_driver_times_nonnegative () =
  let prog = Test_util.program_of_seed 3 in
  let d = Driver.run prog in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (t.Driver.t_phase ^ " time >= 0")
        true
        (t.Driver.t_seconds >= 0.0))
    d.Driver.timings;
  Alcotest.(check bool) "fi timing accessible" true (Driver.fi_seconds d >= 0.0);
  Alcotest.(check bool) "fs timing accessible" true (Driver.fs_seconds d >= 0.0)

(* timing_of / fi_seconds / fs_seconds on both populated and synthetic
   timing lists: lookups must hit the exact phase name, and the accessors
   must default to 0.0 rather than raise when a phase is absent. *)
let test_timing_accessors () =
  let prog = Test_util.program_of_seed 17 in
  let d = Driver.run prog in
  (match Driver.timing_of d "5b:fs-icp" with
  | None -> Alcotest.fail "timing_of misses a recorded phase"
  | Some s -> Alcotest.(check bool) "recorded time >= 0" true (s >= 0.0));
  Alcotest.(check (option (float 0.0)))
    "timing_of on an unknown phase" None
    (Driver.timing_of d "9:no-such-phase");
  Alcotest.(check bool)
    "fi_seconds reads the 5a row" true
    (Driver.timing_of d "5a:fi-icp" = Some (Driver.fi_seconds d));
  Alcotest.(check bool)
    "fs_seconds reads the 5b row" true
    (Driver.timing_of d "5b:fs-icp" = Some (Driver.fs_seconds d));
  let stripped = { d with Driver.timings = [] } in
  Alcotest.(check (float 0.0))
    "fi_seconds defaults to 0 without timings" 0.0
    (Driver.fi_seconds stripped);
  Alcotest.(check (float 0.0))
    "fs_seconds defaults to 0 without timings" 0.0
    (Driver.fs_seconds stripped);
  let renamed =
    {
      d with
      Driver.timings =
        List.filter
          (fun t -> t.Driver.t_phase <> "5a:fi-icp")
          d.Driver.timings;
    }
  in
  Alcotest.(check (float 0.0))
    "fi_seconds defaults to 0 when only 5a is missing" 0.0
    (Driver.fi_seconds renamed);
  Alcotest.(check bool)
    "fs_seconds still found when only 5a is missing" true
    (Driver.fs_seconds renamed = Driver.fs_seconds d)

let test_driver_floats_toggle () =
  let prog =
    Test_util.parse
      {|proc main() { call f(2.5); } proc f(a) { print a; }|}
  in
  let with_f = Driver.run prog in
  let without_f = Driver.run ~floats:false prog in
  Alcotest.(check int) "float constant with floats on" 1
    (List.length (Solution.constant_formals with_f.Driver.fs));
  Alcotest.(check int) "censored with floats off" 0
    (List.length (Solution.constant_formals without_f.Driver.fs))

(* Harness smoke tests: each artefact builds and has the expected shape.
   These run on the small first-release subset to keep the suite fast. *)

let test_harness_candidates_table () =
  let t, runs =
    Fsicp_harness.Harness.candidates_table ~title:"t" Spec.first_release
  in
  Alcotest.(check int) "4 benchmarks + TOTAL" 5 (List.length t.Fsicp_report.Report.rows);
  Alcotest.(check int) "4 runs" 4 (List.length runs);
  (* every data row has 8 columns *)
  List.iter
    (fun row -> Alcotest.(check int) "8 columns" 8 (List.length row))
    t.Fsicp_report.Report.rows

let test_harness_propagated_table () =
  let _, runs =
    Fsicp_harness.Harness.candidates_table ~title:"" Spec.first_release
  in
  let t = Fsicp_harness.Harness.propagated_table ~title:"t" runs in
  Alcotest.(check int) "rows" 5 (List.length t.Fsicp_report.Report.rows)

let test_harness_figure1 () =
  (* The paper's six methods plus the copy-constant and value-context
     extensions. *)
  let t = Fsicp_harness.Harness.figure1_table () in
  Alcotest.(check int) "eight methods" 8
    (List.length t.Fsicp_report.Report.rows)

let test_harness_figure2 () =
  let s = Fsicp_harness.Harness.figure2 () in
  Alcotest.(check bool) "trace mentions fs-icp" true
    (let rec contains i =
       i + 6 <= String.length s
       && (String.sub s i 6 = "fs-icp" || contains (i + 1))
     in
     contains 0)

let test_run_benchmark_consistent () =
  (* Re-running a benchmark gives identical metrics (end-to-end
     determinism). *)
  let b = List.hd Spec.first_release in
  let r1 = Fsicp_harness.Harness.run_benchmark b in
  let r2 = Fsicp_harness.Harness.run_benchmark b in
  Alcotest.(check bool) "candidates identical" true
    (r1.Fsicp_harness.Harness.r_candidates = r2.Fsicp_harness.Harness.r_candidates);
  Alcotest.(check bool) "propagated identical" true
    (r1.Fsicp_harness.Harness.r_propagated = r2.Fsicp_harness.Harness.r_propagated)

let suite =
  [
    Alcotest.test_case "driver phases" `Quick test_driver_phases;
    Alcotest.test_case "driver timings" `Quick test_driver_times_nonnegative;
    Alcotest.test_case "timing accessors" `Quick test_timing_accessors;
    Alcotest.test_case "driver floats toggle" `Quick test_driver_floats_toggle;
    Alcotest.test_case "harness: candidates table" `Slow
      test_harness_candidates_table;
    Alcotest.test_case "harness: propagated table" `Slow
      test_harness_propagated_table;
    Alcotest.test_case "harness: figure 1" `Quick test_harness_figure1;
    Alcotest.test_case "harness: figure 2" `Quick test_harness_figure2;
    Alcotest.test_case "harness: deterministic" `Quick
      test_run_benchmark_consistent;
  ]
