(** Dedicated pretty-printer properties: random expression trees explore
    precedence and associativity much more densely than whole-program
    round-trips. *)

open Fsicp_lang

(* Random expression trees over a few variables and small literals. *)
let gen_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            map (fun i -> Ast.int i) (int_range (-20) 20);
            map (fun i -> Ast.real (float_of_int i /. 4.0)) (int_range (-20) 20);
            map Ast.var (oneofl [ "a"; "b"; "c" ]);
          ]
      else
        frequency
          [
            (1, map (fun e -> Ast.unary Ops.Neg e) (self (n / 2)));
            (1, map (fun e -> Ast.unary Ops.Not e) (self (n / 2)));
            ( 6,
              map3
                (fun op l r -> Ast.binary op l r)
                (oneofl Ops.all_binops) (self (n / 2)) (self (n / 2)) );
            (1, self 0);
          ])

(* The parser folds negation of literals ([-3] is a constant), so compare
   modulo that normalisation. *)
let rec fold_neg_lit (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Unary (Ops.Neg, inner) -> (
      match fold_neg_lit inner with
      | Ast.Const (Value.Int n) -> Ast.Const (Value.Int (-n))
      | Ast.Const (Value.Real r) -> Ast.Const (Value.Real (-.r))
      | inner' -> Ast.Unary (Ops.Neg, inner'))
  | Ast.Unary (op, inner) -> Ast.Unary (op, fold_neg_lit inner)
  | Ast.Binary (op, l, r) -> Ast.Binary (op, fold_neg_lit l, fold_neg_lit r)
  | Ast.Const _ | Ast.Var _ -> e

let prop_expr_roundtrip =
  Test_util.qcheck ~count:500 ~name:"expression print/parse round-trip"
    gen_expr
    (fun e ->
      let s = Pretty.expr_to_string e in
      match Parser.expr_of_string s with
      | e' ->
          Ast.equal_expr (fold_neg_lit e) (fold_neg_lit e')
          || QCheck2.Test.fail_reportf "%s reparsed differently" s
      | exception exn ->
          QCheck2.Test.fail_reportf "%s failed to reparse: %s" s
            (Printexc.to_string exn))

(* Independent check through the interpreter: printing must preserve the
   VALUE of the expression, not just its shape. *)
let eval_with env e =
  let prog =
    {
      Ast.globals = [];
      blockdata = [];
      procs =
        [
          {
            Ast.pname = "main";
            formals = [];
            body =
              List.map (fun (x, v) -> Ast.assign x (Ast.Const v)) env
              @ [ Ast.print e ];
            ppos = Ast.no_pos;
          };
        ];
      main = "main";
    }
  in
  match Fsicp_interp.Interp.run_opt ~fuel:10_000 prog with
  | Some r -> Some r.Fsicp_interp.Interp.prints
  | None -> None

let prop_expr_value_preserved =
  Test_util.qcheck ~count:500 ~name:"printing preserves expression value"
    gen_expr
    (fun e ->
      let env =
        [ ("a", Value.Int 3); ("b", Value.Int (-2)); ("c", Value.Real 1.5) ]
      in
      let v1 = eval_with env e in
      let v2 = eval_with env (Parser.expr_of_string (Pretty.expr_to_string e)) in
      match (v1, v2) with
      | Some a, Some b -> List.equal Value.equal a b
      | None, None -> true (* both divide by zero identically *)
      | _ -> false)

let test_minimal_parens () =
  (* The printer should not wrap everything: a + b * c has no parens. *)
  Alcotest.(check string) "no redundant parens" "a + b * c"
    (Pretty.expr_to_string
       Ast.(binary Ops.Add (var "a") (binary Ops.Mul (var "b") (var "c"))));
  Alcotest.(check string) "needed parens kept" "(a + b) * c"
    (Pretty.expr_to_string
       Ast.(binary Ops.Mul (binary Ops.Add (var "a") (var "b")) (var "c")));
  (* Left-associativity: a - (b - c) must keep its parens. *)
  Alcotest.(check string) "right-nested subtraction" "a - (b - c)"
    (Pretty.expr_to_string
       Ast.(binary Ops.Sub (var "a") (binary Ops.Sub (var "b") (var "c"))))

let test_stmt_rendering () =
  let s = Ast.if_ (Ast.var "c") [ Ast.assign "x" (Ast.int 1) ] [] in
  let txt = Pretty.stmt_to_string s in
  Alcotest.(check bool) "if renders" true (String.length txt > 0)

let suite =
  [
    prop_expr_roundtrip;
    prop_expr_value_preserved;
    Alcotest.test_case "minimal parenthesisation" `Quick test_minimal_parens;
    Alcotest.test_case "statement rendering" `Quick test_stmt_rendering;
  ]
