(** Shared helpers for the test suites: program constructors, random program
    generation for property tests, and the interpreter-backed soundness
    oracle that every constant propagation method is checked against. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_workloads

let parse src =
  let p = Parser.program_of_string src in
  Sema.check_exn p;
  p

(** Random well-formed programs for property tests: a seed selects a
    generator profile with every mechanism enabled (including guarded
    recursion for one seed in three). *)
let program_of_seed seed : Ast.program =
  Generator.generate (Generator.small_profile seed)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let qcheck ?(count = 50) ~name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* The soundness oracle                                                *)
(* ------------------------------------------------------------------ *)

(* The single shared definitions live in {!Fsicp_oracle.Oracle}; the test
   suites re-export them under their historical names. *)

let check_solution_sound (prog : Ast.program) (sol : Solution.t) :
    (unit, string) result =
  Fsicp_oracle.Oracle.check_solution_sound prog sol

let assert_sound name prog sol =
  match check_solution_sound prog sol with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: unsound: %s" name msg

(** Partial order on solutions, formals {e and} globals (in this lattice
    smaller means less precise — [Const ⊒ Bot]).  Used for the
    method-hierarchy properties. *)
let solution_le = Fsicp_oracle.Oracle.solution_le

let reachable_procs = Fsicp_oracle.Oracle.reachable_procs

(* Common Alcotest testables *)
let value_testable =
  Alcotest.testable Value.pp Value.equal

let lattice_testable =
  Alcotest.testable Fsicp_scc.Lattice.pp Fsicp_scc.Lattice.equal
