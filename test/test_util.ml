(** Shared helpers for the test suites: program constructors, random program
    generation for property tests, and the interpreter-backed soundness
    oracle that every constant propagation method is checked against. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_workloads

let parse src =
  let p = Parser.program_of_string src in
  Sema.check_exn p;
  p

(** Random well-formed programs for property tests: a seed selects a
    generator profile with every mechanism enabled (including guarded
    recursion for one seed in three). *)
let program_of_seed seed : Ast.program =
  Generator.generate (Generator.small_profile seed)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let qcheck ?(count = 50) ~name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* The soundness oracle                                                *)
(* ------------------------------------------------------------------ *)

(** [check_solution_sound prog sol] executes [prog] (if it terminates
    within fuel and without runtime errors) and verifies that every formal
    and global the solution claims constant at a procedure entry has
    exactly that value at {e every} dynamic entry of the procedure.
    Returns [Ok ()] or a description of the first violation. *)
let check_solution_sound (prog : Ast.program) (sol : Solution.t) :
    (unit, string) result =
  match Fsicp_interp.Interp.run_opt ~fuel:500_000 prog with
  | None -> Ok () (* diverging or erroring programs constrain nothing *)
  | Some r ->
      let violations = ref [] in
      List.iter
        (fun (ev : Fsicp_interp.Interp.entry_event) ->
          let entry = Solution.entry sol ev.Fsicp_interp.Interp.ev_proc in
          List.iteri
            (fun i (fname, actual) ->
              match
                if i < Array.length entry.Solution.pe_formals then
                  entry.Solution.pe_formals.(i)
                else Fsicp_scc.Lattice.Bot
              with
              | Fsicp_scc.Lattice.Const claimed
                when not (Value.equal claimed actual) ->
                  violations :=
                    Printf.sprintf
                      "%s: formal %s claimed %s but observed %s"
                      ev.Fsicp_interp.Interp.ev_proc fname
                      (Value.to_string claimed) (Value.to_string actual)
                    :: !violations
              | _ -> ())
            ev.Fsicp_interp.Interp.ev_formals;
          List.iter
            (fun (gname, actual) ->
              match
                List.assoc_opt
                  (Fsicp_prog.Prog.Var.intern gname)
                  entry.Solution.pe_globals
              with
              | Some (Fsicp_scc.Lattice.Const claimed)
                when not (Value.equal claimed actual) ->
                  violations :=
                    Printf.sprintf
                      "%s: global %s claimed %s but observed %s"
                      ev.Fsicp_interp.Interp.ev_proc gname
                      (Value.to_string claimed) (Value.to_string actual)
                    :: !violations
              | _ -> ())
            ev.Fsicp_interp.Interp.ev_globals)
        r.Fsicp_interp.Interp.entries;
      (match !violations with
      | [] -> Ok ()
      | v :: _ -> Error v)

let assert_sound name prog sol =
  match check_solution_sound prog sol with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: unsound: %s" name msg

(** Partial order on solutions: [le a b] iff [a]'s formal entry values are
    all ⊑ [b]'s (b at least as precise as... note: in this lattice smaller
    means less precise — [Const ⊒ Bot]).  Used for the method-hierarchy
    properties. *)
let solution_le (a : Solution.t) (b : Solution.t) ~(procs : string list) :
    bool =
  List.for_all
    (fun proc ->
      let ea = Solution.entry a proc and eb = Solution.entry b proc in
      let n =
        max (Array.length ea.Solution.pe_formals)
          (Array.length eb.Solution.pe_formals)
      in
      let get (e : Solution.proc_entry) i =
        if i < Array.length e.Solution.pe_formals then
          e.Solution.pe_formals.(i)
        else Fsicp_scc.Lattice.Bot
      in
      List.for_all
        (fun i -> Fsicp_scc.Lattice.le (get ea i) (get eb i))
        (List.init n (fun i -> i)))
    procs

let reachable_procs (ctx : Context.t) : string list =
  let pcg = ctx.Context.pcg in
  Array.to_list pcg.Fsicp_callgraph.Callgraph.nodes
  |> List.map (Fsicp_callgraph.Callgraph.proc_name pcg)

(* Common Alcotest testables *)
let value_testable =
  Alcotest.testable Value.pp Value.equal

let lattice_testable =
  Alcotest.testable Fsicp_scc.Lattice.pp Fsicp_scc.Lattice.equal
