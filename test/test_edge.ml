(** Edge-case and stress tests across the whole pipeline: degenerate
    programs, deep nesting, wide expressions, long call chains. *)

open Fsicp_lang
open Fsicp_core
module I = Fsicp_interp.Interp

let analyse_everything prog =
  let ctx = Context.create prog in
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ~fi ctx in
  ignore (Reference.solve ctx);
  ignore (Jump_functions.solve ctx Jump_functions.Polynomial);
  ignore (Metrics.candidates ctx ~fi ~fs ~name:"edge");
  ignore (Metrics.propagated ctx ~fi ~fs ~name:"edge");
  ignore (Transform.substitutions ctx fs);
  ignore (Fold.fold_program ctx fs);
  (ctx, fs)

let test_empty_main () =
  let prog = Test_util.parse "proc main() { }" in
  let _, fs = analyse_everything prog in
  Alcotest.(check int) "one proc, one SCC" 1 fs.Solution.scc_runs

let test_main_only_globals () =
  let prog = Test_util.parse "blockdata { g = 1; } proc main() { print g; }" in
  let _, fs = analyse_everything prog in
  Alcotest.check Test_util.lattice_testable "g at main entry"
    (Fsicp_scc.Lattice.Const (Value.Int 1))
    (Solution.global_value fs "main" "g")

let test_proc_with_many_formals () =
  let n = 40 in
  let formals = List.init n (fun i -> Printf.sprintf "f%d" i) in
  let args = List.init n (fun i -> Ast.int i) in
  let body =
    [
      Ast.assign "s"
        (List.fold_left
           (fun acc f -> Ast.binary Ops.Add acc (Ast.var f))
           (Ast.int 0) formals);
      Ast.print (Ast.var "s");
    ]
  in
  let prog =
    Fsicp_workloads.(ignore Generator.default_profile);
    {
      Ast.globals = [];
      blockdata = [];
      procs =
        [
          { Ast.pname = "main"; formals = []; body = [ Ast.call "f" args ];
            ppos = Ast.no_pos };
          { Ast.pname = "f"; formals; body; ppos = Ast.no_pos };
        ];
      main = "main";
    }
  in
  Sema.check_exn prog;
  let _, fs = analyse_everything prog in
  Alcotest.(check int) "all 40 formals constant" n
    (List.length (Solution.constant_formals fs));
  (* and the interpreter agrees: sum 0..39 = 780 *)
  Alcotest.(check (list string)) "output" [ "780" ]
    (List.map Value.to_string (I.run prog).I.prints)

let test_deep_nesting () =
  let rec nest k inner =
    if k = 0 then inner
    else
      [ Ast.if_ (Ast.binary Ops.Ge (Ast.var "d") (Ast.int k)) (nest (k - 1) inner) [] ]
  in
  let prog =
    {
      Ast.globals = [];
      blockdata = [];
      procs =
        [
          {
            Ast.pname = "main";
            formals = [];
            body =
              Ast.assign "d" (Ast.int 100)
              :: nest 100 [ Ast.print (Ast.int 42) ];
            ppos = Ast.no_pos;
          };
        ];
      main = "main";
    }
  in
  Sema.check_exn prog;
  let _, fs = analyse_everything prog in
  ignore fs;
  Alcotest.(check (list string)) "reaches the innermost print" [ "42" ]
    (List.map Value.to_string (I.run prog).I.prints)

let test_long_call_chain () =
  let n = 60 in
  let procs =
    List.init n (fun i ->
        let name = if i = 0 then "main" else Printf.sprintf "p%d" i in
        let formals = if i = 0 then [] else [ "x" ] in
        let body =
          if i = n - 1 then [ Ast.print (Ast.var "x") ]
          else
            [
              Ast.call
                (Printf.sprintf "p%d" (i + 1))
                [ (if i = 0 then Ast.int 7 else Ast.var "x") ];
            ]
        in
        { Ast.pname = name; formals; body; ppos = Ast.no_pos })
  in
  let prog = { Ast.globals = []; blockdata = []; procs; main = "main" } in
  Sema.check_exn prog;
  let _, fs = analyse_everything prog in
  (* the constant 7 survives the whole 59-deep pass-through chain *)
  Alcotest.check Test_util.lattice_testable "deep chain"
    (Fsicp_scc.Lattice.Const (Value.Int 7))
    (Solution.formal_value fs (Printf.sprintf "p%d" (n - 1)) 0);
  (* and FI finds it too (pure pass-through) *)
  let fi = Fi_icp.solve (Context.create prog) in
  Alcotest.check Test_util.lattice_testable "FI matches on pure pass-through"
    (Fsicp_scc.Lattice.Const (Value.Int 7))
    (Solution.formal_value fi (Printf.sprintf "p%d" (n - 1)) 0)

let test_self_loop_only () =
  (* A procedure whose only caller is itself (plus main). *)
  let prog =
    Test_util.parse
      {|proc main() { call f(1); }
        proc f(a) { if (u) { call f(1); } print a; }|}
  in
  let _, fs = analyse_everything prog in
  Alcotest.check Test_util.lattice_testable "self-loop constant"
    (Fsicp_scc.Lattice.Const (Value.Int 1))
    (Solution.formal_value fs "f" 0)

let test_dead_proc_in_pcg () =
  (* Statically reachable but dynamically dead procedures must not
     contaminate anything. *)
  let prog =
    Test_util.parse
      {|proc main() { if (0) { call dead(99); } call live(1); }
        proc dead(d) { call live(2); }
        proc live(a) { print a; }|}
  in
  let _, fs = analyse_everything prog in
  (* dead's call to live is in a procedure that is never entered, but
     whose own SCC still treats its body as executable — the meet must
     stay sound (it may lower to ⊥ but never claim the wrong constant). *)
  (match Solution.formal_value fs "live" 0 with
  | Fsicp_scc.Lattice.Const (Value.Int 1) | Fsicp_scc.Lattice.Bot -> ()
  | v ->
      Alcotest.failf "unsound value for live.a: %s"
        (Fsicp_scc.Lattice.to_string v));
  match Test_util.check_solution_sound prog fs with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_division_by_zero_in_analysis () =
  (* Constant folding must map the error to ⊥, never crash. *)
  let prog =
    Test_util.parse
      {|proc main() { x = 0; y = 1 / x; call f(y); }
        proc f(a) { print a; }|}
  in
  let _, fs = analyse_everything prog in
  Alcotest.check Test_util.lattice_testable "1/0 is bot interprocedurally"
    Fsicp_scc.Lattice.Bot
    (Solution.formal_value fs "f" 0)

let test_wide_expression () =
  let wide =
    List.fold_left
      (fun acc i -> Ast.binary Ops.Add acc (Ast.int i))
      (Ast.int 0)
      (List.init 300 (fun i -> i))
  in
  let prog =
    {
      Ast.globals = [];
      blockdata = [];
      procs =
        [ { Ast.pname = "main"; formals = []; body = [ Ast.print wide ];
            ppos = Ast.no_pos } ];
      main = "main";
    }
  in
  Sema.check_exn prog;
  let ctx = Context.create prog in
  let res = Fsicp_scc.Scc.run (Context.ssa ctx "main") in
  (* 0 + 0 + 1 + ... + 299 = 44850, fully folded *)
  let ok = ref false in
  Array.iter
    (fun (b : Fsicp_ssa.Ssa.block) ->
      Array.iter
        (function
          | Fsicp_ssa.Ssa.Print o -> (
              match Fsicp_scc.Scc.operand_value res o with
              | Fsicp_scc.Lattice.Const (Value.Int 44850) -> ok := true
              | _ -> ())
          | _ -> ())
        b.Fsicp_ssa.Ssa.instrs)
    (Fsicp_scc.Scc.proc_exn res).Fsicp_ssa.Ssa.blocks;
  Alcotest.(check bool) "300-term expression folds" true !ok

let suite =
  [
    Alcotest.test_case "empty main" `Quick test_empty_main;
    Alcotest.test_case "globals-only program" `Quick test_main_only_globals;
    Alcotest.test_case "40-formal procedure" `Quick test_proc_with_many_formals;
    Alcotest.test_case "100-deep nesting" `Quick test_deep_nesting;
    Alcotest.test_case "60-deep call chain" `Quick test_long_call_chain;
    Alcotest.test_case "self-recursive only" `Quick test_self_loop_only;
    Alcotest.test_case "dynamically dead procedures" `Quick
      test_dead_proc_in_pcg;
    Alcotest.test_case "division by zero interprocedural" `Quick
      test_division_by_zero_in_analysis;
    Alcotest.test_case "300-term expression" `Quick test_wide_expression;
  ]
