(** Tests for procedure inlining (the backward walk's other transformation). *)

open Fsicp_lang
open Fsicp_core
module I = Fsicp_interp.Interp

let setup src =
  let prog = Test_util.parse src in
  (prog, Context.create prog)

let test_simple_inline () =
  let prog, ctx =
    setup
      {|proc main() { x = 2; call double(x); print x; }
        proc double(a) { a = a * 2; }|}
  in
  let prog', n = Inline.inline_program ctx () in
  Alcotest.(check int) "one call expanded" 1 n;
  Sema.check_exn prog';
  let main = Ast.find_proc_exn prog' "main" in
  let calls =
    List.filter
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with Ast.Call _ -> true | _ -> false)
      main.Ast.body
  in
  Alcotest.(check int) "no calls remain in main" 0 (List.length calls);
  Alcotest.(check (list Test_util.value_testable))
    "behaviour preserved" (I.run prog).I.prints (I.run prog').I.prints

let test_by_reference_substitution () =
  (* Writing through the formal must write the caller's variable. *)
  let prog, ctx =
    setup
      {|proc main() { x = 1; call set(x); print x; }
        proc set(p) { p = 9; }|}
  in
  let prog', _ = Inline.inline_program ctx () in
  Alcotest.(check (list Test_util.value_testable))
    "by-ref write survives inlining" (I.run prog).I.prints (I.run prog').I.prints

let test_expression_arg_uses_temp () =
  (* Writing to a formal bound to an expression must NOT escape. *)
  let prog, ctx =
    setup
      {|proc main() { x = 1; call f(x + 0); print x; }
        proc f(p) { p = 9; print p; }|}
  in
  let prog', _ = Inline.inline_program ctx () in
  Sema.check_exn prog';
  Alcotest.(check (list Test_util.value_testable))
    "temp binding" (I.run prog).I.prints (I.run prog').I.prints

let test_local_capture_avoided () =
  (* Caller and callee both use a local named t. *)
  let prog, ctx =
    setup
      {|proc main() { t = 5; call f(1); print t; }
        proc f(a) { t = a + 10; print t; }|}
  in
  let prog', _ = Inline.inline_program ctx () in
  Alcotest.(check (list Test_util.value_testable))
    "no capture" (I.run prog).I.prints (I.run prog').I.prints

let test_inlined_local_rezeroed_in_loop () =
  (* The callee reads its own local before writing (implicit 0); inside a
     caller loop the inlined copy must see 0 every iteration. *)
  let prog, ctx =
    setup
      {|proc main() { i = 0; while (i < 3) { call f(i); i = i + 1; } }
        proc f(a) { acc = acc + a; print acc; }|}
  in
  let prog', _ = Inline.inline_program ctx () in
  Alcotest.(check (list Test_util.value_testable))
    "locals reset per entry" (I.run prog).I.prints (I.run prog').I.prints

let test_recursive_not_inlined () =
  let _, ctx =
    setup
      {|proc main() { call f(3); }
        proc f(a) { if (u) { call f(a); } print a; }|}
  in
  let _, n = Inline.inline_program ctx () in
  Alcotest.(check int) "recursion not expanded" 0 n

let test_return_blocks_inlining () =
  let _, ctx =
    setup
      {|proc main() { call f(1); }
        proc f(a) { if (a) { return; } print a; }|}
  in
  let _, n = Inline.inline_program ctx () in
  Alcotest.(check int) "early return blocks inlining" 0 n

let test_size_threshold () =
  let _, ctx =
    setup
      {|proc main() { call f(1); }
        proc f(a) { print a; print a; print a; print a; print a; }|}
  in
  let _, n = Inline.inline_program ctx ~max_body:3 () in
  Alcotest.(check int) "too big to inline" 0 n;
  let _, n' = Inline.inline_program ctx ~max_body:10 () in
  Alcotest.(check int) "within threshold" 1 n'

let test_inlining_helps_icp () =
  (* After inlining, colliding constants become separate code paths and the
     purely intraprocedural analysis folds them. *)
  let _, ctx =
    setup
      {|proc main() { call f(2); call f(3); }
        proc f(a) { print a * 10; }|}
  in
  let fs0 = Fs_icp.solve ctx in
  Alcotest.(check int) "collision before" 0
    (List.length (Solution.constant_formals fs0));
  let prog', n = Inline.inline_program ctx () in
  Alcotest.(check int) "both sites expanded" 2 n;
  let ctx' = Context.create prog' in
  let _, subs = Transform.substitutions ctx' (Fs_icp.solve ctx') in
  Alcotest.(check bool) "folds after inlining" true (subs >= 2)

let prop_inlining_preserves_semantics =
  Test_util.qcheck ~count:60 ~name:"inlining preserves behaviour"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let prog', _ = Inline.inline_program ctx () in
      Sema.check_exn prog';
      match (I.run_opt prog, I.run_opt prog') with
      | Some a, Some b -> List.equal Value.equal a.I.prints b.I.prints
      | None, None -> true
      | _ -> false)

let prop_inlining_then_icp_sound =
  Test_util.qcheck ~count:30 ~name:"ICP after inlining still sound"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let prog', _ = Inline.inline_program ctx () in
      let ctx' = Context.create prog' in
      match
        Test_util.check_solution_sound prog' (Fs_icp.solve ctx')
      with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let suite =
  [
    Alcotest.test_case "simple inline" `Quick test_simple_inline;
    Alcotest.test_case "by-reference substitution" `Quick
      test_by_reference_substitution;
    Alcotest.test_case "expression arg uses temp" `Quick
      test_expression_arg_uses_temp;
    Alcotest.test_case "local capture avoided" `Quick test_local_capture_avoided;
    Alcotest.test_case "locals re-zeroed in loops" `Quick
      test_inlined_local_rezeroed_in_loop;
    Alcotest.test_case "recursion not inlined" `Quick test_recursive_not_inlined;
    Alcotest.test_case "return blocks inlining" `Quick
      test_return_blocks_inlining;
    Alcotest.test_case "size threshold" `Quick test_size_threshold;
    Alcotest.test_case "inlining helps ICP" `Quick test_inlining_helps_icp;
    prop_inlining_preserves_semantics;
    prop_inlining_then_icp_sound;
  ]
