(** Translation validation ({!Fsicp_verify}): golden SMT-LIB2 fixtures for
    the calibrated suite, unit tests for the {!Term} normalisation rules,
    qcheck properties tying [Proved] verdicts to the interpreter, and the
    injected-bug drill — a [Fold] that drops a side-effecting call must be
    [Refuted] with an interpreter-confirmed counterexample. *)

open Fsicp_lang
open Fsicp_core
module V = Fsicp_verify.Verify
module Term = Fsicp_verify.Term
module Smt = Fsicp_verify.Smt

let parse = Test_util.parse

let root_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "testdata") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "source root not found" else find parent
  in
  find (Sys.getcwd ())

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load base =
  let path =
    Filename.concat (Filename.concat root_dir "testdata") (base ^ ".mf")
  in
  let prog = Parser.program_of_string (read_file path) in
  Sema.check_exn prog;
  prog

let corpus = [ "aliasing"; "bank"; "modes"; "newton"; "recursive" ]

let render_all ~jobs prog =
  let ctx = Context.create ~jobs prog in
  let fs = Fs_icp.solve ~jobs ctx in
  V.verify_program ctx ~solution:fs
  |> List.concat_map (fun r -> r.V.r_vcs)
  |> List.map V.render |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Golden SMT-LIB2 fixtures, byte-compared at jobs 1 and 4             *)
(* ------------------------------------------------------------------ *)

let test_golden ~jobs base () =
  let expected =
    read_file
      (Filename.concat root_dir
         (Printf.sprintf "test/golden/%s.smt2.expected" base))
  in
  Alcotest.(check string)
    (Printf.sprintf "%s VC dump matches fixture (jobs=%d)" base jobs)
    expected
    (render_all ~jobs (load base))

(* ------------------------------------------------------------------ *)
(* Calibrated suite: never Refuted                                     *)
(* ------------------------------------------------------------------ *)

let test_never_refuted base () =
  let prog = load base in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  List.iter
    (fun r ->
      List.iter
        (fun vc ->
          match vc.V.vc_verdict with
          | V.Refuted _ ->
              Alcotest.failf "%s: %s/%s refuted on the calibrated suite" base
                vc.V.vc_transform vc.V.vc_proc
          | V.Proved | V.Inconclusive _ -> ())
        r.V.r_vcs)
    (V.verify_program ctx ~solution:fs)

(* ------------------------------------------------------------------ *)
(* Term normalisation                                                  *)
(* ------------------------------------------------------------------ *)

let term_testable = Alcotest.testable Term.pp Term.equal
let ci v = Term.Cst (Value.Int v)
let sym n = Term.Sym { Term.sname = n; sgen = 0 }

let test_term_norm () =
  (* Constant operands fold through the interpreter's own Value.eval_*. *)
  Alcotest.check term_testable "2+3 folds" (ci 5)
    (Term.bin Ops.Add (ci 2) (ci 3));
  Alcotest.check term_testable "-(-x) cancels" (sym "x")
    (Term.un Ops.Neg (Term.un Ops.Neg (sym "x")));
  (* Faulting combinations are never folded away: the fault is the
     engine's guard discipline, not the algebra's. *)
  (match Term.bin Ops.Div (ci 1) (ci 0) with
  | Term.Bin (Ops.Div, _, _) -> ()
  | t -> Alcotest.failf "1/0 must stay symbolic, got %a" Term.pp t);
  (* Identities fire only on provably-int terms: a comparison is always
     Int 0/1, so x==y is eligible... *)
  let cmp = Term.bin Ops.Eq (sym "x") (sym "y") in
  Alcotest.check term_testable "int-typed t+0 = t" cmp
    (Term.bin Ops.Add cmp (ci 0));
  Alcotest.check term_testable "int-typed t*0 = 0" (ci 0)
    (Term.bin Ops.Mul cmp (ci 0));
  Alcotest.check term_testable "int-typed t==t = 1" (ci 1)
    (Term.bin Ops.Eq cmp cmp);
  (* ...but a bare symbol might be real (-0.0 + 0.0 = 0.0 would change
     the printed sign; nan*0 is nan), so none of them fire. *)
  (match Term.bin Ops.Add (sym "x") (ci 0) with
  | Term.Bin (Ops.Add, _, _) -> ()
  | t -> Alcotest.failf "unknown-typed x+0 must not simplify, got %a" Term.pp t);
  (match Term.bin Ops.Mul (sym "x") (ci 0) with
  | Term.Bin (Ops.Mul, _, _) -> ()
  | t -> Alcotest.failf "unknown-typed x*0 must not simplify, got %a" Term.pp t);
  (match Term.bin Ops.Eq (sym "x") (sym "x") with
  | Term.Bin (Ops.Eq, _, _) -> ()
  | t -> Alcotest.failf "unknown-typed x==x must not simplify, got %a" Term.pp t);
  (* Truthiness: constants decide, 0/1-valued operators pass through,
     anything else becomes t != 0. *)
  Alcotest.check term_testable "truthiness of 7" (ci 1) (Term.truthiness (ci 7));
  Alcotest.check term_testable "truthiness of a comparison is itself" cmp
    (Term.truthiness cmp);
  (match Term.truthiness (sym "x") with
  | Term.Bin (Ops.Ne, _, _) -> ()
  | t -> Alcotest.failf "truthiness of a symbol is x != 0, got %a" Term.pp t);
  Alcotest.(check (option bool))
    "decide is static truth" (Some false)
    (Term.decide (ci 0));
  Alcotest.(check (option bool)) "decide unknown" None (Term.decide (sym "x"))

let test_term_syms () =
  let t =
    Term.Bin
      ( Ops.Add,
        Term.Sym { Term.sname = "b"; sgen = 1 },
        Term.Bin (Ops.Mul, sym "a", Term.Sym { Term.sname = "b"; sgen = 1 }) )
  in
  Alcotest.(check (list (pair string int)))
    "syms deduplicated and sorted by (name, gen)"
    [ ("a", 0); ("b", 1) ]
    (List.map (fun s -> (s.Term.sname, s.Term.sgen)) (Term.syms t))

(* ------------------------------------------------------------------ *)
(* Proved agrees with the interpreter on random concrete inputs        *)
(* ------------------------------------------------------------------ *)

let test_proved_agrees_qcheck =
  Test_util.qcheck ~count:10
    ~name:"every Proved VC agrees with the interpreter on 100 inputs"
    Test_util.seed_gen (fun seed ->
      let prog = Fsicp_oracle.Oracle.program_of_seed seed in
      let ctx = Context.create ~jobs:1 prog in
      let fs = Fs_icp.solve ~jobs:1 ctx in
      List.iter
        (fun r ->
          let trans = V.apply_transform ctx ~solution:fs r.V.r_transform in
          List.iter
            (fun vc ->
              match vc.V.vc_verdict with
              | V.Proved -> (
                  let entry = Solution.entry_opt fs vc.V.vc_counterpart in
                  match
                    V.concrete_check ~samples:100 ~orig:prog ~trans
                      ~proc:vc.V.vc_proc ~counterpart:vc.V.vc_counterpart
                      ~entry ()
                  with
                  | None -> ()
                  | Some cx ->
                      QCheck2.Test.fail_reportf
                        "seed %d: %s/%s Proved but interpreter disagrees: \
                         orig prints [%a], trans prints [%a]"
                        seed vc.V.vc_transform vc.V.vc_proc
                        Fmt.(list ~sep:comma Value.pp)
                        cx.V.cx_orig_prints
                        Fmt.(list ~sep:comma Value.pp)
                        cx.V.cx_trans_prints)
              | V.Refuted _ ->
                  QCheck2.Test.fail_reportf
                    "seed %d: %s/%s refuted a pipeline transform" seed
                    vc.V.vc_transform vc.V.vc_proc
              | V.Inconclusive _ -> ())
            r.V.r_vcs)
        (V.verify_program ctx ~solution:fs);
      true)

(* ------------------------------------------------------------------ *)
(* Injected-bug drill: Fold drops a side-effecting call                *)
(* ------------------------------------------------------------------ *)

let drop_call_in proc_name prog =
  {
    prog with
    Ast.procs =
      List.map
        (fun (p : Ast.proc) ->
          if String.equal p.Ast.pname proc_name then
            {
              p with
              Ast.body =
                List.filter
                  (fun s ->
                    match s.Ast.sdesc with Ast.Call _ -> false | _ -> true)
                  p.Ast.body;
            }
          else p)
        prog.Ast.procs;
  }

let test_injected_bug_drill () =
  let prog =
    parse
      {|
        global g;
        proc main() { g = 0; call work(3); print g; }
        proc work(n) { call bump(); print n; }
        proc bump() { g = g + 1; print g; }
      |}
  in
  let trans = drop_call_in "work" prog in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let vcs = V.vcs ctx ~solution:fs ~transform:"fold" ~trans in
  let work =
    match List.find_opt (fun vc -> String.equal vc.V.vc_proc "work") vcs with
    | Some vc -> vc
    | None -> Alcotest.fail "no VC generated for the modified procedure"
  in
  match work.V.vc_verdict with
  | V.Refuted cx ->
      (* The verdict is only ever assembled from an interpreter-confirmed
         counterexample; re-confirm it here from scratch. *)
      Alcotest.(check bool)
        "counterexample print sequences differ" false
        (List.length cx.V.cx_orig_prints = List.length cx.V.cx_trans_prints
        && List.for_all2 Value.equal cx.V.cx_orig_prints cx.V.cx_trans_prints);
      Alcotest.(check string) "counterexample names the procedure" "work"
        cx.V.cx_proc
  | v ->
      Alcotest.failf "dropping a side-effecting call must refute, got %a"
        V.pp_verdict v

(* A pure statement dropped from a procedure whose result is still
   printed: refuted through the final-store obligations rather than the
   event stream. *)
let test_injected_bug_assign () =
  let prog =
    parse
      {|
        global g;
        proc main() { u = 5; call twice(u); print u; print g; }
        proc twice(x) { g = x; x = x + x; }
      |}
  in
  let drop_assigns p =
    {
      p with
      Ast.procs =
        List.map
          (fun (pr : Ast.proc) ->
            if String.equal pr.Ast.pname "twice" then
              {
                pr with
                Ast.body =
                  List.filter
                    (fun s ->
                      match s.Ast.sdesc with
                      | Ast.Assign ("x", _) -> false
                      | _ -> true)
                    pr.Ast.body;
              }
            else pr)
          p.Ast.procs;
    }
  in
  let trans = drop_assigns prog in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let vcs = V.vcs ctx ~solution:fs ~transform:"fold" ~trans in
  let twice =
    match List.find_opt (fun vc -> String.equal vc.V.vc_proc "twice") vcs with
    | Some vc -> vc
    | None -> Alcotest.fail "no VC generated for the modified procedure"
  in
  match twice.V.vc_verdict with
  | V.Refuted _ -> ()
  | v ->
      Alcotest.failf
        "dropping the by-ref formal update must refute, got %a" V.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Fold loop fixpoint regression                                       *)
(* ------------------------------------------------------------------ *)

(* A while body with a chain of [n] dependent assignments lowers one
   variable per abstract pass, so reaching the loop fixpoint needs ~n
   passes.  The old iteration bound (64) silently returned a non-fixpoint
   for longer chains and folded stale constants into the loop body —
   observably wrong prints.  The interpreter is the judge. *)
let test_fold_long_chain_fixpoint () =
  let n = 70 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "proc main() {\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  x%d = 0;\n" i)
  done;
  Buffer.add_string buf "  while (x0 < 100) {\n";
  for i = n - 1 downto 1 do
    Buffer.add_string buf (Printf.sprintf "    x%d = x%d;\n" i (i - 1))
  done;
  Buffer.add_string buf "    x0 = x0 + 1;\n  }\n";
  Buffer.add_string buf (Printf.sprintf "  print x%d;\n}\n" (n - 1));
  let prog = parse (Buffer.contents buf) in
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let folded = Fold.fold_program ctx fs in
  let run p =
    match Fsicp_interp.Interp.run_opt ~fuel:500_000 p with
    | Some r -> r.Fsicp_interp.Interp.prints
    | None -> Alcotest.fail "interpreter did not finish"
  in
  Alcotest.(check (list Test_util.value_testable))
    "fold preserves prints across a 70-deep dependence chain" (run prog)
    (run folded)

(* ------------------------------------------------------------------ *)
(* Pinned evaluation order (DESIGN.md "Evaluation order")              *)
(* ------------------------------------------------------------------ *)

(* Non-short-circuit operators: the right operand of && / || is always
   evaluated, so a fault in it must survive folding even when the left
   operand already decides the result.  All three judges — interpreter,
   Fold output, symbolic engine — must agree. *)
let test_eval_order_pinned () =
  let prog =
    parse
      {|
        proc main() {
          z = 0;
          print 1;
          if (0 && (1 / z)) { print 2; } else { print 3; }
        }
      |}
  in
  (* The interpreter faults after printing 1: && is not short-circuit. *)
  (match Fsicp_interp.Interp.run_opt ~fuel:1000 prog with
  | None -> ()
  | Some _ -> Alcotest.fail "interpreter must fault on 0 && (1/0)");
  let ctx = Context.create prog in
  let fs = Fs_icp.solve ctx in
  let folded = Fold.fold_program ctx fs in
  (match Fsicp_interp.Interp.run_opt ~fuel:1000 folded with
  | None -> ()
  | Some _ ->
      Alcotest.fail "fold dropped the fault in the right operand of &&");
  (* And the symbolic engine reaches the same verdict family: fold of the
     faulting program is equivalent (both sides fault), never refuted. *)
  List.iter
    (fun vc ->
      match vc.V.vc_verdict with
      | V.Refuted _ ->
          Alcotest.failf "symbolic engine refuted the fault-preserving fold"
      | _ -> ())
    (V.vcs ctx ~solution:fs ~transform:"fold" ~trans:folded)

let suite =
  [
    Alcotest.test_case "term normalisation" `Quick test_term_norm;
    Alcotest.test_case "term symbol collection" `Quick test_term_syms;
    Alcotest.test_case "injected bug: dropped call refuted" `Quick
      test_injected_bug_drill;
    Alcotest.test_case "injected bug: dropped assign refuted" `Quick
      test_injected_bug_assign;
    Alcotest.test_case "fold long-chain loop fixpoint" `Quick
      test_fold_long_chain_fixpoint;
    Alcotest.test_case "pinned evaluation order" `Quick test_eval_order_pinned;
    test_proved_agrees_qcheck;
  ]
  @ List.concat_map
      (fun base ->
        [
          Alcotest.test_case (base ^ " smt2 fixture") `Quick
            (test_golden ~jobs:1 base);
          Alcotest.test_case
            (base ^ " smt2 fixture (jobs=4)")
            `Quick (test_golden ~jobs:4 base);
          Alcotest.test_case (base ^ " never refuted") `Quick
            (test_never_refuted base);
        ])
      corpus
