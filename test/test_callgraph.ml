(** Tests for the program call graph: reachability, traversal orders,
    back-edge classification, the back-edge ratio, and Tarjan SCCs. *)

open Fsicp_callgraph

let build src = Callgraph.build (Test_util.parse src)

let node_names (g : Callgraph.t) : string list =
  Array.to_list g.Callgraph.nodes |> List.map (Callgraph.proc_name g)

let test_reachability () =
  let g =
    build
      {|proc main() { call a(); }
        proc a() { call b(); }
        proc b() { }
        proc dead() { call deader(); }
        proc deader() { }|}
  in
  Alcotest.(check (list string)) "only reachable procs"
    [ "a"; "b"; "main" ]
    (node_names g |> List.sort String.compare);
  Alcotest.(check bool) "dead unreachable" false (Callgraph.is_reachable g "dead")

let test_forward_order_topological () =
  let g =
    build
      {|proc main() { call a(); call b(); }
        proc a() { call c(); }
        proc b() { call c(); }
        proc c() { }|}
  in
  let order =
    Array.to_list (Callgraph.forward_order g)
    |> List.map (Callgraph.proc_name g)
  in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: _ when y = x -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  Alcotest.(check bool) "main first" true (pos "main" = 0);
  Alcotest.(check bool) "a before c" true (pos "a" < pos "c");
  Alcotest.(check bool) "b before c" true (pos "b" < pos "c");
  (* reverse order is the mirror *)
  Alcotest.(check (list string)) "reverse is mirror"
    (List.rev order)
    (Array.to_list (Callgraph.reverse_order g)
    |> List.map (Callgraph.proc_name g));
  (* the id of a procedure IS its forward-order position *)
  Array.iteri
    (fun i (pid : Fsicp_prog.Prog.Proc.id) ->
      Alcotest.(check int) "dense ids" i (pid :> int))
    (Callgraph.forward_order g)

let test_no_back_edges_in_dag () =
  let g =
    build
      {|proc main() { call a(); call b(); }
        proc a() { call b(); }
        proc b() { }|}
  in
  Alcotest.(check bool) "acyclic" false (Callgraph.has_cycles g);
  Alcotest.(check (float 1e-9)) "ratio 0" 0.0 (Callgraph.back_edge_ratio g)

let test_self_recursion () =
  let g =
    build
      {|proc main() { call f(); }
        proc f() { if (c) { call f(); } }|}
  in
  Alcotest.(check bool) "cyclic" true (Callgraph.has_cycles g);
  let back = List.filter (Callgraph.is_back_edge g) g.Callgraph.edges in
  Alcotest.(check int) "one back edge" 1 (List.length back);
  let e = List.hd back in
  Alcotest.(check string) "self edge caller" "f"
    (Callgraph.proc_name g e.Callgraph.caller);
  Alcotest.(check string) "self edge callee" "f"
    (Callgraph.proc_name g e.Callgraph.callee);
  Alcotest.(check bool) "edge flag agrees with bitset" true
    (e.Callgraph.back
    && Callgraph.is_back_edge_at g ~caller:e.Callgraph.caller
         ~cs_index:e.Callgraph.cs_index)

let test_mutual_recursion () =
  let g =
    build
      {|proc main() { call even(); }
        proc even() { if (c) { call odd(); } }
        proc odd() { if (c) { call even(); } }|}
  in
  Alcotest.(check bool) "cyclic" true (Callgraph.has_cycles g);
  let sccs = Callgraph.sccs g in
  let big = List.find (fun c -> List.length c > 1) sccs in
  Alcotest.(check (list string)) "even/odd component" [ "even"; "odd" ]
    (List.sort String.compare big)

let test_multiple_call_sites_are_edges () =
  let g =
    build
      {|proc main() { call f(); call f(); call f(); }
        proc f() { }|}
  in
  Alcotest.(check int) "three edges" 3 (List.length g.Callgraph.edges);
  let idx =
    List.map (fun (e : Callgraph.edge) -> e.Callgraph.cs_index) g.Callgraph.edges
    |> List.sort compare
  in
  Alcotest.(check (list int)) "distinct call-site indices" [ 0; 1; 2 ] idx

let test_in_out_edges () =
  let g =
    build
      {|proc main() { call a(); call b(); }
        proc a() { call b(); }
        proc b() { }|}
  in
  Alcotest.(check int) "b has two in-edges" 2
    (Array.length (Callgraph.in_edges g (Callgraph.proc_id_exn g "b")));
  Alcotest.(check int) "main has two out-edges" 2
    (Array.length (Callgraph.out_edges g (Callgraph.proc_id_exn g "main")))

let test_back_edge_ratio_monotone () =
  (* More back-call probability -> (weakly) larger ratio, on average. *)
  let ratio prob =
    let profile =
      {
        (Fsicp_workloads.Generator.small_profile 5) with
        Fsicp_workloads.Generator.g_procs = 12;
        g_back_edge_prob = prob;
      }
    in
    let p = Fsicp_workloads.Generator.generate profile in
    Callgraph.back_edge_ratio (Callgraph.build p)
  in
  Alcotest.(check (float 1e-9)) "no back calls, no back edges" 0.0 (ratio 0.0);
  Alcotest.(check bool) "full back calls create back edges" true
    (ratio 1.0 > 0.0)

let prop_forward_order_respects_forward_edges =
  Test_util.qcheck ~count:40
    ~name:"forward order: non-back edges go left to right"
    Test_util.seed_gen
    (fun seed ->
      let g = Callgraph.build (Test_util.program_of_seed seed) in
      List.for_all
        (fun (e : Callgraph.edge) ->
          Callgraph.is_back_edge g e
          || (e.Callgraph.caller :> int) < (e.Callgraph.callee :> int))
        g.Callgraph.edges)

let prop_sccs_partition =
  Test_util.qcheck ~count:40 ~name:"SCCs partition the reachable nodes"
    Test_util.seed_gen
    (fun seed ->
      let g = Callgraph.build (Test_util.program_of_seed seed) in
      let all = List.concat (Callgraph.sccs g) in
      List.length all = Array.length g.Callgraph.nodes
      && List.sort_uniq String.compare all
         = List.sort String.compare (node_names g))

let suite =
  [
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "forward order topological" `Quick
      test_forward_order_topological;
    Alcotest.test_case "DAG has no back edges" `Quick test_no_back_edges_in_dag;
    Alcotest.test_case "self recursion" `Quick test_self_recursion;
    Alcotest.test_case "mutual recursion SCC" `Quick test_mutual_recursion;
    Alcotest.test_case "one edge per call site" `Quick
      test_multiple_call_sites_are_edges;
    Alcotest.test_case "in/out edges" `Quick test_in_out_edges;
    Alcotest.test_case "back-edge ratio" `Quick test_back_edge_ratio_monotone;
    prop_forward_order_respects_forward_edges;
    prop_sccs_partition;
  ]
