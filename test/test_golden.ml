(** Golden equivalence suite for the program-database refactor: the interned
    id-based pipeline must render byte-identical {!Solution.pp} output to
    the fixtures under [test/golden/], which were generated from the
    string-keyed implementation.  Any precision or determinism drift in any
    method on any corpus program shows up as a fixture diff. *)

open Fsicp_lang
open Fsicp_core
module Trace = Fsicp_trace.Trace

(* dune runs the tests from the build directory mirror; walk up to the
   source tree root, which contains testdata/ and test/golden/. *)
let root_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "testdata") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then failwith "source root not found" else find parent
  in
  find (Sys.getcwd ())

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load base =
  let path = Filename.concat (Filename.concat root_dir "testdata") (base ^ ".mf") in
  let prog = Parser.program_of_string (read_file path) in
  Sema.check_exn prog;
  prog

let corpus = [ "aliasing"; "bank"; "modes"; "newton"; "recursive" ]

(* Method keys match the fixture file names written by tools/golden_gen. *)
let methods : (string * (Context.t -> Solution.t)) list =
  [
    ("fi", Fi_icp.solve);
    ("fs", fun ctx -> Fs_icp.solve ctx);
    ("ref", Reference.solve);
    ("cc", fun ctx -> Cc_icp.solve ctx);
    ("vc", fun ctx -> Vc_icp.solve ctx);
    ("literal", fun ctx -> Jump_functions.solve ctx Jump_functions.Literal);
    ("intra", fun ctx -> Jump_functions.solve ctx Jump_functions.Intra);
    ("pass", fun ctx -> Jump_functions.solve ctx Jump_functions.Pass_through);
    ("poly", fun ctx -> Jump_functions.solve ctx Jump_functions.Polynomial);
  ]

let test_program base () =
  let prog = load base in
  List.iter
    (fun (mname, solve) ->
      let expected =
        read_file
          (Filename.concat root_dir
             (Printf.sprintf "test/golden/%s.%s.expected" base mname))
      in
      let ctx = Context.create prog in
      let got = Fmt.str "%a" Solution.pp (solve ctx) in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s matches fixture" base mname)
        expected got)
    methods

(* The fixtures must also be insensitive to the domain count used for
   lowering/SSA: render under jobs=4 as well. *)
let test_program_jobs4 base () =
  let prog = load base in
  List.iter
    (fun (mname, solve) ->
      let expected =
        read_file
          (Filename.concat root_dir
             (Printf.sprintf "test/golden/%s.%s.expected" base mname))
      in
      let ctx = Context.create ~jobs:4 prog in
      let got = Fmt.str "%a" Solution.pp (solve ctx) in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s (jobs=4) matches fixture" base mname)
        expected got)
    methods

(* A second flow-sensitive solve of the same (unchanged) context must hit
   the per-procedure entry-vector memo everywhere: byte-identical render
   and zero additional SCC block visits.  [Context.reset_ssa_cache] would
   drop the memos along with the SSA forms and make the next solve cold
   again. *)
let test_memo_warm ~jobs base () =
  let prog = load base in
  let ctx = Context.create ~jobs prog in
  let cold = Fmt.str "%a" Solution.pp (Fs_icp.solve ctx) in
  let visits_after_cold = Metrics.scc_block_visits () in
  let evictions_after_cold = Metrics.scc_memo_evictions () in
  let warm = Fmt.str "%a" Solution.pp (Fs_icp.solve ctx) in
  Alcotest.(check string)
    (Printf.sprintf "%s warm fs re-solve byte-identical (jobs=%d)" base jobs)
    cold warm;
  Alcotest.(check int)
    (Printf.sprintf "%s warm fs re-solve visits no SCC block (jobs=%d)" base
       jobs)
    0
    (Metrics.scc_block_visits () - visits_after_cold);
  (* The warm re-solve replays the cold solve's entry vectors, so the memo
     working set cannot outgrow capacity: an eviction here means the memo
     is thrashing instead of caching. *)
  Alcotest.(check int)
    (Printf.sprintf "%s warm fs re-solve evicts no memo entry (jobs=%d)" base
       jobs)
    0
    (Metrics.scc_memo_evictions () - evictions_after_cold)

(* The logical-mode pipeline trace is part of the pinned surface too: a
   jobs=1 Driver.run must reproduce the trace fixture byte for byte —
   event order, epochs, span args and counter values included. *)
let test_trace_fixture base () =
  let prog = load base in
  let expected =
    read_file
      (Filename.concat root_dir
         (Printf.sprintf "test/golden/%s.trace.expected" base))
  in
  Trace.reset ();
  Trace.set_enabled true;
  ignore (Driver.run ~jobs:1 prog);
  Trace.set_enabled false;
  let got = Trace.to_chrome_json ~mode:Trace.Logical () in
  Alcotest.(check string)
    (Printf.sprintf "%s logical trace matches fixture" base)
    expected got

let suite =
  List.concat_map
    (fun base ->
      [
        Alcotest.test_case (base ^ " fixtures") `Quick (test_program base);
        Alcotest.test_case
          (base ^ " trace fixture")
          `Quick
          (test_trace_fixture base);
        Alcotest.test_case
          (base ^ " fixtures (jobs=4)")
          `Quick
          (test_program_jobs4 base);
        Alcotest.test_case
          (base ^ " memo warm path")
          `Quick
          (test_memo_warm ~jobs:1 base);
        Alcotest.test_case
          (base ^ " memo warm path (jobs=4)")
          `Quick
          (test_memo_warm ~jobs:4 base);
      ])
    corpus
