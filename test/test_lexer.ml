(** Tests for the MiniFort lexer. *)

open Fsicp_lang

let toks src = Lexer.tokens_of_string src

let tok_testable =
  Alcotest.testable
    (fun ppf t -> Fmt.string ppf (Lexer.token_to_string t))
    ( = )

let check name expected src =
  Alcotest.(check (list tok_testable)) name expected (toks src)

let test_keywords () =
  check "keywords"
    Lexer.
      [
        KW_GLOBAL; KW_BLOCKDATA; KW_PROC; KW_IF; KW_ELSE; KW_WHILE; KW_CALL;
        KW_RETURN; KW_PRINT; EOF;
      ]
    "global blockdata proc if else while call return print"

let test_idents_not_keywords () =
  check "prefixed identifiers stay identifiers"
    Lexer.[ IDENT "iffy"; IDENT "global1"; IDENT "printx"; EOF ]
    "iffy global1 printx"

let test_numbers () =
  check "integers" Lexer.[ INT 0; INT 42; INT 1000000; EOF ] "0 42 1000000";
  check "reals" Lexer.[ REAL 0.5; REAL 3.0; REAL 120.0; EOF ] "0.5 3.0 1.2e2";
  check "exponent forms" Lexer.[ REAL 1e-3; REAL 2.5e2; EOF ] "1e-3 2.5e+2"

let test_operators () =
  check "punctuation and operators"
    Lexer.
      [
        LPAREN; RPAREN; LBRACE; RBRACE; COMMA; SEMI; ASSIGN; OP_PLUS;
        OP_MINUS; OP_STAR; OP_SLASH; OP_PERCENT; OP_EQ; OP_NE; OP_LT; OP_LE;
        OP_GT; OP_GE; OP_ANDAND; OP_OROR; OP_BANG; EOF;
      ]
    "( ) { } , ; = + - * / % == != < <= > >= && || !"

let test_two_char_disambiguation () =
  check "= vs ==" Lexer.[ ASSIGN; OP_EQ; ASSIGN; EOF ] "= == =";
  check "< vs <=" Lexer.[ OP_LT; OP_LE; EOF ] "< <=";
  check "! vs !=" Lexer.[ OP_BANG; OP_NE; EOF ] "! !="

let test_comments () =
  check "line comments skipped"
    Lexer.[ INT 1; INT 2; EOF ]
    "1 // comment until eol\n2";
  check "hash comments" Lexer.[ INT 1; INT 2; EOF ] "1 # note\n2";
  check "comment at eof" Lexer.[ INT 3; EOF ] "3 // trailing"

let test_whitespace () =
  check "mixed whitespace" Lexer.[ IDENT "a"; IDENT "b"; EOF ] "  a\t\r\n  b  "

let test_positions () =
  let lx = Lexer.create "a\n  bb\n" in
  let _, p1 = Lexer.next lx in
  let _, p2 = Lexer.next lx in
  Alcotest.(check (pair int int)) "first token at 1:1" (1, 1)
    (p1.Ast.line, p1.Ast.col);
  Alcotest.(check (pair int int)) "second token at 2:3" (2, 3)
    (p2.Ast.line, p2.Ast.col)

let test_errors () =
  let raises src =
    match toks src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lexical error for %S" src
  in
  raises "@";
  raises "&x";
  raises "|";
  raises "$"

let test_division_not_comment () =
  check "single slash is division" Lexer.[ INT 1; OP_SLASH; INT 2; EOF ] "1 / 2"

let suite =
  [
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "identifiers vs keywords" `Quick test_idents_not_keywords;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "two-char tokens" `Quick test_two_char_disambiguation;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "whitespace" `Quick test_whitespace;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "lexical errors" `Quick test_errors;
    Alcotest.test_case "division vs comment" `Quick test_division_not_comment;
  ]
