(** Tests for the reference interpreter — the semantics every analysis is
    judged against, so its own behaviour is pinned down carefully here. *)

open Fsicp_lang
module I = Fsicp_interp.Interp

let run src = I.run (Test_util.parse src)

let prints src =
  List.map Value.to_string (run src).I.prints

let check_prints name expected src =
  Alcotest.(check (list string)) name expected (prints src)

let test_arith_and_print () =
  check_prints "arith" [ "7"; "2.5" ]
    "proc main() { x = 3 + 4; print x; print 5.0 / 2; }"

let test_if_else () =
  check_prints "then branch" [ "1" ]
    "proc main() { if (2 > 1) { print 1; } else { print 2; } }";
  check_prints "else branch" [ "2" ]
    "proc main() { if (0) { print 1; } else { print 2; } }"

let test_while () =
  check_prints "sum 0..4" [ "10" ]
    {|proc main() { s = 0; i = 0;
       while (i < 5) { s = s + i; i = i + 1; }
       print s; }|}

let test_uninitialised_local_is_zero () =
  check_prints "implicit zero" [ "0" ] "proc main() { print nevermind; }"

let test_globals_and_blockdata () =
  check_prints "blockdata initialised" [ "3"; "0" ]
    "blockdata { g = 3; } global h; proc main() { print g; print h; }"

let test_by_reference () =
  check_prints "callee writes through formal" [ "9" ]
    {|proc main() { x = 1; call set9(x); print x; }
      proc set9(a) { a = 9; }|}

let test_by_value_temp () =
  check_prints "expression argument does not escape" [ "1" ]
    {|proc main() { x = 1; call set9(x + 0); print x; }
      proc set9(a) { a = 9; }|}

let test_literal_arg_temp () =
  check_prints "literal argument writable without effect" [ "5" ]
    {|proc main() { call f(3); print 5; }
      proc f(a) { a = 4; }|}

let test_aliased_formals () =
  (* Passing the same variable twice aliases both formals. *)
  check_prints "aliasing visible" [ "7"; "7" ]
    {|proc main() { x = 1; call two(x, x); print x; }
      proc two(a, b) { a = 7; print b; }|}

let test_global_passed_byref () =
  check_prints "global aliased to formal" [ "4"; "4" ]
    {|global g;
      proc main() { g = 1; call f(g); print g; }
      proc f(a) { a = 4; print g; }|}

let test_return_early () =
  check_prints "return skips rest" [ "1" ]
    {|proc main() { call f(); }
      proc f() { print 1; return; print 2; }|}

let test_return_from_loop () =
  check_prints "return exits loop and proc" [ "0"; "1" ]
    {|proc main() { call f(); print 1; }
      proc f() { i = 0; while (1) { print i; return; } }|}

let test_recursion () =
  check_prints "factorial via global accumulator" [ "120" ]
    {|global acc;
      proc main() { acc = 1; call fact(5); print acc; }
      proc fact(n) { if (n > 1) { acc = acc * n; m = n - 1; call fact(m); } }|}

let test_fuel () =
  let p = Test_util.parse "proc main() { while (1) { x = x + 1; } }" in
  (match I.run ~fuel:1000 p with
  | exception I.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel");
  Alcotest.(check bool) "run_opt maps to None" true
    (I.run_opt ~fuel:1000 p = None)

let test_runtime_error () =
  let p = Test_util.parse "proc main() { x = 1 / 0; }" in
  match I.run p with
  | exception I.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_entry_trace () =
  let r =
    run
      {|global g;
        proc main() { g = 5; call f(2, 3); call f(4, g); }
        proc f(a, b) { print a + b; }|}
  in
  let entries =
    List.filter (fun e -> e.I.ev_proc = "f") r.I.entries
  in
  Alcotest.(check int) "two entries to f" 2 (List.length entries);
  let first = List.hd entries in
  Alcotest.(check (list (pair string Test_util.value_testable)))
    "first entry formals"
    [ ("a", Value.Int 2); ("b", Value.Int 3) ]
    first.I.ev_formals;
  Alcotest.(check (option Test_util.value_testable))
    "global snapshot" (Some (Value.Int 5))
    (List.assoc_opt "g" first.I.ev_globals)

let test_nested_scopes_independent () =
  check_prints "locals are per procedure" [ "2"; "1" ]
    {|proc main() { x = 1; call f(); print x; }
      proc f() { x = 2; y = x; print y; }|}

(* Order fix: f prints 2 (its own x), then main prints its unchanged 1. *)
let test_nested_scopes_order () =
  check_prints "callee local does not clobber caller" [ "2"; "1" ]
    {|proc main() { x = 1; call f(); print x; }
      proc f() { x = 2; print x; }|}

(* Regression: a [while] whose body consumes no fuel (e.g. emptied by
   constant folding) must still exhaust fuel — each condition
   re-evaluation is charged — instead of spinning forever. *)
let test_empty_while_body_exhausts_fuel () =
  Alcotest.(check bool)
    "empty-body loop runs out of fuel" true
    (I.run_opt ~fuel:1000 (Test_util.parse "proc main() { while (1) { } }")
    = None);
  Alcotest.(check bool)
    "nested empty loop under a call too" true
    (I.run_opt ~fuel:1000
       (Test_util.parse
          {|proc main() { call f(0); }
            proc f(u) { while (u < 1) { } }|})
    = None)

let prop_terminating_or_flagged =
  Test_util.qcheck ~count:40 ~name:"generated programs run or are flagged"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      match I.run_opt ~fuel:500_000 p with
      | Some r -> r.I.steps > 0
      | None -> true)

let prop_deterministic =
  Test_util.qcheck ~count:25 ~name:"interpretation is deterministic"
    Test_util.seed_gen
    (fun seed ->
      let p = Test_util.program_of_seed seed in
      match (I.run_opt p, I.run_opt p) with
      | Some a, Some b ->
          List.equal Value.equal a.I.prints b.I.prints
          && a.I.steps = b.I.steps
      | None, None -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "arithmetic and print" `Quick test_arith_and_print;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while" `Quick test_while;
    Alcotest.test_case "uninitialised local is 0" `Quick
      test_uninitialised_local_is_zero;
    Alcotest.test_case "globals and blockdata" `Quick test_globals_and_blockdata;
    Alcotest.test_case "by-reference parameters" `Quick test_by_reference;
    Alcotest.test_case "expression args use temps" `Quick test_by_value_temp;
    Alcotest.test_case "literal args writable" `Quick test_literal_arg_temp;
    Alcotest.test_case "aliased formals" `Quick test_aliased_formals;
    Alcotest.test_case "global passed by reference" `Quick
      test_global_passed_byref;
    Alcotest.test_case "early return" `Quick test_return_early;
    Alcotest.test_case "return from loop" `Quick test_return_from_loop;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel;
    Alcotest.test_case "empty while body exhausts fuel" `Quick
      test_empty_while_body_exhausts_fuel;
    Alcotest.test_case "division by zero" `Quick test_runtime_error;
    Alcotest.test_case "entry-event trace" `Quick test_entry_trace;
    Alcotest.test_case "locals are per-procedure" `Quick
      test_nested_scopes_independent;
    Alcotest.test_case "caller locals survive calls" `Quick
      test_nested_scopes_order;
    prop_terminating_or_flagged;
    prop_deterministic;
  ]
