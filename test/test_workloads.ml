(** Tests for the workload suite: determinism, well-formedness, scale, the
    PRNG, and the report renderer. *)

open Fsicp_lang
open Fsicp_workloads

(* -- PRNG ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 99 and b = Prng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 10 (fun _ -> Prng.next a) in
  let ys = List.init 10 (fun _ -> Prng.next b) in
  Alcotest.(check bool) "different seeds differ" false (xs = ys)

let test_prng_uniformity () =
  let t = Prng.create 7 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Prng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d has %d, expected ~%d" i c expected)
    buckets

let test_prng_weighted () =
  let t = Prng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.weighted t [ (0.2, `A); (0.8, `B) ] = `A then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "0.2 weight hit %.3f" frac)
    true
    (frac > 0.17 && frac < 0.23)

(* -- generator ------------------------------------------------------------ *)

let test_generation_deterministic () =
  let p1 = Generator.generate (Generator.small_profile 5) in
  let p2 = Generator.generate (Generator.small_profile 5) in
  Alcotest.(check bool) "same seed, same program" true
    (Ast.equal_program p1 p2)

let test_generation_scale () =
  let profile =
    { Generator.default_profile with Generator.g_procs = 20; g_seed = 3 }
  in
  let p = Generator.generate profile in
  Alcotest.(check int) "21 procedures" 21 (List.length p.Ast.procs)

let test_back_edges_guarded () =
  (* Back-call programs must still terminate under the interpreter. *)
  let profile =
    {
      (Generator.small_profile 9) with
      Generator.g_procs = 10;
      g_back_edge_prob = 1.0;
    }
  in
  let p = Generator.generate profile in
  let pcg = Fsicp_callgraph.Callgraph.build p in
  Alcotest.(check bool) "has back edges" true
    (Fsicp_callgraph.Callgraph.has_cycles pcg);
  match Fsicp_interp.Interp.run_opt ~fuel:500_000 p with
  | Some _ -> ()
  | None -> Alcotest.fail "guarded recursion should terminate"

let test_suite_well_formed () =
  List.iter
    (fun (b : Spec.benchmark) ->
      let p = Spec.program b in
      match Sema.check p with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" b.Spec.b_name (Sema.errors_to_string es))
    (Spec.suite @ Spec.first_release)

let test_suite_scales_match_paper () =
  (* Structural columns must land near the paper: procedure counts exactly,
     FP and ARG within 25%. *)
  List.iter
    (fun (b : Spec.benchmark) ->
      let p = Spec.program b in
      let pcg = Fsicp_callgraph.Callgraph.build p in
      let paper = b.Spec.b_paper in
      Alcotest.(check int)
        (b.Spec.b_name ^ " procs")
        paper.Spec.p_procs
        (Array.length pcg.Fsicp_callgraph.Callgraph.nodes);
      let fp =
        Array.fold_left
          (fun acc pid ->
            let name = Fsicp_callgraph.Callgraph.proc_name pcg pid in
            acc
            + List.length (Ast.find_proc_exn p name).Ast.formals)
          0 pcg.Fsicp_callgraph.Callgraph.nodes
      in
      let within ~target ~got ~pct =
        target = 0 || abs (got - target) * 100 <= target * pct
      in
      if not (within ~target:paper.Spec.p_fp ~got:fp ~pct:25) then
        Alcotest.failf "%s: FP %d vs paper %d" b.Spec.b_name fp paper.Spec.p_fp)
    Spec.suite

let test_figure1_program_parses () =
  Alcotest.(check int) "three procedures" 3
    (List.length Figure1.program.Ast.procs)

(* -- report renderer -------------------------------------------------------- *)

let test_report_render () =
  let t =
    Fsicp_report.Report.make ~title:"T"
      ~header:[ "A"; "BB" ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  let s = Fsicp_report.Report.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  (* columns aligned: every line has the same position for column 2 *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "four lines (title, header, rule, 2 rows)" 5
    (List.length lines)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_csv () =
  let t =
    Fsicp_report.Report.make ~header:[ "a"; "b" ]
      [ [ "x,y"; "2" ]; [ "q\"q"; "3" ] ]
  in
  let csv = Fsicp_report.Report.to_csv t in
  Alcotest.(check bool) "comma cell quoted" true (contains csv "\"x,y\"");
  Alcotest.(check bool) "quote cell escaped" true (contains csv "\"q\"\"q\"")

let suite =
  [
    Alcotest.test_case "PRNG deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "PRNG seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "PRNG uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "PRNG weighted choice" `Quick test_prng_weighted;
    Alcotest.test_case "generation deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "generation scale" `Quick test_generation_scale;
    Alcotest.test_case "guarded back edges terminate" `Quick
      test_back_edges_guarded;
    Alcotest.test_case "suite well-formed" `Quick test_suite_well_formed;
    Alcotest.test_case "suite scales match paper" `Quick
      test_suite_scales_match_paper;
    Alcotest.test_case "figure 1 program" `Quick test_figure1_program_parses;
    Alcotest.test_case "report rendering" `Quick test_report_render;
    Alcotest.test_case "report CSV" `Quick test_report_csv;
  ]
