(** Tests for the programmatic builder DSL and a few cross-cutting
    monotonicity properties that live naturally at program level. *)

open Fsicp_lang
open Fsicp_core

let test_builder_program () =
  let prog =
    Builder.(
      program_exn
        ~blockdata:[ ("g", Value.Int 3) ]
        [
          proc "main" [] [ call "sub1" [ i 0 ] ];
          proc "sub1" [ "f1" ]
            [
              "x" <-- i 1;
              if_ (v "f1" <> i 0) [ "y" <-- i 1 ] [ "y" <-- i 0 ];
              call "sub2" [ v "y"; i 4; v "f1"; v "x" ];
            ];
          proc "sub2" [ "f2"; "f3"; "f4"; "f5" ]
            [ "t" <-- v "f2" + v "f3" + v "f4" + v "f5"; print (v "t") ];
        ])
  in
  (* It is (a superset of) the Figure 1 program: same FS result. *)
  let fs = Fs_icp.solve (Context.create prog) in
  Alcotest.(check int) "five constant formals" 5
    (List.length (Solution.constant_formals fs));
  let r = Fsicp_interp.Interp.run prog in
  Alcotest.(check (list string)) "prints 5" [ "5" ]
    (List.map Value.to_string r.Fsicp_interp.Interp.prints)

let test_builder_operators () =
  let e = Builder.(v "a" * (i 2 + i 3) <= neg (v "b")) in
  Alcotest.(check string) "renders with precedence" "a * (2 + 3) <= -b"
    (Pretty.expr_to_string e)

let test_builder_rejects_illformed () =
  match
    Builder.program_exn [ Builder.proc "main" [] [ Builder.call "nope" [] ] ]
  with
  | exception Sema.Illformed _ -> ()
  | _ -> Alcotest.fail "expected Illformed"

let test_builder_while_loop () =
  let prog =
    Builder.(
      program_exn
        [
          proc "main" []
            [
              "i" <-- i 0;
              "s" <-- i 0;
              while_ (v "i" < i 4)
                [ "s" <-- v "s" + v "i"; "i" <-- v "i" + i 1 ];
              print (v "s");
            ];
        ])
  in
  let r = Fsicp_interp.Interp.run prog in
  Alcotest.(check (list string)) "sums" [ "6" ]
    (List.map Value.to_string r.Fsicp_interp.Interp.prints)

(* Censoring monotonicity: turning float propagation off can only remove
   constants, never add or change them. *)
let prop_float_censoring_monotone =
  Test_util.qcheck ~count:40 ~name:"floats off ⊑ floats on"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_float_frac = 0.4;
          g_float_local_frac = 0.4;
          g_float_bd_frac = 0.6;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let fs_on = Fs_icp.solve (Context.create ~floats:true prog) in
      let fs_off = Fs_icp.solve (Context.create ~floats:false prog) in
      let procs =
        Test_util.reachable_procs (Context.create prog)
      in
      Test_util.solution_le fs_off fs_on ~procs
      &&
      (* every constant the censored run keeps is an integer *)
      List.for_all
        (fun (_, _, v) -> not (Value.is_real v))
        (Solution.constant_formals fs_off))

(* Entry-constant insertion makes the constants INTRAPROCEDURALLY visible:
   after the transform, a purely intraprocedural analysis (no
   interprocedural solution at all) folds the uses the ICP discovered.

   Note this deliberately does NOT claim that a full re-analysis of the
   transformed program is at least as precise: writing a constant into a
   by-reference formal enlarges the callee's MOD set, which can kill
   constants in CALLERS — which is exactly why the paper performs the
   substitution during the backward walk, after all interprocedural
   analysis has been taken. *)
let empty_solution (ctx : Context.t) name : Solution.t =
  let db = ctx.Context.pcg.Fsicp_callgraph.Callgraph.db in
  Solution.make ~method_name:name
    ~db
    ~entries:(Fsicp_prog.Prog.tbl db Solution.empty_entry)
    ~call_records:[] ~scc_runs:0
    ~scc_results:(Fsicp_prog.Prog.tbl db None)

let prop_insertion_makes_constants_local =
  Test_util.qcheck ~count:30
    ~name:"insertion makes ICP constants intraprocedurally visible"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let prog' = Transform.insert_entry_constants ctx fs in
      let ctx' = Context.create prog' in
      (* Per procedure: with NO interprocedural information, the transformed
         procedure folds at least as many uses as its original folded —
         restricted to the procedure itself, where the prologue can only
         add knowledge.  (A global count would not be monotone: writing a
         constant into a by-reference formal enlarges the callee's MOD set
         and can kill constants in CALLERS.) *)
      let per_before, _ =
        Transform.substitutions ctx (empty_solution ctx "none")
      in
      let per_after, _ =
        Transform.substitutions ctx' (empty_solution ctx' "none")
      in
      List.for_all
        (fun proc ->
          (* procedures whose MOD view of callees changed can lose uses;
             only check procedures that received a prologue and make no
             calls (leaf procedures) — there the claim is exact *)
          let p = Fsicp_lang.Ast.find_proc_exn prog proc in
          if Fsicp_lang.Ast.call_sites p <> [] then true
          else
            match (List.assoc_opt proc per_before, List.assoc_opt proc per_after) with
            | Some b, Some a -> a >= b
            | _ -> true)
        (Test_util.reachable_procs ctx))

let suite =
  [
    Alcotest.test_case "builder assembles Figure 1" `Quick test_builder_program;
    Alcotest.test_case "builder operators" `Quick test_builder_operators;
    Alcotest.test_case "builder rejects ill-formed" `Quick
      test_builder_rejects_illformed;
    Alcotest.test_case "builder while loop" `Quick test_builder_while_loop;
    prop_float_censoring_monotone;
    prop_insertion_makes_constants_local;
  ]
