(** Tests for the flow-sensitive ICP of paper Figure 4 — the paper's main
    contribution.  Covers the one-SCC-per-procedure discipline, dead-call
    pruning, the flow-insensitive fallback on back edges, the exactness
    property on acyclic PCGs (FS = iterative reference), the precision
    hierarchy FI ⊑ FS ⊑ iterative, and interpreter soundness. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_scc
module L = Lattice

let lat = Test_util.lattice_testable

let solve src =
  let ctx = Context.create (Test_util.parse src) in
  (ctx, Fs_icp.solve ctx)

let test_local_constant_propagates () =
  let _, sol =
    solve {|proc main() { x = 3; call f(x); } proc f(a) { print a; }|}
  in
  Alcotest.check lat "locally computed constant" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0)

let test_join_constant_propagates () =
  let _, sol =
    solve
      {|proc main() { if (u) { x = 3; } else { x = 3; } call f(x); }
        proc f(a) { print a; }|}
  in
  Alcotest.check lat "same constant on all paths" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0)

let test_dead_call_site_ignored () =
  (* The call passing 9 is unreachable; only 3 reaches f. *)
  let _, sol =
    solve
      {|proc main() {
          if (0) { call f(9); }
          call f(3);
        }
        proc f(a) { print a; }|}
  in
  Alcotest.check lat "dead call contributes nothing" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0)

let test_interprocedurally_dead_call () =
  (* The branch in mid is dead only once main's constant is known. *)
  let _, sol =
    solve
      {|proc main() { call mid(0); }
        proc mid(s) {
          if (s != 0) { call f(9); } else { call f(3); }
        }
        proc f(a) { print a; }|}
  in
  Alcotest.check lat "interprocedural pruning" (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0)

let test_globals_at_call_sites () =
  let _, sol =
    solve
      {|global g;
        proc main() { g = 5; call f(); g = 6; call h(); }
        proc f() { print g; }
        proc h() { print g; }|}
  in
  Alcotest.check lat "g = 5 at first call" (L.Const (Value.Int 5))
    (Solution.global_value sol "f" "g");
  Alcotest.check lat "g = 6 at second call" (L.Const (Value.Int 6))
    (Solution.global_value sol "h" "g")

let test_global_meet_across_sites () =
  let _, sol =
    solve
      {|global g;
        proc main() { g = 5; call f(); g = 6; call f(); }
        proc f() { print g; }|}
  in
  Alcotest.check lat "different values meet to bot" L.Bot
    (Solution.global_value sol "f" "g")

let test_blockdata_reaches_main_calls () =
  let _, sol =
    solve
      {|blockdata { g = 4; }
        proc main() { call f(); }
        proc f() { print g; }|}
  in
  Alcotest.check lat "blockdata global at call" (L.Const (Value.Int 4))
    (Solution.global_value sol "f" "g")

let test_one_scc_per_proc () =
  let ctx, sol =
    solve
      {|proc main() { call a(); call b(); }
        proc a() { call c(); }
        proc b() { call c(); }
        proc c() { }|}
  in
  Alcotest.(check int) "4 procs, 4 SCC runs"
    (Array.length ctx.Context.pcg.Fsicp_callgraph.Callgraph.nodes)
    sol.Solution.scc_runs

let test_one_scc_per_proc_with_recursion () =
  let ctx, sol =
    solve
      {|proc main() { call f(1); }
        proc f(a) { if (u) { call g(a); } }
        proc g(b) { if (u) { call f(b); } }|}
  in
  Alcotest.(check int) "recursion: still one SCC per proc"
    (Array.length ctx.Context.pcg.Fsicp_callgraph.Callgraph.nodes)
    sol.Solution.scc_runs

let test_back_edge_uses_fi () =
  (* g and f are mutually recursive; the back edge g->f contributes the FI
     status of its argument.  The argument is a locally-computed constant
     (invisible to FI), so even though both dynamic values agree, the FS
     one-pass method must conservatively lower f's formal. *)
  let _, sol =
    solve
      {|proc main() { call f(3); }
        proc f(a) { if (u) { x = 3; call g(x); } print a; }
        proc g(b) { if (u) { y = 3; call f(y); } print b; }|}
  in
  (* forward edge main->f carries 3; back edge g->f carries FI(y)=bot *)
  Alcotest.check lat "back edge falls back to FI" L.Bot
    (Solution.formal_value sol "f" 0)

let test_back_edge_literal_stays () =
  (* With literal arguments the FI fallback still sees constants. *)
  let _, sol =
    solve
      {|proc main() { call f(3); }
        proc f(a) { if (u) { call f(3); } print a; }|}
  in
  Alcotest.check lat "literal recursion stays constant"
    (L.Const (Value.Int 3))
    (Solution.formal_value sol "f" 0)

let test_by_ref_kill () =
  (* f modifies its by-reference argument, so x is unknown at the second
     call. *)
  let _, sol =
    solve
      {|proc main() { x = 1; call set(x); call f(x); }
        proc set(p) { p = p + u; }
        proc f(a) { print a; }|}
  in
  Alcotest.check lat "by-ref modification kills constant" L.Bot
    (Solution.formal_value sol "f" 0)

let test_figure1_values () =
  let ctx = Context.create Fsicp_workloads.Figure1.program in
  let sol = Fs_icp.solve ctx in
  List.iter
    (fun (p, i, v) ->
      Alcotest.check lat
        (Printf.sprintf "%s formal %d" p i)
        (L.Const (Value.Int v))
        (Solution.formal_value sol p i))
    [ ("sub1", 0, 0); ("sub2", 0, 0); ("sub2", 1, 4); ("sub2", 2, 0);
      ("sub2", 3, 1) ]

(* -- properties --------------------------------------------------------- *)

let entries_equal (a : Solution.t) (b : Solution.t) procs =
  List.for_all
    (fun proc ->
      let ea = Solution.entry a proc and eb = Solution.entry b proc in
      Array.length ea.Solution.pe_formals = Array.length eb.Solution.pe_formals
      && Array.for_all2 L.equal ea.Solution.pe_formals eb.Solution.pe_formals
      && List.equal
           (fun (g, v) (g', v') ->
             Fsicp_prog.Prog.Var.equal g g' && L.equal v v')
           ea.Solution.pe_globals eb.Solution.pe_globals)
    procs

let prop_acyclic_equals_reference =
  Test_util.qcheck ~count:40
    ~name:"acyclic PCG: FS = iterative flow-sensitive solution"
    Test_util.seed_gen
    (fun seed ->
      (* force an acyclic profile *)
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_back_edge_prob = 0.0;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let ctx = Context.create prog in
      if Fsicp_callgraph.Callgraph.has_cycles ctx.Context.pcg then true
      else begin
        let fs = Fs_icp.solve ctx in
        let reference = Reference.solve ctx in
        entries_equal fs reference (Test_util.reachable_procs ctx)
      end)

let prop_fi_below_fs =
  Test_util.qcheck ~count:50 ~name:"FI ⊑ FS on formal constants (acyclic)"
    Test_util.seed_gen
    (fun seed ->
      let profile =
        {
          (Fsicp_workloads.Generator.small_profile seed) with
          Fsicp_workloads.Generator.g_back_edge_prob = 0.0;
        }
      in
      let prog = Fsicp_workloads.Generator.generate profile in
      let ctx = Context.create prog in
      let fi = Fi_icp.solve ctx in
      let fs = Fs_icp.solve ~fi ctx in
      Test_util.solution_le fi fs ~procs:(Test_util.reachable_procs ctx))

let prop_fs_below_reference =
  Test_util.qcheck ~count:40 ~name:"FS ⊑ iterative reference (cyclic too)"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let fs = Fs_icp.solve ctx in
      let reference = Reference.solve ctx in
      Test_util.solution_le fs reference
        ~procs:(Test_util.reachable_procs ctx))

let prop_sound =
  Test_util.qcheck ~count:80 ~name:"FS solution sound w.r.t. interpreter"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let sol = Fs_icp.solve ctx in
      match Test_util.check_solution_sound prog sol with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let prop_reference_sound =
  Test_util.qcheck ~count:40 ~name:"iterative reference sound too"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let sol = Reference.solve ctx in
      match Test_util.check_solution_sound prog sol with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let prop_one_scc_per_proc =
  Test_util.qcheck ~count:50 ~name:"always exactly one SCC per procedure"
    Test_util.seed_gen
    (fun seed ->
      let prog = Test_util.program_of_seed seed in
      let ctx = Context.create prog in
      let sol = Fs_icp.solve ctx in
      sol.Solution.scc_runs
      = Array.length ctx.Context.pcg.Fsicp_callgraph.Callgraph.nodes)

let suite =
  [
    Alcotest.test_case "local constant propagates" `Quick
      test_local_constant_propagates;
    Alcotest.test_case "join constant propagates" `Quick
      test_join_constant_propagates;
    Alcotest.test_case "dead call ignored" `Quick test_dead_call_site_ignored;
    Alcotest.test_case "interprocedurally dead call" `Quick
      test_interprocedurally_dead_call;
    Alcotest.test_case "globals at call sites" `Quick test_globals_at_call_sites;
    Alcotest.test_case "global meet across sites" `Quick
      test_global_meet_across_sites;
    Alcotest.test_case "blockdata reaches calls" `Quick
      test_blockdata_reaches_main_calls;
    Alcotest.test_case "one SCC per procedure" `Quick test_one_scc_per_proc;
    Alcotest.test_case "one SCC per procedure (recursive)" `Quick
      test_one_scc_per_proc_with_recursion;
    Alcotest.test_case "back edge falls back to FI" `Quick test_back_edge_uses_fi;
    Alcotest.test_case "literal recursion stays constant" `Quick
      test_back_edge_literal_stays;
    Alcotest.test_case "by-ref modification kills" `Quick test_by_ref_kill;
    Alcotest.test_case "figure 1 values" `Quick test_figure1_values;
    prop_acyclic_equals_reference;
    prop_fi_below_fs;
    prop_fs_below_reference;
    prop_sound;
    prop_reference_sound;
    prop_one_scc_per_proc;
  ]
