(** Tests for the incremental {!Engine}: edit routing (incremental vs
    rebuild), byte-identity of incremental solutions against from-scratch
    solves, SCC memo reuse across edit→re-solve cycles (hits on no-op
    edits, evictions under churn), {!Context.reset_scc_memos}, and an
    in-suite edit-sequence oracle smoke at [jobs ∈ {1, 4}]. *)

open Fsicp_lang
open Fsicp_core
module Trace = Fsicp_trace.Trace
module Scc = Fsicp_scc.Scc
module Oracle = Fsicp_oracle.Oracle

let parse src =
  match Parser.program_of_string src with
  | p -> p
  | exception Parser.Error (m, _) -> Alcotest.failf "parse error: %s" m

(* A procedure edit payload: a procs-only source, first procedure taken. *)
let proc_of src =
  match (parse src).Ast.procs with
  | p :: _ -> p
  | [] -> Alcotest.fail "no procedure in edit source"

let base_src =
  {|
global g;
proc main() { g = 1; call f(10); print g; }
proc f(n) { x = n + 2; g = g + x; call h(x); }
proc h(y) { g = g + y; }
|}

let f_with k =
  proc_of
    (Printf.sprintf "proc f(n) { x = n + %d; g = g + x; call h(x); }" k)

(* Counter totals under tracing; Engine work only shows up when enabled. *)
let with_trace f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

let digest_of_fresh ?(jobs = 1) prog =
  let ctx = Context.create ~jobs prog in
  Solution.digest (Fs_icp.solve ~jobs ~fi:(Fi_icp.solve ctx) ctx)

let check_matches_scratch msg e =
  Alcotest.(check string)
    msg
    (digest_of_fresh (Engine.context e).Context.prog)
    (Solution.digest (Engine.solution e))

(* -- edit routing --------------------------------------------------------- *)

let test_incremental_route () =
  let e = Engine.create ~jobs:1 (parse base_src) in
  (match Engine.edit_proc ~jobs:1 e (f_with 5) with
  | Engine.Incremental { dirty; total } ->
      Alcotest.(check int) "total reachable" 3 total;
      (* f and its downstream cone (h); main is upstream and clean. *)
      Alcotest.(check int) "dirty cone" 2 dirty
  | Engine.Rebuilt why -> Alcotest.failf "unexpected rebuild: %s" why);
  check_matches_scratch "incremental edit = from-scratch" e

let test_rebuild_on_shape_change () =
  let e = Engine.create ~jobs:1 (parse base_src) in
  (* Dropping the call to h changes f's callee sequence: a shape change. *)
  match Engine.edit_proc ~jobs:1 e (proc_of "proc f(n) { g = g + n; }") with
  | Engine.Rebuilt _ -> check_matches_scratch "rebuild = from-scratch" e
  | Engine.Incremental _ ->
      Alcotest.fail "shape-changing edit took the incremental route"

let test_rebuild_on_new_proc () =
  let e = Engine.create ~jobs:1 (parse base_src) in
  match Engine.edit_proc ~jobs:1 e (proc_of "proc fresh(a) { print a; }") with
  | Engine.Rebuilt _ -> check_matches_scratch "new proc = from-scratch" e
  | Engine.Incremental _ ->
      Alcotest.fail "new procedure took the incremental route"

let test_stats_track_edits () =
  let e = Engine.create ~jobs:1 (parse base_src) in
  ignore (Engine.edit_proc ~jobs:1 e (f_with 5));
  ignore (Engine.edit_proc ~jobs:1 e (proc_of "proc f(n) { g = g + n; }"));
  let get k = List.assoc k (Engine.stats e) in
  Alcotest.(check int) "edits" 2 (get "edits");
  Alcotest.(check int) "incremental_edits" 1 (get "incremental_edits");
  Alcotest.(check int) "rebuilds" 1 (get "rebuilds")

(* -- SCC memo behaviour across edit→re-solve cycles ----------------------- *)

(* A no-op edit (the procedure resubmitted verbatim) still re-drives the
   dirty cone, and every re-driven procedure must hit its SCC entry-vector
   memo: same entry vector, same memoised result, zero evictions. *)
let test_noop_edit_hits_memo () =
  with_trace (fun () ->
      let e = Engine.create ~jobs:1 (parse base_src) in
      let before_hits = Trace.counter_total "scc.memo_hits" in
      (match Engine.edit_proc ~jobs:1 e (f_with 2) with
      | Engine.Incremental { dirty; _ } ->
          Alcotest.(check int) "no-op still re-drives the cone" 2 dirty
      | Engine.Rebuilt why -> Alcotest.failf "unexpected rebuild: %s" why);
      let hits = Trace.counter_total "scc.memo_hits" - before_hits in
      Alcotest.(check bool)
        (Printf.sprintf "memo hits on no-op edit (%d)" hits)
        true (hits > 0);
      Alcotest.(check int)
        "no evictions on no-op edit" 0
        (Trace.counter_total "scc.memo_evictions");
      check_matches_scratch "no-op edit = from-scratch" e)

(* Distinct literal edits give f's callee h a new entry vector each time;
   past the memo capacity the per-procedure memo must evict (the counter
   moves) while solutions stay exact. *)
let test_churn_evicts_memo () =
  with_trace (fun () ->
      let e = Engine.create ~jobs:1 (parse base_src) in
      for k = 1 to 12 do
        match Engine.edit_proc ~jobs:1 e (f_with k) with
        | Engine.Incremental _ -> ()
        | Engine.Rebuilt why -> Alcotest.failf "unexpected rebuild: %s" why
      done;
      let evictions = Trace.counter_total "scc.memo_evictions" in
      Alcotest.(check bool)
        (Printf.sprintf "churn evicts memo entries (%d)" evictions)
        true (evictions > 0);
      check_matches_scratch "post-churn = from-scratch" e)

let test_reset_scc_memos () =
  with_trace (fun () ->
      let prog = parse base_src in
      let ctx = Context.create ~jobs:1 prog in
      let fi = Fi_icp.solve ctx in
      let s1 = Fs_icp.solve ~jobs:1 ~fi ctx in
      Alcotest.(check bool)
        "memo populated after first solve" true
        (Scc.memo_size (Context.ssa ctx "f") > 0);
      let hits0 = Trace.counter_total "scc.memo_hits" in
      let s2 = Fs_icp.solve ~jobs:1 ~fi ctx in
      Alcotest.(check bool)
        "warm re-solve hits the memo" true
        (Trace.counter_total "scc.memo_hits" > hits0);
      Context.reset_scc_memos ctx;
      Alcotest.(check int)
        "reset empties every memo" 0
        (Scc.memo_size (Context.ssa ctx "f"));
      let hits1 = Trace.counter_total "scc.memo_hits" in
      let runs0 = Trace.counter_total "scc.runs" in
      let s3 = Fs_icp.solve ~jobs:1 ~fi ctx in
      Alcotest.(check int)
        "cold re-solve after reset: no memo hits" hits1
        (Trace.counter_total "scc.memo_hits");
      Alcotest.(check bool)
        "cold re-solve re-ran the kernels" true
        (Trace.counter_total "scc.runs" > runs0);
      Alcotest.(check string)
        "warm solution unchanged" (Solution.digest s1) (Solution.digest s2);
      Alcotest.(check string)
        "cold solution unchanged" (Solution.digest s1) (Solution.digest s3))

(* -- edit-sequence oracle smoke ------------------------------------------- *)

(* ISSUE acceptance: 200+ random edit sequences, each checked byte-identical
   at jobs 1 and 4 against from-scratch solves after every edit. *)
let test_edit_sequence_smoke () =
  let failures = ref [] in
  for seed = 0 to 199 do
    match Oracle.check_edit_sequence ~jobs:4 ~edits:5 seed with
    | Ok () -> ()
    | Error f -> failures := (seed, f) :: !failures
  done;
  match !failures with
  | [] -> ()
  | (seed, f) :: _ ->
      Alcotest.failf "%d seed(s) failed; first: seed %d — %a"
        (List.length !failures) seed Oracle.pp_failure f

let suite =
  [
    Alcotest.test_case "shape-preserving edit is incremental" `Quick
      test_incremental_route;
    Alcotest.test_case "shape change rebuilds" `Quick
      test_rebuild_on_shape_change;
    Alcotest.test_case "new procedure rebuilds" `Quick test_rebuild_on_new_proc;
    Alcotest.test_case "stats track edit routes" `Quick test_stats_track_edits;
    Alcotest.test_case "no-op edit hits SCC memos, no evictions" `Quick
      test_noop_edit_hits_memo;
    Alcotest.test_case "literal churn evicts SCC memos" `Quick
      test_churn_evicts_memo;
    Alcotest.test_case "reset_scc_memos forces cold kernels" `Quick
      test_reset_scc_memos;
    Alcotest.test_case "edit-sequence oracle: 200 seeds, jobs {1,4}" `Slow
      test_edit_sequence_smoke;
  ]
