(** Tests for the serve layer: JSON printing/parsing round-trips, wire
    framing, socket-free request dispatch, and a live in-process daemon
    (own domain, real Unix socket) driven through a load → query → edit →
    digest → shutdown session. *)

open Fsicp_serve
module Json = Fsicp_serve.Json

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

let parse_exn s =
  match Json.of_string s with
  | Ok d -> d
  | Error m -> Alcotest.failf "unexpected JSON parse error on %S: %s" s m

(* -- JSON ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check json
        (Printf.sprintf "round-trip %s" (Json.to_string v))
        v
        (parse_exn (Json.to_string v)))
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 2.5;
      Json.Str "";
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \x01 end";
      Json.Str "héllo \xe2\x8a\xa5";
      Json.Arr [];
      Json.Arr [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Arr [ Json.Obj [ ("b", Json.Bool false) ] ]);
          ("empty", Json.Str "");
        ];
    ]

let test_json_unicode_escapes () =
  (* \u escapes decode to UTF-8, surrogate pairs included. *)
  Alcotest.check json "BMP escape" (Json.Str "héllo")
    (parse_exn {|"héllo"|});
  Alcotest.check json "surrogate pair" (Json.Str "\xf0\x9d\x84\x9e")
    (parse_exn {|"𝄞"|});
  Alcotest.check json "escaped controls" (Json.Str "\n\t/")
    (parse_exn {|"\n\t\/"|})

let test_json_surrogates () =
  (* Valid pairs across the supplementary range round-trip: the \u pair
     decodes to the scalar's UTF-8 bytes, and re-printing re-parses to the
     same document. *)
  let utf8 cp =
    let b = Buffer.create 4 in
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)));
    Buffer.contents b
  in
  List.iter
    (fun cp ->
      let u = cp - 0x10000 in
      let hi = 0xD800 lor (u lsr 10) and lo = 0xDC00 lor (u land 0x3FF) in
      let doc = Printf.sprintf {|"\u%04X\u%04X"|} hi lo in
      let parsed = parse_exn doc in
      Alcotest.check json
        (Printf.sprintf "pair U+%04X decodes" cp)
        (Json.Str (utf8 cp)) parsed;
      Alcotest.check json
        (Printf.sprintf "pair U+%04X round-trips" cp)
        parsed
        (parse_exn (Json.to_string parsed)))
    [ 0x10000; 0x1D11E; 0x1F600; 0xFFFFF; 0x10FFFF ];
  (* Lone and mismatched surrogate escapes are rejected, never emitted as
     ill-formed bytes (RFC 8259: an escaped code point must be a Unicode
     scalar value). *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok d ->
          Alcotest.failf "%S wrongly parsed as %s" s (Json.to_string d)
      | Error _ -> ())
    [
      (* lone low surrogates, range edges included *)
      {|"\uDC00"|}; {|"\uDFFF"|}; {|"\uDEAD"|}; {|"x\uDC00y"|};
      (* lone high surrogates: end of string, literal char, non-escape *)
      {|"\uD800"|}; {|"\uDBFF"|}; {|"\uD800x"|}; {|"\uD800 "|};
      (* high surrogate followed by a non-\u escape *)
      {|"\uD800\n"|}; {|"\uD800\\"|};
      (* high surrogate paired with a non-low-surrogate escape *)
      {|"\uD800\u0041"|}; {|"\uD83D\uD83D"|}; {|"\uDBFF"|};
    ];
  (* The boundary non-surrogate escapes on either side still decode. *)
  Alcotest.check json "U+D7FF decodes" (Json.Str "\xed\x9f\xbf")
    (parse_exn {|"퟿"|});
  Alcotest.check json "U+E000 decodes" (Json.Str "\xee\x80\x80")
    (parse_exn {|""|})

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok d ->
          Alcotest.failf "%S wrongly parsed as %s" s (Json.to_string d)
      | Error _ -> ())
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2";
      "{\"a\":1} trailing"; "'single'"; "{a:1}";
    ]

let test_json_accessors () =
  let doc = parse_exn {|{"cmd":"load","n":3,"nested":{"s":"x"}}|} in
  Alcotest.(check (option string)) "str_member" (Some "load")
    (Json.str_member "cmd" doc);
  Alcotest.(check (option int)) "int_member" (Some 3) (Json.int_member "n" doc);
  Alcotest.(check (option string)) "missing" None (Json.str_member "nope" doc);
  Alcotest.(check (option string)) "wrong type" None (Json.str_member "n" doc)

(* -- framing --------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let test_framing_roundtrip () =
  with_socketpair (fun a b ->
      List.iter
        (fun payload ->
          Protocol.write_frame a payload;
          Alcotest.(check (option string))
            "frame round-trip" (Some payload) (Protocol.read_frame b))
        [ ""; "x"; {|{"cmd":"version"}|}; String.make 100_000 'z' ])

let test_framing_eof () =
  with_socketpair (fun a b ->
      Unix.close a;
      Alcotest.(check (option string))
        "clean EOF is None" None (Protocol.read_frame b))

let test_framing_bad_length () =
  with_socketpair (fun a b ->
      (* A length prefix beyond max_frame_len must raise, not allocate. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 0x7fffffffl;
      ignore (Unix.write a hdr 0 4);
      match Protocol.read_frame b with
      | _ -> Alcotest.fail "oversized frame accepted"
      | exception Protocol.Frame_error _ -> ())

(* -- socket-free dispatch -------------------------------------------------- *)

let prog_src =
  {|
global g;
proc main() { g = 1; call f(10); print g; }
proc f(n) { x = n + 2; g = g + x; call h(x); }
proc h(y) { g = g + y; }
|}

let req st s = Protocol.handle st (parse_exn s)

let ok_of resp =
  match Json.member "ok" resp with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "response without ok: %s" (Json.to_string resp)

let test_dispatch_session () =
  let st = Protocol.make_state ~jobs:1 ~version:"test" () in
  (* Commands needing a program fail cleanly before load. *)
  Alcotest.(check bool) "digest before load fails" false
    (ok_of (req st {|{"cmd":"digest"}|}));
  let load =
    req st
      (Json.to_string
         (Json.Obj [ ("cmd", Json.Str "load"); ("source", Json.Str prog_src) ]))
  in
  Alcotest.(check bool) "load ok" true (ok_of load);
  Alcotest.(check (option int)) "3 procs" (Some 3)
    (Json.int_member "procs" load);
  let entry = req st {|{"cmd":"query-entry","proc":"main"}|} in
  Alcotest.(check bool) "query-entry ok" true (ok_of entry);
  Alcotest.(check (option string))
    "query-entry defaults to the fs method" (Some "flow-sensitive")
    (Json.str_member "method" entry);
  Alcotest.(check bool) "unknown proc fails" false
    (ok_of (req st {|{"cmd":"query-entry","proc":"nope"}|}));
  (* Method selection: every vocabulary entry answers, and the cc/vc
     solutions agree with fs on f's formal (n = 10 on the only call). *)
  let entry_with m =
    req st
      (Printf.sprintf {|{"cmd":"query-entry","proc":"f","method":"%s"}|} m)
  in
  let formal0 resp =
    match Json.member "formals" resp with
    | Some (Json.Arr (Json.Str v :: _)) -> v
    | _ -> Alcotest.failf "no formals in %s" (Json.to_string resp)
  in
  List.iter
    (fun m ->
      let resp = entry_with m in
      Alcotest.(check bool) ("query-entry method " ^ m) true (ok_of resp);
      Alcotest.(check string)
        (m ^ " agrees on f's constant formal")
        (formal0 (entry_with "fs"))
        (formal0 resp))
    [ "fs"; "fi"; "cc"; "vc" ];
  Alcotest.(check bool) "unknown method fails" false
    (ok_of (req st {|{"cmd":"query-entry","proc":"f","method":"poly"}|}));
  Alcotest.(check bool) "call-site query ok" true
    (ok_of (req st {|{"cmd":"query-call-site","caller":"main","cs":0}|}));
  Alcotest.(check bool) "malformed JSON command fails" false
    (ok_of (req st {|{"cmd":"query-call-site","caller":"main"}|}));
  Alcotest.(check bool) "unknown command fails" false
    (ok_of (req st {|{"cmd":"frobnicate"}|}));
  Alcotest.(check bool) "bad edit source fails" false
    (ok_of (req st {|{"cmd":"edit-proc","source":"proc f(n) {"}|}));
  (* The digest after an incremental edit equals a fresh engine's digest
     of the same edited program (byte-identity through the dispatcher). *)
  let edit =
    req st
      {|{"cmd":"edit-proc","source":"proc f(n) { x = n + 5; g = g + x; call h(x); }"}|}
  in
  Alcotest.(check bool) "edit ok" true (ok_of edit);
  (match Json.member "edits" edit with
  | Some (Json.Arr [ one ]) ->
      Alcotest.(check (option string))
        "edit went incremental" (Some "incremental")
        (Json.str_member "outcome" one)
  | _ -> Alcotest.failf "unexpected edit response %s" (Json.to_string edit));
  let digest_live = Json.str_member "digest" (req st {|{"cmd":"digest"}|}) in
  let dumped = Json.str_member "program" (req st {|{"cmd":"dump-program"}|}) in
  let st2 = Protocol.make_state ~jobs:1 ~version:"test" () in
  let load2 =
    req st2
      (Json.to_string
         (Json.Obj
            [
              ("cmd", Json.Str "load");
              ("source", Json.Str (Option.get dumped));
            ]))
  in
  Alcotest.(check bool) "reload of dump ok" true (ok_of load2);
  Alcotest.(check (option string))
    "live digest = fresh digest of dumped program" digest_live
    (Json.str_member "digest" (req st2 {|{"cmd":"digest"}|}));
  let stats = req st {|{"cmd":"stats"}|} in
  Alcotest.(check bool) "stats ok" true (ok_of stats);
  Alcotest.(check bool) "shutdown latches" false st.Protocol.stop;
  Alcotest.(check bool) "shutdown ok" true
    (ok_of (req st {|{"cmd":"shutdown"}|}));
  Alcotest.(check bool) "stop latched" true st.Protocol.stop

let test_dispatch_batch () =
  let st = Protocol.make_state ~jobs:1 ~version:"test" () in
  match
    Protocol.handle st
      (Json.Arr
         [
           parse_exn {|{"cmd":"version"}|};
           Json.Obj
             [ ("cmd", Json.Str "load"); ("source", Json.Str prog_src) ];
           parse_exn {|{"cmd":"digest"}|};
           parse_exn {|{"cmd":"nope"}|};
         ])
  with
  | Json.Arr [ v; l; d; bad ] ->
      Alcotest.(check bool) "version ok" true (ok_of v);
      Alcotest.(check bool) "load ok" true (ok_of l);
      Alcotest.(check bool) "digest ok" true (ok_of d);
      Alcotest.(check bool) "bad element fails alone" false (ok_of bad)
  | resp -> Alcotest.failf "batch answered %s" (Json.to_string resp)

(* -- live daemon ----------------------------------------------------------- *)

(* A short socket path under /tmp: sun_path is ~104 bytes, so the build
   sandbox's deep cwd cannot host it. *)
let temp_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "fsicp-test-%d.sock" (Unix.getpid ()))

let test_live_daemon () =
  let socket = temp_socket () in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.run ~jobs:1
          ~on_ready:(fun () -> Atomic.set ready true)
          ~version:"test" ~socket ())
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "daemon came up" true (Atomic.get ready);
  let fd = Serve.connect ~socket in
  let rt s = Serve.roundtrip fd (parse_exn s) in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check (option string))
        "version answers" (Some "test")
        (Json.str_member "version" (rt {|{"cmd":"version"}|}));
      Alcotest.(check bool) "load over the wire" true
        (ok_of
           (Serve.roundtrip fd
              (Json.Obj
                 [ ("cmd", Json.Str "load"); ("source", Json.Str prog_src) ])));
      Alcotest.(check bool) "edit over the wire" true
        (ok_of
           (rt
              {|{"cmd":"edit-proc","source":"proc h(y) { g = g + y + 1; }"}|}));
      (* Garbage JSON gets an error response, not a dropped connection. *)
      Protocol.write_frame fd "this is not json";
      (match Protocol.read_frame fd with
      | Some payload ->
          Alcotest.(check bool) "garbage answered with ok:false" false
            (ok_of (parse_exn payload))
      | None -> Alcotest.fail "daemon dropped connection on bad JSON");
      Alcotest.(check bool) "still serving after garbage" true
        (ok_of (rt {|{"cmd":"stats"}|}));
      Alcotest.(check bool) "shutdown" true (ok_of (rt {|{"cmd":"shutdown"}|})));
  Domain.join daemon;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let suite =
  [
    Alcotest.test_case "JSON round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "JSON surrogate range" `Quick test_json_surrogates;
    Alcotest.test_case "JSON rejects malformed documents" `Quick
      test_json_errors;
    Alcotest.test_case "JSON accessors" `Quick test_json_accessors;
    Alcotest.test_case "framing round-trips" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing: clean EOF" `Quick test_framing_eof;
    Alcotest.test_case "framing: oversized length rejected" `Quick
      test_framing_bad_length;
    Alcotest.test_case "dispatch: full session" `Quick test_dispatch_session;
    Alcotest.test_case "dispatch: batch frame" `Quick test_dispatch_batch;
    Alcotest.test_case "live daemon over a Unix socket" `Quick
      test_live_daemon;
  ]
