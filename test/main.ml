let () =
  Alcotest.run "fsicp"
    [
      ("value", Test_value.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("builder", Test_builder.suite);
      ("interp", Test_interp.suite);
      ("cfg", Test_cfg.suite);
      ("dominance", Test_dominance.suite);
      ("ssa", Test_ssa.suite);
      ("scc", Test_scc.suite);
      ("dataflow", Test_dataflow.suite);
      ("callgraph", Test_callgraph.suite);
      ("ipa", Test_ipa.suite);
      ("fi-icp", Test_fi_icp.suite);
      ("fs-icp", Test_fs_icp.suite);
      ("jump-functions", Test_jump_functions.suite);
      ("transform", Test_transform.suite);
      ("inline", Test_inline.suite);
      ("corpus", Test_corpus.suite);
      ("oracle", Test_oracle.suite);
      ("golden", Test_golden.suite);
      ("driver", Test_driver.suite);
      ("edge-cases", Test_edge.suite);
      ("metrics", Test_metrics.suite);
      ("workloads", Test_workloads.suite);
      ("scale", Test_scale.suite);
      ("par", Test_par.suite);
      ("figure1", Test_figure1.suite);
      ("trace", Test_trace.suite);
      ("engine", Test_engine.suite);
      ("verify", Test_verify.suite);
      ("serve", Test_serve.suite);
    ]
