(** Property and unit tests for the structured tracing subsystem
    ([lib/trace]).  The headline properties, checked over generated
    programs at both [jobs=1] and [jobs=4]:

    - every span Begin has a matching End, properly nested per thread;
    - the stable counters are identical across domain counts;
    - the logical-mode JSON is byte-identical across repeated runs;
    - the emitted document round-trips through a minimal JSON parser.

    The parser below is deliberately tiny and independent of the writer:
    it accepts standard JSON, so it double-checks that the hand-printed
    trace is well-formed rather than merely self-consistent. *)

open Fsicp_core
module Trace = Fsicp_trace.Trace
module O = Fsicp_oracle.Oracle

let parse = Test_util.parse

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser and canonical printer                         *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal l v =
    let m = String.length l in
    if !pos + m <= n && String.sub s !pos m = l then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" l)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* The trace emits \u only for C0 controls; that is all the
                 round-trip needs. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape"
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | '{' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              members ((k, v) :: acc)
            end
            else begin
              expect '}';
              Obj (List.rev ((k, v) :: acc))
            end
          in
          members []
    | '[' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              elements (v :: acc)
            end
            else begin
              expect ']';
              Arr (List.rev (v :: acc))
            end
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let rec print_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (string_of_int (int_of_float f))
      else Buffer.add_string b (string_of_float f)
  | Str s ->
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | '\n' -> Buffer.add_string b "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char b c)
        s;
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          print_json b v)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          print_json b (Str k);
          Buffer.add_char b ':';
          print_json b v)
        l;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  print_json b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Trace capture helpers                                               *)
(* ------------------------------------------------------------------ *)

(* Run the full pipeline under tracing and return the rendered document.
   The recorder is global state, so reset before and disable after —
   [Fun.protect] keeps a failing run from leaking an enabled recorder
   into unrelated tests. *)
let trace_of ?(mode = Trace.Logical) ~jobs prog =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () -> ignore (Driver.run ~jobs prog));
  Trace.to_chrome_json ~mode ()

let events_of doc =
  match parse_json doc with
  | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr evs) ->
          List.map
            (function Obj f -> f | _ -> failwith "event is not an object")
            evs
      | _ -> failwith "missing traceEvents array")
  | _ -> failwith "trace document is not an object"

let str_field name ev =
  match List.assoc_opt name ev with
  | Some (Str s) -> s
  | _ -> failwith ("missing string field " ^ name)

let int_field name ev =
  match List.assoc_opt name ev with
  | Some (Num f) -> int_of_float f
  | _ -> failwith ("missing numeric field " ^ name)

(* Check the B/E discipline of a parsed event list: per tid, every End
   matches the innermost open Begin by name, and every Begin is closed.
   Returns the number of complete spans checked. *)
let check_balanced events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref 0 in
  List.iter
    (fun ev ->
      let ph = str_field "ph" ev in
      if ph = "B" || ph = "E" then begin
        let tid = int_field "tid" ev in
        let name = str_field "name" ev in
        let stack =
          match Hashtbl.find_opt stacks tid with Some s -> s | None -> []
        in
        match ph with
        | "B" -> Hashtbl.replace stacks tid (name :: stack)
        | _ -> (
            match stack with
            | top :: rest ->
                Alcotest.(check string)
                  (Printf.sprintf "E matches innermost B on tid %d" tid)
                  top name;
                incr spans;
                Hashtbl.replace stacks tid rest
            | [] -> Alcotest.failf "E %S on tid %d with no open span" name tid)
      end)
    events;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        Alcotest.failf "tid %d left %d span(s) open" tid (List.length stack))
    stacks;
  !spans

let three_procs =
  parse
    {|
      proc main() { x = 2; call f(x); print x; }
      proc f(u) { call g(u + 1); }
      proc g(v) { print v; }
    |}

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let phase_names =
  [
    "1:ipa-collect";
    "2:call-graph";
    "3:aliasing";
    "4:mod-ref";
    "lowering";
    "5a:fi-icp";
    "5b:fs-icp";
    "6:use";
  ]

let test_phases_covered () =
  let doc = trace_of ~jobs:1 three_procs in
  let events = events_of doc in
  let begins =
    List.filter_map
      (fun ev -> if str_field "ph" ev = "B" then Some ev else None)
      events
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "phase span %S present" phase)
        true
        (List.exists (fun ev -> str_field "name" ev = phase) begins))
    phase_names;
  (* One scc:solve span per reachable procedure, tagged with its name. *)
  let scc_procs =
    List.filter_map
      (fun ev ->
        if str_field "name" ev = "scc:solve" then
          match List.assoc_opt "args" ev with
          | Some (Obj args) -> (
              match List.assoc_opt "proc" args with
              | Some (Str p) -> Some p
              | _ -> failwith "scc:solve without a proc arg")
          | _ -> failwith "scc:solve without args"
        else None)
      begins
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "scc:solve spans name every procedure" [ "f"; "g"; "main" ] scc_procs

(* In logical mode the top-level span order is the pipeline order: the
   epoch advances between phases and ties break on the phase name. *)
let test_phase_order_logical () =
  let doc = trace_of ~jobs:4 three_procs in
  let events = events_of doc in
  let depth = ref 0 in
  let toplevel = ref [] in
  List.iter
    (fun ev ->
      match str_field "ph" ev with
      | "B" ->
          if !depth = 0 then toplevel := str_field "name" ev :: !toplevel;
          Stdlib.incr depth
      | "E" -> Stdlib.decr depth
      | _ -> ())
    events;
  let toplevel = List.rev !toplevel in
  let index name =
    let rec go i = function
      | [] -> Alcotest.failf "phase %S not at top level" name
      | x :: rest -> if x = name then i else go (i + 1) rest
    in
    go 0 toplevel
  in
  let indices = List.map index phase_names in
  Alcotest.(check bool)
    (Printf.sprintf "phases appear in pipeline order (%s)"
       (String.concat " " toplevel))
    true
    (List.sort compare indices = indices)

let test_span_exception_safety () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Trace.set_enabled false)
    (fun () ->
      Trace.span "outer" (fun () ->
          try Trace.span "boom" (fun () -> raise Exit) with Exit -> ()));
  let events = events_of (Trace.to_chrome_json ~mode:Trace.Logical ()) in
  let spans = check_balanced events in
  Alcotest.(check int) "both spans closed despite the raise" 2 spans

let test_counters_and_table () =
  Trace.reset ();
  ignore (Driver.run ~jobs:1 three_procs);
  Alcotest.(check int)
    "lower.procs counts each lowered procedure" 3
    (Trace.counter_total "lower.procs");
  Alcotest.(check int)
    "Metrics.scc_block_visits reads the scc.block_visits counter"
    (Trace.counter_total "scc.block_visits")
    (Metrics.scc_block_visits ());
  Alcotest.(check int)
    "unregistered counters read as zero" 0
    (Trace.counter_total "no.such.counter");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
    in
    go 0
  in
  let stable = Trace.counters_table () in
  Alcotest.(check bool)
    "stable table lists scc.block_visits" true
    (contains stable "scc.block_visits");
  Alcotest.(check bool)
    "stable table omits par.pools" false (contains stable "par.pools");
  Alcotest.(check bool)
    "full table includes par.pools" true
    (contains (Trace.counters_table ~all:true ()) "par.pools")

(* ------------------------------------------------------------------ *)
(* Properties over generated programs                                  *)
(* ------------------------------------------------------------------ *)

(* Counters that must not depend on the domain count.  Deliberately not
   listed: par.tasks (the parallel SSA pre-build only runs at jobs>1) and
   ssa.cache_hits (ditto — the pre-build turns later builds into hits). *)
let invariant_counters =
  [
    "fi.lowerings";
    "fi.worklist_pops";
    "lower.procs";
    "scc.block_visits";
    "scc.edge_marks";
    "scc.memo_hits";
    "scc.runs";
    "scc.site_visits";
    "ssa.built";
  ]

let gen_seed = QCheck2.Gen.int_range 0 100_000

let prop_balanced =
  Test_util.qcheck ~count:8 ~name:"spans balanced and nested at jobs 1 and 4"
    gen_seed (fun seed ->
      let prog = O.program_of_seed seed in
      List.iter
        (fun jobs ->
          List.iter
            (fun mode ->
              let events = events_of (trace_of ~mode ~jobs prog) in
              ignore (check_balanced events))
            [ Trace.Logical; Trace.Wall ])
        [ 1; 4 ];
      true)

let prop_counters_jobs_invariant =
  Test_util.qcheck ~count:8 ~name:"stable counters identical across jobs"
    gen_seed (fun seed ->
      let prog = O.program_of_seed seed in
      let totals jobs =
        Trace.reset ();
        ignore (Driver.run ~jobs prog);
        List.map (fun c -> (c, Trace.counter_total c)) invariant_counters
      in
      let t1 = totals 1 and t4 = totals 4 in
      if t1 <> t4 then
        QCheck2.Test.fail_reportf "seed %d: jobs=1 %s / jobs=4 %s" seed
          (String.concat ", "
             (List.map (fun (c, v) -> Printf.sprintf "%s=%d" c v) t1))
          (String.concat ", "
             (List.map (fun (c, v) -> Printf.sprintf "%s=%d" c v) t4))
      else true)

let prop_logical_deterministic =
  Test_util.qcheck ~count:6 ~name:"logical trace byte-identical across runs"
    gen_seed (fun seed ->
      let prog = O.program_of_seed seed in
      let once () = trace_of ~jobs:4 prog in
      let a = once () and b = once () in
      if not (String.equal a b) then
        QCheck2.Test.fail_reportf "seed %d: logical traces differ" seed
      else true)

let prop_roundtrip =
  Test_util.qcheck ~count:6 ~name:"trace JSON round-trips through the parser"
    gen_seed (fun seed ->
      let prog = O.program_of_seed seed in
      List.iter
        (fun mode ->
          let doc = trace_of ~mode ~jobs:4 prog in
          let parsed = parse_json doc in
          let reparsed = parse_json (to_string parsed) in
          if parsed <> reparsed then
            ignore
              (QCheck2.Test.fail_reportf "seed %d: round-trip changed the trace"
                 seed))
        [ Trace.Logical; Trace.Wall ];
      true)

let suite =
  [
    Alcotest.test_case "phase spans cover the pipeline" `Quick
      test_phases_covered;
    Alcotest.test_case "logical top-level order is the pipeline order" `Quick
      test_phase_order_logical;
    Alcotest.test_case "spans close on exceptions" `Quick
      test_span_exception_safety;
    Alcotest.test_case "counters and tables" `Quick test_counters_and_table;
    prop_balanced;
    prop_counters_jobs_invariant;
    prop_logical_deterministic;
    prop_roundtrip;
  ]
