(** Tests for the size-parametric scale corpora and the sharded/streaming
    solve paths: generator determinism, direct-AST ≡ text-path equivalence,
    digest equality across {eager, streaming} × {jobs 1, 4}, shard-region
    invariants, and the strict spec parsers. *)

open Fsicp_lang
open Fsicp_core
open Fsicp_workloads
module Callgraph = Fsicp_callgraph.Callgraph
module Prog = Fsicp_prog.Prog
module Scc = Fsicp_scc.Scc

let spec family procs seed =
  { Scale.sp_family = family; sp_procs = procs; sp_seed = seed }

let family_name = Scale.family_to_string

(* -- generator ------------------------------------------------------------ *)

let test_deterministic () =
  List.iter
    (fun f ->
      let s = spec f 60 7 in
      let p1 = Scale.generate s and p2 = Scale.generate s in
      Alcotest.(check bool)
        (family_name f ^ ": same spec, same program")
        true
        (Ast.equal_program p1 p2);
      Alcotest.(check string)
        (family_name f ^ ": same spec, same digest")
        (Scale.digest p1) (Scale.digest p2))
    Scale.all_families

let test_seed_sensitivity () =
  List.iter
    (fun f ->
      let p1 = Scale.generate (spec f 60 1) in
      let p2 = Scale.generate (spec f 60 2) in
      (* Chain/Fanout/Common are mostly structural, but the PRNG still
         perturbs constants, so the digests must differ. *)
      Alcotest.(check bool)
        (family_name f ^ ": different seeds differ")
        false
        (String.equal (Scale.digest p1) (Scale.digest p2)))
    Scale.all_families

let test_sema_clean () =
  List.iter
    (fun f ->
      let p = Scale.generate (spec f 80 3) in
      match Sema.check p with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "%s: ill-formed: %s" (family_name f)
            (Sema.errors_to_string errs))
    Scale.all_families

let test_text_path_equivalence () =
  (* The direct AST emission must agree with what a pretty-print → parse
     round trip reconstructs: the text path is the cross-process identity
     ([Scale.digest]), so any divergence would split the two worlds. *)
  List.iter
    (fun f ->
      let p = Scale.generate (spec f 40 11) in
      let text = Pretty.program_to_string p in
      let p' = Parser.program_of_string text in
      Sema.check_exn p';
      Alcotest.(check bool)
        (family_name f ^ ": direct AST = parsed pretty-print")
        true
        (Ast.equal_program p p'))
    Scale.all_families

let test_proc_count_and_reachability () =
  List.iter
    (fun f ->
      let procs = 50 in
      let p = Scale.generate (spec f procs 5) in
      Alcotest.(check int)
        (family_name f ^ ": requested procedure count")
        procs
        (List.length p.Ast.procs);
      let pcg = Callgraph.build p in
      Alcotest.(check int)
        (family_name f ^ ": every procedure reachable from main")
        procs (Callgraph.n_procs pcg))
    Scale.all_families

(* -- solve-path digest agreement ----------------------------------------- *)

let digest_of ~mode ~jobs prog =
  let ctx =
    match mode with
    | `Eager -> Context.create ~jobs prog
    | `Streaming -> Context.create_streaming prog
  in
  Solution.digest (Fs_icp.solve ~jobs ctx)

let test_digest_modes_agree () =
  (* Mixed exercises all four families (including recursive cliques, so
     both the sharded wavefront's handoffs and the FI back-edge seed are
     live); the four solve paths must agree byte-for-byte. *)
  let prog = Scale.generate (spec Scale.Mixed 300 4) in
  let reference = digest_of ~mode:`Eager ~jobs:1 prog in
  List.iter
    (fun (mode, jobs, label) ->
      Alcotest.(check string)
        (label ^ " = eager jobs=1")
        reference
        (digest_of ~mode ~jobs prog))
    [
      (`Eager, 4, "eager jobs=4");
      (`Streaming, 1, "streaming jobs=1");
      (`Streaming, 4, "streaming jobs=4");
    ]

let test_streaming_retires_ssa () =
  (* A streaming solve retires each procedure's SSA once its records are
     extracted: every retained [Scc.result] must carry [proc = None] (not
     some other procedure's SSA as a placeholder), the packed arrays must
     still be present (the digest above depends on them), and the
     SSA-dependent accessors must raise rather than answer from stale
     structure. *)
  let prog = Scale.generate (spec Scale.Mixed 100 7) in
  let ctx = Context.create_streaming prog in
  let fs = Fs_icp.solve ~jobs:1 ctx in
  let n = Callgraph.n_procs ctx.Context.pcg in
  Alcotest.(check bool) "program has procedures" true (n > 0);
  Array.iter
    (fun pid ->
      match Prog.Proc.Tbl.get fs.Solution.scc_results pid with
      | None -> Alcotest.fail "streaming solve dropped an SCC result"
      | Some (r : Scc.result) ->
          Alcotest.(check bool) "SSA retired" true (r.Scc.proc = None);
          Alcotest.(check bool) "values survive retirement" true
            (Array.length r.Scc.values > 0);
          (match Scc.proc_exn r with
          | _ -> Alcotest.fail "proc_exn answered on a retired result"
          | exception Invalid_argument _ -> ());
          (match Scc.substitution_count r with
          | _ ->
              Alcotest.fail
                "substitution_count answered on a retired result"
          | exception Invalid_argument _ -> ()))
    ctx.Context.pcg.Callgraph.nodes;
  (* An eager solve of the same program keeps every SSA. *)
  let eager = Context.create ~jobs:1 prog in
  let fs_eager = Fs_icp.solve ~jobs:1 eager in
  Array.iter
    (fun pid ->
      match Prog.Proc.Tbl.get fs_eager.Solution.scc_results pid with
      | Some r ->
          Alcotest.(check bool) "eager keeps SSA" true (r.Scc.proc <> None)
      | None -> Alcotest.fail "eager solve dropped an SCC result")
    eager.Context.pcg.Callgraph.nodes

let qcheck_spec_gen =
  QCheck2.Gen.(
    let* family = oneofl Scale.all_families in
    let* procs = int_range 10 120 in
    let* seed = int_range 0 10_000 in
    return (spec family procs seed))

let qcheck_sharded_digest =
  Test_util.qcheck ~count:12 ~name:"random spec: sharded = unsharded = streaming"
    qcheck_spec_gen (fun s ->
      let prog = Scale.generate s in
      let d1 = digest_of ~mode:`Eager ~jobs:1 prog in
      let d4 = digest_of ~mode:`Eager ~jobs:4 prog in
      let ds = digest_of ~mode:`Streaming ~jobs:4 prog in
      if not (String.equal d1 d4 && String.equal d1 ds) then
        QCheck2.Test.fail_reportf
          "digest split on %s procs=%d seed=%d: eager1=%s eager4=%s stream4=%s"
          (family_name s.Scale.sp_family)
          s.Scale.sp_procs s.Scale.sp_seed d1 d4 ds
      else true)

(* -- shard regions -------------------------------------------------------- *)

let check_regions name prog ~parts =
  let pcg = Callgraph.build prog in
  let n = Callgraph.n_procs pcg in
  let bounds = Fs_icp.shard_regions pcg ~parts in
  let k = Array.length bounds in
  if k < 2 then Alcotest.failf "%s: bounds too short (%d)" name k;
  Alcotest.(check int) (name ^ ": first bound") 0 bounds.(0);
  Alcotest.(check int) (name ^ ": last bound") n bounds.(k - 1);
  for i = 0 to k - 2 do
    if bounds.(i) >= bounds.(i + 1) then
      Alcotest.failf "%s: bounds not strictly ascending at %d" name i
  done;
  if k - 1 > parts then
    Alcotest.failf "%s: %d regions exceeds parts=%d" name (k - 1) parts;
  (* No boundary may fall strictly inside a back-edge id interval: a back
     edge caller [c] → callee [k] closes the SCC spanning ids [k..c], so
     every interior boundary [b] must avoid [k+1..c]. *)
  List.iter
    (fun e ->
      if e.Callgraph.back then begin
        let lo = (e.Callgraph.callee :> int) + 1
        and hi = (e.Callgraph.caller :> int) in
        for i = 1 to k - 2 do
          if bounds.(i) >= lo && bounds.(i) <= hi then
            Alcotest.failf "%s: boundary %d splits back-edge interval [%d,%d]"
              name bounds.(i) lo hi
        done
      end)
    pcg.Callgraph.edges

let test_shard_regions_families () =
  List.iter
    (fun f ->
      let prog = Scale.generate (spec f 200 9) in
      check_regions (family_name f) prog ~parts:16)
    Scale.all_families

let qcheck_shard_regions =
  Test_util.qcheck ~count:20 ~name:"random spec: shard_regions invariants"
    QCheck2.Gen.(
      let* s = qcheck_spec_gen in
      let* parts = int_range 1 32 in
      return (s, parts))
    (fun (s, parts) ->
      check_regions
        (Printf.sprintf "%s/%d/%d" (family_name s.Scale.sp_family)
           s.Scale.sp_procs s.Scale.sp_seed)
        (Scale.generate s) ~parts;
      true)

(* -- spec parsing --------------------------------------------------------- *)

let test_parse_procs () =
  let ok s n =
    match Scale.parse_procs s with
    | Ok v -> Alcotest.(check int) (Printf.sprintf "procs %S" s) n v
    | Error e -> Alcotest.failf "procs %S rejected: %s" s e
  in
  let bad s =
    match Scale.parse_procs s with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "procs %S accepted as %d" s v
  in
  ok "2" 2;
  ok " 10000 " 10_000;
  ok "2000000" 2_000_000;
  bad "1";
  bad "0";
  bad "-5";
  bad "2000001";
  bad "";
  bad "ten";
  bad "1e4"

let test_parse_seed () =
  let ok s n =
    match Scale.parse_seed s with
    | Ok v -> Alcotest.(check int) (Printf.sprintf "seed %S" s) n v
    | Error e -> Alcotest.failf "seed %S rejected: %s" s e
  in
  let bad s =
    match Scale.parse_seed s with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "seed %S accepted as %d" s v
  in
  ok "0" 0;
  ok "-3" (-3);
  ok " 42 " 42;
  bad "";
  bad "4.2";
  bad "seed"

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "sema clean" `Quick test_sema_clean;
    Alcotest.test_case "text-path equivalence" `Quick
      test_text_path_equivalence;
    Alcotest.test_case "proc count and reachability" `Quick
      test_proc_count_and_reachability;
    Alcotest.test_case "digest: modes and jobs agree" `Slow
      test_digest_modes_agree;
    Alcotest.test_case "streaming retires SSA from Scc.result" `Quick
      test_streaming_retires_ssa;
    qcheck_sharded_digest;
    Alcotest.test_case "shard regions: families" `Quick
      test_shard_regions_families;
    qcheck_shard_regions;
    Alcotest.test_case "parse_procs" `Quick test_parse_procs;
    Alcotest.test_case "parse_seed" `Quick test_parse_seed;
  ]
