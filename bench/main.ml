(** Benchmark and experiment harness: regenerates every table and figure of
    the paper's evaluation (§4) on the calibrated synthetic suite, and runs
    Bechamel micro-benchmarks of the analyses themselves.

    {v
    dune exec bench/main.exe            # everything (EXPERIMENTS.md source)
    dune exec bench/main.exe -- t1      # one artefact: fig1 fig2 t1..t5
                                        #   time backedge floats returns
    dune exec bench/main.exe -- bechamel  # micro-benchmarks only
    v} *)

open Fsicp_core
open Fsicp_workloads
open Fsicp_report

let section title = Printf.printf "\n================ %s ================\n" title

let fig1 () =
  section "FIGURE 1";
  Report.print (Fsicp_harness.Harness.figure1_table ())

let fig2 () =
  section "FIGURE 2 (compilation model trace)";
  print_string (Fsicp_harness.Harness.figure2 ())

let t1 () =
  section "TABLE 1";
  let t, _ =
    Fsicp_harness.Harness.candidates_table
      ~title:
        "Interprocedural call site constant candidates — measured (paper)"
      Spec.suite
  in
  Report.print t

let t2 () =
  section "TABLE 2";
  let _, runs = Fsicp_harness.Harness.candidates_table ~title:"" Spec.suite in
  Report.print
    (Fsicp_harness.Harness.propagated_table
       ~title:"Interprocedural propagated constants — measured (paper)" runs)

let t3 () =
  section "TABLE 3";
  let t, _ =
    Fsicp_harness.Harness.candidates_table ~floats:false
      ~title:
        "Call site candidates, first-release subset, floats off — measured \
         (paper)"
      Spec.first_release
  in
  Report.print t

let t4 () =
  section "TABLE 4";
  let _, runs =
    Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
      Spec.first_release
  in
  Report.print
    (Fsicp_harness.Harness.propagated_table
       ~title:
         "Propagated constants, first-release subset, floats off — measured \
          (paper)"
       runs)

let t5 () =
  section "TABLE 5";
  let _, runs =
    Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
      Spec.first_release
  in
  Report.print
    (Fsicp_harness.Harness.substitutions_table
       ~title:"Intraprocedural substitutions — measured (paper)" runs)

let time () =
  section "TIMING (paper: FS ≈ FI + 50% of the analysis phase)";
  Report.print (Fsicp_harness.Harness.timing_table ())

let backedge () =
  section "BACK-EDGE SWEEP (paper §3.2)";
  Report.print (Fsicp_harness.Harness.backedge_sweep ())

let floats () =
  section "FLOAT ABLATION (paper §4)";
  Report.print (Fsicp_harness.Harness.floats_table ())

let returns () =
  section "RETURN-CONSTANTS EXTENSION (paper §3.2, off in the tables)";
  Report.print (Fsicp_harness.Harness.returns_table ())

(* -- Bechamel micro-benchmarks -------------------------------------------- *)

let bechamel () =
  section "BECHAMEL MICRO-BENCHMARKS";
  let open Bechamel in
  let open Toolkit in
  (* Analyses run from scratch per sample so each covers the same work. *)
  let bench name = List.find (fun b -> b.Spec.b_name = name) Spec.suite in
  let nasa = Spec.program (bench "093.NASA7") in
  let wave = Spec.program (bench "039.WAVE5") in
  let tests =
    [
      Test.make ~name:"context(NASA7)"
        (Staged.stage (fun () -> ignore (Context.create nasa)));
      Test.make ~name:"fi-icp(NASA7)"
        (Staged.stage
           (let ctx = Context.create nasa in
            fun () -> ignore (Fi_icp.solve ctx)));
      Test.make ~name:"fs-icp(NASA7)"
        (Staged.stage
           (let ctx = Context.create nasa in
            fun () ->
              Hashtbl.reset ctx.Context.ssa_cache;
              ignore (Fs_icp.solve ctx)));
      Test.make ~name:"fi-icp(WAVE5)"
        (Staged.stage
           (let ctx = Context.create wave in
            fun () -> ignore (Fi_icp.solve ctx)));
      Test.make ~name:"fs-icp(WAVE5)"
        (Staged.stage
           (let ctx = Context.create wave in
            fun () ->
              Hashtbl.reset ctx.Context.ssa_cache;
              ignore (Fs_icp.solve ctx)));
      Test.make ~name:"poly-jf(NASA7)"
        (Staged.stage
           (let ctx = Context.create nasa in
            fun () ->
              ignore (Jump_functions.solve ctx Jump_functions.Polynomial)));
      Test.make ~name:"iterative(NASA7)"
        (Staged.stage
           (let ctx = Context.create nasa in
            fun () ->
              Hashtbl.reset ctx.Context.ssa_cache;
              ignore (Reference.solve ctx)));
    ]
  in
  let test = Test.make_grouped ~name:"fsicp" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
          rows := [ name; Printf.sprintf "%.3f" (est /. 1e6) ] :: !rows
      | _ -> ())
    results;
  Report.print
    (Report.make ~title:"analysis cost per run (monotonic clock)"
       ~header:[ "BENCHMARK"; "ms/run" ]
       (List.sort compare !rows))

let all () =
  fig1 ();
  fig2 ();
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  t5 ();
  time ();
  backedge ();
  floats ();
  returns ();
  bechamel ()

let () =
  let dispatch = function
    | "fig1" -> fig1 ()
    | "fig2" -> fig2 ()
    | "t1" -> t1 ()
    | "t2" -> t2 ()
    | "t3" -> t3 ()
    | "t4" -> t4 ()
    | "t5" -> t5 ()
    | "time" -> time ()
    | "backedge" -> backedge ()
    | "floats" -> floats ()
    | "returns" -> returns ()
    | "bechamel" -> bechamel ()
    | "all" -> all ()
    | other ->
        Printf.eprintf
          "unknown experiment %S (fig1 fig2 t1 t2 t3 t4 t5 time backedge \
           floats returns bechamel all)\n"
          other;
        exit 2
  in
  if Array.length Sys.argv <= 1 then all ()
  else Array.iteri (fun i a -> if i > 0 then dispatch a) Sys.argv
