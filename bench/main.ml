(** Benchmark and experiment harness: regenerates every table and figure of
    the paper's evaluation (§4) on the calibrated synthetic suite, and runs
    Bechamel micro-benchmarks of the analyses themselves.

    {v
    dune exec bench/main.exe            # everything (EXPERIMENTS.md source)
    dune exec bench/main.exe -- t1      # one artefact: fig1 fig2 t1..t5
                                        #   time backedge floats returns
    dune exec bench/main.exe -- bechamel  # micro-benchmarks only
    FSICP_JOBS=4 dune exec bench/main.exe -- bechamel --json BENCH_results.json
                                        # machine-readable estimates + phase
                                        # timings for the perf trajectory
    dune exec bench/main.exe -- time --trace bench-trace.json
                                        # wall-clock Chrome trace of the run
    v}

    Worker-domain count comes from [FSICP_JOBS] (default: all cores). *)

open Fsicp_core
open Fsicp_workloads
open Fsicp_report
open Fsicp_par
module Trace = Fsicp_trace.Trace
module Verify = Fsicp_verify.Verify

let section title = Printf.printf "\n================ %s ================\n" title

(* Estimates collected for --json: name -> (ms, minor words, major words)
   per run. *)
type bechamel_row = {
  r_ms : float;
  r_minor : float;
  r_major : float;
  r_top_heap : int option;
      (* peak heap words of one setup + run in a fresh child; [None] when
         the forked measurement failed *)
}

let bechamel_rows : (string * bechamel_row) list ref = ref []

(* The largest suite program by procedure count — the program where the
   wavefront has the most parallelism to exploit. *)
let largest_bench () =
  List.fold_left
    (fun acc (b : Spec.benchmark) ->
      if
        b.Spec.b_profile.Generator.g_procs
        > acc.Spec.b_profile.Generator.g_procs
      then b
      else acc)
    (List.hd Spec.suite) (List.tl Spec.suite)

(* The procedure of [prog] with the median-sized downstream cone: the
   representative single-procedure edit for the incremental benchmarks —
   neither a leaf (near-empty dirty region) nor an entry (everything
   dirty). *)
let median_cone_proc prog =
  let pcg = Fsicp_callgraph.Callgraph.build prog in
  let sized =
    Array.map
      (fun pid ->
        (Array.length (Fsicp_callgraph.Callgraph.cone pcg ~seeds:[ pid ]), pid))
      pcg.Fsicp_callgraph.Callgraph.nodes
  in
  Array.sort
    (fun (a, p) (b, q) ->
      match Int.compare a b with
      | 0 -> Fsicp_prog.Prog.Proc.compare p q
      | c -> c)
    sized;
  let _, pid = sized.(Array.length sized / 2) in
  Fsicp_callgraph.Callgraph.proc_ast pcg pid

let fig1 () =
  section "FIGURE 1";
  Report.print (Fsicp_harness.Harness.figure1_table ())

let fig2 () =
  section "FIGURE 2 (compilation model trace)";
  print_string (Fsicp_harness.Harness.figure2 ())

let t1 () =
  section "TABLE 1";
  let t, _ =
    Fsicp_harness.Harness.candidates_table
      ~title:
        "Interprocedural call site constant candidates — measured (paper)"
      Spec.suite
  in
  Report.print t

let t2 () =
  section "TABLE 2";
  let _, runs = Fsicp_harness.Harness.candidates_table ~title:"" Spec.suite in
  Report.print
    (Fsicp_harness.Harness.propagated_table
       ~title:"Interprocedural propagated constants — measured (paper)" runs)

let t3 () =
  section "TABLE 3";
  let t, _ =
    Fsicp_harness.Harness.candidates_table ~floats:false
      ~title:
        "Call site candidates, first-release subset, floats off — measured \
         (paper)"
      Spec.first_release
  in
  Report.print t

let t4 () =
  section "TABLE 4";
  let _, runs =
    Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
      Spec.first_release
  in
  Report.print
    (Fsicp_harness.Harness.propagated_table
       ~title:
         "Propagated constants, first-release subset, floats off — measured \
          (paper)"
       runs)

let t5 () =
  section "TABLE 5";
  let _, runs =
    Fsicp_harness.Harness.candidates_table ~floats:false ~title:""
      Spec.first_release
  in
  Report.print
    (Fsicp_harness.Harness.substitutions_table
       ~title:"Intraprocedural substitutions — measured (paper)" runs)

let time () =
  section "TIMING (paper: FS ≈ FI + 50% of the analysis phase)";
  Report.print (Fsicp_harness.Harness.timing_table ())

let backedge () =
  section "BACK-EDGE SWEEP (paper §3.2)";
  Report.print (Fsicp_harness.Harness.backedge_sweep ())

let floats () =
  section "FLOAT ABLATION (paper §4)";
  Report.print (Fsicp_harness.Harness.floats_table ())

let returns () =
  section "RETURN-CONSTANTS EXTENSION (paper §3.2, off in the tables)";
  Report.print (Fsicp_harness.Harness.returns_table ())

(* -- scaling table (synthetic corpora, streaming vs eager) ----------------- *)

type scale_row = {
  s_family : string;
  s_procs : int;
  s_jobs : int;
  s_mode : string;  (* "streaming" | "eager" *)
  s_ms : float;  (* min over FSICP_SCALE_REPS solves *)
  s_minor : float;  (* minor words of the first solve *)
  s_major : float;
  s_top_heap : int;  (* peak heap words above the pre-solve baseline *)
}

let scale_rows : scale_row list ref = ref []

let scale_sizes () =
  match Sys.getenv_opt "FSICP_SCALE_PROCS" with
  | None -> [ 1000; 2000; 4000; 8000 ]
  | Some s ->
      let sizes =
        String.split_on_char ',' s
        |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
      in
      if sizes = [] then failwith "FSICP_SCALE_PROCS: no sizes" else sizes

let scale_reps () =
  match Sys.getenv_opt "FSICP_SCALE_REPS" with
  | None -> 3
  | Some s -> max 1 (int_of_string s)

(** One scale measurement, in a forked child process.  The fork serves the
    peak-heap column: [top_heap_words] is process-monotonic, so consecutive
    in-process runs would hide every footprint smaller than the largest
    seen so far — a child starts from the parent's (compacted) baseline and
    its delta is its own.  The corpus AST is built once in the parent and
    reaches the child by copy-on-write; the child reports over a pipe.
    Timing is the min over [reps] solves: the wall clock on a loaded
    single-core host swings far too much for means to order 2x size steps
    reliably. *)
let scale_measure ~reps ~jobs ~mode prog : (float * float * float * int, string) result =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let line =
        try
          let solve () =
            let ctx =
              match mode with
              | `Streaming -> Context.create_streaming prog
              | `Eager -> Context.create ~jobs prog
            in
            ignore (Fs_icp.solve ~jobs ctx)
          in
          let base_top = (Gc.quick_stat ()).Gc.top_heap_words in
          let q0 = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          solve ();
          let best = ref (1000.0 *. (Unix.gettimeofday () -. t0)) in
          let q1 = Gc.quick_stat () in
          for _ = 2 to reps do
            let t0 = Unix.gettimeofday () in
            solve ();
            let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
            if ms < !best then best := ms
          done;
          Printf.sprintf "ok %f %f %f %d\n" !best
            (q1.Gc.minor_words -. q0.Gc.minor_words)
            (q1.Gc.major_words -. q0.Gc.major_words)
            ((Gc.quick_stat ()).Gc.top_heap_words - base_top)
        with e -> Printf.sprintf "err %s\n" (Printexc.to_string e)
      in
      let oc = Unix.out_channel_of_descr wr in
      output_string oc line;
      flush oc;
      (* _exit: the child must not flush the parent's duplicated stdout
         buffers or run at_exit hooks. *)
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let line = try input_line ic with End_of_file -> "err child died" in
      close_in ic;
      let _, status = Unix.waitpid [] pid in
      match status with
      | Unix.WEXITED 0 -> (
          try
            Scanf.sscanf line "ok %f %f %f %d" (fun ms minor major top ->
                Ok (ms, minor, major, top))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            Error
              (if String.length line > 4 then String.sub line 4 (String.length line - 4)
               else line))
      | Unix.WEXITED c -> Error (Printf.sprintf "child exit %d" c)
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
          Error (Printf.sprintf "child signal %d" s))

(** OLS slope of ln(ms) against ln(procs) — the fitted growth exponent of
    one (mode, jobs) series.  [None] with fewer than two points. *)
let fit_exponent (rows : scale_row list) : float option =
  let pts =
    List.map (fun r -> (log (float_of_int r.s_procs), log r.s_ms)) rows
  in
  match pts with
  | [] | [ _ ] -> None
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-9 then None
      else Some (((n *. sxy) -. (sx *. sy)) /. denom)

(** The (mode, jobs) series of the scale table, in recording order. *)
let scale_series () =
  let jobs = Par.default_jobs () in
  let base = [ ("streaming", 1); ("eager", 1) ] in
  if jobs > 1 then
    [ ("streaming", 1); ("streaming", jobs); ("eager", 1); ("eager", jobs) ]
  else base

let scale () =
  section "SCALING (synthetic mixed corpus; ms = min over reps)";
  let reps = scale_reps () and sizes = scale_sizes () in
  let rows = ref [] in
  List.iter
    (fun procs ->
      let prog =
        Scale.generate
          { Scale.sp_family = Scale.Mixed; sp_procs = procs; sp_seed = 1 }
      in
      (* Shrink the parent's heap so each child's peak-heap delta is
         dominated by its own solve, not by corpus-generation garbage. *)
      Gc.compact ();
      List.iter
        (fun (mode_name, jobs) ->
          let mode =
            if mode_name = "streaming" then `Streaming else `Eager
          in
          match scale_measure ~reps ~jobs ~mode prog with
          | Ok (ms, minor, major, top) ->
              rows :=
                {
                  s_family = "mixed";
                  s_procs = procs;
                  s_jobs = jobs;
                  s_mode = mode_name;
                  s_ms = ms;
                  s_minor = minor;
                  s_major = major;
                  s_top_heap = top;
                }
                :: !rows
          | Error msg ->
              Printf.printf "  scale %s/%d jobs=%d FAILED: %s\n" mode_name
                procs jobs msg)
        (scale_series ()))
    sizes;
  let rows = List.rev !rows in
  scale_rows := rows;
  Report.print
    (Report.make ~title:"fs-icp solve at scale (mixed family, seed 1)"
       ~header:
         [ "PROCS"; "MODE"; "JOBS"; "ms(min)"; "minor Mw"; "major Mw";
           "peak heap Mw" ]
       (List.map
          (fun r ->
            [ string_of_int r.s_procs;
              r.s_mode;
              string_of_int r.s_jobs;
              Printf.sprintf "%.1f" r.s_ms;
              Printf.sprintf "%.2f" (r.s_minor /. 1e6);
              Printf.sprintf "%.2f" (r.s_major /. 1e6);
              Printf.sprintf "%.2f" (float_of_int r.s_top_heap /. 1e6) ])
          rows));
  List.iter
    (fun (mode, jobs) ->
      let series =
        List.filter (fun r -> r.s_mode = mode && r.s_jobs = jobs) rows
      in
      match fit_exponent series with
      | Some e ->
          Printf.printf "  growth exponent %s jobs=%d: %.3f\n" mode jobs e
      | None -> ())
    (scale_series ())

(* -- Bechamel micro-benchmarks -------------------------------------------- *)

(** Peak heap words of one row — setup plus a single run — in a forked
    child.  [top_heap_words] is process-monotonic, so measuring in this
    process would hide every row's footprint under the largest seen so
    far; a fresh child starts from the parent's baseline and the delta is
    the row's own working set.  Must run before the Bechamel samples (and
    before the row setups) inflate the parent's heap, since the child
    inherits it. *)
let row_top_heap (setup : unit -> unit -> unit) : int option =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let line =
        try
          let base = (Gc.quick_stat ()).Gc.top_heap_words in
          let f = setup () in
          f ();
          Printf.sprintf "ok %d\n"
            ((Gc.quick_stat ()).Gc.top_heap_words - base)
        with _ -> "err\n"
      in
      let oc = Unix.out_channel_of_descr wr in
      output_string oc line;
      flush oc;
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let line = try input_line ic with End_of_file -> "err" in
      close_in ic;
      ignore (Unix.waitpid [] pid);
      try Scanf.sscanf line "ok %d" (fun d -> Some d)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)

let bechamel () =
  section "BECHAMEL MICRO-BENCHMARKS";
  let open Bechamel in
  let open Toolkit in
  (* Analyses run from scratch per sample so each covers the same work. *)
  let bench name = List.find (fun b -> b.Spec.b_name = name) Spec.suite in
  let nasa = Spec.program (bench "093.NASA7") in
  let wave = Spec.program (bench "039.WAVE5") in
  let largest = largest_bench () in
  let largest_prog = Spec.program largest in
  (* Each row is (name, setup) with [setup () ()] doing one full run: the
     staged Bechamel closure is [setup ()], and the same setups feed the
     forked peak-heap column. *)
  let raw_tests : (string * (unit -> unit -> unit)) list =
    [
      ( "context(NASA7)",
        fun () () -> ignore (Context.create nasa) );
      ( "fi-icp(NASA7)",
        fun () ->
          let ctx = Context.create nasa in
          fun () -> ignore (Fi_icp.solve ctx) );
      ( "fs-icp(NASA7)",
        fun () ->
          let ctx = Context.create nasa in
          fun () ->
            Context.reset_ssa_cache ctx;
            ignore (Fs_icp.solve ctx) );
      ( "fi-icp(WAVE5)",
        fun () ->
          let ctx = Context.create wave in
          fun () -> ignore (Fi_icp.solve ctx) );
      ( "fs-icp(WAVE5)",
        fun () ->
          let ctx = Context.create wave in
          fun () ->
            Context.reset_ssa_cache ctx;
            ignore (Fs_icp.solve ctx) );
      (* The acceptance benchmark: the solver core on the largest suite
         program.  SSA stays warm (construction is the separate
         ssa-build(largest) row); dropping the SCC memos per sample forces
         every kernel propagation to re-run, so the row measures the packed
         lattice/arena hot path rather than memo lookups. *)
      ( "fs-icp(largest)",
        fun () ->
          let ctx = Context.create largest_prog in
          Context.build_ssa ctx;
          fun () ->
            Context.reset_scc_memos ctx;
            ignore (Fs_icp.solve ctx) );
      (* SSA construction cost of the same program, kept visible in its own
         row now that fs-icp(largest) runs warm.  Single-domain build:
         Bechamel's GC instances only observe the calling domain, so a
         parallel build would hide most of the allocation. *)
      ( "ssa-build(largest)",
        fun () ->
          let ctx = Context.create largest_prog in
          fun () ->
            Context.reset_ssa_cache ctx;
            Context.build_ssa ~jobs:1 ctx );
      (* Same workload as fs-icp(largest) with span recording on — the
         overhead gate in [check_against] compares this row against
         fs-icp(largest).  The per-sample reset is O(1), so the row
         measures steady-state recording rather than event
         accumulation. *)
      ( "fs-icp(largest,traced)",
        fun () ->
          let ctx = Context.create largest_prog in
          Context.build_ssa ctx;
          fun () ->
            let was = Trace.enabled () in
            Trace.reset ();
            Trace.set_enabled true;
            Context.reset_scc_memos ctx;
            ignore (Fs_icp.solve ctx);
            Trace.set_enabled was );
      (* Incremental re-analysis: one shape-preserving single-procedure
         edit against a live Engine.  The edited procedure is the one with
         the median downstream cone (picked by [median_cone_proc]), so the
         row measures the typical dirty region, not the best or worst
         case.  Resubmitting the definition verbatim still invalidates and
         re-drives the cone — the engine deliberately does not shortcut
         no-op edits — so every sample does the full incremental path:
         invalidate, FI re-solve, cone re-drive with SCC memo hits. *)
      ( "incremental-resolve(largest)",
        fun () ->
          let engine = Engine.create largest_prog in
          let target = median_cone_proc largest_prog in
          fun () -> ignore (Engine.edit_proc engine target) );
      ( "poly-jf(NASA7)",
        fun () ->
          let ctx = Context.create nasa in
          fun () -> ignore (Jump_functions.solve ctx Jump_functions.Polynomial) );
      ( "iterative(NASA7)",
        fun () ->
          let ctx = Context.create nasa in
          fun () ->
            Context.reset_ssa_cache ctx;
            ignore (Reference.solve ctx) );
      (* Beyond-the-paper methods on the same program and in the same
         shape as fs-icp(largest) — warm SSA, SCC memos dropped per sample
         so every kernel run propagates for real (converged Gauss–Seidel
         passes and repeated value contexts would otherwise be pure memo
         hits).  The "largest" name puts them under the same time gate as
         the acceptance row, and at this scale their allocation clears the
         gate floor, so a regression in either new solver fails --check.
         Single-domain like ssa-build: Bechamel's GC instances only
         observe the calling domain, so a parallel solve both hides part
         of the allocation and makes the visible share flap with worker
         scheduling. *)
      ( "cc-icp(largest)",
        fun () ->
          let ctx = Context.create ~jobs:1 largest_prog in
          Context.build_ssa ~jobs:1 ctx;
          fun () ->
            Context.reset_scc_memos ctx;
            ignore (Cc_icp.solve ~jobs:1 ctx) );
      ( "vc-icp(largest)",
        fun () ->
          let ctx = Context.create ~jobs:1 largest_prog in
          Context.build_ssa ~jobs:1 ctx;
          fun () ->
            Context.reset_scc_memos ctx;
            ignore (Vc_icp.solve ~jobs:1 ctx) );
      (* Translation validation of the full pipeline on the same program:
         all four transformations applied and every modified procedure's
         VC run through the symbolic backend (no solver process).  Warm
         context and solution — the row measures the product evaluator
         itself, and a "largest" name puts it under the same time gate as
         the other acceptance rows. *)
      ( "verify(largest,symbolic)",
        fun () ->
          let ctx = Context.create ~jobs:1 largest_prog in
          let fs = Fs_icp.solve ~jobs:1 ctx in
          fun () -> ignore (Verify.verify_program ctx ~solution:fs) );
    ]
  in
  (* Peak-heap column first, while the parent heap is still small. *)
  let tops =
    List.map
      (fun (name, setup) -> ("fsicp/" ^ name, row_top_heap setup))
      raw_tests
  in
  let tests =
    List.map
      (fun (name, setup) -> Test.make ~name (Staged.stage (setup ())))
      raw_tests
  in
  Printf.printf "(jobs = %d, largest program = %s with %d procedures)\n%!"
    (Par.default_jobs ()) largest.Spec.b_name
    largest.Spec.b_profile.Generator.g_procs;
  let test = Test.make_grouped ~name:"fsicp" ~fmt:"%s/%s" tests in
  let instances =
    Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  (* One OLS estimate (per-run cost) for each instance: ns, then words. *)
  let estimates instance =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Hashtbl.replace tbl name est
        | _ -> ())
      (Analyze.all ols instance raw);
    tbl
  in
  let times = estimates Instance.monotonic_clock in
  let minors = estimates Instance.minor_allocated in
  let majors = estimates Instance.major_allocated in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ns ->
      (* OLS extrapolation can produce slightly negative per-run words on
         near-zero-allocation rows; clamp at zero ([write_json] then emits
         null, marking "no reliable estimate" rather than a number). *)
      let words tbl =
        match Hashtbl.find_opt tbl name with
        | Some w -> Float.max 0.0 w
        | None -> 0.0
      in
      rows :=
        ( name,
          { r_ms = ns /. 1e6;
            r_minor = words minors;
            r_major = words majors;
            r_top_heap = Option.join (List.assoc_opt name tops) } )
        :: !rows)
    times;
  let rows = List.sort compare !rows in
  bechamel_rows := rows;
  Report.print
    (Report.make ~title:"analysis cost per run (monotonic clock + GC words)"
       ~header:
         [ "BENCHMARK"; "ms/run"; "minor kw/run"; "major kw/run";
           "peak heap kw" ]
       (List.map
          (fun (name, r) ->
            [ name;
              Printf.sprintf "%.3f" r.r_ms;
              Printf.sprintf "%.1f" (r.r_minor /. 1e3);
              Printf.sprintf "%.1f" (r.r_major /. 1e3);
              (match r.r_top_heap with
              | Some w -> Printf.sprintf "%.1f" (float_of_int w /. 1e3)
              | None -> "-") ])
          rows))

(* -- machine-readable results (--json FILE) -------------------------------- *)

(** Emit the collected Bechamel estimates plus one [Driver] per-phase trace
    of the largest suite program, so the perf trajectory across PRs is
    machine-readable.  Plain printf JSON: names are ASCII identifiers. *)
let write_json path =
  let largest = largest_bench () in
  let d = Driver.run (Spec.program largest) in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  (* Array elements, one per line, comma-separated (no trailing comma). *)
  let elements items =
    List.iteri
      (fun i s ->
        out "    %s%s\n" s (if i = List.length items - 1 then "" else ","))
      items
  in
  out "{\n";
  out "  \"jobs\": %d,\n" (Par.default_jobs ());
  out "  \"suite\": [\n";
  elements
    (List.map
       (fun (b : Spec.benchmark) ->
         Printf.sprintf "{ \"name\": %S, \"procs\": %d }" b.Spec.b_name
           b.Spec.b_profile.Generator.g_procs)
       Spec.suite);
  out "  ],\n";
  out "  \"bechamel\": [\n";
  elements
    (List.map
       (fun (name, r) ->
         (* Clamped-to-zero estimates are written as null: "no reliable
            per-run estimate", never a fake 0.0 a later gate would divide
            by. *)
         let words v =
           if v <= 0.0 then "null" else Printf.sprintf "%.1f" v
         in
         (* The peak-heap field comes last so the line-oriented baseline
            reader's existing prefix patterns keep matching. *)
         let top =
           match r.r_top_heap with
           | Some w when w > 0 -> string_of_int w
           | Some _ | None -> "null"
         in
         Printf.sprintf
           "{ \"name\": %S, \"ms_per_run\": %.6f, \"minor_words_per_run\": \
            %s, \"major_words_per_run\": %s, \"top_heap_words\": %s }"
           name r.r_ms (words r.r_minor) (words r.r_major) top)
       !bechamel_rows);
  out "  ],\n";
  out "  \"scale\": [\n";
  elements
    (List.map
       (fun r ->
         Printf.sprintf
           "{ \"family\": %S, \"procs\": %d, \"jobs\": %d, \"mode\": %S, \
            \"ms\": %.3f, \"minor_words\": %.1f, \"major_words\": %.1f, \
            \"top_heap_words\": %d }"
           r.s_family r.s_procs r.s_jobs r.s_mode r.s_ms r.s_minor r.s_major
           r.s_top_heap)
       !scale_rows);
  out "  ],\n";
  out "  \"driver\": { \"program\": %S, \"procs\": %d, \"phases\": [\n"
    largest.Spec.b_name largest.Spec.b_profile.Generator.g_procs;
  elements
    (List.map
       (fun (t : Driver.timing) ->
         Printf.sprintf
           "{ \"phase\": %S, \"ms\": %.6f, \"minor_words\": %.1f, \
            \"major_words\": %.1f }"
           t.Driver.t_phase
           (1000.0 *. t.Driver.t_seconds)
           t.Driver.t_minor_words t.Driver.t_major_words)
       d.Driver.timings);
  out "  ] }\n";
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" path

(* -- perf regression gate (--check BASELINE) ------------------------------- *)

(** Read the ["bechamel"] rows of a previously committed [--json] file:
    [(name, ms, minor words, major words)] — an allocation field is [None]
    when the baseline predates that column or recorded it as null (no
    reliable estimate).  Line-oriented on purpose: the writer emits one
    object per line and the toolchain has no JSON parser to lean on. *)
let read_baseline path : (string * float * float option * float option) list
    =
  let ic = open_in path in
  let rows = ref [] in
  let add name ms minor major =
    rows := (name, ms, minor, major) :: !rows
  in
  (* Most-specific first; null fields fail the %f pattern and fall through
     to the variant that skips them. *)
  let patterns =
    [
      (fun line ->
        Scanf.sscanf line
          "{ \"name\": %S, \"ms_per_run\": %f, \"minor_words_per_run\": %f, \
           \"major_words_per_run\": %f"
          (fun name ms minor major -> add name ms (Some minor) (Some major)));
      (fun line ->
        Scanf.sscanf line
          "{ \"name\": %S, \"ms_per_run\": %f, \"minor_words_per_run\": \
           null, \"major_words_per_run\": %f"
          (fun name ms major -> add name ms None (Some major)));
      (fun line ->
        (* Both alloc estimates clamped to null (near-zero-allocation
           rows): without this variant such rows vanish from the baseline
           entirely and their time never gates. *)
        Scanf.sscanf line
          "{ \"name\": %S, \"ms_per_run\": %f, \"minor_words_per_run\": \
           null, \"major_words_per_run\": null"
          (fun name ms -> add name ms None None));
      (fun line ->
        Scanf.sscanf line
          "{ \"name\": %S, \"ms_per_run\": %f, \"minor_words_per_run\": %f"
          (fun name ms minor -> add name ms (Some minor) None));
      (fun line ->
        Scanf.sscanf line "{ \"name\": %S, \"ms_per_run\": %f }"
          (fun name ms -> add name ms None None));
    ]
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       let rec try_patterns = function
         | [] -> ()
         | p :: rest -> (
             try p line
             with Scanf.Scan_failure _ | Failure _ | End_of_file ->
               try_patterns rest)
       in
       try_patterns patterns
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(** Tracing-enabled overhead on the acceptance benchmark, measured as the
    median ratio over interleaved (untraced, traced) solve pairs.  The two
    runs of a pair are back-to-back, so slow drift in machine load cancels
    out, and the median discards contention bursts — separate Bechamel
    rows measured seconds apart are far too noisy for a tight bound.  The
    solve is pinned to [jobs:1]: every span and counter site still fires
    (per-procedure solves, kernel tallies), but domain-spawn latency —
    which swings wildly under load and has nothing to do with recording
    cost — stays out of the ratio.  Same shape as the fs-icp(largest) row:
    warm SSA, SCC memos dropped per run. *)
let trace_overhead_ratio () =
  let ctx = Context.create ~jobs:1 (Spec.program (largest_bench ())) in
  Context.build_ssa ~jobs:1 ctx;
  let solve () =
    Context.reset_scc_memos ctx;
    ignore (Fs_icp.solve ~jobs:1 ctx)
  in
  let time () =
    let t0 = Unix.gettimeofday () in
    solve ();
    Unix.gettimeofday () -. t0
  in
  solve ();
  (* warm the code paths and caches *)
  let pairs = 20 in
  let base_times = ref [] and traced_times = ref [] in
  let measure_base () = base_times := time () :: !base_times in
  let measure_traced () =
    Trace.reset ();
    Trace.set_enabled true;
    traced_times := time () :: !traced_times;
    Trace.set_enabled false
  in
  for i = 1 to pairs do
    (* alternate the in-pair order so neither side systematically pays
       cache- or GC-state effects left by the other *)
    if i land 1 = 0 then begin
      measure_base ();
      measure_traced ()
    end
    else begin
      measure_traced ();
      measure_base ()
    end
  done;
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  median !traced_times /. median !base_times

(** Incremental-edit cost relative to a from-scratch re-analysis of the
    same program, as the median ratio over interleaved pairs (same
    rationale as {!trace_overhead_ratio}: back-to-back runs cancel
    machine-load drift, the median discards bursts, [jobs:1] keeps
    domain-spawn jitter out).  The edit is the engine's typical case — the
    median-cone procedure resubmitted, driving the whole incremental path
    (invalidate, FI re-solve, cone re-drive).  The from-scratch side is
    what a non-incremental daemon would do instead: {!Engine.create} on
    the current program — semantic check, context build (lowering, alias,
    MOD/REF), SSA, and both solves — exactly the engine's own rebuild
    route.  Also returns the SCC memo hits of one traced edit: the speedup
    must come from reuse, not from skipping work. *)
let incremental_ratio () =
  let prog = Spec.program (largest_bench ()) in
  let engine = Engine.create ~jobs:1 prog in
  let target = median_cone_proc prog in
  let scratch () = ignore (Engine.create ~jobs:1 prog) in
  let edit () = ignore (Engine.edit_proc ~jobs:1 engine target) in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  edit ();
  scratch ();
  (* warm *)
  let pairs = 20 in
  let edit_times = ref [] and scratch_times = ref [] in
  for i = 1 to pairs do
    if i land 1 = 0 then begin
      edit_times := time edit :: !edit_times;
      scratch_times := time scratch :: !scratch_times
    end
    else begin
      scratch_times := time scratch :: !scratch_times;
      edit_times := time edit :: !edit_times
    end
  done;
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let ratio = median !edit_times /. median !scratch_times in
  (* One traced edit for the reuse evidence. *)
  let was = Trace.enabled () in
  Trace.reset ();
  Trace.set_enabled true;
  edit ();
  Trace.set_enabled was;
  (ratio, Trace.counter_total "scc.memo_hits")

let contains name sub =
  let n = String.length name and m = String.length sub in
  let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
  at 0

(** Compare the fresh Bechamel estimates against the committed baseline and
    fail (exit 1) when the acceptance benchmark ([fs-icp(largest)]) is
    more than [tolerance] slower, or any flow-sensitive solve allocates
    more than [alloc_tolerance] extra minor words or [major_tolerance]
    extra major words per run (when the baseline recorded that column at
    all, and — for the noisier ratios — above [alloc_floor] words, so
    near-zero baselines don't amplify jitter into failures).  The
    [cc-icp]/[vc-icp] rows are alloc-gated the same way, so a regression
    in the beyond-the-paper solvers also fails the check; other rows are
    reported but not gated: only [Fs_icp.solve] has a stated perf
    acceptance bar.  The traced row is informative only here — it gets its
    own interleaved gate below instead of the cross-run time bound. *)
let check_against path =
  let tolerance = 1.10 in
  let alloc_tolerance = 1.10 in
  (* Minor words are deterministic per program path, so 10% is a real
     behaviour bound.  Major words count promotions, which depend on
     where minor-collection boundaries happen to fall mid-solve, so the
     same solve drifts by double digits run to run — the looser bound
     still catches a leak while tolerating GC timing. *)
  let major_tolerance = 1.25 in
  let alloc_floor = 10_000.0 in
  let baseline = read_baseline path in
  (* The scale series runs first: its measurements fork, and forking is
     safest before anything in this process has spawned domains. *)
  if !scale_rows = [] then scale ();
  if !bechamel_rows = [] then bechamel ();
  let failures = ref [] in
  Printf.printf
    "\nperf gate vs %s (fail: fs-icp(largest) time > %.0f%%, fs-icp minor \
     alloc > %.0f%% or major alloc > %.0f%%):\n"
    path
    ((tolerance -. 1.0) *. 100.0)
    ((alloc_tolerance -. 1.0) *. 100.0)
    ((major_tolerance -. 1.0) *. 100.0);
  List.iter
    (fun (name, base_ms, base_minor, base_major) ->
      match List.assoc_opt name !bechamel_rows with
      | None -> Printf.printf "  %-24s baseline only (skipped)\n" name
      | Some now ->
          let ratio = now.r_ms /. base_ms in
          (* substring match: rows are named "fsicp/fs-icp(PROGRAM)".  The
             beyond-the-paper method rows and the translation-validation
             row are alloc-gated like fs-icp so a regression in any of
             them fails the check. *)
          let gated =
            (contains name "fs-icp" || contains name "cc-icp"
            || contains name "vc-icp"
            || contains name "verify(")
            && not (contains name "traced")
          in
          (* Allocation is gated on every flow-sensitive row, but time
             only on the largest-program rows (the acceptance benchmark
             and the beyond-the-paper methods on the same program): the
             smaller rows finish in a few ms, where domain-spawn and
             scheduler jitter alone swings cross-run time past 10% with
             allocation flat. *)
          let time_gated = gated && contains name "largest" in
          let ratio_of base current =
            match base with
            | Some w when w >= alloc_floor -> Some (current /. w)
            | Some _ | None -> None
          in
          let minor_ratio = ratio_of base_minor now.r_minor in
          let major_ratio = ratio_of base_major now.r_major in
          let exceeds tol = function Some a -> a > tol | None -> false in
          let verdict =
            if time_gated && ratio > tolerance then begin
              failures := name :: !failures;
              "REGRESSION (time)"
            end
            else if gated && exceeds alloc_tolerance minor_ratio then begin
              failures := name :: !failures;
              "REGRESSION (minor alloc)"
            end
            else if gated && exceeds major_tolerance major_ratio then begin
              failures := name :: !failures;
              "REGRESSION (major alloc)"
            end
            else if gated then "ok (gated)"
            else "ok"
          in
          let alloc_note label = function
            | Some a ->
                Printf.sprintf "  %s %+.1f%%" label ((a -. 1.0) *. 100.0)
            | None -> ""
          in
          Printf.printf "  %-24s %8.3f -> %8.3f ms  (%+.1f%%)%s%s  %s\n" name
            base_ms now.r_ms
            ((ratio -. 1.0) *. 100.0)
            (alloc_note "minor" minor_ratio)
            (alloc_note "major" major_ratio)
            verdict)
    baseline;
  (* Rows measured now but absent from the baseline are reported and
     skipped (never a failure): new rows must be able to land before the
     baseline is re-recorded. *)
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun (b, _, _, _) -> b = name) baseline) then
        Printf.printf "  %-24s no baseline row (skipped)\n" name)
    !bechamel_rows;
  (* Growth-exponent gates over the scale table: the fitted log-log slope
     of every (mode, jobs) fs-icp series must stay near-linear.  Gating
     the exponent rather than absolute time keeps the gate meaningful
     across machines; a missing series (measurement failure) is reported
     as such, not crashed on. *)
  let exponent_gate = 1.15 in
  List.iter
    (fun (mode, jobs) ->
      let series =
        List.filter
          (fun r -> r.s_mode = mode && r.s_jobs = jobs)
          !scale_rows
      in
      match fit_exponent series with
      | Some e ->
          Printf.printf
            "  scale exponent %-9s jobs=%d: %.3f (gate %.2f)\n" mode jobs e
            exponent_gate;
          if e > exponent_gate then
            failures :=
              Printf.sprintf "scale-exponent(%s,jobs=%d)" mode jobs
              :: !failures
      | None ->
          Printf.printf "  scale exponent %-9s jobs=%d: null (no series)\n"
            mode jobs)
    (scale_series ());
  (* Tracing overhead gate: fully-enabled recording may cost at most
     [trace_tolerance] over the disabled fast path on the acceptance
     benchmark — an A/B bound on this machine, measured interleaved; the
     disabled path's own cost is covered by the fs-icp(largest) row
     above.  The bound is relative to the warm solver core, which is
     roughly 5x faster than the old full-pipeline row the original 3%
     gate was calibrated against; 15% of the warm row bounds the same
     absolute recording cost. *)
  let trace_tolerance = 1.15 in
  let ratio = trace_overhead_ratio () in
  Printf.printf
    "  tracing overhead on fs-icp(largest): %+.1f%% (interleaved median, \
     gate %.0f%%)\n"
    ((ratio -. 1.0) *. 100.0)
    ((trace_tolerance -. 1.0) *. 100.0);
  if ratio > trace_tolerance then
    failures := "tracing-overhead(fs-icp(largest))" :: !failures;
  (* Incremental re-analysis gate: a typical single-procedure edit must
     cost at most [incr_tolerance] of a from-scratch flow-sensitive solve,
     and must actually hit the SCC entry-vector memos — the acceptance bar
     of the serve/incremental work. *)
  let incr_tolerance = 0.25 in
  let incr_ratio, memo_hits = incremental_ratio () in
  Printf.printf
    "  incremental edit vs from-scratch on largest: %.1f%% (gate %.0f%%), \
     %d SCC memo hits per edit\n"
    (incr_ratio *. 100.0) (incr_tolerance *. 100.0) memo_hits;
  if incr_ratio > incr_tolerance then
    failures := "incremental-resolve(largest)" :: !failures;
  if memo_hits = 0 then
    failures := "incremental-resolve(largest): no memo hits" :: !failures;
  if !failures <> [] then begin
    Printf.printf "perf gate FAILED: %s\n" (String.concat ", " !failures);
    exit 1
  end
  else Printf.printf "perf gate passed\n"

let all () =
  (* scale first: its measurements fork, and forking is safest before
     anything in this process has spawned worker domains *)
  scale ();
  fig1 ();
  fig2 ();
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  t5 ();
  time ();
  backedge ();
  floats ();
  returns ();
  bechamel ()

let () =
  let dispatch = function
    | "fig1" -> fig1 ()
    | "fig2" -> fig2 ()
    | "t1" -> t1 ()
    | "t2" -> t2 ()
    | "t3" -> t3 ()
    | "t4" -> t4 ()
    | "t5" -> t5 ()
    | "time" -> time ()
    | "backedge" -> backedge ()
    | "floats" -> floats ()
    | "returns" -> returns ()
    | "bechamel" -> bechamel ()
    | "scale" -> scale ()
    | "all" -> all ()
    | other ->
        Printf.eprintf
          "unknown experiment %S (fig1 fig2 t1 t2 t3 t4 t5 time backedge \
           floats returns bechamel scale all)\n"
          other;
        exit 2
  in
  (* Strip [--json FILE] / [--check BASELINE] / [--trace FILE] anywhere in
     the argument list, then dispatch the remaining experiment names.  With
     no names: everything, unless --check is given alone (the CI gate runs
     only the Bechamel estimates it needs). *)
  let rec split json check trace acc = function
    | "--json" :: file :: rest -> split (Some file) check trace acc rest
    | "--check" :: file :: rest -> split json (Some file) trace acc rest
    | "--trace" :: file :: rest -> split json check (Some file) acc rest
    | ("--json" | "--check" | "--trace") :: [] ->
        Printf.eprintf "--json/--check/--trace require a file argument\n";
        exit 2
    | a :: rest -> split json check trace (a :: acc) rest
    | [] -> (json, check, trace, List.rev acc)
  in
  let json, check, trace, cmds =
    split None None None [] (List.tl (Array.to_list Sys.argv))
  in
  (* --trace records the experiments themselves (wall mode).  Note the
     bechamel experiment resets the recorder inside its traced row, so the
     flag is most useful with the table/figure/time experiments. *)
  Option.iter
    (fun _ ->
      Trace.reset ();
      Trace.set_enabled true)
    trace;
  (match (cmds, check) with
  | [], Some _ ->
      scale ();
      bechamel ()
  | [], None -> all ()
  | l, _ -> List.iter dispatch l);
  Option.iter
    (fun path ->
      Trace.set_enabled false;
      Trace.write_chrome_json ~mode:Trace.Wall path;
      Printf.printf "\nwrote trace %s\n" path)
    trace;
  Option.iter write_json json;
  Option.iter check_against check
