(** Generic iterative dataflow framework over {!Fsicp_cfg.Ir} CFGs.

    The interprocedural analyses mostly need purpose-built solvers (the
    paper's whole point is the particular PCG traversal discipline), but the
    intraprocedural helpers — liveness and upward-exposed uses, which feed
    the flow-sensitive USE computation of paper §3.2 — share this worklist
    engine.  The test suite also uses it as an independent reference to
    cross-check the sparse SCC solver. *)

open Fsicp_cfg

(** A bounded join-semilattice over which we iterate to a fixpoint. *)
module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = {
    block_in : L.t array;  (** value at block entry (in CFG direction) *)
    block_out : L.t array;  (** value at block exit *)
  }

  (** [solve ~direction ~init ~transfer cfg] iterates to a fixpoint.

      [init] is the boundary value at the entry block (for [Forward]) or at
      every [Ret] block (for [Backward]).  [transfer b v] pushes a value
      through block [b]. *)
  let solve ~direction ~(init : L.t) ~(transfer : int -> L.t -> L.t)
      (cfg : Ir.cfg) : result =
    let n = Array.length cfg.Ir.blocks in
    let preds = Ir.predecessors cfg in
    let succs = Array.map Ir.successors cfg.Ir.blocks in
    let block_in = Array.make n L.bottom in
    let block_out = Array.make n L.bottom in
    (* Process in (reverse of) reverse postorder for fast convergence. *)
    let rpo = Ir.reverse_postorder cfg in
    let order =
      match direction with
      | Forward -> rpo
      | Backward ->
          let a = Array.copy rpo in
          let n = Array.length a in
          Array.init n (fun i -> a.(n - 1 - i))
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          let input =
            match direction with
            | Forward ->
                if b = cfg.Ir.entry then
                  List.fold_left
                    (fun acc p -> L.join acc block_out.(p))
                    init preds.(b)
                else
                  List.fold_left
                    (fun acc p -> L.join acc block_out.(p))
                    L.bottom preds.(b)
            | Backward ->
                let base =
                  match cfg.Ir.blocks.(b).Ir.term with
                  | Ir.Ret -> init
                  | Ir.Goto _ | Ir.Cond _ -> L.bottom
                in
                List.fold_left
                  (fun acc s -> L.join acc block_in.(s))
                  base succs.(b)
          in
          let output = transfer b input in
          match direction with
          | Forward ->
              if not (L.equal block_in.(b) input) then begin
                block_in.(b) <- input;
                changed := true
              end;
              if not (L.equal block_out.(b) output) then begin
                block_out.(b) <- output;
                changed := true
              end
          | Backward ->
              if not (L.equal block_out.(b) input) then begin
                block_out.(b) <- input;
                changed := true
              end;
              if not (L.equal block_in.(b) output) then begin
                block_in.(b) <- output;
                changed := true
              end)
        order
    done;
    { block_in; block_out }
end

(** Variable-set lattice, used by liveness / upward-exposed uses. *)
module VarSetLattice = struct
  type t = Ir.VarSet.t

  let bottom = Ir.VarSet.empty
  let equal = Ir.VarSet.equal
  let join = Ir.VarSet.union
  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Ir.Var.pp) (Ir.VarSet.elements s)
end

module VarSets = Make (VarSetLattice)

(** Per-instruction uses (variables read).  [call_uses] supplies the
    variables a call reads beyond its textual arguments (e.g. globals the
    callee references), mirroring the interprocedural REF information. *)
let instr_uses ?(call_uses = fun _ -> []) (ins : Ir.instr) : Ir.var list =
  let op_vars = function Ir.Const _ -> [] | Ir.Var v -> [ v ] in
  match ins with
  | Ir.Assign (_, Ir.Copy o) | Ir.Assign (_, Ir.Unop (_, o)) -> op_vars o
  | Ir.Assign (_, Ir.Binop (_, a, b)) -> op_vars a @ op_vars b
  | Ir.Print o -> op_vars o
  | Ir.Call { callee; args; _ } ->
      Array.to_list args
      |> List.concat_map (fun (a : Ir.arg) -> op_vars a.Ir.a_operand)
      |> fun l -> l @ call_uses callee

(** Per-instruction definitions.  [call_defs] supplies the variables a call
    may write (by-reference actuals whose formal is modified, modified
    globals), i.e. the interprocedural MOD information. *)
let instr_defs ?(call_defs = fun ~callee:_ ~byrefs:_ -> []) (ins : Ir.instr) :
    Ir.var list =
  match ins with
  | Ir.Assign (v, _) -> [ v ]
  | Ir.Print _ -> []
  | Ir.Call { callee; args; _ } ->
      let byrefs =
        Array.to_list args |> List.filter_map (fun a -> a.Ir.a_byref)
      in
      call_defs ~callee ~byrefs

(** Upward-exposed uses of a procedure: variables that may be read before
    being written on some path from the entry.  This is the intraprocedural
    half of the paper's flow-sensitive USE computation (§3.2); {!Fsicp_ipa}
    composes it over the PCG. *)
let upward_exposed ?call_uses ?call_defs (cfg : Ir.cfg) : Ir.VarSet.t =
  (* Backward "liveness at entry" restricted to paths from the block start:
     ue(b) = uses-before-defs within b  ∪  (live-in of successors minus defs
     of b).  We solve ordinary liveness and read off the entry block. *)
  let transfer b (live_out : Ir.VarSet.t) =
    let blk = cfg.Ir.blocks.(b) in
    let live = ref live_out in
    (* terminator condition counts as a use *)
    (match blk.Ir.term with
    | Ir.Cond (Ir.Var v, _, _) -> live := Ir.VarSet.add v !live
    | Ir.Cond (Ir.Const _, _, _) | Ir.Goto _ | Ir.Ret -> ());
    for i = Array.length blk.Ir.instrs - 1 downto 0 do
      let ins = blk.Ir.instrs.(i) in
      List.iter
        (fun d -> live := Ir.VarSet.remove d !live)
        (instr_defs ?call_defs ins);
      List.iter (fun u -> live := Ir.VarSet.add u !live) (instr_uses ?call_uses ins)
    done;
    !live
  in
  let res =
    VarSets.solve ~direction:Backward ~init:Ir.VarSet.empty ~transfer cfg
  in
  res.VarSets.block_in.(cfg.Ir.entry)
