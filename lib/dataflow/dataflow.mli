(** Generic iterative dataflow over {!Fsicp_cfg.Ir} CFGs, plus the
    intraprocedural liveness/upward-exposed-uses instances the USE
    computation builds on.  The tests also use it as an independent
    reference against the sparse SCC engine. *)

open Fsicp_cfg

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = { block_in : L.t array; block_out : L.t array }

  (** Iterate to a fixpoint.  [init] is the boundary value (entry block for
      [Forward], every [Ret] block for [Backward]); [transfer b v] pushes a
      value through block [b]. *)
  val solve :
    direction:direction -> init:L.t -> transfer:(int -> L.t -> L.t) ->
    Ir.cfg -> result
end

module VarSetLattice : LATTICE with type t = Ir.VarSet.t
module VarSets : module type of Make (VarSetLattice)

(** Per-instruction uses; [call_uses] adds what a call reads beyond its
    textual arguments (interprocedural REF). *)
val instr_uses : ?call_uses:(string -> Ir.var list) -> Ir.instr -> Ir.var list

(** Per-instruction definitions; [call_defs] supplies what a call may write
    (interprocedural MOD). *)
val instr_defs :
  ?call_defs:(callee:string -> byrefs:Ir.var list -> Ir.var list) ->
  Ir.instr -> Ir.var list

(** Variables possibly read before written on some path from entry. *)
val upward_exposed :
  ?call_uses:(string -> Ir.var list) ->
  ?call_defs:(callee:string -> byrefs:Ir.var list -> Ir.var list) ->
  Ir.cfg -> Ir.VarSet.t
