(** Plain-text and CSV table rendering for the experiment harness. *)

type align = L | R

type t = {
  title : string option;
  header : string list;
  rows : string list list;
}

val make : ?title:string -> header:string list -> string list list -> t

(** Column-aligned text; the first column left-aligns, the rest right-align
    unless overridden. *)
val render : ?aligns:align list -> t -> string

val print : ?aligns:align list -> t -> unit

(** RFC-4180-ish CSV (quotes cells containing commas, quotes, newlines). *)
val to_csv : t -> string

(** ["13%"]-style cell, ["-"] when the denominator is zero. *)
val pct : int -> int -> string

val int : int -> string
