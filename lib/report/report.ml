(** Plain-text table rendering for the experiment harness.

    Right-aligns numeric columns, left-aligns the first (label) column,
    and prints an optional title and rule lines — enough to render the
    paper's Tables 1–5 and the ablation reports legibly in a terminal or
    a log file.  A CSV emitter is included for downstream plotting. *)

type align = L | R

type t = {
  title : string option;
  header : string list;
  rows : string list list;
}

let make ?title ~header rows = { title; header; rows }

let widths (t : t) : int array =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header)
      t.rows
  in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  feed t.header;
  List.iter feed t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | L -> s ^ String.make n ' '
    | R -> String.make n ' ' ^ s

let render ?(aligns : align list = []) (t : t) : string =
  let w = widths t in
  let align_of i =
    match List.nth_opt aligns i with
    | Some a -> a
    | None -> if i = 0 then L else R
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (align_of i) w.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.header;
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter render_row t.rows;
  Buffer.contents buf

let print ?aligns t = print_string (render ?aligns t)

(** Escape and join as CSV (RFC-4180-ish; quotes cells containing commas,
    quotes or newlines). *)
let to_csv (t : t) : string =
  let escape s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"

(** Shorthand for percentage cells, matching the paper's "13%" style. *)
let pct n total =
  if total = 0 then "-"
  else Printf.sprintf "%.0f%%" (100.0 *. float_of_int n /. float_of_int total)

let int = string_of_int
