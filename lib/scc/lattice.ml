(** The three-level constant propagation lattice of Wegman–Zadeck / Kildall:

    {v
            Top  (⊤ — "no evidence yet"; optimistic initial value)
          /  |  \
        ... c c' ...      one element per constant value
          \  |  /
            Bot  (⊥ — "not constant")
    v}

    The interprocedural methods use the same lattice for formal parameters
    and globals, so a single [meet] underlies the intraprocedural SCC, the
    flow-insensitive ICP of paper Figure 3 and the flow-sensitive ICP of
    paper Figure 4. *)

open Fsicp_lang
module Prog = Fsicp_prog.Prog

type t = Top | Const of Value.t | Bot

let equal a b =
  match (a, b) with
  | Top, Top | Bot, Bot -> true
  | Const x, Const y -> Value.equal x y
  | (Top | Const _ | Bot), _ -> false

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> if Value.equal x y then a else Bot

(** Partial order: [le a b] iff a ⊑ b (Bot ⊑ Const c ⊑ Top). *)
let le a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Const x, Const y -> Value.equal x y
  | (Top | Const _), _ -> false

let is_const = function Const _ -> true | Top | Bot -> false
let const_value = function Const v -> Some v | Top | Bot -> None

(** Height of an element (used to argue termination in tests):
    Top = 2, Const = 1, Bot = 0; values only ever decrease. *)
let height = function Top -> 2 | Const _ -> 1 | Bot -> 0

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Bot -> Fmt.string ppf "⊥"
  | Const v -> Value.pp ppf v

let to_string t = Fmt.str "%a" pp t

(* -- Abstract evaluation -------------------------------------------- *)

let eval_unop op (a : t) : t =
  match a with
  | Top -> Top
  | Bot -> Bot
  | Const v -> (
      match Value.eval_unop op v with Some r -> Const r | None -> Bot)

(** Abstract binary evaluation.  [Top] operands mean "not yet known", so the
    result stays [Top] (it will be re-evaluated when the operand lowers);
    a folding failure (division by zero) yields [Bot]. *)
let eval_binop op (a : t) (b : t) : t =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Const x, Const y -> (
      match Value.eval_binop op x y with Some r -> Const r | None -> Bot)

(* -- Packed representation ------------------------------------------ *)

module P = struct
  (* A lattice element in one immediate [int]:

     {v
       word 0                  Top
       word 1                  Bot
       (n   lsl 3) lor 2       Const (Int n)    when n fits in 60 bits
       (idx lsl 3) lor 3       Const v          v interned at Valpool idx
     v}

     Tags 2/3 both set bit 1, so [is_const] is one mask test; Top and Bot
     keep it clear.  Inline payloads are sign-extending ([asr]), pool
     indices non-negative ([lsr]).  Because [of_int] always prefers the
     inline form and {!Prog.Valpool} canonicalises value classes, two words
     are [equal] iff plain [=] — the kernel compares and memo-keys lattice
     elements without allocation. *)

  let top = 0
  let bot = 1
  let is_const w = w land 2 <> 0
  let fits_inline n = n asr 59 = 0 || n asr 59 = -1

  (* Tag 4: a copy binding — "this name holds whatever entry slot [k]
     holds" — the copy-constant method's extra lattice level between the
     constants and ⊥.  Bit 1 stays clear, so [is_const] rejects copies
     for free; [meet] needs no change (equal copies stay, a copy against
     anything else collapses to [bot]); arithmetic over a copy collapses
     to [bot] in {!eval_unop}/{!eval_binop} — only direct copies survive
     propagation.  Copy words never box: {!to_t} raises on them, so they
     must be resolved away before a solution is assembled. *)
  let copy k =
    if k < 0 then invalid_arg "Lattice.P.copy: negative slot";
    (k lsl 3) lor 4

  let is_copy w = w land 7 = 4

  let copy_slot w =
    if w land 7 = 4 then w lsr 3
    else invalid_arg "Lattice.P.copy_slot: not a copy"

  let of_int n =
    if fits_inline n then (n lsl 3) lor 2
    else (Prog.Valpool.intern (Value.Int n) lsl 3) lor 3

  let of_value (v : Value.t) =
    match v with
    | Int n when fits_inline n -> (n lsl 3) lor 2
    | _ -> (Prog.Valpool.intern v lsl 3) lor 3

  let const_value w : Value.t =
    if w land 7 = 2 then Value.Int (w asr 3)
    else if w land 7 = 3 then Prog.Valpool.get (w lsr 3)
    else invalid_arg "Lattice.P.const_value: not a constant"

  let of_t = function Top -> 0 | Bot -> 1 | Const v -> of_value v

  let to_t w =
    if w = 0 then Top else if w = 1 then Bot else Const (const_value w)

  let equal : int -> int -> bool = Int.equal

  let meet a b =
    if a = 0 then b
    else if b = 0 then a
    else if a = b then a
    else bot

  let le a b = a = 1 || b = 0 || a = b
  let height w = if w = 0 then 2 else if w = 1 then 0 else 1

  (* Real constants never encode inline (tag 2 is integer-only), so the
     real/int distinction needs at most one pool read. *)
  let is_real_const w = w land 7 = 3 && Value.is_real (Prog.Valpool.get (w lsr 3))

  (* An impossible word, usable as an out-of-band sentinel: inline payloads
     lose their top three bits to the tag, so no encoding reaches
     [min_int]. *)
  let absent = min_int

  (** Truthiness of a constant word (the [Cond] branch test). *)
  let truthy w =
    if w land 7 = 2 then w asr 3 <> 0
    else Value.truthy (Prog.Valpool.get (w lsr 3))

  (* Abstract evaluation, mirroring the boxed [eval_unop]/[eval_binop]
     exactly.  Inline-int operands fold with native [int] arithmetic —
     identical to what [Value.eval_binop] computes, because both decode to
     the same native ints — and only the rare real/big-int constants take
     the boxing detour through [Value]. *)

  let eval_unop op w =
    if is_copy w then bot
    else if not (is_const w) then w
    else if w land 7 = 2 then
      let n = w asr 3 in
      match op with
      | Ops.Neg -> of_int (-n)
      | Ops.Not -> if n = 0 then of_int 1 else of_int 0
    else
      match Value.eval_unop op (const_value w) with
      | Some r -> of_value r
      | None -> bot

  let of_bool b = if b then (1 lsl 3) lor 2 else 2

  let eval_binop op a b =
    if a = 1 || b = 1 || is_copy a || is_copy b then bot
    else if a = 0 || b = 0 then top
    else if a land 7 = 2 && b land 7 = 2 then
      let x = a asr 3 and y = b asr 3 in
      match op with
      | Ops.Add -> of_int (x + y)
      | Ops.Sub -> of_int (x - y)
      | Ops.Mul -> of_int (x * y)
      | Ops.Div -> if y = 0 then bot else of_int (x / y)
      | Ops.Mod -> if y = 0 then bot else of_int (x mod y)
      | Ops.Eq -> of_bool (x = y)
      | Ops.Ne -> of_bool (x <> y)
      | Ops.Lt -> of_bool (x < y)
      | Ops.Le -> of_bool (x <= y)
      | Ops.Gt -> of_bool (x > y)
      | Ops.Ge -> of_bool (x >= y)
      | Ops.And -> of_bool (x <> 0 && y <> 0)
      | Ops.Or -> of_bool (x <> 0 || y <> 0)
    else
      match Value.eval_binop op (const_value a) (const_value b) with
      | Some r -> of_value r
      | None -> bot
end
