(** The three-level constant propagation lattice of Wegman–Zadeck / Kildall:

    {v
            Top  (⊤ — "no evidence yet"; optimistic initial value)
          /  |  \
        ... c c' ...      one element per constant value
          \  |  /
            Bot  (⊥ — "not constant")
    v}

    The interprocedural methods use the same lattice for formal parameters
    and globals, so a single [meet] underlies the intraprocedural SCC, the
    flow-insensitive ICP of paper Figure 3 and the flow-sensitive ICP of
    paper Figure 4. *)

open Fsicp_lang

type t = Top | Const of Value.t | Bot

let equal a b =
  match (a, b) with
  | Top, Top | Bot, Bot -> true
  | Const x, Const y -> Value.equal x y
  | (Top | Const _ | Bot), _ -> false

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> if Value.equal x y then a else Bot

(** Partial order: [le a b] iff a ⊑ b (Bot ⊑ Const c ⊑ Top). *)
let le a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Const x, Const y -> Value.equal x y
  | (Top | Const _), _ -> false

let is_const = function Const _ -> true | Top | Bot -> false
let const_value = function Const v -> Some v | Top | Bot -> None

(** Height of an element (used to argue termination in tests):
    Top = 2, Const = 1, Bot = 0; values only ever decrease. *)
let height = function Top -> 2 | Const _ -> 1 | Bot -> 0

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Bot -> Fmt.string ppf "⊥"
  | Const v -> Value.pp ppf v

let to_string t = Fmt.str "%a" pp t

(* -- Abstract evaluation -------------------------------------------- *)

let eval_unop op (a : t) : t =
  match a with
  | Top -> Top
  | Bot -> Bot
  | Const v -> (
      match Value.eval_unop op v with Some r -> Const r | None -> Bot)

(** Abstract binary evaluation.  [Top] operands mean "not yet known", so the
    result stays [Top] (it will be re-evaluated when the operand lowers);
    a folding failure (division by zero) yields [Bot]. *)
let eval_binop op (a : t) (b : t) : t =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Const x, Const y -> (
      match Value.eval_binop op x y with Some r -> Const r | None -> Bot)
