(** Sparse Conditional Constant propagation (Wegman & Zadeck, TOPLAS 1991)
    over SSA form — the paper's intraprocedural engine.

    The algorithm is optimistic: SSA names start at ⊤, CFG edges start
    non-executable, and two worklists (flow edges, SSA def–use edges) drive
    everything monotonically downward.  Conditional branches with constant
    conditions mark only one successor executable, discarding unreachable
    code during propagation.

    The hot path works on {e packed} lattice words ({!Lattice.P}): one
    immediate [int] per element, boxed {!Lattice.t} only at the
    [Solution.t]/print boundary.  The interprocedural methods plug in
    through {!config}: the entry environment supplies packed values for
    each variable's version-0 (procedure-entry) name, and the call oracle
    supplies post-call values of call-defined variables. *)

open Fsicp_cfg
open Fsicp_ssa

type config = {
  entry_env : Ir.var -> int;
      (** packed value of each variable at procedure entry; must be
          [Lattice.P.bot] or a constant word for soundness (top would
          claim dead code everywhere) *)
  call_def_value : callee:string -> Ir.var -> int;
      (** packed value of a variable a call may define, after the call
          returns ([Lattice.P.bot] unless a return-constants summary knows
          better) *)
}

(** Everything unknown: entry values ⊥, call effects ⊥. *)
val default_config : config

(** Entry environment from an association list; unlisted variables are
    unknown.  Values are pre-encoded, so each query is allocation-free. *)
val env_of_list : (Ir.var * Fsicp_lang.Value.t) list -> Ir.var -> int

type result = {
  proc : Ssa.proc option;
      (** the analysed SSA, or [None] once a streaming solve has retired
          it — the values/executability arrays remain valid (and feed the
          canonical digest), but every accessor that needs the SSA raises
          on a retired result instead of reading another procedure's
          structure *)
  values : int array;  (** packed lattice word per SSA name id *)
  block_executable : bool array;
  edge_exec : Bytes.t;  (** bitset over the proc's dense edge ids *)
}

(** The result's SSA procedure.
    @raise Invalid_argument on a retired (streaming-mode) result. *)
val proc_exn : result -> Ssa.proc

(** Run the analysis.  Terminates in O(names × height + edges).

    Flat kernel over packed words: CSR def–use walks, int-stack worklists
    with on-worklist dedup, one bit per dense edge id, scratch from the
    calling domain's epoch-stamped {!Fsicp_par.Par.Arena}, closure-free
    transfer evaluation — no allocation in the steady state.  Both
    {!config} hooks are resolved once per run into dense packed vectors
    held in per-domain scratch, which also key a per-procedure memo:
    re-running with equal entry and call-def vectors returns the cached
    result without visiting any block (the ["scc.block_visits"] counter
    does not advance) and without copying the vectors.

    Work accounting goes to {!Fsicp_trace.Trace}: a ["scc:solve"] span per
    run (carrying the procedure name) and the monotonic counters
    ["scc.runs"], ["scc.memo_hits"], ["scc.memo_evictions"],
    ["scc.block_visits"], ["scc.site_visits"] (SSA worklist pops) and
    ["scc.edge_marks"] (flow worklist activations) — all deterministic for
    a given program. *)
val run : ?config:config -> Ssa.proc -> result

(** Drop every memoized entry-vector context of one procedure: the next
    {!run} re-propagates from scratch.  The per-procedure arm of
    [Context.reset_scc_memos], and the invalidation hook of the
    incremental engine (an edited procedure's memo dies with its SSA). *)
val invalidate_memo : Ssa.proc -> unit

(** Number of memoized entry-vector contexts the procedure holds (0 after
    {!invalidate_memo}; at most the internal capacity, currently 8). *)
val memo_size : Ssa.proc -> int

(** The original list/Hashtbl/Queue formulation over the boxed lattice,
    kept as the executable specification: no arena, no dedup, no memo, no
    packed arithmetic (packed only at the hooks and the final encode).
    The unique SCC fixpoint makes it interchangeable with {!run}; the
    test-suite asserts this value-for-value and edge-for-edge. *)
val run_reference : ?config:config -> Ssa.proc -> result

(** Is dense edge [e] of the result's procedure executable? *)
val edge_bit : result -> int -> bool

(** Is the (unique) CFG edge [src -> dst] executable? *)
val edge_executable : result -> src:int -> dst:int -> bool

val value_of : result -> Ssa.name -> Lattice.t
val operand_value : result -> Ssa.operand -> Lattice.t

(** Packed variants of the value accessors, for allocation-free callers. *)
val value_w : result -> Ssa.name -> int

val operand_w : result -> Ssa.operand -> int

(** Call sites whose block the analysis proved executable — the only ones
    whose arguments the flow-sensitive ICP propagates. *)
val executable_call_sites : result -> (int * int * Ssa.call) list

(** Lattice value of the [j]-th argument of call [c]. *)
val arg_value : result -> Ssa.call -> int -> Lattice.t

val arg_value_w : result -> Ssa.call -> int -> int

(** Value of global [g] immediately before call [c], if recorded (i.e. [g]
    is in the callee's REF closure). *)
val global_at_call : result -> Ssa.call -> Ir.var -> Lattice.t option

(** Packed variant: {!Lattice.P.absent} when not recorded. *)
val global_at_call_w : result -> Ssa.call -> Ir.var -> int

(** The Grove–Torczon / Metzger–Stroud metric: textual uses of source-level
    variables proved constant in executable code (Table 5). *)
val substitution_count : result -> int

(** Source-variable SSA names proved constant (diagnostics). *)
val constant_names : result -> (Ssa.name * Fsicp_lang.Value.t) list

(** Value of variable [v] at procedure exit: the meet over executable
    return blocks of the reaching version's value; [Top] when the procedure
    cannot return.  Drives the return-constants extension. *)
val exit_value : result -> Ir.var -> Lattice.t

val exit_value_w : result -> Ir.var -> int
