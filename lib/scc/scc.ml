(** Sparse Conditional Constant propagation (Wegman & Zadeck, TOPLAS 1991)
    over the SSA form of {!Fsicp_ssa.Ssa}.

    This is the paper's intraprocedural engine: "The routine is an
    implementation of the Sparse Conditional Constant (SCC) algorithm of
    Wegman and Zadeck, and is built upon an implementation of SSA data-flow
    analysis.  This is an optimistic algorithm that discards unreachable
    code during the propagation, which may permit the identification of
    additional constants."

    Two worklists drive the analysis: a {e flow} worklist of CFG edges whose
    executability was just discovered, and an {e SSA} worklist of def–use
    edges whose source value just lowered.  Conditional branches with a
    known-constant condition only mark one successor edge executable, which
    is how unreachable code is pruned and how the flow-sensitive ICP of the
    paper finds constants that no jump-function method can (paper Figure 1).

    Interprocedural hooks:
    - [entry_env] gives the lattice value of every variable's version-0
      (procedure entry) name — formals and globals constant on entry is
      exactly what the interprocedural methods establish;
    - [call_def_value] gives the post-call value of each variable a call
      may define (always [Bot] unless the return-constants extension
      supplies a summary). *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ssa

type config = {
  entry_env : Ir.var -> Lattice.t;
      (** entry value per variable; must be [Bot] or a constant for
          soundness (Top would claim dead code on all inputs) *)
  call_def_value : callee:string -> Ir.var -> Lattice.t;
      (** value of a call-defined variable after the call *)
}

let default_config =
  {
    entry_env = (fun _ -> Lattice.Bot);
    call_def_value = (fun ~callee:_ _ -> Lattice.Bot);
  }

(** Entry environment from an association list; unlisted variables are
    [Bot] (unknown), except temporaries which never carry entry values. *)
let env_of_list (l : (Ir.var * Value.t) list) : Ir.var -> Lattice.t =
 fun v ->
  match List.find_opt (fun (v', _) -> Ir.Var.equal v v') l with
  | Some (_, value) -> Lattice.Const value
  | None -> Lattice.Bot

type result = {
  proc : Ssa.proc;
  values : Lattice.t array;  (** lattice value per SSA name id *)
  block_executable : bool array;
  edge_executable : (int * int, bool) Hashtbl.t;
}

let value_of (r : result) (n : Ssa.name) = r.values.(n.Ssa.id)

let operand_value (r : result) (o : Ssa.operand) : Lattice.t =
  match o with
  | Ssa.Oconst v -> Lattice.Const v
  | Ssa.Oname n -> r.values.(n.Ssa.id)

(** Run SCC on an SSA procedure. *)
let run ?(config = default_config) (p : Ssa.proc) : result =
  let values = Array.make (max 1 p.n_names) Lattice.Top in
  let block_executable = Array.make (Array.length p.blocks) false in
  let edge_executable : (int * int, bool) Hashtbl.t = Hashtbl.create 16 in
  let flow_wl : (int * int) Queue.t = Queue.create () in
  let ssa_wl : Ssa.use_site Queue.t = Queue.create () in

  let res = { proc = p; values; block_executable; edge_executable } in

  let lower (n : Ssa.name) (v : Lattice.t) =
    let old = values.(n.Ssa.id) in
    let merged = Lattice.meet old v in
    if not (Lattice.equal old merged) then begin
      (* Monotone: values only move down the lattice. *)
      assert (Lattice.le merged old);
      values.(n.Ssa.id) <- merged;
      List.iter (fun site -> Queue.add site ssa_wl) p.uses.(n.Ssa.id)
    end
  in

  let edge_is_exec (s, d) =
    Option.value (Hashtbl.find_opt edge_executable (s, d)) ~default:false
  in

  let visit_phi b pi =
    let ph = p.blocks.(b).Ssa.phis.(pi) in
    let v =
      Array.fold_left
        (fun acc (pred, n) ->
          if edge_is_exec (pred, b) then Lattice.meet acc values.(n.Ssa.id)
          else acc)
        Lattice.Top ph.Ssa.p_args
    in
    lower ph.Ssa.p_name v
  in

  let visit_instr b i =
    match p.blocks.(b).Ssa.instrs.(i) with
    | Ssa.Assign (n, rhs) ->
        let v =
          match rhs with
          | Ssa.Copy o -> operand_value res o
          | Ssa.Unop (op, o) -> Lattice.eval_unop op (operand_value res o)
          | Ssa.Binop (op, a, c) ->
              Lattice.eval_binop op (operand_value res a) (operand_value res c)
        in
        lower n v
    | Ssa.Kill kills ->
        (* The location was possibly written through an alias: unknown. *)
        Array.iter (fun (_, n) -> lower n Lattice.Bot) kills
    | Ssa.Call c ->
        Array.iter
          (fun (base, n) ->
            lower n (config.call_def_value ~callee:c.Ssa.c_callee base))
          c.Ssa.c_defs
    | Ssa.Print _ -> ()
  in

  let mark_edge s d =
    if not (edge_is_exec (s, d)) then Queue.add (s, d) flow_wl
  in

  let visit_term b =
    match p.blocks.(b).Ssa.term with
    | Ssa.Goto t -> mark_edge b t
    | Ssa.Ret -> ()
    | Ssa.Cond (c, t, f) -> (
        match operand_value res c with
        | Lattice.Top -> () (* not yet known; revisited when it lowers *)
        | Lattice.Const v ->
            if Value.truthy v then mark_edge b t else mark_edge b f
        | Lattice.Bot ->
            mark_edge b t;
            mark_edge b f)
  in

  let visit_block b =
    Array.iteri (fun pi _ -> visit_phi b pi) p.blocks.(b).Ssa.phis;
    Array.iteri (fun i _ -> visit_instr b i) p.blocks.(b).Ssa.instrs;
    visit_term b
  in

  (* Initialise entry names from the environment, then start at the entry
     block.  Entry values are seeded directly (not via [lower]) because
     Top-initialised cells must be allowed to take any lattice value. *)
  Array.iter
    (fun ((v : Ir.var), (n : Ssa.name)) ->
      let init =
        match v.Ir.vkind with
        | Ir.Temp -> Lattice.Bot (* version-0 temps are never read *)
        | Ir.Local | Ir.Formal _ | Ir.Global -> config.entry_env v
      in
      values.(n.Ssa.id) <- init)
    p.entry_names;

  (* Pseudo-edge into the entry block. *)
  Queue.add (-1, p.entry) flow_wl;

  while not (Queue.is_empty flow_wl && Queue.is_empty ssa_wl) do
    while not (Queue.is_empty flow_wl) do
      let s, d = Queue.take flow_wl in
      if not (edge_is_exec (s, d)) then begin
        Hashtbl.replace edge_executable (s, d) true;
        let first_visit = not block_executable.(d) in
        block_executable.(d) <- true;
        if first_visit then visit_block d
        else
          (* Only the phis can change when an extra in-edge lights up. *)
          Array.iteri (fun pi _ -> visit_phi d pi) p.blocks.(d).Ssa.phis
      end
    done;
    while not (Queue.is_empty ssa_wl) do
      match Queue.take ssa_wl with
      | Ssa.Uphi (b, pi) -> if block_executable.(b) then visit_phi b pi
      | Ssa.Uinstr (b, i) -> if block_executable.(b) then visit_instr b i
      | Ssa.Uterm b -> if block_executable.(b) then visit_term b
    done
  done;
  res

(* ------------------------------------------------------------------ *)
(* Result queries used by the interprocedural phases and the metrics   *)
(* ------------------------------------------------------------------ *)

(** Call sites together with executability: the FS ICP only propagates
    argument and global values from {e executable} call sites — an
    unreachable call contributes nothing to the callee's entry meet, which
    is how "the path containing y = 0 is not executed" of paper Figure 1
    sharpens the interprocedural solution. *)
let executable_call_sites (r : result) : (int * int * Ssa.call) list =
  Ssa.call_sites r.proc
  |> List.filter (fun (b, _, _) -> r.block_executable.(b))

(** Lattice value of argument [j] at call [c] (which must be executable). *)
let arg_value (r : result) (c : Ssa.call) j : Lattice.t =
  operand_value r c.Ssa.c_args.(j).Ssa.sa_operand

(** Lattice value of global [g] immediately before call [c], if the SSA
    construction recorded it (i.e. [g] is in the callee's REF closure). *)
let global_at_call (r : result) (c : Ssa.call) (g : Ir.var) : Lattice.t option =
  Array.fold_left
    (fun acc (v, n) -> if Ir.Var.equal v g then Some r.values.(n.Ssa.id) else acc)
    None c.Ssa.c_global_uses

(** Count of {e uses} of source-level variables (not compiler temporaries)
    that are proved constant in executable code: the "intraprocedural
    substitutions" metric used by Grove–Torczon and Metzger–Stroud, which
    Table 5 compares against.  Each textual use site counts once; phi
    arguments are not uses (they have no textual counterpart). *)
let substitution_count (r : result) : int =
  let p = r.proc in
  let count = ref 0 in
  let count_op o =
    match o with
    | Ssa.Oconst _ -> ()
    | Ssa.Oname n ->
        if Ir.Var.is_source n.Ssa.base && Lattice.is_const r.values.(n.Ssa.id)
        then incr count
  in
  Array.iteri
    (fun b (blk : Ssa.block) ->
      if r.block_executable.(b) then begin
        Array.iter
          (fun ins ->
            match ins with
            | Ssa.Assign (_, Ssa.Copy o) | Ssa.Assign (_, Ssa.Unop (_, o)) ->
                count_op o
            | Ssa.Assign (_, Ssa.Binop (_, x, y)) ->
                count_op x;
                count_op y
            | Ssa.Kill _ -> ()
            | Ssa.Call c ->
                Array.iter (fun (a : Ssa.ssa_arg) -> count_op a.Ssa.sa_operand) c.Ssa.c_args
            | Ssa.Print o -> count_op o)
          blk.Ssa.instrs;
        match blk.Ssa.term with
        | Ssa.Cond (c, _, _) -> count_op c
        | Ssa.Goto _ | Ssa.Ret -> ()
      end)
    p.blocks;
  !count

(** Names of source variables proved constant somewhere (diagnostics). *)
let constant_names (r : result) : (Ssa.name * Value.t) list =
  let acc = ref [] in
  let add n =
    match r.values.(n.Ssa.id) with
    | Lattice.Const v when Ir.Var.is_source n.Ssa.base -> acc := (n, v) :: !acc
    | _ -> ()
  in
  Array.iter (fun (_, n) -> add n) r.proc.entry_names;
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter (fun (ph : Ssa.phi) -> add ph.Ssa.p_name) blk.Ssa.phis;
      Array.iter
        (function
          | Ssa.Assign (n, _) -> add n
          | Ssa.Kill kills -> Array.iter (fun (_, n) -> add n) kills
          | Ssa.Call c -> Array.iter (fun (_, n) -> add n) c.Ssa.c_defs
          | Ssa.Print _ -> ())
        blk.Ssa.instrs)
    r.proc.blocks;
  List.rev !acc

(** Value of variable [v] at procedure exit: the meet, over all {e
    executable} return blocks, of the reaching SSA version's value.  [Top]
    if no return block is executable (the procedure cannot return — then a
    call to it never completes, so any claim about post-call values is
    vacuous).  Drives the return-constants extension (paper §3.2). *)
let exit_value (r : result) (v : Ir.var) : Lattice.t =
  List.fold_left
    (fun acc (b, names) ->
      if r.block_executable.(b) then
        let here =
          Array.fold_left
            (fun acc' (v', n) ->
              if Ir.Var.equal v v' then Some r.values.(n.Ssa.id) else acc')
            None names
        in
        match here with
        | Some value -> Lattice.meet acc value
        | None -> Lattice.Bot (* not recorded: unknown *)
      else acc)
    Lattice.Top r.proc.exit_names
