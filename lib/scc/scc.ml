(** Sparse Conditional Constant propagation (Wegman & Zadeck, TOPLAS 1991)
    over the SSA form of {!Fsicp_ssa.Ssa}.

    This is the paper's intraprocedural engine: "The routine is an
    implementation of the Sparse Conditional Constant (SCC) algorithm of
    Wegman and Zadeck, and is built upon an implementation of SSA data-flow
    analysis.  This is an optimistic algorithm that discards unreachable
    code during the propagation, which may permit the identification of
    additional constants."

    Two worklists drive the analysis: a {e flow} worklist of CFG edges whose
    executability was just discovered, and an {e SSA} worklist of def–use
    edges whose source value just lowered.  Conditional branches with a
    known-constant condition only mark one successor edge executable, which
    is how unreachable code is pruned and how the flow-sensitive ICP of the
    paper finds constants that no jump-function method can (paper Figure 1).

    Interprocedural hooks:
    - [entry_env] gives the lattice value of every variable's version-0
      (procedure entry) name — formals and globals constant on entry is
      exactly what the interprocedural methods establish;
    - [call_def_value] gives the post-call value of each variable a call
      may define (always bottom unless the return-constants extension
      supplies a summary).

    The engine is a flat integer kernel over {e packed} lattice words
    ({!Lattice.P}): one immediate [int] per SSA name, def–use chains walked
    through the CSR arrays of {!Ssa.proc}, edge executability one bit per
    dense edge id, both worklists int stacks of dense edge/site ids with
    on-worklist dedup marks, and all scratch from the calling domain's
    epoch-stamped {!Fsicp_par.Par.Arena} — the steady-state loop allocates
    nothing, and lattice meets/compares are single integer operations.
    Transfer evaluation is closure-free: the per-run state lives in one
    {!kstate} record threaded through top-level visit functions, dispatch
    over sites decodes the tagged [site_code] ints directly.

    Both oracle hooks are resolved {e once} per run into dense packed
    vectors ([entry] over [entry_names], [cdv] over the flat call-def
    numbering), written into per-domain scratch; since the kernel's output
    is a pure function of [(proc, entry, cdv)], those two vectors also key
    a per-procedure memo (the value-contexts idea of Padhye & Khedker): a
    re-run with equal vectors returns the cached {!result} without visiting
    a single block — and without allocating the vectors, which are only
    copied out of scratch on a memo miss. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ssa
module Par = Fsicp_par.Par
module Trace = Fsicp_trace.Trace
module P = Lattice.P

(* Kernel work counters, all jobs-invariant: the SCC fixpoint is unique
   and each procedure is solved from a fully-resolved entry vector, so the
   number of block/site visits and edge activations does not depend on
   scheduling.  [scc.block_visits] is the memo acceptance gate: a warm
   re-solve of an unchanged program must not advance it.
   [scc.memo_evictions] counts contexts pushed out of a full memo — a
   nonzero value on a warm path means the working set exceeds the memo
   capacity and re-solves are structural, not a bug.  The hot loops tally
   into locals and flush once per kernel run. *)
let c_block_visits = Trace.counter "scc.block_visits"
let c_site_visits = Trace.counter "scc.site_visits"
let c_edge_marks = Trace.counter "scc.edge_marks"
let c_runs = Trace.counter "scc.runs"
let c_memo_hits = Trace.counter "scc.memo_hits"
let c_memo_evictions = Trace.counter "scc.memo_evictions"

type config = {
  entry_env : Ir.var -> int;
      (** packed entry value per variable; must be [Lattice.P.bot] or a
          constant word for soundness (top would claim dead code on all
          inputs) *)
  call_def_value : callee:string -> Ir.var -> int;
      (** packed value of a call-defined variable after the call *)
}

let default_config =
  { entry_env = (fun _ -> P.bot); call_def_value = (fun ~callee:_ _ -> P.bot) }

(** Entry environment from an association list; unlisted variables are
    bottom (unknown), except temporaries which never carry entry values.
    The list is indexed once into an int-keyed table ({!Ir.Var.slot_key}),
    so each query is an O(1) integer-hash lookup rather than a linear
    scan.  First binding wins, as with [List.find_opt]. *)
let env_of_list (l : (Ir.var * Value.t) list) : Ir.var -> int =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (v, value) ->
      let k = Ir.Var.slot_key v in
      if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k (P.of_value value))
    l;
  fun v ->
    match Hashtbl.find_opt tbl (Ir.Var.slot_key v) with
    | Some w -> w
    | None -> P.bot

type result = {
  proc : Ssa.proc option;
      (* [None] once a streaming solve has retired the SSA: the packed
         arrays stay valid, but SSA-dependent accessors must raise rather
         than silently read another procedure's structure *)
  values : int array;  (** packed lattice word per SSA name id *)
  block_executable : bool array;
  edge_exec : Bytes.t;  (** bitset over dense edge ids *)
}

let proc_exn (r : result) : Ssa.proc =
  match r.proc with
  | Some p -> p
  | None ->
      invalid_arg
        "Scc.result: SSA retired by the streaming solve; only the packed \
         value/executability arrays survive retirement"

let[@inline] bit_get bytes i =
  Char.code (Bytes.unsafe_get bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@inline] bit_set bytes i =
  let j = i lsr 3 in
  Bytes.unsafe_set bytes j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get bytes j) lor (1 lsl (i land 7))))

(* Packed operand value against a values vector — shared by the kernel and
   the result accessors.  [Oconst (Int _)] encodes without allocating;
   [Oconst (Real _)] costs an interner lookup, which only constant-real
   operands of revisited sites pay. *)
let[@inline] operand_word (values : int array) (o : Ssa.operand) : int =
  match o with
  | Ssa.Oconst v -> P.of_value v
  | Ssa.Oname n -> values.(n.Ssa.id)

let value_of (r : result) (n : Ssa.name) = P.to_t r.values.(n.Ssa.id)
let value_w (r : result) (n : Ssa.name) = r.values.(n.Ssa.id)

let operand_value (r : result) (o : Ssa.operand) : Lattice.t =
  match o with
  | Ssa.Oconst v -> Lattice.Const v
  | Ssa.Oname n -> P.to_t r.values.(n.Ssa.id)

let operand_w (r : result) (o : Ssa.operand) : int = operand_word r.values o

(** Is dense edge [e] executable? *)
let edge_bit (r : result) (e : int) : bool = bit_get r.edge_exec e

(** Is the (unique) CFG edge [src -> dst] executable? *)
let edge_executable (r : result) ~src ~dst : bool =
  let p = proc_exn r in
  let hi = p.Ssa.edge_base.(src + 1) in
  let rec go i =
    i < hi && ((p.Ssa.edge_dst.(i) = dst && bit_get r.edge_exec i) || go (i + 1))
  in
  go p.Ssa.edge_base.(src)

(* -- Oracle resolution ----------------------------------------------- *)

(* Per-domain scratch vectors for oracle resolution and memo probing.
   They are written fresh at the top of every [run] and only copied into
   exact-length arrays on a memo miss (the copies escape into the memo),
   so a warm run resolves and probes without allocating. *)
type scratch = { mutable s_entry : int array; mutable s_cdv : int array }

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s_entry = Array.make 64 0; s_cdv = Array.make 64 0 })

let ensure arr n =
  if Array.length arr >= n then arr
  else Array.make (max n (2 * Array.length arr)) 0

(* The entry vector: one packed word per [entry_names] position.
   Version-0 temps are never read before being written, so their entry
   value is pinned to bottom regardless of the environment. *)
let resolve_entry config (p : Ssa.proc) (dst : int array) : unit =
  let en = p.Ssa.entry_names in
  for k = 0 to Array.length en - 1 do
    let ((v : Ir.var), _) = en.(k) in
    dst.(k) <-
      (match v.Ir.vkind with
      | Ir.Temp -> P.bot
      | Ir.Local | Ir.Formal _ | Ir.Global -> config.entry_env v)
  done

(* The call-def vector: one packed word per (call, def) pair in the flat
   [c_def_base] numbering.  Resolving unreachable calls too is sound — the
   oracles are pure lookups and the kernel only reads slots of calls it
   actually visits. *)
let resolve_cdv config (p : Ssa.proc) (dst : int array) : unit =
  for i = 0 to p.Ssa.n_call_defs - 1 do
    dst.(i) <- P.bot
  done;
  let calls = p.Ssa.calls in
  for i = 0 to Array.length calls - 1 do
    let _, _, (c : Ssa.call) = calls.(i) in
    let defs = c.Ssa.c_defs in
    for k = 0 to Array.length defs - 1 do
      let (base : Ir.var), _ = defs.(k) in
      dst.(c.Ssa.c_def_base + k) <-
        config.call_def_value ~callee:c.Ssa.c_callee base
    done
  done

(* -- The kernel ------------------------------------------------------- *)

(* All per-run kernel state in one record, so the visit functions are
   ordinary top-level functions (no per-run closure tree): one small
   allocation per kernel run instead of a dozen captured environments. *)
type kstate = {
  kp : Ssa.proc;
  kv : int array;  (* packed lattice word per SSA name *)
  kee : Bytes.t;  (* edge-exec bitset *)
  kcdv : int array;  (* packed call-def vector *)
  ka : Par.Arena.t;
  kem : int;  (* edge dedup-mark region base *)
  ksm : int;  (* site dedup-mark region base *)
  kflow : Par.Arena.stack;  (* flow worklist: dense edge ids *)
  kssa : Par.Arena.stack;  (* SSA worklist: dense site ids *)
  mutable kvisits : int;
  mutable ksites : int;
  mutable kmarks : int;
}

let lower st (n : Ssa.name) (w : int) =
  let id = n.Ssa.id in
  let old = st.kv.(id) in
  let merged = P.meet old w in
  if merged <> old then begin
    (* Monotone: values only move down the lattice. *)
    st.kv.(id) <- merged;
    let p = st.kp in
    for k = p.Ssa.use_offsets.(id) to p.Ssa.use_offsets.(id + 1) - 1 do
      let s = p.Ssa.use_sites.(k) in
      (* A site queued twice is visited once per drain. *)
      if not (Par.Arena.marked st.ka (st.ksm + s)) then begin
        Par.Arena.mark st.ka (st.ksm + s);
        Par.Arena.push st.kssa s
      end
    done
  end

let visit_phi st b pi =
  let ph = st.kp.Ssa.blocks.(b).Ssa.phis.(pi) in
  let args = ph.Ssa.p_args and edges = ph.Ssa.p_edges in
  let w = ref P.top in
  for k = 0 to Array.length args - 1 do
    if bit_get st.kee edges.(k) then begin
      let _, (n : Ssa.name) = args.(k) in
      w := P.meet !w st.kv.(n.Ssa.id)
    end
  done;
  lower st ph.Ssa.p_name !w

let visit_instr st b i =
  match st.kp.Ssa.blocks.(b).Ssa.instrs.(i) with
  | Ssa.Assign (n, rhs) ->
      let w =
        match rhs with
        | Ssa.Copy o -> operand_word st.kv o
        | Ssa.Unop (op, o) -> P.eval_unop op (operand_word st.kv o)
        | Ssa.Binop (op, a, c) ->
            P.eval_binop op (operand_word st.kv a) (operand_word st.kv c)
      in
      lower st n w
  | Ssa.Kill kills ->
      (* The location was possibly written through an alias: unknown. *)
      for k = 0 to Array.length kills - 1 do
        let _, n = kills.(k) in
        lower st n P.bot
      done
  | Ssa.Call c ->
      let defs = c.Ssa.c_defs in
      for k = 0 to Array.length defs - 1 do
        let _, n = defs.(k) in
        lower st n st.kcdv.(c.Ssa.c_def_base + k)
      done
  | Ssa.Print _ -> ()

let mark_edge st e =
  if (not (bit_get st.kee e)) && not (Par.Arena.marked st.ka (st.kem + e))
  then begin
    st.kmarks <- st.kmarks + 1;
    Par.Arena.mark st.ka (st.kem + e);
    Par.Arena.push st.kflow e
  end

let visit_term st b =
  match st.kp.Ssa.blocks.(b).Ssa.term with
  | Ssa.Goto _ -> mark_edge st st.kp.Ssa.edge_base.(b)
  | Ssa.Ret -> ()
  | Ssa.Cond (c, t, f) ->
      let te = st.kp.Ssa.edge_base.(b) in
      let fe = if t = f then te else te + 1 in
      let w = operand_word st.kv c in
      (* A copy condition is some unknown entry value: like ⊥, both arms
         may run (the copy-constant method never resolves branches). *)
      if w = P.bot || P.is_copy w then begin
        mark_edge st te;
        if fe <> te then mark_edge st fe
      end
      else if w <> P.top then
        (* constant condition: exactly one successor lights up *)
        if P.truthy w then mark_edge st te else mark_edge st fe

let visit_block st b =
  st.kvisits <- st.kvisits + 1;
  let blk = st.kp.Ssa.blocks.(b) in
  for pi = 0 to Array.length blk.Ssa.phis - 1 do
    visit_phi st b pi
  done;
  for i = 0 to Array.length blk.Ssa.instrs - 1 do
    visit_instr st b i
  done;
  visit_term st b

let run_kernel (p : Ssa.proc) ~(entry : int array) ~(cdv : int array) : result
    =
  let nblocks = Array.length p.Ssa.blocks in
  (* The result arrays escape into solutions and the memo, so they are
     freshly allocated; only kernel-private scratch comes from the arena. *)
  let values = Array.make (max 1 p.Ssa.n_names) P.top in
  let block_executable = Array.make nblocks false in
  let edge_exec = Bytes.make ((p.Ssa.n_edges + 8) / 8) '\000' in
  let a = Par.Arena.get () in
  Par.Arena.reset a;
  let kem = Par.Arena.reserve_marks a p.Ssa.n_edges in
  let ksm = Par.Arena.reserve_marks a p.Ssa.n_sites in
  let st =
    {
      kp = p;
      kv = values;
      kee = edge_exec;
      kcdv = cdv;
      ka = a;
      kem;
      ksm;
      kflow = Par.Arena.stack_a a;
      kssa = Par.Arena.stack_b a;
      kvisits = 0;
      ksites = 0;
      kmarks = 0;
    }
  in
  (* Initialise entry names from the pre-resolved entry vector (directly,
     not via [lower]: Top-initialised cells must be allowed to take any
     lattice value), then start at the entry block. *)
  let en = p.Ssa.entry_names in
  for k = 0 to Array.length en - 1 do
    let _, (n : Ssa.name) = en.(k) in
    values.(n.Ssa.id) <- entry.(k)
  done;
  block_executable.(p.Ssa.entry) <- true;
  visit_block st p.Ssa.entry;

  let continue = ref true in
  while !continue do
    if not (Par.Arena.is_empty st.kflow) then begin
      let e = Par.Arena.pop st.kflow in
      Par.Arena.unmark a (kem + e);
      if not (bit_get edge_exec e) then begin
        bit_set edge_exec e;
        let d = p.Ssa.edge_dst.(e) in
        let first_visit = not block_executable.(d) in
        block_executable.(d) <- true;
        if first_visit then visit_block st d
        else begin
          (* Only the phis can change when an extra in-edge lights up. *)
          let blk = p.Ssa.blocks.(d) in
          for pi = 0 to Array.length blk.Ssa.phis - 1 do
            visit_phi st d pi
          done
        end
      end
    end
    else if not (Par.Arena.is_empty st.kssa) then begin
      let s = Par.Arena.pop st.kssa in
      st.ksites <- st.ksites + 1;
      Par.Arena.unmark a (ksm + s);
      let code = p.Ssa.site_code.(s) in
      let b = (code lsr 2) land 0xffffffff in
      if block_executable.(b) then begin
        let idx = code lsr 34 in
        match code land 3 with
        | 0 -> visit_phi st b idx
        | 1 -> visit_instr st b idx
        | _ -> visit_term st b
      end
    end
    else continue := false
  done;
  Trace.add c_block_visits st.kvisits;
  Trace.add c_site_visits st.ksites;
  Trace.add c_edge_marks st.kmarks;
  { proc = Some p; values; block_executable; edge_exec }

(* -- Entry-vector memoization ------------------------------------------ *)

type memo_entry = {
  m_entry : int array;  (* packed, exact length *)
  m_cdv : int array;
  m_result : result;
}

type Ssa.memo += Scc_memo of memo_entry list

(* A handful of contexts per procedure covers every caller in the
   pipeline (one per method sweep); beyond that, oldest entries fall off
   (counted by [scc.memo_evictions]). *)
let memo_capacity = 8

(* Compare an exact-length memo vector against the first [n] slots of an
   (oversized) scratch vector.  Packed-word equality is integer equality. *)
let vec_matches (exact : int array) (scratch : int array) n =
  Array.length exact = n
  &&
  let rec go i = i >= n || (exact.(i) = scratch.(i) && go (i + 1)) in
  go 0

let memo_find (p : Ssa.proc) ~entry ~n_entry ~cdv ~n_cdv =
  match p.Ssa.memo with
  | Scc_memo entries ->
      List.find_opt
        (fun e ->
          vec_matches e.m_entry entry n_entry && vec_matches e.m_cdv cdv n_cdv)
        entries
  | _ -> None

let memo_add (p : Ssa.proc) ~entry ~cdv r =
  let prev = match p.Ssa.memo with Scc_memo es -> es | _ -> [] in
  let entries = { m_entry = entry; m_cdv = cdv; m_result = r } :: prev in
  let entries =
    if List.length entries > memo_capacity then begin
      Trace.incr c_memo_evictions;
      List.filteri (fun i _ -> i < memo_capacity) entries
    end
    else entries
  in
  (* Single-word store of an immutable list: concurrent writers (two
     domains analysing the same proc, which the wavefront never schedules)
     could at worst drop each other's entry, never corrupt one. *)
  p.Ssa.memo <- Scc_memo entries

(** Drop every memoized entry-vector context of one procedure.  The next
    {!run} on it re-propagates from scratch whatever its entry environment
    is; the incremental engine calls this when a procedure's SSA is about
    to be rebuilt, and benchmarks use it (via [Context.reset_scc_memos])
    to measure the warm solver core. *)
let invalidate_memo (p : Ssa.proc) = p.Ssa.memo <- Ssa.No_memo

(** Number of memoized entry-vector contexts a procedure currently holds. *)
let memo_size (p : Ssa.proc) =
  match p.Ssa.memo with Scc_memo entries -> List.length entries | _ -> 0

(** Run SCC on an SSA procedure.  Equal entry/call-def vectors return the
    memoized result of the earlier identical run. *)
let run ?(config = default_config) (p : Ssa.proc) : result =
  Trace.span
    ~args:(fun () -> [ ("proc", p.Ssa.name) ])
    "scc:solve"
    (fun () ->
      Trace.incr c_runs;
      let sc = Domain.DLS.get scratch_key in
      let n_entry = Array.length p.Ssa.entry_names in
      let n_cdv = p.Ssa.n_call_defs in
      sc.s_entry <- ensure sc.s_entry n_entry;
      sc.s_cdv <- ensure sc.s_cdv n_cdv;
      resolve_entry config p sc.s_entry;
      resolve_cdv config p sc.s_cdv;
      match memo_find p ~entry:sc.s_entry ~n_entry ~cdv:sc.s_cdv ~n_cdv with
      | Some e ->
          Trace.incr c_memo_hits;
          e.m_result
      | None ->
          let entry = Array.sub sc.s_entry 0 n_entry in
          let cdv = Array.sub sc.s_cdv 0 n_cdv in
          let r = run_kernel p ~entry ~cdv in
          memo_add p ~entry ~cdv r;
          r)

(* -- Reference implementation ------------------------------------------ *)

(** The original list/Hashtbl/Queue formulation over the {e boxed} lattice,
    kept as the executable specification of {!run}: same fixpoint, no
    arena, no dedup, no memo, no packed words — the config's packed oracle
    answers are decoded at the hooks and the boxed fixpoint is re-encoded
    only when building the final {!result}.  The kernel is property-tested
    against it value-for-value and edge-for-edge (the SCC fixpoint is
    unique, so any drain order must agree). *)
let run_reference ?(config = default_config) (p : Ssa.proc) : result =
  let values = Array.make (max 1 p.Ssa.n_names) Lattice.Top in
  let block_executable = Array.make (Array.length p.Ssa.blocks) false in
  let edge_exec = Bytes.make ((p.Ssa.n_edges + 8) / 8) '\000' in
  let flow_wl : int Queue.t = Queue.create () in
  let ssa_wl : Ssa.use_site Queue.t = Queue.create () in
  let boxed_operand (o : Ssa.operand) : Lattice.t =
    match o with
    | Ssa.Oconst v -> Lattice.Const v
    | Ssa.Oname n -> values.(n.Ssa.id)
  in
  let lower (n : Ssa.name) (v : Lattice.t) =
    let old = values.(n.Ssa.id) in
    let merged = Lattice.meet old v in
    if not (Lattice.equal old merged) then begin
      assert (Lattice.le merged old);
      values.(n.Ssa.id) <- merged;
      List.iter (fun site -> Queue.add site ssa_wl) (Ssa.uses_of p n.Ssa.id)
    end
  in
  let visit_phi b pi =
    let ph = p.Ssa.blocks.(b).Ssa.phis.(pi) in
    let v = ref Lattice.Top in
    Array.iteri
      (fun k (_, (n : Ssa.name)) ->
        if bit_get edge_exec ph.Ssa.p_edges.(k) then
          v := Lattice.meet !v values.(n.Ssa.id))
      ph.Ssa.p_args;
    lower ph.Ssa.p_name !v
  in
  let visit_instr b i =
    match p.Ssa.blocks.(b).Ssa.instrs.(i) with
    | Ssa.Assign (n, rhs) ->
        let v =
          match rhs with
          | Ssa.Copy o -> boxed_operand o
          | Ssa.Unop (op, o) -> Lattice.eval_unop op (boxed_operand o)
          | Ssa.Binop (op, a, c) ->
              Lattice.eval_binop op (boxed_operand a) (boxed_operand c)
        in
        lower n v
    | Ssa.Kill kills -> Array.iter (fun (_, n) -> lower n Lattice.Bot) kills
    | Ssa.Call c ->
        Array.iter
          (fun (base, n) ->
            lower n
              (P.to_t (config.call_def_value ~callee:c.Ssa.c_callee base)))
          c.Ssa.c_defs
    | Ssa.Print _ -> ()
  in
  let mark_edge e = if not (bit_get edge_exec e) then Queue.add e flow_wl in
  let visit_term b =
    match p.Ssa.blocks.(b).Ssa.term with
    | Ssa.Goto _ -> mark_edge p.Ssa.edge_base.(b)
    | Ssa.Ret -> ()
    | Ssa.Cond (c, t, f) -> (
        let te = p.Ssa.edge_base.(b) in
        let fe = if t = f then te else te + 1 in
        match boxed_operand c with
        | Lattice.Top -> ()
        | Lattice.Const v -> if Value.truthy v then mark_edge te else mark_edge fe
        | Lattice.Bot ->
            mark_edge te;
            if fe <> te then mark_edge fe)
  in
  let visit_block b =
    Array.iteri (fun pi _ -> visit_phi b pi) p.Ssa.blocks.(b).Ssa.phis;
    Array.iteri (fun i _ -> visit_instr b i) p.Ssa.blocks.(b).Ssa.instrs;
    visit_term b
  in
  Array.iter
    (fun ((v : Ir.var), (n : Ssa.name)) ->
      let init =
        match v.Ir.vkind with
        | Ir.Temp -> Lattice.Bot
        | Ir.Local | Ir.Formal _ | Ir.Global -> P.to_t (config.entry_env v)
      in
      values.(n.Ssa.id) <- init)
    p.Ssa.entry_names;
  block_executable.(p.Ssa.entry) <- true;
  visit_block p.Ssa.entry;
  while not (Queue.is_empty flow_wl && Queue.is_empty ssa_wl) do
    while not (Queue.is_empty flow_wl) do
      let e = Queue.take flow_wl in
      if not (bit_get edge_exec e) then begin
        bit_set edge_exec e;
        let d = p.Ssa.edge_dst.(e) in
        let first_visit = not block_executable.(d) in
        block_executable.(d) <- true;
        if first_visit then visit_block d
        else Array.iteri (fun pi _ -> visit_phi d pi) p.Ssa.blocks.(d).Ssa.phis
      end
    done;
    while not (Queue.is_empty ssa_wl) do
      match Queue.take ssa_wl with
      | Ssa.Uphi (b, pi) -> if block_executable.(b) then visit_phi b pi
      | Ssa.Uinstr (b, i) -> if block_executable.(b) then visit_instr b i
      | Ssa.Uterm b -> if block_executable.(b) then visit_term b
    done
  done;
  (* Encode the boxed fixpoint at the boundary: the canonical packing makes
     this bijective on the reachable lattice elements, so comparing packed
     results word-for-word is exactly comparing boxed values. *)
  {
    proc = Some p;
    values = Array.map P.of_t values;
    block_executable;
    edge_exec;
  }

(* ------------------------------------------------------------------ *)
(* Result queries used by the interprocedural phases and the metrics   *)
(* ------------------------------------------------------------------ *)

(** Call sites together with executability: the FS ICP only propagates
    argument and global values from {e executable} call sites — an
    unreachable call contributes nothing to the callee's entry meet, which
    is how "the path containing y = 0 is not executed" of paper Figure 1
    sharpens the interprocedural solution. *)
let executable_call_sites (r : result) : (int * int * Ssa.call) list =
  Ssa.call_sites (proc_exn r)
  |> List.filter (fun (b, _, _) -> r.block_executable.(b))

(** Lattice value of argument [j] at call [c] (which must be executable). *)
let arg_value (r : result) (c : Ssa.call) j : Lattice.t =
  operand_value r c.Ssa.c_args.(j).Ssa.sa_operand

let arg_value_w (r : result) (c : Ssa.call) j : int =
  operand_word r.values c.Ssa.c_args.(j).Ssa.sa_operand

(* Shared lookup: SSA name id of global [g] at call [c], or -1 if the SSA
   construction did not record it (i.e. [g] is not in the callee's REF
   closure).  Two binary searches: var slot, then the call's compact slot
   table. *)
let global_id_at_call (r : result) (c : Ssa.call) (g : Ir.var) : int =
  let s = Ssa.slot_of (proc_exn r) g in
  if s < 0 then -1
  else begin
    let slots = c.Ssa.c_guse_slots in
    let lo = ref 0 and hi = ref (Array.length slots - 1) in
    let id = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let sm = slots.(mid) in
      if sm = s then begin
        id := c.Ssa.c_guse_ids.(mid);
        lo := !hi + 1
      end
      else if sm < s then lo := mid + 1
      else hi := mid - 1
    done;
    !id
  end

(** Lattice value of global [g] immediately before call [c], if recorded. *)
let global_at_call (r : result) (c : Ssa.call) (g : Ir.var) : Lattice.t option
    =
  let id = global_id_at_call r c g in
  if id < 0 then None else Some (P.to_t r.values.(id))

(** Packed variant: [Lattice.P.absent] when not recorded (a valid packed
    word is never [absent], including inline negative integers). *)
let global_at_call_w (r : result) (c : Ssa.call) (g : Ir.var) : int =
  let id = global_id_at_call r c g in
  if id < 0 then P.absent else r.values.(id)

(** Count of {e uses} of source-level variables (not compiler temporaries)
    that are proved constant in executable code: the "intraprocedural
    substitutions" metric used by Grove–Torczon and Metzger–Stroud, which
    Table 5 compares against.  Each textual use site counts once; phi
    arguments are not uses (they have no textual counterpart). *)
let substitution_count (r : result) : int =
  let p = proc_exn r in
  let count = ref 0 in
  let count_op o =
    match o with
    | Ssa.Oconst _ -> ()
    | Ssa.Oname n ->
        if Ir.Var.is_source n.Ssa.base && P.is_const r.values.(n.Ssa.id) then
          incr count
  in
  Array.iteri
    (fun b (blk : Ssa.block) ->
      if r.block_executable.(b) then begin
        Array.iter
          (fun ins ->
            match ins with
            | Ssa.Assign (_, Ssa.Copy o) | Ssa.Assign (_, Ssa.Unop (_, o)) ->
                count_op o
            | Ssa.Assign (_, Ssa.Binop (_, x, y)) ->
                count_op x;
                count_op y
            | Ssa.Kill _ -> ()
            | Ssa.Call c ->
                Array.iter
                  (fun (a : Ssa.ssa_arg) -> count_op a.Ssa.sa_operand)
                  c.Ssa.c_args
            | Ssa.Print o -> count_op o)
          blk.Ssa.instrs;
        match blk.Ssa.term with
        | Ssa.Cond (c, _, _) -> count_op c
        | Ssa.Goto _ | Ssa.Ret -> ()
      end)
    p.blocks;
  !count

(** Names of source variables proved constant somewhere (diagnostics). *)
let constant_names (r : result) : (Ssa.name * Value.t) list =
  let acc = ref [] in
  let add n =
    let w = r.values.(n.Ssa.id) in
    if P.is_const w && Ir.Var.is_source n.Ssa.base then
      acc := (n, P.const_value w) :: !acc
  in
  let p = proc_exn r in
  Array.iter (fun (_, n) -> add n) p.Ssa.entry_names;
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter (fun (ph : Ssa.phi) -> add ph.Ssa.p_name) blk.Ssa.phis;
      Array.iter
        (function
          | Ssa.Assign (n, _) -> add n
          | Ssa.Kill kills -> Array.iter (fun (_, n) -> add n) kills
          | Ssa.Call c -> Array.iter (fun (_, n) -> add n) c.Ssa.c_defs
          | Ssa.Print _ -> ())
        blk.Ssa.instrs)
    p.Ssa.blocks;
  List.rev !acc

(** Packed value of variable [v] at procedure exit: the meet, over all {e
    executable} return blocks, of the reaching SSA version's value.  [top]
    if no return block is executable (the procedure cannot return — then a
    call to it never completes, so any claim about post-call values is
    vacuous).  Drives the return-constants extension (paper §3.2).  O(1)
    per return block via the [exit_ids] slot tables. *)
let exit_value_w (r : result) (v : Ir.var) : int =
  let p = proc_exn r in
  let s = Ssa.slot_of p v in
  let exits = p.Ssa.exit_ids in
  let acc = ref P.top in
  for i = 0 to Array.length exits - 1 do
    let b, tbl = exits.(i) in
    if r.block_executable.(b) then
      if s >= 0 && tbl.(s) >= 0 then acc := P.meet !acc r.values.(tbl.(s))
      else acc := P.bot (* not recorded: unknown *)
  done;
  !acc

let exit_value (r : result) (v : Ir.var) : Lattice.t =
  P.to_t (exit_value_w r v)
