(** Sparse Conditional Constant propagation (Wegman & Zadeck, TOPLAS 1991)
    over the SSA form of {!Fsicp_ssa.Ssa}.

    This is the paper's intraprocedural engine: "The routine is an
    implementation of the Sparse Conditional Constant (SCC) algorithm of
    Wegman and Zadeck, and is built upon an implementation of SSA data-flow
    analysis.  This is an optimistic algorithm that discards unreachable
    code during the propagation, which may permit the identification of
    additional constants."

    Two worklists drive the analysis: a {e flow} worklist of CFG edges whose
    executability was just discovered, and an {e SSA} worklist of def–use
    edges whose source value just lowered.  Conditional branches with a
    known-constant condition only mark one successor edge executable, which
    is how unreachable code is pruned and how the flow-sensitive ICP of the
    paper finds constants that no jump-function method can (paper Figure 1).

    Interprocedural hooks:
    - [entry_env] gives the lattice value of every variable's version-0
      (procedure entry) name — formals and globals constant on entry is
      exactly what the interprocedural methods establish;
    - [call_def_value] gives the post-call value of each variable a call
      may define (always [Bot] unless the return-constants extension
      supplies a summary).

    The engine is a flat integer kernel: def–use chains are walked through
    the CSR arrays of {!Ssa.proc}, edge executability is one bit per dense
    edge id, both worklists are int stacks of dense edge/site ids with
    on-worklist dedup marks, and all scratch comes from the calling
    domain's epoch-stamped {!Fsicp_par.Par.Arena} — the steady-state loop
    allocates nothing.  Both oracle hooks are resolved {e once} per run
    into dense vectors ([entry] over [entry_names], [cdv] over the flat
    call-def numbering); since the kernel's output is a pure function of
    [(proc, entry, cdv)], those two vectors also key a per-procedure memo
    (the value-contexts idea of Padhye & Khedker): a re-run with equal
    vectors returns the cached {!result} without visiting a single block. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ssa
module Par = Fsicp_par.Par
module Trace = Fsicp_trace.Trace

(* Kernel work counters, all jobs-invariant: the SCC fixpoint is unique
   and each procedure is solved from a fully-resolved entry vector, so the
   number of block/site visits and edge activations does not depend on
   scheduling.  [scc.block_visits] is the memo acceptance gate: a warm
   re-solve of an unchanged program must not advance it.  The hot loops
   tally into locals and flush once per kernel run. *)
let c_block_visits = Trace.counter "scc.block_visits"
let c_site_visits = Trace.counter "scc.site_visits"
let c_edge_marks = Trace.counter "scc.edge_marks"
let c_runs = Trace.counter "scc.runs"
let c_memo_hits = Trace.counter "scc.memo_hits"

type config = {
  entry_env : Ir.var -> Lattice.t;
      (** entry value per variable; must be [Bot] or a constant for
          soundness (Top would claim dead code on all inputs) *)
  call_def_value : callee:string -> Ir.var -> Lattice.t;
      (** value of a call-defined variable after the call *)
}

let default_config =
  {
    entry_env = (fun _ -> Lattice.Bot);
    call_def_value = (fun ~callee:_ _ -> Lattice.Bot);
  }

(** Entry environment from an association list; unlisted variables are
    [Bot] (unknown), except temporaries which never carry entry values.
    The list is indexed once into an int-keyed table ({!Ir.Var.slot_key}),
    so each query is an O(1) integer-hash lookup rather than a linear
    scan.  First binding wins, as with [List.find_opt]. *)
let env_of_list (l : (Ir.var * Value.t) list) : Ir.var -> Lattice.t =
  let tbl : (int, Lattice.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (v, value) ->
      let k = Ir.Var.slot_key v in
      if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k (Lattice.Const value))
    l;
  fun v ->
    match Hashtbl.find_opt tbl (Ir.Var.slot_key v) with
    | Some x -> x
    | None -> Lattice.Bot

type result = {
  proc : Ssa.proc;
  values : Lattice.t array;  (** lattice value per SSA name id *)
  block_executable : bool array;
  edge_exec : Bytes.t;  (** bitset over dense edge ids *)
}

let[@inline] bit_get bytes i =
  Char.code (Bytes.unsafe_get bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@inline] bit_set bytes i =
  let j = i lsr 3 in
  Bytes.unsafe_set bytes j
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get bytes j) lor (1 lsl (i land 7))))

let value_of (r : result) (n : Ssa.name) = r.values.(n.Ssa.id)

let operand_value (r : result) (o : Ssa.operand) : Lattice.t =
  match o with
  | Ssa.Oconst v -> Lattice.Const v
  | Ssa.Oname n -> r.values.(n.Ssa.id)

(** Is dense edge [e] executable? *)
let edge_bit (r : result) (e : int) : bool = bit_get r.edge_exec e

(** Is the (unique) CFG edge [src -> dst] executable? *)
let edge_executable (r : result) ~src ~dst : bool =
  let p = r.proc in
  let hi = p.Ssa.edge_base.(src + 1) in
  let rec go i =
    i < hi && ((p.Ssa.edge_dst.(i) = dst && bit_get r.edge_exec i) || go (i + 1))
  in
  go p.Ssa.edge_base.(src)

(* -- Oracle resolution ----------------------------------------------- *)

(* The entry vector: one lattice value per [entry_names] position.
   Version-0 temps are never read before being written, so their entry
   value is pinned to Bot regardless of the environment. *)
let resolve_entry config (p : Ssa.proc) : Lattice.t array =
  Array.map
    (fun ((v : Ir.var), _) ->
      match v.Ir.vkind with
      | Ir.Temp -> Lattice.Bot
      | Ir.Local | Ir.Formal _ | Ir.Global -> config.entry_env v)
    p.Ssa.entry_names

(* The call-def vector: one lattice value per (call, def) pair in the flat
   [c_def_base] numbering.  Resolving unreachable calls too is sound — the
   oracles are pure lookups and the kernel only reads slots of calls it
   actually visits. *)
let resolve_cdv config (p : Ssa.proc) : Lattice.t array =
  let cdv = Array.make (max 1 p.Ssa.n_call_defs) Lattice.Bot in
  Array.iter
    (fun (_, _, (c : Ssa.call)) ->
      Array.iteri
        (fun k ((base : Ir.var), _) ->
          cdv.(c.Ssa.c_def_base + k) <-
            config.call_def_value ~callee:c.Ssa.c_callee base)
        c.Ssa.c_defs)
    p.Ssa.calls;
  cdv

(* -- The kernel ------------------------------------------------------- *)

let run_kernel (p : Ssa.proc) ~(entry : Lattice.t array)
    ~(cdv : Lattice.t array) : result =
  let nblocks = Array.length p.Ssa.blocks in
  (* The result arrays escape into solutions and the memo, so they are
     freshly allocated; only kernel-private scratch comes from the arena. *)
  let values = Array.make (max 1 p.Ssa.n_names) Lattice.Top in
  let block_executable = Array.make nblocks false in
  let edge_exec = Bytes.make ((p.Ssa.n_edges + 8) / 8) '\000' in
  let res = { proc = p; values; block_executable; edge_exec } in
  let a = Par.Arena.get () in
  Par.Arena.reset a;
  let edge_marks = Par.Arena.reserve_marks a p.Ssa.n_edges in
  let site_marks = Par.Arena.reserve_marks a p.Ssa.n_sites in
  let flow = Par.Arena.stack_a a in
  let ssa_wl = Par.Arena.stack_b a in
  let visits = ref 0 in
  let site_visits = ref 0 in
  let edge_marks_n = ref 0 in

  let lower (n : Ssa.name) (v : Lattice.t) =
    let id = n.Ssa.id in
    let old = values.(id) in
    let merged = Lattice.meet old v in
    if not (Lattice.equal old merged) then begin
      (* Monotone: values only move down the lattice. *)
      values.(id) <- merged;
      for k = p.Ssa.use_offsets.(id) to p.Ssa.use_offsets.(id + 1) - 1 do
        let s = p.Ssa.use_sites.(k) in
        (* A site queued twice is visited once per drain. *)
        if not (Par.Arena.marked a (site_marks + s)) then begin
          Par.Arena.mark a (site_marks + s);
          Par.Arena.push ssa_wl s
        end
      done
    end
  in

  let visit_phi b pi =
    let ph = p.Ssa.blocks.(b).Ssa.phis.(pi) in
    let v = ref Lattice.Top in
    Array.iteri
      (fun k (_, (n : Ssa.name)) ->
        if bit_get edge_exec ph.Ssa.p_edges.(k) then
          v := Lattice.meet !v values.(n.Ssa.id))
      ph.Ssa.p_args;
    lower ph.Ssa.p_name !v
  in

  let visit_instr b i =
    match p.Ssa.blocks.(b).Ssa.instrs.(i) with
    | Ssa.Assign (n, rhs) ->
        let v =
          match rhs with
          | Ssa.Copy o -> operand_value res o
          | Ssa.Unop (op, o) -> Lattice.eval_unop op (operand_value res o)
          | Ssa.Binop (op, a, c) ->
              Lattice.eval_binop op (operand_value res a) (operand_value res c)
        in
        lower n v
    | Ssa.Kill kills ->
        (* The location was possibly written through an alias: unknown. *)
        Array.iter (fun (_, n) -> lower n Lattice.Bot) kills
    | Ssa.Call c ->
        Array.iteri
          (fun k (_, n) -> lower n cdv.(c.Ssa.c_def_base + k))
          c.Ssa.c_defs
    | Ssa.Print _ -> ()
  in

  let mark_edge e =
    if (not (bit_get edge_exec e)) && not (Par.Arena.marked a (edge_marks + e))
    then begin
      incr edge_marks_n;
      Par.Arena.mark a (edge_marks + e);
      Par.Arena.push flow e
    end
  in

  let visit_term b =
    match p.Ssa.blocks.(b).Ssa.term with
    | Ssa.Goto _ -> mark_edge p.Ssa.edge_base.(b)
    | Ssa.Ret -> ()
    | Ssa.Cond (c, t, f) -> (
        let te = p.Ssa.edge_base.(b) in
        let fe = if t = f then te else te + 1 in
        match operand_value res c with
        | Lattice.Top -> () (* not yet known; revisited when it lowers *)
        | Lattice.Const v -> if Value.truthy v then mark_edge te else mark_edge fe
        | Lattice.Bot ->
            mark_edge te;
            if fe <> te then mark_edge fe)
  in

  let visit_block b =
    incr visits;
    Array.iteri (fun pi _ -> visit_phi b pi) p.Ssa.blocks.(b).Ssa.phis;
    Array.iteri (fun i _ -> visit_instr b i) p.Ssa.blocks.(b).Ssa.instrs;
    visit_term b
  in

  (* Initialise entry names from the pre-resolved entry vector (directly,
     not via [lower]: Top-initialised cells must be allowed to take any
     lattice value), then start at the entry block. *)
  Array.iteri
    (fun k (_, (n : Ssa.name)) -> values.(n.Ssa.id) <- entry.(k))
    p.Ssa.entry_names;
  block_executable.(p.Ssa.entry) <- true;
  visit_block p.Ssa.entry;

  let continue = ref true in
  while !continue do
    if not (Par.Arena.is_empty flow) then begin
      let e = Par.Arena.pop flow in
      Par.Arena.unmark a (edge_marks + e);
      if not (bit_get edge_exec e) then begin
        bit_set edge_exec e;
        let d = p.Ssa.edge_dst.(e) in
        let first_visit = not block_executable.(d) in
        block_executable.(d) <- true;
        if first_visit then visit_block d
        else
          (* Only the phis can change when an extra in-edge lights up. *)
          Array.iteri (fun pi _ -> visit_phi d pi) p.Ssa.blocks.(d).Ssa.phis
      end
    end
    else if not (Par.Arena.is_empty ssa_wl) then begin
      let s = Par.Arena.pop ssa_wl in
      incr site_visits;
      Par.Arena.unmark a (site_marks + s);
      let code = p.Ssa.site_code.(s) in
      let b = (code lsr 2) land 0xffffffff in
      if block_executable.(b) then begin
        let idx = code lsr 34 in
        match code land 3 with
        | 0 -> visit_phi b idx
        | 1 -> visit_instr b idx
        | _ -> visit_term b
      end
    end
    else continue := false
  done;
  Trace.add c_block_visits !visits;
  Trace.add c_site_visits !site_visits;
  Trace.add c_edge_marks !edge_marks_n;
  res

(* -- Entry-vector memoization ------------------------------------------ *)

type memo_entry = {
  m_entry : Lattice.t array;
  m_cdv : Lattice.t array;
  m_result : result;
}

type Ssa.memo += Scc_memo of memo_entry list

(* A handful of contexts per procedure covers every caller in the
   pipeline (one per method sweep); beyond that, oldest entries fall off. *)
let memo_capacity = 8

let vec_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Lattice.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let memo_find (p : Ssa.proc) ~entry ~cdv =
  match p.Ssa.memo with
  | Scc_memo entries ->
      List.find_opt
        (fun e -> vec_equal e.m_entry entry && vec_equal e.m_cdv cdv)
        entries
  | _ -> None

let memo_add (p : Ssa.proc) ~entry ~cdv r =
  let prev = match p.Ssa.memo with Scc_memo es -> es | _ -> [] in
  let entries = { m_entry = entry; m_cdv = cdv; m_result = r } :: prev in
  let entries =
    if List.length entries > memo_capacity then
      List.filteri (fun i _ -> i < memo_capacity) entries
    else entries
  in
  (* Single-word store of an immutable list: concurrent writers (two
     domains analysing the same proc, which the wavefront never schedules)
     could at worst drop each other's entry, never corrupt one. *)
  p.Ssa.memo <- Scc_memo entries

(** Run SCC on an SSA procedure.  Equal entry/call-def vectors return the
    memoized result of the earlier identical run. *)
let run ?(config = default_config) (p : Ssa.proc) : result =
  Trace.span
    ~args:(fun () -> [ ("proc", p.Ssa.name) ])
    "scc:solve"
    (fun () ->
      Trace.incr c_runs;
      let entry = resolve_entry config p in
      let cdv = resolve_cdv config p in
      match memo_find p ~entry ~cdv with
      | Some e ->
          Trace.incr c_memo_hits;
          e.m_result
      | None ->
          let r = run_kernel p ~entry ~cdv in
          memo_add p ~entry ~cdv r;
          r)

(* -- Reference implementation ------------------------------------------ *)

(** The original list/Hashtbl/Queue formulation, kept as the executable
    specification of {!run}: same fixpoint, no arena, no dedup, no memo.
    The kernel is property-tested against it value-for-value and
    edge-for-edge (the SCC fixpoint is unique, so any drain order must
    agree). *)
let run_reference ?(config = default_config) (p : Ssa.proc) : result =
  let values = Array.make (max 1 p.Ssa.n_names) Lattice.Top in
  let block_executable = Array.make (Array.length p.Ssa.blocks) false in
  let edge_exec = Bytes.make ((p.Ssa.n_edges + 8) / 8) '\000' in
  let flow_wl : int Queue.t = Queue.create () in
  let ssa_wl : Ssa.use_site Queue.t = Queue.create () in
  let res = { proc = p; values; block_executable; edge_exec } in
  let lower (n : Ssa.name) (v : Lattice.t) =
    let old = values.(n.Ssa.id) in
    let merged = Lattice.meet old v in
    if not (Lattice.equal old merged) then begin
      assert (Lattice.le merged old);
      values.(n.Ssa.id) <- merged;
      List.iter (fun site -> Queue.add site ssa_wl) (Ssa.uses_of p n.Ssa.id)
    end
  in
  let visit_phi b pi =
    let ph = p.Ssa.blocks.(b).Ssa.phis.(pi) in
    let v = ref Lattice.Top in
    Array.iteri
      (fun k (_, (n : Ssa.name)) ->
        if bit_get edge_exec ph.Ssa.p_edges.(k) then
          v := Lattice.meet !v values.(n.Ssa.id))
      ph.Ssa.p_args;
    lower ph.Ssa.p_name !v
  in
  let visit_instr b i =
    match p.Ssa.blocks.(b).Ssa.instrs.(i) with
    | Ssa.Assign (n, rhs) ->
        let v =
          match rhs with
          | Ssa.Copy o -> operand_value res o
          | Ssa.Unop (op, o) -> Lattice.eval_unop op (operand_value res o)
          | Ssa.Binop (op, a, c) ->
              Lattice.eval_binop op (operand_value res a) (operand_value res c)
        in
        lower n v
    | Ssa.Kill kills -> Array.iter (fun (_, n) -> lower n Lattice.Bot) kills
    | Ssa.Call c ->
        Array.iter
          (fun (base, n) ->
            lower n (config.call_def_value ~callee:c.Ssa.c_callee base))
          c.Ssa.c_defs
    | Ssa.Print _ -> ()
  in
  let mark_edge e = if not (bit_get edge_exec e) then Queue.add e flow_wl in
  let visit_term b =
    match p.Ssa.blocks.(b).Ssa.term with
    | Ssa.Goto _ -> mark_edge p.Ssa.edge_base.(b)
    | Ssa.Ret -> ()
    | Ssa.Cond (c, t, f) -> (
        let te = p.Ssa.edge_base.(b) in
        let fe = if t = f then te else te + 1 in
        match operand_value res c with
        | Lattice.Top -> ()
        | Lattice.Const v -> if Value.truthy v then mark_edge te else mark_edge fe
        | Lattice.Bot ->
            mark_edge te;
            if fe <> te then mark_edge fe)
  in
  let visit_block b =
    Array.iteri (fun pi _ -> visit_phi b pi) p.Ssa.blocks.(b).Ssa.phis;
    Array.iteri (fun i _ -> visit_instr b i) p.Ssa.blocks.(b).Ssa.instrs;
    visit_term b
  in
  Array.iter
    (fun ((v : Ir.var), (n : Ssa.name)) ->
      let init =
        match v.Ir.vkind with
        | Ir.Temp -> Lattice.Bot
        | Ir.Local | Ir.Formal _ | Ir.Global -> config.entry_env v
      in
      values.(n.Ssa.id) <- init)
    p.Ssa.entry_names;
  block_executable.(p.Ssa.entry) <- true;
  visit_block p.Ssa.entry;
  while not (Queue.is_empty flow_wl && Queue.is_empty ssa_wl) do
    while not (Queue.is_empty flow_wl) do
      let e = Queue.take flow_wl in
      if not (bit_get edge_exec e) then begin
        bit_set edge_exec e;
        let d = p.Ssa.edge_dst.(e) in
        let first_visit = not block_executable.(d) in
        block_executable.(d) <- true;
        if first_visit then visit_block d
        else Array.iteri (fun pi _ -> visit_phi d pi) p.Ssa.blocks.(d).Ssa.phis
      end
    done;
    while not (Queue.is_empty ssa_wl) do
      match Queue.take ssa_wl with
      | Ssa.Uphi (b, pi) -> if block_executable.(b) then visit_phi b pi
      | Ssa.Uinstr (b, i) -> if block_executable.(b) then visit_instr b i
      | Ssa.Uterm b -> if block_executable.(b) then visit_term b
    done
  done;
  res

(* ------------------------------------------------------------------ *)
(* Result queries used by the interprocedural phases and the metrics   *)
(* ------------------------------------------------------------------ *)

(** Call sites together with executability: the FS ICP only propagates
    argument and global values from {e executable} call sites — an
    unreachable call contributes nothing to the callee's entry meet, which
    is how "the path containing y = 0 is not executed" of paper Figure 1
    sharpens the interprocedural solution. *)
let executable_call_sites (r : result) : (int * int * Ssa.call) list =
  Ssa.call_sites r.proc
  |> List.filter (fun (b, _, _) -> r.block_executable.(b))

(** Lattice value of argument [j] at call [c] (which must be executable). *)
let arg_value (r : result) (c : Ssa.call) j : Lattice.t =
  operand_value r c.Ssa.c_args.(j).Ssa.sa_operand

(** Lattice value of global [g] immediately before call [c], if the SSA
    construction recorded it (i.e. [g] is in the callee's REF closure).
    Two binary searches: var slot, then the call's compact slot table. *)
let global_at_call (r : result) (c : Ssa.call) (g : Ir.var) : Lattice.t option =
  let s = Ssa.slot_of r.proc g in
  if s < 0 then None
  else begin
    let slots = c.Ssa.c_guse_slots in
    let lo = ref 0 and hi = ref (Array.length slots - 1) in
    let id = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let sm = slots.(mid) in
      if sm = s then begin id := c.Ssa.c_guse_ids.(mid); lo := !hi + 1 end
      else if sm < s then lo := mid + 1
      else hi := mid - 1
    done;
    if !id < 0 then None else Some r.values.(!id)
  end

(** Count of {e uses} of source-level variables (not compiler temporaries)
    that are proved constant in executable code: the "intraprocedural
    substitutions" metric used by Grove–Torczon and Metzger–Stroud, which
    Table 5 compares against.  Each textual use site counts once; phi
    arguments are not uses (they have no textual counterpart). *)
let substitution_count (r : result) : int =
  let p = r.proc in
  let count = ref 0 in
  let count_op o =
    match o with
    | Ssa.Oconst _ -> ()
    | Ssa.Oname n ->
        if Ir.Var.is_source n.Ssa.base && Lattice.is_const r.values.(n.Ssa.id)
        then incr count
  in
  Array.iteri
    (fun b (blk : Ssa.block) ->
      if r.block_executable.(b) then begin
        Array.iter
          (fun ins ->
            match ins with
            | Ssa.Assign (_, Ssa.Copy o) | Ssa.Assign (_, Ssa.Unop (_, o)) ->
                count_op o
            | Ssa.Assign (_, Ssa.Binop (_, x, y)) ->
                count_op x;
                count_op y
            | Ssa.Kill _ -> ()
            | Ssa.Call c ->
                Array.iter (fun (a : Ssa.ssa_arg) -> count_op a.Ssa.sa_operand) c.Ssa.c_args
            | Ssa.Print o -> count_op o)
          blk.Ssa.instrs;
        match blk.Ssa.term with
        | Ssa.Cond (c, _, _) -> count_op c
        | Ssa.Goto _ | Ssa.Ret -> ()
      end)
    p.blocks;
  !count

(** Names of source variables proved constant somewhere (diagnostics). *)
let constant_names (r : result) : (Ssa.name * Value.t) list =
  let acc = ref [] in
  let add n =
    match r.values.(n.Ssa.id) with
    | Lattice.Const v when Ir.Var.is_source n.Ssa.base -> acc := (n, v) :: !acc
    | _ -> ()
  in
  Array.iter (fun (_, n) -> add n) r.proc.entry_names;
  Array.iter
    (fun (blk : Ssa.block) ->
      Array.iter (fun (ph : Ssa.phi) -> add ph.Ssa.p_name) blk.Ssa.phis;
      Array.iter
        (function
          | Ssa.Assign (n, _) -> add n
          | Ssa.Kill kills -> Array.iter (fun (_, n) -> add n) kills
          | Ssa.Call c -> Array.iter (fun (_, n) -> add n) c.Ssa.c_defs
          | Ssa.Print _ -> ())
        blk.Ssa.instrs)
    r.proc.blocks;
  List.rev !acc

(** Value of variable [v] at procedure exit: the meet, over all {e
    executable} return blocks, of the reaching SSA version's value.  [Top]
    if no return block is executable (the procedure cannot return — then a
    call to it never completes, so any claim about post-call values is
    vacuous).  Drives the return-constants extension (paper §3.2).  O(1)
    per return block via the [exit_ids] slot tables. *)
let exit_value (r : result) (v : Ir.var) : Lattice.t =
  let p = r.proc in
  let s = Ssa.slot_of p v in
  Array.fold_left
    (fun acc (b, tbl) ->
      if r.block_executable.(b) then
        if s >= 0 && tbl.(s) >= 0 then Lattice.meet acc r.values.(tbl.(s))
        else Lattice.Bot (* not recorded: unknown *)
      else acc)
    Lattice.Top p.Ssa.exit_ids
