(** The three-level constant propagation lattice (Kildall / Wegman–Zadeck):
    ⊤ above one element per constant value above ⊥.  Shared by the
    intraprocedural SCC engine and every interprocedural method, so that
    "constant" means the same thing everywhere. *)

type t =
  | Top  (** no evidence yet — the optimistic initial value *)
  | Const of Fsicp_lang.Value.t  (** proven to be exactly this value *)
  | Bot  (** not a constant *)

val equal : t -> t -> bool

(** Greatest lower bound.  [meet Top x = x]; [meet Bot _ = Bot]; two equal
    constants stay, different constants collapse to [Bot]. *)
val meet : t -> t -> t

(** Partial order: [le a b] iff a ⊑ b, i.e. [Bot] ⊑ [Const c] ⊑ [Top]. *)
val le : t -> t -> bool

val is_const : t -> bool
val const_value : t -> Fsicp_lang.Value.t option

(** Element height: [Top] = 2, [Const _] = 1, [Bot] = 0.  Values only ever
    descend during propagation; tests use this to check monotonicity. *)
val height : t -> int

val pp : t Fmt.t
val to_string : t -> string

(** Abstract evaluation of the language operators.  [Top] operands keep the
    result [Top] (it will be re-evaluated when they lower); a folding error
    (division by zero) yields [Bot]. *)
val eval_unop : Fsicp_lang.Ops.unop -> t -> t

val eval_binop : Fsicp_lang.Ops.binop -> t -> t -> t

(** Packed lattice words: one immediate [int] per element, for the
    allocation-free solver hot path.  [0] is [Top], [1] is [Bot]; constants
    carry a 3-bit tag — small integers inline (tag 2, 60-bit signed
    payload), everything else (reals, huge integers) as an index into the
    process-global {!Prog.Valpool} side table (tag 3).  The encoding is
    canonical: [equal] on words is plain integer [=] and agrees with
    {!equal} on the boxed elements they decode to.  All operations mirror
    the boxed ones bit-for-bit; convert with {!P.of_t}/{!P.to_t} only at
    the [Solution.t]/print boundary. *)
module P : sig
  val top : int
  val bot : int
  val is_const : int -> bool

  val of_int : int -> int
  (** Packed [Const (Int n)], inline when [n] fits in 60 bits. *)

  val of_value : Fsicp_lang.Value.t -> int
  val of_t : t -> int
  val to_t : int -> t

  val const_value : int -> Fsicp_lang.Value.t
  (** Decode a constant word.  Raises [Invalid_argument] on [top]/[bot]. *)

  val equal : int -> int -> bool
  val meet : int -> int -> int
  val le : int -> int -> bool
  val height : int -> int

  val is_real_const : int -> bool
  (** Is the word a [Const (Real _)]?  (False on [top]/[bot].) *)

  val copy : int -> int
  (** Packed copy binding "equal to entry slot [k]" — the copy-constant
      method's lattice level between the constants and ⊥.  [is_const] is
      false on it, [meet] collapses it against anything but itself, and
      all arithmetic over it yields [bot].  Never boxed: {!to_t} raises,
      so copy words must not escape into a [Solution.t]. *)

  val is_copy : int -> bool

  val copy_slot : int -> int
  (** Slot of a copy word.  Raises [Invalid_argument] otherwise. *)

  val absent : int
  (** Not a lattice word: an out-of-band sentinel no encoding produces. *)

  val truthy : int -> bool
  (** Truthiness of a constant word; meaningless on [top]/[bot]. *)

  val eval_unop : Fsicp_lang.Ops.unop -> int -> int
  val eval_binop : Fsicp_lang.Ops.binop -> int -> int -> int
end
