(** The three-level constant propagation lattice (Kildall / Wegman–Zadeck):
    ⊤ above one element per constant value above ⊥.  Shared by the
    intraprocedural SCC engine and every interprocedural method, so that
    "constant" means the same thing everywhere. *)

type t =
  | Top  (** no evidence yet — the optimistic initial value *)
  | Const of Fsicp_lang.Value.t  (** proven to be exactly this value *)
  | Bot  (** not a constant *)

val equal : t -> t -> bool

(** Greatest lower bound.  [meet Top x = x]; [meet Bot _ = Bot]; two equal
    constants stay, different constants collapse to [Bot]. *)
val meet : t -> t -> t

(** Partial order: [le a b] iff a ⊑ b, i.e. [Bot] ⊑ [Const c] ⊑ [Top]. *)
val le : t -> t -> bool

val is_const : t -> bool
val const_value : t -> Fsicp_lang.Value.t option

(** Element height: [Top] = 2, [Const _] = 1, [Bot] = 0.  Values only ever
    descend during propagation; tests use this to check monotonicity. *)
val height : t -> int

val pp : t Fmt.t
val to_string : t -> string

(** Abstract evaluation of the language operators.  [Top] operands keep the
    result [Top] (it will be re-evaluated when they lower); a folding error
    (division by zero) yields [Bot]. *)
val eval_unop : Fsicp_lang.Ops.unop -> t -> t

val eval_binop : Fsicp_lang.Ops.binop -> t -> t -> t
