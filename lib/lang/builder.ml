(** A small combinator DSL for constructing MiniFort programs in OCaml.

    Used by the synthetic workload generator and by tests; avoids going
    through concrete syntax for programmatically generated programs.

    {[
      let prog =
        Builder.(
          program
            ~blockdata:[ ("g", Value.Int 3) ]
            [
              proc "main" [] [ call "sub1" [ i 0 ] ];
              proc "sub1" [ "f1" ]
                [
                  "x" <-- i 1;
                  if_ (v "f1" <> i 0) [ "y" <-- i 1 ] [ "y" <-- i 0 ];
                  call "sub2" [ v "y"; i 4; v "f1"; v "x" ];
                ];
            ])
    ]} *)

let i n = Ast.int n
let r x = Ast.real x
let v x = Ast.var x
let ( + ) a b = Ast.binary Ops.Add a b
let ( - ) a b = Ast.binary Ops.Sub a b
let ( * ) a b = Ast.binary Ops.Mul a b
let ( / ) a b = Ast.binary Ops.Div a b
let ( % ) a b = Ast.binary Ops.Mod a b
let ( == ) a b = Ast.binary Ops.Eq a b
let ( <> ) a b = Ast.binary Ops.Ne a b
let ( < ) a b = Ast.binary Ops.Lt a b
let ( <= ) a b = Ast.binary Ops.Le a b
let ( > ) a b = Ast.binary Ops.Gt a b
let ( >= ) a b = Ast.binary Ops.Ge a b
let ( &&& ) a b = Ast.binary Ops.And a b
let ( ||| ) a b = Ast.binary Ops.Or a b
let neg e = Ast.unary Ops.Neg e
let not_ e = Ast.unary Ops.Not e
let ( <-- ) x e = Ast.assign x e
let if_ c t e = Ast.if_ c t e
let when_ c t = Ast.if_ c t []
let while_ c b = Ast.while_ c b
let call p args = Ast.call p args
let return_ = Ast.return_ ()
let print e = Ast.print e
let proc name formals body : Ast.proc =
  { Ast.pname = name; formals; body; ppos = Ast.no_pos }

(** [program ?globals ?blockdata ?main procs] assembles a program.  Globals
    are the union of [globals] and the block-data names, preserving order.
    Defaults: no globals, entry point ["main"]. *)
let program ?(globals = []) ?(blockdata = []) ?(main = "main") procs :
    Ast.program =
  let bd_names = List.map fst blockdata in
  let all = globals @ List.filter (fun g -> not (List.mem g globals)) bd_names in
  { Ast.globals = all; blockdata; procs; main }

(** Assemble and check in one step; raises {!Sema.Illformed} on errors. *)
let program_exn ?globals ?blockdata ?main procs =
  let p = program ?globals ?blockdata ?main procs in
  Sema.check_exn p;
  p
