(** Pretty-printer for MiniFort.  Output is valid concrete syntax:
    reparsing a printed program yields a structurally equal AST (up to
    positions and global-declaration order), a property the test suite
    checks. *)

val pp_expr : ?prec:int -> Ast.expr Fmt.t
val pp_stmt : indent:int -> Ast.stmt Fmt.t
val pp_block : indent:int -> Ast.stmt list Fmt.t
val pp_proc : Ast.proc Fmt.t
val pp_program : Ast.program Fmt.t

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val proc_to_string : Ast.proc -> string
val program_to_string : Ast.program -> string
