(** Semantic checks for MiniFort programs.

    A program must pass [check] before being fed to the lowering and analysis
    pipeline; the pipeline assumes well-formedness (e.g. that every call
    resolves and arities match) and would otherwise raise. *)

type error = {
  msg : string;
  where : string;  (** procedure name, or "<program>" *)
  pos : Ast.pos;
}

let pp_error ppf { msg; where; pos } =
  Fmt.pf ppf "%s at %a: %s" where Ast.pp_pos pos msg

exception Illformed of error list

(** Variable classification, shared with lowering. *)
type var_class = Formal of int | Global | Local

(** [classify ~globals ~formals x] resolves identifier [x] inside a procedure
    with the given formals, under the program's global declarations.
    Formals shadow globals of the same name. *)
let classify ~globals ~formals x : var_class =
  let rec find_formal i = function
    | [] -> None
    | f :: _ when String.equal f x -> Some i
    | _ :: tl -> find_formal (i + 1) tl
  in
  match find_formal 0 formals with
  | Some i -> Formal i
  | None -> if List.mem x globals then Global else Local

(** Hashed variant of {!classify} for per-procedure bulk resolution: the
    lookup tables are built once, so each query is O(1) instead of a list
    scan over the program's globals.  Identical results to {!classify}. *)
let classifier ~globals ~formals : string -> var_class =
  let tbl = Hashtbl.create (4 * (List.length formals + 1)) in
  List.iter (fun g -> Hashtbl.replace tbl g Global) globals;
  (* Formals shadow globals of the same name; first occurrence wins, as in
     [classify]'s left-to-right scan. *)
  List.iteri
    (fun i f -> if not (Hashtbl.mem tbl f) || Hashtbl.find tbl f = Global
                then Hashtbl.replace tbl f (Formal i))
    formals;
  fun x ->
    match Hashtbl.find_opt tbl x with Some c -> c | None -> Local

let check (prog : Ast.program) : (unit, error list) result =
  let errs = ref [] in
  let err ?(pos = Ast.no_pos) where fmt =
    Fmt.kstr (fun msg -> errs := { msg; where; pos } :: !errs) fmt
  in
  let where_prog = "<program>" in
  (* Duplicate globals *)
  let rec dup_check seen = function
    | [] -> ()
    | g :: tl ->
        if List.mem g seen then err where_prog "duplicate global '%s'" g;
        dup_check (g :: seen) tl
  in
  dup_check [] prog.globals;
  (* Block data refers to declared globals, no duplicate initialisation *)
  let rec bd_check seen = function
    | [] -> ()
    | (g, _) :: tl ->
        if not (List.mem g prog.globals) then
          err where_prog "block data initialises undeclared global '%s'" g;
        if List.mem g seen then
          err where_prog "global '%s' initialised twice in block data" g;
        bd_check (g :: seen) tl
  in
  bd_check [] prog.blockdata;
  (* Procedure table; duplicate procedures *)
  let ptable = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.proc) ->
      if Hashtbl.mem ptable p.pname then
        err ~pos:p.ppos where_prog "duplicate procedure '%s'" p.pname
      else Hashtbl.add ptable p.pname p)
    prog.procs;
  (* Entry point *)
  (match Hashtbl.find_opt ptable prog.main with
  | None -> err where_prog "missing entry procedure '%s'" prog.main
  | Some m ->
      if m.formals <> [] then
        err ~pos:m.ppos where_prog "entry procedure '%s' must take no formals"
          prog.main);
  (* Per-procedure checks *)
  List.iter
    (fun (p : Ast.proc) ->
      let rec dup_formals seen = function
        | [] -> ()
        | f :: tl ->
            if List.mem f seen then
              err ~pos:p.ppos p.pname "duplicate formal '%s'" f;
            dup_formals (f :: seen) tl
      in
      dup_formals [] p.formals;
      List.iter
        (fun f ->
          if Hashtbl.mem ptable f then
            err ~pos:p.ppos p.pname
              "formal '%s' has the same name as a procedure" f)
        p.formals;
      Ast.iter_stmts
        (fun s ->
          match s.sdesc with
          | Ast.Call (q, args) -> (
              match Hashtbl.find_opt ptable q with
              | None ->
                  err ~pos:s.spos p.pname "call to undefined procedure '%s'" q
              | Some callee ->
                  let want = List.length callee.formals in
                  let got = List.length args in
                  if want <> got then
                    err ~pos:s.spos p.pname
                      "call to '%s' passes %d argument(s), expected %d" q got
                      want)
          | Ast.Assign (x, _) ->
              if Hashtbl.mem ptable x then
                err ~pos:s.spos p.pname
                  "assignment to '%s' which is a procedure name" x
          | Ast.If _ | Ast.While _ | Ast.Return | Ast.Print _ -> ())
        p.body)
    prog.procs;
  match List.rev !errs with [] -> Ok () | es -> Error es

(** [check_exn prog] raises {!Illformed} when [check] reports errors. *)
let check_exn prog =
  match check prog with Ok () -> () | Error es -> raise (Illformed es)

let errors_to_string es = Fmt.str "%a" (Fmt.list ~sep:Fmt.cut pp_error) es
