(** Hand-written lexer for MiniFort concrete syntax.

    The token stream carries source positions for error reporting.  Comments
    run from [//] or [#] to end of line. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KW_GLOBAL
  | KW_BLOCKDATA
  | KW_PROC
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_CALL
  | KW_RETURN
  | KW_PRINT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN  (** [=] *)
  | OP_PLUS
  | OP_MINUS
  | OP_STAR
  | OP_SLASH
  | OP_PERCENT
  | OP_EQ  (** [==] *)
  | OP_NE
  | OP_LT
  | OP_LE
  | OP_GT
  | OP_GE
  | OP_ANDAND
  | OP_OROR
  | OP_BANG
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | REAL r -> Printf.sprintf "%g" r
  | IDENT s -> s
  | KW_GLOBAL -> "global"
  | KW_BLOCKDATA -> "blockdata"
  | KW_PROC -> "proc"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_CALL -> "call"
  | KW_RETURN -> "return"
  | KW_PRINT -> "print"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | OP_PLUS -> "+"
  | OP_MINUS -> "-"
  | OP_STAR -> "*"
  | OP_SLASH -> "/"
  | OP_PERCENT -> "%"
  | OP_EQ -> "=="
  | OP_NE -> "!="
  | OP_LT -> "<"
  | OP_LE -> "<="
  | OP_GT -> ">"
  | OP_GE -> ">="
  | OP_ANDAND -> "&&"
  | OP_OROR -> "||"
  | OP_BANG -> "!"
  | EOF -> "<eof>"

exception Error of string * Ast.pos

let error pos fmt = Fmt.kstr (fun s -> raise (Error (s, pos))) fmt

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create src = { src; off = 0; line = 1; bol = 0 }
let pos lx : Ast.pos = { line = lx.line; col = lx.off - lx.bol + 1 }
let peek_char lx = if lx.off >= String.length lx.src then None else Some lx.src.[lx.off]

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.off + 1
  | _ -> ());
  lx.off <- lx.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '#' ->
      skip_line lx;
      skip_ws lx
  | Some '/' when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '/' ->
      skip_line lx;
      skip_ws lx
  | _ -> ()

and skip_line lx =
  match peek_char lx with
  | Some '\n' | None -> ()
  | Some _ ->
      advance lx;
      skip_line lx

let keyword_of_string = function
  | "global" -> Some KW_GLOBAL
  | "blockdata" -> Some KW_BLOCKDATA
  | "proc" -> Some KW_PROC
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "call" -> Some KW_CALL
  | "return" -> Some KW_RETURN
  | "print" -> Some KW_PRINT
  | _ -> None

let lex_number lx p =
  let start = lx.off in
  let seen_dot = ref false and seen_exp = ref false in
  let rec go () =
    match peek_char lx with
    | Some c when is_digit c ->
        advance lx;
        go ()
    | Some '.' when not (!seen_dot || !seen_exp) ->
        seen_dot := true;
        advance lx;
        go ()
    | Some ('e' | 'E') when not !seen_exp ->
        seen_exp := true;
        advance lx;
        (match peek_char lx with
        | Some ('+' | '-') -> advance lx
        | _ -> ());
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub lx.src start (lx.off - start) in
  if !seen_dot || !seen_exp then
    match float_of_string_opt text with
    | Some r -> REAL r
    | None -> error p "malformed real literal %S" text
  else
    match int_of_string_opt text with
    | Some n -> INT n
    | None -> error p "malformed integer literal %S" text

(** [next lx] returns the next token and its start position. *)
let next lx : token * Ast.pos =
  skip_ws lx;
  let p = pos lx in
  match peek_char lx with
  | None -> (EOF, p)
  | Some c when is_digit c -> (lex_number lx p, p)
  | Some c when is_ident_start c ->
      let start = lx.off in
      let rec go () =
        match peek_char lx with
        | Some c when is_ident_char c ->
            advance lx;
            go ()
        | _ -> ()
      in
      go ();
      let text = String.sub lx.src start (lx.off - start) in
      let tok =
        match keyword_of_string text with
        | Some kw -> kw
        | None -> (
            (* Reserved real literals, so that {!Value.pp}'s explicit
               nan/inf forms read back as the floats they denote. *)
            match text with
            | "nan" -> REAL Float.nan
            | "inf" -> REAL Float.infinity
            | _ -> IDENT text)
      in
      (tok, p)
  | Some c ->
      let two ifnext single double =
        advance lx;
        match peek_char lx with
        | Some c' when c' = ifnext ->
            advance lx;
            double
        | _ -> single
      in
      let tok =
        match c with
        | '(' -> advance lx; LPAREN
        | ')' -> advance lx; RPAREN
        | '{' -> advance lx; LBRACE
        | '}' -> advance lx; RBRACE
        | ',' -> advance lx; COMMA
        | ';' -> advance lx; SEMI
        | '+' -> advance lx; OP_PLUS
        | '-' -> advance lx; OP_MINUS
        | '*' -> advance lx; OP_STAR
        | '/' -> advance lx; OP_SLASH
        | '%' -> advance lx; OP_PERCENT
        | '=' -> two '=' ASSIGN OP_EQ
        | '!' -> two '=' OP_BANG OP_NE
        | '<' -> two '=' OP_LT OP_LE
        | '>' -> two '=' OP_GT OP_GE
        | '&' ->
            advance lx;
            (match peek_char lx with
            | Some '&' -> advance lx; OP_ANDAND
            | _ -> error p "expected '&&'")
        | '|' ->
            advance lx;
            (match peek_char lx with
            | Some '|' -> advance lx; OP_OROR
            | _ -> error p "expected '||'")
        | c -> error p "unexpected character %C" c
      in
      (tok, p)

(** Tokenise an entire string (testing convenience). *)
let tokens_of_string src =
  let lx = create src in
  let rec go acc =
    match next lx with
    | EOF, _ -> List.rev (EOF :: acc)
    | tok, _ -> go (tok :: acc)
  in
  go []
