(** Runtime and compile-time constant values of MiniFort.

    The same value domain is used by the reference interpreter
    ({!Fsicp_interp}), by the sparse conditional constant propagation lattice
    ({!Fsicp_scc.Lattice}) and by every interprocedural method, so that a
    "propagated constant" always means the same thing the interpreter would
    compute.

    MiniFort has two scalar types, mirroring the Fortran subset the paper
    measures: integers and reals.  Mixed-mode arithmetic promotes to real,
    comparisons and logical operators yield integer 0/1, and division by zero
    is a runtime error (the evaluator returns [None]; the constant propagator
    maps this to bottom). *)

type t =
  | Int of int
  | Real of float

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Int _, Real _ | Real _, Int _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Int _, Real _ -> -1
  | Real _, Int _ -> 1

let is_real = function Real _ -> true | Int _ -> false

(** Truthiness, used by [if]/[while] conditions and the logical operators:
    any non-zero value is true (Fortran logicals are modelled as integers). *)
let truthy = function Int n -> n <> 0 | Real r -> not (Float.equal r 0.0)

let of_bool b = Int (if b then 1 else 0)

let to_float = function Int n -> float_of_int n | Real r -> r

(** Shortest decimal representation that parses back to exactly [r]
    (always carrying a decimal point or exponent so the lexer reads it as a
    real), with explicit [nan] / [inf] / [-inf] spellings the lexer also
    accepts.  Round-trip exactness keeps reparsing a pretty-printed program
    from changing float semantics — the golden and observational-equivalence
    oracles depend on it. *)
let real_to_string r =
  if Float.is_nan r then "nan"
  else if r = Float.infinity then "inf"
  else if r = Float.neg_infinity then "-inf"
  else
    let shortest =
      let s15 = Printf.sprintf "%.15g" r in
      if float_of_string s15 = r then s15
      else
        let s16 = Printf.sprintf "%.16g" r in
        if float_of_string s16 = r then s16 else Printf.sprintf "%.17g" r
    in
    if String.exists (fun c -> c = '.' || c = 'e') shortest then shortest
    else shortest ^ ".0"

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Real r -> Fmt.string ppf (real_to_string r)

let to_string v = Fmt.str "%a" pp v

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval_unop (op : Ops.unop) (v : t) : t option =
  match (op, v) with
  | Ops.Neg, Int n -> Some (Int (-n))
  | Ops.Neg, Real r -> Some (Real (-.r))
  | Ops.Not, v -> Some (of_bool (not (truthy v)))

let arith op_int op_float a b : t option =
  match (a, b) with
  | Int x, Int y -> Some (Int (op_int x y))
  | _ -> Some (Real (op_float (to_float a) (to_float b)))

(* Numeric comparison promotes mixed operands to real, unlike the structural
   [equal]/[compare] above which distinguish Int 1 from Real 1.0 (the lattice
   needs structural equality; the language needs numeric equality). *)
let equal_numeric a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | _ -> Float.equal (to_float a) (to_float b)

let compare_numeric a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | _ -> Float.compare (to_float a) (to_float b)

(** [eval_binop op a b] is [Some r] when the operation is defined, [None] on
    a runtime error (division or modulus by zero).  Constant folding in the
    analyses uses exactly this function, which keeps the propagated constants
    bit-identical to interpreter results. *)
let eval_binop (op : Ops.binop) (a : t) (b : t) : t option =
  match op with
  | Ops.Add -> arith ( + ) ( +. ) a b
  | Ops.Sub -> arith ( - ) ( -. ) a b
  | Ops.Mul -> arith ( * ) ( *. ) a b
  | Ops.Div -> (
      match (a, b) with
      | _, Int 0 -> None
      | Int x, Int y -> Some (Int (x / y))
      | _, Real r when Float.equal r 0.0 -> None
      | _ -> Some (Real (to_float a /. to_float b)))
  | Ops.Mod -> (
      match (a, b) with
      | _, Int 0 -> None
      | Int x, Int y -> Some (Int (x mod y))
      | _, Real r when Float.equal r 0.0 -> None
      | _ -> Some (Real (Float.rem (to_float a) (to_float b))))
  | Ops.Eq -> Some (of_bool (equal_numeric a b))
  | Ops.Ne -> Some (of_bool (not (equal_numeric a b)))
  | Ops.Lt -> Some (of_bool (compare_numeric a b < 0))
  | Ops.Le -> Some (of_bool (compare_numeric a b <= 0))
  | Ops.Gt -> Some (of_bool (compare_numeric a b > 0))
  | Ops.Ge -> Some (of_bool (compare_numeric a b >= 0))
  | Ops.And -> Some (of_bool (truthy a && truthy b))
  | Ops.Or -> Some (of_bool (truthy a || truthy b))
