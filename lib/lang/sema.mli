(** Semantic checks for MiniFort programs.  The analysis pipeline assumes
    [check]-clean input (calls resolve, arities match, no duplicate
    declarations). *)

type error = {
  msg : string;
  where : string;  (** procedure name, or ["<program>"] *)
  pos : Ast.pos;
}

val pp_error : error Fmt.t

exception Illformed of error list

(** Variable classification shared with lowering: formals shadow globals;
    anything else is a procedure-local. *)
type var_class = Formal of int | Global | Local

val classify :
  globals:string list -> formals:string list -> string -> var_class

(** Hashed variant of {!classify} for bulk per-procedure resolution: builds
    the lookup table once (O(globals + formals)) so each subsequent query is
    O(1).  Result-identical to {!classify} for every identifier. *)
val classifier :
  globals:string list -> formals:string list -> string -> var_class

val check : Ast.program -> (unit, error list) result

(** @raise Illformed when [check] reports errors. *)
val check_exn : Ast.program -> unit

val errors_to_string : error list -> string
