(** Recursive-descent parser for MiniFort.

    Grammar (EBNF):
    {v
    program   ::= toplevel*
    toplevel  ::= "global" ident ("," ident)* ";"
                | "blockdata" "{" (ident "=" literal ";")* "}"
                | "proc" ident "(" params? ")" block
    params    ::= ident ("," ident)*
    block     ::= "{" stmt* "}"
    stmt      ::= ident "=" expr ";"
                | "if" "(" expr ")" block ("else" block)?
                | "while" "(" expr ")" block
                | "call" ident "(" args? ")" ";"
                | "return" ";"
                | "print" expr ";"
    expr      ::= binary expression over atoms, C-like precedence
    atom      ::= literal | ident | "(" expr ")" | "-" atom | "!" atom
    literal   ::= int | real | "-" int | "-" real
    v}

    The entry procedure is the one named [main]; {!Sema} checks it exists.
    Block-data identifiers are implicitly added to the global list. *)

exception Error of string * Ast.pos

type t = {
  lx : Lexer.t;
  mutable tok : Lexer.token;
  mutable tpos : Ast.pos;
}

let error st fmt =
  Fmt.kstr (fun s -> raise (Error (s, st.tpos))) fmt

let advance st =
  let tok, pos = Lexer.next st.lx in
  st.tok <- tok;
  st.tpos <- pos

let create src =
  let lx = Lexer.create src in
  let tok, tpos = Lexer.next lx in
  { lx; tok; tpos }

let expect st tok =
  if st.tok = tok then advance st
  else
    error st "expected '%s' but found '%s'" (Lexer.token_to_string tok)
      (Lexer.token_to_string st.tok)

let expect_ident st =
  match st.tok with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> error st "expected identifier but found '%s'" (Lexer.token_to_string t)

let binop_of_token = function
  | Lexer.OP_PLUS -> Some Ops.Add
  | Lexer.OP_MINUS -> Some Ops.Sub
  | Lexer.OP_STAR -> Some Ops.Mul
  | Lexer.OP_SLASH -> Some Ops.Div
  | Lexer.OP_PERCENT -> Some Ops.Mod
  | Lexer.OP_EQ -> Some Ops.Eq
  | Lexer.OP_NE -> Some Ops.Ne
  | Lexer.OP_LT -> Some Ops.Lt
  | Lexer.OP_LE -> Some Ops.Le
  | Lexer.OP_GT -> Some Ops.Gt
  | Lexer.OP_GE -> Some Ops.Ge
  | Lexer.OP_ANDAND -> Some Ops.And
  | Lexer.OP_OROR -> Some Ops.Or
  | _ -> None

let rec parse_expr st = parse_binary st 1

(* Precedence climbing: parse operators of precedence >= [min_prec];
   all binary operators are left-associative. *)
and parse_binary st min_prec =
  let lhs = ref (parse_atom st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token st.tok with
    | Some op when Ops.binop_precedence op >= min_prec ->
        advance st;
        let rhs = parse_binary st (Ops.binop_precedence op + 1) in
        lhs := Ast.Binary (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_atom st =
  match st.tok with
  | Lexer.INT n ->
      advance st;
      Ast.Const (Value.Int n)
  | Lexer.REAL r ->
      advance st;
      Ast.Const (Value.Real r)
  | Lexer.IDENT x ->
      advance st;
      Ast.Var x
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.OP_MINUS ->
      advance st;
      (* Fold negation of literals so that [-3] is a constant, matching the
         paper's notion of an immediate (literal) argument. *)
      (match parse_atom st with
      | Ast.Const (Value.Int n) -> Ast.Const (Value.Int (-n))
      | Ast.Const (Value.Real r) -> Ast.Const (Value.Real (-.r))
      | e -> Ast.Unary (Ops.Neg, e))
  | Lexer.OP_BANG ->
      advance st;
      Ast.Unary (Ops.Not, parse_atom st)
  | t -> error st "expected expression but found '%s'" (Lexer.token_to_string t)

let parse_literal st =
  match parse_atom st with
  | Ast.Const v -> v
  | _ -> error st "expected a literal constant"

let rec parse_stmt st : Ast.stmt =
  let pos = st.tpos in
  match st.tok with
  | Lexer.IDENT x ->
      advance st;
      expect st Lexer.ASSIGN;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.assign ~pos x e
  | Lexer.KW_IF ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block st in
      let else_ =
        if st.tok = Lexer.KW_ELSE then (
          advance st;
          parse_block st)
        else []
      in
      Ast.if_ ~pos c then_ else_
  | Lexer.KW_WHILE ->
      advance st;
      expect st Lexer.LPAREN;
      let c = parse_expr st in
      expect st Lexer.RPAREN;
      let body = parse_block st in
      Ast.while_ ~pos c body
  | Lexer.KW_CALL ->
      advance st;
      let callee = expect_ident st in
      expect st Lexer.LPAREN;
      let args =
        if st.tok = Lexer.RPAREN then []
        else
          let rec go acc =
            let e = parse_expr st in
            if st.tok = Lexer.COMMA then (
              advance st;
              go (e :: acc))
            else List.rev (e :: acc)
          in
          go []
      in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Ast.call ~pos callee args
  | Lexer.KW_RETURN ->
      advance st;
      expect st Lexer.SEMI;
      Ast.return_ ~pos ()
  | Lexer.KW_PRINT ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Ast.print ~pos e
  | t -> error st "expected statement but found '%s'" (Lexer.token_to_string t)

and parse_block st : Ast.stmt list =
  expect st Lexer.LBRACE;
  let rec go acc =
    if st.tok = Lexer.RBRACE then (
      advance st;
      List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

let parse_proc st : Ast.proc =
  let ppos = st.tpos in
  expect st Lexer.KW_PROC;
  let pname = expect_ident st in
  expect st Lexer.LPAREN;
  let formals =
    if st.tok = Lexer.RPAREN then []
    else
      let rec go acc =
        let f = expect_ident st in
        if st.tok = Lexer.COMMA then (
          advance st;
          go (f :: acc))
        else List.rev (f :: acc)
      in
      go []
  in
  expect st Lexer.RPAREN;
  let body = parse_block st in
  { Ast.pname; formals; body; ppos }

let parse_program st : Ast.program =
  let globals = ref [] and blockdata = ref [] and procs = ref [] in
  let rec go () =
    match st.tok with
    | Lexer.EOF -> ()
    | Lexer.KW_GLOBAL ->
        advance st;
        let rec names () =
          let g = expect_ident st in
          globals := g :: !globals;
          if st.tok = Lexer.COMMA then (
            advance st;
            names ())
        in
        names ();
        expect st Lexer.SEMI;
        go ()
    | Lexer.KW_BLOCKDATA ->
        advance st;
        expect st Lexer.LBRACE;
        let rec inits () =
          if st.tok = Lexer.RBRACE then advance st
          else begin
            let g = expect_ident st in
            expect st Lexer.ASSIGN;
            let v = parse_literal st in
            expect st Lexer.SEMI;
            blockdata := (g, v) :: !blockdata;
            if not (List.mem g !globals) then globals := g :: !globals;
            inits ()
          end
        in
        inits ();
        go ()
    | Lexer.KW_PROC ->
        procs := parse_proc st :: !procs;
        go ()
    | t ->
        error st "expected 'global', 'blockdata' or 'proc' but found '%s'"
          (Lexer.token_to_string t)
  in
  go ();
  (* A name may appear both in a [global] declaration and in [blockdata];
     keep the first occurrence only. *)
  let dedup names =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun g ->
        if Hashtbl.mem seen g then false
        else (
          Hashtbl.add seen g ();
          true))
      names
  in
  {
    Ast.globals = dedup (List.rev !globals);
    blockdata = List.rev !blockdata;
    procs = List.rev !procs;
    main = "main";
  }

(** Parse a complete program from a string.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
let program_of_string src = parse_program (create src)

(** Parse a single expression (testing convenience). *)
let expr_of_string src =
  let st = create src in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
