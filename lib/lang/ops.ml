(** Operators of the MiniFort expression language.

    MiniFort is the small, Fortran-77-flavoured imperative language that the
    interprocedural constant propagation pipeline analyses.  Operators are
    shared between the AST ({!Ast}), the lowered IR ({!Fsicp_cfg.Ir}) and the
    constant evaluator ({!Value}), so they live in their own module. *)

type unop =
  | Neg  (** arithmetic negation, [-e] *)
  | Not  (** logical negation, [!e]; follows C truthiness on integers *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** logical conjunction (non-short-circuiting, Fortran [.AND.]) *)
  | Or   (** logical disjunction (non-short-circuiting, Fortran [.OR.]) *)

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(** Binding strength used both by the parser (precedence climbing) and the
    pretty-printer (minimal parenthesisation).  Higher binds tighter. *)
let binop_precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let equal_unop (a : unop) (b : unop) = a = b
let equal_binop (a : binop) (b : binop) = a = b

let pp_unop ppf u = Fmt.string ppf (unop_to_string u)
let pp_binop ppf b = Fmt.string ppf (binop_to_string b)

(** All binary operators, in a fixed order (used by random program
    generation and exhaustive operator tests). *)
let all_binops =
  [ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]

let all_unops = [ Neg; Not ]
