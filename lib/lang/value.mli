(** Runtime and compile-time constant values of MiniFort.

    One value domain serves the interpreter and every analysis, so a
    "propagated constant" always denotes exactly what the interpreter would
    compute. *)

type t =
  | Int of int
  | Real of float

(** Structural equality: [Int 1] and [Real 1.0] differ (the lattice needs
    this); the language's [==] operator uses {!equal_numeric} instead. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val is_real : t -> bool

(** Truthiness for conditions and logical operators: non-zero is true. *)
val truthy : t -> bool

val of_bool : bool -> t
val to_float : t -> float

(** Numeric equality/comparison with int→real promotion (the semantics of
    [==], [<], …). *)
val equal_numeric : t -> t -> bool

val compare_numeric : t -> t -> int

(** Shortest decimal form that parses back to exactly the same float
    (always keeping a decimal point or exponent), with explicit [nan] /
    [inf] / [-inf] spellings. *)
val real_to_string : float -> string

(** Prints in a form the lexer reads back bit-exactly: [Real] uses
    {!real_to_string}. *)
val pp : t Fmt.t

val to_string : t -> string

(** [None] exactly when the operation is a runtime error (the evaluator
    raises, the constant propagator yields ⊥). *)
val eval_unop : Ops.unop -> t -> t option

(** Total except division/modulus by zero.  Mixed int/real promotes to
    real; comparisons and logical operators yield [Int 0]/[Int 1]. *)
val eval_binop : Ops.binop -> t -> t -> t option
