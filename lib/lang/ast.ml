(** Abstract syntax of MiniFort.

    MiniFort mirrors the Fortran-77 subset that the paper's measurements were
    taken on, in the aspects the analyses care about:

    - a program is a set of procedures (subroutines) plus flat scalar
      {e global} variables (modelling COMMON), some of which are initialised
      in a {e block data} section;
    - all parameters are passed {b by reference} — assigning to a formal
      writes through to the actual when the actual is a variable, which is
      what drives the interprocedural MOD and aliasing analyses;
    - there are no function results; the paper's "returned constants" are
      the constant {e out}-values of reference parameters and globals, which
      is exactly what our return-constants extension propagates;
    - control flow is structured ([if]/[while]), which lowers to the
      arbitrary CFGs the analyses operate on.

    Name resolution is purely lexical: an identifier appearing in a procedure
    body denotes the formal of that name if one exists, otherwise the global
    of that name if one is declared, otherwise a procedure-local variable.
    Locals are implicitly declared by use and initialised to integer 0 at
    procedure entry (see {!Fsicp_interp}); the constant propagator treats
    their entry value as unknown, which is sound. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }
let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

type expr =
  | Const of Value.t
  | Var of string
  | Unary of Ops.unop * expr
  | Binary of Ops.binop * expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Call of string * expr list
      (** [Call (p, args)]: an argument that is a bare variable is passed by
          reference; any other expression is evaluated into a hidden
          temporary cell (so callee stores to it do not escape). *)
  | Return  (** early exit from the procedure *)
  | Print of expr
      (** observable output; also the canonical "use" for the metrics *)

type proc = {
  pname : string;
  formals : string list;
  body : stmt list;
  ppos : pos;
}

type program = {
  globals : string list;  (** declared global scalars, in declaration order *)
  blockdata : (string * Value.t) list;
      (** block-data initialisations; a subset of [globals] *)
  procs : proc list;
  main : string;  (** name of the entry procedure *)
}

(* ------------------------------------------------------------------ *)
(* Equality (structural, ignoring positions)                           *)
(* ------------------------------------------------------------------ *)

let rec equal_expr a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | Unary (o, e), Unary (o', e') -> Ops.equal_unop o o' && equal_expr e e'
  | Binary (o, l, r), Binary (o', l', r') ->
      Ops.equal_binop o o' && equal_expr l l' && equal_expr r r'
  | (Const _ | Var _ | Unary _ | Binary _), _ -> false

let rec equal_stmt a b =
  match (a.sdesc, b.sdesc) with
  | Assign (x, e), Assign (x', e') -> String.equal x x' && equal_expr e e'
  | If (c, t, f), If (c', t', f') ->
      equal_expr c c' && equal_block t t' && equal_block f f'
  | While (c, body), While (c', body') ->
      equal_expr c c' && equal_block body body'
  | Call (p, args), Call (p', args') ->
      String.equal p p' && List.equal equal_expr args args'
  | Return, Return -> true
  | Print e, Print e' -> equal_expr e e'
  | (Assign _ | If _ | While _ | Call _ | Return | Print _), _ -> false

and equal_block a b = List.equal equal_stmt a b

let equal_proc a b =
  String.equal a.pname b.pname
  && List.equal String.equal a.formals b.formals
  && equal_block a.body b.body

let equal_program a b =
  List.equal String.equal a.globals b.globals
  && List.equal
       (fun (n, v) (n', v') -> String.equal n n' && Value.equal v v')
       a.blockdata b.blockdata
  && List.equal equal_proc a.procs b.procs
  && String.equal a.main b.main

(* ------------------------------------------------------------------ *)
(* Traversal helpers shared by the analyses                            *)
(* ------------------------------------------------------------------ *)

(** [iter_stmts f body] applies [f] to every statement in [body], including
    statements nested inside [if]/[while]. *)
let rec iter_stmts f body =
  List.iter
    (fun s ->
      f s;
      match s.sdesc with
      | If (_, t, e) ->
          iter_stmts f t;
          iter_stmts f e
      | While (_, b) -> iter_stmts f b
      | Assign _ | Call _ | Return | Print _ -> ())
    body

(** [iter_exprs f body] applies [f] to every expression occurring in [body]
    (conditions, right-hand sides, arguments, print operands). *)
let iter_exprs f body =
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Assign (_, e) -> f e
      | If (c, _, _) -> f c
      | While (c, _) -> f c
      | Call (_, args) -> List.iter f args
      | Print e -> f e
      | Return -> ())
    body

(** Variables read anywhere in an expression. *)
let rec expr_vars acc = function
  | Const _ -> acc
  | Var x -> x :: acc
  | Unary (_, e) -> expr_vars acc e
  | Binary (_, l, r) -> expr_vars (expr_vars acc l) r

(** All identifiers {e mentioned} in a procedure body (read or written,
    including by-reference arguments).  Used to infer which globals are
    visible in a procedure, which the VIS metric of Table 1 relies on. *)
let mentioned_vars (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Assign (x, e) -> acc := x :: expr_vars !acc e
      | If (c, _, _) | While (c, _) -> acc := expr_vars !acc c
      | Call (_, args) -> List.iter (fun a -> acc := expr_vars !acc a) args
      | Print e -> acc := expr_vars !acc e
      | Return -> ())
    p.body;
  List.sort_uniq String.compare !acc

(** Variables directly assigned in [p] ([Assign] targets only; by-reference
    effects of calls are the interprocedural MOD analysis's job). *)
let assigned_vars (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Assign (x, _) -> acc := x :: !acc
      | If _ | While _ | Call _ | Return | Print _ -> ())
    p.body;
  List.sort_uniq String.compare !acc

(** Variables read in [p] (in any expression). *)
let read_vars (p : proc) : string list =
  let acc = ref [] in
  iter_exprs (fun e -> acc := expr_vars !acc e) p.body;
  List.sort_uniq String.compare !acc

(** Call sites of [p], in textual order: [(callee, args, position)]. *)
let call_sites (p : proc) : (string * expr list * pos) list =
  let acc = ref [] in
  iter_stmts
    (fun s ->
      match s.sdesc with
      | Call (q, args) -> acc := (q, args, s.spos) :: !acc
      | Assign _ | If _ | While _ | Return | Print _ -> ())
    p.body;
  List.rev !acc

let find_proc (prog : program) (name : string) : proc option =
  List.find_opt (fun p -> String.equal p.pname name) prog.procs

let find_proc_exn prog name =
  match find_proc prog name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Ast.find_proc_exn: %s" name)

(** Smart constructors used by the builder DSL and tests. *)
let mk_stmt ?(pos = no_pos) sdesc = { sdesc; spos = pos }
let assign ?pos x e = mk_stmt ?pos (Assign (x, e))
let if_ ?pos c t e = mk_stmt ?pos (If (c, t, e))
let while_ ?pos c b = mk_stmt ?pos (While (c, b))
let call ?pos p args = mk_stmt ?pos (Call (p, args))
let return_ ?pos () = mk_stmt ?pos Return
let print ?pos e = mk_stmt ?pos (Print e)
let int n = Const (Value.Int n)
let real r = Const (Value.Real r)
let var x = Var x
let binary op l r = Binary (op, l, r)
let unary op e = Unary (op, e)
