(** Recursive-descent parser for MiniFort concrete syntax (grammar in the
    implementation header).  The entry procedure is the one named [main];
    {!Sema.check} enforces its existence. *)

exception Error of string * Ast.pos

(** Parse a complete program.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
val program_of_string : string -> Ast.program

(** Parse a single expression (testing convenience).
    @raise Error if trailing input remains *)
val expr_of_string : string -> Ast.expr
