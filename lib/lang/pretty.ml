(** Pretty-printer for MiniFort.

    The output is valid concrete syntax: for every well-formed program [p],
    [Parser.program_of_string (to_string p)] is structurally equal to [p]
    (positions aside).  This round-trip is checked by a property test. *)

open Ast

let rec pp_expr ?(prec = 0) ppf e =
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Unary (op, e) -> Fmt.pf ppf "%a%a" Ops.pp_unop op (pp_atom ~prec:10) e
  | Binary (op, l, r) ->
      let p = Ops.binop_precedence op in
      let body ppf () =
        (* Left-associative: the right operand needs strictly higher
           precedence to avoid re-association on re-parse. *)
        Fmt.pf ppf "%a %a %a" (pp_expr ~prec:p) l Ops.pp_binop op
          (pp_expr ~prec:(p + 1))
          r
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()

and pp_atom ~prec ppf e =
  match e with
  | Const (Value.Int n) when n < 0 -> Fmt.pf ppf "(%d)" n
  | Const (Value.Real r) when r < 0.0 -> Fmt.pf ppf "(%a)" Value.pp (Value.Real r)
  | Const _ | Var _ -> pp_expr ~prec ppf e
  | Unary _ | Binary _ -> Fmt.pf ppf "(%a)" (pp_expr ~prec:0) e

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Assign (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x (pp_expr ~prec:0) e
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) %a" pad (pp_expr ~prec:0) c (pp_block ~indent) t
  | If (c, t, e) ->
      Fmt.pf ppf "%sif (%a) %a else %a" pad (pp_expr ~prec:0) c
        (pp_block ~indent) t (pp_block ~indent) e
  | While (c, body) ->
      Fmt.pf ppf "%swhile (%a) %a" pad (pp_expr ~prec:0) c (pp_block ~indent)
        body
  | Call (p, args) ->
      Fmt.pf ppf "%scall %s(%a);" pad p
        (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0))
        args
  | Return -> Fmt.pf ppf "%sreturn;" pad
  | Print e -> Fmt.pf ppf "%sprint %a;" pad (pp_expr ~prec:0) e

and pp_block ~indent ppf (body : stmt list) =
  if body = [] then Fmt.string ppf "{ }"
  else begin
    Fmt.pf ppf "{@\n";
    List.iter (fun s -> Fmt.pf ppf "%a@\n" (pp_stmt ~indent:(indent + 2)) s) body;
    Fmt.pf ppf "%s}" (String.make indent ' ')
  end

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "proc %s(%a) %a" p.pname
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    p.formals (pp_block ~indent:0) p.body

let pp_program ppf (prog : program) =
  let declared_only =
    List.filter (fun g -> not (List.mem_assoc g prog.blockdata)) prog.globals
  in
  if declared_only <> [] then
    Fmt.pf ppf "global %a;@\n"
      (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
      declared_only;
  if prog.blockdata <> [] then begin
    Fmt.pf ppf "blockdata {@\n";
    List.iter
      (fun (g, v) -> Fmt.pf ppf "  %s = %a;@\n" g Value.pp v)
      prog.blockdata;
    Fmt.pf ppf "}@\n"
  end;
  List.iter (fun p -> Fmt.pf ppf "%a@\n" pp_proc p) prog.procs

let expr_to_string e = Fmt.str "%a" (pp_expr ~prec:0) e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
let proc_to_string p = Fmt.str "%a" pp_proc p
let program_to_string p = Fmt.str "%a" pp_program p
