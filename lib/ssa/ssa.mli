(** Static single assignment form (Cytron et al.) over the quad IR — the
    representation the paper's intraprocedural SCC analysis runs on.

    Call instructions are definition points (by-reference actuals, modified
    globals), stores through possibly-aliased names are followed by
    {!instr.Kill} definitions, every variable has an implicit entry
    definition (version 0) whose value the interprocedural phase supplies,
    and each return block records the reaching version of every formal and
    global (for the return-constants extension). *)

open Fsicp_lang
open Fsicp_cfg

(** An SSA name; [id] is a dense per-procedure index for O(1) lattice
    lookup. *)
type name = { base : Ir.var; ver : int; id : int }

val pp_name : name Fmt.t

type operand = Oconst of Value.t | Oname of name

val pp_operand : operand Fmt.t

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

val pp_rhs : rhs Fmt.t

type ssa_arg = { sa_operand : operand; sa_byref : Ir.var option }

type call = {
  c_cs_id : int;  (** call-site id, textual order *)
  c_callee : string;
  c_args : ssa_arg array;
  c_global_uses : (Ir.var * name) array;
      (** reaching version of each global the callee's REF closure needs *)
  c_defs : (Ir.var * name) array;
      (** fresh versions of the variables the call may modify *)
}

type instr =
  | Assign of name * rhs
  | Kill of (Ir.var * name) array
      (** fresh unknown versions after a store through an alias *)
  | Call of call
  | Print of operand

type phi = { p_name : name; p_args : (int * name) array }

type terminator = Goto of int | Cond of operand * int * int | Ret

type block = { phis : phi array; instrs : instr array; term : terminator }

type def_site = Dentry | Dinstr of int * int | Dphi of int * int

type use_site = Uphi of int * int | Uinstr of int * int | Uterm of int

type proc = {
  name : string;
  formals : Ir.var array;
  blocks : block array;
  entry : int;
  preds : int list array;
  dom : Dominance.t;
  entry_names : (Ir.var * name) array;  (** version-0 names, all variables *)
  exit_names : (int * (Ir.var * name) array) list;
      (** per return block: reaching versions of formals and globals *)
  n_names : int;
  defs : def_site array;  (** by name id *)
  uses : use_site list array;  (** by name id *)
  n_call_sites : int;
}

(** Oracle for interprocedural side effects (the precision comes from
    plugging in {!Fsicp_ipa} results; see [conservative_effects]). *)
type call_effects = {
  defs_of_call : callee:string -> byref_args:Ir.var option array -> Ir.var list;
  globals_used_by : callee:string -> Ir.var list;
  assign_aliases : Ir.var -> Ir.var list;
}

(** Sound default when no IPA information is available: calls clobber every
    by-reference actual and every global; stores to formals/globals clobber
    all other formals and globals. *)
val conservative_effects : ?formals:Ir.var list -> Ast.program -> call_effects

val byref_array : Ir.arg array -> Ir.var option array

(** Build SSA for a lowered procedure. *)
val of_proc : ?effects:call_effects -> Ast.program -> Ir.proc -> proc

val entry_name : proc -> Ir.var -> name option

(** All call instructions as [(block, instr index, call)], block order. *)
val call_sites : proc -> (int * int * call) list

(** Structural invariants: single definitions, one phi argument per
    predecessor. *)
val validate : proc -> (unit, string) result

val pp_proc : proc Fmt.t
