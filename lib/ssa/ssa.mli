(** Static single assignment form (Cytron et al.) over the quad IR — the
    representation the paper's intraprocedural SCC analysis runs on.

    Call instructions are definition points (by-reference actuals, modified
    globals), stores through possibly-aliased names are followed by
    {!instr.Kill} definitions, every variable has an implicit entry
    definition (version 0) whose value the interprocedural phase supplies,
    and each return block records the reaching version of every formal and
    global (for the return-constants extension). *)

open Fsicp_lang
open Fsicp_cfg

(** An SSA name; [id] is a dense per-procedure index for O(1) lattice
    lookup. *)
type name = { base : Ir.var; ver : int; id : int }

val pp_name : name Fmt.t

type operand = Oconst of Value.t | Oname of name

val pp_operand : operand Fmt.t

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

val pp_rhs : rhs Fmt.t

type ssa_arg = { sa_operand : operand; sa_byref : Ir.var option }

type call = {
  c_cs_id : int;  (** call-site id, textual order *)
  c_callee : string;
  c_args : ssa_arg array;
  c_global_uses : (Ir.var * name) array;
      (** reaching version of each global the callee's REF closure needs *)
  c_defs : (Ir.var * name) array;
      (** fresh versions of the variables the call may modify *)
  c_guse_slots : int array;
      (** ascending var slots of the [c_global_uses] entries *)
  c_guse_ids : int array;  (** name ids parallel to [c_guse_slots] *)
  mutable c_def_base : int;
      (** index of this call's first def in the flat call-def numbering *)
}

type instr =
  | Assign of name * rhs
  | Kill of (Ir.var * name) array
      (** fresh unknown versions after a store through an alias *)
  | Call of call
  | Print of operand

type phi = {
  p_name : name;
  p_args : (int * name) array;
  p_edges : int array;  (** dense edge id per incoming edge, parallel *)
}

type terminator = Goto of int | Cond of operand * int * int | Ret

type block = { phis : phi array; instrs : instr array; term : terminator }

type use_site = Uphi of int * int | Uinstr of int * int | Uterm of int

(** Extension point for analysis-private per-procedure caches (e.g. the SCC
    entry-vector memo); lives and dies with the [proc] value. *)
type memo = ..

type memo += No_memo

type proc = {
  name : string;
  formals : Ir.var array;
  blocks : block array;
  entry : int;
  preds : int list array;
  dom : Dominance.t;
  entry_names : (Ir.var * name) array;  (** version-0 names, all variables *)
  exit_names : (int * (Ir.var * name) array) list;
      (** per return block: reaching versions of formals and globals *)
  n_names : int;
  defs : int array;
      (** name id -> packed (tag, block, index) def site as in [site_code],
          or -1 for a version-0 entry definition *)
  use_offsets : int array;
      (** CSR row starts into [use_sites], length [n_names + 1] *)
  use_sites : int array;  (** CSR payload: dense site ids *)
  n_sites : int;  (** phis + instructions + terminators, densely numbered *)
  site_code : int array;  (** site id -> packed (tag, block, index) *)
  n_edges : int;
  edge_base : int array;
      (** block -> first out-edge id, length [nblocks + 1]; edges numbered
          consecutively in successor order, [Cond] with equal arms collapsed
          to one edge (mirroring [Ir.successors]) *)
  edge_dst : int array;  (** edge id -> destination block *)
  vars : Ir.var array;  (** the variable universe, in slot order *)
  var_keys : int array;
      (** [Ir.Var.slot_key] of each slot, ascending — backs {!slot_of} *)
  entry_ids : int array;  (** var slot -> version-0 name id *)
  exit_ids : (int * int array) array;
      (** per [Ret] block: var slot -> reaching name id, or -1 *)
  calls : (int * int * call) array;
      (** every call as [(block, instr index, call)], block order *)
  n_call_defs : int;  (** total [c_defs] across [calls] *)
  n_call_sites : int;
  mutable memo : memo;
}

(** Oracle for interprocedural side effects (the precision comes from
    plugging in {!Fsicp_ipa} results; see [conservative_effects]). *)
type call_effects = {
  defs_of_call : callee:string -> byref_args:Ir.var option array -> Ir.var list;
  globals_used_by : callee:string -> Ir.var list;
  assign_aliases : Ir.var -> Ir.var list;
}

(** Sound default when no IPA information is available: calls clobber every
    by-reference actual and every global; stores to formals/globals clobber
    all other formals and globals. *)
val conservative_effects : ?formals:Ir.var list -> Ast.program -> call_effects

val byref_array : Ir.arg array -> Ir.var option array

(** Build SSA for a lowered procedure. *)
val of_proc : ?effects:call_effects -> Ast.program -> Ir.proc -> proc

(** The variable's dense slot in this procedure's universe, or -1. *)
val slot_of : proc -> Ir.var -> int

val entry_name : proc -> Ir.var -> name option

(** Decode a dense site id back to its structured form. *)
val decode_site : proc -> int -> use_site

(** The use sites of a name id, decoded from its CSR row. *)
val uses_of : proc -> int -> use_site list

(** All call instructions as [(block, instr index, call)], block order. *)
val call_sites : proc -> (int * int * call) list

(** Structural invariants: single definitions, one phi argument per
    predecessor. *)
val validate : proc -> (unit, string) result

val pp_proc : proc Fmt.t
