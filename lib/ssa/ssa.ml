(** Static single assignment form (Cytron et al.), over the {!Fsicp_cfg.Ir}
    quad IR.

    The paper's intraprocedural analysis — Wegman–Zadeck Sparse Conditional
    Constant propagation — is "built upon an implementation of SSA data-flow
    analysis"; this module is that implementation.

    Besides ordinary assignments, {e call} instructions are definition
    points: a call may write through its by-reference actuals and may modify
    globals.  Which variables a particular call defines, and which globals'
    values at the call the interprocedural phase wants recorded, are
    supplied by a {!call_effects} oracle (in the full pipeline this oracle
    is the interprocedural MOD/REF information; tests can use the
    conservative {!conservative_effects}).

    Every variable has an implicit {e entry definition} (version 0) in the
    entry block, whose lattice value the constant propagator takes from its
    entry environment — this is precisely the hook through which
    interprocedural constants enter the intraprocedural analysis. *)

open Fsicp_lang
open Fsicp_cfg

(** An SSA name: a base IR variable plus version.  [id] is a dense index
    unique within the procedure, used for constant-time lattice lookups. *)
type name = { base : Ir.var; ver : int; id : int }

let pp_name ppf n = Fmt.pf ppf "%a.%d" Ir.Var.pp n.base n.ver

type operand = Oconst of Value.t | Oname of name

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Oname n -> pp_name ppf n

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

let pp_rhs ppf = function
  | Copy o -> pp_operand ppf o
  | Unop (op, o) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_operand o
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a %a %a" pp_operand a Ops.pp_binop op pp_operand b

type ssa_arg = { sa_operand : operand; sa_byref : Ir.var option }

type call = {
  c_cs_id : int;  (** call-site id (textual order, from lowering) *)
  c_callee : string;
  c_args : ssa_arg array;
  c_global_uses : (Ir.var * name) array;
      (** reaching SSA version of each global whose value at this call the
          interprocedural analysis needs (callee's REF set) *)
  c_defs : (Ir.var * name) array;
      (** fresh versions for the variables this call may modify *)
  c_guse_slots : int array;
      (** ascending var slots of the [c_global_uses] entries *)
  c_guse_ids : int array;
      (** name ids parallel to [c_guse_slots]: the compact lookup table
          behind {!val:Fsicp_scc.Scc.global_at_call} *)
  mutable c_def_base : int;
      (** index of this call's first def in the procedure's flat call-def
          numbering (block order); the SCC kernel resolves the oracle value
          of def [k] into slot [c_def_base + k] of one dense vector *)
}

type instr =
  | Assign of name * rhs
  | Kill of (Ir.var * name) array
      (** alias kill: fresh, unknown-valued versions of variables whose
          location may have been written by the {e preceding} assignment
          through a reference-parameter alias.  Keeps SSA sound when a
          store through one name may change the value of another. *)
  | Call of call
  | Print of operand

type phi = {
  p_name : name;
  p_args : (int * name) array;  (** (predecessor block, incoming name) *)
  p_edges : int array;
      (** dense edge id of each incoming CFG edge, parallel to [p_args] *)
}

type terminator = Goto of int | Cond of operand * int * int | Ret

type block = {
  phis : phi array;
  instrs : instr array;
  term : terminator;
}

(** A use site; pushing these onto the SCC's SSA worklist re-evaluates the
    corresponding phi/instruction/terminator. *)
type use_site =
  | Uphi of int * int  (** (block, phi index) *)
  | Uinstr of int * int  (** (block, instruction index) *)
  | Uterm of int  (** block terminator (condition) *)

(* Dense site ids: every phi, instruction and terminator of the procedure
   gets one int id, numbered per block in order (phis, then instructions,
   then the terminator).  [site_code] packs the decoded form into one
   tagged int: bits [1:0] = kind (0 phi, 1 instr, 2 term), bits [33:2] =
   block, bits [62:34] = index within the block.  The CSR def-use chains
   and the SCC worklists traffic in site ids only. *)
let site_tag_phi = 0
let site_tag_instr = 1
let site_tag_term = 2

let[@inline] pack_site ~tag ~block ~index =
  (index lsl 34) lor (block lsl 2) lor tag

(** Extension point for analysis-private per-procedure caches (the SCC
    engine hangs its entry-vector memo here); lives and dies with the
    [proc] value. *)
type memo = ..

type memo += No_memo

type proc = {
  name : string;
  formals : Ir.var array;
  blocks : block array;
  entry : int;
  preds : int list array;
  dom : Dominance.t;
  entry_names : (Ir.var * name) array;  (** version-0 names, all variables *)
  exit_names : (int * (Ir.var * name) array) list;
      (** for each [Ret]-terminated block: the SSA version of every formal
          and global reaching the return — the values a call observes after
          the procedure finishes (drives the return-constants extension) *)
  n_names : int;
  defs : int array;
      (** name id -> packed (tag, block, index) def site as in [site_code]
          (phi or instr tag), or -1 for a version-0 entry definition *)
  use_offsets : int array;
      (** CSR row starts into [use_sites], length [n_names + 1]: the use
          sites of name [id] are [use_sites.(use_offsets.(id)) ..
          use_sites.(use_offsets.(id + 1) - 1)] *)
  use_sites : int array;  (** CSR payload: dense site ids *)
  n_sites : int;
  site_code : int array;  (** site id -> packed (tag, block, index) *)
  n_edges : int;
  edge_base : int array;
      (** block -> first out-edge id, length [nblocks + 1]; out edges are
          numbered consecutively in successor order ([Cond] with equal arms
          collapses to one edge, mirroring [Ir.successors]) *)
  edge_dst : int array;  (** edge id -> destination block *)
  vars : Ir.var array;  (** the variable universe, in slot order *)
  var_keys : int array;
      (** [Ir.Var.slot_key] of each slot, ascending — {!slot_of} binary
          searches this instead of hashing *)
  entry_ids : int array;  (** var slot -> version-0 name id *)
  exit_ids : (int * int array) array;
      (** per [Ret] block: var slot -> reaching name id, or -1 *)
  calls : (int * int * call) array;
      (** every call as [(block, instr index, call)], block order *)
  n_call_defs : int;  (** total [c_defs] across [calls] *)
  n_call_sites : int;
  mutable memo : memo;
}

(** Oracle describing interprocedural side effects of calls and of stores
    through possibly-aliased names. *)
type call_effects = {
  defs_of_call : callee:string -> byref_args:Ir.var option array -> Ir.var list;
      (** variables (caller-side) the call may define *)
  globals_used_by : callee:string -> Ir.var list;
      (** globals whose reaching value should be recorded at the call *)
  assign_aliases : Ir.var -> Ir.var list;
      (** variables whose location a store to the given variable may also
          write (reference-parameter may-aliases); each direct assignment
          is followed by a {!Kill} of these *)
}

(** Sound default when MOD/REF and alias information are unavailable: a
    call may define every by-reference actual and every global of the
    program; the value of every global is relevant; and — since any two
    by-reference names could alias — a store to a formal clobbers every
    other formal and every global (and vice versa).  The full pipeline
    replaces this with the {!Fsicp_ipa} oracles, which is where all the
    precision comes from. *)
let conservative_effects ?(formals : Ir.var list = []) (prog : Ast.program) :
    call_effects =
  let globals = List.map Ir.global prog.Ast.globals in
  {
    defs_of_call =
      (fun ~callee:_ ~byref_args ->
        let byrefs =
          Array.to_list byref_args |> List.filter_map (fun x -> x)
        in
        List.sort_uniq Ir.Var.compare (byrefs @ globals));
    globals_used_by = (fun ~callee:_ -> globals);
    assign_aliases =
      (fun v ->
        match v.Ir.vkind with
        | Ir.Formal _ | Ir.Global ->
            List.filter
              (fun w -> not (Ir.Var.equal v w))
              (formals @ globals)
        | Ir.Local | Ir.Temp -> []);
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let byref_array (args : Ir.arg array) : Ir.var option array =
  Array.map (fun (a : Ir.arg) -> a.Ir.a_byref) args

(* Domain-local construction scratch: an epoch-stamped sparse map from
   [Ir.Var.slot_key] to the procedure-local dense slot.  A key is bound
   iff [stamp.(k) = epoch]; bumping the epoch invalidates every binding in
   O(1), so consecutive [of_proc] calls on one domain share the arrays
   without clearing.  [Domain.DLS] keeps the scratch race-free when
   [Context.build_ssa] constructs procedures on several domains. *)
module Scratch = struct
  type t = {
    mutable epoch : int;
    mutable stamp : int array;
    mutable slot : int array;
  }

  let create () =
    { epoch = 0; stamp = Array.make 4096 0; slot = Array.make 4096 0 }

  let dls = Domain.DLS.new_key create

  let get () =
    let t = Domain.DLS.get dls in
    t.epoch <- t.epoch + 1;
    t

  let ensure t k =
    let cap = Array.length t.stamp in
    if k >= cap then begin
      let n = max (k + 1) (2 * cap) in
      let stamp = Array.make n 0 in
      Array.blit t.stamp 0 stamp 0 cap;
      t.stamp <- stamp;
      let slot = Array.make n 0 in
      Array.blit t.slot 0 slot 0 cap;
      t.slot <- slot
    end
end

(** Build SSA form for a lowered procedure. *)
let of_proc ?(effects : call_effects option) (prog : Ast.program)
    (p : Ir.proc) : proc =
  let effects =
    match effects with
    | Some e -> e
    | None ->
        conservative_effects ~formals:(Array.to_list p.Ir.formals) prog
  in
  let cfg = p.Ir.cfg in
  let nblocks = Array.length cfg.Ir.blocks in
  let preds = Ir.predecessors cfg in
  let dom = Dominance.compute cfg in
  let df = Dominance.frontiers cfg dom in

  (* -- The variable universe ---------------------------------------- *)
  (* One pass over the IR collects occurring vars, call-defined vars,
     recorded globals and alias kills — deduplicated through the
     epoch-stamped {!Scratch} (no hashing, no [VarSet] trees) and sorted
     once by [slot_key], which induces exactly the order the original
     [VarSet.elements]-based formulation produced. *)
  let scratch = Scratch.get () in
  let epoch = scratch.Scratch.epoch in
  let acc = ref [] in
  let nv = ref 0 in
  let note v =
    let k = Ir.Var.slot_key v in
    Scratch.ensure scratch k;
    if scratch.Scratch.stamp.(k) <> epoch then begin
      scratch.Scratch.stamp.(k) <- epoch;
      acc := v :: !acc;
      incr nv
    end
  in
  let note_op = function Ir.Const _ -> () | Ir.Var v -> note v in
  let note_rhs = function
    | Ir.Copy o | Ir.Unop (_, o) -> note_op o
    | Ir.Binop (_, a, b) ->
        note_op a;
        note_op b
  in
  Array.iter note p.Ir.formals;
  (* Per-instruction oracle caches, flat over the instruction ordinal. *)
  let ibase = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    ibase.(b + 1) <- ibase.(b) + Array.length cfg.Ir.blocks.(b).Ir.instrs
  done;
  let n_instrs = ibase.(nblocks) in
  let iord b i = ibase.(b) + i in
  let call_ds : Ir.var list array = Array.make (max 1 n_instrs) [] in
  let call_gs : Ir.var list array = Array.make (max 1 n_instrs) [] in
  let kill_at : Ir.var list array = Array.make (max 1 n_instrs) [] in
  (* The alias-kill list of a variable is build-invariant; memoising it per
     assigned variable keeps the oracle's list surgery (closure over the
     alias pairs, sort, self-filter) off the per-assignment path. *)
  let kill_memo : (int, Ir.var list) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Ir.Call { callee; args; _ } ->
              Array.iter (fun (a : Ir.arg) -> note_op a.Ir.a_operand) args;
              let ds =
                effects.defs_of_call ~callee ~byref_args:(byref_array args)
              in
              let gs = effects.globals_used_by ~callee in
              call_ds.(iord b i) <- ds;
              call_gs.(iord b i) <- gs;
              List.iter note ds;
              List.iter note gs
          | Ir.Assign (v, rhs) -> (
              note v;
              note_rhs rhs;
              (* Only formals and globals can carry reference-parameter
                 aliases (both oracles answer [] for locals and temps), so
                 the oracle and the memo are skipped on the common case. *)
              match v.Ir.vkind with
              | Ir.Local | Ir.Temp -> ()
              | Ir.Formal _ | Ir.Global ->
                  let key = Ir.Var.slot_key v in
                  let ks =
                    match Hashtbl.find_opt kill_memo key with
                    | Some ks -> ks
                    | None ->
                        let ks =
                          List.sort_uniq Ir.Var.compare
                            (effects.assign_aliases v)
                          |> List.filter (fun w -> not (Ir.Var.equal v w))
                        in
                        Hashtbl.add kill_memo key ks;
                        ks
                  in
                  if ks <> [] then begin
                    kill_at.(iord b i) <- ks;
                    List.iter note ks
                  end)
          | Ir.Print o -> note_op o)
        blk.Ir.instrs;
      match blk.Ir.term with
      | Ir.Cond (c, _, _) -> note_op c
      | Ir.Goto _ | Ir.Ret -> ())
    cfg.Ir.blocks;
  let vars = Array.of_list !acc in
  Array.sort
    (fun a b -> Int.compare (Ir.Var.slot_key a) (Ir.Var.slot_key b))
    vars;
  let nvars = !nv in
  let var_keys = Array.map Ir.Var.slot_key vars in
  (* Rebind keys to dense slots; [ensure] is done growing, so the arrays
     can be captured. *)
  let slot_arr = scratch.Scratch.slot in
  Array.iteri (fun i k -> slot_arr.(k) <- i) var_keys;
  let[@inline] vidx v = slot_arr.(Ir.Var.slot_key v) in

  (* -- Dense edge ids ------------------------------------------------ *)
  (* Out edges per block, numbered consecutively in successor order.  A
     [Cond] with equal arms contributes one edge (as in [Ir.successors]),
     so every (pred, succ) pair maps to exactly one edge id.  Derived from
     the IR terminators up front so the renaming pass can fill successor
     phi arguments positionally. *)
  let edge_base = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    let out =
      match cfg.Ir.blocks.(b).Ir.term with
      | Ir.Goto _ -> 1
      | Ir.Cond (_, t, f) -> if t = f then 1 else 2
      | Ir.Ret -> 0
    in
    edge_base.(b + 1) <- edge_base.(b) + out
  done;
  let n_edges = edge_base.(nblocks) in
  let edge_dst = Array.make (max 1 n_edges) 0 in
  for b = 0 to nblocks - 1 do
    match cfg.Ir.blocks.(b).Ir.term with
    | Ir.Goto t -> edge_dst.(edge_base.(b)) <- t
    | Ir.Cond (_, t, f) ->
        edge_dst.(edge_base.(b)) <- t;
        if t <> f then edge_dst.(edge_base.(b) + 1) <- f
    | Ir.Ret -> ()
  done;
  (* Edge id of the unique (pred, succ) edge. *)
  let edge_id ~pred ~succ =
    match cfg.Ir.blocks.(pred).Ir.term with
    | Ir.Goto _ -> edge_base.(pred)
    | Ir.Cond (_, t, f) ->
        if t = f || t = succ then edge_base.(pred) else edge_base.(pred) + 1
    | Ir.Ret -> assert false
  in
  (* Per block, the incoming edge ids in predecessor-list order (this is
     exactly the [p_edges] vector of every phi of the block, shared), and
     the inverse: each edge's position in its destination's list. *)
  let pred_pos = Array.make (max 1 n_edges) 0 in
  let pred_edge =
    Array.init nblocks (fun s ->
        let arr = Array.make (List.length preds.(s)) 0 in
        List.iteri
          (fun k b ->
            let e = edge_id ~pred:b ~succ:s in
            arr.(k) <- e;
            pred_pos.(e) <- k)
          preds.(s);
        arr)
  in

  (* -- Phi placement (iterated dominance frontier) ------------------- *)
  (* Def-site blocks per variable as a CSR (entry block plus every assign,
     kill and call def); the iterated-DF worklist is an int stack and the
     resulting (block, var) placements accumulate into one int buffer that
     a counting sort turns into the per-block phi lists — no cons cell is
     allocated anywhere in the phase. *)
  let dcnt = Array.make (nvars + 1) 0 in
  let bump v = dcnt.(vidx v + 1) <- dcnt.(vidx v + 1) + 1 in
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Ir.Assign (v, _) ->
              bump v;
              List.iter bump kill_at.(iord b i)
          | Ir.Call _ -> List.iter bump call_ds.(iord b i)
          | Ir.Print _ -> ())
        blk.Ir.instrs)
    cfg.Ir.blocks;
  for i = 0 to nvars - 1 do
    dcnt.(i + 1) <- dcnt.(i + 1) + dcnt.(i)
  done;
  let dpay = Array.make (max 1 dcnt.(nvars)) 0 in
  let dfill = Array.make (max 1 nvars) 0 in
  Array.blit dcnt 0 dfill 0 nvars;
  let put v b =
    let s = vidx v in
    dpay.(dfill.(s)) <- b;
    dfill.(s) <- dfill.(s) + 1
  in
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Ir.Assign (v, _) ->
              put v b;
              List.iter (fun w -> put w b) kill_at.(iord b i)
          | Ir.Call _ -> List.iter (fun w -> put w b) call_ds.(iord b i)
          | Ir.Print _ -> ())
        blk.Ir.instrs)
    cfg.Ir.blocks;
  (* Placement loop.  [phi_pairs] records each placement as b * nvars + v;
     placements for one block arrive in ascending-v order (outer loop), so
     the counting sort below reproduces the historical per-block order. *)
  let has_phi_stamp = Array.make nblocks 0 in
  let ever_stamp = Array.make nblocks 0 in
  let work = Array.make (max 1 nblocks) 0 in
  let phi_cnt = Array.make (nblocks + 1) 0 in
  let phi_pairs = ref (Array.make 64 0) in
  let n_pairs = ref 0 in
  let push_pair code =
    let cap = Array.length !phi_pairs in
    if !n_pairs = cap then begin
      let np = Array.make (2 * cap) 0 in
      Array.blit !phi_pairs 0 np 0 cap;
      phi_pairs := np
    end;
    !phi_pairs.(!n_pairs) <- code;
    incr n_pairs
  in
  (* The worker closures are hoisted out of the per-variable loop (the
     iteration state lives in refs) so the loop itself allocates nothing. *)
  let stamp = ref 0 in
  let sp = ref 0 in
  let seed b =
    if ever_stamp.(b) <> !stamp then begin
      ever_stamp.(b) <- !stamp;
      work.(!sp) <- b;
      incr sp
    end
  in
  let cur_v = ref 0 in
  let visit y =
    if has_phi_stamp.(y) <> !stamp then begin
      has_phi_stamp.(y) <- !stamp;
      phi_cnt.(y + 1) <- phi_cnt.(y + 1) + 1;
      push_pair ((y * max 1 nvars) + !cur_v);
      if ever_stamp.(y) <> !stamp then begin
        ever_stamp.(y) <- !stamp;
        work.(!sp) <- y;
        incr sp
      end
    end
  in
  for v = 0 to nvars - 1 do
    stamp := v + 1;
    cur_v := v;
    sp := 0;
    seed cfg.Ir.entry;
    for k = dcnt.(v) to dcnt.(v + 1) - 1 do
      seed dpay.(k)
    done;
    while !sp > 0 do
      decr sp;
      let b = work.(!sp) in
      List.iter visit df.(b)
    done
  done;
  for b = 0 to nblocks - 1 do
    phi_cnt.(b + 1) <- phi_cnt.(b + 1) + phi_cnt.(b)
  done;
  (* phi_vars.(b) = var slots needing a phi at b, ascending. *)
  let phi_vars =
    Array.init nblocks (fun b ->
        Array.make (phi_cnt.(b + 1) - phi_cnt.(b)) 0)
  in
  let pfill = Array.make (max 1 nblocks) 0 in
  for k = 0 to !n_pairs - 1 do
    let code = !phi_pairs.(k) in
    let b = code / max 1 nvars and v = code mod max 1 nvars in
    phi_vars.(b).(pfill.(b)) <- v;
    pfill.(b) <- pfill.(b) + 1
  done;

  (* -- Renaming ------------------------------------------------------ *)
  let next_id = ref 0 in
  let next_ver = Array.make (max 1 nvars) 0 in
  let fresh base_idx =
    let v = vars.(base_idx) in
    let n = { base = v; ver = next_ver.(base_idx); id = !next_id } in
    next_ver.(base_idx) <- next_ver.(base_idx) + 1;
    incr next_id;
    n
  in
  (* Reaching definition per var slot, with an undo log replacing the
     per-var cons stacks: entering a block records (slot, previous name)
     pairs in two parallel growable arrays; leaving restores them. *)
  let cur =
    if nvars = 0 then [||]
    else Array.make nvars { base = vars.(0); ver = -1; id = -1 }
  in
  let undo_slot = ref (Array.make 64 0) in
  let undo_prev = ref ([||] : name array) in
  let undo_len = ref 0 in
  let push_undo slot prev =
    let cap = Array.length !undo_slot in
    if Array.length !undo_prev < cap then begin
      let np = Array.make cap prev in
      Array.blit !undo_prev 0 np 0 !undo_len;
      undo_prev := np
    end;
    if !undo_len = cap then begin
      let ns = Array.make (2 * cap) 0 in
      Array.blit !undo_slot 0 ns 0 cap;
      undo_slot := ns;
      let np = Array.make (2 * cap) prev in
      Array.blit !undo_prev 0 np 0 cap;
      undo_prev := np
    end;
    !undo_slot.(!undo_len) <- slot;
    !undo_prev.(!undo_len) <- prev;
    incr undo_len
  in
  let define base_idx n =
    push_undo base_idx cur.(base_idx);
    cur.(base_idx) <- n
  in
  (* Entry definitions: version 0 of every var (never popped). *)
  let entry_names = Array.map (fun v -> (v, fresh (vidx v))) vars in
  Array.iter (fun (_, n) -> cur.(vidx n.base) <- n) entry_names;

  (* Output blocks under construction. *)
  let out_phis : phi array array = Array.make nblocks [||] in
  let out_instrs : instr array array = Array.make nblocks [||] in
  let out_terms : terminator array = Array.make nblocks Ret in
  let exit_names_acc : (int * (Ir.var * name) array) list ref = ref [] in
  (* Preallocated positional phi-argument stores: slot k of a store is the
     incoming value from the block's k-th predecessor, written when that
     predecessor is renamed (which may happen before the block itself). *)
  let args_store : (int * name) array array array =
    if nvars = 0 then Array.make nblocks [||]
    else begin
      let dummy_arg = (-1, { base = vars.(0); ver = -1; id = -1 }) in
      Array.init nblocks (fun s ->
          let np = Array.length pred_edge.(s) in
          Array.init (Array.length phi_vars.(s)) (fun _ ->
              Array.make np dummy_arg))
    end
  in
  (* The formals and globals whose reaching version each return records,
     as ascending var slots. *)
  let n_evars = ref 0 in
  Array.iter
    (fun (v : Ir.var) ->
      match v.Ir.vkind with
      | Ir.Formal _ | Ir.Global -> incr n_evars
      | Ir.Local | Ir.Temp -> ())
    vars;
  let evars = Array.make !n_evars 0 in
  let k = ref 0 in
  Array.iteri
    (fun s (v : Ir.var) ->
      match v.Ir.vkind with
      | Ir.Formal _ | Ir.Global ->
          evars.(!k) <- s;
          incr k
      | Ir.Local | Ir.Temp -> ())
    vars;

  let rename_operand (o : Ir.operand) : operand =
    match o with
    | Ir.Const v -> Oconst v
    | Ir.Var v -> Oname cur.(vidx v)
  in
  let rename_rhs = function
    | Ir.Copy o -> Copy (rename_operand o)
    | Ir.Unop (op, o) -> Unop (op, rename_operand o)
    | Ir.Binop (op, a, b) -> Binop (op, rename_operand a, rename_operand b)
  in
  let dummy_instr = Print (Oconst (Value.Int 0)) in

  let rec rename_block b =
    let depth0 = !undo_len in
    (* Phis define first. *)
    let phis =
      Array.map
        (fun v ->
          let n = fresh v in
          define v n;
          { p_name = n; p_args = [||]; p_edges = [||] })
        phi_vars.(b)
    in
    out_phis.(b) <- phis;
    (* Instructions, into an exactly-sized array.  One IR instruction can
       yield two SSA instructions (an assignment then its alias [Kill]). *)
    let blk = cfg.Ir.blocks.(b) in
    let ninstrs = Array.length blk.Ir.instrs in
    let extra = ref 0 in
    for i = 0 to ninstrs - 1 do
      if kill_at.(iord b i) <> [] then incr extra
    done;
    let out = Array.make (ninstrs + !extra) dummy_instr in
    let ko = ref 0 in
    let emit ins =
      out.(!ko) <- ins;
      incr ko
    in
    Array.iteri
      (fun i ins ->
        match ins with
        | Ir.Assign (v, rhs) ->
            let rhs = rename_rhs rhs in
            let n = fresh (vidx v) in
            define (vidx v) n;
            emit (Assign (n, rhs));
            (match kill_at.(iord b i) with
            | [] -> ()
            | ks ->
                let kills =
                  Array.of_list
                    (List.map
                       (fun w ->
                         let kn = fresh (vidx w) in
                         define (vidx w) kn;
                         (w, kn))
                       ks)
                in
                emit (Kill kills))
        | Ir.Print o -> emit (Print (rename_operand o))
        | Ir.Call { cs_id; callee; args } ->
            let c_args =
              Array.map
                (fun (a : Ir.arg) ->
                  {
                    sa_operand = rename_operand a.Ir.a_operand;
                    sa_byref = a.Ir.a_byref;
                  })
                args
            in
            let gs = call_gs.(iord b i) in
            let ng = List.length gs in
            let c_global_uses =
              if ng = 0 then [||]
              else begin
                let g0 = List.hd gs in
                let arr = Array.make ng (g0, cur.(vidx g0)) in
                let r = ref gs in
                for j = 0 to ng - 1 do
                  (match !r with
                  | g :: tl ->
                      arr.(j) <- (g, cur.(vidx g));
                      r := tl
                  | [] -> assert false)
                done;
                arr
              end
            in
            let c_guse_slots = Array.make ng 0 in
            let c_guse_ids = Array.make ng 0 in
            for j = 0 to ng - 1 do
              let g, n = c_global_uses.(j) in
              c_guse_slots.(j) <- vidx g;
              c_guse_ids.(j) <- n.id
            done;
            (* Parallel insertion sort by slot (ng is small). *)
            for j = 1 to ng - 1 do
              let s = c_guse_slots.(j) and id = c_guse_ids.(j) in
              let m = ref (j - 1) in
              while !m >= 0 && c_guse_slots.(!m) > s do
                c_guse_slots.(!m + 1) <- c_guse_slots.(!m);
                c_guse_ids.(!m + 1) <- c_guse_ids.(!m);
                decr m
              done;
              c_guse_slots.(!m + 1) <- s;
              c_guse_ids.(!m + 1) <- id
            done;
            let ds = call_ds.(iord b i) in
            let nd = List.length ds in
            let c_defs =
              if nd = 0 then [||]
              else begin
                let arr = Array.make nd (List.hd ds, cur.(0)) in
                let r = ref ds in
                for j = 0 to nd - 1 do
                  (match !r with
                  | v :: tl ->
                      let n = fresh (vidx v) in
                      define (vidx v) n;
                      arr.(j) <- (v, n);
                      r := tl
                  | [] -> assert false)
                done;
                arr
              end
            in
            emit
              (Call
                 { c_cs_id = cs_id; c_callee = callee; c_args; c_global_uses;
                   c_defs; c_guse_slots; c_guse_ids; c_def_base = -1 }))
      blk.Ir.instrs;
    assert (!ko = Array.length out);
    out_instrs.(b) <- out;
    (* Record reaching versions of formals and globals at returns. *)
    (match blk.Ir.term with
    | Ir.Ret ->
        exit_names_acc :=
          (b, Array.map (fun s -> (vars.(s), cur.(s))) evars)
          :: !exit_names_acc
    | Ir.Goto _ | Ir.Cond _ -> ());
    (* Terminator. *)
    out_terms.(b) <-
      (match blk.Ir.term with
      | Ir.Goto t -> Goto t
      | Ir.Cond (c, t, f) -> Cond (rename_operand c, t, f)
      | Ir.Ret -> Ret);
    (* Fill phi arguments of successors, positionally. *)
    for e = edge_base.(b) to edge_base.(b + 1) - 1 do
      let s = edge_dst.(e) in
      let pos = pred_pos.(e) in
      let pv = phi_vars.(s) in
      let store = args_store.(s) in
      for pi = 0 to Array.length pv - 1 do
        store.(pi).(pos) <- (b, cur.(pv.(pi)))
      done
    done;
    (* Recurse over dominator-tree children. *)
    List.iter rename_block dom.Dominance.children.(b);
    (* Restore the reaching definitions of the enclosing block. *)
    while !undo_len > depth0 do
      decr undo_len;
      cur.(!undo_slot.(!undo_len)) <- !undo_prev.(!undo_len)
    done
  in
  rename_block cfg.Ir.entry;

  (* Attach the positional argument stores (every phi of a block shares
     the block's predecessor-ordered edge vector).  A store slot left at
     its dummy (an unrenamed, unreachable predecessor) is dropped. *)
  let blocks =
    Array.init nblocks (fun b ->
        let phis =
          Array.mapi
            (fun pi (ph : phi) ->
              let p_args = args_store.(b).(pi) in
              let live = ref 0 in
              Array.iter
                (fun ((_, n) : int * name) -> if n.id >= 0 then incr live)
                p_args;
              if !live = Array.length p_args then
                { ph with p_args; p_edges = pred_edge.(b) }
              else begin
                let pa = Array.make !live p_args.(0) in
                let pe = Array.make !live 0 in
                let j = ref 0 in
                Array.iteri
                  (fun k ((_, n) as a : int * name) ->
                    if n.id >= 0 then begin
                      pa.(!j) <- a;
                      pe.(!j) <- pred_edge.(b).(k);
                      incr j
                    end)
                  p_args;
                { ph with p_args = pa; p_edges = pe }
              end)
            out_phis.(b)
        in
        { phis; instrs = out_instrs.(b); term = out_terms.(b) })
  in

  (* -- Dense site ids ------------------------------------------------ *)
  let site_base = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    site_base.(b + 1) <-
      site_base.(b)
      + Array.length blocks.(b).phis
      + Array.length blocks.(b).instrs
      + 1 (* terminator *)
  done;
  let n_sites = site_base.(nblocks) in
  let site_code = Array.make (max 1 n_sites) 0 in
  for b = 0 to nblocks - 1 do
    let base = site_base.(b) in
    let nphis = Array.length blocks.(b).phis in
    let ninstrs = Array.length blocks.(b).instrs in
    for pi = 0 to nphis - 1 do
      site_code.(base + pi) <- pack_site ~tag:site_tag_phi ~block:b ~index:pi
    done;
    for i = 0 to ninstrs - 1 do
      site_code.(base + nphis + i) <-
        pack_site ~tag:site_tag_instr ~block:b ~index:i
    done;
    site_code.(base + nphis + ninstrs) <-
      pack_site ~tag:site_tag_term ~block:b ~index:0
  done;
  let phi_site b pi = site_base.(b) + pi in
  let instr_site b i = site_base.(b) + Array.length blocks.(b).phis + i in
  let term_site b =
    site_base.(b) + Array.length blocks.(b).phis
    + Array.length blocks.(b).instrs
  in

  (* -- Def sites and CSR def-use chains ------------------------------ *)
  let n_names = !next_id in
  (* Same packing as [site_code]; -1 is the entry definition. *)
  let defs = Array.make n_names (-1) in
  (* Two passes over one closure-free traversal: count uses per name, then
     fill.  The second pass advances the offsets in place; shifting them
     back afterwards avoids a scratch cursor array. *)
  let use_offsets = Array.make (n_names + 1) 0 in
  let iter_uses f =
    for b = 0 to nblocks - 1 do
      let blk = blocks.(b) in
      for pi = 0 to Array.length blk.phis - 1 do
        let pa = blk.phis.(pi).p_args in
        for j = 0 to Array.length pa - 1 do
          let _, n = pa.(j) in
          f n (phi_site b pi)
        done
      done;
      for i = 0 to Array.length blk.instrs - 1 do
        let site = instr_site b i in
        (* Operand matches are inlined (not a local [use_operand] helper)
           so the loop allocates no closures. *)
        match blk.instrs.(i) with
        | Assign (_, rhs) -> (
            match rhs with
            | Copy (Oname n) | Unop (_, Oname n) -> f n site
            | Copy (Oconst _) | Unop (_, Oconst _) -> ()
            | Binop (_, x, y) ->
                (match x with Oname n -> f n site | Oconst _ -> ());
                (match y with Oname n -> f n site | Oconst _ -> ()))
        | Kill _ -> ()
        | Call c ->
            for j = 0 to Array.length c.c_args - 1 do
              (match c.c_args.(j).sa_operand with
              | Oname n -> f n site
              | Oconst _ -> ())
            done;
            for j = 0 to Array.length c.c_global_uses - 1 do
              let _, n = c.c_global_uses.(j) in
              f n site
            done
        | Print (Oname n) -> f n site
        | Print (Oconst _) -> ()
      done;
      match blk.term with
      | Cond (c, _, _) -> (
          match c with Oname n -> f n (term_site b) | Oconst _ -> ())
      | Goto _ | Ret -> ()
    done
  in
  iter_uses (fun n _ -> use_offsets.(n.id + 1) <- use_offsets.(n.id + 1) + 1);
  for i = 0 to n_names - 1 do
    use_offsets.(i + 1) <- use_offsets.(i + 1) + use_offsets.(i)
  done;
  let use_sites = Array.make (max 1 use_offsets.(n_names)) 0 in
  iter_uses (fun n site ->
      use_sites.(use_offsets.(n.id)) <- site;
      use_offsets.(n.id) <- use_offsets.(n.id) + 1);
  for i = n_names downto 1 do
    use_offsets.(i) <- use_offsets.(i - 1)
  done;
  use_offsets.(0) <- 0;
  for b = 0 to nblocks - 1 do
    let blk = blocks.(b) in
    for pi = 0 to Array.length blk.phis - 1 do
      defs.(blk.phis.(pi).p_name.id) <-
        pack_site ~tag:site_tag_phi ~block:b ~index:pi
    done;
    for i = 0 to Array.length blk.instrs - 1 do
      let d = pack_site ~tag:site_tag_instr ~block:b ~index:i in
      match blk.instrs.(i) with
      | Assign (n, _) -> defs.(n.id) <- d
      | Kill kills ->
          for j = 0 to Array.length kills - 1 do
            let _, n = kills.(j) in
            defs.(n.id) <- d
          done
      | Call c ->
          for j = 0 to Array.length c.c_defs - 1 do
            let _, n = c.c_defs.(j) in
            defs.(n.id) <- d
          done
      | Print _ -> ()
    done
  done;

  (* -- Var slot tables, flat call list ------------------------------- *)
  let entry_ids = Array.map (fun (_, n) -> n.id) entry_names in
  let exit_names = List.rev !exit_names_acc in
  let exit_ids =
    List.map
      (fun (b, arr) ->
        let tbl = Array.make nvars (-1) in
        Array.iter
          (fun ((v : Ir.var), (n : name)) -> tbl.(vidx v) <- n.id)
          arr;
        (b, tbl))
      exit_names
    |> Array.of_list
  in
  let calls_acc = ref [] in
  let n_calls = ref 0 in
  let n_call_defs = ref 0 in
  for b = nblocks - 1 downto 0 do
    let blk = blocks.(b) in
    for i = Array.length blk.instrs - 1 downto 0 do
      match blk.instrs.(i) with
      | Call c ->
          incr n_calls;
          calls_acc := (b, i, c) :: !calls_acc
      | Assign _ | Kill _ | Print _ -> ()
    done
  done;
  let calls = Array.of_list !calls_acc in
  Array.iter
    (fun (_, _, c) ->
      c.c_def_base <- !n_call_defs;
      n_call_defs := !n_call_defs + Array.length c.c_defs)
    calls;
  {
    name = p.Ir.name;
    formals = p.Ir.formals;
    blocks;
    entry = cfg.Ir.entry;
    preds;
    dom;
    entry_names;
    exit_names;
    n_names;
    defs;
    use_offsets;
    use_sites;
    n_sites;
    site_code;
    n_edges;
    edge_base;
    edge_dst;
    vars;
    var_keys;
    entry_ids;
    exit_ids;
    calls;
    n_call_defs = !n_call_defs;
    n_call_sites = p.Ir.n_call_sites;
    memo = No_memo;
  }

(* ------------------------------------------------------------------ *)
(* Queries and validation                                              *)
(* ------------------------------------------------------------------ *)

(** The variable's dense slot in this procedure's universe, or -1.
    Binary search over the sorted [var_keys] — alloc- and hash-free. *)
let slot_of (p : proc) (v : Ir.var) : int =
  let k = Ir.Var.slot_key v in
  let keys = p.var_keys in
  let lo = ref 0 and hi = ref (Array.length keys - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let km = keys.(mid) in
    if km = k then begin
      res := mid;
      lo := !hi + 1
    end
    else if km < k then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(** The entry (version-0) name of a variable, if it exists in the proc. *)
let entry_name (p : proc) (v : Ir.var) : name option =
  let s = slot_of p v in
  if s < 0 then None else Some (snd p.entry_names.(s))

(** Decode a dense site id back to its structured form. *)
let decode_site (p : proc) (s : int) : use_site =
  let code = p.site_code.(s) in
  let b = (code lsr 2) land 0xffffffff in
  let idx = code lsr 34 in
  match code land 3 with
  | 0 -> Uphi (b, idx)
  | 1 -> Uinstr (b, idx)
  | _ -> Uterm b

(** The use sites of name [id], decoded from the CSR row (traversal
    order).  Convenience for tests and reference implementations; the SCC
    kernel walks [use_offsets]/[use_sites] directly. *)
let uses_of (p : proc) (id : int) : use_site list =
  let lo = p.use_offsets.(id) and hi = p.use_offsets.(id + 1) in
  List.init (hi - lo) (fun k -> decode_site p p.use_sites.(lo + k))

(** All call instructions, as [(block, instr index, call)] in block order. *)
let call_sites (p : proc) : (int * int * call) list = Array.to_list p.calls

(** Structural invariants, raised upon by the test-suite:
    - every name has exactly one definition site;
    - each phi has exactly one argument per predecessor;
    - uses are reachable from their definitions (def dominates use for
      instruction uses; for phi uses, def dominates the corresponding
      predecessor block). *)
let validate (p : proc) : (unit, string) result =
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let seen = Array.make p.n_names false in
  let def_block = Array.make p.n_names (-1) in
  let ok = ref (Ok ()) in
  let check_def n b =
    if seen.(n.id) then ok := err "name %a defined twice" pp_name n
    else begin
      seen.(n.id) <- true;
      def_block.(n.id) <- b
    end
  in
  Array.iter (fun (_, n) -> check_def n p.entry) p.entry_names;
  Array.iteri
    (fun b (blk : block) ->
      Array.iter (fun (ph : phi) -> check_def ph.p_name b) blk.phis;
      Array.iter
        (function
          | Assign (n, _) -> check_def n b
          | Kill kills -> Array.iter (fun (_, n) -> check_def n b) kills
          | Call c -> Array.iter (fun (_, n) -> check_def n b) c.c_defs
          | Print _ -> ())
        blk.instrs)
    p.blocks;
  (match !ok with
  | Error _ -> ()
  | Ok () ->
      Array.iteri
        (fun b (blk : block) ->
          let npreds = List.length p.preds.(b) in
          Array.iter
            (fun (ph : phi) ->
              if Array.length ph.p_args <> npreds then
                ok :=
                  err "phi %a at B%d has %d args for %d preds" pp_name
                    ph.p_name b (Array.length ph.p_args) npreds)
            blk.phis)
        p.blocks);
  !ok

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "ssa proc %s:@\n" p.name;
  Array.iteri
    (fun b (blk : block) ->
      Fmt.pf ppf "B%d:@\n" b;
      Array.iter
        (fun (ph : phi) ->
          Fmt.pf ppf "  %a = phi(%a)@\n" pp_name ph.p_name
            Fmt.(
              array ~sep:(any ", ") (fun ppf (pred, n) ->
                  pf ppf "B%d:%a" pred pp_name n))
            ph.p_args)
        blk.phis;
      Array.iter
        (fun ins ->
          match ins with
          | Assign (n, rhs) -> Fmt.pf ppf "  %a = %a@\n" pp_name n pp_rhs rhs
          | Kill kills ->
              Fmt.pf ppf "  kill(%a)@\n"
                Fmt.(array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                kills
          | Call c ->
              Fmt.pf ppf "  call[%d] %s(%a) defs(%a)@\n" c.c_cs_id c.c_callee
                Fmt.(
                  array ~sep:(any ", ") (fun ppf a -> pp_operand ppf a.sa_operand))
                c.c_args
                Fmt.(
                  array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                c.c_defs
          | Print o -> Fmt.pf ppf "  print %a@\n" pp_operand o)
        blk.instrs;
      match blk.term with
      | Goto t -> Fmt.pf ppf "  goto B%d@\n" t
      | Cond (c, t, f) ->
          Fmt.pf ppf "  if %a then B%d else B%d@\n" pp_operand c t f
      | Ret -> Fmt.pf ppf "  ret@\n")
    p.blocks
