(** Static single assignment form (Cytron et al.), over the {!Fsicp_cfg.Ir}
    quad IR.

    The paper's intraprocedural analysis — Wegman–Zadeck Sparse Conditional
    Constant propagation — is "built upon an implementation of SSA data-flow
    analysis"; this module is that implementation.

    Besides ordinary assignments, {e call} instructions are definition
    points: a call may write through its by-reference actuals and may modify
    globals.  Which variables a particular call defines, and which globals'
    values at the call the interprocedural phase wants recorded, are
    supplied by a {!call_effects} oracle (in the full pipeline this oracle
    is the interprocedural MOD/REF information; tests can use the
    conservative {!conservative_effects}).

    Every variable has an implicit {e entry definition} (version 0) in the
    entry block, whose lattice value the constant propagator takes from its
    entry environment — this is precisely the hook through which
    interprocedural constants enter the intraprocedural analysis. *)

open Fsicp_lang
open Fsicp_cfg

(** An SSA name: a base IR variable plus version.  [id] is a dense index
    unique within the procedure, used for constant-time lattice lookups. *)
type name = { base : Ir.var; ver : int; id : int }

let pp_name ppf n = Fmt.pf ppf "%a.%d" Ir.Var.pp n.base n.ver

type operand = Oconst of Value.t | Oname of name

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Oname n -> pp_name ppf n

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

let pp_rhs ppf = function
  | Copy o -> pp_operand ppf o
  | Unop (op, o) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_operand o
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a %a %a" pp_operand a Ops.pp_binop op pp_operand b

type ssa_arg = { sa_operand : operand; sa_byref : Ir.var option }

type call = {
  c_cs_id : int;  (** call-site id (textual order, from lowering) *)
  c_callee : string;
  c_args : ssa_arg array;
  c_global_uses : (Ir.var * name) array;
      (** reaching SSA version of each global whose value at this call the
          interprocedural analysis needs (callee's REF set) *)
  c_defs : (Ir.var * name) array;
      (** fresh versions for the variables this call may modify *)
}

type instr =
  | Assign of name * rhs
  | Kill of (Ir.var * name) array
      (** alias kill: fresh, unknown-valued versions of variables whose
          location may have been written by the {e preceding} assignment
          through a reference-parameter alias.  Keeps SSA sound when a
          store through one name may change the value of another. *)
  | Call of call
  | Print of operand

type phi = {
  p_name : name;
  p_args : (int * name) array;  (** (predecessor block, incoming name) *)
}

type terminator = Goto of int | Cond of operand * int * int | Ret

type block = {
  phis : phi array;
  instrs : instr array;
  term : terminator;
}

(** Where a name is defined; used by def–use chains and the SCC worklist. *)
type def_site =
  | Dentry  (** version 0, defined at procedure entry *)
  | Dinstr of int * int  (** (block, instruction index) — assign or call *)
  | Dphi of int * int  (** (block, phi index) *)

(** A use site; pushing these onto the SCC's SSA worklist re-evaluates the
    corresponding phi/instruction/terminator. *)
type use_site =
  | Uphi of int * int  (** (block, phi index) *)
  | Uinstr of int * int  (** (block, instruction index) *)
  | Uterm of int  (** block terminator (condition) *)

type proc = {
  name : string;
  formals : Ir.var array;
  blocks : block array;
  entry : int;
  preds : int list array;
  dom : Dominance.t;
  entry_names : (Ir.var * name) array;  (** version-0 names, all variables *)
  exit_names : (int * (Ir.var * name) array) list;
      (** for each [Ret]-terminated block: the SSA version of every formal
          and global reaching the return — the values a call observes after
          the procedure finishes (drives the return-constants extension) *)
  n_names : int;
  defs : def_site array;  (** indexed by name id *)
  uses : use_site list array;  (** indexed by name id *)
  n_call_sites : int;
}

(** Oracle describing interprocedural side effects of calls and of stores
    through possibly-aliased names. *)
type call_effects = {
  defs_of_call : callee:string -> byref_args:Ir.var option array -> Ir.var list;
      (** variables (caller-side) the call may define *)
  globals_used_by : callee:string -> Ir.var list;
      (** globals whose reaching value should be recorded at the call *)
  assign_aliases : Ir.var -> Ir.var list;
      (** variables whose location a store to the given variable may also
          write (reference-parameter may-aliases); each direct assignment
          is followed by a {!Kill} of these *)
}

(** Sound default when MOD/REF and alias information are unavailable: a
    call may define every by-reference actual and every global of the
    program; the value of every global is relevant; and — since any two
    by-reference names could alias — a store to a formal clobbers every
    other formal and every global (and vice versa).  The full pipeline
    replaces this with the {!Fsicp_ipa} oracles, which is where all the
    precision comes from. *)
let conservative_effects ?(formals : Ir.var list = []) (prog : Ast.program) :
    call_effects =
  let globals = List.map Ir.global prog.Ast.globals in
  {
    defs_of_call =
      (fun ~callee:_ ~byref_args ->
        let byrefs =
          Array.to_list byref_args |> List.filter_map (fun x -> x)
        in
        List.sort_uniq Ir.Var.compare (byrefs @ globals));
    globals_used_by = (fun ~callee:_ -> globals);
    assign_aliases =
      (fun v ->
        match v.Ir.vkind with
        | Ir.Formal _ | Ir.Global ->
            List.filter
              (fun w -> not (Ir.Var.equal v w))
              (formals @ globals)
        | Ir.Local | Ir.Temp -> []);
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let byref_array (args : Ir.arg array) : Ir.var option array =
  Array.map (fun (a : Ir.arg) -> a.Ir.a_byref) args

(** Build SSA form for a lowered procedure. *)
let of_proc ?(effects : call_effects option) (prog : Ast.program)
    (p : Ir.proc) : proc =
  let effects =
    match effects with
    | Some e -> e
    | None ->
        conservative_effects ~formals:(Array.to_list p.Ir.formals) prog
  in
  let cfg = p.Ir.cfg in
  let nblocks = Array.length cfg.Ir.blocks in
  let preds = Ir.predecessors cfg in
  let dom = Dominance.compute cfg in
  let df = Dominance.frontiers cfg dom in

  (* -- The variable universe ---------------------------------------- *)
  (* Occurring vars, plus call-defined vars and recorded globals. *)
  let universe = ref (Ir.occurring_vars p) in
  let call_defs_cache : (int * int, Ir.var list) Hashtbl.t = Hashtbl.create 8 in
  let call_guses_cache : (int * int, Ir.var list) Hashtbl.t = Hashtbl.create 8 in
  let kill_cache : (int * int, Ir.var list) Hashtbl.t = Hashtbl.create 8 in
  Ir.iter_instrs
    (fun ~block ~index ins ->
      match ins with
      | Ir.Call { callee; args; _ } ->
          let ds =
            effects.defs_of_call ~callee ~byref_args:(byref_array args)
          in
          let gs = effects.globals_used_by ~callee in
          Hashtbl.replace call_defs_cache (block, index) ds;
          Hashtbl.replace call_guses_cache (block, index) gs;
          List.iter (fun v -> universe := Ir.VarSet.add v !universe) ds;
          List.iter (fun v -> universe := Ir.VarSet.add v !universe) gs
      | Ir.Assign (v, _) ->
          let ks =
            List.sort_uniq Ir.Var.compare (effects.assign_aliases v)
            |> List.filter (fun w -> not (Ir.Var.equal v w))
          in
          if ks <> [] then Hashtbl.replace kill_cache (block, index) ks;
          List.iter (fun w -> universe := Ir.VarSet.add w !universe) ks
      | Ir.Print _ -> ())
    cfg;
  let vars = Array.of_list (Ir.VarSet.elements !universe) in
  let nvars = Array.length vars in
  let var_index : int Ir.VarMap.t =
    Array.to_list vars
    |> List.mapi (fun i v -> (v, i))
    |> List.to_seq |> Ir.VarMap.of_seq
  in
  let vidx v = Ir.VarMap.find v var_index in

  (* -- Phi placement (iterated dominance frontier) ------------------- *)
  let def_blocks = Array.make nvars [] in
  Ir.iter_instrs
    (fun ~block ~index ins ->
      match ins with
      | Ir.Assign (v, _) ->
          def_blocks.(vidx v) <- block :: def_blocks.(vidx v);
          List.iter
            (fun w -> def_blocks.(vidx w) <- block :: def_blocks.(vidx w))
            (Option.value (Hashtbl.find_opt kill_cache (block, index))
               ~default:[])
      | Ir.Call _ ->
          List.iter
            (fun v -> def_blocks.(vidx v) <- block :: def_blocks.(vidx v))
            (Hashtbl.find call_defs_cache (block, index))
      | Ir.Print _ -> ())
    cfg;
  (* The entry block implicitly defines version 0 of everything. *)
  for i = 0 to nvars - 1 do
    def_blocks.(i) <- cfg.Ir.entry :: def_blocks.(i)
  done;
  (* phis_at.(b) = list of var indices needing a phi at block b *)
  let phis_at = Array.make nblocks [] in
  let has_phi = Hashtbl.create 64 in
  for v = 0 to nvars - 1 do
    let work = ref (List.sort_uniq Int.compare def_blocks.(v)) in
    let ever = Hashtbl.create 8 in
    List.iter (fun b -> Hashtbl.replace ever b ()) !work;
    while !work <> [] do
      match !work with
      | [] -> ()
      | b :: rest ->
          work := rest;
          List.iter
            (fun y ->
              if not (Hashtbl.mem has_phi (y, v)) then begin
                Hashtbl.replace has_phi (y, v) ();
                phis_at.(y) <- v :: phis_at.(y);
                if not (Hashtbl.mem ever y) then begin
                  Hashtbl.replace ever y ();
                  work := y :: !work
                end
              end)
            df.(b)
    done
  done;
  Array.iteri (fun b l -> phis_at.(b) <- List.rev l) phis_at;

  (* -- Renaming ------------------------------------------------------ *)
  let next_id = ref 0 in
  let next_ver = Array.make nvars 0 in
  let fresh base_idx =
    let v = vars.(base_idx) in
    let n = { base = v; ver = next_ver.(base_idx); id = !next_id } in
    next_ver.(base_idx) <- next_ver.(base_idx) + 1;
    incr next_id;
    n
  in
  let stacks : name list array = Array.make nvars [] in
  let push n = stacks.(vidx n.base) <- n :: stacks.(vidx n.base) in
  let top base_idx =
    match stacks.(base_idx) with
    | n :: _ -> n
    | [] -> assert false (* entry def dominates everything *)
  in
  (* Entry definitions: version 0 of every var. *)
  let entry_names = Array.map (fun v -> (v, fresh (vidx v))) vars in
  Array.iter (fun (_, n) -> push n) entry_names;

  (* Output blocks under construction. *)
  let out_phis : phi array array = Array.make nblocks [||] in
  let out_instrs : instr array array = Array.make nblocks [||] in
  let out_terms : terminator array =
    Array.make nblocks Ret
  in
  (* phi argument accumulation: (block, phi index) -> (pred, name) list *)
  let phi_args : (int * int, (int * name) list) Hashtbl.t = Hashtbl.create 64 in
  let exit_names_acc : (int * (Ir.var * name) array) list ref = ref [] in
  (* Remember which var each phi at a block is for, in order. *)
  let phi_vars : int array array = Array.make nblocks [||] in
  Array.iteri
    (fun b l -> phi_vars.(b) <- Array.of_list l)
    phis_at;

  let rename_operand (o : Ir.operand) : operand =
    match o with
    | Ir.Const v -> Oconst v
    | Ir.Var v -> Oname (top (vidx v))
  in
  let rename_rhs = function
    | Ir.Copy o -> Copy (rename_operand o)
    | Ir.Unop (op, o) -> Unop (op, rename_operand o)
    | Ir.Binop (op, a, b) -> Binop (op, rename_operand a, rename_operand b)
  in

  let rec rename_block b =
    let pushed = ref [] in
    let push' n =
      push n;
      pushed := vidx n.base :: !pushed
    in
    (* Phis define first. *)
    let phis =
      Array.map
        (fun v ->
          let n = fresh v in
          push' n;
          { p_name = n; p_args = [||] })
        phi_vars.(b)
    in
    out_phis.(b) <- phis;
    (* Instructions.  One IR instruction can yield two SSA instructions
       (an assignment followed by its alias [Kill]). *)
    let blk = cfg.Ir.blocks.(b) in
    let acc = ref [] in
    Array.iteri
      (fun i ins ->
        match ins with
        | Ir.Assign (v, rhs) ->
            let rhs = rename_rhs rhs in
            let n = fresh (vidx v) in
            push' n;
            acc := Assign (n, rhs) :: !acc;
            (match Hashtbl.find_opt kill_cache (b, i) with
            | None | Some [] -> ()
            | Some ks ->
                let kills =
                  List.map
                    (fun w ->
                      let kn = fresh (vidx w) in
                      push' kn;
                      (w, kn))
                    ks
                in
                acc := Kill (Array.of_list kills) :: !acc)
        | Ir.Print o -> acc := Print (rename_operand o) :: !acc
        | Ir.Call { cs_id; callee; args } ->
            let c_args =
              Array.map
                (fun (a : Ir.arg) ->
                  {
                    sa_operand = rename_operand a.Ir.a_operand;
                    sa_byref = a.Ir.a_byref;
                  })
                args
            in
            let c_global_uses =
              Hashtbl.find call_guses_cache (b, i)
              |> List.map (fun g -> (g, top (vidx g)))
              |> Array.of_list
            in
            let c_defs =
              Hashtbl.find call_defs_cache (b, i)
              |> List.map (fun v ->
                     let n = fresh (vidx v) in
                     push' n;
                     (v, n))
              |> Array.of_list
            in
            acc :=
              Call
                { c_cs_id = cs_id; c_callee = callee; c_args; c_global_uses;
                  c_defs }
              :: !acc)
      blk.Ir.instrs;
    out_instrs.(b) <- Array.of_list (List.rev !acc);
    (* Record reaching versions of formals and globals at returns. *)
    (match blk.Ir.term with
    | Ir.Ret ->
        let interesting =
          Array.to_list vars
          |> List.filter (fun (v : Ir.var) ->
                 match v.Ir.vkind with
                 | Ir.Formal _ | Ir.Global -> true
                 | Ir.Local | Ir.Temp -> false)
        in
        exit_names_acc :=
          (b, Array.of_list (List.map (fun v -> (v, top (vidx v))) interesting))
          :: !exit_names_acc
    | Ir.Goto _ | Ir.Cond _ -> ());
    (* Terminator. *)
    out_terms.(b) <-
      (match blk.Ir.term with
      | Ir.Goto t -> Goto t
      | Ir.Cond (c, t, f) -> Cond (rename_operand c, t, f)
      | Ir.Ret -> Ret);
    (* Fill phi arguments of successors. *)
    List.iter
      (fun s ->
        Array.iteri
          (fun pi v ->
            let cur = top v in
            let key = (s, pi) in
            let l = Option.value (Hashtbl.find_opt phi_args key) ~default:[] in
            Hashtbl.replace phi_args key ((b, cur) :: l))
          phi_vars.(s))
      (Ir.successors blk);
    (* Recurse over dominator-tree children. *)
    List.iter rename_block dom.Dominance.children.(b);
    (* Pop. *)
    List.iter
      (fun vi ->
        match stacks.(vi) with
        | _ :: tl -> stacks.(vi) <- tl
        | [] -> assert false)
      !pushed
  in
  rename_block cfg.Ir.entry;

  (* Attach accumulated phi arguments. *)
  let blocks =
    Array.init nblocks (fun b ->
        let phis =
          Array.mapi
            (fun pi (ph : phi) ->
              let args =
                Option.value (Hashtbl.find_opt phi_args (b, pi)) ~default:[]
              in
              { ph with p_args = Array.of_list (List.rev args) })
            out_phis.(b)
        in
        { phis; instrs = out_instrs.(b); term = out_terms.(b) })
  in

  (* -- Def sites and def-use chains ---------------------------------- *)
  let n_names = !next_id in
  let defs = Array.make n_names Dentry in
  let uses : use_site list array = Array.make n_names [] in
  let add_use n site = uses.(n.id) <- site :: uses.(n.id) in
  let use_operand o site =
    match o with Oconst _ -> () | Oname n -> add_use n site
  in
  Array.iteri
    (fun b (blk : block) ->
      Array.iteri
        (fun pi (ph : phi) ->
          defs.(ph.p_name.id) <- Dphi (b, pi);
          Array.iter (fun (_, n) -> add_use n (Uphi (b, pi))) ph.p_args)
        blk.phis;
      Array.iteri
        (fun i ins ->
          match ins with
          | Assign (n, rhs) ->
              defs.(n.id) <- Dinstr (b, i);
              (match rhs with
              | Copy o | Unop (_, o) -> use_operand o (Uinstr (b, i))
              | Binop (_, x, y) ->
                  use_operand x (Uinstr (b, i));
                  use_operand y (Uinstr (b, i)))
          | Kill kills ->
              Array.iter (fun (_, n) -> defs.(n.id) <- Dinstr (b, i)) kills
          | Call c ->
              Array.iter (fun (_, n) -> defs.(n.id) <- Dinstr (b, i)) c.c_defs;
              Array.iter
                (fun (a : ssa_arg) -> use_operand a.sa_operand (Uinstr (b, i)))
                c.c_args;
              Array.iter (fun (_, n) -> add_use n (Uinstr (b, i))) c.c_global_uses
          | Print o -> use_operand o (Uinstr (b, i)))
        blk.instrs;
      match blk.term with
      | Cond (c, _, _) -> use_operand c (Uterm b)
      | Goto _ | Ret -> ())
    blocks;

  {
    name = p.Ir.name;
    formals = p.Ir.formals;
    blocks;
    entry = cfg.Ir.entry;
    preds;
    dom;
    entry_names;
    exit_names = List.rev !exit_names_acc;
    n_names;
    defs;
    uses;
    n_call_sites = p.Ir.n_call_sites;
  }

(* ------------------------------------------------------------------ *)
(* Queries and validation                                              *)
(* ------------------------------------------------------------------ *)

(** The entry (version-0) name of a variable, if it exists in the proc. *)
let entry_name (p : proc) (v : Ir.var) : name option =
  Array.fold_left
    (fun acc (v', n) -> if Ir.Var.equal v v' then Some n else acc)
    None p.entry_names

(** All call instructions, as [(block, instr index, call)] in block order. *)
let call_sites (p : proc) : (int * int * call) list =
  let acc = ref [] in
  Array.iteri
    (fun b (blk : block) ->
      Array.iteri
        (fun i ins ->
          match ins with Call c -> acc := (b, i, c) :: !acc | _ -> ())
        blk.instrs)
    p.blocks;
  List.rev !acc

(** Structural invariants, raised upon by the test-suite:
    - every name has exactly one definition site;
    - each phi has exactly one argument per predecessor;
    - uses are reachable from their definitions (def dominates use for
      instruction uses; for phi uses, def dominates the corresponding
      predecessor block). *)
let validate (p : proc) : (unit, string) result =
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let seen = Array.make p.n_names false in
  let def_block = Array.make p.n_names (-1) in
  let ok = ref (Ok ()) in
  let check_def n b =
    if seen.(n.id) then ok := err "name %a defined twice" pp_name n
    else begin
      seen.(n.id) <- true;
      def_block.(n.id) <- b
    end
  in
  Array.iter (fun (_, n) -> check_def n p.entry) p.entry_names;
  Array.iteri
    (fun b (blk : block) ->
      Array.iter (fun (ph : phi) -> check_def ph.p_name b) blk.phis;
      Array.iter
        (function
          | Assign (n, _) -> check_def n b
          | Kill kills -> Array.iter (fun (_, n) -> check_def n b) kills
          | Call c -> Array.iter (fun (_, n) -> check_def n b) c.c_defs
          | Print _ -> ())
        blk.instrs)
    p.blocks;
  (match !ok with
  | Error _ -> ()
  | Ok () ->
      Array.iteri
        (fun b (blk : block) ->
          let npreds = List.length p.preds.(b) in
          Array.iter
            (fun (ph : phi) ->
              if Array.length ph.p_args <> npreds then
                ok :=
                  err "phi %a at B%d has %d args for %d preds" pp_name
                    ph.p_name b (Array.length ph.p_args) npreds)
            blk.phis)
        p.blocks);
  !ok

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "ssa proc %s:@\n" p.name;
  Array.iteri
    (fun b (blk : block) ->
      Fmt.pf ppf "B%d:@\n" b;
      Array.iter
        (fun (ph : phi) ->
          Fmt.pf ppf "  %a = phi(%a)@\n" pp_name ph.p_name
            Fmt.(
              array ~sep:(any ", ") (fun ppf (pred, n) ->
                  pf ppf "B%d:%a" pred pp_name n))
            ph.p_args)
        blk.phis;
      Array.iter
        (fun ins ->
          match ins with
          | Assign (n, rhs) -> Fmt.pf ppf "  %a = %a@\n" pp_name n pp_rhs rhs
          | Kill kills ->
              Fmt.pf ppf "  kill(%a)@\n"
                Fmt.(array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                kills
          | Call c ->
              Fmt.pf ppf "  call[%d] %s(%a) defs(%a)@\n" c.c_cs_id c.c_callee
                Fmt.(
                  array ~sep:(any ", ") (fun ppf a -> pp_operand ppf a.sa_operand))
                c.c_args
                Fmt.(
                  array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                c.c_defs
          | Print o -> Fmt.pf ppf "  print %a@\n" pp_operand o)
        blk.instrs;
      match blk.term with
      | Goto t -> Fmt.pf ppf "  goto B%d@\n" t
      | Cond (c, t, f) ->
          Fmt.pf ppf "  if %a then B%d else B%d@\n" pp_operand c t f
      | Ret -> Fmt.pf ppf "  ret@\n")
    p.blocks
