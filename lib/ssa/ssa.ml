(** Static single assignment form (Cytron et al.), over the {!Fsicp_cfg.Ir}
    quad IR.

    The paper's intraprocedural analysis — Wegman–Zadeck Sparse Conditional
    Constant propagation — is "built upon an implementation of SSA data-flow
    analysis"; this module is that implementation.

    Besides ordinary assignments, {e call} instructions are definition
    points: a call may write through its by-reference actuals and may modify
    globals.  Which variables a particular call defines, and which globals'
    values at the call the interprocedural phase wants recorded, are
    supplied by a {!call_effects} oracle (in the full pipeline this oracle
    is the interprocedural MOD/REF information; tests can use the
    conservative {!conservative_effects}).

    Every variable has an implicit {e entry definition} (version 0) in the
    entry block, whose lattice value the constant propagator takes from its
    entry environment — this is precisely the hook through which
    interprocedural constants enter the intraprocedural analysis. *)

open Fsicp_lang
open Fsicp_cfg

(** An SSA name: a base IR variable plus version.  [id] is a dense index
    unique within the procedure, used for constant-time lattice lookups. *)
type name = { base : Ir.var; ver : int; id : int }

let pp_name ppf n = Fmt.pf ppf "%a.%d" Ir.Var.pp n.base n.ver

type operand = Oconst of Value.t | Oname of name

let pp_operand ppf = function
  | Oconst v -> Value.pp ppf v
  | Oname n -> pp_name ppf n

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

let pp_rhs ppf = function
  | Copy o -> pp_operand ppf o
  | Unop (op, o) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_operand o
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a %a %a" pp_operand a Ops.pp_binop op pp_operand b

type ssa_arg = { sa_operand : operand; sa_byref : Ir.var option }

type call = {
  c_cs_id : int;  (** call-site id (textual order, from lowering) *)
  c_callee : string;
  c_args : ssa_arg array;
  c_global_uses : (Ir.var * name) array;
      (** reaching SSA version of each global whose value at this call the
          interprocedural analysis needs (callee's REF set) *)
  c_defs : (Ir.var * name) array;
      (** fresh versions for the variables this call may modify *)
  c_guse_slots : int array;
      (** ascending var slots of the [c_global_uses] entries *)
  c_guse_ids : int array;
      (** name ids parallel to [c_guse_slots]: the compact lookup table
          behind {!val:Fsicp_scc.Scc.global_at_call} *)
  mutable c_def_base : int;
      (** index of this call's first def in the procedure's flat call-def
          numbering (block order); the SCC kernel resolves the oracle value
          of def [k] into slot [c_def_base + k] of one dense vector *)
}

type instr =
  | Assign of name * rhs
  | Kill of (Ir.var * name) array
      (** alias kill: fresh, unknown-valued versions of variables whose
          location may have been written by the {e preceding} assignment
          through a reference-parameter alias.  Keeps SSA sound when a
          store through one name may change the value of another. *)
  | Call of call
  | Print of operand

type phi = {
  p_name : name;
  p_args : (int * name) array;  (** (predecessor block, incoming name) *)
  p_edges : int array;
      (** dense edge id of each incoming CFG edge, parallel to [p_args] *)
}

type terminator = Goto of int | Cond of operand * int * int | Ret

type block = {
  phis : phi array;
  instrs : instr array;
  term : terminator;
}

(** Where a name is defined; used by def–use chains and the SCC worklist. *)
type def_site =
  | Dentry  (** version 0, defined at procedure entry *)
  | Dinstr of int * int  (** (block, instruction index) — assign or call *)
  | Dphi of int * int  (** (block, phi index) *)

(** A use site; pushing these onto the SCC's SSA worklist re-evaluates the
    corresponding phi/instruction/terminator. *)
type use_site =
  | Uphi of int * int  (** (block, phi index) *)
  | Uinstr of int * int  (** (block, instruction index) *)
  | Uterm of int  (** block terminator (condition) *)

(* Dense site ids: every phi, instruction and terminator of the procedure
   gets one int id, numbered per block in order (phis, then instructions,
   then the terminator).  [site_code] packs the decoded form into one
   tagged int: bits [1:0] = kind (0 phi, 1 instr, 2 term), bits [33:2] =
   block, bits [62:34] = index within the block.  The CSR def-use chains
   and the SCC worklists traffic in site ids only. *)
let site_tag_phi = 0
let site_tag_instr = 1
let site_tag_term = 2

let[@inline] pack_site ~tag ~block ~index =
  (index lsl 34) lor (block lsl 2) lor tag

(** Extension point for analysis-private per-procedure caches (the SCC
    engine hangs its entry-vector memo here); lives and dies with the
    [proc] value. *)
type memo = ..

type memo += No_memo

type proc = {
  name : string;
  formals : Ir.var array;
  blocks : block array;
  entry : int;
  preds : int list array;
  dom : Dominance.t;
  entry_names : (Ir.var * name) array;  (** version-0 names, all variables *)
  exit_names : (int * (Ir.var * name) array) list;
      (** for each [Ret]-terminated block: the SSA version of every formal
          and global reaching the return — the values a call observes after
          the procedure finishes (drives the return-constants extension) *)
  n_names : int;
  defs : def_site array;  (** indexed by name id *)
  use_offsets : int array;
      (** CSR row starts into [use_sites], length [n_names + 1]: the use
          sites of name [id] are [use_sites.(use_offsets.(id)) ..
          use_sites.(use_offsets.(id + 1) - 1)] *)
  use_sites : int array;  (** CSR payload: dense site ids *)
  n_sites : int;
  site_code : int array;  (** site id -> packed (tag, block, index) *)
  n_edges : int;
  edge_base : int array;
      (** block -> first out-edge id, length [nblocks + 1]; out edges are
          numbered consecutively in successor order ([Cond] with equal arms
          collapses to one edge, mirroring [Ir.successors]) *)
  edge_dst : int array;  (** edge id -> destination block *)
  vars : Ir.var array;  (** the variable universe, in slot order *)
  var_keys : int array;
      (** [Ir.Var.slot_key] of each slot, ascending — {!slot_of} binary
          searches this instead of hashing *)
  entry_ids : int array;  (** var slot -> version-0 name id *)
  exit_ids : (int * int array) array;
      (** per [Ret] block: var slot -> reaching name id, or -1 *)
  calls : (int * int * call) array;
      (** every call as [(block, instr index, call)], block order *)
  n_call_defs : int;  (** total [c_defs] across [calls] *)
  n_call_sites : int;
  mutable memo : memo;
}

(** Oracle describing interprocedural side effects of calls and of stores
    through possibly-aliased names. *)
type call_effects = {
  defs_of_call : callee:string -> byref_args:Ir.var option array -> Ir.var list;
      (** variables (caller-side) the call may define *)
  globals_used_by : callee:string -> Ir.var list;
      (** globals whose reaching value should be recorded at the call *)
  assign_aliases : Ir.var -> Ir.var list;
      (** variables whose location a store to the given variable may also
          write (reference-parameter may-aliases); each direct assignment
          is followed by a {!Kill} of these *)
}

(** Sound default when MOD/REF and alias information are unavailable: a
    call may define every by-reference actual and every global of the
    program; the value of every global is relevant; and — since any two
    by-reference names could alias — a store to a formal clobbers every
    other formal and every global (and vice versa).  The full pipeline
    replaces this with the {!Fsicp_ipa} oracles, which is where all the
    precision comes from. *)
let conservative_effects ?(formals : Ir.var list = []) (prog : Ast.program) :
    call_effects =
  let globals = List.map Ir.global prog.Ast.globals in
  {
    defs_of_call =
      (fun ~callee:_ ~byref_args ->
        let byrefs =
          Array.to_list byref_args |> List.filter_map (fun x -> x)
        in
        List.sort_uniq Ir.Var.compare (byrefs @ globals));
    globals_used_by = (fun ~callee:_ -> globals);
    assign_aliases =
      (fun v ->
        match v.Ir.vkind with
        | Ir.Formal _ | Ir.Global ->
            List.filter
              (fun w -> not (Ir.Var.equal v w))
              (formals @ globals)
        | Ir.Local | Ir.Temp -> []);
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let byref_array (args : Ir.arg array) : Ir.var option array =
  Array.map (fun (a : Ir.arg) -> a.Ir.a_byref) args

(* Domain-local construction scratch: an epoch-stamped sparse map from
   [Ir.Var.slot_key] to the procedure-local dense slot.  A key is bound
   iff [stamp.(k) = epoch]; bumping the epoch invalidates every binding in
   O(1), so consecutive [of_proc] calls on one domain share the arrays
   without clearing.  [Domain.DLS] keeps the scratch race-free when
   [Context.build_ssa] constructs procedures on several domains. *)
module Scratch = struct
  type t = {
    mutable epoch : int;
    mutable stamp : int array;
    mutable slot : int array;
  }

  let create () =
    { epoch = 0; stamp = Array.make 4096 0; slot = Array.make 4096 0 }

  let dls = Domain.DLS.new_key create

  let get () =
    let t = Domain.DLS.get dls in
    t.epoch <- t.epoch + 1;
    t

  let ensure t k =
    let cap = Array.length t.stamp in
    if k >= cap then begin
      let n = max (k + 1) (2 * cap) in
      let stamp = Array.make n 0 in
      Array.blit t.stamp 0 stamp 0 cap;
      t.stamp <- stamp;
      let slot = Array.make n 0 in
      Array.blit t.slot 0 slot 0 cap;
      t.slot <- slot
    end
end

(** Build SSA form for a lowered procedure. *)
let of_proc ?(effects : call_effects option) (prog : Ast.program)
    (p : Ir.proc) : proc =
  let effects =
    match effects with
    | Some e -> e
    | None ->
        conservative_effects ~formals:(Array.to_list p.Ir.formals) prog
  in
  let cfg = p.Ir.cfg in
  let nblocks = Array.length cfg.Ir.blocks in
  let preds = Ir.predecessors cfg in
  let dom = Dominance.compute cfg in
  let df = Dominance.frontiers cfg dom in

  (* -- The variable universe ---------------------------------------- *)
  (* One pass over the IR collects occurring vars, call-defined vars,
     recorded globals and alias kills — deduplicated through the
     epoch-stamped {!Scratch} (no hashing, no [VarSet] trees) and sorted
     once by [slot_key], which induces exactly the order the original
     [VarSet.elements]-based formulation produced. *)
  let scratch = Scratch.get () in
  let epoch = scratch.Scratch.epoch in
  let acc = ref [] in
  let nv = ref 0 in
  let note v =
    let k = Ir.Var.slot_key v in
    Scratch.ensure scratch k;
    if scratch.Scratch.stamp.(k) <> epoch then begin
      scratch.Scratch.stamp.(k) <- epoch;
      acc := v :: !acc;
      incr nv
    end
  in
  let note_op = function Ir.Const _ -> () | Ir.Var v -> note v in
  let note_rhs = function
    | Ir.Copy o | Ir.Unop (_, o) -> note_op o
    | Ir.Binop (_, a, b) ->
        note_op a;
        note_op b
  in
  Array.iter note p.Ir.formals;
  (* Per-instruction oracle caches, flat over the instruction ordinal. *)
  let ibase = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    ibase.(b + 1) <- ibase.(b) + Array.length cfg.Ir.blocks.(b).Ir.instrs
  done;
  let n_instrs = ibase.(nblocks) in
  let iord b i = ibase.(b) + i in
  let call_ds : Ir.var list array = Array.make (max 1 n_instrs) [] in
  let call_gs : Ir.var list array = Array.make (max 1 n_instrs) [] in
  let kill_at : Ir.var list array = Array.make (max 1 n_instrs) [] in
  Array.iteri
    (fun b (blk : Ir.block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Ir.Call { callee; args; _ } ->
              Array.iter (fun (a : Ir.arg) -> note_op a.Ir.a_operand) args;
              let ds =
                effects.defs_of_call ~callee ~byref_args:(byref_array args)
              in
              let gs = effects.globals_used_by ~callee in
              call_ds.(iord b i) <- ds;
              call_gs.(iord b i) <- gs;
              List.iter note ds;
              List.iter note gs
          | Ir.Assign (v, rhs) ->
              note v;
              note_rhs rhs;
              let ks =
                List.sort_uniq Ir.Var.compare (effects.assign_aliases v)
                |> List.filter (fun w -> not (Ir.Var.equal v w))
              in
              if ks <> [] then begin
                kill_at.(iord b i) <- ks;
                List.iter note ks
              end
          | Ir.Print o -> note_op o)
        blk.Ir.instrs;
      match blk.Ir.term with
      | Ir.Cond (c, _, _) -> note_op c
      | Ir.Goto _ | Ir.Ret -> ())
    cfg.Ir.blocks;
  let vars = Array.of_list !acc in
  Array.sort
    (fun a b -> Int.compare (Ir.Var.slot_key a) (Ir.Var.slot_key b))
    vars;
  let nvars = !nv in
  let var_keys = Array.map Ir.Var.slot_key vars in
  (* Rebind keys to dense slots; [ensure] is done growing, so the arrays
     can be captured. *)
  let slot_arr = scratch.Scratch.slot in
  Array.iteri (fun i k -> slot_arr.(k) <- i) var_keys;
  let[@inline] vidx v = slot_arr.(Ir.Var.slot_key v) in

  (* -- Phi placement (iterated dominance frontier) ------------------- *)
  let def_blocks = Array.make nvars [] in
  Ir.iter_instrs
    (fun ~block ~index ins ->
      match ins with
      | Ir.Assign (v, _) ->
          def_blocks.(vidx v) <- block :: def_blocks.(vidx v);
          List.iter
            (fun w -> def_blocks.(vidx w) <- block :: def_blocks.(vidx w))
            kill_at.(iord block index)
      | Ir.Call _ ->
          List.iter
            (fun v -> def_blocks.(vidx v) <- block :: def_blocks.(vidx v))
            call_ds.(iord block index)
      | Ir.Print _ -> ())
    cfg;
  (* The entry block implicitly defines version 0 of everything. *)
  for i = 0 to nvars - 1 do
    def_blocks.(i) <- cfg.Ir.entry :: def_blocks.(i)
  done;
  (* phis_at.(b) = list of var indices needing a phi at block b.  Per-var
     membership is tracked with stamp arrays (stamp = v + 1): O(1) reset
     between variables, no tuple-keyed hashing. *)
  let phis_at = Array.make nblocks [] in
  let has_phi_stamp = Array.make nblocks 0 in
  let ever_stamp = Array.make nblocks 0 in
  for v = 0 to nvars - 1 do
    let stamp = v + 1 in
    (* Seed the worklist with the (deduplicated) def blocks; [ever_stamp]
       doubles as the dedup set, so no sort is needed. *)
    let work = ref [] in
    List.iter
      (fun b ->
        if ever_stamp.(b) <> stamp then begin
          ever_stamp.(b) <- stamp;
          work := b :: !work
        end)
      def_blocks.(v);
    while !work <> [] do
      match !work with
      | [] -> ()
      | b :: rest ->
          work := rest;
          List.iter
            (fun y ->
              if has_phi_stamp.(y) <> stamp then begin
                has_phi_stamp.(y) <- stamp;
                phis_at.(y) <- v :: phis_at.(y);
                if ever_stamp.(y) <> stamp then begin
                  ever_stamp.(y) <- stamp;
                  work := y :: !work
                end
              end)
            df.(b)
    done
  done;
  Array.iteri (fun b l -> phis_at.(b) <- List.rev l) phis_at;

  (* -- Renaming ------------------------------------------------------ *)
  let next_id = ref 0 in
  let next_ver = Array.make nvars 0 in
  let fresh base_idx =
    let v = vars.(base_idx) in
    let n = { base = v; ver = next_ver.(base_idx); id = !next_id } in
    next_ver.(base_idx) <- next_ver.(base_idx) + 1;
    incr next_id;
    n
  in
  let stacks : name list array = Array.make nvars [] in
  let push n = stacks.(vidx n.base) <- n :: stacks.(vidx n.base) in
  let top base_idx =
    match stacks.(base_idx) with
    | n :: _ -> n
    | [] -> assert false (* entry def dominates everything *)
  in
  (* Entry definitions: version 0 of every var. *)
  let entry_names = Array.map (fun v -> (v, fresh (vidx v))) vars in
  Array.iter (fun (_, n) -> push n) entry_names;

  (* Output blocks under construction. *)
  let out_phis : phi array array = Array.make nblocks [||] in
  let out_instrs : instr array array = Array.make nblocks [||] in
  let out_terms : terminator array =
    Array.make nblocks Ret
  in
  let exit_names_acc : (int * (Ir.var * name) array) list ref = ref [] in
  (* Remember which var each phi at a block is for, in order. *)
  let phi_vars : int array array = Array.make nblocks [||] in
  Array.iteri (fun b l -> phi_vars.(b) <- Array.of_list l) phis_at;
  (* phi argument accumulation: per block, per phi index, a (pred, name)
     list — direct array slots instead of tuple-keyed hashing *)
  let phi_args_acc : (int * name) list array array =
    Array.map (fun a -> Array.make (Array.length a) []) phi_vars
  in
  (* The formals and globals whose reaching version each return records. *)
  let exit_vars =
    Array.to_list vars
    |> List.filter (fun (v : Ir.var) ->
           match v.Ir.vkind with
           | Ir.Formal _ | Ir.Global -> true
           | Ir.Local | Ir.Temp -> false)
  in

  let rename_operand (o : Ir.operand) : operand =
    match o with
    | Ir.Const v -> Oconst v
    | Ir.Var v -> Oname (top (vidx v))
  in
  let rename_rhs = function
    | Ir.Copy o -> Copy (rename_operand o)
    | Ir.Unop (op, o) -> Unop (op, rename_operand o)
    | Ir.Binop (op, a, b) -> Binop (op, rename_operand a, rename_operand b)
  in

  let rec rename_block b =
    let pushed = ref [] in
    let push' n =
      push n;
      pushed := vidx n.base :: !pushed
    in
    (* Phis define first. *)
    let phis =
      Array.map
        (fun v ->
          let n = fresh v in
          push' n;
          { p_name = n; p_args = [||]; p_edges = [||] })
        phi_vars.(b)
    in
    out_phis.(b) <- phis;
    (* Instructions.  One IR instruction can yield two SSA instructions
       (an assignment followed by its alias [Kill]). *)
    let blk = cfg.Ir.blocks.(b) in
    let acc = ref [] in
    Array.iteri
      (fun i ins ->
        match ins with
        | Ir.Assign (v, rhs) ->
            let rhs = rename_rhs rhs in
            let n = fresh (vidx v) in
            push' n;
            acc := Assign (n, rhs) :: !acc;
            (match kill_at.(iord b i) with
            | [] -> ()
            | ks ->
                let kills =
                  List.map
                    (fun w ->
                      let kn = fresh (vidx w) in
                      push' kn;
                      (w, kn))
                    ks
                in
                acc := Kill (Array.of_list kills) :: !acc)
        | Ir.Print o -> acc := Print (rename_operand o) :: !acc
        | Ir.Call { cs_id; callee; args } ->
            let c_args =
              Array.map
                (fun (a : Ir.arg) ->
                  {
                    sa_operand = rename_operand a.Ir.a_operand;
                    sa_byref = a.Ir.a_byref;
                  })
                args
            in
            let c_global_uses =
              call_gs.(iord b i)
              |> List.map (fun g -> (g, top (vidx g)))
              |> Array.of_list
            in
            let ng = Array.length c_global_uses in
            let guse = Array.init ng (fun k ->
                let g, n = c_global_uses.(k) in
                (vidx g, n.id))
            in
            Array.sort (fun (a, _) (b, _) -> Int.compare a b) guse;
            let c_guse_slots = Array.map fst guse in
            let c_guse_ids = Array.map snd guse in
            let c_defs =
              call_ds.(iord b i)
              |> List.map (fun v ->
                     let n = fresh (vidx v) in
                     push' n;
                     (v, n))
              |> Array.of_list
            in
            acc :=
              Call
                { c_cs_id = cs_id; c_callee = callee; c_args; c_global_uses;
                  c_defs; c_guse_slots; c_guse_ids; c_def_base = -1 }
              :: !acc)
      blk.Ir.instrs;
    out_instrs.(b) <- Array.of_list (List.rev !acc);
    (* Record reaching versions of formals and globals at returns. *)
    (match blk.Ir.term with
    | Ir.Ret ->
        exit_names_acc :=
          (b, Array.of_list (List.map (fun v -> (v, top (vidx v))) exit_vars))
          :: !exit_names_acc
    | Ir.Goto _ | Ir.Cond _ -> ());
    (* Terminator. *)
    out_terms.(b) <-
      (match blk.Ir.term with
      | Ir.Goto t -> Goto t
      | Ir.Cond (c, t, f) -> Cond (rename_operand c, t, f)
      | Ir.Ret -> Ret);
    (* Fill phi arguments of successors. *)
    List.iter
      (fun s ->
        Array.iteri
          (fun pi v ->
            phi_args_acc.(s).(pi) <- (b, top v) :: phi_args_acc.(s).(pi))
          phi_vars.(s))
      (Ir.successors blk);
    (* Recurse over dominator-tree children. *)
    List.iter rename_block dom.Dominance.children.(b);
    (* Pop. *)
    List.iter
      (fun vi ->
        match stacks.(vi) with
        | _ :: tl -> stacks.(vi) <- tl
        | [] -> assert false)
      !pushed
  in
  rename_block cfg.Ir.entry;

  (* -- Dense edge ids ------------------------------------------------ *)
  (* Out edges per block, numbered consecutively in successor order.  A
     [Cond] with equal arms contributes one edge (as in [Ir.successors]),
     so every (pred, succ) pair maps to exactly one edge id. *)
  let edge_base = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    let out =
      match out_terms.(b) with
      | Goto _ -> 1
      | Cond (_, t, f) -> if t = f then 1 else 2
      | Ret -> 0
    in
    edge_base.(b + 1) <- edge_base.(b) + out
  done;
  let n_edges = edge_base.(nblocks) in
  let edge_dst = Array.make (max 1 n_edges) 0 in
  for b = 0 to nblocks - 1 do
    match out_terms.(b) with
    | Goto t -> edge_dst.(edge_base.(b)) <- t
    | Cond (_, t, f) ->
        edge_dst.(edge_base.(b)) <- t;
        if t <> f then edge_dst.(edge_base.(b) + 1) <- f
    | Ret -> ()
  done;
  (* Edge id of the unique (pred, succ) edge. *)
  let edge_id ~pred ~succ =
    match out_terms.(pred) with
    | Goto _ -> edge_base.(pred)
    | Cond (_, t, f) ->
        if t = f || t = succ then edge_base.(pred) else edge_base.(pred) + 1
    | Ret -> assert false
  in

  (* Attach accumulated phi arguments (and their edge ids). *)
  let blocks =
    Array.init nblocks (fun b ->
        let phis =
          Array.mapi
            (fun pi (ph : phi) ->
              let p_args = Array.of_list (List.rev phi_args_acc.(b).(pi)) in
              let p_edges =
                Array.map (fun (pred, _) -> edge_id ~pred ~succ:b) p_args
              in
              { ph with p_args; p_edges })
            out_phis.(b)
        in
        { phis; instrs = out_instrs.(b); term = out_terms.(b) })
  in

  (* -- Dense site ids ------------------------------------------------ *)
  let site_base = Array.make (nblocks + 1) 0 in
  for b = 0 to nblocks - 1 do
    site_base.(b + 1) <-
      site_base.(b)
      + Array.length blocks.(b).phis
      + Array.length blocks.(b).instrs
      + 1 (* terminator *)
  done;
  let n_sites = site_base.(nblocks) in
  let site_code = Array.make (max 1 n_sites) 0 in
  Array.iteri
    (fun b (blk : block) ->
      let base = site_base.(b) in
      let nphis = Array.length blk.phis in
      let ninstrs = Array.length blk.instrs in
      for pi = 0 to nphis - 1 do
        site_code.(base + pi) <- pack_site ~tag:site_tag_phi ~block:b ~index:pi
      done;
      for i = 0 to ninstrs - 1 do
        site_code.(base + nphis + i) <-
          pack_site ~tag:site_tag_instr ~block:b ~index:i
      done;
      site_code.(base + nphis + ninstrs) <-
        pack_site ~tag:site_tag_term ~block:b ~index:0)
    blocks;
  let phi_site b pi = site_base.(b) + pi in
  let instr_site b i = site_base.(b) + Array.length blocks.(b).phis + i in
  let term_site b =
    site_base.(b) + Array.length blocks.(b).phis
    + Array.length blocks.(b).instrs
  in

  (* -- Def sites and CSR def-use chains ------------------------------ *)
  let n_names = !next_id in
  let defs = Array.make n_names Dentry in
  (* Two passes over the same traversal: count uses per name, then fill. *)
  let use_offsets = Array.make (n_names + 1) 0 in
  let iter_uses add_use =
    let use_operand o site =
      match o with Oconst _ -> () | Oname n -> add_use n site
    in
    Array.iteri
      (fun b (blk : block) ->
        Array.iteri
          (fun pi (ph : phi) ->
            Array.iter (fun (_, n) -> add_use n (phi_site b pi)) ph.p_args)
          blk.phis;
        Array.iteri
          (fun i ins ->
            let site = instr_site b i in
            match ins with
            | Assign (_, rhs) -> (
                match rhs with
                | Copy o | Unop (_, o) -> use_operand o site
                | Binop (_, x, y) ->
                    use_operand x site;
                    use_operand y site)
            | Kill _ -> ()
            | Call c ->
                Array.iter
                  (fun (a : ssa_arg) -> use_operand a.sa_operand site)
                  c.c_args;
                Array.iter (fun (_, n) -> add_use n site) c.c_global_uses
            | Print o -> use_operand o site)
          blk.instrs;
        match blk.term with
        | Cond (c, _, _) -> use_operand c (term_site b)
        | Goto _ | Ret -> ())
      blocks
  in
  iter_uses (fun n _ -> use_offsets.(n.id + 1) <- use_offsets.(n.id + 1) + 1);
  for i = 0 to n_names - 1 do
    use_offsets.(i + 1) <- use_offsets.(i + 1) + use_offsets.(i)
  done;
  let use_sites = Array.make (max 1 use_offsets.(n_names)) 0 in
  let fill = Array.sub use_offsets 0 n_names in
  iter_uses (fun n site ->
      use_sites.(fill.(n.id)) <- site;
      fill.(n.id) <- fill.(n.id) + 1);
  Array.iteri
    (fun b (blk : block) ->
      Array.iteri
        (fun pi (ph : phi) -> defs.(ph.p_name.id) <- Dphi (b, pi))
        blk.phis;
      Array.iteri
        (fun i ins ->
          match ins with
          | Assign (n, _) -> defs.(n.id) <- Dinstr (b, i)
          | Kill kills ->
              Array.iter (fun (_, n) -> defs.(n.id) <- Dinstr (b, i)) kills
          | Call c ->
              Array.iter (fun (_, n) -> defs.(n.id) <- Dinstr (b, i)) c.c_defs
          | Print _ -> ())
        blk.instrs)
    blocks;

  (* -- Var slot tables, flat call list ------------------------------- *)
  let entry_ids = Array.map (fun (_, n) -> n.id) entry_names in
  let exit_names = List.rev !exit_names_acc in
  let exit_ids =
    List.map
      (fun (b, arr) ->
        let tbl = Array.make nvars (-1) in
        Array.iter
          (fun ((v : Ir.var), (n : name)) -> tbl.(vidx v) <- n.id)
          arr;
        (b, tbl))
      exit_names
    |> Array.of_list
  in
  let calls_acc = ref [] in
  let n_call_defs = ref 0 in
  Array.iteri
    (fun b (blk : block) ->
      Array.iteri
        (fun i ins ->
          match ins with
          | Call c ->
              c.c_def_base <- !n_call_defs;
              n_call_defs := !n_call_defs + Array.length c.c_defs;
              calls_acc := (b, i, c) :: !calls_acc
          | Assign _ | Kill _ | Print _ -> ())
        blk.instrs)
    blocks;

  {
    name = p.Ir.name;
    formals = p.Ir.formals;
    blocks;
    entry = cfg.Ir.entry;
    preds;
    dom;
    entry_names;
    exit_names;
    n_names;
    defs;
    use_offsets;
    use_sites;
    n_sites;
    site_code;
    n_edges;
    edge_base;
    edge_dst;
    vars;
    var_keys;
    entry_ids;
    exit_ids;
    calls = Array.of_list (List.rev !calls_acc);
    n_call_defs = !n_call_defs;
    n_call_sites = p.Ir.n_call_sites;
    memo = No_memo;
  }

(* ------------------------------------------------------------------ *)
(* Queries and validation                                              *)
(* ------------------------------------------------------------------ *)

(** The variable's dense slot in this procedure's universe, or -1.
    Binary search over the sorted [var_keys] — alloc- and hash-free. *)
let slot_of (p : proc) (v : Ir.var) : int =
  let k = Ir.Var.slot_key v in
  let keys = p.var_keys in
  let lo = ref 0 and hi = ref (Array.length keys - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let km = keys.(mid) in
    if km = k then begin
      res := mid;
      lo := !hi + 1
    end
    else if km < k then lo := mid + 1
    else hi := mid - 1
  done;
  !res

(** The entry (version-0) name of a variable, if it exists in the proc. *)
let entry_name (p : proc) (v : Ir.var) : name option =
  let s = slot_of p v in
  if s < 0 then None else Some (snd p.entry_names.(s))

(** Decode a dense site id back to its structured form. *)
let decode_site (p : proc) (s : int) : use_site =
  let code = p.site_code.(s) in
  let b = (code lsr 2) land 0xffffffff in
  let idx = code lsr 34 in
  match code land 3 with
  | 0 -> Uphi (b, idx)
  | 1 -> Uinstr (b, idx)
  | _ -> Uterm b

(** The use sites of name [id], decoded from the CSR row (traversal
    order).  Convenience for tests and reference implementations; the SCC
    kernel walks [use_offsets]/[use_sites] directly. *)
let uses_of (p : proc) (id : int) : use_site list =
  let lo = p.use_offsets.(id) and hi = p.use_offsets.(id + 1) in
  List.init (hi - lo) (fun k -> decode_site p p.use_sites.(lo + k))

(** All call instructions, as [(block, instr index, call)] in block order. *)
let call_sites (p : proc) : (int * int * call) list = Array.to_list p.calls

(** Structural invariants, raised upon by the test-suite:
    - every name has exactly one definition site;
    - each phi has exactly one argument per predecessor;
    - uses are reachable from their definitions (def dominates use for
      instruction uses; for phi uses, def dominates the corresponding
      predecessor block). *)
let validate (p : proc) : (unit, string) result =
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let seen = Array.make p.n_names false in
  let def_block = Array.make p.n_names (-1) in
  let ok = ref (Ok ()) in
  let check_def n b =
    if seen.(n.id) then ok := err "name %a defined twice" pp_name n
    else begin
      seen.(n.id) <- true;
      def_block.(n.id) <- b
    end
  in
  Array.iter (fun (_, n) -> check_def n p.entry) p.entry_names;
  Array.iteri
    (fun b (blk : block) ->
      Array.iter (fun (ph : phi) -> check_def ph.p_name b) blk.phis;
      Array.iter
        (function
          | Assign (n, _) -> check_def n b
          | Kill kills -> Array.iter (fun (_, n) -> check_def n b) kills
          | Call c -> Array.iter (fun (_, n) -> check_def n b) c.c_defs
          | Print _ -> ())
        blk.instrs)
    p.blocks;
  (match !ok with
  | Error _ -> ()
  | Ok () ->
      Array.iteri
        (fun b (blk : block) ->
          let npreds = List.length p.preds.(b) in
          Array.iter
            (fun (ph : phi) ->
              if Array.length ph.p_args <> npreds then
                ok :=
                  err "phi %a at B%d has %d args for %d preds" pp_name
                    ph.p_name b (Array.length ph.p_args) npreds)
            blk.phis)
        p.blocks);
  !ok

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "ssa proc %s:@\n" p.name;
  Array.iteri
    (fun b (blk : block) ->
      Fmt.pf ppf "B%d:@\n" b;
      Array.iter
        (fun (ph : phi) ->
          Fmt.pf ppf "  %a = phi(%a)@\n" pp_name ph.p_name
            Fmt.(
              array ~sep:(any ", ") (fun ppf (pred, n) ->
                  pf ppf "B%d:%a" pred pp_name n))
            ph.p_args)
        blk.phis;
      Array.iter
        (fun ins ->
          match ins with
          | Assign (n, rhs) -> Fmt.pf ppf "  %a = %a@\n" pp_name n pp_rhs rhs
          | Kill kills ->
              Fmt.pf ppf "  kill(%a)@\n"
                Fmt.(array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                kills
          | Call c ->
              Fmt.pf ppf "  call[%d] %s(%a) defs(%a)@\n" c.c_cs_id c.c_callee
                Fmt.(
                  array ~sep:(any ", ") (fun ppf a -> pp_operand ppf a.sa_operand))
                c.c_args
                Fmt.(
                  array ~sep:(any ", ") (fun ppf (_, n) -> pp_name ppf n))
                c.c_defs
          | Print o -> Fmt.pf ppf "  print %a@\n" pp_operand o)
        blk.instrs;
      match blk.term with
      | Goto t -> Fmt.pf ppf "  goto B%d@\n" t
      | Cond (c, t, f) ->
          Fmt.pf ppf "  if %a then B%d else B%d@\n" pp_operand c t f
      | Ret -> Fmt.pf ppf "  ret@\n")
    p.blocks
