(** The [fsicp serve] daemon loop (Unix-domain socket, length-prefixed
    JSON frames — {!Protocol}) and the matching client helpers.

    Connections are served one at a time against a single long-lived
    incremental {!Fsicp_core.Engine}; EOF ends a connection, a [shutdown]
    request ends the daemon.  Tracing is enabled for the daemon's lifetime
    so [stats] can report memo and incremental-re-solve counters. *)

(** Serve one established connection until EOF or shutdown (exposed for
    in-process tests). *)
val serve_connection : Protocol.state -> Unix.file_descr -> unit

(** Bind the socket (replacing a stale socket file; refusing to replace a
    non-socket), accept and serve until a [shutdown] request, then remove
    the socket file.  [on_ready] runs once listening — use it to know when
    it is safe to connect.  [preload] analyses a program before the first
    connection, as if a [load] request had been served.  [jobs] is the
    per-solve domain budget. *)
val run :
  ?jobs:int ->
  ?preload:Fsicp_lang.Ast.program ->
  ?on_ready:(unit -> unit) ->
  version:string ->
  socket:string ->
  unit ->
  unit

(** Connect to a daemon; the caller closes the descriptor. *)
val connect : socket:string -> Unix.file_descr

(** One round trip: send one request document, read one response document.
    @raise Failure on a closed connection or invalid response JSON *)
val roundtrip : Unix.file_descr -> Json.t -> Json.t
