(** Minimal JSON values for the serve wire protocol — hand-written because
    the toolchain ships no JSON library.  The printer emits no
    insignificant whitespace; the parser accepts any RFC-8259 document of
    these shapes ([\uXXXX] escapes decoded to UTF-8, surrogate pairs
    included).  Integral numbers that fit [int] parse as [Int]; all other
    numbers as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse one complete document; trailing non-whitespace is an error. *)
val of_string : string -> (t, string) result

(** Object member lookup; [None] on non-objects and missing keys. *)
val member : string -> t -> t option

val to_str : t -> string option
val to_int : t -> int option

(** [str_member k v] = [member k v] when it is a string. *)
val str_member : string -> t -> string option

val int_member : string -> t -> int option
