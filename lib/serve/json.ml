(** Minimal JSON values for the serve wire protocol.

    Hand-written (the toolchain ships no JSON library) and deliberately
    small: objects, arrays, strings, ints, floats, bools, null.  The
    printer emits no insignificant whitespace; the parser accepts any
    RFC-8259 document of these shapes, including [\uXXXX] escapes (decoded
    to UTF-8, surrogate pairs included; lone or mismatched surrogate
    escapes are rejected rather than emitted as ill-formed bytes).  Ints
    that fit [int] stay ints; any other number parses as a float. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* Round-trippable and never bare-exponent-less-integer ambiguous:
         [%.17g] re-reads to the same double. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape_string b s
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        l;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail "unexpected end of input"

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | _ -> ()

let expect c ch =
  let got = next c in
  if got <> ch then fail "expected '%c' at offset %d, got '%c'" ch (c.pos - 1) got

let literal c word v =
  String.iter (fun ch -> expect c ch) word;
  v

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    let ch = next c in
    let d =
      match ch with
      | '0' .. '9' -> Char.code ch - Char.code '0'
      | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
      | _ -> fail "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            let cp = hex4 c in
            let cp =
              (* High surrogate: the mandatory low half must follow
                 immediately as another [\uXXXX] escape (RFC 8259 §8.2).
                 Anything else — end of string, a literal character, a
                 non-low-surrogate escape — is an unpaired surrogate and
                 must not reach the UTF-8 encoder as a raw D800–DFFF code
                 point. *)
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                if not (peek c = Some '\\') then
                  fail "unpaired high surrogate \\u%04X" cp;
                expect c '\\';
                (match peek c with
                | Some 'u' -> ()
                | _ -> fail "unpaired high surrogate \\u%04X" cp);
                expect c 'u';
                let lo = hex4 c in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail "invalid low surrogate \\u%04X after \\u%04X" lo cp;
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                (* A low surrogate with no preceding high half can encode
                   no scalar value; emitting it raw would produce invalid
                   UTF-8 (CESU-8 garbage). *)
                fail "lone low surrogate \\u%04X" cp
              else cp
            in
            add_utf8 b cp
        | ch -> fail "invalid escape '\\%c'" ch);
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    while (match peek c with Some ch -> pred ch | None -> false) do
      c.pos <- c.pos + 1
    done
  in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  consume_while (function '0' .. '9' -> true | _ -> false);
  let is_float = ref false in
  if peek c = Some '.' then begin
    is_float := true;
    c.pos <- c.pos + 1;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      c.pos <- c.pos + 1;
      (match peek c with
      | Some ('+' | '-') -> c.pos <- c.pos + 1
      | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "invalid number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "invalid number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let acc = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          acc := parse_value c :: !acc;
          skip_ws c
        done;
        expect c ']';
        Arr (List.rev !acc)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      let member () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        (k, v)
      in
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let acc = ref [ member () ] in
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          acc := member () :: !acc
        done;
        expect c '}';
        Obj (List.rev !acc)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let of_string (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj l -> List.assoc_opt k l | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let str_member k v = Option.bind (member k v) to_str
let int_member k v = Option.bind (member k v) to_int
