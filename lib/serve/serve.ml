(** The [fsicp serve] daemon loop: a Unix-domain stream socket accepting
    length-prefixed JSON frames ({!Protocol}), dispatched against one
    long-lived incremental {!Fsicp_core.Engine}.

    Connections are served one at a time (the engine is single-session
    state; queued clients block in [accept]).  Within a connection, frames
    are answered in order until EOF or a [shutdown] request; EOF just ends
    the connection, [shutdown] ends the daemon.  Tracing is enabled for
    the daemon's lifetime so the [stats] request can report the memo and
    incremental-re-solve counters. *)

module Trace = Fsicp_trace.Trace

let c_connections = Trace.counter ~stable:false "serve.connections"
let c_requests = Trace.counter ~stable:false "serve.requests"

(** Serve one established connection until EOF or shutdown. *)
let serve_connection (st : Protocol.state) (fd : Unix.file_descr) : unit =
  Trace.incr c_connections;
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | Some payload ->
        Trace.incr c_requests;
        let response =
          match Json.of_string payload with
          | Error m ->
              Json.Obj
                [
                  ("ok", Json.Bool false);
                  ("error", Json.Str (Printf.sprintf "invalid JSON: %s" m));
                ]
          | Ok doc -> Protocol.handle st doc
        in
        Protocol.write_frame fd (Json.to_string response);
        if not st.Protocol.stop then loop ()
  in
  match loop () with
  | () -> ()
  | exception (End_of_file | Protocol.Frame_error _) ->
      (* A client that vanished mid-frame or sent garbage framing only
         forfeits its own connection. *)
      ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(** Bind [socket] (removing a stale file first), then accept-and-serve
    until a [shutdown] request.  [on_ready] runs once the socket is
    listening — the hook tests and scripts use to know when to connect.
    [preload] analyses a program before the first connection, as if a
    [load] request had been served.  The socket file is removed on exit. *)
let run ?jobs ?preload ?(on_ready = fun () -> ()) ~version ~socket () : unit =
  let st = Protocol.make_state ?jobs ~version () in
  Trace.set_enabled true;
  Option.iter
    (fun prog ->
      st.Protocol.engine <- Some (Fsicp_core.Engine.create ?jobs prog))
    preload;
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> failwith (Printf.sprintf "refusing to replace non-socket %s" socket)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 8;
  on_ready ();
  while not st.Protocol.stop do
    let fd, _ = Unix.accept srv in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> serve_connection st fd)
  done

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

(** Connect to a daemon at [socket].  The caller closes the descriptor. *)
let connect ~socket : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  fd

(** One round trip: send a request document, read the response document.
    @raise Failure when the daemon closes without answering or answers
    with invalid JSON. *)
let roundtrip (fd : Unix.file_descr) (req : Json.t) : Json.t =
  Protocol.write_frame fd (Json.to_string req);
  match Protocol.read_frame fd with
  | None -> failwith "daemon closed the connection without answering"
  | Some payload -> (
      match Json.of_string payload with
      | Ok doc -> doc
      | Error m -> failwith (Printf.sprintf "invalid JSON from daemon: %s" m))
