(** The serve wire protocol: length-prefixed JSON frames and the request
    dispatcher, socket-free so the whole protocol is unit-testable.

    {2 Framing}

    Each frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  One request frame yields exactly one response
    frame.  A frame whose document is a JSON {e array} is a batch: every
    element is dispatched in order and the response frame is the array of
    the per-request responses (a [shutdown] inside a batch still answers
    every earlier request).

    {2 Requests}

    Every request is an object with a ["cmd"] member:

    - [{"cmd":"version"}] → the daemon's version and request vocabulary
      (feature detection);
    - [{"cmd":"load","source":<text>}] — parse, check and fully analyse a
      program, replacing any previous one;
    - [{"cmd":"query-entry","proc":<name>,"method":<m>}] — entry lattice
      values of a procedure's formals and referenced globals; the optional
      ["method"] member selects the solution: ["fs"] (default), ["fi"],
      ["cc"] (copy-constant) or ["vc"] (value-context — the last two
      solved on demand against the engine's current context);
    - [{"cmd":"query-call-site","caller":<name>,"cs":<int>}] — the
      recorded lattice values at one call site;
    - [{"cmd":"edit-proc","source":<text>}] — [<text>] parses as one or
      more procedure definitions; each replaces (or adds) the procedure of
      its name and re-analyses incrementally when the edit preserves the
      program shape (see {!Fsicp_core.Engine});
    - [{"cmd":"solve"}] — force a full from-scratch re-analysis of the
      current program;
    - [{"cmd":"stats"}] — engine counters (edits, incremental edits,
      rebuilds, epoch) plus the memo/incremental trace counters;
    - [{"cmd":"dump-solution"}] — the flow-sensitive solution,
      pretty-printed;
    - [{"cmd":"dump-program"}] — the current program, pretty-printed
      (re-parseable MiniFort);
    - [{"cmd":"digest"}] — {!Fsicp_core.Solution.digest} of the current
      flow-sensitive solution (byte-comparable across daemons);
    - [{"cmd":"shutdown"}] — acknowledge and stop the daemon.

    Responses are objects: [{"ok":true, ...}] on success,
    [{"ok":false,"error":<message>}] on failure.  Errors never kill the
    daemon. *)

open Fsicp_lang
open Fsicp_core
module Trace = Fsicp_trace.Trace

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(** Refuse frames above this size (64 MiB): a corrupt length prefix must
    not make the daemon allocate unboundedly. *)
let max_frame_len = 64 * 1024 * 1024

exception Frame_error of string

let really_read fd buf ofs len =
  let got = ref 0 in
  while !got < len do
    let n = Unix.read fd buf (ofs + !got) (len - !got) in
    if n = 0 then raise End_of_file;
    got := !got + n
  done

let really_write fd buf ofs len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd buf (ofs + !sent) (len - !sent)
  done

(** Read one frame; [None] on a clean EOF at a frame boundary. *)
let read_frame (fd : Unix.file_descr) : string option =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | exception End_of_file -> None
  | () ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame_len then
        raise (Frame_error (Printf.sprintf "frame length %d out of range" len));
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)

let write_frame (fd : Unix.file_descr) (payload : string) : unit =
  let len = String.length payload in
  if len > max_frame_len then
    raise (Frame_error (Printf.sprintf "frame length %d out of range" len));
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type state = {
  version : string;
  jobs : int option;  (** worker domains per solve; [None] = default *)
  mutable engine : Engine.t option;
  mutable stop : bool;  (** set by [shutdown]; the loop drains and exits *)
}

let make_state ?jobs ~version () = { version; jobs; engine = None; stop = false }

let commands =
  [
    "version"; "load"; "query-entry"; "query-call-site"; "edit-proc";
    "solve"; "stats"; "dump-solution"; "dump-program"; "digest"; "shutdown";
  ]

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error fmt = Printf.ksprintf (fun m -> Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str m) ]) fmt

let lattice_str v = Fsicp_scc.Lattice.to_string v

let entry_json (e : Solution.proc_entry) =
  [
    ( "formals",
      Json.Arr
        (Array.to_list e.Solution.pe_formals
        |> List.map (fun v -> Json.Str (lattice_str v))) );
    ( "globals",
      Json.Obj
        (List.map
           (fun (g, v) ->
             (Fsicp_prog.Prog.Var.name g, Json.Str (lattice_str v)))
           e.Solution.pe_globals) );
  ]

let parse_program source =
  match Parser.program_of_string source with
  | prog -> Ok prog
  | exception Parser.Error (msg, pos) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" pos.Ast.line pos.Ast.col msg)
  | exception Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lexical error at %d:%d: %s" pos.Ast.line pos.Ast.col msg)

let with_engine st f =
  match st.engine with
  | None -> error "no program loaded (send {\"cmd\":\"load\",...} first)"
  | Some e -> f e

let outcome_json = function
  | Engine.Incremental { dirty; total } ->
      [
        ("outcome", Json.Str "incremental");
        ("dirty", Json.Int dirty);
        ("total", Json.Int total);
      ]
  | Engine.Rebuilt reason ->
      [ ("outcome", Json.Str "rebuilt"); ("reason", Json.Str reason) ]

(* The trace counters a serve client cares about: incremental re-solve
   volume, SCC memo behaviour, and sharded-wavefront progress (procedures
   solved, cross-shard handoffs, frontier high-water mark). *)
let traced_counters =
  [
    "fs.resolve.dirty"; "fs.resolve.reused"; "scc.runs"; "scc.memo_hits";
    "scc.memo_evictions"; "scc.block_visits"; "par.shard.solved";
    "par.shard.handoffs"; "par.shard.frontier_peak";
  ]

let handle_one (st : state) (req : Json.t) : Json.t =
  let cmd = Json.str_member "cmd" req in
  Trace.span
    ~args:(fun () -> [ ("cmd", Option.value cmd ~default:"<none>") ])
    "serve:request"
  @@ fun () ->
  match cmd with
  | None -> error "request must be an object with a \"cmd\" string"
  | Some "version" ->
      ok
        [
          ("version", Json.Str st.version);
          ("commands", Json.Arr (List.map (fun c -> Json.Str c) commands));
        ]
  | Some "load" -> (
      match Json.str_member "source" req with
      | None -> error "load: missing \"source\""
      | Some source -> (
          match parse_program source with
          | Error m -> error "load: %s" m
          | Ok prog -> (
              match Engine.create ?jobs:st.jobs prog with
              | engine ->
                  st.engine <- Some engine;
                  ok
                    [
                      ( "procs",
                        Json.Int
                          (Fsicp_callgraph.Callgraph.n_procs
                             (Engine.context engine).Context.pcg) );
                    ]
              | exception Sema.Illformed errs ->
                  error "load: %s" (Sema.errors_to_string errs))))
  | Some "query-entry" ->
      with_engine st (fun e ->
          match Json.str_member "proc" req with
          | None -> error "query-entry: missing \"proc\""
          | Some proc -> (
              (* The FS/FI pair is maintained by the engine; the
                 beyond-the-paper methods are solved on demand against the
                 engine's current (incrementally maintained) context. *)
              let solution_of = function
                | "fs" -> Ok (Engine.solution e)
                | "fi" -> Ok (Engine.fi_solution e)
                | "cc" -> Ok (Cc_icp.solve ?jobs:st.jobs (Engine.context e))
                | "vc" -> Ok (Vc_icp.solve ?jobs:st.jobs (Engine.context e))
                | m ->
                    Error
                      (error
                         "query-entry: unknown method %S (fs | fi | cc | vc)"
                         m)
              in
              match
                solution_of
                  (Option.value (Json.str_member "method" req) ~default:"fs")
              with
              | Error e -> e
              | Ok sol -> (
                  match Solution.entry_opt sol proc with
                  | None -> error "query-entry: unknown procedure %S" proc
                  | Some entry ->
                      ok
                        (("method", Json.Str sol.Solution.method_name)
                        :: entry_json entry))))
  | Some "query-call-site" ->
      with_engine st (fun e ->
          match
            (Json.str_member "caller" req, Json.int_member "cs" req)
          with
          | None, _ | _, None ->
              error "query-call-site: need \"caller\" (string) and \"cs\" (int)"
          | Some caller, Some cs -> (
              let ctx = Engine.context e in
              let pcg = ctx.Context.pcg in
              match Fsicp_callgraph.Callgraph.proc_id pcg caller with
              | None -> error "query-call-site: unknown procedure %S" caller
              | Some pid -> (
                  match
                    Solution.find_call_record (Engine.solution e) ~caller:pid
                      ~cs_index:cs
                  with
                  | None ->
                      error "query-call-site: %s has no call site #%d" caller
                        cs
                  | Some cr ->
                      ok
                        [
                          ( "callee",
                            Json.Str
                              (Solution.proc_name (Engine.solution e)
                                 cr.Solution.cr_callee) );
                          ("executable", Json.Bool cr.Solution.cr_executable);
                          ( "args",
                            Json.Arr
                              (Array.to_list cr.Solution.cr_args
                              |> List.map (fun v -> Json.Str (lattice_str v)))
                          );
                          ( "globals",
                            Json.Obj
                              (List.map
                                 (fun (g, v) ->
                                   ( Fsicp_prog.Prog.Var.name g,
                                     Json.Str (lattice_str v) ))
                                 cr.Solution.cr_globals) );
                        ])))
  | Some "edit-proc" ->
      with_engine st (fun e ->
          match Json.str_member "source" req with
          | None -> error "edit-proc: missing \"source\""
          | Some source -> (
              match parse_program source with
              | Error m -> error "edit-proc: %s" m
              | Ok edit when edit.Ast.procs = [] ->
                  error "edit-proc: no procedure definition in source"
              | Ok edit -> (
                  match
                    List.map
                      (fun p ->
                        let o = Engine.edit_proc ?jobs:st.jobs e p in
                        Json.Obj
                          (("proc", Json.Str p.Ast.pname) :: outcome_json o))
                      edit.Ast.procs
                  with
                  | outcomes -> ok [ ("edits", Json.Arr outcomes) ]
                  | exception Sema.Illformed errs ->
                      error "edit-proc: %s" (Sema.errors_to_string errs))))
  | Some "solve" ->
      with_engine st (fun e ->
          let prog = (Engine.context e).Context.prog in
          st.engine <- Some (Engine.create ?jobs:st.jobs prog);
          ok [ ("outcome", Json.Str "rebuilt") ])
  | Some "stats" ->
      with_engine st (fun e ->
          ok
            [
              ( "engine",
                Json.Obj
                  (List.map (fun (k, v) -> (k, Json.Int v)) (Engine.stats e))
              );
              ( "counters",
                Json.Obj
                  (List.map
                     (fun name -> (name, Json.Int (Trace.counter_total name)))
                     traced_counters) );
            ])
  | Some "dump-solution" ->
      with_engine st (fun e ->
          ok [ ("solution", Json.Str (Fmt.str "%a" Solution.pp (Engine.solution e))) ])
  | Some "dump-program" ->
      with_engine st (fun e ->
          ok
            [
              ( "program",
                Json.Str
                  (Pretty.program_to_string (Engine.context e).Context.prog) );
            ])
  | Some "digest" ->
      with_engine st (fun e ->
          ok [ ("digest", Json.Str (Solution.digest (Engine.solution e))) ])
  | Some "shutdown" ->
      st.stop <- true;
      ok [ ("bye", Json.Bool true) ]
  | Some other -> error "unknown command %S (try {\"cmd\":\"version\"})" other

(** Dispatch one frame's document: a single request, or a batch (JSON
    array) answered element-for-element. *)
let handle (st : state) (doc : Json.t) : Json.t =
  match doc with
  | Json.Arr reqs -> Json.Arr (List.map (handle_one st) reqs)
  | req -> handle_one st req
