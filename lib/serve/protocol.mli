(** The serve wire protocol: length-prefixed JSON frames and the
    socket-free request dispatcher (see the implementation header for the
    full request vocabulary).

    Framing: 4-byte big-endian payload length, then that many bytes of
    UTF-8 JSON.  One request frame yields one response frame; an array
    document is a batch, answered element-for-element.  Responses are
    [{"ok":true,...}] or [{"ok":false,"error":...}]; request errors never
    kill the daemon. *)

(** Hard ceiling on frame payloads (64 MiB). *)
val max_frame_len : int

(** Raised on malformed framing (negative or oversized length prefix). *)
exception Frame_error of string

(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise End_of_file on EOF mid-frame
    @raise Frame_error on a length prefix out of range *)
val read_frame : Unix.file_descr -> string option

val write_frame : Unix.file_descr -> string -> unit

(** Daemon state: the engine (once a program is loaded), the configured
    job count, and the shutdown latch. *)
type state = {
  version : string;
  jobs : int option;
  mutable engine : Fsicp_core.Engine.t option;
  mutable stop : bool;
}

val make_state : ?jobs:int -> version:string -> unit -> state

(** The request vocabulary, as reported by the [version] command. *)
val commands : string list

(** Dispatch one request document (or batch).  Total: protocol-level
    problems come back as [{"ok":false,...}] responses. *)
val handle : state -> Json.t -> Json.t

(** Dispatch a single (non-batch) request object. *)
val handle_one : state -> Json.t -> Json.t
