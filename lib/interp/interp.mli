(** Reference interpreter for MiniFort — the ground truth the constant
    propagation soundness tests check against.

    Semantics: by-reference parameters (bare-variable actuals share the
    caller's cell; other actuals get hidden temporaries); locals and
    non-block-data globals start at [Int 0]; division/modulus by zero is a
    runtime error; execution is fuel-bounded. *)

open Fsicp_lang

exception Runtime_error of string
exception Out_of_fuel

(** One dynamic procedure entry, recorded when tracing is on: the values of
    every formal and every global at the instant the callee starts. *)
type entry_event = {
  ev_proc : string;
  ev_formals : (string * Value.t) list;
  ev_globals : (string * Value.t) list;
}

type result = {
  prints : Value.t list;  (** values printed, in order *)
  entries : entry_event list;  (** procedure-entry trace, in order *)
  exits : entry_event list;
      (** procedure-exit trace (formal and global values at the instant a
          call completes), in completion order — the ground truth for the
          return-constants summaries *)
  steps : int;  (** statements executed *)
}

(** Execute from the entry procedure.  Fuel is charged per statement and
    per [while]-condition re-evaluation, so loops with empty bodies still
    terminate with {!Out_of_fuel}.
    @param fuel statement budget (default 200_000)
    @param trace record {!entry_event}s (default [true])
    @raise Runtime_error on arithmetic errors
    @raise Out_of_fuel when the budget runs out *)
val run : ?fuel:int -> ?trace:bool -> Ast.program -> result

(** [run] with runtime errors, fuel exhaustion and [Stack_overflow] (deep
    guarded recursion) mapped to [None]. *)
val run_opt : ?fuel:int -> ?trace:bool -> Ast.program -> result option
