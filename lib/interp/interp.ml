(** Reference interpreter for MiniFort.

    The interpreter is the ground truth that the constant-propagation
    soundness property tests check against: every constant an analysis
    claims to hold at a procedure entry must equal the value the interpreter
    observes at {e every} dynamic entry to that procedure.

    Semantics highlights (shared with the analyses):
    - parameters are passed by reference when the actual is a bare variable,
      otherwise through a fresh temporary cell;
    - locals are implicitly initialised to [Int 0] at procedure entry
      (the analyses treat the entry value as unknown, which is sound);
    - globals not initialised by block data start as [Int 0];
    - division/modulus by zero raises {!Runtime_error};
    - execution is fuel-bounded to make property tests on generated
      (possibly diverging) programs safe. *)

open Fsicp_lang
module Trace = Fsicp_trace.Trace

(* Work done by the reference interpreter: statements executed and fuel
   consumed (the two differ — condition re-evaluations charge fuel without
   counting as statements).  Deterministic per program. *)
let c_steps = Trace.counter "interp.steps"
let c_fuel = Trace.counter "interp.fuel"

exception Runtime_error of string
exception Out_of_fuel

(** One dynamic procedure-entry event, recorded when tracing is on. *)
type entry_event = {
  ev_proc : string;
  ev_formals : (string * Value.t) list;  (** formal name, value at entry *)
  ev_globals : (string * Value.t) list;  (** global name, value at entry *)
}

type result = {
  prints : Value.t list;  (** values printed, in order *)
  entries : entry_event list;  (** procedure-entry trace, in order *)
  exits : entry_event list;
      (** procedure-exit trace (same shape: formal and global values at the
          instant the callee returns), in completion order — the ground
          truth for the return-constants summaries *)
  steps : int;  (** statements executed *)
}

type state = {
  prog : Ast.program;
  genv : (string, Value.t ref) Hashtbl.t;
  mutable fuel : int;
  mutable nsteps : int;
  trace : bool;
  mutable prints_rev : Value.t list;
  mutable entries_rev : entry_event list;
  mutable exits_rev : entry_event list;
}

exception Return_exc

let runtime_error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type frame = { cells : (string, Value.t ref) Hashtbl.t; fformals : string list }

let lookup_cell st (frame : frame) x : Value.t ref =
  match Hashtbl.find_opt frame.cells x with
  | Some c -> c
  | None -> (
      match Hashtbl.find_opt st.genv x with
      | Some c -> c
      | None ->
          (* Implicitly-declared local: comes into existence as Int 0. *)
          let c = ref (Value.Int 0) in
          Hashtbl.add frame.cells x c;
          c)

let rec eval st frame (e : Ast.expr) : Value.t =
  match e with
  | Ast.Const v -> v
  | Ast.Var x -> !(lookup_cell st frame x)
  | Ast.Unary (op, e) -> (
      let v = eval st frame e in
      match Value.eval_unop op v with
      | Some r -> r
      | None -> runtime_error "unary %s undefined" (Ops.unop_to_string op))
  | Ast.Binary (op, l, r) -> (
      let a = eval st frame l in
      let b = eval st frame r in
      match Value.eval_binop op a b with
      | Some v -> v
      | None ->
          runtime_error "binary %s undefined on %s and %s"
            (Ops.binop_to_string op) (Value.to_string a) (Value.to_string b))

let rec exec_block st frame (body : Ast.stmt list) =
  List.iter (exec_stmt st frame) body

and exec_stmt st frame (s : Ast.stmt) =
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1;
  st.nsteps <- st.nsteps + 1;
  match s.sdesc with
  | Ast.Assign (x, e) ->
      let v = eval st frame e in
      lookup_cell st frame x := v
  | Ast.If (c, t, e) ->
      if Value.truthy (eval st frame c) then exec_block st frame t
      else exec_block st frame e
  | Ast.While (c, body) ->
      while Value.truthy (eval st frame c) do
        (* Each condition re-evaluation costs fuel: a loop whose body
           consumes none (e.g. emptied by constant folding) must still run
           out of fuel rather than spin forever. *)
        if st.fuel <= 0 then raise Out_of_fuel;
        st.fuel <- st.fuel - 1;
        exec_block st frame body
      done
  | Ast.Call (q, args) -> call_proc st frame q args
  | Ast.Return -> raise Return_exc
  | Ast.Print e -> st.prints_rev <- eval st frame e :: st.prints_rev

and call_proc st (caller : frame) q args =
  let callee = Ast.find_proc_exn st.prog q in
  let cells = Hashtbl.create 8 in
  List.iter2
    (fun formal arg ->
      let cell =
        match arg with
        | Ast.Var x -> lookup_cell st caller x
        | e -> ref (eval st caller e)
      in
      (* By-reference binding: the formal shares the actual's cell.  When
         the same variable is passed twice, both formals alias it — the
         behaviour the interprocedural alias analysis must over-approximate. *)
      Hashtbl.replace cells formal cell)
    callee.formals args;
  let frame = { cells; fformals = callee.formals } in
  let snapshot () =
    {
      ev_proc = q;
      ev_formals =
        List.map (fun f -> (f, !(Hashtbl.find cells f))) callee.formals;
      ev_globals =
        List.map (fun g -> (g, !(Hashtbl.find st.genv g))) st.prog.globals;
    }
  in
  if st.trace then st.entries_rev <- snapshot () :: st.entries_rev;
  (try exec_block st frame callee.body with Return_exc -> ());
  (* Record the exit snapshot only for calls that complete: an abort
     (runtime error, fuel, stack overflow) constrains no exit summary. *)
  if st.trace then st.exits_rev <- snapshot () :: st.exits_rev

(** [run ?fuel ?trace prog] executes [prog] from its entry procedure.

    @param fuel maximum number of statements to execute (default 200_000)
    @param trace record procedure-entry events (default [true])
    @raise Runtime_error on division/modulus by zero
    @raise Out_of_fuel when the fuel budget is exhausted *)
let run ?(fuel = 200_000) ?(trace = true) (prog : Ast.program) : result =
  Trace.span "interp:run" @@ fun () ->
  let genv = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace genv g (ref (Value.Int 0))) prog.globals;
  List.iter (fun (g, v) -> Hashtbl.replace genv g (ref v)) prog.blockdata;
  let st =
    {
      prog;
      genv;
      fuel;
      nsteps = 0;
      trace;
      prints_rev = [];
      entries_rev = [];
      exits_rev = [];
    }
  in
  (* Counters flush on every exit path: fuel exhaustion and runtime errors
     still account for the work done up to the failure. *)
  Fun.protect
    ~finally:(fun () ->
      Trace.add c_steps st.nsteps;
      Trace.add c_fuel (fuel - st.fuel))
  @@ fun () ->
  let main = Ast.find_proc_exn prog prog.main in
  let frame = { cells = Hashtbl.create 8; fformals = [] } in
  let main_snapshot () =
    {
      ev_proc = prog.main;
      ev_formals = [];
      ev_globals = List.map (fun g -> (g, !(Hashtbl.find genv g))) prog.globals;
    }
  in
  if st.trace then st.entries_rev <- main_snapshot () :: st.entries_rev;
  (try exec_block st frame main.body with Return_exc -> ());
  if st.trace then st.exits_rev <- main_snapshot () :: st.exits_rev;
  {
    prints = List.rev st.prints_rev;
    entries = List.rev st.entries_rev;
    exits = List.rev st.exits_rev;
    steps = st.nsteps;
  }

(** [run_opt] is [run] but maps runtime errors, fuel exhaustion and OCaml
    stack overflow (deep guarded recursion in generated programs) to
    [None]; convenient in property tests where generated programs may
    divide by zero, diverge, or recurse past the host stack. *)
let run_opt ?fuel ?trace prog =
  match run ?fuel ?trace prog with
  | r -> Some r
  | exception (Runtime_error _ | Out_of_fuel | Stack_overflow) -> None
