(** Experiment harness: regenerates every table and figure of the paper's
    evaluation section on the calibrated synthetic suite, printing measured
    values side by side with the paper's published ones ("measured (paper)").

    Shared by [bench/main.exe] (the canonical entry point, see
    EXPERIMENTS.md) and the [fsicp] CLI. *)

open Fsicp_core
open Fsicp_workloads
open Fsicp_report
open Fsicp_par

type run = {
  r_bench : Spec.benchmark;
  r_ctx : Context.t;
  r_fi : Solution.t;
  r_fs : Solution.t;
  r_candidates : Metrics.candidates_row;
  r_propagated : Metrics.propagated_row;
}

(** Analyse one benchmark (generate, build context, run both methods).
    [jobs] is threaded to the context build and the FS wavefront; the
    per-suite fan-out below parallelises across benchmarks instead and
    pins the inner analyses to one domain. *)
let run_benchmark ?(floats = true) ?jobs (b : Spec.benchmark) : run =
  let prog = Spec.program b in
  let ctx = Context.create ~floats ?jobs prog in
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ?jobs ~fi ctx in
  {
    r_bench = b;
    r_ctx = ctx;
    r_fi = fi;
    r_fs = fs;
    r_candidates = Metrics.candidates ctx ~fi ~fs ~name:b.Spec.b_name;
    r_propagated = Metrics.propagated ctx ~fi ~fs ~name:b.Spec.b_name;
  }

let cell measured paper =
  if paper < 0 then Printf.sprintf "%d (n/r)" measured
  else Printf.sprintf "%d (%d)" measured paper

(* Sum a paper column, skipping unreported entries. *)
let psum f rows = List.fold_left (fun acc r -> acc + max 0 (f r)) 0 rows

(** Table 1 (or Table 3 when given the first-release subset and
    [~floats:false]): interprocedural call-site constant candidates. *)
let candidates_table ?(floats = true) ~title (benchmarks : Spec.benchmark list)
    : Report.t * run list =
  (* Benchmarks are independent: fan out across the suite, one domain per
     benchmark, keeping each benchmark's own analyses sequential. *)
  let runs =
    Par.map_list ~jobs:(Par.default_jobs ())
      (run_benchmark ~floats ~jobs:1)
      benchmarks
  in
  let papers = List.map (fun r -> r.r_bench.Spec.b_paper) runs in
  let row (r : run) =
    let c = r.r_candidates and p = r.r_bench.Spec.b_paper in
    [
      c.Metrics.cd_program;
      cell c.Metrics.cd_args p.Spec.p_arg;
      cell c.Metrics.cd_imm p.Spec.p_imm;
      cell c.Metrics.cd_fi p.Spec.p_fi_args;
      cell c.Metrics.cd_fs p.Spec.p_fs_args;
      cell c.Metrics.cd_gl_fi p.Spec.p_gl_cand;
      cell c.Metrics.cd_gl_fs p.Spec.p_gl_fs_sites;
      cell c.Metrics.cd_gl_vis p.Spec.p_gl_vis;
    ]
  in
  let totals =
    let sum f = List.fold_left (fun acc r -> acc + f r.r_candidates) 0 runs in
    [
      "TOTAL";
      cell (sum (fun c -> c.Metrics.cd_args)) (psum (fun p -> p.Spec.p_arg) papers);
      cell (sum (fun c -> c.Metrics.cd_imm)) (psum (fun p -> p.Spec.p_imm) papers);
      cell (sum (fun c -> c.Metrics.cd_fi)) (psum (fun p -> p.Spec.p_fi_args) papers);
      cell (sum (fun c -> c.Metrics.cd_fs)) (psum (fun p -> p.Spec.p_fs_args) papers);
      cell (sum (fun c -> c.Metrics.cd_gl_fi)) (psum (fun p -> p.Spec.p_gl_cand) papers);
      cell (sum (fun c -> c.Metrics.cd_gl_fs)) (psum (fun p -> p.Spec.p_gl_fs_sites) papers);
      cell (sum (fun c -> c.Metrics.cd_gl_vis)) (psum (fun p -> p.Spec.p_gl_vis) papers);
    ]
  in
  ( Report.make ~title
      ~header:
        [ "PROGRAM"; "ARG"; "IMM"; "FI"; "FS"; "G.CAND"; "G.FS"; "G.VIS" ]
      (List.map row runs @ [ totals ]),
    runs )

(** Table 2 (or Table 4): interprocedurally propagated constants. *)
let propagated_table ~title (runs : run list) : Report.t =
  let papers = List.map (fun r -> r.r_bench.Spec.b_paper) runs in
  let row (r : run) =
    let m = r.r_propagated and p = r.r_bench.Spec.b_paper in
    [
      m.Metrics.pr_program;
      cell m.Metrics.pr_fp p.Spec.p_fp;
      cell m.Metrics.pr_fi p.Spec.p_fi_formals;
      cell m.Metrics.pr_fs p.Spec.p_fs_formals;
      cell m.Metrics.pr_procs p.Spec.p_procs;
      cell m.Metrics.pr_gl_fi p.Spec.p_gl_fi;
      cell m.Metrics.pr_gl_fs p.Spec.p_gl_fs;
    ]
  in
  let totals =
    let sum f = List.fold_left (fun acc r -> acc + f r.r_propagated) 0 runs in
    [
      "TOTAL";
      cell (sum (fun m -> m.Metrics.pr_fp)) (psum (fun p -> p.Spec.p_fp) papers);
      cell (sum (fun m -> m.Metrics.pr_fi)) (psum (fun p -> p.Spec.p_fi_formals) papers);
      cell (sum (fun m -> m.Metrics.pr_fs)) (psum (fun p -> p.Spec.p_fs_formals) papers);
      cell (sum (fun m -> m.Metrics.pr_procs)) (psum (fun p -> p.Spec.p_procs) papers);
      cell (sum (fun m -> m.Metrics.pr_gl_fi)) (psum (fun p -> p.Spec.p_gl_fi) papers);
      cell (sum (fun m -> m.Metrics.pr_gl_fs)) (psum (fun p -> p.Spec.p_gl_fs) papers);
    ]
  in
  Report.make ~title
    ~header:[ "PROGRAM"; "FP"; "FI"; "FS"; "PROCS"; "G.FI"; "G.FS" ]
    (List.map row runs @ [ totals ])

(** Table 5: intraprocedural substitutions (POLYNOMIAL vs FI vs FS), on the
    first-release subset with floats off.  The CC/VC columns are ours —
    the paper has no numbers for them, so they print as plain counts. *)
let substitutions_table ~title (runs : run list) : Report.t =
  let rows =
    List.map
      (fun r ->
        let m =
          Metrics.substitutions r.r_ctx ~fi:r.r_fi ~fs:r.r_fs
            ~name:r.r_bench.Spec.b_name ()
        in
        let p_poly, p_fi, p_fs =
          match List.assoc_opt m.Metrics.sb_program Spec.table5_paper with
          | Some t -> t
          | None -> (-1, -1, -1)
        in
        ( m,
          [
            m.Metrics.sb_program;
            cell m.Metrics.sb_poly p_poly;
            cell m.Metrics.sb_fi p_fi;
            cell m.Metrics.sb_fs p_fs;
            string_of_int m.Metrics.sb_cc;
            string_of_int m.Metrics.sb_vc;
          ] ))
      runs
  in
  let totals =
    let sum f = List.fold_left (fun acc (m, _) -> acc + f m) 0 rows in
    let papers = List.map snd Spec.table5_paper in
    [
      "TOTAL";
      cell (sum (fun m -> m.Metrics.sb_poly))
        (List.fold_left (fun a (x, _, _) -> a + x) 0 papers);
      cell (sum (fun m -> m.Metrics.sb_fi))
        (List.fold_left (fun a (_, x, _) -> a + x) 0 papers);
      cell (sum (fun m -> m.Metrics.sb_fs))
        (List.fold_left (fun a (_, _, x) -> a + x) 0 papers);
      string_of_int (sum (fun m -> m.Metrics.sb_cc));
      string_of_int (sum (fun m -> m.Metrics.sb_vc));
    ]
  in
  Report.make ~title
    ~header:[ "PROGRAM"; "POLYNOMIAL"; "FI"; "FS"; "CC"; "VC" ]
    (List.map snd rows @ [ totals ])

(** Beyond the paper: entry-constant gains of the copy-constant and
    value-context methods over FS on the calibrated suite.  The oracle
    hierarchy ([fs ⊑ cc], [fs ⊑ vc]) makes every delta ≥ 0. *)
let extended_gains_table ?(benchmarks = Spec.suite @ Spec.addendum) () :
    Report.t =
  let rows =
    Par.map_list ~jobs:(Par.default_jobs ())
      (fun (b : Spec.benchmark) ->
        let prog = Spec.program b in
        let ctx = Context.create ~jobs:1 prog in
        let fs = Fs_icp.solve ~jobs:1 ctx in
        Metrics.extended_gains ctx ~fs ~name:b.Spec.b_name ())
      benchmarks
  in
  let row (g : Metrics.gains_row) =
    let fs = g.Metrics.gn_fs_formals + g.Metrics.gn_fs_globals in
    let cc = g.Metrics.gn_cc_formals + g.Metrics.gn_cc_globals in
    let vc = g.Metrics.gn_vc_formals + g.Metrics.gn_vc_globals in
    [
      g.Metrics.gn_program;
      string_of_int fs;
      string_of_int cc;
      Printf.sprintf "+%d" (cc - fs);
      string_of_int vc;
      Printf.sprintf "+%d" (vc - fs);
    ]
  in
  let totals =
    let sum f = List.fold_left (fun acc g -> acc + f g) 0 rows in
    let fs =
      sum (fun g -> g.Metrics.gn_fs_formals + g.Metrics.gn_fs_globals)
    in
    let cc =
      sum (fun g -> g.Metrics.gn_cc_formals + g.Metrics.gn_cc_globals)
    in
    let vc =
      sum (fun g -> g.Metrics.gn_vc_formals + g.Metrics.gn_vc_globals)
    in
    [
      "TOTAL";
      string_of_int fs;
      string_of_int cc;
      Printf.sprintf "+%d" (cc - fs);
      string_of_int vc;
      Printf.sprintf "+%d" (vc - fs);
    ]
  in
  Report.make
    ~title:
      "Beyond the paper: entry constants (formals + globals) found by the \
       copy-constant and value-context methods vs FS"
    ~header:[ "PROGRAM"; "FS"; "CC"; "CC-GAIN"; "VC"; "VC-GAIN" ]
    (List.map row rows @ [ totals ])

(** Figure 1: per-method constant sets on the reconstruction. *)
let figure1_table () : Report.t =
  let ctx = Context.create Figure1.program in
  let rows = Metrics.figure1 ctx in
  let formal_name (proc, i) =
    (* In the Figure 1 program formals are f1..f5. *)
    let p = Fsicp_lang.Ast.find_proc_exn Figure1.program proc in
    List.nth p.Fsicp_lang.Ast.formals i
  in
  Report.make ~title:"Figure 1: formal parameter constants per method"
    ~header:[ "METHOD"; "FORMAL PARAMETER CONSTANTS" ]
    (List.map
       (fun (r : Metrics.figure1_row) ->
         [
           r.Metrics.f1_method;
           String.concat ", "
             (List.sort compare (List.map formal_name r.Metrics.f1_constants));
         ])
       rows)

(** §3.2 back-edge-ratio experiment: sweep the generator's back-edge
    probability and report precision (FS constant formals) relative to the
    iterative reference and the FI floor. *)
let backedge_sweep ?(seeds = [ 7; 21; 35 ]) () : Report.t =
  let probs = [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  (* Every (probability, seed) cell is independent — including the
     expensive iterative-reference solve — so the whole sweep fans out at
     once, one domain per cell. *)
  let probe (prob, seed) =
    let profile =
      {
        (Generator.small_profile seed) with
        Generator.g_procs = 12;
        g_back_edge_prob = prob;
        g_w_imm = 2.0;
        g_w_local_const = 2.0;
        g_w_prune = 1.0;
        g_w_bot = 2.0;
      }
    in
    let prog = Generator.generate profile in
    let ctx = Context.create ~jobs:1 prog in
    let fi = Fi_icp.solve ctx in
    let fs = Fs_icp.solve ~jobs:1 ~fi ctx in
    let reference = Reference.solve ctx in
    let n sol = List.length (Solution.constant_formals sol) in
    let ratio = Fsicp_callgraph.Callgraph.back_edge_ratio ctx.Context.pcg in
    (prob, (ratio, n fi, n fs, n reference))
  in
  let cells =
    Par.map_list ~jobs:(Par.default_jobs ()) probe
      (List.concat_map (fun p -> List.map (fun s -> (p, s)) seeds) probs)
  in
  let row prob =
    let counts = List.filter_map
        (fun (p, c) -> if p = prob then Some c else None) cells
    in
    let avg f =
      List.fold_left (fun acc c -> acc +. f c) 0.0 counts
      /. float_of_int (List.length counts)
    in
    [
      Printf.sprintf "%.2f" prob;
      Printf.sprintf "%.2f" (avg (fun (r, _, _, _) -> r));
      Printf.sprintf "%.1f" (avg (fun (_, fi, _, _) -> float_of_int fi));
      Printf.sprintf "%.1f" (avg (fun (_, _, fs, _) -> float_of_int fs));
      Printf.sprintf "%.1f" (avg (fun (_, _, _, it) -> float_of_int it));
    ]
  in
  Report.make
    ~title:
      "Back-edge sweep (§3.2): FS precision degrades from iterative to FI \
       as the back-edge ratio grows"
    ~header:
      [ "BACK-PROB"; "EDGE-RATIO"; "FI-CONSTS"; "FS-CONSTS"; "ITER-CONSTS" ]
    (List.map row probs)

(** §4 float ablation: global and argument constants with and without
    floating-point propagation. *)
let floats_table () : Report.t =
  let both =
    Par.map_list ~jobs:(Par.default_jobs ())
      (fun b ->
        let w = run_benchmark ~floats:true ~jobs:1 b in
        let wo = run_benchmark ~floats:false ~jobs:1 b in
        (b, w, wo))
      Spec.suite
  in
  let sum f = List.fold_left (fun acc (_, w, wo) -> acc + f w wo) 0 both in
  let gl_with = sum (fun w _ -> w.r_propagated.Metrics.pr_gl_fs) in
  let gl_without = sum (fun _ wo -> wo.r_propagated.Metrics.pr_gl_fs) in
  let fs_args_with = sum (fun w _ -> w.r_candidates.Metrics.cd_fs) in
  let fs_args_without = sum (fun _ wo -> wo.r_candidates.Metrics.cd_fs) in
  let gl_fi_with = sum (fun w _ -> w.r_propagated.Metrics.pr_gl_fi) in
  let gl_fi_without = sum (fun _ wo -> wo.r_propagated.Metrics.pr_gl_fi) in
  Report.make
    ~title:
      "Floating-point ablation (§4): paper reports 105 of 175 FS global \
       constants and 12 FS arguments are floating point; all FI globals are"
    ~header:[ "METRIC"; "FLOATS ON"; "FLOATS OFF"; "FP-ONLY" ]
    [
      [
        "FS global constants (T2)";
        string_of_int gl_with;
        string_of_int gl_without;
        string_of_int (gl_with - gl_without);
      ];
      [
        "FI global constants (T2)";
        string_of_int gl_fi_with;
        string_of_int gl_fi_without;
        string_of_int (gl_fi_with - gl_fi_without);
      ];
      [
        "FS constant arguments (T1)";
        string_of_int fs_args_with;
        string_of_int fs_args_without;
        string_of_int (fs_args_with - fs_args_without);
      ];
    ]

(** §4 compile-time experiment: the whole analysis phase with the FI method
    vs with the FS method, averaged over [reps] repetitions.

    The paper's accounting: "Our prototype performs intraprocedural constant
    propagation by default" — i.e. both configurations pay for the IPA
    infrastructure (collection, PCG, aliasing, MOD/REF, lowering) and for
    one flow-sensitive {e intraprocedural} pass per procedure (the backward
    walk's default SCC, here the final substitution pass).  The FS method
    adds its own one-SCC-per-procedure forward traversal on top, which is
    what makes it "+50%, consistent over all of the benchmarks" rather than
    orders of magnitude. *)
let timing_table ?(reps = 3) () : Report.t =
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let rows =
    List.map
      (fun (b : Spec.benchmark) ->
        let prog = Spec.program b in
        (* FI configuration: infrastructure + FI ICP + default
           intraprocedural pass (SSA built here). *)
        let t_fi =
          time (fun () ->
              let ctx = Context.create prog in
              let fi = Fi_icp.solve ctx in
              Transform.substitutions ctx fi)
        in
        (* FS configuration: the same, plus the interleaved flow-sensitive
           interprocedural traversal (SSA built there and reused by the
           final pass). *)
        let t_fs =
          time (fun () ->
              let ctx = Context.create prog in
              let fi = Fi_icp.solve ctx in
              let fs = Fs_icp.solve ~fi ctx in
              Transform.substitutions ctx fs)
        in
        ( b.Spec.b_name,
          t_fi,
          t_fs,
          if t_fi > 0.0 then t_fs /. t_fi else Float.nan ))
      Spec.suite
  in
  let total_fi = List.fold_left (fun a (_, x, _, _) -> a +. x) 0.0 rows in
  let total_fs = List.fold_left (fun a (_, _, x, _) -> a +. x) 0.0 rows in
  Report.make
    ~title:
      "Analysis phase time (§4): paper reports FS ≈ FI + 50%, consistent \
       across benchmarks; absolute times are ours"
    ~header:[ "PROGRAM"; "FI (ms)"; "FS (ms)"; "FS/FI" ]
    (List.map
       (fun (n, fi, fs, ratio) ->
         [
           n;
           Printf.sprintf "%.2f" (1000.0 *. fi);
           Printf.sprintf "%.2f" (1000.0 *. fs);
           Printf.sprintf "%.2fx" ratio;
         ])
       rows
    @ [
        [
          "TOTAL";
          Printf.sprintf "%.2f" (1000.0 *. total_fi);
          Printf.sprintf "%.2f" (1000.0 *. total_fs);
          Printf.sprintf "%.2fx" (total_fs /. total_fi);
        ];
      ])

(** Figure 2: run the pipeline on a benchmark and print the phase trace. *)
let figure2 () : string =
  let prog = Spec.program (List.nth Spec.suite 10 (* 093.NASA7 *)) in
  let d = Driver.run prog in
  Fmt.str "%a" Driver.pp d

(** RETURNS ablation: constants with and without the return-constants
    extension (kept off in the tables, as in the paper). *)
let returns_table () : Report.t =
  let rows =
    Par.map_list ~jobs:(Par.default_jobs ())
      (fun (b : Spec.benchmark) ->
        (* Give every benchmark a slice of out-parameters (callees that
           store a constant through a reference before returning) — the
           Fortran idiom the return-constants extension exists for; the
           calibrated table profiles keep it at zero. *)
        let profile =
          {
            b.Spec.b_profile with
            Generator.g_w_out = 0.10;
            g_w_bot = Stdlib.max 0.0 (b.Spec.b_profile.Generator.g_w_bot -. 0.10);
          }
        in
        let prog = Generator.generate profile in
        let ctx = Context.create ~jobs:1 prog in
        let fs = Fs_icp.solve ~jobs:1 ctx in
        let rc = Return_consts.compute ctx ~fs in
        let fs2 =
          Fs_icp.solve ~jobs:1
            ~call_def_value:
              (Return_consts.as_oracle rc ~censor:(Context.censor_w ctx))
            ctx
        in
        let _, subs_base = Transform.substitutions ctx fs in
        let n sol = List.length (Solution.constant_formals sol) in
        let ng sol = List.length (Solution.constant_globals sol) in
        (* Substitutions from the refined (second-pass) SCC results. *)
        let subs_rc =
          Hashtbl.fold
            (fun _ res acc -> acc + Fsicp_scc.Scc.substitution_count res)
            rc.Return_consts.refined 0
        in
        [
          b.Spec.b_name;
          string_of_int (n fs);
          string_of_int (n fs2);
          string_of_int (ng fs);
          string_of_int (ng fs2);
          string_of_int subs_base;
          string_of_int subs_rc;
        ])
      Spec.suite
  in
  Report.make
    ~title:
      "Return-constants extension (§3.2, off in the paper's tables): \
       formal/global entry constants and substitutions without vs with"
    ~header:
      [ "PROGRAM"; "FP"; "FP+RET"; "GL"; "GL+RET"; "SUBS"; "SUBS+RET" ]
    rows
