(** Flow-sensitive interprocedural USE (paper §3.2).

    [USE(p)] is the set of formals and globals that may be {e referenced
    before being defined} when [p] is invoked — upward-exposed uses,
    propagated interprocedurally.  The paper computes it with the same
    one-pass discipline as the flow-sensitive ICP, mirrored here: one
    reverse topological traversal of the PCG in which a call site uses the
    callee's already-computed USE set for forward edges and falls back to
    the (flow-insensitive) REF information for back edges.

    Within a procedure we run the backward upward-exposed-uses dataflow of
    {!Fsicp_dataflow.Dataflow}.  Call sites {e kill} nothing (MOD is may-
    information; only must-definitions may kill a use, and plain assignments
    are the only must-definitions), which keeps USE an over-approximation. *)

open Fsicp_cfg
open Fsicp_prog
open Summary
module Callgraph = Fsicp_callgraph.Callgraph

type t = { db : Prog.t; use : VrefSet.t Prog.Proc.Tbl.t }

let get t name =
  match Prog.proc_id t.db name with
  | Some id -> Prog.Proc.Tbl.get t.use id
  | None -> VrefSet.empty

let vref_of_var (v : Ir.var) : vref option =
  match v.Ir.vkind with
  | Ir.Formal i -> Some (Vformal i)
  | Ir.Global -> Some (Vglobal (Ir.Var.name v))
  | Ir.Local | Ir.Temp -> None

(** [compute procs modref pcg] computes USE for every reachable procedure.
    [procs] must contain the lowered body of each reachable procedure. *)
let compute (procs : Ir.proc Prog.Proc.Tbl.t) (modref : Modref.t)
    (pcg : Callgraph.t) : t =
  let use = Prog.Proc.Tbl.make (Callgraph.n_procs pcg) VrefSet.empty in
  let processed = Array.make (Callgraph.n_procs pcg) false in
  Array.iter
    (fun pid ->
      let p = Prog.Proc.Tbl.get procs pid in
      (* Per-call-site uses: bind the callee's USE (or REF on back edges)
         through the argument list into caller-side variables.  The lists
         are fixed for the duration of this procedure's dataflow solve
         (every forward-edge callee is already final, back edges read the
         static REF sets), so compute them once into a flat cache over the
         instruction ordinal instead of folding the [VrefSet] on every
         fixpoint iteration of [transfer]. *)
      let nblocks = Array.length p.Ir.cfg.Ir.blocks in
      let ibase = Array.make (nblocks + 1) 0 in
      for b = 0 to nblocks - 1 do
        ibase.(b + 1) <-
          ibase.(b) + Array.length p.Ir.cfg.Ir.blocks.(b).Ir.instrs
      done;
      let call_uses : Ir.var list array =
        Array.make (max 1 ibase.(nblocks)) []
      in
      Array.iteri
        (fun b (blk : Ir.block) ->
          Array.iteri
            (fun i ins ->
              match ins with
              | Ir.Call { cs_id; callee; args } ->
                  let callee_set =
                    let edge_is_back =
                      Callgraph.is_back_edge_at pcg ~caller:pid
                        ~cs_index:cs_id
                    in
                    let callee_id = Callgraph.proc_id_exn pcg callee in
                    if edge_is_back || not processed.((callee_id :> int))
                    then Modref.gref_of modref callee
                    else Prog.Proc.Tbl.get use callee_id
                  in
                  call_uses.(ibase.(b) + i) <-
                    VrefSet.fold
                      (fun v acc ->
                        match v with
                        | Vglobal g -> Ir.global g :: acc
                        | Vformal j -> (
                            if j < Array.length args then
                              match args.(j).Ir.a_byref with
                              | Some v -> v :: acc
                              | None -> acc
                            else acc))
                      callee_set []
              | Ir.Assign _ | Ir.Print _ -> ())
            blk.Ir.instrs)
        p.Ir.cfg.Ir.blocks;
      (* The generic engine takes a per-callee function; we need per-site
         (back-edge distinction), so inline the transfer here. *)
      let transfer b (live_out : Ir.VarSet.t) =
        let blk = p.Ir.cfg.Ir.blocks.(b) in
        let live = ref live_out in
        (match blk.Ir.term with
        | Ir.Cond (Ir.Var v, _, _) -> live := Ir.VarSet.add v !live
        | Ir.Cond (Ir.Const _, _, _) | Ir.Goto _ | Ir.Ret -> ());
        for i = Array.length blk.Ir.instrs - 1 downto 0 do
          let ins = blk.Ir.instrs.(i) in
          (match ins with
          | Ir.Assign (v, _) -> live := Ir.VarSet.remove v !live
          | Ir.Call _ | Ir.Print _ -> ());
          List.iter
            (fun u -> live := Ir.VarSet.add u !live)
            (Fsicp_dataflow.Dataflow.instr_uses ins);
          List.iter
            (fun u -> live := Ir.VarSet.add u !live)
            call_uses.(ibase.(b) + i)
        done;
        !live
      in
      let res =
        Fsicp_dataflow.Dataflow.VarSets.solve
          ~direction:Fsicp_dataflow.Dataflow.Backward ~init:Ir.VarSet.empty
          ~transfer p.Ir.cfg
      in
      let entry_live =
        res.Fsicp_dataflow.Dataflow.VarSets.block_in.(p.Ir.cfg.Ir.entry)
      in
      let vrefs =
        Ir.VarSet.fold
          (fun v acc ->
            match vref_of_var v with
            | Some r -> VrefSet.add r acc
            | None -> acc)
          entry_live VrefSet.empty
      in
      Prog.Proc.Tbl.set use pid vrefs;
      processed.((pid :> int)) <- true)
    (Callgraph.reverse_order pcg);
  { db = pcg.Callgraph.db; use }

(** Is global [g] in USE(p)? *)
let global_used t p g = VrefSet.mem (Vglobal g) (get t p)

(** Is formal [i] in USE(p)? *)
let formal_used t p i = VrefSet.mem (Vformal i) (get t p)
