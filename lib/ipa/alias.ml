(** Interprocedural reference-parameter alias analysis (Figure 2 step 3).

    MiniFort, like Fortran, passes parameters by reference, so two formals of
    the same procedure may name the same location (the caller passed the same
    variable twice), and a formal may name a global (the caller passed the
    global as an actual).  The MOD/REF computation ({!Modref}) must account
    for these aliases to stay sound; the paper performs exactly this phase
    before MOD/REF.

    We compute, per procedure, the classic may-alias pairs
    [(formal, formal)] and [(formal, global)] by seeding from call sites and
    propagating transitively down call chains to a fixpoint (Cooper's
    flow-insensitive formulation, adequate for reference parameters). *)

module IntPairSet = Set.Make (struct
  type t = int * int

  let compare = Stdlib.compare
end)

module IntStrSet = Set.Make (struct
  type t = int * string

  let compare = Stdlib.compare
end)

type proc_aliases = {
  ff : IntPairSet.t;  (** pairs (i, j), i < j: formals i and j may alias *)
  fg : IntStrSet.t;  (** pairs (i, g): formal i may alias global g *)
}

type t = { table : (string, proc_aliases) Hashtbl.t }

let empty_aliases = { ff = IntPairSet.empty; fg = IntStrSet.empty }

let find t name =
  Option.value (Hashtbl.find_opt t.table name) ~default:empty_aliases

(** Do formals [i] and [j] of [proc] possibly alias? *)
let formals_may_alias t proc i j =
  let a = find t proc in
  IntPairSet.mem ((min i j), (max i j)) a.ff

(** May formal [i] of [proc] alias global [g]? *)
let formal_global_may_alias t proc i g =
  let a = find t proc in
  IntStrSet.mem (i, g) a.fg

(** Globals that formal [i] of [proc] may alias. *)
let globals_aliasing_formal t proc i =
  let a = find t proc in
  IntStrSet.fold (fun (j, g) acc -> if j = i then g :: acc else acc) a.fg []

(** Formals of [proc] aliasing formal [i]. *)
let formals_aliasing_formal t proc i =
  let a = find t proc in
  IntPairSet.fold
    (fun (j, k) acc ->
      if j = i then k :: acc else if k = i then j :: acc else acc)
    a.ff []

let compute (summaries : Summary.t) (pcg : Fsicp_callgraph.Callgraph.t) : t =
  let table = Hashtbl.create 16 in
  let get name = Option.value (Hashtbl.find_opt table name) ~default:empty_aliases in
  let set name a = Hashtbl.replace table name a in
  let changed = ref true in
  (* Iterate forward over the PCG until stable: alias pairs flow from caller
     to callee through argument binding. *)
  while !changed do
    changed := false;
    Array.iter
      (fun pid ->
        let caller = Fsicp_callgraph.Callgraph.proc_name pcg pid in
        let s = Summary.find summaries caller in
        let caller_al = get caller in
        List.iter
          (fun (c : Summary.call_summary) ->
            let current = get c.Summary.cs_callee in
            let ff = ref current.ff and fg = ref current.fg in
            let n = Array.length c.Summary.cs_args in
            let add_ff i j =
              let p = (min i j, max i j) in
              if i <> j && not (IntPairSet.mem p !ff) then begin
                ff := IntPairSet.add p !ff;
                changed := true
              end
            in
            let add_fg i g =
              if not (IntStrSet.mem (i, g) !fg) then begin
                fg := IntStrSet.add (i, g) !fg;
                changed := true
              end
            in
            (* Seed: same actual at two positions; global actuals. *)
            for i = 0 to n - 1 do
              (match c.Summary.cs_args.(i) with
              | Summary.Aglobal g -> add_fg i g
              | Summary.Alit _ | Summary.Aformal _ | Summary.Alocal _
              | Summary.Aexpr -> ());
              for j = i + 1 to n - 1 do
                match (c.Summary.cs_args.(i), c.Summary.cs_args.(j)) with
                | Summary.Aformal a, Summary.Aformal b when a = b -> add_ff i j
                | Summary.Aglobal a, Summary.Aglobal b when String.equal a b ->
                    add_ff i j
                | Summary.Alocal a, Summary.Alocal b when String.equal a b ->
                    add_ff i j
                (* Transitive: caller's aliased formals passed onward. *)
                | Summary.Aformal a, Summary.Aformal b
                  when IntPairSet.mem
                         ((min a b), (max a b))
                         caller_al.ff ->
                    add_ff i j
                | _ -> ()
              done;
              (* Transitive formal-global aliases. *)
              match c.Summary.cs_args.(i) with
              | Summary.Aformal a ->
                  IntStrSet.iter
                    (fun (j, g) -> if j = a then add_fg i g)
                    caller_al.fg
              | Summary.Alit _ | Summary.Aglobal _ | Summary.Alocal _
              | Summary.Aexpr -> ()
            done;
            set c.Summary.cs_callee { ff = !ff; fg = !fg })
          s.Summary.ps_calls)
      (Fsicp_callgraph.Callgraph.forward_order pcg)
  done;
  { table }

let pp ppf (t : t) =
  Hashtbl.iter
    (fun name a ->
      if not (IntPairSet.is_empty a.ff && IntStrSet.is_empty a.fg) then begin
        Fmt.pf ppf "%s:" name;
        IntPairSet.iter (fun (i, j) -> Fmt.pf ppf " (f%d,f%d)" i j) a.ff;
        IntStrSet.iter (fun (i, g) -> Fmt.pf ppf " (f%d,%s)" i g) a.fg;
        Fmt.pf ppf "@\n"
      end)
    t.table
