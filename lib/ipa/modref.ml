(** Interprocedural MOD and REF (Figure 2 step 4).

    A flow-insensitive computation over the PCG in the style of
    Cooper–Kennedy/Banning: for each procedure [p],

    - [GMOD(p)]: the formals of [p] and globals that a call to [p] may
      modify (directly in [p] or transitively through calls [p] makes);
    - [GREF(p)]: likewise for references.

    Both sets are closed under the reference-parameter aliases computed by
    {!Alias} (the paper performs the alias phase first for this reason):
    if formal [i] is modified and may alias formal [j] or global [g], then
    [j]/[g] are also in GMOD.

    Fixpoint: iterate the reverse topological order of the PCG (callees
    before callers, cycles via repeated sweeps) binding callee sets through
    call-site argument lists:  a modified formal [j] of callee [q] maps to
    whatever actual the caller passes at position [j] — a formal of the
    caller, a global, or (invisibly for interprocedural purposes) a local or
    temporary. *)

open Summary

type t = {
  gmod : (string, VrefSet.t) Hashtbl.t;
  gref : (string, VrefSet.t) Hashtbl.t;
  summaries : Summary.t;
  (* Per-callee renderings of the GMOD/GREF sets in the exact shapes the
     SSA construction oracle asks for, precomputed once after the fixpoint
     (so the tables are read-only by the time multiple domains query them).
     Without these every call site re-interned and re-sorted the same
     lists on every SSA build. *)
  defs_globals : (string, Fsicp_cfg.Ir.var list) Hashtbl.t;
      (** GMOD globals as caller-side vars, sorted by [Ir.Var.compare] *)
  defs_formals : (string, int array) Hashtbl.t;
      (** formal indices in GMOD, ascending *)
  ref_globals : (string, Fsicp_cfg.Ir.var list) Hashtbl.t;
      (** GREF globals, in the order {!call_global_refs} historically
          produced (a [VrefSet.fold] cons) *)
}

let get tbl name = Option.value (Hashtbl.find_opt tbl name) ~default:VrefSet.empty

(* Close a set over the procedure's alias pairs. *)
let alias_close (aliases : Alias.t) proc (s : VrefSet.t) : VrefSet.t =
  VrefSet.fold
    (fun v acc ->
      match v with
      | Vformal i ->
          let acc =
            List.fold_left
              (fun acc j -> VrefSet.add (Vformal j) acc)
              acc
              (Alias.formals_aliasing_formal aliases proc i)
          in
          List.fold_left
            (fun acc g -> VrefSet.add (Vglobal g) acc)
            acc
            (Alias.globals_aliasing_formal aliases proc i)
      | Vglobal _ -> acc)
    s s

(* Map a callee-side set through a call site into caller-side vrefs. *)
let bind_through_call (c : call_summary) (callee_set : VrefSet.t) : VrefSet.t =
  VrefSet.fold
    (fun v acc ->
      match v with
      | Vglobal g -> VrefSet.add (Vglobal g) acc
      | Vformal j ->
          if j < Array.length c.cs_args then
            match c.cs_args.(j) with
            | Aformal i -> VrefSet.add (Vformal i) acc
            | Aglobal g -> VrefSet.add (Vglobal g) acc
            | Alit _ | Alocal _ | Aexpr -> acc
          else acc)
    callee_set VrefSet.empty

let compute (summaries : Summary.t) (aliases : Alias.t)
    (pcg : Fsicp_callgraph.Callgraph.t) : t =
  let gmod = Hashtbl.create 16 and gref = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun pid ->
        let name = Fsicp_callgraph.Callgraph.proc_name pcg pid in
        let s = Summary.find summaries name in
        let step tbl immediate =
          let acc = ref (VrefSet.union immediate (get tbl name)) in
          List.iter
            (fun c ->
              let callee_set =
                alias_close aliases c.cs_callee (get tbl c.cs_callee)
              in
              acc := VrefSet.union !acc (bind_through_call c callee_set))
            s.ps_calls;
          let closed = alias_close aliases name !acc in
          if not (VrefSet.equal closed (get tbl name)) then begin
            Hashtbl.replace tbl name closed;
            changed := true
          end
        in
        step gmod s.ps_imod;
        step gref s.ps_iref)
      (Fsicp_callgraph.Callgraph.reverse_order pcg)
  done;
  let defs_globals = Hashtbl.create 16 in
  let defs_formals = Hashtbl.create 16 in
  let ref_globals = Hashtbl.create 16 in
  Array.iter
    (fun pid ->
      let name = Fsicp_callgraph.Callgraph.proc_name pcg pid in
      let ms = get gmod name in
      let gs =
        VrefSet.fold
          (fun v acc ->
            match v with
            | Vglobal g -> Fsicp_cfg.Ir.global g :: acc
            | Vformal _ -> acc)
          ms []
      in
      Hashtbl.replace defs_globals name
        (List.sort_uniq Fsicp_cfg.Ir.Var.compare gs);
      let fs =
        VrefSet.fold
          (fun v acc -> match v with Vformal j -> j :: acc | Vglobal _ -> acc)
          ms []
      in
      Hashtbl.replace defs_formals name
        (Array.of_list (List.sort_uniq Int.compare fs));
      Hashtbl.replace ref_globals name
        (VrefSet.fold
           (fun v acc ->
             match v with
             | Vglobal g -> Fsicp_cfg.Ir.global g :: acc
             | Vformal _ -> acc)
           (get gref name) []))
    (Fsicp_callgraph.Callgraph.reverse_order pcg);
  { gmod; gref; summaries; defs_globals; defs_formals; ref_globals }

(* ------------------------------------------------------------------ *)
(* Queries used by the constant propagation methods                    *)
(* ------------------------------------------------------------------ *)

let gmod_of t name = get t.gmod name
let gref_of t name = get t.gref name

(** May [p] (or anything it calls) modify its [i]-th formal's location? *)
let formal_modified t p i = VrefSet.mem (Vformal i) (get t.gmod p)

(** May [p] (or anything it calls) modify global [g]? *)
let global_modified_in t p g = VrefSet.mem (Vglobal g) (get t.gmod p)

(** May [p] (or anything it calls) reference global [g]? *)
let global_referenced_in t p g = VrefSet.mem (Vglobal g) (get t.gref p)

(** Globals modified anywhere in the program reachable from [main]: these
    are the ones the flow-insensitive method removes from the block-data
    candidate list (paper Figure 3). *)
let globals_modified_anywhere t ~main : string list =
  VrefSet.fold
    (fun v acc -> match v with Vglobal g -> g :: acc | Vformal _ -> acc)
    (get t.gmod main) []

(** Variables a call to [callee] may define, as caller-side IR variables —
    the oracle SSA construction uses at call instructions.  [byrefs] are the
    by-reference actuals in argument order ([None] for value arguments). *)
(* Merge two [Ir.Var.compare]-sorted duplicate-free lists into one;
   equivalent to [List.sort_uniq Ir.Var.compare (a @ b)]. *)
let rec merge_uniq a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = Fsicp_cfg.Ir.Var.compare x y in
      if c < 0 then x :: merge_uniq xs b
      else if c > 0 then y :: merge_uniq a ys
      else x :: merge_uniq xs ys

let call_defs t ~callee ~(byref_args : Fsicp_cfg.Ir.var option array) :
    Fsicp_cfg.Ir.var list =
  let globals =
    Option.value (Hashtbl.find_opt t.defs_globals callee) ~default:[]
  in
  let byrefs = ref [] in
  Array.iter
    (fun j ->
      if j < Array.length byref_args then
        match byref_args.(j) with
        | Some v -> byrefs := v :: !byrefs
        | None -> ())
    (Option.value (Hashtbl.find_opt t.defs_formals callee) ~default:[||]);
  match !byrefs with
  | [] -> globals
  | bs ->
      (* Distinct: a global may be both in GMOD directly and via an alias
         (or be passed by reference at a GMOD formal position). *)
      merge_uniq (List.sort_uniq Fsicp_cfg.Ir.Var.compare bs) globals

(** Globals a call to [callee] may reference (transitively); the FS ICP
    records the lattice value of each of these at the call site. *)
let call_global_refs t ~callee : Fsicp_cfg.Ir.var list =
  Option.value (Hashtbl.find_opt t.ref_globals callee) ~default:[]

let pp ppf t =
  let pp_set ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Vref.pp) (VrefSet.elements s)
  in
  Hashtbl.iter
    (fun name _ ->
      Fmt.pf ppf "%s: MOD=%a REF=%a@\n" name pp_set (get t.gmod name) pp_set
        (get t.gref name))
    t.gmod
