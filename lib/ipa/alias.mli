(** Interprocedural reference-parameter alias analysis (Figure 2 step 3):
    may-alias pairs among formals, and between formals and globals, seeded
    at call sites (same actual twice; global actuals) and propagated down
    call chains to a fixpoint.  MOD/REF closes over these pairs. *)

type proc_aliases

type t

val empty_aliases : proc_aliases
val find : t -> string -> proc_aliases
val formals_may_alias : t -> string -> int -> int -> bool
val formal_global_may_alias : t -> string -> int -> string -> bool
val globals_aliasing_formal : t -> string -> int -> string list
val formals_aliasing_formal : t -> string -> int -> int list
val compute : Summary.t -> Fsicp_callgraph.Callgraph.t -> t
val pp : t Fmt.t
