(** Per-procedure IPA input summaries (the paper's collection phase,
    Figure 2 step 1): immediately modified/referenced formals and globals,
    and the argument shape at each call site. *)

open Fsicp_lang

type vref = Vformal of int | Vglobal of string

module Vref : sig
  type t = vref

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : t Fmt.t
end

module VrefSet : Set.S with type elt = vref

type arg_summary =
  | Alit of Value.t  (** immediate (literal) constant *)
  | Aformal of int  (** a bare formal of the caller *)
  | Aglobal of string
  | Alocal of string
  | Aexpr  (** any compound expression *)

val pp_arg_summary : arg_summary Fmt.t

type call_summary = {
  cs_callee : string;
  cs_args : arg_summary array;
  cs_index : int;
}

type proc_summary = {
  ps_name : string;
  ps_formals : string list;
  ps_imod : VrefSet.t;
  ps_iref : VrefSet.t;
  ps_calls : call_summary list;
}

type t = {
  prog : Ast.program;
  table : (string, proc_summary) Hashtbl.t;
}

val classify_arg :
  globals:string list -> formals:string list -> Ast.expr -> arg_summary

val summarize_proc : Ast.program -> Ast.proc -> proc_summary
val collect : Ast.program -> t
val find : t -> string -> proc_summary
