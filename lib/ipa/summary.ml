(** Per-procedure IPA input summaries (the paper's "IPA collection phase",
    Figure 2 step 1).

    During collection each procedure is visited once and the facts the
    interprocedural phases need are extracted from its AST: which formals
    and globals it immediately modifies and references, and the argument
    shape at each of its call sites. *)

open Fsicp_lang

(** A variable as seen across procedure boundaries: either the [i]-th formal
    of the procedure under discussion, or a global.  Locals never appear in
    interprocedural sets. *)
type vref = Vformal of int | Vglobal of string

module Vref = struct
  type t = vref

  let compare (a : t) (b : t) =
    match (a, b) with
    | Vformal i, Vformal j -> Int.compare i j
    | Vformal _, Vglobal _ -> -1
    | Vglobal _, Vformal _ -> 1
    | Vglobal g, Vglobal h -> String.compare g h

  let equal a b = compare a b = 0

  let pp ppf = function
    | Vformal i -> Fmt.pf ppf "formal#%d" i
    | Vglobal g -> Fmt.pf ppf "global:%s" g
end

module VrefSet = Set.Make (Vref)

(** Shape of an actual argument, as much as the flow-insensitive methods can
    see without intraprocedural analysis. *)
type arg_summary =
  | Alit of Value.t  (** immediate (literal) constant *)
  | Aformal of int  (** a bare formal of the calling procedure *)
  | Aglobal of string  (** a bare global *)
  | Alocal of string  (** a bare local *)
  | Aexpr  (** any compound expression *)

let pp_arg_summary ppf = function
  | Alit v -> Fmt.pf ppf "lit:%a" Value.pp v
  | Aformal i -> Fmt.pf ppf "formal#%d" i
  | Aglobal g -> Fmt.pf ppf "global:%s" g
  | Alocal x -> Fmt.pf ppf "local:%s" x
  | Aexpr -> Fmt.string ppf "expr"

type call_summary = {
  cs_callee : string;
  cs_args : arg_summary array;
  cs_index : int;  (** textual call-site index within the caller *)
}

type proc_summary = {
  ps_name : string;
  ps_formals : string list;
  ps_imod : VrefSet.t;
      (** formals/globals immediately (directly) assigned in the body *)
  ps_iref : VrefSet.t;  (** formals/globals immediately read in the body *)
  ps_calls : call_summary list;
}

type t = {
  prog : Ast.program;
  table : (string, proc_summary) Hashtbl.t;
}

let classify_arg_with ~classify (e : Ast.expr) : arg_summary =
  match e with
  | Ast.Const v -> Alit v
  | Ast.Var x -> (
      match classify x with
      | Sema.Formal i -> Aformal i
      | Sema.Global -> Aglobal x
      | Sema.Local -> Alocal x)
  | Ast.Unary _ | Ast.Binary _ -> Aexpr

let classify_arg ~globals ~formals (e : Ast.expr) : arg_summary =
  classify_arg_with ~classify:(Sema.classify ~globals ~formals) e

let summarize_proc (prog : Ast.program) (p : Ast.proc) : proc_summary =
  let globals = prog.Ast.globals and formals = p.Ast.formals in
  (* One hashed classifier per procedure: collection is O(body), not
     O(body × globals), which matters on the 10⁴–10⁶-procedure corpora. *)
  let classify = Sema.classifier ~globals ~formals in
  let to_vref x =
    match classify x with
    | Sema.Formal i -> Some (Vformal i)
    | Sema.Global -> Some (Vglobal x)
    | Sema.Local -> None
  in
  let imod =
    Ast.assigned_vars p |> List.filter_map to_vref |> VrefSet.of_list
  in
  let iref = Ast.read_vars p |> List.filter_map to_vref |> VrefSet.of_list in
  let calls =
    List.mapi
      (fun cs_index (callee, args, _pos) ->
        {
          cs_callee = callee;
          cs_args =
            Array.of_list (List.map (classify_arg_with ~classify) args);
          cs_index;
        })
      (Ast.call_sites p)
  in
  { ps_name = p.Ast.pname; ps_formals = formals; ps_imod = imod;
    ps_iref = iref; ps_calls = calls }

(** Collect summaries for every procedure of the program. *)
let collect (prog : Ast.program) : t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace table p.Ast.pname (summarize_proc prog p))
    prog.Ast.procs;
  { prog; table }

let find t name : proc_summary =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Summary.find: unknown procedure %s" name)
