(** Flow-sensitive interprocedural USE (paper §3.2): formals and globals
    possibly referenced before defined, computed in one reverse topological
    traversal of the PCG with REF information substituted on back edges —
    the same one-pass discipline as the flow-sensitive ICP. *)

open Fsicp_cfg
open Fsicp_prog
open Summary

type t

(** [compute procs modref pcg]; [procs] maps every reachable procedure to
    its lowered body, densely indexed by the PCG's {!Prog.Proc.id}s. *)
val compute :
  Ir.proc Prog.Proc.Tbl.t -> Modref.t -> Fsicp_callgraph.Callgraph.t -> t

val get : t -> string -> VrefSet.t
val global_used : t -> string -> string -> bool
val formal_used : t -> string -> int -> bool
