(** Interprocedural MOD and REF (Figure 2 step 4): Cooper–Kennedy-style
    flow-insensitive PCG fixpoint binding callee sets through call-site
    argument lists, closed under reference-parameter aliases. *)

open Summary

type t

val compute : Summary.t -> Alias.t -> Fsicp_callgraph.Callgraph.t -> t

val gmod_of : t -> string -> VrefSet.t
val gref_of : t -> string -> VrefSet.t

(** May the procedure (or anything it calls) modify its [i]-th formal's
    location? *)
val formal_modified : t -> string -> int -> bool

val global_modified_in : t -> string -> string -> bool
val global_referenced_in : t -> string -> string -> bool

(** Globals modified anywhere reachable from [main] — the ones Figure 3's
    flow-insensitive method removes from the block-data candidates. *)
val globals_modified_anywhere : t -> main:string -> string list

(** SSA oracle: variables (caller-side) a call may define, given the
    by-reference actuals in argument order. *)
val call_defs :
  t -> callee:string -> byref_args:Fsicp_cfg.Ir.var option array ->
  Fsicp_cfg.Ir.var list

(** Globals whose value at a call to [callee] the FS method records. *)
val call_global_refs : t -> callee:string -> Fsicp_cfg.Ir.var list

val pp : t Fmt.t
