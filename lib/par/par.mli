(** Domain-based parallel execution primitives: a work-stealing-free worker
    pool over an atomic index, and a dependency-wavefront scheduler for
    DAG-shaped work such as the PCG forward traversal.

    Every combinator takes an explicit [jobs] count.  [jobs <= 1] runs the
    work sequentially in the calling domain, in the canonical order — the
    deterministic reference path the parallel paths must reproduce.  All
    result-producing combinators are deterministic by construction: results
    land in slots keyed by input index, never by completion order. *)

(** Strict job-count parsing (shared by [FSICP_JOBS] and the CLI's
    [--jobs]): the trimmed string must be an integer ≥ 1.  Anything else —
    zero, negatives, garbage — is an [Error] with a message naming the
    offending value; there is deliberately no silent fallback. *)
val parse_jobs : string -> (int, string) result

(** Number of workers to use by default: the [FSICP_JOBS] environment
    variable when set, otherwise [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [FSICP_JOBS] is set but not a positive
    integer (see {!parse_jobs}) *)
val default_jobs : unit -> int

(** [parallel_init ~jobs n f] is [Array.init n f] computed by up to [jobs]
    domains.  [f] must be safe to call concurrently on distinct indices.
    The first exception raised by any [f i] is re-raised after all workers
    stop.  [label] wraps each [f i] in a detached {!Fsicp_trace.Trace}
    span named [label] carrying the index, on the sequential fast path
    too. *)
val parallel_init : ?label:string -> jobs:int -> int -> (int -> 'a) -> 'a array

(** [parallel_iter ~jobs n f] is [for i = 0 to n-1 do f i done] with the
    same contract as {!parallel_init}. *)
val parallel_iter : jobs:int -> int -> (int -> unit) -> unit

(** [map_list ~jobs f l] is [List.map f l]; list order is preserved. *)
val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [both ~jobs f g] runs the two thunks, concurrently when [jobs > 1]. *)
val both : jobs:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** Per-domain epoch-stamped scratch arena for flat analysis kernels.

    One arena lives in each domain's local storage ({!Domain.DLS}), so a
    kernel running under {!wavefront} gets private scratch with no locking
    and near-zero allocation once the arena has grown to the largest
    procedure it has seen.  The arena hands out two kinds of scratch:

    - {b mark regions} — ranges of an int-stamp array used as bitsets.  A
      slot is "set" iff its stamp equals the arena's current epoch, so
      {!reset} clears every region of every size in O(1) by bumping the
      epoch instead of zeroing memory.
    - {b int stacks} — two growable LIFO worklists ([stack_a]/[stack_b])
      whose backing arrays persist across runs.

    Protocol: call [reset], then [reserve_marks] for every region the run
    needs {e before} marking anything (growth re-zeroes the stamp array but
    preserves marks already set this epoch), then run the kernel.  Arenas
    are single-kernel scratch: results that outlive the run must be copied
    out (or allocated normally). *)
module Arena : sig
  type t
  type stack

  val get : unit -> t
  (** The calling domain's arena. *)

  val reset : t -> unit
  (** O(1) wipe: bumps the epoch and releases all mark regions and stacks. *)

  val reserve_marks : t -> int -> int
  (** [reserve_marks t n] returns the base index of a fresh all-clear region
      of [n] mark slots; address slot [i] of the region as [base + i]. *)

  val mark : t -> int -> unit
  val unmark : t -> int -> unit
  val marked : t -> int -> bool

  val stack_a : t -> stack
  val stack_b : t -> stack
  (** Two independent reusable worklists, emptied by {!reset}. *)

  val push : stack -> int -> unit
  val is_empty : stack -> bool

  val pop : stack -> int
  (** Undefined on an empty stack; guard with {!is_empty}. *)
end

(** [wavefront ~jobs ~order ~deps ~dependents process] runs [process i]
    once for every node [i] of a dependency DAG, dispatching a node as soon
    as all of its [deps] have been processed.

    - [order] lists all nodes in a topological order of [deps]; with
      [jobs <= 1] the nodes are processed sequentially in exactly this
      order.
    - [deps.(i)] are the nodes that must complete before [i] starts;
      [dependents.(i)] is the inverse relation.  Both must mention each
      edge exactly once (no duplicates).
    - Mutual exclusion: [process i] may freely read anything written by
      [process d] for [d] a (transitive) dependency — the scheduler's
      ready-count bookkeeping provides the happens-before edge — but nodes
      with no dependency relation run concurrently.

    The first exception raised by any [process i] aborts the wavefront and
    is re-raised after all workers stop. *)
val wavefront :
  jobs:int ->
  order:int array ->
  deps:int list array ->
  dependents:int list array ->
  (int -> unit) ->
  unit

(** [wavefront_sharded ~jobs ~owners ~order ~deps ~dependents process] is
    {!wavefront} with a partitioned frontier, built for 10⁴–10⁶-node DAGs
    where a single shared ready queue serialises dispatch:

    - [owners.(i)] assigns node [i] to one of [jobs] domains (values in
      [0, jobs)).  Each domain keeps the nodes it owns on a private LIFO
      stack — pushing and popping ready work takes no lock at all — so an
      owner that is also a node's only dependent runs caller and callee
      back-to-back with warm caches.  Callers pick owners from contiguous
      dense-id regions (see [Fs_icp.shard_regions]) so a shard is a
      structurally related slice of the graph, not a random sample.
    - A node completed by domain [d] whose dependent belongs to domain
      [o <> d] is handed off through [o]'s bounded inbox (a
      mutex-protected ring).  When the inbox is full the pusher drains its
      own inbox and retries, which makes cycles of mutually full inboxes
      impossible to sustain; handoff traffic is counted by the
      [par.shard.handoffs] trace counter.
    - Progress is observable while the run is in flight: completions are
      flushed in batches to [par.shard.solved], and the high-water mark of
      the ready frontier is recorded in [par.shard.frontier_peak] (all
      [~stable:false] — scheduling artefacts, excluded from the canonical
      trace).

    Determinism, ordering and error contracts are exactly those of
    {!wavefront}: any [owners] assignment yields the same set of [process]
    calls with the same happens-before edges, so a caller that assembles
    results canonically (by node index) is bit-identical across [jobs] and
    [owners].  [jobs <= 1] ignores [owners] and runs sequentially in
    [order]. *)
val wavefront_sharded :
  jobs:int ->
  owners:int array ->
  order:int array ->
  deps:int list array ->
  dependents:int list array ->
  (int -> unit) ->
  unit
