(** Domain-based parallel execution primitives (see the interface for the
    determinism and safety contracts).

    The pool is deliberately minimal: [k-1] spawned domains plus the calling
    domain all pull indices from one atomic counter, so there is no work
    queue to balance and no per-task allocation.  The wavefront scheduler
    keeps its pending-count bookkeeping under one mutex taken only at node
    completion — never inside [process] — so the hot path (the per-node
    analysis itself) runs lock-free. *)

module Trace = Fsicp_trace.Trace

(* [par.tasks] counts every work item handed to a combinator, sequential
   fast paths included, so its total is invariant in [jobs].  Pool spawns
   and idle waits are scheduling artefacts: pools are deterministic at a
   fixed [jobs] but vary across counts, and idle waits are inherently
   racy, hence [~stable:false]. *)
let c_tasks = Trace.counter "par.tasks"
let c_pools = Trace.counter ~stable:false "par.pools"
let c_idle = Trace.counter ~stable:false "par.idle_waits"

(* Sharded-wavefront progress and traffic.  All three are scheduling
   artefacts (they depend on which domain reached which node first), hence
   [~stable:false]; [par.shard.solved] is flushed in batches during the
   run so a concurrent reader — the serve daemon's stats endpoint — sees
   live progress on a long corpus, not just the final total. *)
let c_shard_solved = Trace.counter ~stable:false "par.shard.solved"
let c_shard_handoffs = Trace.counter ~stable:false "par.shard.handoffs"
let c_shard_frontier = Trace.counter ~stable:false "par.shard.frontier_peak"

(* Strict job-count parsing, shared by the FSICP_JOBS environment variable
   and the CLI's --jobs flag.  A malformed count is an error, never a
   silent fallback: a benchmark or CI run that typos FSICP_JOBS=fuor must
   not quietly measure all-cores behaviour. *)
let parse_jobs (s : string) : (int, string) result =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Ok j
  | Some j -> Error (Printf.sprintf "jobs must be a positive integer, got %d" j)
  | None ->
      Error (Printf.sprintf "jobs must be a positive integer, got %S" s)

let default_jobs () =
  match Sys.getenv_opt "FSICP_JOBS" with
  | Some s -> (
      match parse_jobs s with
      | Ok j -> j
      | Error msg -> invalid_arg (Printf.sprintf "FSICP_JOBS: %s" msg))
  | None -> Domain.recommended_domain_count ()

(* Run [worker] on [k-1] fresh domains and the current one, join, and
   re-raise the first exception any worker recorded. *)
let run_pool k (err : exn option Atomic.t) worker =
  Trace.incr c_pools;
  Trace.span ~timing:true "par:pool" (fun () ->
      let doms = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join doms);
  match Atomic.get err with Some e -> raise e | None -> ()

let record_error err e = ignore (Atomic.compare_and_set err None (Some e))

let parallel_init ?label ~jobs n f =
  let f =
    match label with
    | None -> f
    | Some name ->
        fun i ->
          Trace.span ~detach:true
            ~args:(fun () -> [ ("idx", string_of_int i) ])
            name
            (fun () -> f i)
  in
  Trace.add c_tasks n;
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get err <> None then continue := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e -> record_error err e
      done
    in
    run_pool (min jobs n) err worker;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_iter ~jobs n f =
  if n > 0 then
    if jobs <= 1 || n = 1 then begin
      Trace.add c_tasks n;
      for i = 0 to n - 1 do
        f i
      done
    end
    else ignore (parallel_init ~jobs n f)

let map_list ~jobs f l =
  match l with
  | [] -> []
  | [ x ] ->
      Trace.add c_tasks 1;
      [ f x ]
  | _ ->
      let a = Array.of_list l in
      Array.to_list (parallel_init ~jobs (Array.length a) (fun i -> f a.(i)))

let both ~jobs f g =
  Trace.add c_tasks 2;
  if jobs <= 1 then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let d = Domain.spawn g in
    let a = match f () with v -> Ok v | exception e -> Error e in
    (* Join unconditionally so the domain never leaks; [Domain.join]
       re-raises [g]'s own exception if it failed. *)
    let b = match Domain.join d with v -> Ok v | exception e -> Error e in
    match (a, b) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end

module Arena = struct
  type stack = { mutable sbuf : int array; mutable slen : int }

  type t = {
    mutable epoch : int;
    mutable stamps : int array;
    mutable reserved : int;
    sa : stack;
    sb : stack;
  }

  let create () =
    {
      epoch = 0;
      stamps = Array.make 1024 0;
      reserved = 0;
      sa = { sbuf = Array.make 256 0; slen = 0 };
      sb = { sbuf = Array.make 256 0; slen = 0 };
    }

  let key = Domain.DLS.new_key create
  let get () = Domain.DLS.get key

  (* O(1): slots marked under earlier epochs become unmarked because their
     stamp no longer equals [epoch].  Stamps start at 0 and [epoch] starts
     at 1 after the first reset, so a fresh (or freshly grown) stamp array
     reads as all-clear. *)
  let reset t =
    t.epoch <- t.epoch + 1;
    t.reserved <- 0;
    t.sa.slen <- 0;
    t.sb.slen <- 0

  let reserve_marks t n =
    let base = t.reserved in
    t.reserved <- base + n;
    let cap = Array.length t.stamps in
    if t.reserved > cap then begin
      let stamps = Array.make (max t.reserved (2 * cap)) 0 in
      (* Preserve marks already set this epoch in earlier regions. *)
      Array.blit t.stamps 0 stamps 0 cap;
      t.stamps <- stamps
    end;
    base

  let[@inline] mark t i = t.stamps.(i) <- t.epoch
  let[@inline] unmark t i = t.stamps.(i) <- 0
  let[@inline] marked t i = t.stamps.(i) = t.epoch
  let stack_a t = t.sa
  let stack_b t = t.sb

  let[@inline] push s x =
    let cap = Array.length s.sbuf in
    if s.slen = cap then begin
      let buf = Array.make (2 * cap) 0 in
      Array.blit s.sbuf 0 buf 0 cap;
      s.sbuf <- buf
    end;
    s.sbuf.(s.slen) <- x;
    s.slen <- s.slen + 1

  let[@inline] is_empty s = s.slen = 0

  let[@inline] pop s =
    s.slen <- s.slen - 1;
    s.sbuf.(s.slen)
end

(* -- Sharded wavefront -------------------------------------------------- *)

(* A bounded single-consumer inbox: the owning domain drains it, any
   domain pushes into it.  Fixed capacity keeps the cross-shard traffic
   memory-bounded on huge corpora; see [push_remote] for why a full inbox
   can never deadlock the system. *)
type inbox = {
  ibuf : int array;
  mutable ihead : int;  (* next slot to pop *)
  mutable ilen : int;
  imutex : Mutex.t;
  inonempty : Condition.t;
}

let inbox_capacity = 1024

let wavefront_sharded ~jobs ~(owners : int array) ~order ~deps ~dependents
    process =
  let n = Array.length order in
  Trace.add c_tasks n;
  if n = 0 then ()
  else if jobs <= 1 || n = 1 then Array.iter process order
  else begin
    let jobs = min jobs n in
    let pending =
      Array.map (fun ds -> Atomic.make (List.length ds)) deps
    in
    let remaining = Atomic.make n in
    let err = Atomic.make None in
    let inboxes =
      Array.init jobs (fun _ ->
          {
            ibuf = Array.make inbox_capacity 0;
            ihead = 0;
            ilen = 0;
            imutex = Mutex.create ();
            inonempty = Condition.create ();
          })
    in
    (* Private per-domain ready stacks; only the owning domain touches its
       stack, so the per-node hot path has no shared frontier lock at all. *)
    let stacks =
      Array.init jobs (fun _ -> { Arena.sbuf = Array.make 256 0; slen = 0 })
    in
    let frontier = Atomic.make 0 and frontier_peak = Atomic.make 0 in
    let handoffs = Atomic.make 0 in
    let note_enqueued () =
      let cur = 1 + Atomic.fetch_and_add frontier 1 in
      let rec bump () =
        let p = Atomic.get frontier_peak in
        if cur > p && not (Atomic.compare_and_set frontier_peak p cur) then
          bump ()
      in
      bump ()
    in
    (* Wake every domain: run end (remaining = 0) and errors must unblock
       workers asleep on their own inbox. *)
    let wake_all () =
      Array.iter
        (fun q ->
          Mutex.lock q.imutex;
          Condition.broadcast q.inonempty;
          Mutex.unlock q.imutex)
        inboxes
    in
    (* Move everything queued in [d]'s inbox onto [d]'s private stack.
       Never blocks; returns whether anything arrived. *)
    let drain_inbox d =
      let q = inboxes.(d) in
      Mutex.lock q.imutex;
      let got = q.ilen > 0 in
      while q.ilen > 0 do
        Arena.push stacks.(d) q.ibuf.(q.ihead);
        q.ihead <- (q.ihead + 1) mod inbox_capacity;
        q.ilen <- q.ilen - 1
      done;
      Mutex.unlock q.imutex;
      got
    in
    (* Hand a ready node to its owner.  When the owner's inbox is full the
       pusher drains its *own* inbox and retries: in any cycle of domains
       blocked on mutually full inboxes, every participant's drain frees
       its counterpart's push, so the cycle always dissolves — the classic
       bounded-handoff deadlock is structurally impossible. *)
    let rec push_remote d o j =
      let q = inboxes.(o) in
      Mutex.lock q.imutex;
      if q.ilen < inbox_capacity then begin
        q.ibuf.((q.ihead + q.ilen) mod inbox_capacity) <- j;
        q.ilen <- q.ilen + 1;
        Condition.signal q.inonempty;
        Mutex.unlock q.imutex
      end
      else begin
        Mutex.unlock q.imutex;
        ignore (drain_inbox d);
        if Atomic.get err = None then push_remote d o j
      end
    in
    let enqueue d j =
      note_enqueued ();
      let o = owners.(j) in
      if o = d then Arena.push stacks.(d) j
      else begin
        Atomic.incr handoffs;
        push_remote d o j
      end
    in
    (* Seed: each domain claims its own roots, scanning [order] once so
       low-index roots sit on top of no one and dispatch first.  Roots are
       the *statically* dependency-free nodes: testing the mutable pending
       counter instead would race with completions already running on other
       domains (a node whose count just reached zero is enqueued by its
       last dependency's completer AND seen as zero by its owner's scan —
       a double enqueue that underflows [remaining]). *)
    let seed d =
      Array.iter
        (fun i ->
          if owners.(i) = d && deps.(i) = [] then begin
            note_enqueued ();
            Arena.push stacks.(d) i
          end)
        order
    in
    let solved_flush = 256 in
    let domain_main d =
      seed d;
      let solved_batch = ref 0 in
      let continue = ref true in
      while !continue do
        (* Opportunistic drain: keeps this domain's inbox short even while
           its private stack stays busy, so remote pushers rarely stall.
           The unsynchronised length read is a heuristic only. *)
        if inboxes.(d).ilen > 0 then ignore (drain_inbox d);
        if Atomic.get err <> None then continue := false
        else if not (Arena.is_empty stacks.(d)) then begin
          let i = Arena.pop stacks.(d) in
          ignore (Atomic.fetch_and_add frontier (-1));
          (* The whole unit — node body and completion bookkeeping — sits
             under one handler: an exception escaping the completion would
             otherwise kill this domain silently and leave the others
             asleep forever. *)
          try
            process i;
            incr solved_batch;
            if !solved_batch >= solved_flush then begin
              Trace.add c_shard_solved !solved_batch;
              solved_batch := 0
            end;
            List.iter
              (fun j ->
                if Atomic.fetch_and_add pending.(j) (-1) = 1 then enqueue d j)
              dependents.(i);
            if Atomic.fetch_and_add remaining (-1) = 1 then wake_all ()
          with e ->
            record_error err e;
            wake_all ();
            continue := false
        end
        else begin
          (* Private stack empty: sleep on the inbox until a handoff, the
             end of the run, or an error arrives. *)
          let q = inboxes.(d) in
          Mutex.lock q.imutex;
          if
            q.ilen = 0
            && Atomic.get remaining > 0
            && Atomic.get err = None
          then
            Trace.span ~timing:true "par:idle" (fun () ->
                while
                  q.ilen = 0
                  && Atomic.get remaining > 0
                  && Atomic.get err = None
                do
                  Trace.incr c_idle;
                  Condition.wait q.inonempty q.imutex
                done);
          Mutex.unlock q.imutex;
          if Atomic.get remaining = 0 || Atomic.get err <> None then
            continue := false
        end
      done;
      if !solved_batch > 0 then Trace.add c_shard_solved !solved_batch
    in
    (* Explicit per-index domains: each worker needs its identity [d] for
       stack and inbox affinity, which the anonymous [run_pool] counter
       cannot provide. *)
    Trace.incr c_pools;
    Trace.span ~timing:true "par:pool" (fun () ->
        let doms =
          Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> domain_main (k + 1)))
        in
        domain_main 0;
        Array.iter Domain.join doms);
    Trace.add c_shard_handoffs (Atomic.get handoffs);
    Trace.add c_shard_frontier (Atomic.get frontier_peak);
    match Atomic.get err with Some e -> raise e | None -> ()
  end

let wavefront ~jobs ~order ~deps ~dependents process =
  let n = Array.length order in
  Trace.add c_tasks n;
  if n = 0 then ()
  else if jobs <= 1 || n = 1 then Array.iter process order
  else begin
    let pending = Array.map List.length deps in
    let mutex = Mutex.create () in
    let nonempty = Condition.create () in
    let ready = Queue.create () in
    let remaining = ref n in
    let err = Atomic.make None in
    (* Seed the roots in [order] order so low-index nodes dispatch first. *)
    Array.iter (fun i -> if pending.(i) = 0 then Queue.add i ready) order;
    let worker () =
      let continue = ref true in
      while !continue do
        Mutex.lock mutex;
        if Queue.is_empty ready && !remaining > 0 && Atomic.get err = None then
          (* Timing-only span: it shows where the wavefront stalls in a
             wall-clock trace, and is dropped from the canonical one. *)
          Trace.span ~timing:true "par:idle" (fun () ->
              while
                Queue.is_empty ready && !remaining > 0 && Atomic.get err = None
              do
                Trace.incr c_idle;
                Condition.wait nonempty mutex
              done);
        if !remaining = 0 || Atomic.get err <> None then begin
          Mutex.unlock mutex;
          continue := false
        end
        else begin
          let i = Queue.take ready in
          Mutex.unlock mutex;
          match process i with
          | () ->
              Mutex.lock mutex;
              decr remaining;
              List.iter
                (fun d ->
                  pending.(d) <- pending.(d) - 1;
                  if pending.(d) = 0 then Queue.add d ready)
                dependents.(i);
              (* Completion can unblock several nodes (or end the run for
                 every waiter), so wake everyone. *)
              Condition.broadcast nonempty;
              Mutex.unlock mutex
          | exception e ->
              record_error err e;
              Mutex.lock mutex;
              Condition.broadcast nonempty;
              Mutex.unlock mutex;
              continue := false
        end
      done
    in
    run_pool (min jobs n) err worker
  end
