(** Domain-based parallel execution primitives (see the interface for the
    determinism and safety contracts).

    The pool is deliberately minimal: [k-1] spawned domains plus the calling
    domain all pull indices from one atomic counter, so there is no work
    queue to balance and no per-task allocation.  The wavefront scheduler
    keeps its pending-count bookkeeping under one mutex taken only at node
    completion — never inside [process] — so the hot path (the per-node
    analysis itself) runs lock-free. *)

module Trace = Fsicp_trace.Trace

(* [par.tasks] counts every work item handed to a combinator, sequential
   fast paths included, so its total is invariant in [jobs].  Pool spawns
   and idle waits are scheduling artefacts: pools are deterministic at a
   fixed [jobs] but vary across counts, and idle waits are inherently
   racy, hence [~stable:false]. *)
let c_tasks = Trace.counter "par.tasks"
let c_pools = Trace.counter ~stable:false "par.pools"
let c_idle = Trace.counter ~stable:false "par.idle_waits"

(* Strict job-count parsing, shared by the FSICP_JOBS environment variable
   and the CLI's --jobs flag.  A malformed count is an error, never a
   silent fallback: a benchmark or CI run that typos FSICP_JOBS=fuor must
   not quietly measure all-cores behaviour. *)
let parse_jobs (s : string) : (int, string) result =
  match int_of_string_opt (String.trim s) with
  | Some j when j >= 1 -> Ok j
  | Some j -> Error (Printf.sprintf "jobs must be a positive integer, got %d" j)
  | None ->
      Error (Printf.sprintf "jobs must be a positive integer, got %S" s)

let default_jobs () =
  match Sys.getenv_opt "FSICP_JOBS" with
  | Some s -> (
      match parse_jobs s with
      | Ok j -> j
      | Error msg -> invalid_arg (Printf.sprintf "FSICP_JOBS: %s" msg))
  | None -> Domain.recommended_domain_count ()

(* Run [worker] on [k-1] fresh domains and the current one, join, and
   re-raise the first exception any worker recorded. *)
let run_pool k (err : exn option Atomic.t) worker =
  Trace.incr c_pools;
  Trace.span ~timing:true "par:pool" (fun () ->
      let doms = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join doms);
  match Atomic.get err with Some e -> raise e | None -> ()

let record_error err e = ignore (Atomic.compare_and_set err None (Some e))

let parallel_init ?label ~jobs n f =
  let f =
    match label with
    | None -> f
    | Some name ->
        fun i ->
          Trace.span ~detach:true
            ~args:(fun () -> [ ("idx", string_of_int i) ])
            name
            (fun () -> f i)
  in
  Trace.add c_tasks n;
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get err <> None then continue := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e -> record_error err e
      done
    in
    run_pool (min jobs n) err worker;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_iter ~jobs n f =
  if n > 0 then
    if jobs <= 1 || n = 1 then begin
      Trace.add c_tasks n;
      for i = 0 to n - 1 do
        f i
      done
    end
    else ignore (parallel_init ~jobs n f)

let map_list ~jobs f l =
  match l with
  | [] -> []
  | [ x ] ->
      Trace.add c_tasks 1;
      [ f x ]
  | _ ->
      let a = Array.of_list l in
      Array.to_list (parallel_init ~jobs (Array.length a) (fun i -> f a.(i)))

let both ~jobs f g =
  Trace.add c_tasks 2;
  if jobs <= 1 then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let d = Domain.spawn g in
    let a = match f () with v -> Ok v | exception e -> Error e in
    (* Join unconditionally so the domain never leaks; [Domain.join]
       re-raises [g]'s own exception if it failed. *)
    let b = match Domain.join d with v -> Ok v | exception e -> Error e in
    match (a, b) with
    | Ok a, Ok b -> (a, b)
    | Error e, _ | _, Error e -> raise e
  end

module Arena = struct
  type stack = { mutable sbuf : int array; mutable slen : int }

  type t = {
    mutable epoch : int;
    mutable stamps : int array;
    mutable reserved : int;
    sa : stack;
    sb : stack;
  }

  let create () =
    {
      epoch = 0;
      stamps = Array.make 1024 0;
      reserved = 0;
      sa = { sbuf = Array.make 256 0; slen = 0 };
      sb = { sbuf = Array.make 256 0; slen = 0 };
    }

  let key = Domain.DLS.new_key create
  let get () = Domain.DLS.get key

  (* O(1): slots marked under earlier epochs become unmarked because their
     stamp no longer equals [epoch].  Stamps start at 0 and [epoch] starts
     at 1 after the first reset, so a fresh (or freshly grown) stamp array
     reads as all-clear. *)
  let reset t =
    t.epoch <- t.epoch + 1;
    t.reserved <- 0;
    t.sa.slen <- 0;
    t.sb.slen <- 0

  let reserve_marks t n =
    let base = t.reserved in
    t.reserved <- base + n;
    let cap = Array.length t.stamps in
    if t.reserved > cap then begin
      let stamps = Array.make (max t.reserved (2 * cap)) 0 in
      (* Preserve marks already set this epoch in earlier regions. *)
      Array.blit t.stamps 0 stamps 0 cap;
      t.stamps <- stamps
    end;
    base

  let[@inline] mark t i = t.stamps.(i) <- t.epoch
  let[@inline] unmark t i = t.stamps.(i) <- 0
  let[@inline] marked t i = t.stamps.(i) = t.epoch
  let stack_a t = t.sa
  let stack_b t = t.sb

  let[@inline] push s x =
    let cap = Array.length s.sbuf in
    if s.slen = cap then begin
      let buf = Array.make (2 * cap) 0 in
      Array.blit s.sbuf 0 buf 0 cap;
      s.sbuf <- buf
    end;
    s.sbuf.(s.slen) <- x;
    s.slen <- s.slen + 1

  let[@inline] is_empty s = s.slen = 0

  let[@inline] pop s =
    s.slen <- s.slen - 1;
    s.sbuf.(s.slen)
end

let wavefront ~jobs ~order ~deps ~dependents process =
  let n = Array.length order in
  Trace.add c_tasks n;
  if n = 0 then ()
  else if jobs <= 1 || n = 1 then Array.iter process order
  else begin
    let pending = Array.map List.length deps in
    let mutex = Mutex.create () in
    let nonempty = Condition.create () in
    let ready = Queue.create () in
    let remaining = ref n in
    let err = Atomic.make None in
    (* Seed the roots in [order] order so low-index nodes dispatch first. *)
    Array.iter (fun i -> if pending.(i) = 0 then Queue.add i ready) order;
    let worker () =
      let continue = ref true in
      while !continue do
        Mutex.lock mutex;
        if Queue.is_empty ready && !remaining > 0 && Atomic.get err = None then
          (* Timing-only span: it shows where the wavefront stalls in a
             wall-clock trace, and is dropped from the canonical one. *)
          Trace.span ~timing:true "par:idle" (fun () ->
              while
                Queue.is_empty ready && !remaining > 0 && Atomic.get err = None
              do
                Trace.incr c_idle;
                Condition.wait nonempty mutex
              done);
        if !remaining = 0 || Atomic.get err <> None then begin
          Mutex.unlock mutex;
          continue := false
        end
        else begin
          let i = Queue.take ready in
          Mutex.unlock mutex;
          match process i with
          | () ->
              Mutex.lock mutex;
              decr remaining;
              List.iter
                (fun d ->
                  pending.(d) <- pending.(d) - 1;
                  if pending.(d) = 0 then Queue.add d ready)
                dependents.(i);
              (* Completion can unblock several nodes (or end the run for
                 every waiter), so wake everyone. *)
              Condition.broadcast nonempty;
              Mutex.unlock mutex
          | exception e ->
              record_error err e;
              Mutex.lock mutex;
              Condition.broadcast nonempty;
              Mutex.unlock mutex;
              continue := false
        end
      done
    in
    run_pool (min jobs n) err worker
  end
