(** Implementation of the program database.  See the interface for the
    design contract; the notes here are about the concurrency model.

    [Proc] is trivially safe: a database is built once (single-domain) by
    [Callgraph.build] and read-only afterwards.

    [Var] is a process-global interner shared by all worker domains: the
    parallel lowering/SSA phases intern temporaries concurrently.  The
    name->id table is guarded by a mutex; the reverse id->name array is
    published through an [Atomic.t] so that [name] — called from
    pretty-printers and sort keys on other domains — needs no lock.  A
    reader can only hold an id that some [intern] call returned, and the
    array snapshot it reads was published at or after that point, so the
    slot is always initialised. *)

module Proc = struct
  type id = int

  let to_int i = i
  let equal : id -> id -> bool = Int.equal
  let compare : id -> id -> int = Int.compare
  let hash (i : id) = i
  let pp ppf (i : id) = Fmt.pf ppf "p%d" i

  module Tbl = struct
    type 'a t = 'a array

    let make n default = Array.make n default
    let init n f = Array.init n f
    let length = Array.length
    let get (t : 'a t) (i : id) = t.(i)
    let set (t : 'a t) (i : id) v = t.(i) <- v
    let iteri = Array.iteri
    let fold f t acc =
      let acc = ref acc in
      Array.iteri (fun i v -> acc := f i v !acc) t;
      !acc

    let map = Array.map
  end
end

module Var = struct
  type id = int

  let lock = Mutex.create ()
  let ids : (string, int) Hashtbl.t = Hashtbl.create 1024
  let names : string array Atomic.t = Atomic.make (Array.make 1024 "")
  let next = ref 0

  let intern s =
    Mutex.lock lock;
    let id =
      match Hashtbl.find_opt ids s with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          let arr = Atomic.get names in
          let arr =
            if i < Array.length arr then arr
            else begin
              let bigger = Array.make (2 * Array.length arr) "" in
              Array.blit arr 0 bigger 0 (Array.length arr);
              bigger
            end
          in
          arr.(i) <- s;
          (* Publish after the slot is written: readers that obtained [i]
             observe a snapshot no older than this one. *)
          Atomic.set names arr;
          Hashtbl.add ids s i;
          i
    in
    Mutex.unlock lock;
    id

  let name (i : id) = (Atomic.get names).(i)
  let to_int i = i
  let equal : id -> id -> bool = Int.equal
  let compare : id -> id -> int = Int.compare
  let hash (i : id) = i
  let pp ppf i = Fmt.string ppf (name i)
end

module Valpool = struct
  (* Same publication discipline as [Var]: mutex-guarded key table, reverse
     array published through an [Atomic.t] so [get] is lock-free.

     Keys canonicalise the [Value.equal] equivalence classes that have more
     than one machine representation: every nan collapses to one slot, and
     [-0.0]/[0.0] collapse to one slot ([Float.equal] identifies both
     pairs).  The first value interned for a class is the one stored, so a
     pooled index round-trips to a [Value.equal]-equivalent value and equal
     indices mean [Value.equal] values. *)
  type key = KInt of int | KReal of int64

  let key_of (v : Fsicp_lang.Value.t) =
    match v with
    | Int n -> KInt n
    | Real r ->
        if Float.is_nan r then KReal 0x7ff8000000000001L
        else if r = 0.0 then KReal 0L
        else KReal (Int64.bits_of_float r)

  let lock = Mutex.create ()
  let ids : (key, int) Hashtbl.t = Hashtbl.create 256

  let values : Fsicp_lang.Value.t array Atomic.t =
    Atomic.make (Array.make 256 (Fsicp_lang.Value.Int 0))

  let next = ref 0

  let intern (v : Fsicp_lang.Value.t) =
    let k = key_of v in
    Mutex.lock lock;
    let id =
      match Hashtbl.find_opt ids k with
      | Some i -> i
      | None ->
          let i = !next in
          incr next;
          let arr = Atomic.get values in
          let arr =
            if i < Array.length arr then arr
            else begin
              let bigger =
                Array.make (2 * Array.length arr) (Fsicp_lang.Value.Int 0)
              in
              Array.blit arr 0 bigger 0 (Array.length arr);
              bigger
            end
          in
          arr.(i) <- v;
          Atomic.set values arr;
          Hashtbl.add ids k i;
          i
    in
    Mutex.unlock lock;
    id

  let get (i : int) = (Atomic.get values).(i)
end

module Bits = struct
  type t = { words : Bytes.t; n : int }

  let create n = { words = Bytes.make ((n + 7) / 8) '\000'; n }
  let length t = t.n

  let set t i =
    let b = Char.code (Bytes.get t.words (i lsr 3)) in
    Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

  let mem t i =
    Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let count t =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if mem t i then incr c
    done;
    !c
end

type t = { names : string array; ids : (string, int) Hashtbl.t }

let of_names names =
  let names = Array.copy names in
  let ids = Hashtbl.create (2 * Array.length names) in
  Array.iteri
    (fun i n ->
      if Hashtbl.mem ids n then
        invalid_arg (Printf.sprintf "Prog.of_names: duplicate procedure %S" n);
      Hashtbl.add ids n i)
    names;
  { names; ids }

let n_procs t = Array.length t.names
let proc_id t name : Proc.id option = Hashtbl.find_opt t.ids name

let proc_id_exn t name : Proc.id =
  match Hashtbl.find_opt t.ids name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Prog.proc_id_exn: %S" name)

let proc_name t (i : Proc.id) = t.names.(i)
let mem t name = Hashtbl.mem t.ids name
let procs t : Proc.id array = Array.init (n_procs t) Fun.id
let tbl t default = Proc.Tbl.make (n_procs t) default
let tbl_init t f = Proc.Tbl.init (n_procs t) f
