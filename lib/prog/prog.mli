(** The program database: interned symbols and dense typed-ID storage.

    Every analysis layer used to key its state on raw [string] procedure and
    variable names — hundreds of string-keyed hashtables whose hot loops
    spend their time hashing and comparing strings.  This module gives each
    program a compact integer universe instead:

    - {!Proc.id} — the identity of a reachable procedure, minted once per
      program by {!of_names} (in practice: by [Callgraph.build], in reverse
      postorder, so the id {e is} the topological position).  Per-procedure
      analysis state lives in dense {!Proc.Tbl} arrays indexed by these ids.
    - {!Var.id} — a process-global interned variable name.  Interning is
      thread-safe (the lowering and SSA phases run on multiple domains) and
      ids are used for identity — [compare]/[equal]/[hash] on one machine
      word — never as dense array indices.

    Proc ids are {e per-program}: an id minted for one program's database is
    meaningless (and out of bounds) in another's.  They must never leak
    across [Context.t]s; see DESIGN.md, "Program database". *)

module Proc : sig
  type id = private int
  (** Index of a reachable procedure in its program's database: a dense
      [0 .. n_procs-1] range, in reverse postorder from [main]. *)

  val to_int : id -> int
  val equal : id -> id -> bool
  val compare : id -> id -> int
  val hash : id -> int
  val pp : id Fmt.t

  (** Dense per-procedure tables, sized by the program's procedure count —
      the replacement for [(string, 'a) Hashtbl.t] analysis state. *)
  module Tbl : sig
    type 'a t

    val make : int -> 'a -> 'a t
    (** [make n default] — a table for [n] procedures, all bound to
        [default]. *)

    val init : int -> (id -> 'a) -> 'a t
    val length : 'a t -> int
    val get : 'a t -> id -> 'a
    val set : 'a t -> id -> 'a -> unit
    val iteri : (id -> 'a -> unit) -> 'a t -> unit
    val fold : (id -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val map : ('a -> 'b) -> 'a t -> 'b t
  end
end

module Var : sig
  type id = private int
  (** A process-globally interned variable name.  Equal names always intern
      to equal ids, so [equal]/[compare]/[hash] are single-word integer
      operations.  Ids are dense per process, not per program — use them for
      identity and ordering, never to size per-program arrays. *)

  val intern : string -> id
  (** Thread-safe; idempotent per name. *)

  val name : id -> string
  (** Total on every id returned by {!intern}; lock-free. *)

  val to_int : id -> int
  val equal : id -> id -> bool
  val compare : id -> id -> int
  val hash : id -> int
  val pp : id Fmt.t
end

(** A process-global interned side table for constant values that do not fit
    in a packed lattice word (reals and very large integers — see
    [Fsicp_scc.Lattice.P]).  Interning canonicalises the [Value.equal]
    equivalence classes with multiple machine representations (all nans map
    to one slot, [-0.0] and [0.0] to one slot), so equal pool indices hold
    [Value.equal] values and a packed-word integer comparison is a correct
    lattice-element equality. *)
module Valpool : sig
  val intern : Fsicp_lang.Value.t -> int
  (** Thread-safe; idempotent per [Value.equal]-class. *)

  val get : int -> Fsicp_lang.Value.t
  (** Total on every index returned by {!intern}; lock-free.  Returns the
      first value interned for the index's equivalence class. *)
end

(** Flat bitsets over a dense [0 .. n-1] universe (e.g. the call sites of a
    program, numbered caller-major). *)
module Bits : sig
  type t

  val create : int -> t
  (** All-zero bitset over [0 .. n-1]. *)

  val length : t -> int
  val set : t -> int -> unit
  val mem : t -> int -> bool
  val count : t -> int
end

type t
(** A program's procedure database: the bijection between reachable
    procedure names and their dense {!Proc.id}s. *)

val of_names : string array -> t
(** [of_names names] assigns [Proc.id] [i] to [names.(i)].  Raises
    [Invalid_argument] on duplicate names. *)

val n_procs : t -> int
val proc_id : t -> string -> Proc.id option
val proc_id_exn : t -> string -> Proc.id
val proc_name : t -> Proc.id -> string
val mem : t -> string -> bool

val procs : t -> Proc.id array
(** All ids, in index order [0 .. n_procs-1]. *)

val tbl : t -> 'a -> 'a Proc.Tbl.t
(** [tbl t default] — a fresh {!Proc.Tbl} sized for [t]. *)

val tbl_init : t -> (Proc.id -> 'a) -> 'a Proc.Tbl.t
