(** Dominator tree and dominance frontiers.

    Implements the iterative algorithm of Cooper, Harvey and Kennedy
    ("A Simple, Fast Dominance Algorithm"), which is the standard
    production-compiler choice for the CFG sizes involved here, plus their
    dominance-frontier computation.  Both are prerequisites for SSA
    construction (Cytron et al.), which the paper's intraprocedural SCC
    analysis is built upon. *)

type t = {
  idom : int array;
      (** immediate dominator of each block; [idom.(entry) = entry];
          [-1] for unreachable blocks *)
  children : int list array;  (** dominator-tree children *)
  rpo_index : int array;  (** position in reverse postorder; [-1] if unreachable *)
  rpo : int array;  (** reverse postorder of reachable blocks *)
}

let compute (cfg : Ir.cfg) : t =
  let n = Array.length cfg.Ir.blocks in
  let rpo = Ir.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Ir.predecessors cfg in
  let idom = Array.make n (-1) in
  idom.(cfg.Ir.entry) <- cfg.Ir.entry;
  (* Intersect two blocks' dominator paths by walking up in rpo order. *)
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else if rpo_index.(b1) > rpo_index.(b2) then intersect idom.(b1) b2
    else intersect b1 idom.(b2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> cfg.Ir.entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) preds.(b)
          in
          match processed_preds with
          | [] -> () (* unreachable predecessor set; b itself unreachable *)
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let children = Array.make n [] in
  Array.iter
    (fun b ->
      if b <> cfg.Ir.entry && idom.(b) <> -1 then
        children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  Array.iteri (fun i c -> children.(i) <- List.rev c) children;
  { idom; children; rpo_index; rpo }

(** [dominates t a b]: does [a] dominate [b]?  (Reflexive.)  Walks the
    dominator tree upward from [b]; O(depth). *)
let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else
    let rec up x = if x = a then true else if t.idom.(x) = x then false else up t.idom.(x) in
    up b

(** Dominance frontier of each reachable block (Cooper–Harvey–Kennedy). *)
let frontiers (cfg : Ir.cfg) (t : t) : int list array =
  let n = Array.length cfg.Ir.blocks in
  let df = Array.make n [] in
  let preds = Ir.predecessors cfg in
  for b = 0 to n - 1 do
    if t.idom.(b) <> -1 && List.length preds.(b) >= 2 then
      List.iter
        (fun p ->
          if t.idom.(p) <> -1 then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b df.(!runner)) then
                df.(!runner) <- b :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds.(b)
  done;
  Array.map List.rev df
