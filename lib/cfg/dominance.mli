(** Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy),
    prerequisites of SSA construction. *)

type t = {
  idom : int array;
      (** immediate dominator per block; [idom.(entry) = entry];
          [-1] for unreachable blocks *)
  children : int list array;  (** dominator-tree children *)
  rpo_index : int array;  (** position in reverse postorder; [-1] unreachable *)
  rpo : int array;  (** reverse postorder of reachable blocks *)
}

val compute : Ir.cfg -> t

(** Reflexive dominance; false when either block is unreachable. *)
val dominates : t -> int -> int -> bool

(** Dominance frontier of every reachable block. *)
val frontiers : Ir.cfg -> t -> int list array
