(** Lowering from the MiniFort AST to the quad IR of {!Ir}.

    The lowering flattens expressions into temporaries, translates structured
    control flow ([if]/[while]) into explicit branches, numbers call sites in
    textual order, and finally prunes blocks made unreachable by [return]
    (blocks that only the analysis can prove unreachable are of course
    kept — discovering those is the constant propagator's job). *)

open Fsicp_lang

type builder = {
  prog : Ast.program;
  formals : string list;
  classify : string -> Sema.var_class;
      (** hashed {!Sema.classifier} over the program's globals and this
          procedure's formals: one table build per procedure instead of a
          global-list scan per identifier occurrence *)
  mutable blocks_rev : (Ir.instr list * Ir.terminator option) list;
      (** finished blocks, newest first; [None] terminator = fallthrough
          placeholder fixed up when the successor is known *)
  mutable cur : Ir.instr list;  (** current block's instructions, reversed *)
  mutable cur_id : int;
  mutable next_temp : int;
  mutable next_cs : int;
}

let resolve (b : builder) (x : string) : Ir.var =
  match b.classify x with
  | Sema.Formal i -> Ir.formal x i
  | Sema.Global -> Ir.global x
  | Sema.Local -> Ir.local x

let fresh_temp b =
  let t = Ir.temp b.next_temp in
  b.next_temp <- b.next_temp + 1;
  t

let emit b ins = b.cur <- ins :: b.cur

(* Finish the current block with terminator [term] and start block [next].
   Block ids are assigned sequentially, so the caller knows the id of the
   block about to start: it is [b.cur_id + 1]. *)
let finish_block b term =
  b.blocks_rev <- (b.cur, term) :: b.blocks_rev;
  b.cur <- [];
  b.cur_id <- b.cur_id + 1

(** Lower an expression to an operand, emitting temporaries as needed.
    Literals stay [Const]; bare variables stay [Var]; compound expressions
    land in a fresh temp. *)
let rec lower_expr b (e : Ast.expr) : Ir.operand =
  match e with
  | Ast.Const v -> Ir.Const v
  | Ast.Var x -> Ir.Var (resolve b x)
  | Ast.Unary (op, e) ->
      let o = lower_expr b e in
      let t = fresh_temp b in
      emit b (Ir.Assign (t, Ir.Unop (op, o)));
      Ir.Var t
  | Ast.Binary (op, l, r) ->
      let lo = lower_expr b l in
      let ro = lower_expr b r in
      let t = fresh_temp b in
      emit b (Ir.Assign (t, Ir.Binop (op, lo, ro)));
      Ir.Var t

let lower_arg b (e : Ast.expr) : Ir.arg =
  match e with
  | Ast.Var x ->
      let v = resolve b x in
      { Ir.a_operand = Ir.Var v; a_byref = Some v }
  | e -> { Ir.a_operand = lower_expr b e; a_byref = None }

let rec lower_block b (body : Ast.stmt list) =
  List.iter (lower_stmt b) body

and lower_stmt b (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Assign (x, e) ->
      let o = lower_expr b e in
      emit b (Ir.Assign (resolve b x, Ir.Copy o))
  | Ast.Print e ->
      let o = lower_expr b e in
      emit b (Ir.Print o)
  | Ast.Call (q, args) ->
      let args = Array.of_list (List.map (lower_arg b) args) in
      let cs_id = b.next_cs in
      b.next_cs <- b.next_cs + 1;
      emit b (Ir.Call { cs_id; callee = q; args })
  | Ast.Return -> finish_block b (Some Ir.Ret)
  | Ast.If (c, then_, else_) ->
      let co = lower_expr b c in
      (* Layout: [cond] -> then_blk .. -> join; else_blk .. -> join.
         Ids are sequential; we don't know the join id until both arms are
         lowered, so use placeholder [None] terminators (fallthrough) and a
         patch list. *)
      let cond_block = b.cur_id in
      finish_block b None (* patched to Cond below *);
      let then_entry = b.cur_id in
      lower_block b then_;
      let then_exit = b.cur_id in
      finish_block b None (* patched to Goto join *);
      let else_entry = b.cur_id in
      lower_block b else_;
      let else_exit = b.cur_id in
      finish_block b None (* patched to Goto join *);
      let join = b.cur_id in
      patch b cond_block (Ir.Cond (co, then_entry, else_entry));
      patch b then_exit (Ir.Goto join);
      patch b else_exit (Ir.Goto join)
  | Ast.While (c, body) ->
      let pre = b.cur_id in
      finish_block b None;
      let header = b.cur_id in
      let co = lower_expr b c in
      let cond_block = b.cur_id in
      finish_block b None;
      let body_entry = b.cur_id in
      lower_block b body;
      let body_exit = b.cur_id in
      finish_block b (Some (Ir.Goto header));
      let exit = b.cur_id in
      patch b pre (Ir.Goto header);
      patch b cond_block (Ir.Cond (co, body_entry, exit));
      ignore body_exit;
      ignore body_entry

(* Patch the (placeholder) terminator of an already-finished block. *)
and patch b id term =
  let idx_from_newest = b.cur_id - 1 - id in
  let rec go i = function
    | [] -> invalid_arg "Lower.patch: no such block"
    | (instrs, old) :: tl when i = 0 ->
        assert (old = None);
        (instrs, Some term) :: tl
    | hd :: tl -> hd :: go (i - 1) tl
  in
  b.blocks_rev <- go idx_from_newest b.blocks_rev

(* Remove blocks unreachable from the entry and remap ids. *)
let prune_unreachable (cfg : Ir.cfg) : Ir.cfg =
  let n = Array.length cfg.Ir.blocks in
  let reach = Array.make n false in
  let rec dfs i =
    if not reach.(i) then begin
      reach.(i) <- true;
      List.iter dfs (Ir.successors cfg.Ir.blocks.(i))
    end
  in
  dfs cfg.Ir.entry;
  let remap = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun i r ->
      if r then begin
        remap.(i) <- !count;
        incr count
      end)
    reach;
  let remap_term = function
    | Ir.Goto t -> Ir.Goto remap.(t)
    | Ir.Cond (c, t, f) -> Ir.Cond (c, remap.(t), remap.(f))
    | Ir.Ret -> Ir.Ret
  in
  let blocks =
    Array.of_list
      (List.filteri (fun i _ -> reach.(i)) (Array.to_list cfg.Ir.blocks)
      |> List.map (fun (b : Ir.block) -> { b with Ir.term = remap_term b.Ir.term }))
  in
  { Ir.blocks; entry = remap.(cfg.Ir.entry) }

(** Lower one procedure. *)
let lower_proc (prog : Ast.program) (p : Ast.proc) : Ir.proc =
  let b =
    {
      prog;
      formals = p.Ast.formals;
      classify =
        Sema.classifier ~globals:prog.Ast.globals ~formals:p.Ast.formals;
      blocks_rev = [];
      cur = [];
      cur_id = 0;
      next_temp = 0;
      next_cs = 0;
    }
  in
  lower_block b p.Ast.body;
  finish_block b (Some Ir.Ret);
  let blocks =
    List.rev_map
      (fun (instrs_rev, term) ->
        {
          Ir.instrs = Array.of_list (List.rev instrs_rev);
          term = (match term with Some t -> t | None -> Ir.Ret);
        })
      b.blocks_rev
  in
  let cfg = prune_unreachable { Ir.blocks = Array.of_list blocks; entry = 0 } in
  {
    Ir.name = p.Ast.pname;
    formals = Array.of_list (List.mapi (fun i f -> Ir.formal f i) p.Ast.formals);
    cfg;
    n_call_sites = b.next_cs;
  }

(** Lower every procedure of a program.  The program must be
    {!Sema.check}-clean. *)
let lower_program (prog : Ast.program) : Ir.proc list =
  List.map (lower_proc prog) prog.Ast.procs
