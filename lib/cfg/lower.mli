(** Lowering from the MiniFort AST to the quad IR: expression flattening
    into temporaries, structured control flow to explicit branches,
    call-site numbering in textual order, and pruning of blocks made
    unreachable by [return]. *)

open Fsicp_lang

(** Lower one procedure of a {!Sema.check}-clean program. *)
val lower_proc : Ast.program -> Ast.proc -> Ir.proc

(** Lower every procedure (in program order, reachable or not). *)
val lower_program : Ast.program -> Ir.proc list
