(** Quad-style intermediate representation.

    Each MiniFort procedure is lowered ({!Lower}) to a control-flow graph of
    basic blocks over a flat, three-address instruction set.  Expressions are
    flattened into compiler temporaries so that every instruction has at most
    one operator — the shape the sparse conditional constant propagation
    ({!Fsicp_scc}) works on. *)

open Fsicp_lang
open Fsicp_prog

(** How an identifier was resolved.  [Formal] carries the parameter index,
    which the interprocedural analyses use to bind actuals to formals. *)
type kind =
  | Local
  | Formal of int
  | Global
  | Temp  (** compiler-introduced temporary; never escapes the procedure *)

type var = { vid : Prog.Var.id; vkind : kind }
(** [vid] is the interned name ({!Fsicp_prog.Prog.Var}): comparing, hashing
    and equating variables are single-word integer operations on the SSA and
    SCC hot paths.  The spelling is recovered with {!Var.name} only at
    pretty-printing and solution-assembly boundaries.

    Note the induced {!Var.compare} order is interning order, not
    alphabetical: any user-visible listing must sort by {!Var.name}
    explicitly. *)

module Var = struct
  type t = var

  let name v = Prog.Var.name v.vid

  (* Explicit tag-based compare: [Stdlib.compare] on [vkind] would be
     polymorphic (slower, and fragile the day [kind] gains a non-constant
     constructor other than [Formal]). *)
  let kind_tag = function Local -> 0 | Formal _ -> 1 | Global -> 2 | Temp -> 3

  let compare_kind a b =
    match (a, b) with
    | Formal i, Formal j -> Int.compare i j
    | _ -> Int.compare (kind_tag a) (kind_tag b)

  let compare a b =
    match Prog.Var.compare a.vid b.vid with
    | 0 -> compare_kind a.vkind b.vkind
    | c -> c

  let equal a b = Prog.Var.equal a.vid b.vid && compare_kind a.vkind b.vkind = 0

  let hash v =
    let k = match v.vkind with Formal i -> 4 + i | k -> kind_tag k in
    (Prog.Var.hash v.vid * 31) + k

  (** Collision-free int key within one procedure's variable universe: the
      interned name id plus the kind tag.  (The [Formal] index is dropped:
      a name resolves to at most one formal slot per procedure.)  Backs the
      dense slot tables of {!Fsicp_ssa.Ssa} and the per-call entry-env
      lookup of {!Fsicp_scc.Scc.env_of_list}. *)
  let slot_key v = (Prog.Var.to_int v.vid * 4) + kind_tag v.vkind

  let pp ppf v =
    match v.vkind with
    | Local -> Fmt.pf ppf "%s" (name v)
    | Formal i -> Fmt.pf ppf "%s{f%d}" (name v) i
    | Global -> Fmt.pf ppf "%s{g}" (name v)
    | Temp -> Fmt.pf ppf "%s" (name v)

  let is_temp v = v.vkind = Temp
  let is_global v = v.vkind = Global
  let is_formal v = match v.vkind with Formal _ -> true | _ -> false

  (** Source-level variables — the ones metrics count uses of. *)
  let is_source v = not (is_temp v)

  (** Sort by source spelling — for user-visible listings, where the
      interning order behind {!compare} would be meaningless. *)
  let by_name a b =
    match String.compare (name a) (name b) with
    | 0 -> compare_kind a.vkind b.vkind
    | c -> c
end

module VarSet = Set.Make (Var)
module VarMap = Map.Make (Var)

let local name = { vid = Prog.Var.intern name; vkind = Local }
let formal name i = { vid = Prog.Var.intern name; vkind = Formal i }
let global name = { vid = Prog.Var.intern name; vkind = Global }
let temp i = { vid = Prog.Var.intern (Printf.sprintf "$t%d" i); vkind = Temp }

type operand = Const of Value.t | Var of var

let pp_operand ppf = function
  | Const v -> Value.pp ppf v
  | Var v -> Var.pp ppf v

type rhs =
  | Copy of operand
  | Unop of Ops.unop * operand
  | Binop of Ops.binop * operand * operand

let pp_rhs ppf = function
  | Copy o -> pp_operand ppf o
  | Unop (op, o) -> Fmt.pf ppf "%a%a" Ops.pp_unop op pp_operand o
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a %a %a" pp_operand a Ops.pp_binop op pp_operand b

(** A call argument.  [a_byref] is [Some v] when the source actual was the
    bare variable [v] (passed by reference, so the callee may write through
    it); in that case [a_operand = Var v].  Literal actuals keep their
    [Const] operand, which is how the IMM column of Table 1 and the literal
    jump function recognise immediate constants. *)
type arg = { a_operand : operand; a_byref : var option }

type instr =
  | Assign of var * rhs
  | Call of { cs_id : int; callee : string; args : arg array }
      (** [cs_id] numbers call sites within the procedure in textual order *)
  | Print of operand

let pp_instr ppf = function
  | Assign (v, rhs) -> Fmt.pf ppf "%a = %a" Var.pp v pp_rhs rhs
  | Call { cs_id; callee; args } ->
      Fmt.pf ppf "call[%d] %s(%a)" cs_id callee
        Fmt.(array ~sep:(any ", ") (fun ppf a -> pp_operand ppf a.a_operand))
        args
  | Print o -> Fmt.pf ppf "print %a" pp_operand o

type terminator =
  | Goto of int
  | Cond of operand * int * int  (** [Cond (c, if_true, if_false)] *)
  | Ret

let pp_terminator ppf = function
  | Goto b -> Fmt.pf ppf "goto B%d" b
  | Cond (c, t, f) -> Fmt.pf ppf "if %a then B%d else B%d" pp_operand c t f
  | Ret -> Fmt.string ppf "ret"

type block = { instrs : instr array; term : terminator }

type cfg = {
  blocks : block array;
  entry : int;  (** always [0] after lowering *)
}

(** A lowered procedure. *)
type proc = {
  name : string;
  formals : var array;
  cfg : cfg;
  n_call_sites : int;
}

let successors (b : block) : int list =
  match b.term with
  | Goto t -> [ t ]
  | Cond (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Ret -> []

let predecessors (cfg : cfg) : int list array =
  let preds = Array.make (Array.length cfg.blocks) [] in
  Array.iteri
    (fun i b -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) (successors b))
    cfg.blocks;
  Array.map List.rev preds

(** Reverse postorder of the reachable blocks, starting at the entry. *)
let reverse_postorder (cfg : cfg) : int array =
  let n = Array.length cfg.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs (successors cfg.blocks.(i));
      order := i :: !order
    end
  in
  dfs cfg.entry;
  Array.of_list !order

(** Iterate over every instruction of the CFG (all blocks, in block order). *)
let iter_instrs f (cfg : cfg) =
  Array.iteri
    (fun bi b -> Array.iteri (fun ii ins -> f ~block:bi ~index:ii ins) b.instrs)
    cfg.blocks

(** All variables occurring in the procedure (defined or used), excluding
    call-effect globals that never appear textually. *)
let occurring_vars (p : proc) : VarSet.t =
  let acc = ref VarSet.empty in
  let add_op = function Const _ -> () | Var v -> acc := VarSet.add v !acc in
  let add_rhs = function
    | Copy o | Unop (_, o) -> add_op o
    | Binop (_, a, b) ->
        add_op a;
        add_op b
  in
  Array.iter (fun f -> acc := VarSet.add f !acc) p.formals;
  Array.iter
    (fun b ->
      Array.iter
        (function
          | Assign (v, rhs) ->
              acc := VarSet.add v !acc;
              add_rhs rhs
          | Call { args; _ } ->
              Array.iter (fun a -> add_op a.a_operand) args
          | Print o -> add_op o)
        b.instrs;
      match b.term with Cond (c, _, _) -> add_op c | Goto _ | Ret -> ())
    p.cfg.blocks;
  !acc

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "proc %s(%a):@\n" p.name
    Fmt.(array ~sep:(any ", ") Var.pp)
    p.formals;
  Array.iteri
    (fun i b ->
      Fmt.pf ppf "B%d:@\n" i;
      Array.iter (fun ins -> Fmt.pf ppf "  %a@\n" pp_instr ins) b.instrs;
      Fmt.pf ppf "  %a@\n" pp_terminator b.term)
    p.cfg.blocks

let proc_to_string p = Fmt.str "%a" pp_proc p
