(** Structured tracing and monotonic counters for the whole pipeline.

    The paper's cost claim (§4: the flow-sensitive method adds "less than
    1.5% of compile time") needs finer evidence than per-phase wall-clock
    rows once the pipeline is multi-domain and cache-heavy.  This module
    provides the two primitives every layer records into:

    - {b spans} — [span "5b:fs-icp" f] brackets the evaluation of [f] with
      begin/end events; spans nest per domain and may carry string
      key/value arguments (computed lazily, only when tracing is enabled);
    - {b counters} — process-wide monotonic integer counters ([incr],
      [add]), aggregated per domain without locks.

    {2 Recording model}

    Every domain owns a private lock-free buffer (reached through
    {!Domain.DLS}); recording is a plain store into it, so concurrent
    domains never contend.  Buffers outlive their domains: a registry keeps
    them for the flush, which must run at a quiescent point (after every
    [Domain.join] of interest — everywhere the pipeline flushes, the
    scheduler has already joined its workers).

    Span recording is {e disabled by default}: the [span] fast path is one
    atomic flag load, and the argument thunk is never forced.  Counters are
    always on — every increment in the pipeline funnels a local tally at a
    kernel boundary, never a hot-loop store — so acceptance checks like the
    SCC memo warm-path assertion can read them unconditionally.  The
    benchmark harness gates the end-to-end overhead of both paths at ≤3% on
    the flow-sensitive solve ([bench --check]).

    {2 Determinism}

    Event {e identity} carries no wall clock: an event is identified by a
    logical epoch (advanced only from sequential orchestration points), its
    name and arguments, and its position in its domain's buffer.  Wall
    -clock timestamps are recorded alongside, for durations only.  The
    {!Logical} flush canonicalises: timing-only spans are dropped (children
    promoted), {e detached} spans — work items dispatched to arbitrary
    domains — are lifted to the root level, roots are stable-sorted by
    (epoch, name, args), and timestamps are replaced by a depth-first
    numbering.  The result is byte-identical across runs at a fixed [jobs]
    count, which is what the golden-trace fixture and the qcheck
    determinism properties pin.  The {!Wall} flush keeps real timestamps
    and per-domain tracks for profiling (inherently non-deterministic). *)

(** {1 Counters} *)

type counter

(** [counter name] returns the process-wide counter registered under
    [name], creating it on first use (subsequent calls with the same name
    return the same counter; the first [stable] wins).  [stable = false]
    marks a counter whose value is scheduling-dependent (e.g. idle waits):
    unstable counters are excluded from the deterministic {!Logical} flush
    and from {!counters_table} unless [all] is set. *)
val counter : ?stable:bool -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Total over all domains, live and dead; 0 for unregistered names.
    Monotonic between {!reset}s. *)
val counter_total : string -> int

(** All counters with their totals, sorted by name.  [all] includes the
    unstable ones (default: stable only). *)
val counters : ?all:bool -> unit -> (string * int) list

(** The flat counters table as aligned text, one counter per line. *)
val counters_table : ?all:bool -> unit -> string

(** {1 Spans} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Advance the logical epoch.  Must only be called from sequential
    orchestration points (phase starts, solver entries, fan-out entries) —
    never from inside concurrently-running work — so that every event's
    epoch is deterministic. *)
val next_epoch : unit -> unit

(** [span name f] evaluates [f ()] inside a [name] span on the calling
    domain; the end event is recorded even when [f] raises.  [args] is
    forced only when tracing is enabled.  [timing] marks a span that exists
    purely for wall-clock attribution (pool lifetime, idle waits): the
    {!Logical} flush drops it and promotes its children.  [detach] marks a
    work item that may run on any domain: the {!Logical} flush lifts it out
    of whatever stack it was recorded under to the root level, making the
    trace shape independent of scheduling. *)
val span :
  ?args:(unit -> (string * string) list) ->
  ?timing:bool ->
  ?detach:bool ->
  string ->
  (unit -> 'a) ->
  'a

(** {1 Flushing} *)

type mode =
  | Logical  (** canonical order, depth-first logical timestamps *)
  | Wall  (** real µs timestamps, one track per domain buffer *)

(** Render everything recorded so far as Chrome [trace_event] JSON
    (loadable in Perfetto / chrome://tracing).  Spans become ["B"]/["E"]
    pairs; counters become trailing ["C"] events.  The {!Logical} flush
    emits only stable, nonzero counters — never-exercised counters are
    omitted so the document does not depend on which modules happen to be
    linked (registration runs at module init).  Must be called at a
    quiescent point. *)
val to_chrome_json : ?mode:mode -> unit -> string

val write_chrome_json : ?mode:mode -> string -> unit

(** Clear all recorded events and zero every counter (epoch included).
    O(1): it bumps a logical generation and each buffer discards its stale
    contents on its next record.  Must be called at a quiescent point. *)
val reset : unit -> unit
