(* See the interface for the event model and determinism rules.  The
   implementation splits into three independent parts: a process-wide counter
   registry, per-domain event/counter buffers, and the flush (which parses
   each buffer's flat event log back into span trees, canonicalises them,
   and prints Chrome trace_event JSON). *)

(* ------------------------------------------------------------------ *)
(* Counter registry: names and stability flags are process-global and
   registered under a mutex (registration is rare — once per counter per
   program); the id is an index into every buffer's counts array. *)

type counter = int

let reg_mu = Mutex.create ()
let reg_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let reg_names : string array ref = ref (Array.make 16 "")
let reg_stable : bool array ref = ref (Array.make 16 true)
let reg_len = ref 0

let counter ?(stable = true) name =
  Mutex.lock reg_mu;
  let id =
    match Hashtbl.find_opt reg_tbl name with
    | Some id -> id
    | None ->
        let id = !reg_len in
        let cap = Array.length !reg_names in
        if id = cap then begin
          let names = Array.make (2 * cap) "" in
          let stab = Array.make (2 * cap) true in
          Array.blit !reg_names 0 names 0 cap;
          Array.blit !reg_stable 0 stab 0 cap;
          reg_names := names;
          reg_stable := stab
        end;
        !reg_names.(id) <- name;
        !reg_stable.(id) <- stable;
        incr reg_len;
        Hashtbl.add reg_tbl name id;
        id
  in
  Mutex.unlock reg_mu;
  id

(* ------------------------------------------------------------------ *)
(* Per-domain buffers.  Each domain records into its own buffer with plain
   (unsynchronised) stores; buffers are registered once into a global list
   via CAS and are never removed, so events and counts survive the death of
   the domain that wrote them.  Reads of foreign buffers only happen at
   quiescent points (flush/reset), after the writing domains were joined. *)

type ev =
  | Begin of {
      epoch : int;
      name : string;
      args : (string * string) list;
      timing : bool;
      detach : bool;
      t : float;
    }
  | End of { t : float }

type buf = {
  mutable evs : ev array;
  mutable elen : int;
  mutable counts : int array;
  mutable gen : int;
}

let dummy_ev = End { t = 0.0 }
let all_bufs : buf list Atomic.t = Atomic.make []

(* Reset is lazy: bumping [generation] logically clears every buffer at
   once, and each buffer physically clears itself on its next record.
   This keeps [reset] O(1) — the registry accumulates one dead buffer per
   spawned domain over a process lifetime, and walking those (or letting
   events pile up) is exactly the overhead the bench's traced row would
   otherwise measure. *)
let generation = Atomic.make 0
let live b = b.gen = Atomic.get generation

let register_buf b =
  let rec go () =
    let old = Atomic.get all_bufs in
    if not (Atomic.compare_and_set all_bufs old (b :: old)) then go ()
  in
  go ()

(* The event array starts empty: a buffer owned by a worker domain that
   only ever flushes counters (the common case — spans are off by default,
   and pools spawn fresh domains per run) costs a couple hundred bytes,
   which keeps long fuzzing campaigns' buffer retention negligible. *)
let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          evs = [||];
          elen = 0;
          counts = Array.make 16 0;
          gen = Atomic.get generation;
        }
      in
      register_buf b;
      b)

let my_buf () =
  let b = Domain.DLS.get buf_key in
  let g = Atomic.get generation in
  if b.gen <> g then begin
    (* First record since the last reset: clear the stale contents.  Keep
       a modest event array for reuse; drop oversized ones so a buffer
       that once recorded a huge trace does not pin it forever. *)
    if Array.length b.evs > 1024 then b.evs <- [||];
    b.elen <- 0;
    Array.fill b.counts 0 (Array.length b.counts) 0;
    b.gen <- g
  end;
  b

let push_ev b e =
  let cap = Array.length b.evs in
  if b.elen = cap then begin
    let evs = Array.make (max 256 (2 * cap)) dummy_ev in
    Array.blit b.evs 0 evs 0 cap;
    b.evs <- evs
  end;
  b.evs.(b.elen) <- e;
  b.elen <- b.elen + 1

let add c n =
  let b = my_buf () in
  let cap = Array.length b.counts in
  if c >= cap then begin
    let counts = Array.make (max (c + 1) (2 * cap)) 0 in
    Array.blit b.counts 0 counts 0 cap;
    b.counts <- counts
  end;
  b.counts.(c) <- b.counts.(c) + n

let incr c = add c 1

let total_of_id id =
  List.fold_left
    (fun acc b ->
      if live b && id < Array.length b.counts then acc + b.counts.(id) else acc)
    0 (Atomic.get all_bufs)

let counter_total name =
  match Hashtbl.find_opt reg_tbl name with
  | None -> 0
  | Some id -> total_of_id id

let counters ?(all = false) () =
  let n = !reg_len in
  let out = ref [] in
  for id = n - 1 downto 0 do
    if all || !reg_stable.(id) then
      out := (!reg_names.(id), total_of_id id) :: !out
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let counters_table ?all () =
  let cs = counters ?all () in
  let w =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 cs
  in
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-*s %d\n" w name v))
    cs;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Spans. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v
let epoch = Atomic.make 0
let next_epoch () = Atomic.incr epoch

let span ?args ?(timing = false) ?(detach = false) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = my_buf () in
    let a = match args with None -> [] | Some th -> th () in
    push_ev b
      (Begin
         {
           epoch = Atomic.get epoch;
           name;
           args = a;
           timing;
           detach;
           t = Unix.gettimeofday ();
         });
    Fun.protect ~finally:(fun () -> push_ev b (End { t = Unix.gettimeofday () })) f
  end

let reset () =
  Atomic.incr generation;
  Atomic.set epoch 0

(* ------------------------------------------------------------------ *)
(* Flush: parse each buffer's flat log into span trees, then print. *)

type node = {
  n_epoch : int;
  n_name : string;
  n_args : (string * string) list;
  n_timing : bool;
  n_detach : bool;
  n_t0 : float;
  mutable n_t1 : float;
  mutable n_children : node list;
}

(* Rebuild the span forest of one buffer.  The log is well-bracketed per
   domain by construction ([span] closes on exceptions too); any span still
   open at a flush — only possible if the flush point was not quiescent —
   is closed with zero duration rather than dropped. *)
let parse_buf b =
  let roots = ref [] in
  let stack = ref [] in
  let close n t rest =
    n.n_t1 <- t;
    n.n_children <- List.rev n.n_children;
    (match rest with
    | p :: _ -> p.n_children <- n :: p.n_children
    | [] -> roots := n :: !roots);
    stack := rest
  in
  for i = 0 to b.elen - 1 do
    match b.evs.(i) with
    | Begin { epoch; name; args; timing; detach; t } ->
        stack :=
          {
            n_epoch = epoch;
            n_name = name;
            n_args = args;
            n_timing = timing;
            n_detach = detach;
            n_t0 = t;
            n_t1 = t;
            n_children = [];
          }
          :: !stack
    | End { t } -> (
        match !stack with n :: rest -> close n t rest | [] -> ())
  done;
  while !stack <> [] do
    match !stack with
    | n :: rest -> close n n.n_t0 rest
    | [] -> assert false
  done;
  List.rev !roots

(* Move every detached descendant (a work item that happened to run on this
   domain) out of its enclosing stack, preserving recording order. *)
let rec strip_detach lifted node =
  node.n_children <-
    List.filter
      (fun c ->
        strip_detach lifted c;
        if c.n_detach then begin
          lifted := c :: !lifted;
          false
        end
        else true)
      node.n_children

(* Replace timing-only spans by their children, recursively. *)
let rec expand_timing node =
  let kids = List.concat_map expand_timing node.n_children in
  if node.n_timing then kids
  else begin
    node.n_children <- kids;
    [ node ]
  end

let args_key args =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) args)

let root_compare a b =
  let c = compare a.n_epoch b.n_epoch in
  if c <> 0 then c
  else
    let c = String.compare a.n_name b.n_name in
    if c <> 0 then c else String.compare (args_key a.n_args) (args_key b.n_args)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type mode = Logical | Wall

let emit_event out ~first ~name ~ph ~pid ~tid ~ts ~args =
  if !first then first := false else Buffer.add_string out ",\n";
  Buffer.add_string out
    (Printf.sprintf {|{"name":"%s","ph":"%s","pid":%d,"tid":%d,"ts":%d|}
       (json_escape name) ph pid tid ts);
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string out {|,"args":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char out ',';
          Buffer.add_string out
            (Printf.sprintf {|"%s":%s|} (json_escape k) v))
        args;
      Buffer.add_char out '}');
  Buffer.add_char out '}'

let str v = Printf.sprintf {|"%s"|} (json_escape v)

(* [skip_zero] drops never-exercised counters, which makes the logical
   document independent of the set of linked modules (registration happens
   at module init, so two binaries tracing the same work can differ in
   which zero counters merely exist). *)
let emit_counters out ~first ~all ~skip_zero ~ts =
  List.iter
    (fun (name, v) ->
      if not (skip_zero && v = 0) then
        emit_event out ~first ~name ~ph:"C" ~pid:0 ~tid:0 ~ts
          ~args:[ ("value", string_of_int v) ])
    (counters ~all ())

let to_chrome_json ?(mode = Logical) () =
  (* Buffers are CAS-pushed, so the registry list is in reverse
     registration order; undo that so wall tids are first-come.  Stale
     buffers (no record since the last reset) are logically empty. *)
  let bufs = List.rev (List.filter live (Atomic.get all_bufs)) in
  let out = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string out "{\"traceEvents\":[\n";
  (match mode with
  | Logical ->
      let lifted = ref [] in
      let roots =
        List.concat_map
          (fun b ->
            let rs = parse_buf b in
            List.iter (strip_detach lifted) rs;
            rs)
          bufs
      in
      let roots = roots @ List.rev !lifted in
      let roots = List.concat_map expand_timing roots in
      let roots = List.stable_sort root_compare roots in
      let ts = ref 0 in
      let rec emit node =
        let args =
          ("epoch", string_of_int node.n_epoch)
          :: List.map (fun (k, v) -> (k, str v)) node.n_args
        in
        emit_event out ~first ~name:node.n_name ~ph:"B" ~pid:0 ~tid:0 ~ts:!ts
          ~args;
        Stdlib.incr ts;
        List.iter emit node.n_children;
        emit_event out ~first ~name:node.n_name ~ph:"E" ~pid:0 ~tid:0 ~ts:!ts
          ~args:[];
        Stdlib.incr ts
      in
      List.iter emit roots;
      emit_counters out ~first ~all:false ~skip_zero:true ~ts:!ts
  | Wall ->
      let t0 =
        List.fold_left
          (fun acc b ->
            let acc = ref acc in
            for i = 0 to b.elen - 1 do
              match b.evs.(i) with
              | Begin { t; _ } | End { t } -> if t < !acc then acc := t
            done;
            !acc)
          infinity bufs
      in
      let t0 = if t0 = infinity then 0.0 else t0 in
      let us t = int_of_float ((t -. t0) *. 1e6) in
      let tmax = ref 0 in
      List.iteri
        (fun tid b ->
          let rec emit node =
            let args =
              ("epoch", string_of_int node.n_epoch)
              :: List.map (fun (k, v) -> (k, str v)) node.n_args
            in
            emit_event out ~first ~name:node.n_name ~ph:"B" ~pid:0 ~tid
              ~ts:(us node.n_t0) ~args;
            List.iter emit node.n_children;
            let te = us node.n_t1 in
            if te > !tmax then tmax := te;
            emit_event out ~first ~name:node.n_name ~ph:"E" ~pid:0 ~tid ~ts:te
              ~args:[]
          in
          List.iter emit (parse_buf b))
        bufs;
      emit_counters out ~first ~all:true ~skip_zero:false ~ts:!tmax);
  Buffer.add_string out "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents out

let write_chrome_json ?mode path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?mode ()))

(* FSICP_TRACE=path enables tracing for the whole process lifetime and
   flushes a wall-clock trace on exit — the zero-integration profiling
   path for any entry point. *)
let () =
  match Sys.getenv_opt "FSICP_TRACE" with
  | Some path when String.trim path <> "" ->
      set_enabled true;
      at_exit (fun () -> write_chrome_json ~mode:Wall path)
  | _ -> ()
