(** Deterministic, explicit-state PRNG (canonical splitmix64) for workload
    synthesis: every synthetic benchmark is reproducible from its seed; the
    global [Random] is not used anywhere in the repository. *)

type t

val create : int -> t

(** Next raw value, uniform over non-negative ints. *)
val next : t -> int

(** Uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Bernoulli draw. *)
val bool : t -> float -> bool

val choose : t -> 'a list -> 'a

(** Weighted choice; consumes exactly one draw regardless of list length. *)
val weighted : t -> (float * 'a) list -> 'a

val shuffle : t -> 'a list -> 'a list
