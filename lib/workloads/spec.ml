(** The calibrated SPEC-like benchmark suite.

    One generator instance per benchmark the paper measures (the Fortran
    subset of SPECfp92 plus 030.matrix300, §4), with the paper's published
    numbers attached for side-by-side reporting.  The generator parameters
    were calibrated so the structural scale columns (ARG, FP, Procs) match
    the paper closely and the method columns land in the same regime; the
    per-benchmark mechanism mix is documented in {!Generator}.

    [first_release] is the subset Grove–Torczon also measured (Tables 3–5:
    015.DODUC, 020.NASA7, 030.MATRIX300, 042.FPPPP); those tables are
    produced with float propagation disabled, "in order to provide a better
    comparison".  020.NASA7 and 042.FPPPP are first-SPEC-release program
    versions, hence the slightly different scales vs 093/094. *)

(** The paper's published values for one benchmark (−1 = not reported /
    OCR-illegible; see EXPERIMENTS.md). *)
type paper_row = {
  (* Table 1 / 3: call-site constant candidates. *)
  p_arg : int;
  p_imm : int;
  p_fi_args : int;
  p_fs_args : int;
  p_gl_cand : int;
  p_gl_fs_sites : int;
  p_gl_vis : int;
  (* Table 2 / 4: interprocedural propagated constants. *)
  p_fp : int;
  p_fi_formals : int;
  p_fs_formals : int;
  p_procs : int;
  p_gl_fi : int;
  p_gl_fs : int;
}

type benchmark = {
  b_name : string;
  b_profile : Generator.profile;
  b_paper : paper_row;
}

let program (b : benchmark) = Generator.generate b.b_profile

let mk name ~paper ~profile = { b_name = name; b_profile = profile; b_paper = paper }

open Generator

(* A base with everything off; each benchmark opts in. *)
let base name seed =
  {
    default_profile with
    g_name = name;
    g_seed = seed;
    g_use_selector = false;
    g_w_imm = 0.0;
    g_w_collide = 0.0;
    g_w_pass = 0.0;
    g_w_local_const = 0.0;
    g_w_local_collide = 0.0;
    g_w_prune = 0.0;
    g_w_bot = 1.0;
    g_w_global_arg = 0.0;
    g_blockdata_pure = 0;
    g_blockdata_mod = 0;
    g_setconst_globals = 0;
    g_noise_globals = 1;
    g_global_read_prob = 0.0;
    g_read_cluster = true;
    g_global_write_prob = 0.1;
    g_loops = 0.25;
    g_float_frac = 0.0;
    g_float_local_frac = 0.0;
    g_float_bd_frac = 0.0;
    g_float_sc_frac = 0.0;
  }

let spice2g6 =
  mk "013.SPICE2G6"
    ~paper:
      {
        p_arg = 2983; p_imm = 384; p_fi_args = 384; p_fs_args = 430;
        p_gl_cand = 0; p_gl_fs_sites = 533; p_gl_vis = 302;
        p_fp = 307; p_fi_formals = 4; p_fs_formals = 4; p_procs = 120;
        p_gl_fi = 0; p_gl_fs = 45;
      }
    ~profile:
      {
        (base "013.SPICE2G6" 1013) with
        g_procs = 119;
        g_fanout = 2;
        g_formals_min = 0;
        g_formals_max = 5;
        g_extra_calls = (16, 21);
        g_target_set = 6;
        g_w_imm = 0.007;
        g_w_collide = 0.065;
        g_w_local_collide = 0.012;
        g_w_bot = 0.916;
        g_const_leaf_only = true;
        g_setconst_globals = 12;
        g_noise_globals = 6;
        g_common_block = 2;
        g_global_read_prob = 0.2;
        g_global_write_prob = 0.05;
        g_float_sc_frac = 0.6;
        g_float_local_frac = 0.3;
      }

let doduc =
  mk "015.DODUC"
    ~paper:
      {
        p_arg = 483; p_imm = 39; p_fi_args = 39; p_fs_args = 43;
        p_gl_cand = 0; p_gl_fs_sites = 1; p_gl_vis = 1;
        p_fp = 133; p_fi_formals = 2; p_fs_formals = 2; p_procs = 41;
        p_gl_fi = 0; p_gl_fs = 1;
      }
    ~profile:
      {
        (base "015.DODUC" 1015) with
        g_procs = 40;
        g_fanout = 2;
        g_formals_min = 1;
        g_formals_max = 5;
        g_extra_calls = (4, 6);
        g_chain = 7;
        g_formal_uses = 1;
        g_w_imm = 0.014;
        g_w_collide = 0.042;
        g_w_local_collide = 0.022;
        g_w_bot = 0.922;
        g_const_leaf_only = true;
        g_setconst_globals = 1;
        g_noise_globals = 4;
        g_global_read_prob = 0.03;
        g_cluster_root_pool = false;
        g_global_write_prob = 0.08;
        (* DODUC's flow-sensitive-only arguments are floating point: Table 3
           (floats off) reports FS = FI = 39 for it. *)
        g_float_local_frac = 1.0;
        g_float_sc_frac = 1.0;
      }

let matrix300 =
  mk "030.MATRIX300"
    ~paper:
      {
        p_arg = 178; p_imm = 25; p_fi_args = 25; p_fs_args = 110;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 32; p_fi_formals = 2; p_fs_formals = 15; p_procs = 5;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "030.MATRIX300" 1030) with
        g_procs = 4;
        g_formals_min = 6;
        g_formals_max = 10;
        g_extra_calls = (4, 6);
        g_extra_to_leaves = false;
        g_chain = 0;
        g_formal_uses = 8;
        g_w_imm = 0.012;
        g_w_collide = 0.006;
        g_w_pass = 0.45;
        g_w_local_const = 0.02;
        g_w_local_collide = 0.02;
        g_w_prune = 0.31;
        g_w_bot = 0.182;
        g_noise_globals = 1;
      }

let mdljdp2 =
  mk "034.MDLJDP2"
    ~paper:
      {
        p_arg = 195; p_imm = 11; p_fi_args = 11; p_fs_args = 11;
        p_gl_cand = 16; p_gl_fs_sites = 69; p_gl_vis = 38;
        p_fp = 40; p_fi_formals = 3; p_fs_formals = 3; p_procs = 36;
        p_gl_fi = 38; p_gl_fs = 40;
      }
    ~profile:
      {
        (base "034.MDLJDP2" 1034) with
        g_procs = 35;
        g_fanout = 2;
        g_formals_min = 0;
        g_formals_max = 2;
        g_extra_calls = (6, 8);
        g_target_set = 3;
        g_w_imm = 0.06;
        g_w_collide = 0.0;
        g_w_bot = 0.94;
        g_blockdata_pure = 14;
        g_blockdata_mod = 2;
        g_noise_globals = 2;
        g_common_block = 6;
        g_global_read_prob = 0.45;
        g_global_write_prob = 0.03;
        g_float_bd_frac = 1.0;
      }

let wave5 =
  mk "039.WAVE5"
    ~paper:
      {
        p_arg = 676; p_imm = 30; p_fi_args = 32; p_fs_args = 49;
        p_gl_cand = 74; p_gl_fs_sites = 249; p_gl_vis = 231;
        p_fp = 258; p_fi_formals = 5; p_fs_formals = 9; p_procs = 79;
        p_gl_fi = 0; p_gl_fs = 61;
      }
    ~profile:
      {
        (base "039.WAVE5" 1039) with
        g_procs = 78;
        g_fanout = 2;
        g_formals_min = 0;
        g_formals_max = 6;
        g_extra_calls = (3, 4);
        g_target_set = 2;
        g_w_imm = 0.018;
        g_w_collide = 0.024;
        g_w_pass = 0.016;
        g_w_local_const = 0.030;
        g_w_local_collide = 0.018;
        g_w_bot = 0.894;
        g_const_leaf_only = true;
        g_blockdata_pure = 0;
        g_blockdata_mod = 74;
        g_setconst_globals = 8;
        g_noise_globals = 4;
        g_common_block = 12;
        g_global_read_prob = 0.4;
        g_global_write_prob = 0.05;
        g_float_bd_frac = 1.0;
        g_float_sc_frac = 0.5;
        g_float_local_frac = 0.4;
      }

let ora =
  mk "048.ORA"
    ~paper:
      {
        p_arg = 0; p_imm = 0; p_fi_args = 0; p_fs_args = 0;
        p_gl_cand = 18; p_gl_fs_sites = -1 (* OCR-illegible *);
        p_gl_vis = -1;
        p_fp = 0; p_fi_formals = 0; p_fs_formals = 0; p_procs = 3;
        p_gl_fi = 18; p_gl_fs = 23;
      }
    ~profile:
      {
        (base "048.ORA" 1048) with
        g_procs = 2;
        g_formals_min = 0;
        g_formals_max = 0;
        g_extra_calls = (0, 0);
        g_blockdata_pure = 18;
        g_blockdata_mod = 0;
        g_setconst_globals = 3;
        g_noise_globals = 1;
        g_global_read_prob = 0.32;
        g_read_cluster = false;
        g_global_write_prob = 0.2;
        g_common_block = 7;
        g_float_bd_frac = 1.0;
        g_float_sc_frac = 1.0;
        g_loops = 0.5;
      }

let mdljsp2 =
  mk "077.MDLJSP2"
    ~paper:
      {
        p_arg = 195; p_imm = 11; p_fi_args = 11; p_fs_args = 11;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 40; p_fi_formals = 3; p_fs_formals = 3; p_procs = 35;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "077.MDLJSP2" 1077) with
        g_procs = 34;
        g_fanout = 2;
        g_formals_min = 0;
        g_formals_max = 2;
        g_extra_calls = (6, 8);
        g_w_imm = 0.085;
        g_w_collide = 0.0;
        g_w_bot = 0.915;
        g_noise_globals = 2;
        g_global_write_prob = 0.1;
      }

let swm256 =
  mk "078.SWM256"
    ~paper:
      {
        p_arg = 0; p_imm = 0; p_fi_args = 0; p_fs_args = 0;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 0; p_fi_formals = 0; p_fs_formals = 0; p_procs = 8;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "078.SWM256" 1078) with
        g_procs = 7;
        g_formals_min = 0;
        g_formals_max = 0;
        g_extra_calls = (0, 1);
        g_noise_globals = 3;
        g_global_read_prob = 0.2;
        g_global_write_prob = 0.4;
        g_loops = 0.6;
      }

let su2cor =
  mk "089.SU2COR"
    ~paper:
      {
        p_arg = 644; p_imm = 110; p_fi_args = 110; p_fs_args = 110;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 57; p_fi_formals = 4; p_fs_formals = 4; p_procs = 25;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "089.SU2COR" 1089) with
        g_procs = 24;
        g_fanout = 2;
        g_formals_min = 1;
        g_formals_max = 4;
        g_extra_calls = (15, 21);
        g_w_imm = 0.06;
        g_w_collide = 0.085;
        g_w_bot = 0.855;
        g_const_leaf_only = true;
        g_noise_globals = 2;
        g_global_write_prob = 0.1;
      }

let hydro2d =
  mk "090.HYDRO2D"
    ~paper:
      {
        p_arg = 197; p_imm = 28; p_fi_args = 28; p_fs_args = 28;
        p_gl_cand = 0; p_gl_fs_sites = 1; p_gl_vis = 1;
        p_fp = 42; p_fi_formals = 7; p_fs_formals = 7; p_procs = 40;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "090.HYDRO2D" 1090) with
        g_procs = 39;
        g_fanout = 2;
        g_formals_min = 0;
        g_formals_max = 2;
        g_extra_calls = (6, 8);
        g_w_imm = 0.055;
        g_w_collide = 0.0;
        g_w_bot = 0.945;
        g_setconst_globals = 1;
        g_noise_globals = 3;
        g_global_read_prob = 0.03;
        g_cluster_root_pool = false;
        g_global_write_prob = 0.12;
        g_float_sc_frac = 1.0;
      }

let nasa7 =
  mk "093.NASA7"
    ~paper:
      {
        p_arg = 104; p_imm = 33; p_fi_args = 33; p_fs_args = 45;
        p_gl_cand = 0; p_gl_fs_sites = 3; p_gl_vis = 3;
        p_fp = 64; p_fi_formals = 15; p_fs_formals = 22; p_procs = 23;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "093.NASA7" 1093) with
        g_procs = 22;
        g_fanout = 2;
        g_formals_min = 1;
        g_formals_max = 5;
        g_extra_calls = (1, 1);
        g_w_imm = 0.19;
        g_w_collide = 0.09;
        g_w_local_const = 0.07;
        g_w_local_collide = 0.06;
        g_w_bot = 0.59;
        g_setconst_globals = 1;
        g_noise_globals = 1;
        g_global_read_prob = 0.05;
        g_global_write_prob = 0.15;
      }

let fpppp =
  mk "094.FPPPP"
    ~paper:
      {
        p_arg = 103; p_imm = 17; p_fi_args = 17; p_fs_args = 21;
        p_gl_cand = 0; p_gl_fs_sites = 8; p_gl_vis = 4;
        p_fp = 70; p_fi_formals = 4; p_fs_formals = 7; p_procs = 13;
        p_gl_fi = 0; p_gl_fs = 2;
      }
    ~profile:
      {
        (base "094.FPPPP" 1094) with
        g_procs = 12;
        g_fanout = 2;
        g_formals_min = 2;
        g_formals_max = 8;
        g_extra_calls = (1, 2);
        g_chain = 1;
        g_formal_uses = 1;
        g_w_imm = 0.05;
        g_w_collide = 0.09;
        g_w_local_const = 0.045;
        g_w_prune = 0.03;
        g_w_bot = 0.785;
        g_setconst_globals = 2;
        g_noise_globals = 1;
        g_global_read_prob = 0.5;
        g_global_write_prob = 0.1;
      }

(** The full suite of paper §4 (Tables 1 and 2), in the paper's order. *)
let suite : benchmark list =
  [
    spice2g6; doduc; matrix300; mdljdp2; wave5; ora; mdljsp2; swm256; su2cor;
    hydro2d; nasa7; fpppp;
  ]

(* -- Beyond-the-paper addendum -------------------------------------- *)

(* A workload the paper's suite cannot exhibit: mode-dispatch clusters
   where the value-context method strictly beats FS (the calibrated
   benchmarks were fitted to a paper in which FS is the most precise
   method measured, so on them CC and VC can only tie).  Reported in the
   EXPERIMENTS.md gains table next to the twelve calibrated programs; not
   part of [suite], so the paper-reproduction tables are untouched. *)
let dispatch =
  mk "DISPATCH"
    ~paper:
      {
        (* Not a paper benchmark: no published numbers. *)
        p_arg = 0; p_imm = 0; p_fi_args = 0; p_fs_args = 0;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 0; p_fi_formals = 0; p_fs_formals = 0; p_procs = 7;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (base "DISPATCH" 1100) with
        g_procs = 0;
        g_formals_min = 0;
        g_formals_max = 0;
        g_extra_calls = (0, 0);
        g_chain = 0;
        g_noise_globals = 0;
        g_global_write_prob = 0.0;
        g_loops = 0.0;
        g_dispatch = 3;
      }

let addendum : benchmark list = [ dispatch ]

(* -- First-release subset (Tables 3, 4, 5) --------------------------- *)

let nasa7_020 =
  mk "020.NASA7"
    ~paper:
      {
        p_arg = 97; p_imm = 33; p_fi_args = 33; p_fs_args = 42;
        p_gl_cand = 0; p_gl_fs_sites = 0; p_gl_vis = 0;
        p_fp = 57; p_fi_formals = 15; p_fs_formals = 19; p_procs = 17;
        p_gl_fi = 0; p_gl_fs = 0;
      }
    ~profile:
      {
        (nasa7.b_profile) with
        g_name = "020.NASA7";
        g_seed = 1020;
        g_procs = 16;
        g_fanout = 2;
        g_formals_min = 1;
        g_formals_max = 6;
        g_extra_calls = (1, 2);
        g_chain = 6;
        g_formal_uses = 9;
        g_w_prune = 0.07;
        g_w_local_const = 0.10;
        g_setconst_globals = 0;
        g_global_read_prob = 0.0;
      }

let fpppp_042 =
  mk "042.FPPPP"
    ~paper:
      {
        p_arg = 103; p_imm = 17; p_fi_args = 17; p_fs_args = 21;
        p_gl_cand = 0; p_gl_fs_sites = 8; p_gl_vis = 4;
        p_fp = 70; p_fi_formals = 4; p_fs_formals = 7; p_procs = 13;
        p_gl_fi = 0; p_gl_fs = 2;
      }
    ~profile:{ (fpppp.b_profile) with g_name = "042.FPPPP"; g_seed = 1042 }

(** The Grove–Torczon comparison subset (Tables 3–5); run with
    [~floats:false].  Paper Table 5 adds the substitution counts:
    DODUC 287/288/288, NASA7 336/205/344, MATRIX300 138/14/250,
    FPPPP 56/25/79 (POLY/FI/FS). *)
let first_release : benchmark list = [ doduc; nasa7_020; matrix300; fpppp_042 ]

(** Paper Table 5 values (POLYNOMIAL, FI, FS) per first-release benchmark. *)
let table5_paper : (string * (int * int * int)) list =
  [
    ("015.DODUC", (287, 288, 288));
    ("020.NASA7", (336, 205, 344));
    ("030.MATRIX300", (138, 14, 250));
    ("042.FPPPP", (56, 25, 79));
  ]
