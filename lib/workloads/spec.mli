(** The calibrated SPEC-like benchmark suite: one generator instance per
    benchmark of the paper's §4 measurements, with the published numbers
    attached for side-by-side reporting (see EXPERIMENTS.md). *)

(** The paper's published values (−1 = not reported / OCR-illegible). *)
type paper_row = {
  p_arg : int;
  p_imm : int;
  p_fi_args : int;
  p_fs_args : int;
  p_gl_cand : int;
  p_gl_fs_sites : int;
  p_gl_vis : int;
  p_fp : int;
  p_fi_formals : int;
  p_fs_formals : int;
  p_procs : int;
  p_gl_fi : int;
  p_gl_fs : int;
}

type benchmark = {
  b_name : string;
  b_profile : Generator.profile;
  b_paper : paper_row;
}

val program : benchmark -> Fsicp_lang.Ast.program

(** The full suite of Tables 1–2, in the paper's order (12 benchmarks). *)
val suite : benchmark list

(** Beyond-the-paper addendum workloads for the extended-methods gains
    table: mode-dispatch programs where the value-context method strictly
    beats FS.  Not part of {!suite} — the paper-reproduction tables are
    untouched. *)
val addendum : benchmark list

(** The Grove–Torczon comparison subset of Tables 3–5; run with floats
    disabled. *)
val first_release : benchmark list

(** Paper Table 5 values (POLYNOMIAL, FI, FS) per subset benchmark. *)
val table5_paper : (string * (int * int * int)) list
