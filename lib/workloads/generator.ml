(** Synthetic MiniFort program generator.

    The SPECfp92 Fortran sources the paper measured are not available, so
    the suite is reproduced structurally: each benchmark becomes a
    deterministic generator instance whose {e mechanism mix} — immediate
    constants, colliding constants, pass-through chains, locally-computed
    constants, branch-pruned constants, block-data globals, flow-sensitive
    global constants, invisible globals — is tuned so that the paper's
    metrics land in the right regime (see DESIGN.md for the substitution
    argument and EXPERIMENTS.md for paper-vs-measured).

    The constant-argument {e classes} map one-to-one onto the phenomena the
    paper's methods are distinguished by:

    - [Fimm]: the same literal at every call site → found by every method
      (the IMM column), and the formal is a propagated constant.
    - [Fcollide]: a literal, but a {e different} one per site → counts as a
      call-site candidate, yet the formal meets to ⊥ (this is why SPICE has
      384 constant arguments but only 4 constant formals).
    - [Fpass]: the caller forwards its own unmodified formal → the
      pass-through effect (FI's [fp_bind]; pass-through/polynomial jump
      functions).
    - [Flocal_const]: the caller computes a local constant (straight-line
      or as the same constant on both branch arms) → any flow-sensitive
      intraprocedural analysis sees it; the flow-insensitive method cannot.
    - [Flocal_collide]: like [Flocal_const] but with per-site values → a
      flow-sensitive call-site candidate that doesn't make the formal
      constant.
    - [Fprune]: the constant only holds because the branch guarded by the
      {e selector} formal (always called with literal 0) is dead — visible
      to the full flow-sensitive interprocedural method only (paper
      Figure 1's [f2]).
    - [Fbot]: genuinely unknown.
    - [Fglobal]: a global passed by reference (feeds the alias analysis).

    Call-graph shape: a chain [main → p1 → … → pN] guarantees every
    procedure is reachable; extra forward calls fatten the DAG; optional
    guarded back-calls to chain ancestors create genuine PCG back edges
    whose density is the BACKEDGE experiment's knob.  Back-calls sit under
    an [if] on an uninitialised local (always 0 at run time), so generated
    programs terminate under the interpreter while the analyses still see
    a recursive PCG. *)

open Fsicp_lang

type formal_class =
  | Fselector
  | Fimm of Value.t
  | Fcollide
  | Fpass
  | Flocal_const of Value.t
  | Flocal_collide
  | Fprune of Value.t
  | Fout of Value.t
      (** an {e out parameter}: the callee assigns it this constant before
          returning; callers pass a fresh local by reference and read it
          after the call — the pattern the return-constants extension
          (paper §3.2) recovers *)
  | Fbot
  | Fglobal

type profile = {
  g_name : string;
  g_seed : int;
  g_procs : int;  (** procedures in addition to [main] *)
  g_fanout : int;
      (** arity of the call tree skeleton: procedure [i]'s guaranteed caller
          is [(i-1)/fanout], so depth is logarithmic — Fortran programs are
          shallow and wide, and deep chains would blow up the REF closures
          that the global call-site metric counts *)
  g_formals_min : int;
  g_formals_max : int;
  g_extra_calls : int * int;  (** extra forward calls per procedure (min, max) *)
  g_call_window : int;
      (** extra calls target procedures within [i+1, i+window] — locality
          keeps interprocedural REF closures realistic (0 = whole program) *)
  g_target_set : int;
      (** when > 0, each procedure's extra calls are spread over at most
          this many distinct callees — real callers invoke the same utility
          repeatedly, which is what makes most of Table 1's global constants
          {e visible} in the calling procedure *)
  g_cluster_root_pool : bool;
      (** sample read-cluster roots from the utility pool (high in-degree,
          many counting sites — SPICE-like) or uniformly (low in-degree,
          few counting sites — DODUC-like) *)
  g_extra_to_leaves : bool;
      (** when true, extra calls target {e leaf} procedures of the call
          tree — the "utility routine called from everywhere" shape of real
          Fortran programs.  Leaves call nothing, so their REF closure is
          just their own reads, which keeps the per-call-site global
          constant counts of Table 1 in the paper's regime instead of
          exploding with graph reachability *)
  g_back_edge_prob : float;  (** probability of a guarded back-call per proc *)
  g_formal_uses : int;
      (** per procedure: statements that use every formal once (substitution
          fodder — each use of an interprocedurally-constant formal counts) *)
  g_chain : int;
      (** per procedure: length of a local constant-computation chain, the
          intraprocedural substitutions every method (POLY/FI/FS) folds *)
  (* Argument class weights (per callee formal). *)
  g_w_imm : float;
  g_w_collide : float;
  g_w_pass : float;
  g_w_local_const : float;
  g_w_local_collide : float;
  g_w_prune : float;
  g_w_out : float;
  g_w_bot : float;
  g_w_global_arg : float;
  g_use_selector : bool;
  g_float_frac : float;  (** fraction of immediate literals that are reals *)
  g_float_local_frac : float;
      (** fraction of locally-computed constants (local-const/collide/prune)
          that are reals — these are the "constant floating point arguments"
          the paper's float ablation removes *)
  g_float_bd_frac : float;  (** fraction of block-data initials that are reals *)
  g_float_sc_frac : float;  (** fraction of set-constant globals that are reals *)
  (* Globals. *)
  g_blockdata_pure : int;  (** block-data globals never modified *)
  g_blockdata_mod : int;  (** block-data globals modified somewhere *)
  g_setconst_globals : int;
      (** globals assigned a constant in [main] before any call —
          flow-sensitively constant, invisible to the FI method *)
  g_noise_globals : int;  (** globals modified with unknown values *)
  g_global_read_prob : float;  (** per proc, per global: emit a direct read *)
  g_read_cluster : bool;
      (** when true, each readable global is assigned to the call
          neighbourhood of one procedure (the procedure plus its direct
          callees) and read only there, with density [g_global_read_prob] —
          models Fortran COMMON usage, where the procedures sharing a
          common block are a caller and the routines it invokes.  This is
          what keeps the visible/invisible global ratio of Table 1
          realistic: within the neighbourhood the calling procedure also
          references the global (visible); edges reaching a shared callee
          from outside pass the constant invisibly *)
  g_common_block : int;
      (** number of globals sharing one read cluster — a Fortran COMMON
          block: WAVE5's 74 block-data globals live in a handful of commons
          each referenced by one group of procedures, not 74 independent
          sharing patterns *)
  g_const_leaf_only : bool;
      (** restrict immediate/colliding constant argument classes to leaf
          callees: interior procedures of the tree skeleton have a single
          caller, so a per-site-varying literal would degenerate into a
          constant formal there, inflating the FI column beyond anything
          the paper's benchmarks show *)
  g_global_write_prob : float;  (** per proc: modify some modifiable global *)
  g_loops : float;  (** probability of a bulk loop per procedure *)
  g_dispatch : int;
      (** mode-dispatch clusters appended after the calibrated body (0 =
          none, no RNG draws — calibrated programs stay byte-identical);
          see {!Generator.profile} in the interface for the mechanism *)
}

let default_profile =
  {
    g_name = "default";
    g_seed = 42;
    g_procs = 10;
    g_fanout = 3;
    g_formals_min = 1;
    g_formals_max = 4;
    g_extra_calls = (0, 2);
    g_call_window = 0;
    g_target_set = 0;
    g_cluster_root_pool = true;
    g_extra_to_leaves = true;
    g_back_edge_prob = 0.0;
    g_formal_uses = 1;
    g_chain = 2;
    g_w_imm = 3.0;
    g_w_collide = 2.0;
    g_w_pass = 0.5;
    g_w_local_const = 1.0;
    g_w_local_collide = 0.5;
    g_w_prune = 0.5;
    g_w_out = 0.0;
    g_w_bot = 2.5;
    g_w_global_arg = 0.3;
    g_use_selector = true;
    g_float_frac = 0.2;
    g_float_local_frac = 0.2;
    g_float_bd_frac = 0.5;
    g_float_sc_frac = 0.3;
    g_blockdata_pure = 2;
    g_blockdata_mod = 1;
    g_setconst_globals = 2;
    g_noise_globals = 2;
    g_global_read_prob = 0.25;
    g_read_cluster = false;
    g_common_block = 1;
    g_const_leaf_only = false;
    g_global_write_prob = 0.3;
    g_loops = 0.3;
    g_dispatch = 0;
  }

(* ------------------------------------------------------------------ *)

type gctx = {
  rng : Prng.t;
  profile : profile;
  proc_names : string array;  (** index 0 = main *)
  formals_of : string list array;  (** per proc *)
  classes_of : formal_class array array;  (** per proc, per formal *)
  mutable collide_counter : int;
  bd_pure : (string * Value.t) list;
  bd_mod : (string * Value.t) list;
  setconst : (string * Value.t) list;
  noise : string list;
}

let fresh_value rng ~float_frac =
  if Prng.bool rng float_frac then
    Value.Real (float_of_int (Prng.range rng 1 50) /. 2.0)
  else Value.Int (Prng.range rng 1 100)

let pick_class g : formal_class =
  let p = g.profile in
  Prng.weighted g.rng
    [
      (p.g_w_imm, `Imm);
      (p.g_w_collide, `Collide);
      (p.g_w_pass, `Pass);
      (p.g_w_local_const, `Local_const);
      (p.g_w_local_collide, `Local_collide);
      (p.g_w_prune, `Prune);
      (p.g_w_out, `Out);
      (p.g_w_bot, `Bot);
      (p.g_w_global_arg, `Global);
    ]
  |> function
  | `Imm -> Fimm (fresh_value g.rng ~float_frac:p.g_float_frac)
  | `Collide -> Fcollide
  | `Pass -> Fpass
  | `Local_const ->
      Flocal_const (fresh_value g.rng ~float_frac:p.g_float_local_frac)
  | `Local_collide -> Flocal_collide
  | `Prune -> Fprune (fresh_value g.rng ~float_frac:p.g_float_local_frac)
  | `Out -> Fout (fresh_value g.rng ~float_frac:p.g_float_local_frac)
  | `Bot -> Fbot
  | `Global -> Fglobal

(* Build the argument expression for one call-site position, emitting any
   prelude statements the class needs.  [undef] is this procedure's
   never-assigned local (0 at run time, ⊥ to the analyses). *)
let build_arg g ~caller_idx ~site_tag ~argpos (cls : formal_class)
    (prelude : Ast.stmt list ref) (postlude : Ast.stmt list ref)
    ~(ret_locals : string list ref) ~(site_outs : string list ref) :
    Ast.expr =
  let caller_formals = g.formals_of.(caller_idx) in
  let undef = "undef" in
  let fresh_local tag = Printf.sprintf "%s_%d_%d" tag site_tag argpos in
  let next_collide ~float_frac () =
    g.collide_counter <- g.collide_counter + 1;
    if Prng.bool g.rng float_frac then
      Value.Real (float_of_int (1000 + g.collide_counter) +. 0.5)
    else Value.Int (1000 + g.collide_counter)
  in
  match cls with
  | Fselector -> Ast.int 0
  | Fimm v -> Ast.Const v
  | Fcollide -> Ast.Const (next_collide ~float_frac:g.profile.g_float_frac ())
  | Fpass -> (
      (* Forward one of the caller's non-selector formals; fall back to a
         literal if the caller has none. *)
      match
        List.filteri
          (fun i _ -> (not g.profile.g_use_selector) || i > 0)
          caller_formals
      with
      | [] -> Ast.Const (Value.Int 7)
      | candidates -> Ast.var (Prng.choose g.rng candidates))
  | Flocal_const v ->
      let x = fresh_local "lc" in
      (if Prng.bool g.rng 0.5 then
         (* join form: same constant on both arms *)
         prelude :=
           !prelude
           @ [
               Ast.if_
                 (Ast.binary Ops.Ne (Ast.var undef) (Ast.int 0))
                 [ Ast.assign x (Ast.Const v) ]
                 [ Ast.assign x (Ast.Const v) ];
             ]
       else prelude := !prelude @ [ Ast.assign x (Ast.Const v) ]);
      Ast.var x
  | Flocal_collide ->
      let x = fresh_local "lk" in
      prelude :=
        !prelude
        @ [
            Ast.assign x
              (Ast.Const
                 (next_collide ~float_frac:g.profile.g_float_local_frac ()));
          ];
      Ast.var x
  | Fprune v ->
      (* The constant only holds on the arm that a {e flow-sensitively
         known} formal of the caller selects: guard on a formal whose own
         class makes it an interprocedural constant that the weaker methods
         cannot all see.  Preference order: a prune-class formal (invisible
         to FI, intra, pass-through AND polynomial — this is what opens the
         Table 5 gap between FS and POLYNOMIAL), then a locally-computed
         constant formal, then an immediate one, then the selector. *)
      let x = fresh_local "pr" in
      let caller_classes = g.classes_of.(caller_idx) in
      let guard =
        let candidates =
          List.mapi (fun j f -> (j, f)) caller_formals
          |> List.filter_map (fun (j, f) ->
                 if j < Array.length caller_classes then
                   match caller_classes.(j) with
                   | Fprune w -> Some (0, f, w)
                   | Flocal_const w -> Some (1, f, w)
                   | Fimm w -> Some (2, f, w)
                   | Fselector -> Some (3, f, Value.Int 0)
                   | Fcollide | Fpass | Flocal_collide | Fout _ | Fbot
                   | Fglobal ->
                       None
                 else None)
        in
        match List.sort compare candidates with
        | (_, f, w) :: _ -> Some (f, w)
        | [] -> None
      in
      (match guard with
      | Some (f, w) ->
          prelude :=
            !prelude
            @ [
                Ast.if_
                  (Ast.binary Ops.Ne (Ast.var f) (Ast.Const w))
                  [
                    Ast.assign x
                      (Ast.binary Ops.Add (Ast.var undef) (Ast.int 1));
                  ]
                  [ Ast.assign x (Ast.Const v) ];
              ]
      | None ->
          (* no usable guard (e.g. main): the constant is unconditional *)
          prelude := !prelude @ [ Ast.assign x (Ast.Const v) ]);
      Ast.var x
  | Fout _ ->
      (* The callee will store a constant through this reference; read the
         result after the call so the return-constants extension has a use
         to improve, and register it so a later call may forward it. *)
      let x = fresh_local "rv" in
      prelude := !prelude @ [ Ast.assign x (Ast.int 0) ];
      postlude :=
        !postlude
        @ [
            Ast.assign (fresh_local "ru")
              (Ast.binary Ops.Add (Ast.var x) (Ast.int 1));
            Ast.print (Ast.var (fresh_local "ru"));
          ];
      site_outs := x :: !site_outs;
      Ast.var x
  | Fbot when !ret_locals <> [] && Prng.bool g.rng 0.4 ->
      (* Forward a previous call's out-value: constant only once the
         return-constants extension is on. *)
      Ast.var (Prng.choose g.rng !ret_locals)
  | Fbot ->
      if Prng.bool g.rng 0.5 then begin
        let x = fresh_local "bt" in
        prelude :=
          !prelude
          @ [
              Ast.assign x
                (Ast.binary Ops.Add (Ast.var undef)
                   (Ast.int (Prng.range g.rng 1 9)));
            ];
        Ast.var x
      end
      else
        (* compound expression argument *)
        Ast.binary Ops.Mul (Ast.var undef) (Ast.int (Prng.range g.rng 2 5))
  | Fglobal ->
      let pool =
        List.map fst g.bd_pure @ List.map fst g.bd_mod
        @ List.map fst g.setconst @ g.noise
      in
      if pool = [] then Ast.Const (Value.Int 3) else Ast.var (Prng.choose g.rng pool)

let generate (p : profile) : Ast.program =
  let rng = Prng.create p.g_seed in
  let n = p.g_procs in
  let proc_names =
    Array.init (n + 1) (fun i ->
        if i = 0 then "main" else Printf.sprintf "p%d" i)
  in
  let formals_of =
    Array.init (n + 1) (fun i ->
        if i = 0 then []
        else
          let k = Prng.range rng p.g_formals_min p.g_formals_max in
          List.init k (fun j -> Printf.sprintf "f%d_%d" i j))
  in
  let bd name_prefix count =
    List.init count (fun i ->
        ( Printf.sprintf "%s%d" name_prefix i,
          if Prng.bool rng p.g_float_bd_frac then
            Value.Real (float_of_int (Prng.range rng 1 40) /. 4.0)
          else Value.Int (Prng.range rng 1 100) ))
  in
  let g =
    {
      rng;
      profile = p;
      proc_names;
      formals_of;
      classes_of = [||];
      collide_counter = 0;
      bd_pure = bd "bp" p.g_blockdata_pure;
      bd_mod = bd "bm" p.g_blockdata_mod;
      setconst =
        List.init p.g_setconst_globals (fun i ->
            ( Printf.sprintf "sc%d" i,
              if Prng.bool rng p.g_float_sc_frac then
                Value.Real (float_of_int (Prng.range rng 1 60) /. 2.0)
              else Value.Int (Prng.range rng 1 100) ));
      noise = List.init p.g_noise_globals (fun i -> Printf.sprintf "nz%d" i);
    }
  in
  let fanout = max 1 p.g_fanout in
  let parent i = if i <= fanout then 0 else ((i - 1) / fanout) in
  (* First index with no tree children. *)
  let leaf_lo = if n = 0 then 1 else ((n - 1) / fanout) + 1 in
  (* Assign a class to every formal of every procedure. *)
  let classes_of =
    Array.init (n + 1) (fun i ->
        let formals = formals_of.(i) in
        let interior = i < leaf_lo in
        Array.of_list
          (List.mapi
             (fun j _ ->
               if j = 0 && p.g_use_selector then Fselector
               else
                 match pick_class g with
                 | Fimm _ | Fcollide | Flocal_collide
                   when p.g_const_leaf_only && interior ->
                     Fbot
                 | c -> c)
             formals))
  in
  let g = { g with classes_of } in

  (* Call targets per procedure: the k-ary-tree children (guaranteeing
     reachability at logarithmic depth) plus extra forward calls plus
     optionally one guarded back call to a tree ancestor. *)
  let callees_of =
    Array.init (n + 1) (fun i ->
        if n = 0 then []
        else begin
          let children =
            List.filter
              (fun j -> j >= 1 && j <= n)
              (List.init fanout (fun k -> (i * fanout) + k + 1))
            |> List.filter (fun j -> parent j = i)
          in
          let forward = ref (List.rev children) in
          let lo, hi = p.g_extra_calls in
          let extra = Prng.range rng lo hi in
          (* In utility mode, leaves ARE the utilities: they call nothing
             beyond the tree (i.e. nothing), so interprocedural reachability
             — and with it the REF closures — stays bounded. *)
          let makes_extra_calls =
            (not p.g_extra_to_leaves) || i < leaf_lo
          in
          if makes_extra_calls && i + 1 <= n then begin
            let tlo =
              if p.g_extra_to_leaves then max (i + 1) leaf_lo else i + 1
            in
            let thi =
              if p.g_call_window > 0 then min n (tlo + p.g_call_window - 1)
              else n
            in
            let pick () = Prng.range rng (min tlo n) (max (min tlo n) thi) in
            (* Optionally restrict this caller to a small set of favourite
               callees, so repeated calls to the same routine occur. *)
            let target_set =
              if p.g_target_set > 0 then
                Some (Array.init p.g_target_set (fun _ -> pick ()))
              else None
            in
            for _ = 1 to extra do
              let target =
                match target_set with
                | Some ts -> ts.(Prng.int rng (Array.length ts))
                | None -> pick ()
              in
              forward := target :: !forward
            done
          end;
          let back =
            if i >= 1 && Prng.bool rng p.g_back_edge_prob then [ -i ]
              (* negative marker: guarded back call to a tree ancestor *)
            else []
          in
          List.rev !forward @ back
        end)
  in

  (* Which procedure reads which global (decided up front so that the
     read-clustering mode can confine a global to one call-tree subtree). *)
  let readable_globals =
    List.map fst g.bd_pure @ List.map fst g.bd_mod @ List.map fst g.setconst
    @ g.noise
  in
  let reads : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let current_cluster = ref (0, []) in
  let callers_of =
    let t = Array.make (n + 1) [] in
    Array.iteri
      (fun i cs ->
        List.iter (fun c -> if c >= 0 then t.(c) <- i :: t.(c)) cs)
      callees_of;
    t
  in
  (* Globals are read in COMMON-block groups: every [g_common_block]
     consecutive globals share one sharing group — one (preferably shared,
     i.e. leaf/utility) procedure plus the procedures that call it.  Edges
     inside the group pass constants visibly; edges reaching a shared
     member from outside are the paper's "invisible" global constants. *)
  let block_size = max 1 p.g_common_block in
  let pick_cluster () =
    let root =
      if p.g_cluster_root_pool && leaf_lo <= n then
        Prng.range rng (min leaf_lo n) n
      else if leaf_lo > 1 then
        (* interior roots: single caller, very few counting sites *)
        Prng.range rng 1 (leaf_lo - 1)
      else Prng.int rng (n + 1)
    in
    (root, callers_of.(root))
  in
  List.iteri
    (fun k gl ->
      if not p.g_read_cluster then
        List.iter
          (fun j ->
            if Prng.bool rng p.g_global_read_prob then
              Hashtbl.replace reads (j, gl) ())
          (List.init (n + 1) (fun j -> j))
      else begin
        if k mod block_size = 0 then current_cluster := pick_cluster ();
        let root, callers = !current_cluster in
        (* The shared procedure itself always references its block. *)
        Hashtbl.replace reads (root, gl) ();
        List.iter
          (fun j ->
            if Prng.bool rng p.g_global_read_prob then
              Hashtbl.replace reads (j, gl) ())
          callers
      end)
    readable_globals;

  (* Per-procedure body synthesis. *)
  let site_counter = ref 0 in
  let build_proc (i : int) : Ast.proc =
    let name = proc_names.(i) in
    let formals = formals_of.(i) in
    let ret_locals = ref [] in
    let body = ref [] in
    let add s = body := !body @ s in
    (* main initialises the flow-sensitive constant globals first. *)
    if i = 0 then
      add (List.map (fun (gl, v) -> Ast.assign gl (Ast.Const v)) g.setconst);
    (* Direct global reads (REF / visibility), per the up-front plan. *)
    List.iteri
      (fun k gl ->
        if Hashtbl.mem reads (i, gl) then
          add
            [
              Ast.assign
                (Printf.sprintf "gr%d" k)
                (Ast.binary Ops.Add (Ast.var gl) (Ast.int 1));
              Ast.print (Ast.var (Printf.sprintf "gr%d" k));
            ])
      readable_globals;
    (* Global writes: each modifiable global needs at least one writer in
       the program; scatter probabilistically and force coverage in pN. *)
    let writable = List.map fst g.bd_mod @ g.noise in
    List.iter
      (fun gl ->
        if Prng.bool rng p.g_global_write_prob || (i = n && n > 0) then
          add [ Ast.assign gl (Ast.binary Ops.Add (Ast.var gl) (Ast.var "undef")) ])
      writable;
    (* Bulk loop (exercises SSA/SCC on cyclic CFGs). *)
    if Prng.bool rng p.g_loops then
      add
        [
          Ast.assign "acc" (Ast.int 0);
          Ast.assign "it" (Ast.int 0);
          Ast.while_
            (Ast.binary Ops.Lt (Ast.var "it") (Ast.var "undef"))
            [
              Ast.assign "acc" (Ast.binary Ops.Add (Ast.var "acc") (Ast.var "it"));
              Ast.assign "it" (Ast.binary Ops.Add (Ast.var "it") (Ast.int 1));
            ];
          Ast.print (Ast.var "acc");
        ];
    (* Local constant chain: intraprocedural substitutions that every
       flow-sensitive method (POLY and FS, and FI's final intraprocedural
       pass) folds identically. *)
    if p.g_chain > 0 then begin
      add [ Ast.assign "ch0" (Ast.int (Prng.range rng 1 20)) ];
      for k = 1 to p.g_chain - 1 do
        let prev = Printf.sprintf "ch%d" (k - 1) in
        add
          [
            Ast.assign
              (Printf.sprintf "ch%d" k)
              (Ast.binary
                 (Prng.choose rng [ Ops.Add; Ops.Mul ])
                 (Ast.var prev)
                 (Ast.int (Prng.range rng 1 5)));
          ]
      done;
      add [ Ast.print (Ast.var (Printf.sprintf "ch%d" (p.g_chain - 1))) ]
    end;
    (* Use every formal [g_formal_uses] times (substitution-metric fodder:
       each use of an interprocedurally-constant formal counts once). *)
    if formals <> [] then
      for u = 1 to p.g_formal_uses do
        let sum =
          List.fold_left
            (fun acc f ->
              match acc with
              | None -> Some (Ast.var f)
              | Some e -> Some (Ast.binary Ops.Add e (Ast.var f)))
            None formals
        in
        match sum with
        | Some e ->
            let v = Printf.sprintf "fsum%d" u in
            add [ Ast.assign v e; Ast.print (Ast.var v) ]
        | None -> ()
      done;
    (* Call sites. *)
    List.iter
      (fun target ->
        let is_back = target < 0 in
        let tgt =
          if is_back then begin
            (* A tree ancestor of [i] (any one on the path to main, main
               excluded), so the edge provably closes a PCG cycle. *)
            let rec ancestors j acc =
              if j <= 0 then acc else ancestors (parent j) (j :: acc)
            in
            match ancestors (parent i) [] with
            | [] -> i (* no proper ancestor: self-recursion *)
            | l -> Prng.choose rng l
          end
          else target
        in
        let callee_idx = tgt in
        let callee = proc_names.(callee_idx) in
        let callee_classes = g.classes_of.(callee_idx) in
        incr site_counter;
        let prelude = ref [] in
        let postlude = ref [] in
        let site_outs = ref [] in
        let args =
          Array.to_list callee_classes
          |> List.mapi (fun argpos cls ->
                 build_arg g ~caller_idx:i ~site_tag:!site_counter ~argpos cls
                   prelude postlude ~ret_locals ~site_outs)
        in
        let call = Ast.call callee args in
        if is_back then
          (* Guard recursion behind an always-false (at run time) branch:
             the PCG still has the back edge, the interpreter terminates. *)
          add
            (!prelude
            @ [
                Ast.if_
                  (Ast.binary Ops.Ne (Ast.var "undef") (Ast.int 0))
                  [ call ] [];
              ]
            @ !postlude)
        else add (!prelude @ [ call ] @ !postlude);
        (* Out-values become forwardable only after their call site. *)
        ret_locals := !ret_locals @ !site_outs)
      callees_of.(i);
    (* Out parameters: store their constant last, so it reaches every
       (implicit) return. *)
    List.iteri
      (fun j f ->
        if j < Array.length g.classes_of.(i) then
          match g.classes_of.(i).(j) with
          | Fout v -> add [ Ast.assign f (Ast.Const v) ]
          | _ -> ())
      formals;
    { Ast.pname = name; formals; body = !body; ppos = Ast.no_pos }
  in
  let procs = List.init (n + 1) build_proc in
  (* Mode-dispatch clusters (beyond the paper; see the profile docs): each
     cluster is a dispatcher [dispK] called from main with two distinct
     constant modes, and a utility [utilK] the dispatcher invokes with a
     cluster constant on the arm every mode selects — the other arm is an
     error path no caller ever takes.  Flow-sensitively the modes meet to
     ⊥ at the dispatcher's entry, both arms look live, and the utility's
     formal melts; analysed once per value context the dead arm is pruned
     in every context and the formal is a propagated constant.  Constants
     are derived from the cluster index, not the RNG, so profiles with
     [g_dispatch = 0] generate byte-identical programs. *)
  let procs =
    if p.g_dispatch <= 0 then procs
    else begin
      let cluster k =
        let d = Printf.sprintf "disp%d" k
        and u = Printf.sprintf "util%d" k in
        let c = 40 + (7 * k) in
        let dp =
          {
            Ast.pname = d;
            formals = [ "mode" ];
            body =
              [
                Ast.if_
                  (Ast.binary Ops.Ne (Ast.var "mode") (Ast.int 0))
                  [ Ast.call u [ Ast.int c ] ]
                  [ Ast.call u [ Ast.int (c + 1) ] ];
              ];
            ppos = Ast.no_pos;
          }
        and up =
          {
            Ast.pname = u;
            formals = [ "w" ];
            body =
              [
                Ast.assign "wp" (Ast.binary Ops.Add (Ast.var "w") (Ast.int 1));
                Ast.print (Ast.var "wp");
              ];
            ppos = Ast.no_pos;
          }
        in
        (d, [ dp; up ])
      in
      let clusters = List.init p.g_dispatch cluster in
      let calls =
        List.concat_map
          (fun (d, _) ->
            [ Ast.call d [ Ast.int 1 ]; Ast.call d [ Ast.int 2 ] ])
          clusters
      in
      List.map
        (fun pr ->
          if String.equal pr.Ast.pname "main" then
            { pr with Ast.body = pr.Ast.body @ calls }
          else pr)
        procs
      @ List.concat_map snd clusters
    end
  in
  let blockdata = g.bd_pure @ g.bd_mod in
  let globals =
    List.map fst blockdata @ List.map fst g.setconst @ g.noise
  in
  let prog = { Ast.globals; blockdata; procs; main = "main" } in
  Sema.check_exn prog;
  prog

(** A small profile for property tests: modest size, every mechanism
    enabled, seeded. *)
let small_profile seed =
  {
    default_profile with
    g_name = Printf.sprintf "small-%d" seed;
    g_seed = seed;
    g_procs = 3 + (seed mod 5);
    g_formals_min = 0;
    g_formals_max = 3;
    g_extra_calls = (0, 2);
    g_back_edge_prob = (if seed mod 3 = 0 then 0.4 else 0.0);
  }

(** Debug: class histogram for a profile (used by the calibration tools). *)
let class_histogram (p : profile) : (string * int) list =
  let rng = Prng.create p.g_seed in
  let g =
    {
      rng;
      profile = p;
      proc_names = [||];
      formals_of = [||];
      classes_of = [||];
      collide_counter = 0;
      bd_pure = [];
      bd_mod = [];
      setconst = [];
      noise = [];
    }
  in
  let counts = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
  in
  for _ = 1 to 1000 do
    match pick_class g with
    | Fselector -> bump "selector"
    | Fimm _ -> bump "imm"
    | Fcollide -> bump "collide"
    | Fpass -> bump "pass"
    | Flocal_const _ -> bump "local_const"
    | Flocal_collide -> bump "local_collide"
    | Fprune _ -> bump "prune"
    | Fout _ -> bump "out"
    | Fbot -> bump "bot"
    | Fglobal -> bump "global"
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
