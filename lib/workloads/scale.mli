(** Size-parametric synthetic corpora for scale-out validation.

    {!Generator} is calibrated against the paper's Table 1–5 shape at
    ~10²-procedure sizes; its read-planning and per-procedure bookkeeping
    are quadratic-ish in places that do not matter at that scale.  This
    module is the 10⁴–10⁶-procedure path: each family builds the
    {!Fsicp_lang.Ast.program} value directly — no source text is ever
    materialised — in O(procs) time and memory, with bounded per-procedure
    MOD/REF closures so every interprocedural phase stays near-linear.

    The families stress the axes the sharded wavefront and the streaming
    lowering care about:

    - {b Chain}: deep call chains (bounded segments fanned from main), a
      long critical path of constants that mutate at every hop — the
      flow-sensitive method tracks them, the flow-insensitive one cannot;
    - {b Fanout}: a wide B-ary call tree — maximal wavefront parallelism;
    - {b Common}: COMMON-style global clusters initialised in block data,
      mostly read-only — global constants propagate everywhere;
    - {b Recursion}: many small mutually-recursive cliques — back edges,
      the flow-insensitive seed, and SCC entry-vector memos;
    - {b Mixed}: all four stitched under one main, sized by the PRNG.

    Generation is deterministic: the same {!spec} always yields the
    structurally identical program ({!Fsicp_lang.Ast.equal_program}), and
    a small-N equivalence test checks the direct path against
    pretty-print → parse round-tripping. *)

type family = Chain | Fanout | Common | Recursion | Mixed

val family_to_string : family -> string

(** Case-insensitive; [Error] names the valid spellings. *)
val family_of_string : string -> (family, string) result

val all_families : family list

type spec = {
  sp_family : family;
  sp_procs : int;  (** total procedures including [main]; >= 2 *)
  sp_seed : int;
}

(** Strict [--procs] validation, matching the [Par.parse_jobs] convention:
    trimmed decimal integer in [2, 2_000_000], everything else is a
    descriptive [Error]. *)
val parse_procs : string -> (int, string) result

(** Strict seed validation: any trimmed decimal integer. *)
val parse_seed : string -> (int, string) result

(** Generate the corpus.  The result is [Sema.check]-clean, every
    procedure is reachable from [main], and the value depends only on
    [spec].
    @raise Invalid_argument when [sp_procs < 2]. *)
val generate : spec -> Fsicp_lang.Ast.program

(** Corpus shape counters: procedure, call-site, global, block-data and
    back-edge-free statistics, cheap to compute (one AST sweep). *)
val stats : Fsicp_lang.Ast.program -> (string * int) list

(** Hex digest of the canonical pretty-printed text — the cross-process
    identity of a generated corpus ([fsicp gen --stats-only] prints it). *)
val digest : Fsicp_lang.Ast.program -> string
