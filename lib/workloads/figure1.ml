(** The example program of the paper's Figure 1.

    The published figure's OCR is corrupt; this reconstruction satisfies
    every constraint the paper's prose states (see DESIGN.md) and
    reproduces the figure's precision table exactly:

    {v
      METHOD             FORMAL PARAMETER CONSTANTS
      flow-sensitive     f1, f2, f3, f4, f5
      flow-insensitive   f1, f3, f4
      literal            f1, f3
      intra              f1, f3, f5
      pass-through       f1, f3, f4, f5
      polynomial         f1, f3, f4, f5
    v}

    Why each method finds what it finds:
    - [f1]: literal 0 at the only call of [sub1] — every method.
    - [f3]: literal 4 — every method.
    - [f4]: [sub1] passes its own unmodified formal [f1]; the pass-through
      machinery (FI's fp_bind, the pass-through/polynomial jump functions,
      FS's SCC which knows f1 = 0) all see it; literal and intra do not.
    - [f5]: [x] is 1 on every path — any flow-sensitive intraprocedural
      analysis (intra/pass-through/polynomial jump functions, FS) finds it;
      the flow-insensitive method cannot.
    - [f2]: [y] is 0 {e only because} the [f1 != 0] path is dead once
      f1 = 0 is known interprocedurally — "x and y must be the same
      constant on all paths from the entry of sub1 to the call of sub2.
      Since f1 has the constant value 0, the path containing y = 1 is not
      executed."  Only the flow-sensitive interprocedural method, which
      re-runs the intraprocedural analysis {e with} f1's value, finds it. *)

open Fsicp_lang

let source =
  {|
proc main() {
  call sub1(0);
}
proc sub1(f1) {
  x = 1;
  if (f1 != 0) {
    y = 1;
  } else {
    y = 0;
  }
  call sub2(y, 4, f1, x);
}
proc sub2(f2, f3, f4, f5) {
  t = f2 + f3 + f4 + f5;
  print t;
}
|}

let program : Ast.program =
  let p = Parser.program_of_string source in
  Sema.check_exn p;
  p

(** The expected per-method formal-constant sets, as
    [(method, [(proc, formal index)])] — the paper's Figure 1 table. *)
let expected : (string * (string * int) list) list =
  let sub2 = List.map (fun i -> ("sub2", i)) in
  [
    ("flow-sensitive", (("sub1", 0) :: sub2 [ 0; 1; 2; 3 ]));
    ("flow-insensitive", (("sub1", 0) :: sub2 [ 1; 2 ]));
    ("literal", (("sub1", 0) :: sub2 [ 1 ]));
    ("intra", (("sub1", 0) :: sub2 [ 1; 3 ]));
    ("pass-through", (("sub1", 0) :: sub2 [ 1; 2; 3 ]));
    ("polynomial", (("sub1", 0) :: sub2 [ 1; 2; 3 ]));
    (* Beyond the paper: FS is already exact here, and both extended
       methods sit above it in the hierarchy, so they find the same set. *)
    ("copy-constant", (("sub1", 0) :: sub2 [ 0; 1; 2; 3 ]));
    ("value-context", (("sub1", 0) :: sub2 [ 0; 1; 2; 3 ]));
  ]
