(** Synthetic MiniFort program generator: deterministic (seeded), with the
    constant-argument classes and call-graph shape knobs that recreate the
    structural composition of the paper's benchmarks (see DESIGN.md). *)

open Fsicp_lang

type formal_class =
  | Fselector  (** receives literal 0 at every site *)
  | Fimm of Value.t  (** same literal everywhere *)
  | Fcollide  (** literal, different per site *)
  | Fpass  (** caller forwards an unmodified formal *)
  | Flocal_const of Value.t  (** caller computes a local constant *)
  | Flocal_collide  (** like [Flocal_const], per-site values *)
  | Fprune of Value.t
      (** constant only on the arm a flow-sensitively-known formal selects *)
  | Fout of Value.t
      (** out parameter: the callee stores this constant before returning *)
  | Fbot
  | Fglobal  (** a global passed by reference *)

type profile = {
  g_name : string;
  g_seed : int;
  g_procs : int;
  g_fanout : int;
  g_formals_min : int;
  g_formals_max : int;
  g_extra_calls : int * int;
  g_call_window : int;
  g_target_set : int;
  g_cluster_root_pool : bool;
  g_extra_to_leaves : bool;
  g_back_edge_prob : float;
  g_formal_uses : int;
  g_chain : int;
  g_w_imm : float;
  g_w_collide : float;
  g_w_pass : float;
  g_w_local_const : float;
  g_w_local_collide : float;
  g_w_prune : float;
  g_w_out : float;
  g_w_bot : float;
  g_w_global_arg : float;
  g_use_selector : bool;
  g_float_frac : float;
  g_float_local_frac : float;
  g_float_bd_frac : float;
  g_float_sc_frac : float;
  g_blockdata_pure : int;
  g_blockdata_mod : int;
  g_setconst_globals : int;
  g_noise_globals : int;
  g_global_read_prob : float;
  g_read_cluster : bool;
  g_common_block : int;
  g_const_leaf_only : bool;
  g_global_write_prob : float;
  g_loops : float;
  g_dispatch : int;
      (** number of mode-dispatch clusters appended after the calibrated
          body: a dispatcher called from [main] with two distinct constant
          modes branches on the mode and invokes a utility with a cluster
          constant on the arm every mode selects.  Flow-sensitively the
          modes meet to ⊥ so both arms look live and the utility's formal
          melts; per value context the dead arm is pruned and the formal
          is constant — the value-context method's precision signature.
          [0] (the whole paper suite) adds nothing and draws no random
          numbers, so calibrated programs are byte-identical *)
}

val default_profile : profile

(** Generate a {!Sema.check}-clean program; same profile, same program. *)
val generate : profile -> Ast.program

(** Modest profiles for property tests, every mechanism enabled; one seed
    in three has guarded recursion. *)
val small_profile : int -> profile

(** Distribution of {!formal_class} draws for a profile (calibration aid). *)
val class_histogram : profile -> (string * int) list
