(** The paper's Figure 1 example program (reconstructed; see DESIGN.md) and
    the expected per-method constant sets it must induce. *)

val source : string
val program : Fsicp_lang.Ast.program

(** [(method name, [(proc, formal index)])] — the published table. *)
val expected : (string * (string * int) list) list
