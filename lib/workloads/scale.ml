open Fsicp_lang

type family = Chain | Fanout | Common | Recursion | Mixed

let family_to_string = function
  | Chain -> "chain"
  | Fanout -> "fanout"
  | Common -> "common"
  | Recursion -> "recursion"
  | Mixed -> "mixed"

let all_families = [ Chain; Fanout; Common; Recursion; Mixed ]

let family_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "chain" -> Ok Chain
  | "fanout" -> Ok Fanout
  | "common" -> Ok Common
  | "recursion" -> Ok Recursion
  | "mixed" -> Ok Mixed
  | other ->
      Error
        (Printf.sprintf
           "unknown corpus family %S (expected chain, fanout, common, \
            recursion or mixed)"
           other)

type spec = { sp_family : family; sp_procs : int; sp_seed : int }

let max_procs = 2_000_000

let parse_procs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 2 && n <= max_procs -> Ok n
  | Some n ->
      Error
        (Printf.sprintf "procs must be between 2 and %d, got %d" max_procs n)
  | None -> Error (Printf.sprintf "procs must be an integer, got %S" s)

let parse_seed s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "seed must be an integer, got %S" s)

(* ------------------------------------------------------------------ *)
(* Shared building blocks                                              *)
(* ------------------------------------------------------------------ *)

(* Procedure [0] is "main"; every other index [i] is procedure "f<i>".
   Globals are "g<k>".  Formals are "a"/"b", locals "t"/"u" — all fixed
   spellings, so the pretty-print → parse round trip is trivially exact. *)
let fname i = if i = 0 then "main" else "f" ^ string_of_int i
let gname k = "g" ^ string_of_int k

let lit n = Ast.int n
let v = Ast.var

(* The small-global discipline that keeps every interprocedural closure
   bounded: readers touch the block-data pool [0, ro), writers the
   uninitialised pool [ro, ro + rw).  GREF/GMOD of any procedure is then a
   subset of a constant-size universe, so MOD/REF, alias closure, entry
   meets and call records all stay O(1) per procedure. *)
let ro_globals = 4
let rw_globals = 4

let read_global rng =
  Ast.assign "u" (v (gname (Prng.int rng ro_globals)))

let write_global rng e =
  Ast.assign (gname (ro_globals + Prng.int rng rw_globals)) e

(* ------------------------------------------------------------------ *)
(* Chain: long call chains in bounded segments                         *)
(* ------------------------------------------------------------------ *)

(* Segment depth: long enough that the constant mutates through hundreds
   of frames (a real wavefront critical path), short enough that no
   per-procedure machinery meets a 10⁶-deep anything. *)
let chain_segment = 500

(* Indices [base, base+count) form ⌈count/chain_segment⌉ descending
   chains; main calls each segment head with literal arguments.  Each hop
   rebinds [t = a + inc] and passes it on: the argument is a local — the
   flow-insensitive method sees ⊥ — while the flow-sensitive method
   tracks a distinct constant at every depth. *)
let build_chain rng ~base ~count : Ast.proc list * Ast.stmt list =
  let procs = ref [] and mains = ref [] in
  let i = ref (base + count - 1) in
  (* Build tail-first so each procedure knows whether a successor exists. *)
  while !i >= base do
    let idx = !i in
    let seg_pos = (idx - base) mod chain_segment in
    let last = idx = base + count - 1 || seg_pos = chain_segment - 1 in
    let inc = 1 + Prng.int rng 3 in
    let body =
      [ Ast.assign "t" (Ast.binary Ops.Add (v "a") (lit inc)) ]
      @ (if Prng.int rng 8 = 0 then [ read_global rng; Ast.print (v "u") ]
         else [])
      @ (if Prng.int rng 16 = 0 then
           [
             Ast.if_
               (Ast.binary Ops.Gt (v "b") (lit 0))
               [ write_global rng (v "t") ]
               [];
           ]
         else [])
      @ (if last then [] else [ Ast.call (fname (idx + 1)) [ v "t"; v "b" ] ])
      @ [ Ast.print (v "a") ]
    in
    if seg_pos = 0 then
      mains :=
        Ast.call (fname idx) [ lit (Prng.int rng 100); lit (1 + Prng.int rng 4) ]
        :: !mains;
    procs :=
      { Ast.pname = fname idx; formals = [ "a"; "b" ]; body;
        ppos = Ast.no_pos }
      :: !procs;
    decr i
  done;
  (!procs, List.rev !mains)

(* ------------------------------------------------------------------ *)
(* Fanout: wide B-ary call tree                                        *)
(* ------------------------------------------------------------------ *)

let fanout_b = 8

(* Heap layout over [base, base+count): the children of local index [j]
   are [B*j + 1 .. B*j + B].  Maximal wavefront width, O(log n) depth. *)
let build_fanout rng ~base ~count : Ast.proc list * Ast.stmt list =
  let child j c = (fanout_b * j) + c + 1 in
  let mk j =
    let idx = base + j in
    let calls = ref [] in
    for c = fanout_b - 1 downto 0 do
      let k = child j c in
      if k < count then
        (* Alternate a pass-through formal with a fresh literal: sibling
           subtrees meet different constants at the same formal. *)
        let arg =
          if Prng.bool rng 0.5 then v "t" else lit (Prng.int rng 50)
        in
        calls := Ast.call (fname (base + k)) [ arg; v "b" ] :: !calls
    done;
    let body =
      [ Ast.assign "t" (Ast.binary Ops.Mul (v "a") (lit 2)) ]
      @ (if Prng.int rng 4 = 0 then [ read_global rng; Ast.print (v "u") ]
         else [])
      @ !calls
      @ [ Ast.print (v "t") ]
    in
    { Ast.pname = fname idx; formals = [ "a"; "b" ]; body; ppos = Ast.no_pos }
  in
  let procs = List.init count mk in
  let mains =
    [ Ast.call (fname base) [ lit (Prng.int rng 50); lit (Prng.int rng 9) ] ]
  in
  (procs, mains)

(* ------------------------------------------------------------------ *)
(* Common: COMMON-block-style global clusters                          *)
(* ------------------------------------------------------------------ *)

let common_blocks = 8
let common_block_size = 8
let common_globals = common_blocks * common_block_size

(* Blocks 0..5 are read-only — their block-data constants survive the
   flow-insensitive kill and reach every member's entry — while blocks 6
   and 7 contain writers, so their globals demote to ⊥ program-wide. *)
let common_written_block b = b >= 6

let build_common rng ~base ~count : Ast.proc list * Ast.stmt list =
  let fan = 16 in
  let per_block = count / common_blocks in
  let procs = ref [] and mains = ref [] in
  for b = common_blocks - 1 downto 0 do
    let bstart = base + (b * per_block) in
    let bcount =
      if b = common_blocks - 1 then count - (b * per_block) else per_block
    in
    let g j = gname ((b * common_block_size) + j) in
    for j = bcount - 1 downto 0 do
      let idx = bstart + j in
      let calls = ref [] in
      for c = fan - 1 downto 0 do
        let k = (fan * j) + c + 1 in
        if k < bcount then
          calls := Ast.call (fname (bstart + k)) [ v "t" ] :: !calls
      done;
      let j1 = Prng.int rng common_block_size in
      let j2 = Prng.int rng common_block_size in
      let body =
        [
          Ast.assign "t"
            (Ast.binary Ops.Add (v (g j1)) (v (g j2)));
        ]
        @ (if common_written_block b && Prng.int rng 8 = 0 then
             [ Ast.assign (g (Prng.int rng common_block_size)) (v "a") ]
           else [])
        @ !calls
        @ [ Ast.print (v "t"); Ast.print (v "a") ]
      in
      procs :=
        { Ast.pname = fname idx; formals = [ "a" ]; body; ppos = Ast.no_pos }
        :: !procs;
      if j = 0 then
        mains := Ast.call (fname idx) [ lit (Prng.int rng 20) ] :: !mains
    done
  done;
  (!procs, List.rev !mains)

(* ------------------------------------------------------------------ *)
(* Recursion: many 3-cliques hung off a binary spine                   *)
(* ------------------------------------------------------------------ *)

(* Unit layout: spine s, clique members x → y → z → x (the z → x edge is
   the unique back edge of the unit).  Spines form a binary heap, so the
   depth is O(log n) while every unit still exercises the
   flow-insensitive back-edge seed and the SCC entry-vector memo. *)
let build_recursion rng ~base ~count : Ast.proc list * Ast.stmt list =
  let units = count / 4 in
  let extra = count - (units * 4) in
  let spine u = base + (u * 4) in
  let procs = ref [] and mains = ref [] in
  for u = units - 1 downto 0 do
    let s = spine u and x = spine u + 1 in
    let y = spine u + 2 and z = spine u + 3 in
    let spine_calls = ref [] in
    let l = (2 * u) + 1 and r = (2 * u) + 2 in
    if r < units then
      spine_calls := Ast.call (fname (spine r)) [ v "a" ] :: !spine_calls;
    if l < units then
      spine_calls :=
        Ast.call (fname (spine l)) [ Ast.binary Ops.Add (v "a") (lit 1) ]
        :: !spine_calls;
    procs :=
      [
        {
          Ast.pname = fname s;
          formals = [ "a" ];
          body =
            (Ast.call (fname x) [ lit (Prng.int rng 10) ] :: !spine_calls)
            @ [ Ast.print (v "a") ];
          ppos = Ast.no_pos;
        };
        {
          Ast.pname = fname x;
          formals = [ "a" ];
          body =
            [
              Ast.if_
                (Ast.binary Ops.Gt (v "a") (lit 0))
                [ Ast.call (fname y) [ Ast.binary Ops.Sub (v "a") (lit 1) ] ]
                [];
              Ast.print (v "a");
            ];
          ppos = Ast.no_pos;
        };
        {
          Ast.pname = fname y;
          formals = [ "a" ];
          body =
            [
              Ast.assign "t" (Ast.binary Ops.Add (v "a") (lit 1));
              Ast.call (fname z) [ v "t" ];
            ]
            @ (if Prng.int rng 8 = 0 then [ read_global rng; Ast.print (v "u") ]
               else []);
          ppos = Ast.no_pos;
        };
        {
          Ast.pname = fname z;
          formals = [ "a" ];
          body =
            [
              Ast.if_
                (Ast.binary Ops.Gt (v "a") (lit 2))
                [ Ast.call (fname x) [ Ast.binary Ops.Sub (v "a") (lit 2) ] ]
                [];
              Ast.print (v "a");
            ];
          ppos = Ast.no_pos;
        };
      ]
      @ !procs
  done;
  (* Remainder procedures: trivial leaves called straight from main. *)
  for e = extra - 1 downto 0 do
    let idx = base + (units * 4) + e in
    procs :=
      {
        Ast.pname = fname idx;
        formals = [ "a" ];
        body = [ Ast.print (v "a") ];
        ppos = Ast.no_pos;
      }
      :: !procs;
    mains := Ast.call (fname idx) [ lit e ] :: !mains
  done;
  if units > 0 then
    mains := Ast.call (fname (spine 0)) [ lit (Prng.int rng 10) ] :: !mains;
  (!procs, !mains)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let blockdata_for rng n_globals =
  (* Initialise the read-only pool (and, for common corpora, every block)
     with small constants; written globals stay uninitialised. *)
  List.init n_globals (fun k -> (gname k, Value.Int (7 + (3 * k) + Prng.int rng 5)))
  |> List.filteri (fun k _ ->
         if n_globals = common_globals then
           not (common_written_block (k / common_block_size))
         else k < ro_globals)

let generate (s : spec) : Ast.program =
  if s.sp_procs < 2 then
    invalid_arg
      (Printf.sprintf "Scale.generate: need at least 2 procedures, got %d"
         s.sp_procs);
  let rng = Prng.create s.sp_seed in
  let count = s.sp_procs - 1 in
  let sections =
    match s.sp_family with
    | Chain -> [ (build_chain, count) ]
    | Fanout -> [ (build_fanout, count) ]
    | Common -> [ (build_common, count) ]
    | Recursion -> [ (build_recursion, count) ]
    | Mixed ->
        (* Four consecutive sections; the PRNG jitters the split so
           different seeds exercise different shard balances. *)
        let cut lo hi = lo + Prng.int rng (max 1 (hi - lo)) in
        let q = count / 4 in
        let c1 = cut (q / 2) (q + (q / 2)) in
        let c2 = cut (q / 2) (q + (q / 2)) in
        let c3 = cut (q / 2) (q + (q / 2)) in
        let c4 = count - c1 - c2 - c3 in
        [
          (build_chain, c1);
          (build_fanout, c2);
          (build_common, c3);
          (build_recursion, c4);
        ]
  in
  let n_globals =
    match s.sp_family with
    | Common | Mixed -> common_globals
    | Chain | Fanout | Recursion -> ro_globals + rw_globals
  in
  let base = ref 1 in
  let rev_sections =
    List.filter_map
      (fun (build, cnt) ->
        if cnt <= 0 then None
        else begin
          let r = build rng ~base:!base ~count:cnt in
          base := !base + cnt;
          Some r
        end)
      sections
  in
  let procs = List.concat_map fst rev_sections in
  let main_body = List.concat_map snd rev_sections in
  let main =
    { Ast.pname = "main"; formals = []; body = main_body; ppos = Ast.no_pos }
  in
  let blockdata = blockdata_for rng n_globals in
  (* Canonical global order — plain [global] declarations first, block-data
     names after, exactly as a pretty-print → parse round trip reconstructs
     them — so the direct AST is [Ast.equal_program] to its text path. *)
  let all_globals = List.init n_globals gname in
  let plain =
    List.filter (fun g -> not (List.mem_assoc g blockdata)) all_globals
  in
  let prog =
    {
      Ast.globals = plain @ List.map fst blockdata;
      blockdata;
      procs = main :: procs;
      main = "main";
    }
  in
  Sema.check_exn prog;
  prog

let stats (p : Ast.program) : (string * int) list =
  let calls = ref 0 and stmts = ref 0 and branches = ref 0 in
  List.iter
    (fun (pr : Ast.proc) ->
      Ast.iter_stmts
        (fun s ->
          incr stmts;
          match s.Ast.sdesc with
          | Ast.Call _ -> incr calls
          | Ast.If _ | Ast.While _ -> incr branches
          | Ast.Assign _ | Ast.Return | Ast.Print _ -> ())
        pr.Ast.body)
    p.Ast.procs;
  [
    ("procs", List.length p.Ast.procs);
    ("call_sites", !calls);
    ("stmts", !stmts);
    ("branches", !branches);
    ("globals", List.length p.Ast.globals);
    ("blockdata", List.length p.Ast.blockdata);
  ]

let digest (p : Ast.program) : string =
  Digest.to_hex (Digest.string (Pretty.program_to_string p))
