(** Deterministic pseudo-random number generator for workload synthesis.

    A splitmix64-style mixer over OCaml's native ints.  The generator is
    explicit-state and seed-stable across runs and platforms, so every
    synthetic benchmark is reproducible — the whole point of the workload
    suite.  (The global [Random] module is deliberately not used anywhere
    in this repository.) *)

type t = { mutable state : int64 }

let create seed = { state = Int64.logxor (Int64.of_int seed) 0x2545F4914F6CDD1DL }

(* The canonical splitmix64 (Steele–Lea–Flood), on full-width Int64;
   the result is truncated to OCaml's non-negative int range at the end. *)
let next (t : t) : int =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

(** Uniform int in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

(** Uniform int in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

(** Uniform float in [0, 1). *)
let float t = Stdlib.float_of_int (int t 1_000_000) /. 1_000_000.0

(** Bernoulli draw with probability [p]. *)
let bool t p = float t < p

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

(** Weighted choice: [(weight, value)] pairs, weights non-negative and not
    all zero. *)
let weighted t (choices : (float * 'a) list) : 'a =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: no positive weight";
  let x = float t *. total in
  let rec go acc = function
    | [] -> snd (List.hd (List.rev choices))
    | (w, v) :: tl -> if acc +. w > x then v else go (acc +. w) tl
  in
  go 0.0 choices

(** Fisher–Yates shuffle (fresh list). *)
let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
