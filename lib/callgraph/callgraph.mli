(** The Program Call Graph (PCG): procedures reachable from main, one edge
    per call site, DFS back-edge classification, and the traversal orders
    the paper's methods rely on.

    Nodes are dense {!Fsicp_prog.Prog.Proc.id}s minted by {!build} — the id
    of a procedure {e is} its reverse-postorder position, so the forward
    topological order is just [0 .. n-1] and per-procedure analysis state
    can live in plain arrays.  Names survive only for parsing ({!proc_id})
    and printing ({!proc_name}). *)

open Fsicp_lang
open Fsicp_prog

type edge = {
  caller : Prog.Proc.id;
  callee : Prog.Proc.id;
  cs_index : int;  (** textual call-site index within the caller *)
  back : bool;  (** classified as a PCG back edge by the build DFS *)
}

type t = {
  mutable prog : Ast.program;
      (** the analysed AST; replaced only by {!set_prog} after a
          shape-preserving procedure edit *)
  mutable asts : (string, Ast.proc) Hashtbl.t;
      (** name → AST index over [prog.procs], kept in sync by {!set_prog};
          makes {!proc_ast} O(1) instead of a program-wide list scan *)
  db : Prog.t;  (** name <-> id bijection for the reachable procedures *)
  nodes : Prog.Proc.id array;
      (** reachable procedures in reverse postorder from main;
          [nodes.(i)] has id [i] *)
  edges : edge list;  (** all call edges, in global discovery order *)
  out_adj : edge array array;
      (** per caller id: out edges in call-site order, indexed by
          [cs_index] (every call site of a reachable procedure targets a
          reachable procedure, so the rows are dense) *)
  in_adj : edge array array;  (** per callee id: in edges, global order *)
  cs_base : int array;
      (** caller-major call-site numbering: call site [(p, i)] is global
          site [cs_base.(p) + i]; length [n_procs + 1] *)
  back_bits : Prog.Bits.t;  (** back-edge flags over the global numbering *)
}

(** Build the PCG, restricted to procedures reachable from the entry.  An
    edge whose target is on the DFS stack at discovery time is a back edge
    (self-recursion included). *)
val build : Ast.program -> t

val n_procs : t -> int
val proc_id : t -> string -> Prog.Proc.id option
val proc_id_exn : t -> string -> Prog.Proc.id
val proc_name : t -> Prog.Proc.id -> string

val proc_ast : t -> Prog.Proc.id -> Ast.proc
(** The AST of a reachable procedure. *)

val is_reachable : t -> string -> bool
val is_back_edge : t -> edge -> bool

(** O(1) back-edge query by [(caller, cs_index)] against the back-edge
    bitset, without materialising an [edge]. *)
val is_back_edge_at : t -> caller:Prog.Proc.id -> cs_index:int -> bool

(** Callers before callees, up to back edges (DFS reverse postorder).
    Equal to [[| 0; ...; n-1 |]] by construction. *)
val forward_order : t -> Prog.Proc.id array

(** Callees before callers, up to back edges — the paper's backward walk. *)
val reverse_order : t -> Prog.Proc.id array

val in_edges : t -> Prog.Proc.id -> edge array
val out_edges : t -> Prog.Proc.id -> edge array

val n_call_sites : t -> Prog.Proc.id -> int
(** Number of call sites in a procedure = [Array.length (out_edges t p)]. *)

val edge_at : t -> caller:Prog.Proc.id -> cs_index:int -> edge

val has_cycles : t -> bool

(** Downstream wavefront cone: forward-edge closure of [seeds] (seeds
    included), ascending id — i.e. forward-traversal — order.  Back edges
    do not extend the cone: their entry-meet contribution comes from the
    flow-insensitive solution, which the incremental re-solve diffs
    separately.  Runs on the dense adjacency. *)
val cone : t -> seeds:Prog.Proc.id list -> Prog.Proc.id array

(** Swap in an edited AST.  In contract only when the PCG shape is
    unchanged (same reachable procedures, same callee sequence per
    procedure); the incremental engine verifies this before calling. *)
val set_prog : t -> Ast.program -> unit

(** |back edges| / |edges| — the paper's measure of how flow-insensitive
    the combined FS solution is (§3.2): 0 means pure flow-sensitive. *)
val back_edge_ratio : t -> float

(** Strongly connected components (Tarjan), reverse topological order of
    the condensation. *)
val sccs : t -> string list list

val pp : t Fmt.t
