(** The Program Call Graph (PCG): procedures reachable from main, one edge
    per call site, DFS back-edge classification, and the traversal orders
    the paper's methods rely on. *)

open Fsicp_lang

type edge = {
  caller : string;
  callee : string;
  cs_index : int;  (** textual call-site index within the caller *)
}

type t = {
  prog : Ast.program;
  nodes : string array;  (** reachable procedures, reverse postorder from main *)
  edges : edge list;
  index : (string, int) Hashtbl.t;
  back_edges : (string * int, unit) Hashtbl.t;
      (** (caller, cs_index) of edges classified as back edges *)
  out_tbl : (string, edge list) Hashtbl.t;
      (** caller -> out edges, call-site order *)
  in_tbl : (string, edge list) Hashtbl.t;
      (** callee -> in edges, in global [edges] order *)
}

(** Build the PCG, restricted to procedures reachable from the entry.  An
    edge whose target is on the DFS stack at discovery time is a back edge
    (self-recursion included). *)
val build : Ast.program -> t

val node_index : t -> string -> int option
val is_reachable : t -> string -> bool
val is_back_edge : t -> edge -> bool

(** O(1) back-edge query by [(caller, cs_index)] against the precomputed
    back-edge set, without materialising an [edge]. *)
val is_back_edge_at : t -> caller:string -> cs_index:int -> bool

(** Callers before callees, up to back edges (DFS reverse postorder). *)
val forward_order : t -> string array

(** Callees before callers, up to back edges — the paper's backward walk. *)
val reverse_order : t -> string array

val in_edges : t -> string -> edge list
val out_edges : t -> string -> edge list
val has_cycles : t -> bool

(** |back edges| / |edges| — the paper's measure of how flow-insensitive
    the combined FS solution is (§3.2): 0 means pure flow-sensitive. *)
val back_edge_ratio : t -> float

(** Strongly connected components (Tarjan), reverse topological order of
    the condensation. *)
val sccs : t -> string list list

val pp : t Fmt.t
