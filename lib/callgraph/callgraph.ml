(** The Program Call Graph (PCG) and its traversal orders.

    Nodes are procedures; there is one edge per call {e site} (the paper's
    methods are call-site-sensitive: each call site carries its own constant
    list).  The flow-sensitive ICP needs:

    - a forward traversal order in which a procedure is visited after as many
      of its callers as possible (reverse postorder of a DFS from [main]);
    - a classification of call edges into {e forward} edges (caller visited
      before callee in that order) and {e back} edges — the back edges are
      the ones for which the flow-insensitive solution is substituted
      (paper §3.2);
    - the back-edge / total-edge ratio, the paper's measure of how
      flow-insensitive the combined solution is;
    - Tarjan's strongly-connected components, used to detect recursion and
      by the tests.

    Only procedures reachable from [main] participate, matching the paper's
    measurements ("we only include measurements for procedures that are
    reachable from the main procedure").

    The build mints the program database ({!Fsicp_prog.Prog}): each
    reachable procedure's {!Prog.Proc.id} is its reverse-postorder index,
    adjacency is dense arrays indexed by id, and the back-edge set is a flat
    bitset over the caller-major call-site numbering — no string hashing on
    any analysis path. *)

open Fsicp_lang
open Fsicp_prog

type edge = {
  caller : Prog.Proc.id;
  callee : Prog.Proc.id;
  cs_index : int;
      (** call-site index within the caller, in textual order; matches the
          [cs_id] assigned by {!Fsicp_cfg.Lower} *)
  back : bool;
}

type t = {
  mutable prog : Ast.program;  (** see {!set_prog} *)
  mutable asts : (string, Ast.proc) Hashtbl.t;
      (** name → AST index over [prog.procs]; rebuilt by {!set_prog}.  The
          list scan it replaces made every per-procedure [proc_ast] O(n) —
          quadratic across lowering on the 10⁴–10⁶-procedure corpora. *)
  db : Prog.t;
  nodes : Prog.Proc.id array;
  edges : edge list;
  out_adj : edge array array;
  in_adj : edge array array;
  cs_base : int array;
  back_bits : Prog.Bits.t;
}

let index_asts (prog : Ast.program) : (string, Ast.proc) Hashtbl.t =
  let asts = Hashtbl.create (2 * List.length prog.Ast.procs) in
  (* First definition wins, matching [Ast.find_proc_exn]'s front-to-back
     scan (duplicate procedures are a [Sema.check] error anyway). *)
  List.iter
    (fun (p : Ast.proc) ->
      if not (Hashtbl.mem asts p.Ast.pname) then
        Hashtbl.add asts p.Ast.pname p)
    prog.Ast.procs;
  asts

let n_procs t = Prog.n_procs t.db
let proc_id t name = Prog.proc_id t.db name
let proc_id_exn t name = Prog.proc_id_exn t.db name
let proc_name t id = Prog.proc_name t.db id

let proc_ast t id =
  let name = proc_name t id in
  match Hashtbl.find_opt t.asts name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Ast.find_proc_exn: %s" name)

let is_reachable t name = Prog.mem t.db name

(** Build the PCG of [prog], restricted to procedures reachable from the
    entry.  Back edges are classified by the DFS that discovers the graph:
    an edge to a procedure currently on the DFS stack is a back edge (this
    includes self-recursion).  Cross and forward DFS edges are "forward" for
    the topological traversal, since their target is finished before the
    source in reverse postorder. *)
let build (prog : Ast.program) : t =
  let asts = index_asts prog in
  let find_ast name =
    match Hashtbl.find_opt asts name with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Ast.find_proc_exn: %s" name)
  in
  (* Discovery pass over names; ids exist only once the RPO is known.  The
     DFS uses an explicit frame stack — a 10⁵-deep generated call chain
     would overflow the OS stack with native recursion — but visits edges
     in exactly the order the recursive formulation did: record the edge,
     descend immediately into a fresh non-back callee, resume the caller's
     remaining call sites afterwards. *)
  let on_stack = Hashtbl.create 16 in
  let finished = Hashtbl.create 16 in
  let order = ref [] in
  let raw_edges = ref [] in
  let frames = ref [] in
  let push name =
    Hashtbl.replace on_stack name ();
    let p = find_ast name in
    frames := (name, Array.of_list (Ast.call_sites p), ref 0) :: !frames
  in
  push prog.Ast.main;
  let running = ref true in
  while !running do
    match !frames with
    | [] -> running := false
    | (name, sites, next) :: rest ->
        if !next < Array.length sites then begin
          let cs_index = !next in
          let callee, _args, _pos = sites.(cs_index) in
          incr next;
          let back = Hashtbl.mem on_stack callee in
          raw_edges := (name, callee, cs_index, back) :: !raw_edges;
          if (not back) && not (Hashtbl.mem finished callee) then push callee
        end
        else begin
          frames := rest;
          Hashtbl.remove on_stack name;
          Hashtbl.replace finished name ();
          order := name :: !order
        end
  done;
  let db = Prog.of_names (Array.of_list !order) in
  let n = Prog.n_procs db in
  let nodes = Prog.procs db in
  let edges =
    List.rev_map
      (fun (caller, callee, cs_index, back) ->
        {
          caller = Prog.proc_id_exn db caller;
          callee = Prog.proc_id_exn db callee;
          cs_index;
          back;
        })
      !raw_edges
  in
  (* Dense adjacency.  Every call site of a reachable procedure targets a
     reachable procedure, so each caller's out-row is exactly its call
     sites: row length = call-site count, row index = cs_index. *)
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  List.iter
    (fun e ->
      out_deg.((e.caller :> int)) <- out_deg.((e.caller :> int)) + 1;
      in_deg.((e.callee :> int)) <- in_deg.((e.callee :> int)) + 1)
    edges;
  let dummy =
    match edges with [] -> None | e :: _ -> Some e
  in
  let mk deg =
    Array.init n (fun i ->
        match dummy with
        | None -> [||]
        | Some d -> Array.make deg.(i) d)
  in
  let out_adj = mk out_deg and in_adj = mk in_deg in
  let in_fill = Array.make n 0 in
  List.iter
    (fun e ->
      let c = (e.caller :> int) and k = (e.callee :> int) in
      out_adj.(c).(e.cs_index) <- e;
      in_adj.(k).(in_fill.(k)) <- e;
      in_fill.(k) <- in_fill.(k) + 1)
    edges;
  (* Caller-major global call-site numbering and the back-edge bitset. *)
  let cs_base = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    cs_base.(i + 1) <- cs_base.(i) + out_deg.(i)
  done;
  let back_bits = Prog.Bits.create cs_base.(n) in
  List.iter
    (fun e ->
      if e.back then
        Prog.Bits.set back_bits (cs_base.((e.caller :> int)) + e.cs_index))
    edges;
  { prog; asts; db; nodes; edges; out_adj; in_adj; cs_base; back_bits }

let is_back_edge _t (e : edge) = e.back

(** O(1) back-edge query by call site, without materialising the edge. *)
let is_back_edge_at t ~(caller : Prog.Proc.id) ~cs_index =
  Prog.Bits.mem t.back_bits (t.cs_base.((caller :> int)) + cs_index)

(** Forward topological traversal order (callers before callees, up to back
    edges): the DFS reverse postorder computed by {!build}. *)
let forward_order t = Array.copy t.nodes

(** Reverse topological order (callees before callers, up to back edges);
    the order of the paper's "backward walk" and of the USE computation. *)
let reverse_order t =
  let n = Array.length t.nodes in
  Array.init n (fun i -> t.nodes.(n - 1 - i))

(** Call edges into [callee], in global edge order. *)
let in_edges t (callee : Prog.Proc.id) = t.in_adj.((callee :> int))

(** Call edges out of [caller], in call-site order ([cs_index]-indexed). *)
let out_edges t (caller : Prog.Proc.id) = t.out_adj.((caller :> int))

let n_call_sites t (p : Prog.Proc.id) = Array.length t.out_adj.((p :> int))
let edge_at t ~caller ~cs_index = (out_edges t caller).(cs_index)
let has_cycles t = Prog.Bits.count t.back_bits > 0

(** Downstream wavefront cone: the forward-edge closure of [seeds] —
    every procedure whose flow-sensitive entry environment can be reached
    by a chain of {e forward} call edges from a seed, seeds included.
    Back edges are excluded: their contribution to an entry meet comes
    from the flow-insensitive seed solution, not from the caller's
    flow-sensitive call records, so an edit's effects never propagate
    along them (the incremental re-solve accounts for them separately, by
    diffing the flow-insensitive call records).

    Runs on the dense out-adjacency with a flat mark array; the result is
    in ascending id order, which is the reverse-postorder forward
    traversal order — exactly the sub-wavefront the incremental re-solve
    drives. *)
let cone t ~(seeds : Prog.Proc.id list) : Prog.Proc.id array =
  let n = n_procs t in
  let marked = Array.make n false in
  let stack = ref [] in
  List.iter
    (fun (pid : Prog.Proc.id) ->
      let i = (pid :> int) in
      if not marked.(i) then begin
        marked.(i) <- true;
        stack := i :: !stack
      end)
    seeds;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: tl ->
        stack := tl;
        Array.iter
          (fun e ->
            if not e.back then begin
              let k = (e.callee :> int) in
              if not marked.(k) then begin
                marked.(k) <- true;
                stack := k :: !stack
              end
            end)
          t.out_adj.(i)
  done;
  let count = ref 0 in
  Array.iter (fun m -> if m then incr count) marked;
  let out = Array.make !count t.nodes.(0) in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if marked.(i) then begin
      out.(!j) <- t.nodes.(i);
      incr j
    end
  done;
  out

(** Swap in a new AST after a procedure-body edit, for {!proc_ast} and
    lowering.  In contract only when the PCG shape is unchanged: same
    reachable procedures, same callee sequence per procedure (the
    incremental engine checks this before calling). *)
let set_prog t (prog : Ast.program) =
  t.prog <- prog;
  t.asts <- index_asts prog

(** Back-edge ratio |back| / |edges| — the paper's measure of how much
    flow-insensitive information the combined FS solution uses (§3.2).
    0 when the PCG is acyclic (pure flow-sensitive); approaches 1 as the
    solution degenerates to the flow-insensitive one. *)
let back_edge_ratio t =
  let total = Prog.Bits.length t.back_bits in
  if total = 0 then 0.0
  else float_of_int (Prog.Bits.count t.back_bits) /. float_of_int total

(** Strongly-connected components (Tarjan), in reverse topological order of
    the condensation.  Runs on the dense int graph; names are restored only
    in the returned components. *)
let sccs (t : t) : string list list =
  let n = n_procs t in
  let indices = Array.make n (-1) in
  let lowlink = Array.make n (-1) in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    indices.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Array.iter
      (fun e ->
        let w = (e.callee :> int) in
        if indices.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w))
      t.out_adj.(v);
    if lowlink.(v) = indices.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: tl ->
            stack := tl;
            on_stack.(w) <- false;
            let name = Prog.proc_name t.db t.nodes.(w) in
            if w = v then name :: acc else pop (name :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if indices.(v) < 0 then strongconnect v
  done;
  List.rev !comps

let pp ppf t =
  Fmt.pf ppf "PCG: %d node(s), %d edge(s), %d back edge(s)@\n"
    (Array.length t.nodes) (List.length t.edges)
    (Prog.Bits.count t.back_bits);
  List.iter
    (fun e ->
      Fmt.pf ppf "  %s --[cs%d]--> %s%s@\n" (proc_name t e.caller) e.cs_index
        (proc_name t e.callee)
        (if e.back then " (back)" else ""))
    t.edges
