(** The Program Call Graph (PCG) and its traversal orders.

    Nodes are procedures; there is one edge per call {e site} (the paper's
    methods are call-site-sensitive: each call site carries its own constant
    list).  The flow-sensitive ICP needs:

    - a forward traversal order in which a procedure is visited after as many
      of its callers as possible (reverse postorder of a DFS from [main]);
    - a classification of call edges into {e forward} edges (caller visited
      before callee in that order) and {e back} edges — the back edges are
      the ones for which the flow-insensitive solution is substituted
      (paper §3.2);
    - the back-edge / total-edge ratio, the paper's measure of how
      flow-insensitive the combined solution is;
    - Tarjan's strongly-connected components, used to detect recursion and
      by the tests.

    Only procedures reachable from [main] participate, matching the paper's
    measurements ("we only include measurements for procedures that are
    reachable from the main procedure"). *)

open Fsicp_lang

type edge = {
  caller : string;
  callee : string;
  cs_index : int;
      (** call-site index within the caller, in textual order; matches the
          [cs_id] assigned by {!Fsicp_cfg.Lower} *)
}

type t = {
  prog : Ast.program;
  nodes : string array;  (** reachable procedures, in reverse postorder from main *)
  edges : edge list;  (** all call edges between reachable procedures *)
  index : (string, int) Hashtbl.t;  (** node name -> position in [nodes] *)
  back_edges : (string * int, unit) Hashtbl.t;
      (** keys: (caller, cs_index) of edges classified as back edges *)
  out_tbl : (string, edge list) Hashtbl.t;
      (** caller -> out edges, call-site order *)
  in_tbl : (string, edge list) Hashtbl.t;
      (** callee -> in edges, in global [edges] order *)
}

let node_index t name = Hashtbl.find_opt t.index name
let is_reachable t name = Hashtbl.mem t.index name

(** Build the PCG of [prog], restricted to procedures reachable from the
    entry.  Back edges are classified by the DFS that discovers the graph:
    an edge to a procedure currently on the DFS stack is a back edge (this
    includes self-recursion).  Cross and forward DFS edges are "forward" for
    the topological traversal, since their target is finished before the
    source in reverse postorder. *)
let build (prog : Ast.program) : t =
  let index = Hashtbl.create 16 in
  let back_edges = Hashtbl.create 16 in
  let edges = ref [] in
  let on_stack = Hashtbl.create 16 in
  let finished = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs name =
    Hashtbl.replace on_stack name ();
    let p = Ast.find_proc_exn prog name in
    List.iteri
      (fun cs_index (callee, _args, _pos) ->
        edges := { caller = name; callee; cs_index } :: !edges;
        if Hashtbl.mem on_stack callee then
          Hashtbl.replace back_edges (name, cs_index) ()
        else if not (Hashtbl.mem finished callee) then dfs callee)
      (Ast.call_sites p);
    Hashtbl.remove on_stack name;
    Hashtbl.replace finished name ();
    order := name :: !order
  in
  dfs prog.Ast.main;
  let nodes = Array.of_list !order in
  Array.iteri (fun i n -> Hashtbl.replace index n i) nodes;
  let edges = List.rev !edges in
  (* Adjacency tables, so per-procedure edge queries are O(degree) rather
     than a scan of every edge in the program. *)
  let out_tbl = Hashtbl.create 16 in
  let in_tbl = Hashtbl.create 16 in
  let push tbl key e =
    Hashtbl.replace tbl key
      (e :: Option.value (Hashtbl.find_opt tbl key) ~default:[])
  in
  List.iter
    (fun e ->
      push out_tbl e.caller e;
      push in_tbl e.callee e)
    edges;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) out_tbl;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) in_tbl;
  { prog; nodes; edges; index; back_edges; out_tbl; in_tbl }

let is_back_edge t (e : edge) = Hashtbl.mem t.back_edges (e.caller, e.cs_index)

(** O(1) back-edge query by call site, without materialising the edge. *)
let is_back_edge_at t ~caller ~cs_index =
  Hashtbl.mem t.back_edges (caller, cs_index)

(** Forward topological traversal order (callers before callees, up to back
    edges): the DFS reverse postorder computed by {!build}. *)
let forward_order t = Array.copy t.nodes

(** Reverse topological order (callees before callers, up to back edges);
    the order of the paper's "backward walk" and of the USE computation. *)
let reverse_order t =
  let n = Array.length t.nodes in
  Array.init n (fun i -> t.nodes.(n - 1 - i))

(** Call edges into [callee], in global edge order. *)
let in_edges t callee =
  Option.value (Hashtbl.find_opt t.in_tbl callee) ~default:[]

(** Call edges out of [caller], in call-site order. *)
let out_edges t caller =
  Option.value (Hashtbl.find_opt t.out_tbl caller) ~default:[]

let has_cycles t = Hashtbl.length t.back_edges > 0

(** Back-edge ratio |back| / |edges| — the paper's measure of how much
    flow-insensitive information the combined FS solution uses (§3.2).
    0 when the PCG is acyclic (pure flow-sensitive); approaches 1 as the
    solution degenerates to the flow-insensitive one. *)
let back_edge_ratio t =
  let total = List.length t.edges in
  if total = 0 then 0.0
  else float_of_int (Hashtbl.length t.back_edges) /. float_of_int total

(** Strongly-connected components (Tarjan), in reverse topological order of
    the condensation.  Used to detect mutual recursion in tests and by the
    workload generator. *)
let sccs (t : t) : string list list =
  let indices = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let succs name =
    List.filter_map
      (fun e -> if String.equal e.caller name then Some e.callee else None)
      t.edges
  in
  let rec strongconnect v =
    Hashtbl.replace indices v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem indices w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find indices w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find indices v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: tl ->
            stack := tl;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  Array.iter (fun v -> if not (Hashtbl.mem indices v) then strongconnect v) t.nodes;
  List.rev !comps

let pp ppf t =
  Fmt.pf ppf "PCG: %d node(s), %d edge(s), %d back edge(s)@\n"
    (Array.length t.nodes) (List.length t.edges)
    (Hashtbl.length t.back_edges);
  List.iter
    (fun e ->
      Fmt.pf ppf "  %s --[cs%d]--> %s%s@\n" e.caller e.cs_index e.callee
        (if is_back_edge t e then " (back)" else ""))
    t.edges
