open Fsicp_lang
open Fsicp_core
module I = Fsicp_interp.Interp
module Modref = Fsicp_ipa.Modref
module Alias = Fsicp_ipa.Alias
module Lattice = Fsicp_scc.Lattice
module Trace = Fsicp_trace.Trace
module Smap = Map.Make (String)
module Sset = Set.Make (String)

type backend = Symbolic | Z3 of string

type counterexample = {
  cx_proc : string;
  cx_formals : (string * Value.t) list;
  cx_globals : (string * Value.t) list;
  cx_orig_prints : Value.t list;
  cx_trans_prints : Value.t list;
}

type verdict = Proved | Refuted of counterexample | Inconclusive of string

type vc = {
  vc_transform : string;
  vc_proc : string;
  vc_counterpart : string;
  vc_mode : Smt.mode;
  vc_paths : int;
  vc_obligations : Smt.obligation list;
  vc_verdict : verdict;
}

let c_vcs = Trace.counter "verify.vcs"
let c_proved = Trace.counter "verify.proved"
let c_refuted = Trace.counter "verify.refuted"
let c_inconclusive = Trace.counter "verify.inconclusive"
let c_paths = Trace.counter "verify.paths"
let c_obligations = Trace.counter "verify.obligations"

(* ------------------------------------------------------------------ *)
(* Transformations under validation                                    *)
(* ------------------------------------------------------------------ *)

let transform_names = [ "insert"; "fold"; "inline"; "clone" ]
let inline_max_body = 12

let apply_transform ctx ~solution = function
  | "insert" -> Transform.insert_entry_constants ctx solution
  | "fold" -> Fold.fold_program ctx solution
  | "inline" -> fst (Inline.inline_program ctx ~max_body:inline_max_body ())
  | "clone" -> fst (Clone.clone_by_constants ctx ~fs:solution ())
  | name -> invalid_arg (Printf.sprintf "Verify.apply_transform: %s" name)

(* [q__clone3] verifies against (and calls behave like) its base [q]. *)
let base_name name =
  let needle = "__clone" in
  let nl = String.length needle and l = String.length name in
  let rec find i best =
    if i + nl > l then best
    else find (i + 1) (if String.sub name i nl = needle then Some i else best)
  in
  match find 0 None with
  | Some i when i > 0 && i + nl < l ->
      let digits = ref true in
      String.iteri
        (fun j c -> if j >= i + nl && not (c >= '0' && c <= '9') then digits := false)
        name;
      if !digits then String.sub name 0 i else name
  | _ -> name

(* ------------------------------------------------------------------ *)
(* The product symbolic evaluator                                      *)
(* ------------------------------------------------------------------ *)

(* Per-position description of how a by-reference actual aliases: the same
   cell class must appear at the same positions on both sides for the
   uninterpreted-callee assumption to be sound (a callee can observe whether
   two formals share a cell, and whether a formal shares a cell with a
   global it reads). *)
type cell_class = CGlobal of string | CSlot of int

type argv = AByref of string | AVal

type callev = {
  c_base : string;
  c_args : argv list;
  c_vals : Term.t list;  (* observed value of each argument, in order *)
  c_greads : (string * Term.t) list;  (* globals the callee may read *)
}

type event = EPrint of Term.t | ECall of callev | EFault | EDone

type sidest = {
  store : Term.t Smap.t;
  kont : Ast.stmt list;
  guards : Term.t list;  (* pending may-fault divisor terms, reversed *)
  ev : event option;
}

exception Definite_fault

let lookup store x =
  match Smap.find_opt x store with
  | Some t -> t
  | None -> Term.Cst (Value.Int 0)

(* Expression evaluation in the interpreter's pinned order: left operand,
   then right operand, then the operator applies — a division/modulus whose
   divisor is not statically known adds a pending guard at that point (see
   DESIGN.md "Evaluation order").  Raises [Definite_fault] on a statically
   zero divisor. *)
let eval_expr store guards e =
  let rec ev = function
    | Ast.Const v -> Term.Cst v
    | Ast.Var x -> lookup store x
    | Ast.Unary (op, e) -> Term.un op (ev e)
    | Ast.Binary (op, l, r) ->
        let tl = ev l in
        let tr = ev r in
        (match op with
        | Ops.Div | Ops.Mod -> (
            match tr with
            | Term.Cst v -> if not (Value.truthy v) then raise Definite_fault
            | _ -> guards := tr :: !guards)
        | _ -> ());
        Term.bin op tl tr
  in
  ev e

(* Renaming-apart expansion of a transparent (inlinable) callee, mirroring
   the interpreter's call semantics and {!Inline.expand}: by-reference
   actuals substitute textually, compound actuals bind fresh temporaries via
   a prologue (evaluated in argument order, like the interpreter binds
   cells), callee locals rename apart per expansion (the fresh names start
   at [Int 0] in the store, which is the interpreter's zeroing).  The '%'
   in minted names cannot appear in parsed identifiers. *)
let expand_call ~fresh ~globals (callee : Ast.proc) args k =
  let expid = !fresh in
  incr fresh;
  let subst = Hashtbl.create 8 in
  let prologue = ref [] in
  List.iteri
    (fun i formal ->
      match List.nth args i with
      | Ast.Var x -> Hashtbl.replace subst formal x
      | actual ->
          let tmp = Printf.sprintf "%%inl%d_%d" expid i in
          prologue := Ast.assign tmp actual :: !prologue;
          Hashtbl.replace subst formal tmp)
    callee.Ast.formals;
  let rename x =
    match Hashtbl.find_opt subst x with
    | Some y -> y
    | None ->
        if List.exists (String.equal x) globals then x
        else Printf.sprintf "%%inl%d$%s" expid x
  in
  let rec rexpr = function
    | Ast.Const _ as e -> e
    | Ast.Var x -> Ast.Var (rename x)
    | Ast.Unary (op, e) -> Ast.Unary (op, rexpr e)
    | Ast.Binary (op, l, r) -> Ast.Binary (op, rexpr l, rexpr r)
  in
  let rec rstmt s =
    let sdesc =
      match s.Ast.sdesc with
      | Ast.Assign (x, e) -> Ast.Assign (rename x, rexpr e)
      | Ast.If (c, t, f) -> Ast.If (rexpr c, List.map rstmt t, List.map rstmt f)
      | Ast.While (c, b) -> Ast.While (rexpr c, List.map rstmt b)
      | Ast.Call (q, args) -> Ast.Call (q, List.map rexpr args)
      | Ast.Return -> Ast.Return
      | Ast.Print e -> Ast.Print (rexpr e)
    in
    { s with Ast.sdesc }
  in
  List.rev !prologue @ List.map rstmt callee.Ast.body @ k

type stepped =
  | SSide of sidest
  | SBranch of Term.t * sidest * sidest  (* truthiness term, true, false *)
  | SStuck of string

(* One statement of one side.  [expandable q] returns the callee body to
   step into transparently ([None] = treat the call as opaque). *)
let step_side ~expandable ~globals ~modref ~fresh side =
  match side.kont with
  | [] -> SSide { side with ev = Some EDone }
  | s :: k -> (
      let guards = ref side.guards in
      match
        match s.Ast.sdesc with
        | Ast.Assign (x, e) ->
            let t = eval_expr side.store guards e in
            SSide
              { side with store = Smap.add x t side.store; kont = k;
                guards = !guards }
        | Ast.Print e ->
            let t = eval_expr side.store guards e in
            SSide { side with kont = k; guards = !guards; ev = Some (EPrint t) }
        | Ast.Return -> SSide { side with kont = [] }
        | Ast.If (c, tb, fb) -> (
            let ct = Term.truthiness (eval_expr side.store guards c) in
            let side = { side with guards = !guards } in
            match Term.decide ct with
            | Some true -> SSide { side with kont = tb @ k }
            | Some false -> SSide { side with kont = fb @ k }
            | None ->
                SBranch (ct, { side with kont = tb @ k },
                  { side with kont = fb @ k }))
        | Ast.While (c, body) -> (
            let ct = Term.truthiness (eval_expr side.store guards c) in
            let side = { side with guards = !guards } in
            match Term.decide ct with
            | Some true -> SSide { side with kont = body @ (s :: k) }
            | Some false -> SSide { side with kont = k }
            | None ->
                SBranch (ct, { side with kont = body @ (s :: k) },
                  { side with kont = k }))
        | Ast.Call (q, args) -> (
            match expandable q with
            | Some callee ->
                if List.length callee.Ast.formals <> List.length args then
                  SStuck "call-arity"
                else
                  SSide { side with kont = expand_call ~fresh ~globals callee args k }
            | None ->
                let base = base_name q in
                let vals =
                  List.map
                    (fun a ->
                      match a with
                      | Ast.Var x -> lookup side.store x
                      | e -> eval_expr side.store guards e)
                    args
                in
                let argvs =
                  List.map
                    (fun a ->
                      match a with Ast.Var x -> AByref x | _ -> AVal)
                    args
                in
                let greads =
                  List.filter_map
                    (fun g ->
                      if Modref.global_referenced_in modref base g then
                        Some (g, lookup side.store g)
                      else None)
                    globals
                in
                SSide
                  { side with kont = k; guards = !guards;
                    ev = Some (ECall { c_base = base; c_args = argvs;
                                       c_vals = vals; c_greads = greads }) })
      with
      | r -> r
      | exception Definite_fault ->
          SSide { side with guards = !guards; ev = Some EFault })

(* Cell classes of the by-reference positions of a call event. *)
let classes_of ~globals (c : callev) =
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i a ->
      match a with
      | AVal -> None
      | AByref x ->
          if List.exists (String.equal x) globals then Some (CGlobal x)
          else
            Some
              (CSlot
                 (match Hashtbl.find_opt seen x with
                 | Some j -> j
                 | None ->
                     Hashtbl.add seen x i;
                     i)))
    c.c_args

(* Variables a residual computation can still observe: everything mentioned
   in the continuation plus the final observables. *)
let relevant_vars ~formals ~globals kont =
  let acc = ref (Sset.of_list formals) in
  acc := List.fold_left (fun s g -> Sset.add g s) !acc globals;
  let add_expr e = acc := List.fold_left (fun s x -> Sset.add x s) !acc (Ast.expr_vars [] e) in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Assign (x, e) ->
          acc := Sset.add x !acc;
          add_expr e
      | Ast.If (c, _, _) | Ast.While (c, _) -> add_expr c
      | Ast.Call (_, args) -> List.iter add_expr args
      | Ast.Print e -> add_expr e
      | Ast.Return -> ())
    kont;
  !acc

(* Continuation equality modulo clone names: a [call q__clone1] on one side
   synchronises with [call q] on the other — running both from equal stores
   yields base-matching call events with equal inputs, so the modular
   callee-equivalence assumption covers the rest of the path. *)
let rec equal_kont a b = List.equal equal_stmt_base a b

and equal_stmt_base a b =
  match (a.Ast.sdesc, b.Ast.sdesc) with
  | Ast.Call (p, args), Ast.Call (p', args') ->
      String.equal (base_name p) (base_name p')
      && List.equal Ast.equal_expr args args'
  | Ast.If (c, t, f), Ast.If (c', t', f') ->
      Ast.equal_expr c c' && equal_kont t t' && equal_kont f f'
  | Ast.While (c, b1), Ast.While (c', b2) ->
      Ast.equal_expr c c' && equal_kont b1 b2
  | _ -> Ast.equal_stmt a b

type product = {
  pr_paths : int;
  pr_obligations : Smt.obligation list;
  pr_stuck : string option;
}

let run_product ~expandable ~globals ~formals ~modref ~seed_store ~lbody ~rbody
    ~fuel ~max_splits =
  let fresh = ref 1 in
  let obls = ref [] in
  let obligate ~pc ~what lhs rhs =
    if not (Term.equal lhs rhs) then
      obls :=
        { Smt.ob_what = what; ob_pc = List.rev pc; ob_lhs = lhs; ob_rhs = rhs }
        :: !obls
  in
  (* Pending-guard reconciliation at an observation point: syntactically
     equal may-fault conditions cancel; a leftover on either side must be
     provably non-faulting. *)
  let reconcile ~pc lg rg =
    let rec cancel l r =
      match (l, r) with
      | [], r -> ([], r)
      | l, [] -> (l, [])
      | x :: l', y :: r' ->
          let c = Term.compare x y in
          if c = 0 then cancel l' r'
          else if c < 0 then
            let a, b = cancel l' r in
            (x :: a, b)
          else
            let a, b = cancel l r' in
            (a, y :: b)
    in
    let sl = List.sort Term.compare lg and sr = List.sort Term.compare rg in
    let left_only, right_only = cancel sl sr in
    List.iter
      (fun g ->
        obligate ~pc ~what:"guard (original side)" (Term.truthiness g)
          (Term.Cst (Value.Int 1)))
      left_only;
    List.iter
      (fun g ->
        obligate ~pc ~what:"guard (transformed side)" (Term.truthiness g)
          (Term.Cst (Value.Int 1)))
      right_only
  in
  let fuel = ref fuel in
  let splits = ref 0 in
  let paths = ref 0 in
  let stuck = ref None in
  let work = ref [] in
  let seed = { store = seed_store; kont = []; guards = []; ev = None } in
  work :=
    [ ([], { seed with kont = lbody }, { seed with kont = rbody }) ];
  let fresh_sym name =
    let g = !fresh in
    incr fresh;
    Term.Sym { Term.sname = name; sgen = g }
  in
  let havoc_call ~pc l r (ca : callev) (cb : callev) =
    if not (String.equal ca.c_base cb.c_base) then Error "callee-mismatch"
    else if List.length ca.c_args <> List.length cb.c_args then
      Error "call-arity-mismatch"
    else if
      not
        (List.equal
           (fun x y ->
             match (x, y) with
             | Some (CGlobal g), Some (CGlobal h) -> String.equal g h
             | Some (CSlot i), Some (CSlot j) -> i = j
             | None, None -> true
             | _ -> false)
           (classes_of ~globals ca) (classes_of ~globals cb))
    then Error "call-alias-pattern-mismatch"
    else begin
      List.iteri
        (fun i (va, vb) ->
          obligate ~pc ~what:(Printf.sprintf "call %s arg %d" ca.c_base i) va vb)
        (List.combine ca.c_vals cb.c_vals);
      List.iter2
        (fun (g, va) (_, vb) ->
          obligate ~pc
            ~what:(Printf.sprintf "call %s global %s" ca.c_base g)
            va vb)
        ca.c_greads cb.c_greads;
      (* Havoc with shared fresh symbols: formal positions first, then
         globals, in a fixed order on both sides. *)
      let ls = ref l.store and rs = ref r.store in
      List.iteri
        (fun i (a, b) ->
          match (a, b) with
          | AByref x, AByref y when Modref.formal_modified modref ca.c_base i ->
              let s = fresh_sym (Printf.sprintf "%s#%d" ca.c_base i) in
              ls := Smap.add x s !ls;
              rs := Smap.add y s !rs
          | _ -> ())
        (List.combine ca.c_args cb.c_args);
      List.iter
        (fun g ->
          if Modref.global_modified_in modref ca.c_base g then begin
            let s = fresh_sym g in
            ls := Smap.add g s !ls;
            rs := Smap.add g s !rs
          end)
        globals;
      Ok
        ( { l with store = !ls; guards = []; ev = None },
          { r with store = !rs; guards = []; ev = None } )
    end
  in
  let finish_path () = incr paths in
  (* Main loop: one (pc, left, right) state at a time; splits push the
     false branch.  All loops are bounded by [fuel]. *)
  let rec drive pc l r =
    if !stuck <> None then ()
    else if !fuel <= 0 then stuck := Some "fuel"
    else begin
      decr fuel;
      match (l.ev, r.ev) with
      | Some EDone, Some EDone ->
          reconcile ~pc l.guards r.guards;
          List.iteri
            (fun i f ->
              obligate ~pc
                ~what:(Printf.sprintf "final formal %d (%s)" i f)
                (lookup l.store f) (lookup r.store f))
            formals;
          List.iter
            (fun g ->
              obligate ~pc ~what:(Printf.sprintf "final global %s" g)
                (lookup l.store g) (lookup r.store g))
            globals;
          finish_path ()
      | Some EFault, Some EFault ->
          (* Both sides definitely fault: the print prefixes were already
             matched event by event, and an abort is an abort regardless of
             which pending guard or definite fault fires first. *)
          finish_path ()
      | Some (EPrint a), Some (EPrint b) ->
          reconcile ~pc l.guards r.guards;
          obligate ~pc ~what:"print" a b;
          drive pc
            { l with guards = []; ev = None }
            { r with guards = []; ev = None }
      | Some (ECall ca), Some (ECall cb) -> (
          reconcile ~pc l.guards r.guards;
          match havoc_call ~pc l r ca cb with
          | Ok (l, r) -> drive pc l r
          | Error reason -> stuck := Some reason)
      | Some _, Some _ -> stuck := Some "event-mismatch"
      | None, Some _ -> step_one pc l r `L
      | Some _, None -> step_one pc l r `R
      | None, None ->
          (* Synchronisation shortcut: identical residual computation from
             identical state proves the path without unrolling loops. *)
          if
            equal_kont l.kont r.kont
            && List.equal Term.equal
                 (List.sort Term.compare l.guards)
                 (List.sort Term.compare r.guards)
            &&
            let rel = relevant_vars ~formals ~globals l.kont in
            Sset.for_all
              (fun x -> Term.equal (lookup l.store x) (lookup r.store x))
              rel
          then finish_path ()
          else if List.length l.kont >= List.length r.kont then
            step_one pc l r `L
          else step_one pc l r `R
    end
  and step_one pc l r which =
    let side = match which with `L -> l | `R -> r in
    match step_side ~expandable ~globals ~modref ~fresh side with
    | SStuck reason -> stuck := Some reason
    | SSide side' -> (
        match which with
        | `L -> drive pc side' r
        | `R -> drive pc l side')
    | SBranch (ct, strue, sfalse) -> (
        match
          List.find_map
            (fun (t, b) -> if Term.equal t ct then Some b else None)
            pc
        with
        | Some true -> step_done pc strue l r which
        | Some false -> step_done pc sfalse l r which
        | None ->
            incr splits;
            if !splits > max_splits then stuck := Some "splits"
            else begin
              (match which with
              | `L -> work := ((ct, false) :: pc, sfalse, r) :: !work
              | `R -> work := ((ct, false) :: pc, l, sfalse) :: !work);
              step_done ((ct, true) :: pc) strue l r which
            end)
  and step_done pc side l r which =
    match which with `L -> drive pc side r | `R -> drive pc l side
  in
  let rec loop () =
    match !work with
    | [] -> ()
    | (pc, l, r) :: rest ->
        work := rest;
        if !stuck = None then begin
          drive pc l r;
          loop ()
        end
  in
  loop ();
  { pr_paths = !paths; pr_obligations = List.rev !obls; pr_stuck = !stuck }

(* ------------------------------------------------------------------ *)
(* Concrete confirmation                                               *)
(* ------------------------------------------------------------------ *)

let harness_name = "%vcmain"

let build_harness base_prog callee formal_vals global_vals =
  let set_g =
    List.map (fun (g, v) -> Ast.assign g (Ast.Const v)) global_vals
  in
  let argnames =
    List.mapi (fun i _ -> Printf.sprintf "%%vc%d" i) formal_vals
  in
  let set_a =
    List.map2 (fun n (_, v) -> Ast.assign n (Ast.Const v)) argnames formal_vals
  in
  let call = Ast.call callee (List.map Ast.var argnames) in
  let prints =
    List.map (fun n -> Ast.print (Ast.var n)) argnames
    @ List.map (fun (g, _) -> Ast.print (Ast.var g)) global_vals
  in
  let main =
    { Ast.pname = harness_name; formals = []; body = set_g @ set_a @ (call :: prints);
      ppos = Ast.no_pos }
  in
  { base_prog with Ast.procs = base_prog.Ast.procs @ [ main ];
    main = harness_name }

exception Found of counterexample

let concrete_check ?(samples = 24) ?(fuel = 200_000) ~orig ~trans ~proc
    ~counterpart ~entry () =
  match Ast.find_proc orig counterpart with
  | None -> None
  | Some cp -> (
      let rng =
        Random.State.make
          [| 0x5eedf00d; Hashtbl.hash proc; Hashtbl.hash counterpart |]
      in
      let fixed_formal i =
        match entry with
        | Some pe when i < Array.length pe.Solution.pe_formals ->
            Lattice.const_value pe.Solution.pe_formals.(i)
        | _ -> None
      in
      let fixed_global g =
        match entry with
        | Some pe -> (
            match
              List.assoc_opt
                (Fsicp_prog.Prog.Var.intern g)
                pe.Solution.pe_globals
            with
            | Some lat -> Lattice.const_value lat
            | None -> None)
        | None -> None
      in
      let sample () =
        let rand () = Value.Int (Random.State.int rng 17 - 8) in
        let formal_vals =
          List.mapi
            (fun i f ->
              (f, match fixed_formal i with Some v -> v | None -> rand ()))
            cp.Ast.formals
        in
        let global_vals =
          List.map
            (fun g ->
              (g, match fixed_global g with Some v -> v | None -> rand ()))
            orig.Ast.globals
        in
        let ho = build_harness orig counterpart formal_vals global_vals in
        let ht = build_harness trans proc formal_vals global_vals in
        match (I.run_opt ~fuel ~trace:false ho, I.run_opt ~fuel ~trace:false ht)
        with
        | Some ro, Some rt ->
            if not (List.equal Value.equal ro.I.prints rt.I.prints) then
              raise
                (Found
                   { cx_proc = proc; cx_formals = formal_vals;
                     cx_globals = global_vals; cx_orig_prints = ro.I.prints;
                     cx_trans_prints = rt.I.prints })
        | _ ->
            (* A fault or timeout on either side: discard the sample rather
               than risk blaming a harness artefact — [Refuted] must be a
               reproducible print divergence. *)
            ()
      in
      try
        for _ = 1 to samples do
          sample ()
        done;
        None
      with Found cx -> Some cx)

(* ------------------------------------------------------------------ *)
(* VC construction and verdicts                                        *)
(* ------------------------------------------------------------------ *)

let verdict_name = function
  | Proved -> "proved"
  | Refuted _ -> "refuted"
  | Inconclusive _ -> "inconclusive"

let pp_verdict ppf = function
  | Proved -> Fmt.string ppf "proved"
  | Refuted cx ->
      Fmt.pf ppf "refuted (%s: prints %a vs %a)" cx.cx_proc
        (Fmt.list ~sep:Fmt.comma Value.pp)
        cx.cx_orig_prints
        (Fmt.list ~sep:Fmt.comma Value.pp)
        cx.cx_trans_prints
  | Inconclusive reason -> Fmt.pf ppf "inconclusive (%s)" reason

let pp_vc ppf vc =
  Fmt.pf ppf "%-7s %-24s %-12s paths=%d obligations=%d" vc.vc_transform
    vc.vc_proc (verdict_name vc.vc_verdict) vc.vc_paths
    (List.length vc.vc_obligations)

let render vc =
  let header =
    [ ("transform", vc.vc_transform); ("proc", vc.vc_proc);
      ("counterpart", vc.vc_counterpart);
      ("mode", match vc.vc_mode with Smt.MInt -> "int" | Smt.MReal -> "real");
      ("paths", string_of_int vc.vc_paths);
      ("verdict", verdict_name vc.vc_verdict) ]
  in
  Smt.render_vc ~header ~mode:vc.vc_mode vc.vc_obligations

(* Entry seeding: the VC claims equivalence relative to the solution's entry
   precondition, so formals/globals the solution proved constant start at
   that constant on both sides; everything else is a shared entry symbol.
   Inlining is solution-independent, so it gets the stronger all-symbolic
   claim. *)
let seed_store ~transform ~entry ~formals ~globals =
  let symbolic name = Term.Sym { Term.sname = name; sgen = 0 } in
  let from_lat name lat =
    match Lattice.const_value lat with
    | Some v -> Term.Cst v
    | None -> symbolic name
  in
  let store = ref Smap.empty in
  List.iteri
    (fun i f ->
      let t =
        match (transform, entry) with
        | "inline", _ | _, None -> symbolic f
        | _, Some pe when i < Array.length pe.Solution.pe_formals ->
            from_lat f pe.Solution.pe_formals.(i)
        | _ -> symbolic f
      in
      store := Smap.add f t !store)
    formals;
  List.iter
    (fun g ->
      let t =
        match (transform, entry) with
        | "inline", _ | _, None -> symbolic g
        | _, Some pe -> (
            match
              List.assoc_opt (Fsicp_prog.Prog.Var.intern g) pe.Solution.pe_globals
            with
            | Some lat -> from_lat g lat
            | None -> symbolic g)
      in
      store := Smap.add g t !store)
    globals;
  !store

(* Transparent stepping applies only to the inline transform: both sides
   step into callees the transform deems inlinable (decided on the original
   program, so the two sides agree), expanding the original body — the
   transformed side's residual calls are exactly the nested, not-yet-expanded
   ones, so the event streams line up. *)
let run_product_two ~ctx ~transform ~orig ~globals ~formals ~store ~fuel
    ~max_splits (q : Ast.proc) (cp : Ast.proc) =
  let transparent name =
    String.equal transform "inline"
    &&
    match Ast.find_proc orig name with
    | Some p0 -> Inline.inlinable ctx ~max_body:inline_max_body p0
    | None -> false
  in
  run_product
    ~expandable:(fun name ->
      if transparent name then Ast.find_proc orig name else None)
    ~globals ~formals ~modref:ctx.Context.modref ~seed_store:store
    ~lbody:cp.Ast.body ~rbody:q.Ast.body ~fuel ~max_splits

let build_vc ~fuel ~max_splits ~backend ~mode ctx ~solution ~transform
    ~orig ~trans (q : Ast.proc) (cp : Ast.proc) =
  let globals = orig.Ast.globals in
  let formals = cp.Ast.formals in
  let finish verdict paths obligations =
    Trace.incr c_vcs;
    Trace.add c_paths paths;
    Trace.add c_obligations (List.length obligations);
    (match verdict with
    | Proved -> Trace.incr c_proved
    | Refuted _ -> Trace.incr c_refuted
    | Inconclusive _ -> Trace.incr c_inconclusive);
    { vc_transform = transform; vc_proc = q.Ast.pname;
      vc_counterpart = cp.Ast.pname; vc_mode = mode; vc_paths = paths;
      vc_obligations = obligations; vc_verdict = verdict }
  in
  if not (List.equal String.equal q.Ast.formals cp.Ast.formals) then
    finish (Inconclusive "formals-mismatch") 0 []
  else if List.exists (fun f -> List.exists (String.equal f) globals) formals
  then
    (* A formal shadowing a global would fold two cells into one flat-store
       slot; bail out rather than risk an unsound identification. *)
    finish (Inconclusive "formal-shadows-global") 0 []
  else
    let n = List.length formals in
    let aliased = ref false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Alias.formals_may_alias ctx.Context.aliases cp.Ast.pname i j then
          aliased := true
      done;
      List.iter
        (fun g ->
          if
            Alias.formal_global_may_alias ctx.Context.aliases cp.Ast.pname i g
          then aliased := true)
        globals
    done;
    if !aliased then finish (Inconclusive "may-alias") 0 []
    else begin
      let entry = Solution.entry_opt solution cp.Ast.pname in
      let store = seed_store ~transform ~entry ~formals ~globals in
      let product =
        run_product_two ~ctx ~transform ~orig ~globals ~formals ~store ~fuel
          ~max_splits q cp
      in
      let obligations = product.pr_obligations in
      let paths = product.pr_paths in
      let confirm () =
        concrete_check ~orig ~trans ~proc:q.Ast.pname
          ~counterpart:cp.Ast.pname ~entry ()
      in
      match (product.pr_stuck, obligations) with
      | None, [] -> finish Proved paths []
      | stuck, obls -> (
          match confirm () with
          | Some cx -> finish (Refuted cx) paths obls
          | None -> (
              let reason =
                match stuck with
                | Some r -> r
                | None -> Printf.sprintf "%d obligations" (List.length obls)
              in
              match backend with
              | Z3 cmd
                when stuck = None && obls <> [] && mode = Smt.MInt
                     && List.for_all (Smt.supported ~mode) obls -> (
                  let text =
                    Smt.render_vc
                      ~header:
                        [ ("transform", transform); ("proc", q.Ast.pname) ]
                      ~mode obls
                  in
                  match Smt.solve_with ~cmd text with
                  | Ok answers
                    when List.length answers = List.length obls
                         && List.for_all (( = ) Smt.Unsat) answers ->
                      finish Proved paths obls
                  | Ok _ -> finish (Inconclusive (reason ^ "; z3: not all unsat")) paths obls
                  | Error e -> finish (Inconclusive (reason ^ "; " ^ e)) paths obls)
              | _ -> finish (Inconclusive reason) paths obls))
    end

let vcs ?(fuel = 20_000) ?(max_splits = 64) ?(backend = Symbolic) ctx
    ~solution ~transform ~trans =
  let orig = ctx.Context.prog in
  let mode = Smt.mode_of_programs orig trans in
  List.filter_map
    (fun (q : Ast.proc) ->
      let cp =
        match Ast.find_proc orig q.Ast.pname with
        | Some p -> Some p
        | None -> Ast.find_proc orig (base_name q.Ast.pname)
      in
      match cp with
      | None -> None
      | Some cp ->
          if
            String.equal q.Ast.pname cp.Ast.pname
            && List.equal String.equal q.Ast.formals cp.Ast.formals
            && Ast.equal_block q.Ast.body cp.Ast.body
          then None
          else
            Some
              (Trace.span "verify:vc"
                 ~args:(fun () ->
                   [ ("transform", transform); ("proc", q.Ast.pname) ])
                 (fun () ->
                   build_vc ~fuel ~max_splits ~backend ~mode ctx ~solution
                     ~transform ~orig ~trans q cp)))
    trans.Ast.procs

type report = { r_transform : string; r_vcs : vc list }

let verify_program ?fuel ?max_splits ?backend ctx ~solution =
  List.map
    (fun transform ->
      let trans = apply_transform ctx ~solution transform in
      { r_transform = transform;
        r_vcs = vcs ?fuel ?max_splits ?backend ctx ~solution ~transform ~trans
      })
    transform_names
