open Fsicp_lang

type sym = { sname : string; sgen : int }

type t =
  | Cst of Value.t
  | Sym of sym
  | Un of Ops.unop * t
  | Bin of Ops.binop * t * t

type ty = TInt | TReal | TUnknown

let rec equal a b =
  match (a, b) with
  | Cst x, Cst y -> Value.equal x y
  | Sym x, Sym y -> String.equal x.sname y.sname && x.sgen = y.sgen
  | Un (o, x), Un (p, y) -> Ops.equal_unop o p && equal x y
  | Bin (o, x1, x2), Bin (p, y1, y2) ->
      Ops.equal_binop o p && equal x1 y1 && equal x2 y2
  | (Cst _ | Sym _ | Un _ | Bin _), _ -> false

let rec compare a b =
  let tag = function Cst _ -> 0 | Sym _ -> 1 | Un _ -> 2 | Bin _ -> 3 in
  match (a, b) with
  | Cst x, Cst y -> Value.compare x y
  | Sym x, Sym y ->
      let c = String.compare x.sname y.sname in
      if c <> 0 then c else Int.compare x.sgen y.sgen
  | Un (o, x), Un (p, y) ->
      let c = Stdlib.compare o p in
      if c <> 0 then c else compare x y
  | Bin (o, x1, x2), Bin (p, y1, y2) ->
      let c = Stdlib.compare o p in
      if c <> 0 then c
      else
        let c = compare x1 y1 in
        if c <> 0 then c else compare x2 y2
  | _ -> Int.compare (tag a) (tag b)

let rec type_of = function
  | Cst (Value.Int _) -> TInt
  | Cst (Value.Real _) -> TReal
  | Sym _ -> TUnknown
  | Un (Ops.Not, _) -> TInt
  | Un (Ops.Neg, t) -> type_of t
  | Bin ((Ops.Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> TInt
  | Bin ((Ops.Add | Sub | Mul | Div | Mod), a, b) -> (
      match (type_of a, type_of b) with
      | TInt, TInt -> TInt
      | TReal, _ | _, TReal -> TReal
      | _ -> TUnknown)

let is_int t = type_of t = TInt
let int_cst n = Cst (Value.Int n)

(* Does an already-normalised term denote 0/1 by construction?  Used by
   [truthiness] to avoid wrapping comparisons in a redundant [!= 0]. *)
let boolish = function
  | Cst _ -> true
  | Un (Ops.Not, _) -> true
  | Bin ((Ops.Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
  | _ -> false

let truthiness t =
  match t with
  | Cst v -> Cst (Value.of_bool (Value.truthy v))
  | _ when boolish t -> t
  | _ -> Bin (Ops.Ne, t, int_cst 0)

let decide = function Cst v -> Some (Value.truthy v) | _ -> None

let un op t =
  match (op, t) with
  | _, Cst v -> (
      (* eval_unop is total, but keep the fallback for safety. *)
      match Value.eval_unop op v with Some r -> Cst r | None -> Un (op, t))
  | Ops.Neg, Un (Ops.Neg, x) ->
      (* Valid for ints (including [min_int]: -(-min_int) = min_int) and for
         IEEE floats, where negation is exact sign-flipping. *)
      x
  | Ops.Not, Un (Ops.Not, x) -> truthiness x
  | _ -> Un (op, t)

let bin op a b =
  match (a, b) with
  | Cst x, Cst y -> (
      match Value.eval_binop op x y with
      | Some v -> Cst v
      | None ->
          (* A definitely-faulting operation (division by zero): keep it
             symbolic; the engine's guard collection reports the fault. *)
          Bin (op, a, b))
  | _ -> (
      match op with
      | Ops.Add when equal b (int_cst 0) && is_int a -> a
      | Ops.Add when equal a (int_cst 0) && is_int b -> b
      | Ops.Sub when equal b (int_cst 0) && is_int a -> a
      | Ops.Mul when equal b (int_cst 1) && is_int a -> a
      | Ops.Mul when equal a (int_cst 1) && is_int b -> b
      | Ops.Mul when equal b (int_cst 0) && is_int a -> int_cst 0
      | Ops.Mul when equal a (int_cst 0) && is_int b -> int_cst 0
      | Ops.And -> (
          match (decide a, decide b) with
          | Some false, _ | _, Some false ->
              (* Sound because terms are pure: runtime faults live in the
                 engine's guards, never inside a term. *)
              int_cst 0
          | Some true, _ -> truthiness b
          | _, Some true -> truthiness a
          | None, None -> Bin (op, a, b))
      | Ops.Or -> (
          match (decide a, decide b) with
          | Some true, _ | _, Some true -> int_cst 1
          | Some false, _ -> truthiness b
          | _, Some false -> truthiness a
          | None, None -> Bin (op, a, b))
      | Ops.Eq when equal a b && is_int a -> int_cst 1
      | Ops.Ne when equal a b && is_int a -> int_cst 0
      | _ -> Bin (op, a, b))

module Symset = Set.Make (struct
  type t = sym

  let compare a b =
    let c = String.compare a.sname b.sname in
    if c <> 0 then c else Int.compare a.sgen b.sgen
end)

let rec add_syms acc = function
  | Cst _ -> acc
  | Sym s -> Symset.add s acc
  | Un (_, t) -> add_syms acc t
  | Bin (_, a, b) -> add_syms (add_syms acc a) b

let syms t = Symset.elements (add_syms Symset.empty t)

let syms_of_list ts =
  Symset.elements (List.fold_left add_syms Symset.empty ts)

let rec pp ppf = function
  | Cst v -> Value.pp ppf v
  | Sym { sname; sgen = 0 } -> Fmt.string ppf sname
  | Sym { sname; sgen } -> Fmt.pf ppf "%s!%d" sname sgen
  | Un (op, t) -> Fmt.pf ppf "%a(%a)" Ops.pp_unop op pp t
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ops.pp_binop op pp b

let to_string t = Fmt.str "%a" pp t
