(** Symbolic terms for translation validation.

    A term is an expression over the MiniFort operators ({!Fsicp_lang.Ops})
    whose leaves are constants ({!Fsicp_lang.Value}) and symbolic variables.
    Symbols carry a generation: generation 0 symbols denote the unknown entry
    values of formals and globals; higher generations are minted when an
    opaque (uninterpreted) call havocs locations it may modify.  Both sides of
    a verification condition share one generation counter, so "the same fresh
    symbol on both sides" encodes the assumption that equivalent callees
    produce equal outputs from equal inputs. *)

type sym = { sname : string; sgen : int }

type t =
  | Cst of Fsicp_lang.Value.t
  | Sym of sym
  | Un of Fsicp_lang.Ops.unop * t
  | Bin of Fsicp_lang.Ops.binop * t * t

type ty = TInt | TReal | TUnknown

val equal : t -> t -> bool
val compare : t -> t -> int

(** Conservative type of a term under the interpreter's promotion rules:
    comparisons and logical operators always produce [Int 0]/[Int 1];
    arithmetic promotes to real if either operand is real; symbols are
    unknown. *)
val type_of : t -> ty

(** Normalising constructors.  [un]/[bin] fold constant operands with
    {!Fsicp_lang.Value.eval_unop}/[eval_binop] (faulting combinations are
    left symbolic — fault detection is the engine's guard discipline, not the
    term algebra's), cancel double negations, and apply algebraic identities
    ([x+0], [x*1], [x*0], [x==x], constant [&&]/[||] operands) only where the
    involved terms are provably integer-typed, so IEEE [-0.0]/[nan]/[inf]
    corner cases can never be simplified away. *)
val un : Fsicp_lang.Ops.unop -> t -> t

val bin : Fsicp_lang.Ops.binop -> t -> t -> t

(** [truthiness t] is a term denoting [Int 1] iff [t] is truthy: constants
    decide immediately, operators that already yield 0/1 pass through, and
    anything else becomes [t != 0]. *)
val truthiness : t -> t

(** [decide t] is [Some b] iff the truth of [t] is statically known. *)
val decide : t -> bool option

(** All distinct symbols of a term, sorted by (name, generation). *)
val syms : t -> sym list

(** Symbols of many terms at once, deduplicated and sorted. *)
val syms_of_list : t list -> sym list

val pp : t Fmt.t
val to_string : t -> string
