(** SMT-LIB2 emission and the external-solver driver.

    A verification condition is a list of {!obligation}s: each asserts that
    two symbolic terms coincide under a path condition.  [render_vc] prints a
    deterministic SMT-LIB2 script (one [push]/[check-sat]/[pop] block per
    obligation, negated equality, so [unsat] means "proved").

    Two encodings exist.  [MInt] is used only when neither program contains a
    real literal — then every runtime value is an OCaml [int] and the
    encoding into SMT [Int] is exact except for 63-bit wraparound (see
    DESIGN.md); truncated division/modulus are defined on top of SMT's
    Euclidean [div]/[mod].  Otherwise [MReal] encodes everything as SMT
    [Real]; rationals are not IEEE floats, so [MReal] answers are advisory
    and the driver never trusts them (the caller must treat them as
    inconclusive). *)

type obligation = {
  ob_what : string;  (** human-readable label: what must coincide *)
  ob_pc : (Term.t * bool) list;
      (** path condition: term is truthy / falsy, in branch order *)
  ob_lhs : Term.t;
  ob_rhs : Term.t;
}

type mode = MInt | MReal
type sat = Sat | Unsat | Unknown

(** [MInt] iff no real literal occurs in either program. *)
val mode_of_programs :
  Fsicp_lang.Ast.program -> Fsicp_lang.Ast.program -> mode

(** An obligation is supported when every involved term encodes in the given
    mode ([MReal] rejects [Mod] and non-decimal real literals; [MInt] rejects
    real constants, which cannot arise when the mode was chosen by
    {!mode_of_programs}). *)
val supported : mode:mode -> obligation -> bool

(** Deterministic SMT-LIB2 text.  [header] key/value pairs become leading
    comment lines in the given order.  Unsupported obligations are emitted as
    comments (no [check-sat]), so the positional answers of a solver align
    with the supported obligations in order. *)
val render_vc :
  header:(string * string) list -> mode:mode -> obligation list -> string

(** Run an external SMT solver command on already-rendered SMT-LIB2 text and
    parse its [sat]/[unsat]/[unknown] answers in order.  [Error] carries a
    diagnostic (solver missing, nonzero exit with no parsable output, …). *)
val solve_with : cmd:string -> string -> (sat list, string) result
