(** Translation validation of the transformation pipeline (ROADMAP item 5).

    For every procedure a transformation modified, [vcs] builds a
    verification condition asserting observable equivalence of the original
    and transformed bodies — same print sequence, same fault behaviour, same
    call events, same final values of the by-reference formals and the
    globals — for all entry states satisfying the solution's entry
    precondition (formals/globals the solution proved constant take that
    constant; everything else is symbolic).

    The symbolic backend runs both bodies in lock-step over {!Term}s,
    splitting on undecided branches (bounded by [fuel]/[max_splits]) and
    treating calls as uninterpreted functions: matching call events on the
    two sides must agree on callee (clone names match their base), argument
    shape and by-reference alias pattern; their argument values and
    referenced globals become proof obligations; the locations the callee
    may modify (per interprocedural MOD) are havocked with the {e same}
    fresh symbols on both sides — the modular assumption that an equivalent
    callee maps equal inputs to equal outputs, discharged by that callee's
    own VC.  Undischarged obligations or a stuck/fuel-bounded search yield
    [Inconclusive], never a false [Proved]; [Refuted] is only ever reported
    with a counterexample the concrete interpreter has confirmed.

    The Z3 backend additionally discharges residual obligations through
    {!Smt}: answers are trusted only in the exact integer encoding (see
    DESIGN.md "Translation validation" for the caveats). *)

open Fsicp_lang
open Fsicp_core

type backend = Symbolic | Z3 of string  (** [Z3 cmd]: solver command *)

type counterexample = {
  cx_proc : string;
  cx_formals : (string * Value.t) list;
  cx_globals : (string * Value.t) list;
  cx_orig_prints : Value.t list;
  cx_trans_prints : Value.t list;
}

type verdict =
  | Proved
  | Refuted of counterexample
  | Inconclusive of string  (** reason *)

type vc = {
  vc_transform : string;
  vc_proc : string;  (** procedure name in the transformed program *)
  vc_counterpart : string;  (** its counterpart in the original *)
  vc_mode : Smt.mode;
  vc_paths : int;  (** completed symbolic paths *)
  vc_obligations : Smt.obligation list;
  vc_verdict : verdict;
}

(** The four pipeline transformations, in pipeline order:
    ["insert"; "fold"; "inline"; "clone"]. *)
val transform_names : string list

(** Apply one transformation by name.  @raise Invalid_argument otherwise. *)
val apply_transform : Context.t -> solution:Solution.t -> string -> Ast.program

(** Verification conditions for every procedure of [trans] that differs
    from its counterpart in [ctx]'s program.  Deterministic for a given
    (program, solution, transform) triple — independent of [jobs].
    [fuel] bounds total symbolic steps per VC (default 20_000);
    [max_splits] bounds path splits per VC (default 64). *)
val vcs :
  ?fuel:int ->
  ?max_splits:int ->
  ?backend:backend ->
  Context.t ->
  solution:Solution.t ->
  transform:string ->
  trans:Ast.program ->
  vc list

type report = { r_transform : string; r_vcs : vc list }

(** [vcs] over all four transformations. *)
val verify_program :
  ?fuel:int ->
  ?max_splits:int ->
  ?backend:backend ->
  Context.t ->
  solution:Solution.t ->
  report list

(** Differential testing of one procedure pair on concrete inputs drawn
    deterministically (seeded by the procedure names) and respecting the
    entry precondition: builds a harness main that sets every global and
    argument, calls the procedure, then prints arguments and globals, and
    runs it under the reference interpreter against both programs.  Returns
    a counterexample only when both runs complete with different print
    sequences (fault/timeout differences are discarded — conservative). *)
val concrete_check :
  ?samples:int ->
  ?fuel:int ->
  orig:Ast.program ->
  trans:Ast.program ->
  proc:string ->
  counterpart:string ->
  entry:Solution.proc_entry option ->
  unit ->
  counterexample option

(** Deterministic SMT-LIB2 rendering of a VC (header comments carry
    transform, procedure, encoding, verdict and path count). *)
val render : vc -> string

val verdict_name : verdict -> string
val pp_verdict : verdict Fmt.t

(** One summary line: transform, proc, verdict, paths, obligations. *)
val pp_vc : vc Fmt.t
