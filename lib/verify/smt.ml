open Fsicp_lang

type obligation = {
  ob_what : string;
  ob_pc : (Term.t * bool) list;
  ob_lhs : Term.t;
  ob_rhs : Term.t;
}

type mode = MInt | MReal
type sat = Sat | Unsat | Unknown

exception Unsupported of string

let has_real_literal (prog : Ast.program) =
  let found = ref false in
  let rec go = function
    | Ast.Const (Value.Real _) -> found := true
    | Ast.Const _ | Ast.Var _ -> ()
    | Ast.Unary (_, e) -> go e
    | Ast.Binary (_, a, b) ->
        go a;
        go b
  in
  List.iter (fun p -> Ast.iter_exprs go p.Ast.body) prog.Ast.procs;
  List.iter
    (fun (_, v) -> match v with Value.Real _ -> found := true | Value.Int _ -> ())
    prog.Ast.blockdata;
  !found

let mode_of_programs a b =
  if has_real_literal a || has_real_literal b then MReal else MInt

let sym_name (s : Term.sym) =
  if s.Term.sgen = 0 then s.Term.sname
  else Printf.sprintf "%s!%d" s.Term.sname s.Term.sgen

(* Integer literal, SMT-LIB style: negatives as [(- n)].  Stripping the sign
   character (instead of [abs]) keeps [min_int] exact. *)
let int_lit n =
  if n >= 0 then string_of_int n
  else
    let s = string_of_int n in
    Printf.sprintf "(- %s)" (String.sub s 1 (String.length s - 1))

(* Real literal as an exact SMT decimal, or refuse.  [real_to_string] is the
   shortest round-tripping decimal; scientific notation, nan and infinities
   have no SMT-LIB [Real] spelling. *)
let real_lit r =
  let s = Value.real_to_string r in
  let plain body =
    String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.') body
  in
  if String.length s > 0 && s.[0] = '-' then
    let body = String.sub s 1 (String.length s - 1) in
    if plain body then Printf.sprintf "(- %s)" body
    else raise (Unsupported ("real literal " ^ s))
  else if plain s then s
  else raise (Unsupported ("real literal " ^ s))

let rec enc_int (t : Term.t) =
  match t with
  | Term.Cst (Value.Int n) -> int_lit n
  | Term.Cst (Value.Real _) -> raise (Unsupported "real constant in int mode")
  | Term.Sym s -> sym_name s
  | Term.Un (Ops.Neg, x) -> Printf.sprintf "(- %s)" (enc_int x)
  | Term.Un (Ops.Not, x) -> Printf.sprintf "(ite (= %s 0) 1 0)" (enc_int x)
  | Term.Bin (op, a, b) -> (
      let a = enc_int a and b = enc_int b in
      match op with
      | Ops.Add -> Printf.sprintf "(+ %s %s)" a b
      | Ops.Sub -> Printf.sprintf "(- %s %s)" a b
      | Ops.Mul -> Printf.sprintf "(* %s %s)" a b
      | Ops.Div -> Printf.sprintf "(tdiv %s %s)" a b
      | Ops.Mod -> Printf.sprintf "(tmod %s %s)" a b
      | Ops.Eq -> Printf.sprintf "(ite (= %s %s) 1 0)" a b
      | Ops.Ne -> Printf.sprintf "(ite (distinct %s %s) 1 0)" a b
      | Ops.Lt -> Printf.sprintf "(ite (< %s %s) 1 0)" a b
      | Ops.Le -> Printf.sprintf "(ite (<= %s %s) 1 0)" a b
      | Ops.Gt -> Printf.sprintf "(ite (> %s %s) 1 0)" a b
      | Ops.Ge -> Printf.sprintf "(ite (>= %s %s) 1 0)" a b
      | Ops.And ->
          Printf.sprintf "(ite (and (distinct %s 0) (distinct %s 0)) 1 0)" a b
      | Ops.Or ->
          Printf.sprintf "(ite (or (distinct %s 0) (distinct %s 0)) 1 0)" a b)

let rec enc_real (t : Term.t) =
  match t with
  | Term.Cst (Value.Int n) ->
      if n >= 0 then Printf.sprintf "%d.0" n
      else
        let s = string_of_int n in
        Printf.sprintf "(- %s.0)" (String.sub s 1 (String.length s - 1))
  | Term.Cst (Value.Real r) -> real_lit r
  | Term.Sym s -> sym_name s
  | Term.Un (Ops.Neg, x) -> Printf.sprintf "(- %s)" (enc_real x)
  | Term.Un (Ops.Not, x) ->
      Printf.sprintf "(ite (= %s 0.0) 1.0 0.0)" (enc_real x)
  | Term.Bin (op, a, b) -> (
      let a = enc_real a and b = enc_real b in
      match op with
      | Ops.Add -> Printf.sprintf "(+ %s %s)" a b
      | Ops.Sub -> Printf.sprintf "(- %s %s)" a b
      | Ops.Mul -> Printf.sprintf "(* %s %s)" a b
      | Ops.Div -> Printf.sprintf "(/ %s %s)" a b
      | Ops.Mod -> raise (Unsupported "real modulus")
      | Ops.Eq -> Printf.sprintf "(ite (= %s %s) 1.0 0.0)" a b
      | Ops.Ne -> Printf.sprintf "(ite (distinct %s %s) 1.0 0.0)" a b
      | Ops.Lt -> Printf.sprintf "(ite (< %s %s) 1.0 0.0)" a b
      | Ops.Le -> Printf.sprintf "(ite (<= %s %s) 1.0 0.0)" a b
      | Ops.Gt -> Printf.sprintf "(ite (> %s %s) 1.0 0.0)" a b
      | Ops.Ge -> Printf.sprintf "(ite (>= %s %s) 1.0 0.0)" a b
      | Ops.And ->
          Printf.sprintf "(ite (and (distinct %s 0.0) (distinct %s 0.0)) 1.0 0.0)"
            a b
      | Ops.Or ->
          Printf.sprintf "(ite (or (distinct %s 0.0) (distinct %s 0.0)) 1.0 0.0)"
            a b)

let enc ~mode t = match mode with MInt -> enc_int t | MReal -> enc_real t

let ob_terms ob = (ob.ob_lhs :: ob.ob_rhs :: List.map fst ob.ob_pc : Term.t list)

let supported ~mode ob =
  match List.iter (fun t -> ignore (enc ~mode t)) (ob_terms ob) with
  | () -> true
  | exception Unsupported _ -> false

let rec uses_divmod (t : Term.t) =
  match t with
  | Term.Cst _ | Term.Sym _ -> false
  | Term.Un (_, x) -> uses_divmod x
  | Term.Bin ((Ops.Div | Ops.Mod), _, _) -> true
  | Term.Bin (_, a, b) -> uses_divmod a || uses_divmod b

(* Truncated (OCaml/C/Fortran) division and modulus on top of SMT-LIB's
   Euclidean [div]/[mod]: they agree for non-negative dividends and for exact
   divisions; otherwise truncation is one step closer to zero. *)
let tdiv_defs =
  "(define-fun tdiv ((a Int) (b Int)) Int\n\
  \  (ite (or (>= a 0) (= (mod a b) 0)) (div a b)\n\
  \    (ite (> b 0) (+ (div a b) 1) (- (div a b) 1))))\n\
   (define-fun tmod ((a Int) (b Int)) Int (- a (* b (tdiv a b))))\n"

let pc_assert ~mode (t, sense) =
  let zero = match mode with MInt -> "0" | MReal -> "0.0" in
  if sense then Printf.sprintf "(assert (distinct %s %s))" (enc ~mode t) zero
  else Printf.sprintf "(assert (= %s %s))" (enc ~mode t) zero

let render_vc ~header ~mode obs =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "; fsicp translation-validation VC";
  List.iter (fun (k, v) -> line "; %s: %s" k v) header;
  line "(set-logic ALL)";
  let supp = List.filter (supported ~mode) obs in
  if List.exists (fun ob -> List.exists uses_divmod (ob_terms ob)) supp
     && mode = MInt
  then Buffer.add_string buf tdiv_defs;
  let sort = match mode with MInt -> "Int" | MReal -> "Real" in
  let syms = Term.syms_of_list (List.concat_map ob_terms supp) in
  List.iter (fun s -> line "(declare-const %s %s)" (sym_name s) sort) syms;
  if obs = [] then line "; no undischarged obligations";
  List.iteri
    (fun i ob ->
      if supported ~mode ob then begin
        line "; obligation %d: %s" (i + 1) ob.ob_what;
        line "(push 1)";
        List.iter (fun a -> line "%s" (pc_assert ~mode a)) ob.ob_pc;
        line "(assert (not (= %s %s)))" (enc ~mode ob.ob_lhs)
          (enc ~mode ob.ob_rhs);
        line "(check-sat)";
        line "(pop 1)"
      end
      else line "; obligation %d: %s [unsupported in this encoding]" (i + 1)
             ob.ob_what)
    obs;
  Buffer.contents buf

let solve_with ~cmd text =
  let file = Filename.temp_file "fsicp_vc" ".smt2" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      let ic = Unix.open_process_in (cmd ^ " " ^ Filename.quote file ^ " 2>&1") in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      let status = Unix.close_process_in ic in
      let lines = List.rev !lines in
      let answers =
        List.filter_map
          (fun l ->
            match String.trim l with
            | "sat" -> Some Sat
            | "unsat" -> Some Unsat
            | "unknown" -> Some Unknown
            | _ -> None)
          lines
      in
      match (status, answers) with
      | Unix.WEXITED 0, _ -> Ok answers
      | _, _ :: _ -> Ok answers
      | _ ->
          Error
            (Printf.sprintf "solver %S failed: %s" cmd
               (String.concat " | " (List.filteri (fun i _ -> i < 3) lines))))
