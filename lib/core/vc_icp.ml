(** Value-context-sensitive interprocedural propagation.

    The flow-sensitive method analyses each procedure once, with the
    {e meet} of every arriving environment — so a procedure called with
    [f(1)] here and [f(2)] there sees ⊥ even though each call site on its
    own passes a constant.  This method analyses a procedure once per
    {e distinct packed entry vector} instead: the entry-vector memo the
    SCC kernel already keys its cache by ({!Fsicp_scc.Scc.run}) is
    promoted from an optimisation to the method's semantics.

    Top-down worklist over (procedure, context) pairs, starting from
    [main] under its block-data environment.  Analysing a context runs
    the flat kernel once; each {e executable} call site then produces the
    callee's arrival vector (argument and REF-closure-global values under
    this context), and unseen vectors enqueue new pairs.  There is no
    bottom-up feedback — call-defined variables are ⊥ in every method
    built on the kernel — so the enumeration is monotone and terminates.

    {b Blowup fallback}: a procedure holds at most {!context_budget}
    distinct contexts.  Past that it collapses to {e merged mode} — one
    context equal to the meet of every vector that ever arrived,
    re-analysed whenever a new arrival strictly lowers the merge — which
    is exactly the flow-sensitive treatment of that procedure.  Deep
    recursion over a descending constant ([r(7)] → [r(6)] → …) therefore
    costs a bounded number of kernel runs before degrading to FS
    precision, never an unbounded context family.

    The published entry of a procedure is the meet of every arrived
    vector (⊥ for a procedure no executable call ever reaches — such a
    procedure is never analysed and its own call sites are published as
    non-executable), so the solution is at least as precise as FS's
    single-meet entry; [fs ⊑ vc] is fuzzed by the oracle.  Per-call-site
    records meet the recorded values over the contexts in which the site
    was executable, mirroring the FS record convention ([Top] args on
    never-executable sites). *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

let method_name = "value-context"

module Trace = Fsicp_trace.Trace
module P = Lattice.P

(* Distinct contexts analysed and procedures that overflowed into merged
   mode; both deterministic for a given program. *)
let c_contexts = Trace.counter "vc.contexts"
let c_merged = Trace.counter "vc.merged_procs"

(** Distinct entry vectors a procedure may hold before collapsing to the
    merged (flow-sensitive) treatment. *)
let context_budget = 24

(* One entry context: packed formal and REF-closure-global vectors
   (constants or ⊥ only).  Plain int arrays — structural equality is
   context identity, since packed words are canonical. *)
type ctx_vec = { vf : int array; vg : int array }

let vec_equal a b = a.vf = b.vf && a.vg = b.vg

let vec_meet a b =
  {
    vf = Array.map2 P.meet a.vf b.vf;
    vg = Array.map2 P.meet a.vg b.vg;
  }

(** [solve ?jobs ctx] — the value-context solution.  [jobs] is accepted
    for interface symmetry and ignored: the worklist is drained
    sequentially in deterministic order (contexts of one procedure feed
    its callees' tables, so the traversal is inherently ordered), and
    the result does not depend on it. *)
let solve_body ?jobs (ctx : Context.t) : Solution.t =
  ignore jobs;
  let pcg = ctx.Context.pcg in
  let db = pcg.Callgraph.db in
  let nodes = pcg.Callgraph.nodes in
  let n = Array.length nodes in
  let main = ctx.Context.prog.Ast.main in
  let main_id = Callgraph.proc_id_exn pcg main in

  (* Per-procedure entry shape, shared slot numbering with the arrival
     vectors: formal [j], then sorted REF-closure global [k]. *)
  let nf = Array.make n 0 in
  let gids : Prog.Var.id array array = Array.make n [||] in
  Array.iteri
    (fun i pid ->
      let proc = Prog.proc_name db pid in
      nf.(i) <-
        List.length
          (Summary.find ctx.Context.summaries proc).Summary.ps_formals;
      let gs =
        Modref.call_global_refs ctx.Context.modref ~callee:proc
        |> List.map (fun (g : Ir.var) -> g.Ir.vid)
        |> Array.of_list
      in
      Array.sort Prog.Var.compare gs;
      gids.(i) <- gs)
    nodes;
  let gfind i (g : int) =
    let gs = gids.(i) in
    let lo = ref 0 and hi = ref (Array.length gs - 1) in
    let found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let gm = Prog.Var.to_int gs.(mid) in
      if gm = g then begin
        found := mid;
        lo := !hi + 1
      end
      else if gm < g then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in

  let blockdata = Context.blockdata_env ctx in
  let blockdata_tbl : (int, int) Hashtbl.t =
    Hashtbl.create (List.length blockdata)
  in
  List.iter
    (fun (g, v) ->
      Hashtbl.replace blockdata_tbl (Prog.Var.to_int g) (P.of_t v))
    blockdata;

  (* Context tables: the distinct vectors seen (until the budget trips),
     merged-mode state, and the running entry meet over every arrival. *)
  let seen : ctx_vec list array = Array.make n [] in
  let merged : ctx_vec option array = Array.make n None in
  let entry_meet : ctx_vec option array = Array.make n None in

  (* Per-call-site accumulators, dense by (caller index, cs_index):
     executable-in-any-context plus the meet of each argument/global over
     the executable occurrences. *)
  let site_exec : bool array array =
    Array.init n (fun i ->
        Array.make (Callgraph.n_call_sites pcg nodes.(i)) false)
  in
  let site_args : int array option array array =
    Array.init n (fun i ->
        Array.make (Callgraph.n_call_sites pcg nodes.(i)) None)
  in
  let site_globals : (Prog.Var.id * int) array option array array =
    Array.init n (fun i ->
        Array.make (Callgraph.n_call_sites pcg nodes.(i)) None)
  in

  let queue : (int * ctx_vec) Queue.t = Queue.create () in
  let scc_runs = ref 0 in
  let contexts = ref 0 in
  let merged_procs = ref 0 in

  (* Route one arrival vector into [i]'s table: new distinct context →
     enqueue it; budget exceeded → collapse to (or lower) the merged
     context.  Arrivals into [main] are dropped — any call edge into main
     is a back edge, and main's entry is the block-data root environment,
     exactly as in {!Fs_icp}. *)
  let arrive i (v : ctx_vec) =
    if i <> (main_id :> int) then begin
      (match entry_meet.(i) with
      | None -> entry_meet.(i) <- Some v
      | Some m -> entry_meet.(i) <- Some (vec_meet m v));
      match merged.(i) with
      | Some m ->
          let m' = vec_meet m v in
          if not (vec_equal m m') then begin
            merged.(i) <- Some m';
            Queue.add (i, m') queue
          end
      | None ->
          if not (List.exists (vec_equal v) seen.(i)) then
            if List.length seen.(i) >= context_budget then begin
              (* Blowup: fall back to the flow-sensitive treatment — one
                 context, the meet of everything that ever arrived. *)
              incr merged_procs;
              let m =
                List.fold_left vec_meet v seen.(i)
              in
              merged.(i) <- Some m;
              Queue.add (i, m) queue
            end
            else begin
              seen.(i) <- v :: seen.(i);
              Queue.add (i, v) queue
            end
    end
  in

  (* Analyse procedure [i] under one entry context. *)
  let process i (v : ctx_vec) =
    let pid = nodes.(i) in
    let proc = Prog.proc_name db pid in
    let is_main = String.equal proc main in
    incr contexts;
    let entry_env (var : Ir.var) : int =
      match var.Ir.vkind with
      | Ir.Formal j -> if j < Array.length v.vf then v.vf.(j) else P.bot
      | Ir.Global -> (
          let k = gfind i (Prog.Var.to_int var.Ir.vid) in
          if k >= 0 then v.vg.(k)
          else if is_main then
            match
              Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int var.Ir.vid)
            with
            | Some w -> w
            | None -> P.bot
          else P.bot)
      | Ir.Local | Ir.Temp -> P.bot
    in
    let ssa = Context.ssa_at ctx pid in
    let config = { Scc.default_config with Scc.entry_env } in
    let res = Scc.run ~config ssa in
    incr scc_runs;
    List.iter
      (fun (b, _, (c : Ssa.call)) ->
        if res.Scc.block_executable.(b) then begin
          let cs = c.Ssa.c_cs_id in
          let callee_i = (Callgraph.proc_id_exn pcg c.Ssa.c_callee :> int) in
          (* The kernel never leaves an executable value at ⊤ once its
             block runs, but finalize defensively: an arrival vector must
             hold constants or ⊥ only. *)
          let fin w = if w = P.top then P.bot else Context.censor_w ctx w in
          let args =
            Array.mapi (fun j _ -> fin (Scc.arg_value_w res c j)) c.Ssa.c_args
          in
          let globals =
            Array.map
              (fun ((g : Ir.var), (nm : Ssa.name)) ->
                (g.Ir.vid, fin res.Scc.values.(nm.Ssa.id)))
              c.Ssa.c_global_uses
          in
          (* Accumulate the published record. *)
          (match site_args.(i).(cs) with
          | None ->
              site_args.(i).(cs) <- Some (Array.copy args);
              site_globals.(i).(cs) <- Some (Array.copy globals)
          | Some acc ->
              Array.iteri (fun j w -> acc.(j) <- P.meet acc.(j) w) args;
              (match site_globals.(i).(cs) with
              | Some gacc ->
                  Array.iteri
                    (fun k (g, w) ->
                      let g', w' = gacc.(k) in
                      assert (Prog.Var.equal g g');
                      gacc.(k) <- (g, P.meet w' w))
                    globals
              | None -> ()));
          site_exec.(i).(cs) <- true;
          (* The callee's arrival vector under this context. *)
          let cnf = nf.(callee_i) in
          let vf = Array.make cnf P.bot in
          Array.iteri (fun j w -> if j < cnf then vf.(j) <- w) args;
          let vg = Array.make (Array.length gids.(callee_i)) P.bot in
          Array.iter
            (fun (g, w) ->
              let k = gfind callee_i (Prog.Var.to_int g) in
              if k >= 0 then vg.(k) <- w)
            globals;
          arrive callee_i { vf; vg }
        end)
      (Ssa.call_sites ssa)
  in

  (* Root: [main] under the block-data environment. *)
  let root =
    let i = (main_id :> int) in
    let vf = Array.make nf.(i) P.bot in
    let vg =
      Array.map
        (fun g ->
          match Hashtbl.find_opt blockdata_tbl (Prog.Var.to_int g) with
          | Some w -> w
          | None -> P.bot)
        gids.(i)
    in
    { vf; vg }
  in
  entry_meet.((main_id :> int)) <- Some root;
  seen.((main_id :> int)) <- [ root ];
  Queue.add ((main_id :> int), root) queue;

  while not (Queue.is_empty queue) do
    let i, v = Queue.take queue in
    (* A queued pre-merge context of a since-merged procedure is stale:
       the merged context subsumes it (it is one of the meet's operands),
       so skip the kernel run. *)
    let stale =
      match merged.(i) with Some m -> not (vec_equal m v) | None -> false
    in
    if not stale then process i v
  done;
  Trace.add c_contexts !contexts;
  Trace.add c_merged !merged_procs;

  (* Publish: entry = meet of every arrival (⊥ rows for procedures no
     executable call reached), records from the per-site accumulators
     (non-executable sites in the FS [Top] convention — including every
     site of a never-analysed procedure, reconstructed from the summary
     shapes without touching its SSA). *)
  let entries =
    Prog.tbl_init db (fun pid ->
        let i = (pid :> int) in
        match entry_meet.(i) with
        | Some v ->
            {
              Solution.pe_formals = Array.map P.to_t v.vf;
              pe_globals =
                Array.to_list (Array.mapi (fun k g -> (g, P.to_t v.vg.(k))) gids.(i));
            }
        | None ->
            {
              Solution.pe_formals = Array.make nf.(i) Lattice.Bot;
              pe_globals =
                Array.to_list (Array.map (fun g -> (g, Lattice.Bot)) gids.(i));
            })
  in
  let call_records =
    Array.to_list nodes
    |> List.concat_map (fun (pid : Prog.Proc.id) ->
           let i = (pid :> int) in
           let out = Callgraph.out_edges pcg pid in
           Array.to_list out
           |> List.map (fun (e : Callgraph.edge) ->
                  let cs = e.Callgraph.cs_index in
                  let callee_i = (e.Callgraph.callee :> int) in
                  if site_exec.(i).(cs) then
                    {
                      Solution.cr_caller = pid;
                      cr_cs_index = cs;
                      cr_callee = e.Callgraph.callee;
                      cr_executable = true;
                      cr_args =
                        (match site_args.(i).(cs) with
                        | Some a -> Array.map P.to_t a
                        | None -> [||]);
                      cr_globals =
                        (match site_globals.(i).(cs) with
                        | Some g ->
                            Array.to_list g
                            |> List.map (fun (gid, w) -> (gid, P.to_t w))
                        | None -> []);
                    }
                  else
                    {
                      Solution.cr_caller = pid;
                      cr_cs_index = cs;
                      cr_callee = e.Callgraph.callee;
                      cr_executable = false;
                      cr_args = Array.make nf.(callee_i) Lattice.Top;
                      cr_globals =
                        Array.to_list gids.(callee_i)
                        |> List.map (fun g -> (g, Lattice.Top));
                    }))
  in
  Solution.make ~method_name ~db ~entries ~call_records ~scc_runs:!scc_runs
    ~scc_results:(Prog.tbl db None)

let solve ?jobs (ctx : Context.t) : Solution.t =
  Trace.next_epoch ();
  Trace.span "vc:solve" (fun () -> solve_body ?jobs ctx)
