(** Transformation phase (paper Figure 2 step 6): materialise
    interprocedural constants as procedure-entry assignments (only for
    referenced variables, as in the paper), and compute the Table 5
    substitution metric by running the final intraprocedural pass with each
    method's entry constants. *)

open Fsicp_lang

(** Semantically equivalent program with [x = c;] prologues for every
    constant, referenced formal/global. *)
val insert_entry_constants : Context.t -> Solution.t -> Ast.program

(** Per-procedure and total constant-use substitution counts under the
    solution's entry environment (one SCC per reachable procedure). *)
val substitutions : Context.t -> Solution.t -> (string * int) list * int
