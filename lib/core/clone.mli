(** Goal-directed procedure cloning (Metzger–Stroud; the paper's backward
    walk hook): group call sites by the constant-argument signature the FS
    solution records, clone the callee per group, retarget the sites — a
    subsequent ICP run then sees per-group constant formals. *)

open Fsicp_lang

type signature = Value.t option list

val signature_of : Solution.callsite_record -> signature

(** Returns the cloned program and the number of clones created; the result
    is {!Sema.check}-clean whenever the input was. *)
val clone_by_constants :
  Context.t -> fs:Solution.t -> ?max_clones_per_proc:int -> unit ->
  Ast.program * int
