(** Goal-directed procedure cloning from constant-propagation results.

    The paper's compilation model performs "optional procedure inlining and
    cloning ... with the output of interprocedural constant propagation
    available to them", and cites Metzger–Stroud: "goal-directed procedure
    cloning based on constant propagation can substantially increase the
    number of interprocedural constants".

    This pass groups the call sites of each procedure by the vector of
    constant argument values the flow-sensitive solution records at the
    site.  When at least two groups exist and at least one carries
    constants that are lost in the meet over all sites, the procedure is
    cloned per group and the call sites are retargeted, so a subsequent ICP
    run sees per-group constant formals. *)

open Fsicp_lang
open Fsicp_scc

(** Signature of a call site: the constant-or-not vector of its arguments. *)
type signature = Value.t option list

let signature_of (cr : Solution.callsite_record) : signature =
  Array.to_list cr.Solution.cr_args |> List.map Lattice.const_value

let has_constants (s : signature) = List.exists Option.is_some s

(** [clone_by_constants ctx ~fs ?max_clones_per_proc ()] returns the cloned
    program together with the number of clones created.  The result is
    {!Sema.check}-clean whenever the input was. *)
let clone_by_constants (ctx : Context.t) ~(fs : Solution.t)
    ?(max_clones_per_proc = 8) () : Ast.program * int =
  let prog = ctx.Context.prog in
  (* Group executable call records per callee by signature. *)
  let groups : (string, (signature * (string * int) list) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (cr : Solution.callsite_record) ->
      if cr.Solution.cr_executable then begin
        let s = signature_of cr in
        let callee = Solution.proc_name fs cr.Solution.cr_callee in
        let existing =
          Option.value (Hashtbl.find_opt groups callee) ~default:[]
        in
        let site =
          (Solution.proc_name fs cr.Solution.cr_caller, cr.Solution.cr_cs_index)
        in
        let rec insert = function
          | [] -> [ (s, [ site ]) ]
          | (s', sites) :: tl when s = s' -> (s', site :: sites) :: tl
          | hd :: tl -> hd :: insert tl
        in
        Hashtbl.replace groups callee (insert existing)
      end)
    fs.Solution.call_records;
  (* Decide clones: callees with >= 2 signature groups, of which at least
     one group has constants; the first group keeps the original. *)
  let renames : (string * int, string) Hashtbl.t = Hashtbl.create 16 in
  let clones = ref [] in
  let n_clones = ref 0 in
  Hashtbl.iter
    (fun callee sigs ->
      if
        (not (String.equal callee prog.Ast.main))
        && List.length sigs >= 2
        && List.exists (fun (s, _) -> has_constants s) sigs
      then begin
        let base = Ast.find_proc_exn prog callee in
        List.iteri
          (fun k (_, sites) ->
            if k > 0 && k <= max_clones_per_proc then begin
              let cname = Printf.sprintf "%s__clone%d" callee k in
              incr n_clones;
              clones := { base with Ast.pname = cname } :: !clones;
              List.iter
                (fun site -> Hashtbl.replace renames site cname)
                sites
            end)
          sigs
      end)
    groups;
  (* Rewrite call sites: walk each procedure body, numbering call
     statements in textual order (matching [Ast.call_sites]). *)
  let rewrite_proc (p : Ast.proc) : Ast.proc =
    let counter = ref 0 in
    let rec rw_block body = List.map rw_stmt body
    and rw_stmt (s : Ast.stmt) : Ast.stmt =
      match s.Ast.sdesc with
      | Ast.Call (q, args) ->
          let idx = !counter in
          incr counter;
          let q' =
            Option.value
              (Hashtbl.find_opt renames (p.Ast.pname, idx))
              ~default:q
          in
          { s with Ast.sdesc = Ast.Call (q', args) }
      | Ast.If (c, t, e) ->
          let t' = rw_block t in
          let e' = rw_block e in
          { s with Ast.sdesc = Ast.If (c, t', e') }
      | Ast.While (c, b) -> { s with Ast.sdesc = Ast.While (c, rw_block b) }
      | Ast.Assign _ | Ast.Return | Ast.Print _ -> s
    in
    { p with Ast.body = rw_block p.Ast.body }
  in
  let procs = List.map rewrite_proc prog.Ast.procs @ List.rev !clones in
  ({ prog with Ast.procs }, !n_clones)
