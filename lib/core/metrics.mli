(** The paper's evaluation metrics (§4): call-site constant candidates
    (Tables 1/3), interprocedurally propagated constants counted once per
    procedure (Tables 2/4), and the classic substitution metric (Table 5).
    Only procedures reachable from main are measured, as in the paper. *)

type candidates_row = {
  cd_program : string;
  cd_args : int;  (** ARG: total arguments at all call sites *)
  cd_imm : int;  (** IMM: immediate (literal) arguments *)
  cd_fi : int;  (** constant arguments, flow-insensitive *)
  cd_fs : int;  (** constant arguments, flow-sensitive (live sites only) *)
  cd_gl_fi : int;  (** block-data global candidates *)
  cd_gl_fs : int;  (** (site, global) pairs constant & referenced by callee *)
  cd_gl_vis : int;  (** subset visible in the calling procedure *)
}

type propagated_row = {
  pr_program : string;
  pr_fp : int;
  pr_fi : int;
  pr_fs : int;
  pr_procs : int;
  pr_gl_fi : int;  (** entry-constant globals with a direct reference, FI *)
  pr_gl_fs : int;
}

type substitutions_row = {
  sb_program : string;
  sb_poly : int;  (** polynomial jump function, no return jump function *)
  sb_fi : int;
  sb_fs : int;
  sb_cc : int;  (** beyond the paper: copy-constant ({!Cc_icp}) *)
  sb_vc : int;  (** beyond the paper: value-context ({!Vc_icp}) *)
}

val candidates :
  Context.t -> fi:Solution.t -> fs:Solution.t -> name:string -> candidates_row

val propagated :
  Context.t -> fi:Solution.t -> fs:Solution.t -> name:string -> propagated_row

(** [poly]/[cc]/[vc] default to solving the corresponding method on the
    same context. *)
val substitutions :
  Context.t -> ?poly:Solution.t -> ?cc:Solution.t -> ?vc:Solution.t ->
  fi:Solution.t -> fs:Solution.t -> name:string -> unit -> substitutions_row

val pct : int -> int -> float

(** Figure 1: the formal-constant set found by each of the six methods,
    plus the beyond-the-paper copy-constant and value-context rows. *)
type figure1_row = { f1_method : string; f1_constants : (string * int) list }

val figure1 : Context.t -> figure1_row list

(** Entry-constant gains of the beyond-the-paper methods over FS on one
    program: constant formals and constant globals at procedure entry, per
    method.  The oracle hierarchy guarantees [cc] and [vc] each count ≥
    the FS columns. *)
type gains_row = {
  gn_program : string;
  gn_fs_formals : int;
  gn_fs_globals : int;
  gn_cc_formals : int;
  gn_cc_globals : int;
  gn_vc_formals : int;
  gn_vc_globals : int;
}

(** [cc]/[vc] default to solving the corresponding method on the context. *)
val extended_gains :
  Context.t -> ?cc:Solution.t -> ?vc:Solution.t -> fs:Solution.t ->
  name:string -> unit -> gains_row

(** Cumulative SCC block visits (process-wide, all domains); a warm
    memo-cache re-solve of an unchanged program does not advance it. *)
val scc_block_visits : unit -> int

(** Cumulative SCC entry-vector memo evictions (process-wide); stays at
    zero whenever every procedure's distinct entry vectors fit the memo
    capacity. *)
val scc_memo_evictions : unit -> int
