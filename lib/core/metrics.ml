(** The paper's evaluation metrics (§4).

    The paper introduces two interprocedural metrics, deliberately different
    from the substitution counts of Metzger–Stroud and Grove–Torczon:

    - {b call-site constant candidates} (Tables 1 and 3): at each call site,
      how many actual arguments does each method establish as constant, and
      how many global constants reach the site and are referenced by the
      callee ("a global variable that is propagated to multiple procedures
      will be counted once for each procedure that it is propagated to");
    - {b interprocedural propagated constants} (Tables 2 and 4): how many
      formals / directly-referenced globals are constant {e at procedure
      entry} — counted once per procedure regardless of how many uses they
      have, which is what makes the metric independent of the
      intraprocedural method;
    - {b intraprocedural substitutions} (Table 5): the classic metric, for
      comparison with Grove–Torczon's published numbers.

    Only procedures reachable from main are measured, as in the paper. *)

open Fsicp_prog
open Fsicp_ipa
open Fsicp_scc

type candidates_row = {
  cd_program : string;
  cd_args : int;  (** ARG: total number of arguments at all call sites *)
  cd_imm : int;  (** IMM: immediate (literal) constant arguments *)
  cd_fi : int;  (** constant arguments, flow-insensitive method *)
  cd_fs : int;  (** constant arguments, flow-sensitive method *)
  cd_gl_fi : int;  (** block-data global candidates considered by FI *)
  cd_gl_fs : int;
      (** (call site, global) pairs: constant reaches the site and the
          callee references the global (directly or indirectly) *)
  cd_gl_vis : int;  (** subset of [cd_gl_fs] visible in the caller *)
}

type propagated_row = {
  pr_program : string;
  pr_fp : int;  (** total number of formal parameters *)
  pr_fi : int;  (** constant formals, flow-insensitive *)
  pr_fs : int;  (** constant formals, flow-sensitive *)
  pr_procs : int;  (** procedures reachable from main (incl. main) *)
  pr_gl_fi : int;
      (** global constants at procedure entry, directly referenced, FI *)
  pr_gl_fs : int;  (** ditto, flow-sensitive *)
}

type substitutions_row = {
  sb_program : string;
  sb_poly : int;  (** polynomial jump function (no return jump function) *)
  sb_fi : int;
  sb_fs : int;
  sb_cc : int;  (** beyond the paper: copy-constant ({!Cc_icp}) *)
  sb_vc : int;  (** beyond the paper: value-context ({!Vc_icp}) *)
}

let count_const (a : Lattice.t array) =
  Array.fold_left
    (fun acc v -> if Lattice.is_const v then acc + 1 else acc)
    0 a

(** Table 1 / Table 3 row. *)
let candidates (ctx : Context.t) ~(fi : Solution.t) ~(fs : Solution.t)
    ~(name : string) : candidates_row =
  let pcg = ctx.Context.pcg in
  let args_total = ref 0 and imm = ref 0 in
  Array.iter
    (fun pid ->
      let proc = Fsicp_callgraph.Callgraph.proc_name pcg pid in
      let s = Summary.find ctx.Context.summaries proc in
      List.iter
        (fun (c : Summary.call_summary) ->
          args_total := !args_total + Array.length c.Summary.cs_args;
          Array.iter
            (fun a ->
              match a with
              | Summary.Alit _ -> incr imm
              | Summary.Aformal _ | Summary.Aglobal _ | Summary.Alocal _
              | Summary.Aexpr -> ())
            c.Summary.cs_args)
        s.Summary.ps_calls)
    pcg.Fsicp_callgraph.Callgraph.nodes;
  let fi_args =
    List.fold_left
      (fun acc (cr : Solution.callsite_record) ->
        acc + count_const cr.Solution.cr_args)
      0 fi.Solution.call_records
  in
  let fs_args =
    List.fold_left
      (fun acc (cr : Solution.callsite_record) ->
        if cr.Solution.cr_executable then
          acc + count_const cr.Solution.cr_args
        else acc)
      0 fs.Solution.call_records
  in
  let gl_fi =
    Context.blockdata_env ctx
    |> List.filter (fun (_, v) -> Lattice.is_const v)
    |> List.length
  in
  let gl_fs, gl_vis =
    List.fold_left
      (fun (n, nv) (cr : Solution.callsite_record) ->
        if cr.Solution.cr_executable then
          List.fold_left
            (fun (n, nv) (g, v) ->
              if Lattice.is_const v then
                ( n + 1,
                  if
                    Context.global_visible_in ctx
                      (Solution.proc_name fs cr.Solution.cr_caller)
                      (Prog.Var.name g)
                  then nv + 1
                  else nv )
              else (n, nv))
            (n, nv) cr.Solution.cr_globals
        else (n, nv))
      (0, 0) fs.Solution.call_records
  in
  {
    cd_program = name;
    cd_args = !args_total;
    cd_imm = !imm;
    cd_fi = fi_args;
    cd_fs = fs_args;
    cd_gl_fi = gl_fi;
    cd_gl_fs = gl_fs;
    cd_gl_vis = gl_vis;
  }

(** Table 2 / Table 4 row. *)
let propagated (ctx : Context.t) ~(fi : Solution.t) ~(fs : Solution.t)
    ~(name : string) : propagated_row =
  let pcg = ctx.Context.pcg in
  let fp_total = ref 0 in
  let count_formals (sol : Solution.t) =
    Array.fold_left
      (fun acc pid ->
        acc + count_const (Solution.entry_at sol pid).Solution.pe_formals)
      0 pcg.Fsicp_callgraph.Callgraph.nodes
  in
  Array.iter
    (fun pid ->
      let s =
        Summary.find ctx.Context.summaries
          (Fsicp_callgraph.Callgraph.proc_name pcg pid)
      in
      fp_total := !fp_total + List.length s.Summary.ps_formals)
    pcg.Fsicp_callgraph.Callgraph.nodes;
  let count_globals (sol : Solution.t) =
    Array.fold_left
      (fun acc pid ->
        let proc = Fsicp_callgraph.Callgraph.proc_name pcg pid in
        let e = Solution.entry_at sol pid in
        acc
        + List.length
            (List.filter
               (fun (g, v) ->
                 Lattice.is_const v
                 && Context.global_direct_ref ctx proc (Prog.Var.name g))
               e.Solution.pe_globals))
      0 pcg.Fsicp_callgraph.Callgraph.nodes
  in
  {
    pr_program = name;
    pr_fp = !fp_total;
    pr_fi = count_formals fi;
    pr_fs = count_formals fs;
    pr_procs = Array.length pcg.Fsicp_callgraph.Callgraph.nodes;
    pr_gl_fi = count_globals fi;
    pr_gl_fs = count_globals fs;
  }

(** Table 5 row: intraprocedural substitutions under each method's entry
    constants.  [poly] defaults to solving the polynomial jump function
    baseline on the same context. *)
let substitutions (ctx : Context.t) ?poly ?cc ?vc ~(fi : Solution.t)
    ~(fs : Solution.t) ~(name : string) () : substitutions_row =
  let poly =
    match poly with
    | Some p -> p
    | None -> Jump_functions.solve ctx Jump_functions.Polynomial
  in
  let cc = match cc with Some s -> s | None -> Cc_icp.solve ctx in
  let vc = match vc with Some s -> s | None -> Vc_icp.solve ctx in
  let _, n_poly = Transform.substitutions ctx poly in
  let _, n_fi = Transform.substitutions ctx fi in
  let _, n_fs = Transform.substitutions ctx fs in
  let _, n_cc = Transform.substitutions ctx cc in
  let _, n_vc = Transform.substitutions ctx vc in
  {
    sb_program = name;
    sb_poly = n_poly;
    sb_fi = n_fi;
    sb_fs = n_fs;
    sb_cc = n_cc;
    sb_vc = n_vc;
  }

let pct n total =
  if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total

(** Formal-constant sets per jump-function variant plus FI and FS on one
    program — the paper's Figure 1 comparison. *)
type figure1_row = { f1_method : string; f1_constants : (string * int) list }

let figure1 (ctx : Context.t) : figure1_row list =
  let fi = Fi_icp.solve ctx in
  let fs = Fs_icp.solve ~fi ctx in
  let of_solution (sol : Solution.t) =
    Solution.constant_formals sol |> List.map (fun (p, i, _) -> (p, i))
  in
  let rows =
    [
      ("flow-sensitive", of_solution fs);
      ("flow-insensitive", of_solution fi);
    ]
    @ List.map
        (fun variant ->
          ( Jump_functions.variant_name variant,
            of_solution (Jump_functions.solve ctx variant) ))
        Jump_functions.all_variants
    @ [
        (Cc_icp.method_name, of_solution (Cc_icp.solve ctx));
        (Vc_icp.method_name, of_solution (Vc_icp.solve ctx));
      ]
  in
  List.map (fun (m, cs) -> { f1_method = m; f1_constants = cs }) rows

(** Entry-constant gains of the beyond-the-paper methods over FS. *)
type gains_row = {
  gn_program : string;
  gn_fs_formals : int;
  gn_fs_globals : int;
  gn_cc_formals : int;
  gn_cc_globals : int;
  gn_vc_formals : int;
  gn_vc_globals : int;
}

let extended_gains (ctx : Context.t) ?cc ?vc ~(fs : Solution.t)
    ~(name : string) () : gains_row =
  let cc = match cc with Some s -> s | None -> Cc_icp.solve ctx in
  let vc = match vc with Some s -> s | None -> Vc_icp.solve ctx in
  let nf sol = List.length (Solution.constant_formals sol) in
  let ng sol = List.length (Solution.constant_globals sol) in
  {
    gn_program = name;
    gn_fs_formals = nf fs;
    gn_fs_globals = ng fs;
    gn_cc_formals = nf cc;
    gn_cc_globals = ng cc;
    gn_vc_formals = nf vc;
    gn_vc_globals = ng vc;
  }

(** Cumulative SCC block visits (process-wide, all domains), read from the
    ["scc.block_visits"] counter of {!Fsicp_trace.Trace}.  The memo
    warm-path acceptance check reads this: a re-solve of an unchanged
    program must not advance it. *)
let scc_block_visits () = Fsicp_trace.Trace.counter_total "scc.block_visits"

(** Cumulative entry-vector memo evictions (capacity overflows), from the
    ["scc.memo_evictions"] counter.  The warm-path check also reads this:
    a memo working set that fits capacity must never evict. *)
let scc_memo_evictions () =
  Fsicp_trace.Trace.counter_total "scc.memo_evictions"
