(** Sparse multivariate polynomials over the formal parameters of a
    procedure — the value domain of the {e polynomial jump function} of
    Callahan, Cooper, Kennedy and Torczon (the most precise jump function
    Grove–Torczon evaluate, Table 5's POLYNOMIAL column).

    A polynomial maps monomials (sorted multisets of formal indices, by
    exponent) to coefficients.  Coefficients are MiniFort values with the
    language's mixed int/real promotion.  Addition, subtraction and
    multiplication are closed; any other operator makes the jump function
    give up (returns [None]) unless both operands are constants, in which
    case ordinary folding applies before this module is ever involved.

    Sizes are capped ([max_terms], [max_degree]): a jump function that
    explodes is abandoned, exactly as a production implementation would. *)

open Fsicp_lang

(** A monomial: sorted [(formal index, exponent)] list, exponents >= 1.
    The empty list is the constant monomial. *)
type monomial = (int * int) list

(** Invariant: no zero coefficients; monomials distinct and sorted. *)
type t = (monomial * Value.t) list

let max_terms = 64
let max_degree = 8

let zero : t = []
let const (v : Value.t) : t = if Value.equal v (Value.Int 0) then [] else [ ([], v) ]
let formal (i : int) : t = [ ([ (i, 1) ], Value.Int 1) ]

let is_const (p : t) : Value.t option =
  match p with
  | [] -> Some (Value.Int 0)
  | [ ([], v) ] -> Some v
  | _ -> None

let equal (a : t) (b : t) =
  List.equal
    (fun (m, v) (m', v') -> m = m' && Value.equal v v')
    a b

let compare_monomial (a : monomial) (b : monomial) = Stdlib.compare a b

let degree_of_monomial (m : monomial) =
  List.fold_left (fun acc (_, e) -> acc + e) 0 m

(* Exact value addition/multiplication; these cannot fail. *)
let vadd a b =
  match Value.eval_binop Ops.Add a b with Some v -> v | None -> assert false

let vmul a b =
  match Value.eval_binop Ops.Mul a b with Some v -> v | None -> assert false

let is_zero_value v = Value.equal v (Value.Int 0) || Value.equal v (Value.Real 0.0)

let normalize (terms : (monomial * Value.t) list) : t option =
  let sorted =
    List.sort (fun (m, _) (m', _) -> compare_monomial m m') terms
  in
  let rec merge = function
    | [] -> []
    | (m, v) :: (m', v') :: tl when compare_monomial m m' = 0 ->
        merge ((m, vadd v v') :: tl)
    | (m, v) :: tl -> (m, v) :: merge tl
  in
  let merged = merge sorted |> List.filter (fun (_, v) -> not (is_zero_value v)) in
  if List.length merged > max_terms then None
  else if
    List.exists (fun (m, _) -> degree_of_monomial m > max_degree) merged
  then None
  else Some merged

let add (a : t) (b : t) : t option = normalize (a @ b)

let neg (a : t) : t =
  List.map (fun (m, v) -> (m, vmul (Value.Int (-1)) v)) a

let sub (a : t) (b : t) : t option = add a (neg b)

let mul_monomial (a : monomial) (b : monomial) : monomial =
  let rec go a b =
    match (a, b) with
    | [], m | m, [] -> m
    | (i, e) :: ta, (j, f) :: tb ->
        if i = j then (i, e + f) :: go ta tb
        else if i < j then (i, e) :: go ta ((j, f) :: tb)
        else (j, f) :: go ((i, e) :: ta) tb
  in
  go a b

let mul (a : t) (b : t) : t option =
  let terms =
    List.concat_map
      (fun (m, v) -> List.map (fun (m', v') -> (mul_monomial m m', vmul v v')) b)
      a
  in
  normalize terms

(** Evaluate under an assignment of values to formals.  [None] when a
    needed formal is missing from the environment. *)
let eval (p : t) (env : int -> Value.t option) : Value.t option =
  List.fold_left
    (fun acc (m, coeff) ->
      match acc with
      | None -> None
      | Some total -> (
          let term =
            List.fold_left
              (fun acc (i, e) ->
                match acc with
                | None -> None
                | Some v -> (
                    match env i with
                    | None -> None
                    | Some fv ->
                        let rec pow acc k =
                          if k = 0 then Some acc else pow (vmul acc fv) (k - 1)
                        in
                        pow (Value.Int 1) e |> Option.map (vmul v)))
              (Some coeff) m
          in
          match term with None -> None | Some t -> Some (vadd total t)))
    (Some (Value.Int 0))
    p

(** Formal indices occurring in the polynomial. *)
let formals_used (p : t) : int list =
  List.concat_map (fun (m, _) -> List.map fst m) p |> List.sort_uniq Int.compare

let pp ppf (p : t) =
  if p = [] then Fmt.string ppf "0"
  else
    Fmt.list ~sep:(Fmt.any " + ")
      (fun ppf (m, v) ->
        if m = [] then Value.pp ppf v
        else begin
          Value.pp ppf v;
          List.iter
            (fun (i, e) ->
              if e = 1 then Fmt.pf ppf "*f%d" i else Fmt.pf ppf "*f%d^%d" i e)
            m
        end)
      ppf p

let to_string p = Fmt.str "%a" pp p
