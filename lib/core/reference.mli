(** Reference iterative flow-sensitive interprocedural solver: whole-PCG
    flow-sensitive passes repeated to a fixpoint — the expensive solution
    the paper's one-pass method approximates.  Used as the test oracle for
    the acyclic-exactness and precision-ceiling properties. *)

val method_name : string
val max_passes : int
val solve : Context.t -> Solution.t
