(** The full compilation-model pipeline of paper Figure 2, with per-phase
    wall-clock timings backing the paper's cost claim. *)

open Fsicp_lang
open Fsicp_ipa

type timing = {
  t_phase : string;
  t_seconds : float;
  t_minor_words : float;  (** words allocated on the executing domain *)
  t_major_words : float;
}

type t = {
  ctx : Context.t;
  fi : Solution.t;
  fs : Solution.t;
  cc : Solution.t option;  (** copy-constant; [Some] iff run [~extended] *)
  vc : Solution.t option;  (** value-context; [Some] iff run [~extended] *)
  use : Use.t;
  timings : timing list;
}

(** Run steps 1–6 on a {!Sema.check}-clean program.  Independent phases
    (IPA collection ∥ PCG construction, per-procedure lowering, the FS
    wavefront) run on [jobs] domains (default
    {!Fsicp_par.Par.default_jobs}); results are identical for every
    [jobs].  [extended] (default [false]) additionally runs the
    beyond-the-paper methods — copy-constant ({!Cc_icp}, phase
    ["5c:cc-icp"]) and value-context ({!Vc_icp}, phase ["5d:vc-icp"]) —
    after the paper's FI/FS pair; the default leaves the paper's Figure-2
    phase trace untouched. *)
val run : ?floats:bool -> ?jobs:int -> ?extended:bool -> Ast.program -> t

val timing_of : t -> string -> float option
val fi_seconds : t -> float
val fs_seconds : t -> float
val pp : t Fmt.t
