(** Shared analysis context: everything the interprocedural constant
    propagation methods consume, built once per program (paper Figure 2,
    steps 1–4): IPA summaries, the PCG, reference-parameter aliases,
    MOD/REF, lowered CFGs, and lazily-built SSA with IPA-backed call-effect
    oracles.

    Per-procedure state is stored in dense {!Fsicp_prog.Prog.Proc.Tbl}
    arrays indexed by the PCG's {!Prog.Proc.id}s.  Those ids are minted by
    [Callgraph.build] for {e this} program: never index one context's
    tables with ids taken from another context (see DESIGN.md, "Program
    database").

    [floats] mirrors the paper's optional floating-point propagation: with
    it off, real-valued constants are demoted to ⊥ at every interprocedural
    boundary while intraprocedural folding is unaffected. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ipa
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_scc

(** Raw alias lists of every formal or global a procedure directly
    assigns, as parallel arrays sorted by [Ir.Var.slot_key]; computed once
    per context and immutable afterwards, so SSA rebuilds on any number of
    domains share them without synchronisation. *)
type alias_kills = { ak_keys : int array; ak_lists : Ir.var list array }

(** Streaming-mode eviction state (opaque outside the context): a ring of
    retired procedure ids whose derived artifacts are released once the
    ring overflows its window. *)
type stream

type t = {
  mutable prog : Ast.program;  (** replaced only via {!set_program} *)
  pcg : Callgraph.t;
  mutable summaries : Summary.t;  (** replaced only via {!set_summaries} *)
  aliases : Alias.t;
  modref : Modref.t;
  floats : bool;
  lowered : Ir.proc option Prog.Proc.Tbl.t;
      (** reachable procedures only; [None] = not lowered yet (streaming)
          or already evicted *)
  alias_kills : alias_kills option Prog.Proc.Tbl.t;
  ssa_cache : Ssa.proc option Prog.Proc.Tbl.t;
  epochs : int Prog.Proc.Tbl.t;
      (** validity epoch of each procedure's derived artifacts; see
          {!invalidate_proc} *)
  mutable edit_epoch : int;
      (** the current epoch: 0 at {!create}, bumped per invalidation *)
  stream : stream option;  (** [Some _] iff built by {!create_streaming} *)
}

(** Build the context for a {!Sema.check}-clean program.  [jobs] bounds the
    domains used for per-procedure lowering (default
    {!Fsicp_par.Par.default_jobs}); the result is identical for every
    value. *)
val create : ?floats:bool -> ?jobs:int -> Ast.program -> t

(** Streaming variant of {!create} for 10⁴–10⁶-procedure corpora: the
    whole-program analyses run up front (they are compact), but lowering,
    alias-kill tables and SSA materialise per procedure on first demand and
    are released again by {!retire}, keeping at most [window] (default 64)
    retired procedures plus the in-flight ones resident — peak heap scales
    with the wavefront frontier, not the program.  Solve-time mode only:
    the solutions are identical to the eager path's, but consumers that
    re-walk SSA after the solve (transformation, metrics, the returns
    extension) should use {!create}. *)
val create_streaming : ?floats:bool -> ?window:int -> Ast.program -> t

(** [true] iff the context was built by {!create_streaming}. *)
val is_streaming : t -> bool

(** Release the procedure's lowered IR, alias-kill table and SSA once the
    solver has fully consumed it.  No-op on non-streaming contexts; the
    actual eviction is deferred by the retirement ring (see
    {!create_streaming}).  Artifacts re-requested after eviction are
    rebuilt, identically. *)
val retire : t -> Prog.Proc.id -> unit

(** Lower every reachable procedure on [jobs] domains; the building block
    {!create} and {!Driver.run} share. *)
val lower_all : jobs:int -> Ast.program -> Callgraph.t -> Ir.proc Prog.Proc.Tbl.t

(** Alias-kill tables for every reachable procedure (the [alias_kills]
    field); shared by {!create} and {!Driver.run}. *)
val compute_alias_kills :
  Alias.t -> Summary.t -> Callgraph.t -> Ir.proc Prog.Proc.Tbl.t ->
  alias_kills Prog.Proc.Tbl.t

val lowered_at : t -> Prog.Proc.id -> Ir.proc
val lowered_proc : t -> string -> Ir.proc

(** Per-procedure alias-kill table (built on demand in streaming mode). *)
val alias_kills_at : t -> Prog.Proc.id -> alias_kills

(** Per-procedure SSA side-effect oracle backed by the IPA results:
    call defs from MOD, recorded globals from REF, alias kills from the
    reference-parameter alias pairs. *)
val effects_for : t -> string -> Ssa.call_effects

(** SSA form of a reachable procedure (cached). *)
val ssa_at : t -> Prog.Proc.id -> Ssa.proc

val ssa : t -> string -> Ssa.proc

(** Pre-build the SSA form of every reachable procedure not yet cached, on
    [jobs] domains; afterwards {!ssa} is a read-only cache hit from any
    domain. *)
val build_ssa : ?jobs:int -> t -> unit

(** Drop every cached SSA form (benchmarks use this to measure cold SSA
    construction). *)
val reset_ssa_cache : t -> unit

(** Drop the SCC entry-vector memo of every cached SSA form, keeping the
    SSA: the next solve re-runs every kernel propagation (benchmarks use
    this to measure the solver core on warm SSA). *)
val reset_scc_memos : t -> unit

(** Swap in an edited program (and update the PCG's AST pointer).  In
    contract only for shape-preserving edits: same reachable procedures,
    same callee sequence per procedure, same summary shapes.  The
    incremental engine ({!Engine}) verifies this before calling and
    rebuilds the whole context otherwise. *)
val set_program : t -> Ast.program -> unit

(** Swap in refreshed IPA summaries (literal payloads may differ; shapes
    must match — see {!set_program}). *)
val set_summaries : t -> Summary.t -> unit

(** Invalidate one procedure's derived artifacts after a body edit: bump
    the context's edit epoch, re-lower the procedure from the current
    program, recompute its alias-kill table, drop its cached SSA (taking
    the SCC entry-vector memo with it), and stamp the procedure's epoch.
    Artifacts of every other procedure remain valid. *)
val invalidate_proc : t -> Prog.Proc.id -> unit

(** Epoch stamped on the procedure's artifacts by the last
    {!invalidate_proc} (0 = pristine since {!create}). *)
val epoch_of : t -> Prog.Proc.id -> int

(** The context's current edit epoch (0 at {!create}; bumped once per
    {!invalidate_proc}). *)
val current_epoch : t -> int

(** Demote real-valued constants to ⊥ when float propagation is off. *)
val censor : t -> Lattice.t -> Lattice.t

(** {!censor} on a packed lattice word ({!Fsicp_scc.Lattice.P}). *)
val censor_w : t -> int -> int

(** Block-data initial values, censored — the global constant seeds. *)
val blockdata_env : t -> (Prog.Var.id * Lattice.t) list

(** Is the global textually mentioned in the procedure?  (The VIS metric.) *)
val global_visible_in : t -> string -> string -> bool

(** Is the global directly read in the procedure?  (Table 2's counting
    rule: entry assignments are created only for referenced variables.) *)
val global_direct_ref : t -> string -> string -> bool
