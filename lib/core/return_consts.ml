(** The return-constants extension (paper §3.2).

    MiniFort procedures are Fortran-style subroutines: "returned constants"
    are the constant {e out}-values a completed call leaves behind — in the
    by-reference actuals whose formals the callee (always) sets to the same
    constant, and in the globals it (always) sets to the same constant.

    The paper: "Returned constants can be accommodated by extending our
    flow-sensitive method to include one additional topological traversal
    of the PCG which is performed in the reverse direction.  During this
    traversal, a second flow-sensitive intraprocedural analysis of each
    procedure is performed to identify the procedure's set of returned
    constant parameters and global variables that are propagated to the
    invoking call site.  A flow-insensitive solution can be precomputed and
    used for back edges in this traversal."

    The reverse traversal visits callees before callers, so when a caller
    is re-analysed the summaries of its (forward-edge) callees are already
    available and its call instructions define constants instead of ⊥.
    Back-edge callees conservatively summarise to ⊥.

    Matching the paper's measurements ("these results do not include the
    propagation of return constants, since the implementation of this
    feature has not yet been completed"), the table harness keeps this off;
    the RETURNS ablation bench turns it on. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

(** Per-procedure exit summary: the value each formal's location and each
    global holds when the procedure returns. *)
type summary = {
  rs_formals : Lattice.t array;
  rs_globals : (Prog.Var.id * Lattice.t) list;
}

type t = {
  summaries : (string, summary) Hashtbl.t;
  refined : (string, Scc.result) Hashtbl.t;
      (** the second (reverse-traversal) SCC result per procedure, with
          call-defined variables refined by callee summaries *)
  extra_scc_runs : int;
}

let summary_of t proc = Hashtbl.find_opt t.summaries proc

module P = Lattice.P

(** The post-call value (a packed lattice word) of caller-side variable [v]
    for call [c], given the callee's exit summary: meet over every channel
    through which the callee may have written [v]'s location (each
    by-reference argument position binding [v], and [v] itself when it is a
    global).  The summaries stay boxed — they are a user-facing artifact
    the differential oracle inspects — and are encoded here, at the Scc
    config boundary. *)
let call_def_value_from (summaries : (string, summary) Hashtbl.t)
    ~(censor : int -> int) (c : Ssa.call) (v : Ir.var) : int =
  match Hashtbl.find_opt summaries c.Ssa.c_callee with
  | None -> P.bot (* back edge or unknown callee *)
  | Some s ->
      let acc = ref P.top in
      Array.iteri
        (fun j (a : Ssa.ssa_arg) ->
          match a.Ssa.sa_byref with
          | Some w when Ir.Var.equal w v ->
              if j < Array.length s.rs_formals then
                acc := P.meet !acc (P.of_t s.rs_formals.(j))
          | Some _ | None -> ())
        c.Ssa.c_args;
      (match v.Ir.vkind with
      | Ir.Global -> (
          match List.assoc_opt v.Ir.vid s.rs_globals with
          | Some gv -> acc := P.meet !acc (P.of_t gv)
          | None -> acc := P.bot)
      | Ir.Formal _ | Ir.Local | Ir.Temp -> ());
      if !acc = P.top then
        (* No channel found: the MOD oracle said the call may define [v]
           but the summary does not cover it — stay conservative. *)
        P.bot
      else censor !acc

(** Run the reverse traversal on top of a forward flow-sensitive solution.
    One additional SCC per procedure. *)
let compute (ctx : Context.t) ~(fs : Solution.t) : t =
  let pcg = ctx.Context.pcg in
  let blockdata = Context.blockdata_env ctx in
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  let refined = Hashtbl.create 16 in
  let runs = ref 0 in
  Array.iter
    (fun pid ->
      let proc = Callgraph.proc_name pcg pid in
      let entry = Solution.entry_at fs pid in
      let entry_env (v : Ir.var) : int =
        P.of_t
          (match v.Ir.vkind with
          | Ir.Formal i ->
              if i < Array.length entry.Solution.pe_formals then
                entry.Solution.pe_formals.(i)
              else Lattice.Bot
          | Ir.Global -> (
              match List.assoc_opt v.Ir.vid entry.Solution.pe_globals with
              | Some value -> value
              | None ->
                  if String.equal proc ctx.Context.prog.Ast.main then
                    match List.assoc_opt v.Ir.vid blockdata with
                    | Some value -> value
                    | None -> Lattice.Bot
                  else Lattice.Bot)
          | Ir.Local | Ir.Temp -> Lattice.Bot)
      in
      let ssa = Context.ssa_at ctx pid in
      let cdv ~callee v =
        (* Locate the calls to [callee] and meet their summary effects. *)
        List.fold_left
          (fun acc (_, _, (c : Ssa.call)) ->
            if String.equal c.Ssa.c_callee callee then
              P.meet acc
                (call_def_value_from summaries ~censor:(Context.censor_w ctx)
                   c v)
            else acc)
          P.top (Ssa.call_sites ssa)
        |> fun r -> if r = P.top then P.bot else r
      in
      let res =
        Scc.run ~config:{ Scc.entry_env; call_def_value = cdv } ssa
      in
      incr runs;
      Hashtbl.replace refined proc res;
      (* Exit summary of this procedure. *)
      let s = Summary.find ctx.Context.summaries proc in
      let formals = s.Summary.ps_formals in
      let rs_formals =
        Array.of_list
          (List.mapi
             (fun i name ->
               Context.censor ctx (Scc.exit_value res (Ir.formal name i)))
             formals)
      in
      let rs_globals =
        List.map
          (fun g ->
            let gv = Ir.global g in
            (gv.Ir.vid, Context.censor ctx (Scc.exit_value res gv)))
          ctx.Context.prog.Ast.globals
      in
      Hashtbl.replace summaries proc { rs_formals; rs_globals })
    (Callgraph.reverse_order pcg);
  { summaries; refined; extra_scc_runs = !runs }

(** Exit summaries mapped onto a [Fs_icp.solve ~call_def_value] oracle, for
    running a refined forward pass on top of the reverse traversal. *)
let as_oracle (t : t) ~(censor : int -> int) :
    caller:string -> Ssa.call -> Ir.var -> int =
 fun ~caller:_ c v -> call_def_value_from t.summaries ~censor c v
