(** Procedure inlining — the other transformation the paper's backward walk
    offers ("optional procedure inlining and cloning may be performed",
    Figure 2 step 6; Wegman–Zadeck suggested procedure integration as the
    way to make their intraprocedural algorithm interprocedural, which the
    paper cites as the expensive alternative its ICP avoids).

    Inlining a MiniFort call must respect by-reference parameter passing:

    - an actual that is a bare variable is substituted {e textually} for
      the formal (they denote the same location, so reads and writes through
      the formal become reads and writes of the actual);
    - any other actual is bound to a fresh local initialised with the
      expression (the hidden temporary of the call semantics);
    - the callee's locals are renamed apart from everything in the caller;
    - early [return]s in the callee body cannot be represented after
      inlining (MiniFort has no jumps), so procedures containing [return]
      are not inlined.

    Recursive and mutually recursive procedures are never inlined.  The
    [max_body] threshold keeps growth bounded, like a production inliner. *)

open Fsicp_lang

let rec body_size (body : Ast.stmt list) : int =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      acc
      +
      match s.Ast.sdesc with
      | Ast.If (_, t, e) -> 1 + body_size t + body_size e
      | Ast.While (_, b) -> 1 + body_size b
      | Ast.Assign _ | Ast.Call _ | Ast.Return | Ast.Print _ -> 1)
    0 body

let has_return (body : Ast.stmt list) : bool =
  let found = ref false in
  Ast.iter_stmts
    (fun s -> match s.Ast.sdesc with Ast.Return -> found := true | _ -> ())
    body;
  !found

(** Is [callee] eligible for inlining into any caller? *)
let inlinable (ctx : Context.t) ~(max_body : int) (callee : Ast.proc) : bool =
  (not (String.equal callee.Ast.pname ctx.Context.prog.Ast.main))
  && (not (has_return callee.Ast.body))
  && body_size callee.Ast.body <= max_body
  &&
  (* never inline into or across a cycle: the callee must not (transitively)
     reach itself *)
  let pcg = ctx.Context.pcg in
  match Fsicp_callgraph.Callgraph.proc_id pcg callee.Ast.pname with
  | None -> true (* unreachable: touches no PCG cycle *)
  | Some pid ->
      let no_back =
        Array.for_all (fun (e : Fsicp_callgraph.Callgraph.edge) ->
            not e.Fsicp_callgraph.Callgraph.back)
      in
      no_back (Fsicp_callgraph.Callgraph.out_edges pcg pid)
      && no_back (Fsicp_callgraph.Callgraph.in_edges pcg pid)

(* Substitute variables in an expression. *)
let rec subst_expr (env : (string * Ast.expr) list) (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Const _ -> e
  | Ast.Var x -> ( match List.assoc_opt x env with Some e' -> e' | None -> e)
  | Ast.Unary (op, a) -> Ast.Unary (op, subst_expr env a)
  | Ast.Binary (op, a, b) -> Ast.Binary (op, subst_expr env a, subst_expr env b)

let rec subst_block env (body : Ast.stmt list) : Ast.stmt list =
  List.map (subst_stmt env) body

and subst_stmt env (s : Ast.stmt) : Ast.stmt =
  let d =
    match s.Ast.sdesc with
    | Ast.Assign (x, e) ->
        let x' =
          match List.assoc_opt x env with
          | Some (Ast.Var y) -> y
          | Some _ ->
              (* assignment to a formal bound to a temp: the temp name *)
              invalid_arg "Inline.subst_stmt: non-variable assign target"
          | None -> x
        in
        Ast.Assign (x', subst_expr env e)
    | Ast.If (c, t, e) -> Ast.If (subst_expr env c, subst_block env t, subst_block env e)
    | Ast.While (c, b) -> Ast.While (subst_expr env c, subst_block env b)
    | Ast.Call (q, args) -> Ast.Call (q, List.map (subst_expr env) args)
    | Ast.Return -> Ast.Return
    | Ast.Print e -> Ast.Print (subst_expr env e)
  in
  { s with Ast.sdesc = d }

(** Inline one call: returns the replacement statement list. *)
let expand (prog : Ast.program) (counter : int ref) (callee : Ast.proc)
    (args : Ast.expr list) : Ast.stmt list =
  incr counter;
  let k = !counter in
  let fresh base = Printf.sprintf "%s__in%d" base k in
  (* Locals of the callee (anything that is neither a formal nor a global)
     get fresh names. *)
  let globals = prog.Ast.globals in
  let mentioned = Ast.mentioned_vars callee in
  let locals =
    List.filter
      (fun x ->
        (not (List.mem x callee.Ast.formals)) && not (List.mem x globals))
      mentioned
  in
  let env_locals = List.map (fun l -> (l, Ast.Var (fresh l))) locals in
  (* Formals: variables substitute textually (by-reference); other actuals
     bind fresh initialised temps. *)
  let prologue = ref [] in
  let env_formals =
    List.map2
      (fun f a ->
        match a with
        | Ast.Var _ -> (f, a)
        | e ->
            let t = fresh f in
            prologue := !prologue @ [ Ast.assign t e ];
            (f, Ast.Var t))
      callee.Ast.formals args
  in
  (* MiniFort locals start at 0; the inlined copy's locals must too, in
     case the callee reads one before writing it (fresh names are unused in
     the caller, but only on the first execution of this statement list —
     inside loops the previous iteration's value would leak through). *)
  let zeroing =
    List.map (fun (_, e) ->
        match e with
        | Ast.Var t -> Ast.assign t (Ast.int 0)
        | _ -> assert false)
      env_locals
  in
  !prologue @ zeroing @ subst_block (env_formals @ env_locals) callee.Ast.body

(** [inline_program ctx ?max_body ()] inlines every eligible call site.
    Returns the new program and the number of calls expanded. *)
let inline_program (ctx : Context.t) ?(max_body = 12) () : Ast.program * int =
  let prog = ctx.Context.prog in
  let counter = ref 0 in
  let expanded = ref 0 in
  let eligible =
    List.filter (inlinable ctx ~max_body) prog.Ast.procs
    |> List.map (fun (p : Ast.proc) -> (p.Ast.pname, p))
  in
  let rec rewrite_block body = List.concat_map rewrite_stmt body
  and rewrite_stmt (s : Ast.stmt) : Ast.stmt list =
    match s.Ast.sdesc with
    | Ast.Call (q, args) -> (
        match List.assoc_opt q eligible with
        | Some callee ->
            incr expanded;
            expand prog counter callee args
        | None -> [ s ])
    | Ast.If (c, t, e) ->
        [ { s with Ast.sdesc = Ast.If (c, rewrite_block t, rewrite_block e) } ]
    | Ast.While (c, b) ->
        [ { s with Ast.sdesc = Ast.While (c, rewrite_block b) } ]
    | Ast.Assign _ | Ast.Return | Ast.Print _ -> [ s ]
  in
  let procs =
    List.map
      (fun (p : Ast.proc) ->
        (* don't rewrite inside procedures that are themselves inlined
           everywhere?  Keep them: unreachable copies are dropped by the
           PCG anyway; rewriting them too keeps the program consistent. *)
        { p with Ast.body = rewrite_block p.Ast.body })
      prog.Ast.procs
  in
  ({ prog with Ast.procs }, !expanded)
