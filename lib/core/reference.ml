(** Reference {e iterative} flow-sensitive interprocedural solver.

    The paper's flow-sensitive method deliberately performs only one
    intraprocedural analysis per procedure, substituting the flow-
    insensitive solution on back edges.  This module implements the
    expensive alternative it approximates: iterate entire flow-sensitive
    passes over the PCG until the entry environments reach a fixpoint.

    Used as a test oracle:
    - on an acyclic PCG the first pass already is the fixpoint, and the
      result must coincide exactly with {!Fs_icp} (the paper: "when this
      ratio is zero ... the same results as a flow-sensitive iterative
      solution are achieved, without requiring iteration");
    - on cyclic PCGs it gives the precision ceiling — {!Fs_icp} must be
      sound w.r.t. the interpreter and below-or-equal this solution.

    Gauss–Seidel style: within a pass, forward edges see values recorded in
    the same pass; back edges see the previous pass's records (nothing, on
    the first pass — the optimistic ⊤ start). *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_ipa
open Fsicp_scc

let method_name = "iterative-reference"

let max_passes = 100

let solve (ctx : Context.t) : Solution.t =
  let pcg = ctx.Context.pcg in
  let db = pcg.Callgraph.db in
  let blockdata = Context.blockdata_env ctx in
  let gref_globals proc =
    Modref.call_global_refs ctx.Context.modref ~callee:proc
    |> List.map (fun (gv : Ir.var) -> gv.Ir.vid)
  in
  (* Records from the previous / current pass, by (caller id, cs_index):
     (executable, args, globals) in dense per-caller rows. *)
  let records :
      (bool * Lattice.t array * (Prog.Var.id * Lattice.t) list) option array
      array =
    Array.init (Callgraph.n_procs pcg) (fun i ->
        Array.make (Callgraph.n_call_sites pcg pcg.Callgraph.nodes.(i)) None)
  in
  let entries_tbl : Solution.proc_entry option Prog.Proc.Tbl.t =
    Prog.tbl db None
  in
  let scc_results = Prog.tbl db None in
  let scc_runs = ref 0 in
  let pass () =
    let any_change = ref false in
    Array.iter
      (fun pid ->
        let proc = Prog.proc_name db pid in
        (* Meet incoming recorded contributions. *)
        let s = Summary.find ctx.Context.summaries proc in
        let nf = List.length s.Summary.ps_formals in
        let formals = Array.make nf Lattice.Top in
        let globals = Hashtbl.create 8 in
        List.iter
          (fun g -> Hashtbl.replace globals g Lattice.Top)
          (gref_globals proc);
        if String.equal proc ctx.Context.prog.Ast.main then
          Hashtbl.iter
            (fun g _ ->
              Hashtbl.replace globals g
                (match List.assoc_opt g blockdata with
                | Some v -> v
                | None -> Lattice.Bot))
            (Hashtbl.copy globals);
        Array.iter
          (fun (e : Callgraph.edge) ->
            match records.((e.Callgraph.caller :> int)).(e.Callgraph.cs_index)
            with
            | None -> () (* not yet recorded: optimistic, no contribution *)
            | Some (executable, args, gvals) ->
                if executable then begin
                  Array.iteri
                    (fun j v ->
                      if j < nf then formals.(j) <- Lattice.meet formals.(j) v)
                    args;
                  List.iter
                    (fun (g, v) ->
                      match Hashtbl.find_opt globals g with
                      | Some cur ->
                          Hashtbl.replace globals g (Lattice.meet cur v)
                      | None -> ())
                    gvals
                end)
          (Callgraph.in_edges pcg pid);
        let finalize = function Lattice.Top -> Lattice.Bot | v -> v in
        let pe_formals = Array.map finalize formals in
        let pe_globals =
          Hashtbl.fold (fun g v acc -> (g, finalize v) :: acc) globals []
          |> List.sort (fun (a, _) (b, _) -> Prog.Var.compare a b)
        in
        let old = Prog.Proc.Tbl.get entries_tbl pid in
        let entry = { Solution.pe_formals; pe_globals } in
        (match old with
        | Some o
          when Array.length o.Solution.pe_formals = Array.length pe_formals
               && Array.for_all2 Lattice.equal o.Solution.pe_formals pe_formals
               && List.equal
                    (fun (g, v) (g', v') ->
                      Prog.Var.equal g g' && Lattice.equal v v')
                    o.Solution.pe_globals pe_globals -> ()
        | Some _ | None ->
            any_change := true;
            Prog.Proc.Tbl.set entries_tbl pid (Some entry));
        (* Run SCC with this environment and record call-site values.  The
           oracle answers in packed words; this pass is the executable
           specification, so it just encodes its boxed entries at the
           boundary. *)
        let entry_env (v : Ir.var) =
          Lattice.P.of_t
          @@
          match v.Ir.vkind with
          | Ir.Formal i ->
              if i < Array.length pe_formals then pe_formals.(i)
              else Lattice.Bot
          | Ir.Global -> (
              match List.assoc_opt v.Ir.vid pe_globals with
              | Some value -> value
              | None ->
                  if String.equal proc ctx.Context.prog.Ast.main then
                    match List.assoc_opt v.Ir.vid blockdata with
                    | Some value -> value
                    | None -> Lattice.Bot
                  else Lattice.Bot)
          | Ir.Local | Ir.Temp -> Lattice.Bot
        in
        let ssa = Context.ssa_at ctx pid in
        let res = Scc.run ~config:{ Scc.default_config with entry_env } ssa in
        incr scc_runs;
        Prog.Proc.Tbl.set scc_results pid (Some res);
        List.iter
          (fun (b, _, (c : Ssa.call)) ->
            let executable = res.Scc.block_executable.(b) in
            let args =
              Array.mapi
                (fun j _ ->
                  if executable then
                    Context.censor ctx (Scc.arg_value res c j)
                  else Lattice.Top)
                c.Ssa.c_args
            in
            let gvals =
              Array.to_list c.Ssa.c_global_uses
              |> List.map (fun ((g : Ir.var), (n : Ssa.name)) ->
                     ( g.Ir.vid,
                       if executable then
                         Context.censor ctx
                           (Lattice.P.to_t res.Scc.values.(n.Ssa.id))
                       else Lattice.Top ))
            in
            records.((pid :> int)).(c.Ssa.c_cs_id) <-
              Some (executable, args, gvals))
          (Ssa.call_sites ssa))
      (Callgraph.forward_order pcg);
    !any_change
  in
  let passes = ref 0 in
  while pass () && !passes < max_passes do
    incr passes
  done;
  (* Assemble call records from the final pass, caller-major. *)
  let call_records =
    Array.fold_left
      (fun acc (pid : Prog.Proc.id) ->
        let row = records.((pid :> int)) in
        let out = Callgraph.out_edges pcg pid in
        let acc = ref acc in
        Array.iteri
          (fun cs_index slot ->
            match slot with
            | None -> ()
            | Some (executable, args, gvals) ->
                acc :=
                  {
                    Solution.cr_caller = pid;
                    cr_cs_index = cs_index;
                    cr_callee = out.(cs_index).Callgraph.callee;
                    cr_executable = executable;
                    cr_args = args;
                    cr_globals = gvals;
                  }
                  :: !acc)
          row;
        !acc)
      [] (Callgraph.reverse_order pcg)
  in
  let entries =
    Prog.Proc.Tbl.map
      (function Some e -> e | None -> Solution.empty_entry)
      entries_tbl
  in
  Solution.make ~method_name ~db ~entries ~call_records ~scc_runs:!scc_runs
    ~scc_results
