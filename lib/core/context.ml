(** Shared analysis context: everything the interprocedural constant
    propagation methods consume, built once per program (paper Figure 2,
    steps 1–4).

    - IPA summaries (step 1)
    - the program call graph (step 2)
    - reference-parameter aliases (step 3)
    - interprocedural MOD/REF (step 4)
    - lowered CFGs and lazily-built SSA form of every reachable procedure

    The [floats] switch mirrors the paper's "our implementation optionally
    propagates floating point constants": with [floats = false] a real-
    valued constant is demoted to bottom at every {e interprocedural}
    boundary (block-data seeds, argument and global contributions, return
    summaries) while intraprocedural folding is unaffected. *)

open Fsicp_lang
open Fsicp_cfg
open Fsicp_ipa
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_scc
open Fsicp_par

type t = {
  prog : Ast.program;
  pcg : Callgraph.t;
  summaries : Summary.t;
  aliases : Alias.t;
  modref : Modref.t;
  floats : bool;
  lowered : (string, Ir.proc) Hashtbl.t;  (** reachable procedures only *)
  ssa_cache : (string, Ssa.proc) Hashtbl.t;
}

(** Lower every reachable procedure on [jobs] domains.  Each lowering is
    independent (all mutable state is builder-local), so the work is
    embarrassingly parallel; the cache itself is filled sequentially from
    the index-keyed result array, keeping the table single-writer. *)
let lower_all ~jobs prog (pcg : Callgraph.t) : (string, Ir.proc) Hashtbl.t =
  let nodes = pcg.Callgraph.nodes in
  let procs =
    Par.parallel_init ~jobs (Array.length nodes) (fun i ->
        Lower.lower_proc prog (Ast.find_proc_exn prog nodes.(i)))
  in
  let lowered = Hashtbl.create 16 in
  Array.iteri (fun i name -> Hashtbl.replace lowered name procs.(i)) nodes;
  lowered

(** Build the context for a {!Sema.check}-clean program.  [jobs] bounds the
    domains used for per-procedure lowering (default
    {!Fsicp_par.Par.default_jobs}); the result is identical for every
    value. *)
let create ?(floats = true) ?jobs (prog : Ast.program) : t =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let pcg = Callgraph.build prog in
  let summaries = Summary.collect prog in
  let aliases = Alias.compute summaries pcg in
  let modref = Modref.compute summaries aliases pcg in
  let lowered = lower_all ~jobs prog pcg in
  { prog; pcg; summaries; aliases; modref; floats;
    lowered; ssa_cache = Hashtbl.create 16 }

let lowered_proc t name : Ir.proc =
  match Hashtbl.find_opt t.lowered name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Context.lowered_proc: %s" name)

(** Per-procedure SSA side-effect oracle, backed by the IPA results. *)
let effects_for t (proc_name : string) : Ssa.call_effects =
  let summary = Summary.find t.summaries proc_name in
  let formal_var i =
    match List.nth_opt summary.Summary.ps_formals i with
    | Some name -> Some (Ir.formal name i)
    | None -> None
  in
  {
    Ssa.defs_of_call =
      (fun ~callee ~byref_args ->
        Modref.call_defs t.modref ~callee ~byref_args);
    globals_used_by =
      (fun ~callee -> Modref.call_global_refs t.modref ~callee);
    assign_aliases =
      (fun v ->
        match v.Ir.vkind with
        | Ir.Local | Ir.Temp -> []
        | Ir.Formal i ->
            let ff =
              Alias.formals_aliasing_formal t.aliases proc_name i
              |> List.filter_map formal_var
            in
            let fg =
              Alias.globals_aliasing_formal t.aliases proc_name i
              |> List.map Ir.global
            in
            ff @ fg
        | Ir.Global ->
            let g = v.Ir.vname in
            List.mapi (fun i name -> (i, name)) summary.Summary.ps_formals
            |> List.filter_map (fun (i, name) ->
                   if Alias.formal_global_may_alias t.aliases proc_name i g
                   then Some (Ir.formal name i)
                   else None));
  }

(** SSA form of a reachable procedure (cached). *)
let ssa t name : Ssa.proc =
  match Hashtbl.find_opt t.ssa_cache name with
  | Some p -> p
  | None ->
      let p =
        Ssa.of_proc ~effects:(effects_for t name) t.prog (lowered_proc t name)
      in
      Hashtbl.replace t.ssa_cache name p;
      p

(** Pre-build the SSA form of every reachable procedure not yet cached, on
    [jobs] domains.  Construction per procedure only reads shared immutable
    analysis results, so it parallelises freely; the cache is filled
    sequentially afterwards.  Once this returns, {!ssa} is a read-only
    cache hit from any domain. *)
let build_ssa ?jobs t : unit =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let missing =
    Array.of_list
      (List.filter
         (fun name -> not (Hashtbl.mem t.ssa_cache name))
         (Array.to_list t.pcg.Callgraph.nodes))
  in
  let built =
    Par.parallel_init ~jobs (Array.length missing) (fun i ->
        Ssa.of_proc
          ~effects:(effects_for t missing.(i))
          t.prog
          (lowered_proc t missing.(i)))
  in
  Array.iteri (fun i name -> Hashtbl.replace t.ssa_cache name built.(i)) missing

(** Demote real-valued constants to bottom when float propagation is off.
    Applied at every interprocedural boundary. *)
let censor t (v : Lattice.t) : Lattice.t =
  match v with
  | Lattice.Const (Value.Real _) when not t.floats -> Lattice.Bot
  | Lattice.Top | Lattice.Const _ | Lattice.Bot -> v

(** Block-data initial values, censored: the global constant seeds. *)
let blockdata_env t : (string * Lattice.t) list =
  List.map
    (fun (g, v) -> (g, censor t (Lattice.Const v)))
    t.prog.Ast.blockdata

(** Is global [g] textually mentioned in (visible to) procedure [p]?  The
    VIS column of Table 1 counts call-site global constants whose global is
    visible in the {e calling} procedure; the rest are the paper's
    "invisible" globals. *)
let global_visible_in t proc_name g =
  let s = Summary.find t.summaries proc_name in
  Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_iref
  || Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_imod

(** Is global [g] directly (immediately) referenced in [p]?  Table 2 counts
    a global constant for a procedure only when the procedure itself reads
    it (the paper creates entry assignments only for such globals). *)
let global_direct_ref t proc_name g =
  let s = Summary.find t.summaries proc_name in
  Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_iref
