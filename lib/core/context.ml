(** Shared analysis context: everything the interprocedural constant
    propagation methods consume, built once per program (paper Figure 2,
    steps 1–4).

    - IPA summaries (step 1)
    - the program call graph (step 2)
    - reference-parameter aliases (step 3)
    - interprocedural MOD/REF (step 4)
    - lowered CFGs and lazily-built SSA form of every reachable procedure

    The [floats] switch mirrors the paper's "our implementation optionally
    propagates floating point constants": with [floats = false] a real-
    valued constant is demoted to bottom at every {e interprocedural}
    boundary (block-data seeds, argument and global contributions, return
    summaries) while intraprocedural folding is unaffected. *)

open Fsicp_lang
open Fsicp_prog
open Fsicp_cfg
open Fsicp_ipa
open Fsicp_ssa
open Fsicp_callgraph
open Fsicp_scc
open Fsicp_par

module Trace = Fsicp_trace.Trace

(* Lowering and SSA construction volume.  [ssa.built] is jobs-invariant
   (every reachable procedure is built exactly once, eagerly or lazily);
   [ssa.cache_hits] depends on whether {!build_ssa} pre-filled the cache,
   i.e. on [jobs], but is deterministic at a fixed count. *)
let c_lower_procs = Trace.counter "lower.procs"
let c_ssa_built = Trace.counter "ssa.built"
let c_ssa_hits = Trace.counter "ssa.cache_hits"

(** Raw reference-parameter alias lists of every formal or global a
    procedure directly assigns, as parallel arrays sorted by
    [Ir.Var.slot_key].  The lists depend only on the IPA results, so they
    are computed once per context and shared by every SSA (re)build; the
    arrays are immutable after {!create}, which keeps concurrent builds on
    several domains race-free. *)
type alias_kills = { ak_keys : int array; ak_lists : Ir.var list array }

(** Streaming-mode state: a mutex-protected ring of recently retired
    procedure ids.  {!retire} pushes; once the ring holds [window] ids the
    oldest one's lowered IR, alias-kill table and SSA are dropped, so the
    resident derived artifacts are bounded by [window] plus the procedures
    currently in flight — they scale with the wavefront frontier, not the
    program. *)
type stream = {
  window : int;
  smutex : Mutex.t;
  ring : int array;  (** retired pids awaiting eviction, capacity [window] *)
  mutable rhead : int;
  mutable rlen : int;
}

type t = {
  mutable prog : Ast.program;
  pcg : Callgraph.t;
  mutable summaries : Summary.t;
  aliases : Alias.t;
  modref : Modref.t;
  floats : bool;
  lowered : Ir.proc option Prog.Proc.Tbl.t;
      (** reachable procedures only; [None] = not lowered yet (streaming)
          or already evicted *)
  alias_kills : alias_kills option Prog.Proc.Tbl.t;
  ssa_cache : Ssa.proc option Prog.Proc.Tbl.t;
  epochs : int Prog.Proc.Tbl.t;
      (** validity epoch of each procedure's derived artifacts (lowered
          IR, alias kills, SSA, SCC memo); see {!invalidate_proc} *)
  mutable edit_epoch : int;
      (** the current epoch: 0 at {!create}, bumped per invalidation *)
  stream : stream option;  (** [Some _] iff built by {!create_streaming} *)
}

(** Lower every reachable procedure on [jobs] domains.  Each lowering is
    independent (all mutable state is builder-local), so the work is
    embarrassingly parallel; the dense id-indexed table is exactly the
    result array. *)
let lower_all ~jobs prog (pcg : Callgraph.t) : Ir.proc Prog.Proc.Tbl.t =
  let n = Callgraph.n_procs pcg in
  Trace.add c_lower_procs n;
  let procs =
    Par.parallel_init ~label:"lower:proc" ~jobs n (fun i ->
        Lower.lower_proc prog (Callgraph.proc_ast pcg pcg.Callgraph.nodes.(i)))
  in
  Prog.tbl_init pcg.Callgraph.db (fun pid -> procs.((pid :> int)))

(** The alias list a store to [v] in [proc_name] must kill (raw: unsorted,
    may include [v] itself; SSA construction normalizes). *)
let raw_assign_aliases (aliases : Alias.t)
    (summary : Summary.proc_summary) (proc_name : string) (v : Ir.var) :
    Ir.var list =
  let formal_var i =
    match List.nth_opt summary.Summary.ps_formals i with
    | Some name -> Some (Ir.formal name i)
    | None -> None
  in
  match v.Ir.vkind with
  | Ir.Local | Ir.Temp -> []
  | Ir.Formal i ->
      let ff =
        Alias.formals_aliasing_formal aliases proc_name i
        |> List.filter_map formal_var
      in
      let fg =
        Alias.globals_aliasing_formal aliases proc_name i
        |> List.map Ir.global
      in
      ff @ fg
  | Ir.Global ->
      let g = Ir.Var.name v in
      List.mapi (fun i name -> (i, name)) summary.Summary.ps_formals
      |> List.filter_map (fun (i, name) ->
             if Alias.formal_global_may_alias aliases proc_name i g then
               Some (Ir.formal name i)
             else None)

(** Alias-kill table of one procedure: one entry per distinct directly
    assigned formal or global. *)
let alias_kills_of_proc aliases summaries (p : Ir.proc) : alias_kills =
  let summary = Summary.find summaries p.Ir.name in
  let seen : (int, Ir.var list) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (blk : Ir.block) ->
      Array.iter
        (function
          | Ir.Assign (v, _) -> (
              match v.Ir.vkind with
              | Ir.Local | Ir.Temp -> ()
              | Ir.Formal _ | Ir.Global ->
                  let k = Ir.Var.slot_key v in
                  if not (Hashtbl.mem seen k) then
                    Hashtbl.add seen k
                      (raw_assign_aliases aliases summary p.Ir.name v))
          | Ir.Call _ | Ir.Print _ -> ())
        blk.Ir.instrs)
    p.Ir.cfg.Ir.blocks;
  let n = Hashtbl.length seen in
  let keys = Array.make n 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    seen;
  Array.sort Int.compare keys;
  { ak_keys = keys; ak_lists = Array.map (fun k -> Hashtbl.find seen k) keys }

(** Alias-kill tables for every reachable procedure. *)
let compute_alias_kills aliases summaries (pcg : Callgraph.t)
    (lowered : Ir.proc Prog.Proc.Tbl.t) : alias_kills Prog.Proc.Tbl.t =
  Prog.tbl_init pcg.Callgraph.db (fun pid ->
      alias_kills_of_proc aliases summaries (Prog.Proc.Tbl.get lowered pid))

(** Build the context for a {!Sema.check}-clean program.  [jobs] bounds the
    domains used for per-procedure lowering (default
    {!Fsicp_par.Par.default_jobs}); the result is identical for every
    value. *)
let create ?(floats = true) ?jobs (prog : Ast.program) : t =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let pcg = Callgraph.build prog in
  let summaries = Summary.collect prog in
  let aliases = Alias.compute summaries pcg in
  let modref = Modref.compute summaries aliases pcg in
  let lowered = lower_all ~jobs prog pcg in
  let alias_kills = compute_alias_kills aliases summaries pcg lowered in
  { prog; pcg; summaries; aliases; modref; floats;
    lowered = Prog.Proc.Tbl.map (fun p -> Some p) lowered;
    alias_kills = Prog.Proc.Tbl.map (fun k -> Some k) alias_kills;
    ssa_cache = Prog.tbl pcg.Callgraph.db None;
    epochs = Prog.tbl pcg.Callgraph.db 0; edit_epoch = 0; stream = None }

(** Streaming variant of {!create} for huge corpora: the whole-program
    analyses (summaries, PCG, aliasing, MOD/REF) run as usual — they are
    compact — but nothing is lowered or SSA-built up front.  Derived
    per-procedure artifacts materialise on demand ({!lowered_at} /
    {!ssa_at}) and are released again by {!retire} once the procedure has
    been fully consumed, keeping at most [window] retired procedures plus
    the in-flight ones resident.  Strictly a solve-time mode: artifacts of
    a retired procedure are rebuilt (identically) if re-requested, and
    consumers that walk SSA after the solve — transformation, metrics, the
    returns extension — should use {!create} instead. *)
let create_streaming ?(floats = true) ?(window = 64) (prog : Ast.program) : t =
  let window = max 1 window in
  let pcg = Callgraph.build prog in
  let summaries = Summary.collect prog in
  let aliases = Alias.compute summaries pcg in
  let modref = Modref.compute summaries aliases pcg in
  { prog; pcg; summaries; aliases; modref; floats;
    lowered = Prog.tbl pcg.Callgraph.db None;
    alias_kills = Prog.tbl pcg.Callgraph.db None;
    ssa_cache = Prog.tbl pcg.Callgraph.db None;
    epochs = Prog.tbl pcg.Callgraph.db 0; edit_epoch = 0;
    stream =
      Some
        {
          window;
          smutex = Mutex.create ();
          ring = Array.make window 0;
          rhead = 0;
          rlen = 0;
        } }

let is_streaming t = t.stream <> None

let lowered_at t (pid : Prog.Proc.id) : Ir.proc =
  match Prog.Proc.Tbl.get t.lowered pid with
  | Some p -> p
  | None ->
      (* Streaming miss (or re-request after eviction): lower just this
         procedure.  Lowering is pure and distinct pids write distinct
         slots, so concurrent misses never interfere. *)
      Trace.incr c_lower_procs;
      let p = Lower.lower_proc t.prog (Callgraph.proc_ast t.pcg pid) in
      Prog.Proc.Tbl.set t.lowered pid (Some p);
      p

(** Per-procedure alias-kill table, built on demand in streaming mode. *)
let alias_kills_at t (pid : Prog.Proc.id) : alias_kills =
  match Prog.Proc.Tbl.get t.alias_kills pid with
  | Some k -> k
  | None ->
      let k = alias_kills_of_proc t.aliases t.summaries (lowered_at t pid) in
      Prog.Proc.Tbl.set t.alias_kills pid (Some k);
      k

(** Release [pid]'s derived artifacts once the solver is done with it
    (no-op on non-streaming contexts).  The id enters the retirement ring;
    the eviction itself happens [window] retirements later, so very recent
    procedures stay warm for any straggling reads. *)
let retire t (pid : Prog.Proc.id) : unit =
  match t.stream with
  | None -> ()
  | Some s ->
      Mutex.lock s.smutex;
      if s.rlen = s.window then begin
        let old = s.ring.(s.rhead) in
        s.rhead <- (s.rhead + 1) mod s.window;
        s.rlen <- s.rlen - 1;
        let opid = t.pcg.Callgraph.nodes.(old) in
        Prog.Proc.Tbl.set t.lowered opid None;
        Prog.Proc.Tbl.set t.alias_kills opid None;
        Prog.Proc.Tbl.set t.ssa_cache opid None
      end;
      s.ring.((s.rhead + s.rlen) mod s.window) <- (pid :> int);
      s.rlen <- s.rlen + 1;
      Mutex.unlock s.smutex

let lowered_proc t name : Ir.proc =
  match Callgraph.proc_id t.pcg name with
  | Some pid -> lowered_at t pid
  | None -> invalid_arg (Printf.sprintf "Context.lowered_proc: %s" name)

(** Per-procedure SSA side-effect oracle, backed by the IPA results. *)
let effects_for t (proc_name : string) : Ssa.call_effects =
  let summary = Summary.find t.summaries proc_name in
  let kills =
    match Callgraph.proc_id t.pcg proc_name with
    | Some pid -> Some (alias_kills_at t pid)
    | None -> None
  in
  {
    Ssa.defs_of_call =
      (fun ~callee ~byref_args ->
        Modref.call_defs t.modref ~callee ~byref_args);
    globals_used_by =
      (fun ~callee -> Modref.call_global_refs t.modref ~callee);
    assign_aliases =
      (fun v ->
        match v.Ir.vkind with
        | Ir.Local | Ir.Temp -> []
        | Ir.Formal _ | Ir.Global -> (
            match kills with
            | None -> raw_assign_aliases t.aliases summary proc_name v
            | Some ak ->
                (* Binary search the precomputed per-proc table; a miss
                   means the variable is never directly assigned here, so
                   nothing needs killing. *)
                let key = Ir.Var.slot_key v in
                let lo = ref 0 and hi = ref (Array.length ak.ak_keys - 1) in
                let found = ref [] in
                while !lo <= !hi do
                  let mid = (!lo + !hi) / 2 in
                  let k = ak.ak_keys.(mid) in
                  if k = key then begin
                    found := ak.ak_lists.(mid);
                    lo := !hi + 1
                  end
                  else if k < key then lo := mid + 1
                  else hi := mid - 1
                done;
                !found));
  }

(** SSA form of a reachable procedure (cached).  Concurrent misses on the
    same id may build twice; the builds are pure and identical, and writes
    to distinct array slots never interfere. *)
let ssa_at t (pid : Prog.Proc.id) : Ssa.proc =
  match Prog.Proc.Tbl.get t.ssa_cache pid with
  | Some p ->
      Trace.incr c_ssa_hits;
      p
  | None ->
      Trace.incr c_ssa_built;
      let name = Callgraph.proc_name t.pcg pid in
      let p =
        Ssa.of_proc ~effects:(effects_for t name) t.prog (lowered_at t pid)
      in
      Prog.Proc.Tbl.set t.ssa_cache pid (Some p);
      p

let ssa t name : Ssa.proc =
  match Callgraph.proc_id t.pcg name with
  | Some pid -> ssa_at t pid
  | None -> invalid_arg (Printf.sprintf "Context.ssa: %s" name)

(** Pre-build the SSA form of every reachable procedure not yet cached, on
    [jobs] domains.  Construction per procedure only reads shared immutable
    analysis results, so it parallelises freely; the cache is filled
    sequentially afterwards.  Once this returns, {!ssa} is a read-only
    cache hit from any domain. *)
let build_ssa ?jobs t : unit =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let missing =
    Array.of_list
      (List.filter
         (fun pid -> Prog.Proc.Tbl.get t.ssa_cache pid = None)
         (Array.to_list t.pcg.Callgraph.nodes))
  in
  Trace.add c_ssa_built (Array.length missing);
  let built =
    Par.parallel_init ~label:"ssa:build" ~jobs (Array.length missing) (fun i ->
        let pid = missing.(i) in
        let name = Callgraph.proc_name t.pcg pid in
        Ssa.of_proc ~effects:(effects_for t name) t.prog (lowered_at t pid))
  in
  Array.iteri
    (fun i pid -> Prog.Proc.Tbl.set t.ssa_cache pid (Some built.(i)))
    missing

let reset_ssa_cache t : unit =
  Array.iter
    (fun pid -> Prog.Proc.Tbl.set t.ssa_cache pid None)
    t.pcg.Callgraph.nodes

(** Drop the SCC entry-vector memo of every cached SSA form while keeping
    the SSA itself: a subsequent solve re-runs every kernel propagation
    (benchmarks use this to measure the solver core on warm SSA). *)
let reset_scc_memos t : unit =
  Array.iter
    (fun pid ->
      match Prog.Proc.Tbl.get t.ssa_cache pid with
      | Some p -> Scc.invalidate_memo p
      | None -> ())
    t.pcg.Callgraph.nodes

(** Swap in an edited program.  In contract only for shape-preserving
    edits (same reachable procedures, same callee sequences, same summary
    shapes) — the incremental engine checks this and rebuilds the whole
    context otherwise. *)
let set_program t (prog : Ast.program) : unit =
  t.prog <- prog;
  Callgraph.set_prog t.pcg prog

let set_summaries t (s : Summary.t) : unit = t.summaries <- s

(** Invalidate one procedure's derived artifacts after a body edit: bump
    the global edit epoch, re-lower the procedure from [t.prog], recompute
    its alias-kill table, drop its cached SSA (the SCC entry-vector memo
    lives inside the SSA value and dies with it), and stamp the
    procedure's epoch.  Every other procedure's artifacts stay valid —
    their epochs are untouched. *)
let invalidate_proc t (pid : Prog.Proc.id) : unit =
  t.edit_epoch <- t.edit_epoch + 1;
  let ir = Lower.lower_proc t.prog (Callgraph.proc_ast t.pcg pid) in
  Prog.Proc.Tbl.set t.lowered pid (Some ir);
  Prog.Proc.Tbl.set t.alias_kills pid
    (Some (alias_kills_of_proc t.aliases t.summaries ir));
  (match Prog.Proc.Tbl.get t.ssa_cache pid with
  | Some p -> Scc.invalidate_memo p
  | None -> ());
  Prog.Proc.Tbl.set t.ssa_cache pid None;
  Prog.Proc.Tbl.set t.epochs pid t.edit_epoch

let epoch_of t (pid : Prog.Proc.id) : int = Prog.Proc.Tbl.get t.epochs pid
let current_epoch t : int = t.edit_epoch

(** Demote real-valued constants to bottom when float propagation is off.
    Applied at every interprocedural boundary. *)
let censor t (v : Lattice.t) : Lattice.t =
  match v with
  | Lattice.Const (Value.Real _) when not t.floats -> Lattice.Bot
  | Lattice.Top | Lattice.Const _ | Lattice.Bot -> v

(** Packed variant of {!censor}, allocation-free. *)
let censor_w t (w : int) : int =
  if Lattice.P.is_real_const w && not t.floats then Lattice.P.bot else w

(** Block-data initial values, censored: the global constant seeds, keyed
    by interned variable id (the entry-environment hot paths are id-only;
    spellings come back via {!Prog.Var.name} at the edges). *)
let blockdata_env t : (Prog.Var.id * Lattice.t) list =
  List.map
    (fun (g, v) -> (Prog.Var.intern g, censor t (Lattice.Const v)))
    t.prog.Ast.blockdata

(** Is global [g] textually mentioned in (visible to) procedure [p]?  The
    VIS column of Table 1 counts call-site global constants whose global is
    visible in the {e calling} procedure; the rest are the paper's
    "invisible" globals. *)
let global_visible_in t proc_name g =
  let s = Summary.find t.summaries proc_name in
  Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_iref
  || Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_imod

(** Is global [g] directly (immediately) referenced in [p]?  Table 2 counts
    a global constant for a procedure only when the procedure itself reads
    it (the paper creates entry assignments only for such globals). *)
let global_direct_ref t proc_name g =
  let s = Summary.find t.summaries proc_name in
  Summary.VrefSet.mem (Summary.Vglobal g) s.Summary.ps_iref
